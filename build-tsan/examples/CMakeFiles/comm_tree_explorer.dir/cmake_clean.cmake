file(REMOVE_RECURSE
  "CMakeFiles/comm_tree_explorer.dir/comm_tree_explorer.cpp.o"
  "CMakeFiles/comm_tree_explorer.dir/comm_tree_explorer.cpp.o.d"
  "comm_tree_explorer"
  "comm_tree_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_tree_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
