# Empty compiler generated dependencies file for comm_tree_explorer.
# This may be replaced when dependencies are built.
