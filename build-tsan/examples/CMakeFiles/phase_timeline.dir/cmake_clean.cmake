file(REMOVE_RECURSE
  "CMakeFiles/phase_timeline.dir/phase_timeline.cpp.o"
  "CMakeFiles/phase_timeline.dir/phase_timeline.cpp.o.d"
  "phase_timeline"
  "phase_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
