# Empty compiler generated dependencies file for phase_timeline.
# This may be replaced when dependencies are built.
