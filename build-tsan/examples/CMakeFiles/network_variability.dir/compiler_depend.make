# Empty compiler generated dependencies file for network_variability.
# This may be replaced when dependencies are built.
