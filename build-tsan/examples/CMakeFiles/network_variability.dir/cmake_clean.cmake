file(REMOVE_RECURSE
  "CMakeFiles/network_variability.dir/network_variability.cpp.o"
  "CMakeFiles/network_variability.dir/network_variability.cpp.o.d"
  "network_variability"
  "network_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
