file(REMOVE_RECURSE
  "CMakeFiles/unsymmetric_inverse.dir/unsymmetric_inverse.cpp.o"
  "CMakeFiles/unsymmetric_inverse.dir/unsymmetric_inverse.cpp.o.d"
  "unsymmetric_inverse"
  "unsymmetric_inverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsymmetric_inverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
