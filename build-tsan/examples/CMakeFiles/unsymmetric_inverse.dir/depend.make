# Empty dependencies file for unsymmetric_inverse.
# This may be replaced when dependencies are built.
