file(REMOVE_RECURSE
  "CMakeFiles/critical_path.dir/critical_path.cpp.o"
  "CMakeFiles/critical_path.dir/critical_path.cpp.o.d"
  "critical_path"
  "critical_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critical_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
