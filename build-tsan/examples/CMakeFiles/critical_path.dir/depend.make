# Empty dependencies file for critical_path.
# This may be replaced when dependencies are built.
