
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/dense.cpp" "src/sparse/CMakeFiles/psi_sparse.dir/dense.cpp.o" "gcc" "src/sparse/CMakeFiles/psi_sparse.dir/dense.cpp.o.d"
  "/root/repo/src/sparse/generators.cpp" "src/sparse/CMakeFiles/psi_sparse.dir/generators.cpp.o" "gcc" "src/sparse/CMakeFiles/psi_sparse.dir/generators.cpp.o.d"
  "/root/repo/src/sparse/graph.cpp" "src/sparse/CMakeFiles/psi_sparse.dir/graph.cpp.o" "gcc" "src/sparse/CMakeFiles/psi_sparse.dir/graph.cpp.o.d"
  "/root/repo/src/sparse/matrix_market.cpp" "src/sparse/CMakeFiles/psi_sparse.dir/matrix_market.cpp.o" "gcc" "src/sparse/CMakeFiles/psi_sparse.dir/matrix_market.cpp.o.d"
  "/root/repo/src/sparse/sparse_matrix.cpp" "src/sparse/CMakeFiles/psi_sparse.dir/sparse_matrix.cpp.o" "gcc" "src/sparse/CMakeFiles/psi_sparse.dir/sparse_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/psi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
