# Empty dependencies file for psi_sparse.
# This may be replaced when dependencies are built.
