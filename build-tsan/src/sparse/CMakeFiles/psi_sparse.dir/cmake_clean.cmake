file(REMOVE_RECURSE
  "CMakeFiles/psi_sparse.dir/dense.cpp.o"
  "CMakeFiles/psi_sparse.dir/dense.cpp.o.d"
  "CMakeFiles/psi_sparse.dir/generators.cpp.o"
  "CMakeFiles/psi_sparse.dir/generators.cpp.o.d"
  "CMakeFiles/psi_sparse.dir/graph.cpp.o"
  "CMakeFiles/psi_sparse.dir/graph.cpp.o.d"
  "CMakeFiles/psi_sparse.dir/matrix_market.cpp.o"
  "CMakeFiles/psi_sparse.dir/matrix_market.cpp.o.d"
  "CMakeFiles/psi_sparse.dir/sparse_matrix.cpp.o"
  "CMakeFiles/psi_sparse.dir/sparse_matrix.cpp.o.d"
  "libpsi_sparse.a"
  "libpsi_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
