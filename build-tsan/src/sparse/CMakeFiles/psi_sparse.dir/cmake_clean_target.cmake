file(REMOVE_RECURSE
  "libpsi_sparse.a"
)
