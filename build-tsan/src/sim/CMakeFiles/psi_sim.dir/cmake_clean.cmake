file(REMOVE_RECURSE
  "CMakeFiles/psi_sim.dir/engine.cpp.o"
  "CMakeFiles/psi_sim.dir/engine.cpp.o.d"
  "CMakeFiles/psi_sim.dir/machine.cpp.o"
  "CMakeFiles/psi_sim.dir/machine.cpp.o.d"
  "libpsi_sim.a"
  "libpsi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
