file(REMOVE_RECURSE
  "libpsi_sim.a"
)
