# Empty dependencies file for psi_sim.
# This may be replaced when dependencies are built.
