
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/process_grid.cpp" "src/dist/CMakeFiles/psi_dist.dir/process_grid.cpp.o" "gcc" "src/dist/CMakeFiles/psi_dist.dir/process_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/psi_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sparse/CMakeFiles/psi_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
