file(REMOVE_RECURSE
  "CMakeFiles/psi_dist.dir/process_grid.cpp.o"
  "CMakeFiles/psi_dist.dir/process_grid.cpp.o.d"
  "libpsi_dist.a"
  "libpsi_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
