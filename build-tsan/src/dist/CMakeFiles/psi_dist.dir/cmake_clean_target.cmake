file(REMOVE_RECURSE
  "libpsi_dist.a"
)
