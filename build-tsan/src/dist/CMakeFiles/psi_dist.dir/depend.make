# Empty dependencies file for psi_dist.
# This may be replaced when dependencies are built.
