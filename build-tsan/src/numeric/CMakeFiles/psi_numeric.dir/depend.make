# Empty dependencies file for psi_numeric.
# This may be replaced when dependencies are built.
