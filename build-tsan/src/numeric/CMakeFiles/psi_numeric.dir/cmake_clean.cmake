file(REMOVE_RECURSE
  "CMakeFiles/psi_numeric.dir/block_matrix.cpp.o"
  "CMakeFiles/psi_numeric.dir/block_matrix.cpp.o.d"
  "CMakeFiles/psi_numeric.dir/selinv.cpp.o"
  "CMakeFiles/psi_numeric.dir/selinv.cpp.o.d"
  "CMakeFiles/psi_numeric.dir/supernodal_lu.cpp.o"
  "CMakeFiles/psi_numeric.dir/supernodal_lu.cpp.o.d"
  "libpsi_numeric.a"
  "libpsi_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
