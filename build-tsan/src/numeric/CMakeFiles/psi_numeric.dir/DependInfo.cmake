
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/block_matrix.cpp" "src/numeric/CMakeFiles/psi_numeric.dir/block_matrix.cpp.o" "gcc" "src/numeric/CMakeFiles/psi_numeric.dir/block_matrix.cpp.o.d"
  "/root/repo/src/numeric/selinv.cpp" "src/numeric/CMakeFiles/psi_numeric.dir/selinv.cpp.o" "gcc" "src/numeric/CMakeFiles/psi_numeric.dir/selinv.cpp.o.d"
  "/root/repo/src/numeric/supernodal_lu.cpp" "src/numeric/CMakeFiles/psi_numeric.dir/supernodal_lu.cpp.o" "gcc" "src/numeric/CMakeFiles/psi_numeric.dir/supernodal_lu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/symbolic/CMakeFiles/psi_symbolic.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ordering/CMakeFiles/psi_ordering.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sparse/CMakeFiles/psi_sparse.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/psi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
