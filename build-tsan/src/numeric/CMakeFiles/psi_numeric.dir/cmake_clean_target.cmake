file(REMOVE_RECURSE
  "libpsi_numeric.a"
)
