
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symbolic/analysis.cpp" "src/symbolic/CMakeFiles/psi_symbolic.dir/analysis.cpp.o" "gcc" "src/symbolic/CMakeFiles/psi_symbolic.dir/analysis.cpp.o.d"
  "/root/repo/src/symbolic/etree.cpp" "src/symbolic/CMakeFiles/psi_symbolic.dir/etree.cpp.o" "gcc" "src/symbolic/CMakeFiles/psi_symbolic.dir/etree.cpp.o.d"
  "/root/repo/src/symbolic/supernodes.cpp" "src/symbolic/CMakeFiles/psi_symbolic.dir/supernodes.cpp.o" "gcc" "src/symbolic/CMakeFiles/psi_symbolic.dir/supernodes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/ordering/CMakeFiles/psi_ordering.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sparse/CMakeFiles/psi_sparse.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/psi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
