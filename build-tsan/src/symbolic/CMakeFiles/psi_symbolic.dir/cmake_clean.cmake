file(REMOVE_RECURSE
  "CMakeFiles/psi_symbolic.dir/analysis.cpp.o"
  "CMakeFiles/psi_symbolic.dir/analysis.cpp.o.d"
  "CMakeFiles/psi_symbolic.dir/etree.cpp.o"
  "CMakeFiles/psi_symbolic.dir/etree.cpp.o.d"
  "CMakeFiles/psi_symbolic.dir/supernodes.cpp.o"
  "CMakeFiles/psi_symbolic.dir/supernodes.cpp.o.d"
  "libpsi_symbolic.a"
  "libpsi_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
