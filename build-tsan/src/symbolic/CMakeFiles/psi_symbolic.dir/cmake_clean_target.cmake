file(REMOVE_RECURSE
  "libpsi_symbolic.a"
)
