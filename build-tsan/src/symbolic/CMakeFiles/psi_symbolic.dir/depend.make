# Empty dependencies file for psi_symbolic.
# This may be replaced when dependencies are built.
