file(REMOVE_RECURSE
  "libpsi_driver.a"
)
