file(REMOVE_RECURSE
  "CMakeFiles/psi_driver.dir/experiment.cpp.o"
  "CMakeFiles/psi_driver.dir/experiment.cpp.o.d"
  "CMakeFiles/psi_driver.dir/obs_report.cpp.o"
  "CMakeFiles/psi_driver.dir/obs_report.cpp.o.d"
  "CMakeFiles/psi_driver.dir/paper_matrices.cpp.o"
  "CMakeFiles/psi_driver.dir/paper_matrices.cpp.o.d"
  "CMakeFiles/psi_driver.dir/timeline.cpp.o"
  "CMakeFiles/psi_driver.dir/timeline.cpp.o.d"
  "libpsi_driver.a"
  "libpsi_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
