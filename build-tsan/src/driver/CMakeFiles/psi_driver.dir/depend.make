# Empty dependencies file for psi_driver.
# This may be replaced when dependencies are built.
