file(REMOVE_RECURSE
  "CMakeFiles/psi_common.dir/csv.cpp.o"
  "CMakeFiles/psi_common.dir/csv.cpp.o.d"
  "CMakeFiles/psi_common.dir/heatmap.cpp.o"
  "CMakeFiles/psi_common.dir/heatmap.cpp.o.d"
  "CMakeFiles/psi_common.dir/histogram.cpp.o"
  "CMakeFiles/psi_common.dir/histogram.cpp.o.d"
  "CMakeFiles/psi_common.dir/logging.cpp.o"
  "CMakeFiles/psi_common.dir/logging.cpp.o.d"
  "CMakeFiles/psi_common.dir/parallel.cpp.o"
  "CMakeFiles/psi_common.dir/parallel.cpp.o.d"
  "CMakeFiles/psi_common.dir/rng.cpp.o"
  "CMakeFiles/psi_common.dir/rng.cpp.o.d"
  "CMakeFiles/psi_common.dir/stats.cpp.o"
  "CMakeFiles/psi_common.dir/stats.cpp.o.d"
  "CMakeFiles/psi_common.dir/table.cpp.o"
  "CMakeFiles/psi_common.dir/table.cpp.o.d"
  "libpsi_common.a"
  "libpsi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
