file(REMOVE_RECURSE
  "libpsi_common.a"
)
