# Empty dependencies file for psi_common.
# This may be replaced when dependencies are built.
