file(REMOVE_RECURSE
  "CMakeFiles/psi_pselinv.dir/engine.cpp.o"
  "CMakeFiles/psi_pselinv.dir/engine.cpp.o.d"
  "CMakeFiles/psi_pselinv.dir/lu_model.cpp.o"
  "CMakeFiles/psi_pselinv.dir/lu_model.cpp.o.d"
  "CMakeFiles/psi_pselinv.dir/plan.cpp.o"
  "CMakeFiles/psi_pselinv.dir/plan.cpp.o.d"
  "CMakeFiles/psi_pselinv.dir/volume_analysis.cpp.o"
  "CMakeFiles/psi_pselinv.dir/volume_analysis.cpp.o.d"
  "libpsi_pselinv.a"
  "libpsi_pselinv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_pselinv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
