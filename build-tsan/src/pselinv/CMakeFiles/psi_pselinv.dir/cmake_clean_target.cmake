file(REMOVE_RECURSE
  "libpsi_pselinv.a"
)
