# Empty dependencies file for psi_pselinv.
# This may be replaced when dependencies are built.
