file(REMOVE_RECURSE
  "CMakeFiles/psi_obs.dir/analysis.cpp.o"
  "CMakeFiles/psi_obs.dir/analysis.cpp.o.d"
  "CMakeFiles/psi_obs.dir/chrome_trace.cpp.o"
  "CMakeFiles/psi_obs.dir/chrome_trace.cpp.o.d"
  "CMakeFiles/psi_obs.dir/metrics.cpp.o"
  "CMakeFiles/psi_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/psi_obs.dir/recorder.cpp.o"
  "CMakeFiles/psi_obs.dir/recorder.cpp.o.d"
  "libpsi_obs.a"
  "libpsi_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
