file(REMOVE_RECURSE
  "libpsi_obs.a"
)
