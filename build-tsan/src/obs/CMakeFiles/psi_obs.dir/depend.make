# Empty dependencies file for psi_obs.
# This may be replaced when dependencies are built.
