# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sparse")
subdirs("obs")
subdirs("ordering")
subdirs("symbolic")
subdirs("numeric")
subdirs("sim")
subdirs("trees")
subdirs("dist")
subdirs("pselinv")
subdirs("driver")
