
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trees/comm_tree.cpp" "src/trees/CMakeFiles/psi_trees.dir/comm_tree.cpp.o" "gcc" "src/trees/CMakeFiles/psi_trees.dir/comm_tree.cpp.o.d"
  "/root/repo/src/trees/protocol.cpp" "src/trees/CMakeFiles/psi_trees.dir/protocol.cpp.o" "gcc" "src/trees/CMakeFiles/psi_trees.dir/protocol.cpp.o.d"
  "/root/repo/src/trees/volume.cpp" "src/trees/CMakeFiles/psi_trees.dir/volume.cpp.o" "gcc" "src/trees/CMakeFiles/psi_trees.dir/volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/psi_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/psi_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/psi_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sparse/CMakeFiles/psi_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
