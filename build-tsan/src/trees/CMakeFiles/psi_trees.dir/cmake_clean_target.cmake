file(REMOVE_RECURSE
  "libpsi_trees.a"
)
