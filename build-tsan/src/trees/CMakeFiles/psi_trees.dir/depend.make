# Empty dependencies file for psi_trees.
# This may be replaced when dependencies are built.
