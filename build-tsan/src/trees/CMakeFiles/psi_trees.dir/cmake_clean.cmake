file(REMOVE_RECURSE
  "CMakeFiles/psi_trees.dir/comm_tree.cpp.o"
  "CMakeFiles/psi_trees.dir/comm_tree.cpp.o.d"
  "CMakeFiles/psi_trees.dir/protocol.cpp.o"
  "CMakeFiles/psi_trees.dir/protocol.cpp.o.d"
  "CMakeFiles/psi_trees.dir/volume.cpp.o"
  "CMakeFiles/psi_trees.dir/volume.cpp.o.d"
  "libpsi_trees.a"
  "libpsi_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
