# Empty dependencies file for psi_ordering.
# This may be replaced when dependencies are built.
