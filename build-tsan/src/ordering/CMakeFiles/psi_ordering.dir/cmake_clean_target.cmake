file(REMOVE_RECURSE
  "libpsi_ordering.a"
)
