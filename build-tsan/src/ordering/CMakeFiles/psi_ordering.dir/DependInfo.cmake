
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ordering/dissection.cpp" "src/ordering/CMakeFiles/psi_ordering.dir/dissection.cpp.o" "gcc" "src/ordering/CMakeFiles/psi_ordering.dir/dissection.cpp.o.d"
  "/root/repo/src/ordering/min_degree.cpp" "src/ordering/CMakeFiles/psi_ordering.dir/min_degree.cpp.o" "gcc" "src/ordering/CMakeFiles/psi_ordering.dir/min_degree.cpp.o.d"
  "/root/repo/src/ordering/ordering.cpp" "src/ordering/CMakeFiles/psi_ordering.dir/ordering.cpp.o" "gcc" "src/ordering/CMakeFiles/psi_ordering.dir/ordering.cpp.o.d"
  "/root/repo/src/ordering/permutation.cpp" "src/ordering/CMakeFiles/psi_ordering.dir/permutation.cpp.o" "gcc" "src/ordering/CMakeFiles/psi_ordering.dir/permutation.cpp.o.d"
  "/root/repo/src/ordering/rcm.cpp" "src/ordering/CMakeFiles/psi_ordering.dir/rcm.cpp.o" "gcc" "src/ordering/CMakeFiles/psi_ordering.dir/rcm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sparse/CMakeFiles/psi_sparse.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/psi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
