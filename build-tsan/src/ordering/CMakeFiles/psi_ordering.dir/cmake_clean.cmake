file(REMOVE_RECURSE
  "CMakeFiles/psi_ordering.dir/dissection.cpp.o"
  "CMakeFiles/psi_ordering.dir/dissection.cpp.o.d"
  "CMakeFiles/psi_ordering.dir/min_degree.cpp.o"
  "CMakeFiles/psi_ordering.dir/min_degree.cpp.o.d"
  "CMakeFiles/psi_ordering.dir/ordering.cpp.o"
  "CMakeFiles/psi_ordering.dir/ordering.cpp.o.d"
  "CMakeFiles/psi_ordering.dir/permutation.cpp.o"
  "CMakeFiles/psi_ordering.dir/permutation.cpp.o.d"
  "CMakeFiles/psi_ordering.dir/rcm.cpp.o"
  "CMakeFiles/psi_ordering.dir/rcm.cpp.o.d"
  "libpsi_ordering.a"
  "libpsi_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
