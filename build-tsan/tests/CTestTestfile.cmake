# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_common[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_dense[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sparse[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_graph[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ordering[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_symbolic[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_numeric[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_trees[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_obs[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_protocol[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_dist[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_pselinv[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_integration[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_driver[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_timeline[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_properties[1]_include.cmake")
