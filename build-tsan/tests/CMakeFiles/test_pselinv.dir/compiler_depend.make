# Empty compiler generated dependencies file for test_pselinv.
# This may be replaced when dependencies are built.
