file(REMOVE_RECURSE
  "CMakeFiles/test_pselinv.dir/test_pselinv.cpp.o"
  "CMakeFiles/test_pselinv.dir/test_pselinv.cpp.o.d"
  "test_pselinv"
  "test_pselinv.pdb"
  "test_pselinv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pselinv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
