
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/test_sim.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/driver/CMakeFiles/psi_driver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/pselinv/CMakeFiles/psi_pselinv.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dist/CMakeFiles/psi_dist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trees/CMakeFiles/psi_trees.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/psi_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/psi_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/numeric/CMakeFiles/psi_numeric.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/symbolic/CMakeFiles/psi_symbolic.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ordering/CMakeFiles/psi_ordering.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sparse/CMakeFiles/psi_sparse.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/psi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
