file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_rowreduce.dir/bench_table2_rowreduce.cpp.o"
  "CMakeFiles/bench_table2_rowreduce.dir/bench_table2_rowreduce.cpp.o.d"
  "bench_table2_rowreduce"
  "bench_table2_rowreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_rowreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
