file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_communicators.dir/bench_ablation_communicators.cpp.o"
  "CMakeFiles/bench_ablation_communicators.dir/bench_ablation_communicators.cpp.o.d"
  "bench_ablation_communicators"
  "bench_ablation_communicators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_communicators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
