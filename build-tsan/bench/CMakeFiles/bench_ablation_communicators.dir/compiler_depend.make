# Empty compiler generated dependencies file for bench_ablation_communicators.
# This may be replaced when dependencies are built.
