file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_heatmap_rowreduce.dir/bench_fig7_heatmap_rowreduce.cpp.o"
  "CMakeFiles/bench_fig7_heatmap_rowreduce.dir/bench_fig7_heatmap_rowreduce.cpp.o.d"
  "bench_fig7_heatmap_rowreduce"
  "bench_fig7_heatmap_rowreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_heatmap_rowreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
