# Empty compiler generated dependencies file for bench_fig7_heatmap_rowreduce.
# This may be replaced when dependencies are built.
