file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_colbcast.dir/bench_table1_colbcast.cpp.o"
  "CMakeFiles/bench_table1_colbcast.dir/bench_table1_colbcast.cpp.o.d"
  "bench_table1_colbcast"
  "bench_table1_colbcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_colbcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
