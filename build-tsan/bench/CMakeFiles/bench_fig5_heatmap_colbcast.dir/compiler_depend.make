# Empty compiler generated dependencies file for bench_fig5_heatmap_colbcast.
# This may be replaced when dependencies are built.
