file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_heatmap_colbcast.dir/bench_fig5_heatmap_colbcast.cpp.o"
  "CMakeFiles/bench_fig5_heatmap_colbcast.dir/bench_fig5_heatmap_colbcast.cpp.o.d"
  "bench_fig5_heatmap_colbcast"
  "bench_fig5_heatmap_colbcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_heatmap_colbcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
