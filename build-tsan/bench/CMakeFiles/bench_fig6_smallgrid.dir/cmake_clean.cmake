file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_smallgrid.dir/bench_fig6_smallgrid.cpp.o"
  "CMakeFiles/bench_fig6_smallgrid.dir/bench_fig6_smallgrid.cpp.o.d"
  "bench_fig6_smallgrid"
  "bench_fig6_smallgrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_smallgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
