# Empty dependencies file for bench_fig4_histograms.
# This may be replaced when dependencies are built.
