file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_histograms.dir/bench_fig4_histograms.cpp.o"
  "CMakeFiles/bench_fig4_histograms.dir/bench_fig4_histograms.cpp.o.d"
  "bench_fig4_histograms"
  "bench_fig4_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
