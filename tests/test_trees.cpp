/// Unit + property tests for the communication trees — the paper's core
/// contribution — and the analytic volume accounting.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/check.hpp"
#include "trees/comm_tree.hpp"
#include "trees/volume.hpp"

namespace psi::trees {
namespace {

std::vector<int> iota_receivers(int count, int root) {
  std::vector<int> receivers;
  for (int r = 0; receivers.size() < static_cast<std::size_t>(count); ++r)
    if (r != root) receivers.push_back(r);
  return receivers;
}

TreeOptions opts(TreeScheme scheme, std::uint64_t seed = 0x5eed) {
  TreeOptions o;
  o.scheme = scheme;
  o.seed = seed;
  return o;
}

/// children_of returns a span over the tree's flattened storage; materialize
/// it for container comparisons.
std::vector<int> kids(const CommTree& tree, int rank) {
  const auto span = tree.children_of(rank);
  return {span.begin(), span.end()};
}

/// Structural invariants every scheme must satisfy.
class TreeInvariantTest
    : public ::testing::TestWithParam<std::tuple<TreeScheme, int>> {};

TEST_P(TreeInvariantTest, SpanningTreeInvariants) {
  const auto [scheme, receiver_count] = GetParam();
  const int root = 7;
  const CommTree tree =
      CommTree::build(opts(scheme), root, iota_receivers(receiver_count, root), 11);

  EXPECT_EQ(tree.root(), root);
  EXPECT_EQ(tree.participant_count(), receiver_count + 1);
  EXPECT_EQ(tree.parent_of(root), -1);

  // Every receiver has exactly one parent, reachable from the root.
  std::set<int> reached{root};
  std::vector<int> frontier{root};
  int edges = 0;
  while (!frontier.empty()) {
    const int v = frontier.back();
    frontier.pop_back();
    for (int c : tree.children_of(v)) {
      EXPECT_TRUE(reached.insert(c).second) << "rank " << c << " reached twice";
      EXPECT_EQ(tree.parent_of(c), v);
      frontier.push_back(c);
      ++edges;
    }
  }
  EXPECT_EQ(edges, receiver_count);
  EXPECT_EQ(static_cast<int>(reached.size()), receiver_count + 1);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSizes, TreeInvariantTest,
    ::testing::Combine(::testing::Values(TreeScheme::kFlat, TreeScheme::kBinary,
                                         TreeScheme::kShiftedBinary,
                                         TreeScheme::kRandomPerm,
                                         TreeScheme::kHybrid,
                                         TreeScheme::kBinomial,
                                         TreeScheme::kShiftedBinomial),
                       ::testing::Values(0, 1, 2, 3, 7, 16, 33, 100)));

TEST(CommTree, FlatShape) {
  const CommTree tree = CommTree::build(opts(TreeScheme::kFlat), 3,
                                        {0, 1, 2, 4, 5}, 0);
  EXPECT_EQ(tree.children_of(3).size(), 5u);
  EXPECT_EQ(tree.depth(), 1);
  EXPECT_EQ(tree.internal_node_count(), 1);
}

TEST(CommTree, BinaryRootSendsAtMostTwo) {
  for (int receivers : {2, 5, 17, 64, 200}) {
    const CommTree tree = CommTree::build(opts(TreeScheme::kBinary), 0,
                                          iota_receivers(receivers, 0), 0);
    EXPECT_LE(tree.children_of(0).size(), 2u) << receivers << " receivers";
  }
}

TEST(CommTree, BinaryDepthLogarithmic) {
  const int receivers = 255;
  const CommTree tree = CommTree::build(opts(TreeScheme::kBinary), 0,
                                        iota_receivers(receivers, 0), 0);
  // Critical path log p vs flat's p (paper §III).
  EXPECT_LE(tree.depth(), 16);
  EXPECT_GE(tree.depth(), 8);
}

TEST(CommTree, BinaryMatchesPaperFigure3b) {
  // Paper Fig. 3(b): root P4 over receivers {P1,P2,P3,P5,P6}:
  // P4 -> {P1, P5}; P1 -> {P2, P3}; P5 -> {P6}.
  const CommTree tree =
      CommTree::build(opts(TreeScheme::kBinary), 4, {1, 2, 3, 5, 6}, 0);
  EXPECT_EQ(kids(tree, 4), (std::vector<int>{1, 5}));
  EXPECT_EQ(kids(tree, 1), (std::vector<int>{2, 3}));
  EXPECT_EQ(kids(tree, 5), (std::vector<int>{6}));
  EXPECT_TRUE(tree.children_of(6).empty());
}

TEST(CommTree, BinomialShape) {
  // Classic binomial over 8 participants (root + 7), MPICH convention: index
  // i receives from i with its highest set bit cleared. Root's children sit
  // at offsets 1, 2, 4; node 1 roots the largest subtree; depth log2(8) = 3.
  const CommTree tree = CommTree::build(opts(TreeScheme::kBinomial), 0,
                                        {1, 2, 3, 4, 5, 6, 7}, 0);
  EXPECT_EQ(kids(tree, 0), (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(kids(tree, 1), (std::vector<int>{3, 5}));
  EXPECT_EQ(kids(tree, 2), (std::vector<int>{6}));
  EXPECT_EQ(kids(tree, 3), (std::vector<int>{7}));
  EXPECT_TRUE(tree.children_of(4).empty());
  EXPECT_EQ(tree.depth(), 3);
}

TEST(CommTree, BinomialDepthLogarithmic) {
  const CommTree tree = CommTree::build(opts(TreeScheme::kBinomial), 0,
                                        iota_receivers(255, 0), 0);
  EXPECT_EQ(tree.depth(), 8);  // 256 participants
  EXPECT_EQ(tree.children_of(0).size(), 8u);  // root sends log2(p) messages
}

TEST(CommTree, ShiftedBinomialDiversifiesLikeShiftedBinary) {
  // The circular-shift heuristic composes with the binomial shape too: no
  // receiver is an internal node in every collective.
  const std::vector<int> receivers = iota_receivers(32, 40);
  std::vector<int> count(64, 0);
  for (std::uint64_t id = 0; id < 200; ++id) {
    const CommTree tree =
        CommTree::build(opts(TreeScheme::kShiftedBinomial), 40, receivers, id);
    for (int r : tree.participants())
      if (!tree.children_of(r).empty() && r != 40)
        ++count[static_cast<std::size_t>(r)];
  }
  for (int r : receivers) {
    EXPECT_GT(count[static_cast<std::size_t>(r)], 0) << "rank " << r;
    EXPECT_LT(count[static_cast<std::size_t>(r)], 200) << "rank " << r;
  }
}

TEST(CommTree, ShiftedIsRotationOfReceivers) {
  // The shifted scheme must produce the binary tree of some rotation of the
  // receiver list (paper Fig. 3(c)).
  const std::vector<int> receivers{1, 2, 3, 5, 6};
  const CommTree shifted =
      CommTree::build(opts(TreeScheme::kShiftedBinary), 4, receivers, 99);
  // Recover the rotation from the participant order (root first, then the
  // rotated list in construction order is order_[1..]).
  const auto& order = shifted.participants();
  std::vector<int> rotated(order.begin() + 1, order.end());
  bool is_rotation = false;
  for (std::size_t s = 0; s < receivers.size(); ++s) {
    std::vector<int> candidate;
    for (std::size_t i = 0; i < receivers.size(); ++i)
      candidate.push_back(receivers[(s + i) % receivers.size()]);
    if (candidate == rotated) is_rotation = true;
  }
  EXPECT_TRUE(is_rotation);
}

TEST(CommTree, ShiftedDeterministicPerCollectiveId) {
  const std::vector<int> receivers = iota_receivers(20, 5);
  const CommTree a =
      CommTree::build(opts(TreeScheme::kShiftedBinary), 5, receivers, 42);
  const CommTree b =
      CommTree::build(opts(TreeScheme::kShiftedBinary), 5, receivers, 42);
  EXPECT_EQ(a.participants(), b.participants());
  // Different collective ids rotate differently for at least some ids.
  bool any_differ = false;
  for (std::uint64_t id = 0; id < 8; ++id) {
    const CommTree c =
        CommTree::build(opts(TreeScheme::kShiftedBinary), 5, receivers, id);
    if (c.participants() != a.participants()) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(CommTree, ShiftedDiversifiesInternalNodes) {
  // The heuristic's whole point: across many concurrent collectives over the
  // same group, the deterministic binary tree picks the same internal nodes
  // (the low ranks) while the shifted tree spreads them.
  const std::vector<int> receivers = iota_receivers(32, 40);
  auto internal_counts = [&](TreeScheme scheme) {
    std::vector<int> count(64, 0);
    for (std::uint64_t id = 0; id < 200; ++id) {
      const CommTree tree = CommTree::build(opts(scheme), 40, receivers, id);
      for (int r : tree.participants())
        if (!tree.children_of(r).empty() && r != 40)
          ++count[static_cast<std::size_t>(r)];
    }
    return count;
  };
  const std::vector<int> binary = internal_counts(TreeScheme::kBinary);
  const std::vector<int> shifted = internal_counts(TreeScheme::kShiftedBinary);
  // Binary: the first receiver is an internal node in EVERY collective and
  // the last receiver in none.
  EXPECT_EQ(binary[static_cast<std::size_t>(receivers.front())], 200);
  EXPECT_EQ(binary[static_cast<std::size_t>(receivers.back())], 0);
  // Shifted: every receiver is an internal node sometimes, none always.
  for (int r : receivers) {
    EXPECT_GT(shifted[static_cast<std::size_t>(r)], 0) << "rank " << r;
    EXPECT_LT(shifted[static_cast<std::size_t>(r)], 200) << "rank " << r;
  }
}

TEST(CommTree, HybridSwitchesOnThreshold) {
  TreeOptions o = opts(TreeScheme::kHybrid);
  o.hybrid_flat_threshold = 10;
  const CommTree small = CommTree::build(o, 0, iota_receivers(8, 0), 1);
  EXPECT_EQ(small.depth(), 1);  // flat
  const CommTree large = CommTree::build(o, 0, iota_receivers(40, 0), 1);
  EXPECT_GT(large.depth(), 1);  // shifted binary
  EXPECT_LE(large.children_of(0).size(), 2u);
}

TEST(CommTree, RejectsBadInput) {
  EXPECT_THROW(CommTree::build(opts(TreeScheme::kFlat), 0, {2, 1}, 0), Error);
  EXPECT_THROW(CommTree::build(opts(TreeScheme::kFlat), 1, {1, 2}, 0), Error);
  const CommTree tree = CommTree::build(opts(TreeScheme::kFlat), 0, {1}, 0);
  EXPECT_THROW(tree.children_of(9), Error);
  EXPECT_FALSE(tree.participates(9));
}

// ----- non-arithmetic-progression participant sets ---------------------------
// A processor row/column group is an arithmetic progression and hits
// position_of()'s stride fast path; these sets are deliberately irregular so
// membership lookup runs the sorted_ranks_ binary-search fallback.

TEST(CommTree, NonApMembershipLookup) {
  const int root = 2;
  const std::vector<int> receivers{3, 5, 11, 17, 23, 41};  // irregular gaps
  for (TreeScheme scheme :
       {TreeScheme::kFlat, TreeScheme::kBinary, TreeScheme::kShiftedBinary,
        TreeScheme::kRandomPerm, TreeScheme::kHybrid, TreeScheme::kBinomial,
        TreeScheme::kShiftedBinomial}) {
    const CommTree tree = CommTree::build(opts(scheme), root, receivers, 13);
    EXPECT_TRUE(tree.participates(root)) << scheme_name(scheme);
    for (int r : receivers)
      EXPECT_TRUE(tree.participates(r)) << scheme_name(scheme) << " rank " << r;
    // Non-members inside and outside the hull, including values an
    // arithmetic-progression formula would wrongly accept.
    for (int r : {0, 4, 10, 12, 29, 40, 42, 100})
      EXPECT_FALSE(tree.participates(r))
          << scheme_name(scheme) << " rank " << r;

    // The fallback must still yield a spanning tree: every receiver
    // reachable exactly once, parent links consistent.
    std::set<int> reached{root};
    std::vector<int> frontier{root};
    while (!frontier.empty()) {
      const int v = frontier.back();
      frontier.pop_back();
      for (int c : tree.children_of(v)) {
        EXPECT_TRUE(reached.insert(c).second) << scheme_name(scheme);
        EXPECT_EQ(tree.parent_of(c), v) << scheme_name(scheme);
        frontier.push_back(c);
      }
    }
    EXPECT_EQ(reached.size(), receivers.size() + 1) << scheme_name(scheme);
  }
}

TEST(CommTree, ApWithOneOutlierFallsBack) {
  // {10, 20, 30, 45}: the first three form a stride-10 progression; the last
  // breaks it. A stride detector that only samples a prefix would misclassify
  // this set — every membership query must still be exact.
  const CommTree tree =
      CommTree::build(opts(TreeScheme::kBinary), 10, {20, 30, 45}, 0);
  for (int r : {10, 20, 30, 45}) EXPECT_TRUE(tree.participates(r));
  EXPECT_FALSE(tree.participates(40));  // the AP formula's would-be member
  EXPECT_FALSE(tree.participates(35));
  EXPECT_FALSE(tree.participates(50));
  EXPECT_EQ(tree.parent_of(10), -1);
  int edges = 0;
  for (int r : {10, 20, 30, 45}) edges += static_cast<int>(tree.children_of(r).size());
  EXPECT_EQ(edges, 3);  // spanning tree over 4 participants
}

TEST(CommTree, SingletonAndPairParticipants) {
  // Degenerate sizes exercise both lookup paths' boundary handling.
  const CommTree solo = CommTree::build(opts(TreeScheme::kShiftedBinary), 6, {}, 1);
  EXPECT_TRUE(solo.participates(6));
  EXPECT_FALSE(solo.participates(5));
  EXPECT_EQ(solo.depth(), 0);
  const CommTree pair =
      CommTree::build(opts(TreeScheme::kShiftedBinary), 6, {9}, 1);
  EXPECT_TRUE(pair.participates(9));
  EXPECT_FALSE(pair.participates(7));
  EXPECT_EQ(pair.parent_of(9), 6);
}

TEST(SchemeNames, RoundTrip) {
  for (TreeScheme s : {TreeScheme::kFlat, TreeScheme::kBinary,
                       TreeScheme::kShiftedBinary, TreeScheme::kRandomPerm,
                       TreeScheme::kHybrid})
    EXPECT_EQ(parse_scheme(scheme_name(s)), s);
  EXPECT_EQ(parse_scheme("shifted"), TreeScheme::kShiftedBinary);
  EXPECT_THROW(parse_scheme("bogus"), Error);
}

// ----- volume accounting -----------------------------------------------------

TEST(Volume, BcastConservation) {
  // Total sent == total received == bytes * receiver_count for any scheme.
  for (TreeScheme scheme : {TreeScheme::kFlat, TreeScheme::kBinary,
                            TreeScheme::kShiftedBinary, TreeScheme::kRandomPerm}) {
    const CommTree tree =
        CommTree::build(opts(scheme), 3, iota_receivers(21, 3), 5);
    VolumeAccumulator acc(32);
    acc.add_bcast(tree, 1000);
    const Count sent = std::accumulate(acc.bytes_sent().begin(),
                                       acc.bytes_sent().end(), Count{0});
    const Count received = std::accumulate(acc.bytes_received().begin(),
                                           acc.bytes_received().end(), Count{0});
    EXPECT_EQ(sent, 21 * 1000) << scheme_name(scheme);
    EXPECT_EQ(received, 21 * 1000) << scheme_name(scheme);
  }
}

TEST(Volume, FlatBcastLoadsRootOnly) {
  const CommTree tree = CommTree::build(opts(TreeScheme::kFlat), 0,
                                        iota_receivers(9, 0), 0);
  VolumeAccumulator acc(16);
  acc.add_bcast(tree, 500);
  EXPECT_EQ(acc.bytes_sent()[0], 9 * 500);
  for (int r = 1; r <= 9; ++r) {
    EXPECT_EQ(acc.bytes_sent()[static_cast<std::size_t>(r)], 0);
    EXPECT_EQ(acc.bytes_received()[static_cast<std::size_t>(r)], 500);
  }
}

TEST(Volume, BinaryBcastRootSendsTwo) {
  const CommTree tree = CommTree::build(opts(TreeScheme::kBinary), 0,
                                        iota_receivers(15, 0), 0);
  VolumeAccumulator acc(16);
  acc.add_bcast(tree, 500);
  EXPECT_EQ(acc.bytes_sent()[0], 2 * 500);  // paper: "from p-1 messages to two"
}

TEST(Volume, ReduceMirrorsBcast) {
  const CommTree tree = CommTree::build(opts(TreeScheme::kBinary), 2,
                                        iota_receivers(12, 2), 3);
  VolumeAccumulator bcast(16), reduce(16);
  bcast.add_bcast(tree, 100);
  reduce.add_reduce(tree, 100);
  for (int r = 0; r < 16; ++r) {
    EXPECT_EQ(bcast.bytes_sent()[static_cast<std::size_t>(r)],
              reduce.bytes_received()[static_cast<std::size_t>(r)]);
    EXPECT_EQ(bcast.bytes_received()[static_cast<std::size_t>(r)],
              reduce.bytes_sent()[static_cast<std::size_t>(r)]);
  }
}

TEST(Volume, P2pAndSelfSend) {
  VolumeAccumulator acc(4);
  acc.add_p2p(1, 2, 64);
  acc.add_p2p(3, 3, 64);  // self: no traffic
  EXPECT_EQ(acc.bytes_sent()[1], 64);
  EXPECT_EQ(acc.bytes_received()[2], 64);
  EXPECT_EQ(acc.bytes_sent()[3], 0);
  EXPECT_EQ(acc.bytes_received()[3], 0);
}

TEST(Volume, ShiftedBalancesAcrossCollectives) {
  // Aggregate 300 broadcasts over the same 24-rank group: the shifted scheme
  // must have a much smaller max/min spread than the plain binary tree
  // (Table I's phenomenon in miniature).
  const std::vector<int> receivers = iota_receivers(23, 30);
  auto spread = [&](TreeScheme scheme) {
    VolumeAccumulator acc(31);
    for (std::uint64_t id = 0; id < 300; ++id) {
      const CommTree tree = CommTree::build(opts(scheme), 30, receivers, id);
      acc.add_bcast(tree, 1000);
    }
    Count lo = acc.bytes_sent()[0], hi = acc.bytes_sent()[0];
    for (int r : receivers) {
      lo = std::min(lo, acc.bytes_sent()[static_cast<std::size_t>(r)]);
      hi = std::max(hi, acc.bytes_sent()[static_cast<std::size_t>(r)]);
    }
    return std::make_pair(lo, hi);
  };
  const auto [binary_lo, binary_hi] = spread(TreeScheme::kBinary);
  const auto [shifted_lo, shifted_hi] = spread(TreeScheme::kShiftedBinary);
  EXPECT_EQ(binary_lo, 0);  // the highest rank never forwards (paper §III)
  EXPECT_GT(shifted_lo, 0);
  EXPECT_LT(shifted_hi - shifted_lo, binary_hi - binary_lo);
}

}  // namespace
}  // namespace psi::trees
