/// \file test_serve.cpp
/// \brief psi::serve tests: fingerprint keying, plan-cache policy,
/// cached-vs-fresh bitwise equality, worker/arrival-order determinism,
/// priority scheduling, batching, and admission backpressure.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "serve/plan_cache.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "sparse/generators.hpp"

namespace serve = psi::serve;
using psi::GeneratedMatrix;
using psi::Int;
using psi::SparseMatrix;

namespace {

serve::PlanConfig small_config() {
  serve::PlanConfig config;
  config.grid_rows = 2;
  config.grid_cols = 2;
  return config;
}

SparseMatrix small_matrix(Int nx, std::uint64_t value_seed) {
  GeneratedMatrix gen = psi::laplacian2d(nx, nx, 1);
  psi::assign_dd_values(gen.matrix, value_seed, psi::ValueKind::kSymmetric);
  return gen.matrix;
}

serve::Service::Config service_config(int workers) {
  serve::Service::Config config;
  config.workers = workers;
  config.plan = small_config();
  return config;
}

serve::Response submit_and_wait(serve::Service& service, SparseMatrix matrix,
                                const std::string& id,
                                bool return_ainv = false) {
  serve::Request request;
  request.id = id;
  request.matrix = std::move(matrix);
  request.return_ainv = return_ainv;
  return service.submit(std::move(request)).get();
}

bool blocks_equal(const psi::BlockMatrix& a, const psi::BlockMatrix& b) {
  if (a.supernode_count() != b.supernode_count()) return false;
  const auto same = [](const psi::DenseMatrix& x, const psi::DenseMatrix& y) {
    return x.rows() == y.rows() && x.cols() == y.cols() &&
           std::memcmp(x.data(), y.data(),
                       static_cast<std::size_t>(x.rows()) *
                           static_cast<std::size_t>(x.cols()) *
                           sizeof(double)) == 0;
  };
  for (Int k = 0; k < a.supernode_count(); ++k) {
    if (!same(a.diag(k), b.diag(k)) || !same(a.lpanel(k), b.lpanel(k)) ||
        !same(a.upanel(k), b.upanel(k)))
      return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Fingerprints

TEST(ServeFingerprint, PatternKeyedNotValueKeyed) {
  const serve::PlanConfig config = small_config();
  const SparseMatrix a = small_matrix(8, 1);
  const SparseMatrix b = small_matrix(8, 999);  // same pattern, new values
  const SparseMatrix c = small_matrix(9, 1);    // different pattern
  const serve::Fingerprint fa = serve::plan_fingerprint(a.pattern, config);
  EXPECT_EQ(fa, serve::plan_fingerprint(b.pattern, config));
  EXPECT_NE(fa, serve::plan_fingerprint(c.pattern, config));
  EXPECT_EQ(fa.hex().size(), 32u);
}

TEST(ServeFingerprint, SensitiveToEveryConfigKnob) {
  const SparseMatrix a = small_matrix(8, 1);
  const serve::PlanConfig base = small_config();
  const serve::Fingerprint fp = serve::plan_fingerprint(a.pattern, base);

  serve::PlanConfig grid = base;
  grid.grid_cols = 4;
  EXPECT_NE(fp, serve::plan_fingerprint(a.pattern, grid));

  serve::PlanConfig scheme = base;
  scheme.tree.scheme = psi::trees::TreeScheme::kFlat;
  EXPECT_NE(fp, serve::plan_fingerprint(a.pattern, scheme));

  serve::PlanConfig seed = base;
  seed.tree.seed = 0xfeedULL;
  EXPECT_NE(fp, serve::plan_fingerprint(a.pattern, seed));

  serve::PlanConfig symmetry = base;
  symmetry.symmetry = psi::pselinv::ValueSymmetry::kUnsymmetric;
  EXPECT_NE(fp, serve::plan_fingerprint(a.pattern, symmetry));

  serve::PlanConfig ordering = base;
  ordering.analysis.ordering.method = psi::OrderingMethod::kMinDegree;
  EXPECT_NE(fp, serve::plan_fingerprint(a.pattern, ordering));

  serve::PlanConfig supernodes = base;
  supernodes.analysis.supernodes.max_size = 7;
  EXPECT_NE(fp, serve::plan_fingerprint(a.pattern, supernodes));
}

TEST(ServeFingerprint, ByteEncodingIsBigEndianHiThenLo) {
  // to_bytes() is a persistent contract (it names on-disk plan files): `hi`
  // then `lo`, most significant byte first, reading exactly like hex().
  serve::Fingerprint fp;
  fp.hi = 0x0102030405060708ULL;
  fp.lo = 0x090a0b0c0d0e0f10ULL;
  const std::array<std::uint8_t, 16> bytes = fp.to_bytes();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(bytes[static_cast<std::size_t>(i)], i + 1);
    EXPECT_EQ(bytes[static_cast<std::size_t>(8 + i)], 9 + i);
  }
  EXPECT_EQ(fp.hex(), "0102030405060708090a0b0c0d0e0f10");
}

TEST(ServeFingerprint, BytesAndHexRoundTrip) {
  const serve::Fingerprint cases[] = {
      {0, 0},
      {0xffffffffffffffffULL, 0xffffffffffffffffULL},
      {0xdeadbeefcafef00dULL, 0x0123456789abcdefULL},
      {1, 0},
      {0, 1}};
  for (const serve::Fingerprint& fp : cases) {
    EXPECT_EQ(serve::Fingerprint::from_bytes(fp.to_bytes()), fp);
    const auto parsed = serve::Fingerprint::from_hex(fp.hex());
    ASSERT_TRUE(parsed.has_value()) << fp.hex();
    EXPECT_EQ(*parsed, fp);
  }
}

TEST(ServeFingerprint, ByteOrderSortsLikeHex) {
  // Lexicographic order of to_bytes() must match lexicographic order of
  // hex() — directory listings of plan files sort consistently either way.
  serve::Fingerprint a, b;
  a.hi = 0x00000000000000ffULL;  // small hi, huge lo
  a.lo = 0xffffffffffffffffULL;
  b.hi = 0x0100000000000000ULL;  // larger hi, zero lo
  b.lo = 0;
  const auto ab = a.to_bytes(), bb = b.to_bytes();
  EXPECT_LT(a.hex(), b.hex());
  EXPECT_TRUE(std::lexicographical_compare(ab.begin(), ab.end(), bb.begin(),
                                           bb.end()));
}

TEST(ServeFingerprint, FromHexRejectsMalformedInput) {
  EXPECT_FALSE(serve::Fingerprint::from_hex("").has_value());
  EXPECT_FALSE(serve::Fingerprint::from_hex("0123").has_value());
  EXPECT_FALSE(  // 31 digits
      serve::Fingerprint::from_hex(std::string(31, 'a')).has_value());
  EXPECT_FALSE(  // 33 digits
      serve::Fingerprint::from_hex(std::string(33, 'a')).has_value());
  std::string bad(32, 'a');
  bad[15] = 'g';  // non-hex digit
  EXPECT_FALSE(serve::Fingerprint::from_hex(bad).has_value());
  bad[15] = ' ';
  EXPECT_FALSE(serve::Fingerprint::from_hex(bad).has_value());
  EXPECT_TRUE(serve::Fingerprint::from_hex(std::string(32, 'a')).has_value());
}

// ---------------------------------------------------------------------------
// Plan cache

TEST(ServePlanCache, HitMissEvictSequenceUnderByteBudget) {
  const serve::PlanConfig config = small_config();
  const SparseMatrix ma = small_matrix(8, 1);
  const SparseMatrix mb = small_matrix(9, 1);
  const SparseMatrix mc = small_matrix(10, 1);
  // Learn each plan's footprint so the budget holds exactly two of them.
  const auto pa = serve::build_serve_plan(ma, config);
  const auto pb = serve::build_serve_plan(mb, config);
  const auto pc = serve::build_serve_plan(mc, config);

  serve::PlanCache::Config cache_config;
  cache_config.capacity_bytes = pa->bytes + pb->bytes + pc->bytes / 2;
  serve::PlanCache cache(cache_config);

  const auto build = [&](const SparseMatrix& m) {
    return [&config, &m] { return serve::build_serve_plan(m, config); };
  };
  bool hit = true;
  cache.get_or_build(pa->fingerprint, build(ma), &hit);
  EXPECT_FALSE(hit);
  cache.get_or_build(pb->fingerprint, build(mb), &hit);
  EXPECT_FALSE(hit);
  cache.get_or_build(pa->fingerprint, build(ma), &hit);  // touch A: B is LRU
  EXPECT_TRUE(hit);
  cache.get_or_build(pc->fingerprint, build(mc), &hit);  // evicts B, not A
  EXPECT_FALSE(hit);

  serve::PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, pa->bytes + pc->bytes);

  EXPECT_NE(cache.lookup(pa->fingerprint), nullptr);  // survived (was MRU)
  EXPECT_EQ(cache.lookup(pb->fingerprint), nullptr);  // the eviction victim
  EXPECT_NE(cache.lookup(pc->fingerprint), nullptr);
}

TEST(ServePlanCache, OversizePlanServedButNotRetained) {
  const serve::PlanConfig config = small_config();
  const SparseMatrix m = small_matrix(8, 1);
  serve::PlanCache::Config cache_config;
  cache_config.capacity_bytes = 1024;  // far below any real plan
  serve::PlanCache cache(cache_config);

  const serve::Fingerprint fp = serve::plan_fingerprint(m.pattern, config);
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return serve::build_serve_plan(m, config);
  };
  EXPECT_NE(cache.get_or_build(fp, build), nullptr);
  EXPECT_NE(cache.get_or_build(fp, build), nullptr);
  EXPECT_EQ(builds, 2);  // nothing was retained
  const serve::PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.oversize, 2);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(ServePlanCache, SingleFlightCoalescesConcurrentBuilds) {
  const serve::PlanConfig config = small_config();
  const SparseMatrix m = small_matrix(8, 1);
  const serve::Fingerprint fp = serve::plan_fingerprint(m.pattern, config);
  serve::PlanCache cache({});

  std::promise<void> build_started;
  std::atomic<int> builds{0};
  const auto slow_build = [&] {
    ++builds;
    build_started.set_value();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return serve::build_serve_plan(m, config);
  };
  std::shared_ptr<const serve::ServePlan> p1, p2;
  std::thread first([&] { p1 = cache.get_or_build(fp, slow_build); });
  build_started.get_future().wait();  // the build is definitely in flight
  p2 = cache.get_or_build(
      fp, [&] { return serve::build_serve_plan(m, config); });
  first.join();
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(p1, p2);
  const serve::PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.coalesced, 1);
  EXPECT_EQ(stats.misses, 2);
}

// ---------------------------------------------------------------------------
// Service: numeric correctness and determinism

TEST(ServeService, CachedPlanGivesBitwiseIdenticalResultToFreshPlan) {
  const SparseMatrix first = small_matrix(8, 1);
  const SparseMatrix second = small_matrix(8, 2);  // new values, same pattern

  serve::Service warm_service(service_config(1));
  const serve::Response cold =
      submit_and_wait(warm_service, first, "cold", /*return_ainv=*/true);
  ASSERT_EQ(cold.status, serve::Status::kOk) << cold.detail;
  EXPECT_FALSE(cold.cache_hit);
  const serve::Response warm =
      submit_and_wait(warm_service, second, "warm", /*return_ainv=*/true);
  ASSERT_EQ(warm.status, serve::Status::kOk) << warm.detail;
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(cold.fingerprint, warm.fingerprint);
  EXPECT_NE(cold.digest, warm.digest);  // different values, different inverse

  // A fresh service (empty cache) on the same second matrix must produce a
  // bitwise identical inverse to the warm-cache run.
  serve::Service fresh_service(service_config(1));
  const serve::Response fresh =
      submit_and_wait(fresh_service, second, "fresh", /*return_ainv=*/true);
  ASSERT_EQ(fresh.status, serve::Status::kOk) << fresh.detail;
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(warm.digest, fresh.digest);
  ASSERT_NE(warm.ainv, nullptr);
  ASSERT_NE(fresh.ainv, nullptr);
  EXPECT_TRUE(blocks_equal(*warm.ainv, *fresh.ainv));
}

TEST(ServeService, BitwiseDeterministicAcrossWorkersAndArrivalOrder) {
  serve::WorkloadOptions workload;
  workload.structures = 3;
  workload.nx = 8;
  workload.requests = 9;
  workload.zipf_s = 0.5;
  workload.seed = 7;

  std::vector<serve::Request> requests;
  for (int i = 0; i < workload.requests; ++i)
    requests.push_back(serve::make_request(workload, i));

  std::map<std::string, std::string> reference;
  for (const int workers : {1, 2, 8}) {
    for (const bool reversed : {false, true}) {
      serve::Service service(service_config(workers));
      std::vector<std::future<serve::Response>> futures;
      for (int i = 0; i < workload.requests; ++i) {
        const int idx = reversed ? workload.requests - 1 - i : i;
        serve::Request copy;
        copy.id = requests[static_cast<std::size_t>(idx)].id;
        copy.matrix = requests[static_cast<std::size_t>(idx)].matrix;
        copy.priority = requests[static_cast<std::size_t>(idx)].priority;
        futures.push_back(service.submit(std::move(copy)));
      }
      std::map<std::string, std::string> digests;
      for (auto& f : futures) {
        const serve::Response r = f.get();
        ASSERT_EQ(r.status, serve::Status::kOk) << r.detail;
        digests[r.id] = r.digest;
      }
      if (reference.empty()) {
        reference = digests;
        EXPECT_EQ(reference.size(), 9u);
      } else {
        EXPECT_EQ(digests, reference)
            << "workers=" << workers << " reversed=" << reversed;
      }
    }
  }
}

TEST(ServeService, BitwiseDeterministicAcrossComputeThreads) {
  // The task-parallel numeric phase must not move a single bit: every
  // compute-thread count serves the exact digest the sequential kernels
  // produce, cold and warm alike.
  serve::WorkloadOptions workload;
  workload.structures = 3;
  workload.nx = 8;
  workload.requests = 9;
  workload.zipf_s = 0.5;
  workload.seed = 7;

  std::map<std::string, std::string> reference;
  for (const int compute_threads : {1, 2, 4, 8}) {
    serve::Service::Config config = service_config(/*workers=*/1);
    config.compute_threads = compute_threads;
    serve::Service service(config);
    EXPECT_EQ(service.compute_threads(), compute_threads);
    std::map<std::string, std::string> digests;
    for (int i = 0; i < workload.requests; ++i) {
      const serve::Response r =
          service.submit(serve::make_request(workload, i)).get();
      ASSERT_EQ(r.status, serve::Status::kOk) << r.detail;
      digests[r.id] = r.digest;
    }
    if (compute_threads > 1) {
      const psi::numeric::TaskGraphStats stats = service.task_graph_stats();
      EXPECT_GT(stats.tasks, 0);  // the parallel path actually ran
      EXPECT_EQ(stats.threads, compute_threads);
    }
    if (reference.empty()) {
      reference = digests;
      EXPECT_EQ(reference.size(), 9u);
    } else {
      EXPECT_EQ(digests, reference) << "compute_threads=" << compute_threads;
    }
  }
}

TEST(ServeService, ComputeThreadsConfigSentinelResolvesFromEnv) {
  ASSERT_EQ(setenv("PSI_SERVE_COMPUTE_THREADS", "2", 1), 0);
  serve::Service::Config config = service_config(/*workers=*/1);
  config.compute_threads = 0;  // sentinel: resolve from the environment
  serve::Service service(config);
  EXPECT_EQ(service.compute_threads(), 2);
  ASSERT_EQ(unsetenv("PSI_SERVE_COMPUTE_THREADS"), 0);

  serve::Service::Config clamped = service_config(/*workers=*/1);
  clamped.compute_threads = psi::parallel::kMaxComputeThreads + 1000;
  serve::Service capped(clamped);
  EXPECT_EQ(capped.compute_threads(), psi::parallel::kMaxComputeThreads);
}

TEST(ServeService, ScatterPhaseReportedAndDecomposed) {
  serve::Service::Config config = service_config(/*workers=*/1);
  config.compute_threads = 2;
  serve::Service service(config);
  const serve::Response r =
      submit_and_wait(service, small_matrix(6, 21), "phase-probe");
  ASSERT_EQ(r.status, serve::Status::kOk) << r.detail;
  EXPECT_GE(r.scatter_seconds, 0.0);
  EXPECT_GE(r.factor_seconds, 0.0);
  EXPECT_GT(r.invert_seconds, 0.0);
  EXPECT_EQ(service.latency("scatter").count(), 1u);
  service.shutdown();
  psi::obs::MetricsRegistry registry;
  service.fold_metrics(registry);  // includes the scatter histogram + graph
}

TEST(ServeService, StructurallyUnsymmetricMatrixFailsWithReason) {
  psi::TripletBuilder builder(3);
  builder.add(0, 0, 4.0);
  builder.add(1, 1, 4.0);
  builder.add(2, 2, 4.0);
  builder.add(1, 0, 1.0);  // (0,1) absent: structurally unsymmetric
  serve::Service service(service_config(1));
  const serve::Response r =
      submit_and_wait(service, builder.compile(), "bad");
  EXPECT_EQ(r.status, serve::Status::kFailed);
  EXPECT_NE(r.detail.find("structurally symmetric"), std::string::npos)
      << r.detail;
  EXPECT_EQ(service.counters().failed, 1);
}

// ---------------------------------------------------------------------------
// Service: scheduling

TEST(ServeService, InteractiveRequestsOvertakeQueuedBatchRequests) {
  serve::Service::Config config = service_config(1);
  config.max_batch = 1;
  const std::string log_path =
      testing::TempDir() + "/serve_priority_access.ndjson";
  config.access_log_path = log_path;
  {
    serve::Service service(config);
    // A large cold request pins the single worker while the rest queue up.
    auto blocker = [&] {
      serve::Request r;
      r.id = "blocker";
      r.matrix = small_matrix(40, 1);
      return service.submit(std::move(r));
    }();
    std::vector<std::future<serve::Response>> rest;
    for (const char* id : {"b1", "b2"}) {
      serve::Request r;
      r.id = id;
      r.matrix = small_matrix(8, 1);
      r.priority = serve::Priority::kBatch;
      rest.push_back(service.submit(std::move(r)));
    }
    {
      serve::Request r;
      r.id = "i1";
      r.matrix = small_matrix(9, 1);
      r.priority = serve::Priority::kInteractive;
      rest.push_back(service.submit(std::move(r)));
    }
    ASSERT_EQ(blocker.get().status, serve::Status::kOk);
    for (auto& f : rest) ASSERT_EQ(f.get().status, serve::Status::kOk);
    service.shutdown();
  }
  // The access log is written in completion order: the interactive request
  // (submitted last) must appear before both earlier batch requests.
  std::ifstream in(log_path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  const std::size_t pos_i1 = content.find("\"id\":\"i1\"");
  const std::size_t pos_b1 = content.find("\"id\":\"b1\"");
  const std::size_t pos_b2 = content.find("\"id\":\"b2\"");
  ASSERT_NE(pos_i1, std::string::npos);
  ASSERT_NE(pos_b1, std::string::npos);
  ASSERT_NE(pos_b2, std::string::npos);
  EXPECT_LT(pos_i1, pos_b1);
  EXPECT_LT(pos_i1, pos_b2);
}

TEST(ServeService, SameFingerprintRequestsBatchBehindOneLeader) {
  serve::Service::Config config = service_config(1);
  config.max_batch = 4;
  serve::Service service(config);
  // Pin the worker so the same-structure requests are queued together.
  auto blocker = [&] {
    serve::Request r;
    r.id = "blocker";
    r.matrix = small_matrix(40, 1);
    return service.submit(std::move(r));
  }();
  std::vector<std::future<serve::Response>> same;
  for (int i = 0; i < 3; ++i) {
    serve::Request r;
    r.id = "s" + std::to_string(i);
    r.matrix = small_matrix(8, static_cast<std::uint64_t>(i + 1));
    same.push_back(service.submit(std::move(r)));
  }
  ASSERT_EQ(blocker.get().status, serve::Status::kOk);
  int followers = 0;
  for (auto& f : same) {
    const serve::Response r = f.get();
    ASSERT_EQ(r.status, serve::Status::kOk) << r.detail;
    if (r.batched) {
      ++followers;
      EXPECT_TRUE(r.cache_hit);  // followers reuse the leader's plan
    }
  }
  EXPECT_EQ(followers, 2);
  EXPECT_EQ(service.counters().batch_followers, 2);
}

// ---------------------------------------------------------------------------
// Service: backpressure and shutdown

TEST(ServeService, QueueFullRejectsWithReasonAndCounters) {
  serve::Service::Config config = service_config(/*workers=*/0);
  config.queue_capacity = 3;
  const std::string log_path =
      testing::TempDir() + "/serve_backpressure_access.ndjson";
  config.access_log_path = log_path;
  serve::Service service(config);

  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < 5; ++i) {
    serve::Request r;
    r.id = "q" + std::to_string(i);
    r.matrix = small_matrix(8, 1);
    futures.push_back(service.submit(std::move(r)));
  }
  // With no workers nothing drains: requests 3 and 4 must be rejected
  // immediately with an explanatory reason.
  for (int i = 3; i < 5; ++i) {
    const serve::Response r = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(r.status, serve::Status::kRejected);
    EXPECT_EQ(r.detail, "queue full (capacity 3)");
  }
  serve::Service::Counters counters = service.counters();
  EXPECT_EQ(counters.submitted, 5);
  EXPECT_EQ(counters.rejected, 2);
  EXPECT_EQ(counters.queue_high_water, 3u);

  service.shutdown();
  for (int i = 0; i < 3; ++i) {
    const serve::Response r = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(r.status, serve::Status::kShutdown);
  }
  counters = service.counters();
  EXPECT_EQ(counters.shutdown_aborted, 3);

  // Submission after shutdown is also refused.
  serve::Request late;
  late.id = "late";
  late.matrix = small_matrix(8, 1);
  EXPECT_EQ(service.submit(std::move(late)).get().status,
            serve::Status::kShutdown);
  service.shutdown();  // idempotent; flushes the late record

  // Every outcome appears in the access log (5 + 1 late records).
  std::ifstream in(log_path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line))
    if (!line.empty()) ++lines;
  EXPECT_EQ(lines, 6);
}

// ---------------------------------------------------------------------------
// Deadlines and client cancellation

TEST(ServeDeadline, ExpiredBudgetRejectedAtAdmissionWithoutQueueSlot) {
  serve::Service::Config config = service_config(/*workers=*/0);
  config.queue_capacity = 1;
  serve::Service service(config);

  serve::Request expired;
  expired.id = "expired";
  expired.matrix = small_matrix(8, 1);
  expired.timeout_seconds = -0.5;
  const serve::Response r = service.submit(std::move(expired)).get();
  EXPECT_EQ(r.status, serve::Status::kDeadline);
  EXPECT_NE(r.detail.find("deadline expired before admission"),
            std::string::npos)
      << r.detail;
  EXPECT_EQ(service.counters().deadline_expired, 1);

  // The expired request consumed no slot: the single-slot queue still
  // admits the next request instead of rejecting it as full.
  serve::Request next;
  next.id = "next";
  next.matrix = small_matrix(8, 1);
  auto future = service.submit(std::move(next));
  EXPECT_EQ(service.queued_depth(), 1u);
  service.shutdown();
  EXPECT_EQ(future.get().status, serve::Status::kShutdown);
}

TEST(ServeDeadline, NaNBudgetIsAnInvalidRequest) {
  serve::Service service(service_config(/*workers=*/0));
  serve::Request r;
  r.id = "nan";
  r.matrix = small_matrix(8, 1);
  r.timeout_seconds = std::nan("");
  const serve::Response response = service.submit(std::move(r)).get();
  EXPECT_EQ(response.status, serve::Status::kFailed);
  EXPECT_NE(response.detail.find("NaN"), std::string::npos)
      << response.detail;
  EXPECT_EQ(service.counters().failed, 1);
}

TEST(ServeDeadline, QueuedRequestExpiresLazilyAtPickup) {
  // Deterministic via the pluggable deadline clock: the pickup phase hook
  // jumps the clock past the deadline before the expiry check runs.
  std::atomic<double> fake_clock{0.0};
  serve::Service::Config config = service_config(/*workers=*/1);
  config.clock = [&fake_clock] { return fake_clock.load(); };
  config.phase_hook = [&fake_clock](const serve::PhaseEvent& event) {
    if (std::string(event.phase) == "pickup" && event.id == "doomed")
      fake_clock.store(100.0);
  };
  serve::Service service(config);
  serve::Request r;
  r.id = "doomed";
  r.matrix = small_matrix(8, 1);
  r.timeout_seconds = 5.0;
  const serve::Response response = service.submit(std::move(r)).get();
  EXPECT_EQ(response.status, serve::Status::kDeadline);
  EXPECT_NE(response.detail.find("deadline expired"), std::string::npos)
      << response.detail;
  EXPECT_TRUE(response.digest.empty()) << "expired request ran numeric work";
  EXPECT_EQ(service.counters().deadline_expired, 1);
  EXPECT_EQ(service.counters().completed, 0);
}

TEST(ServeCancel, TokenFlippedAtScatterBoundaryUnwindsTheFactorization) {
  // The scatter boundary fires inside factor()'s load callback; a cancel
  // observed there must unwind the factorization cleanly (AbortRequest
  // through the numeric stack) and terminate with kCancelled.
  const serve::CancelToken token = serve::make_cancel_token();
  serve::Service::Config config = service_config(/*workers=*/1);
  config.phase_hook = [&token](const serve::PhaseEvent& event) {
    if (std::string(event.phase) == "scatter" && event.id == "cancel-me")
      token->store(true);
  };
  serve::Service service(config);
  serve::Request r;
  r.id = "cancel-me";
  r.matrix = small_matrix(8, 1);
  r.cancel = token;
  const serve::Response response = service.submit(std::move(r)).get();
  EXPECT_EQ(response.status, serve::Status::kCancelled);
  EXPECT_NE(response.detail.find("cancelled by client token"),
            std::string::npos)
      << response.detail;
  EXPECT_TRUE(response.digest.empty());
  EXPECT_EQ(service.counters().cancelled, 1);

  // An uncancelled request on the same service still completes.
  const serve::Response ok = submit_and_wait(service, small_matrix(8, 2), "ok");
  EXPECT_EQ(ok.status, serve::Status::kOk) << ok.detail;

  service.shutdown();
  psi::obs::MetricsRegistry registry;
  service.fold_metrics(registry);
  const std::string ndjson = registry.to_ndjson();
  EXPECT_NE(ndjson.find("serve_requests_cancelled"), std::string::npos);
  EXPECT_NE(ndjson.find("serve_requests_deadline"), std::string::npos);
}

TEST(ServeCancel, TokenFlippedWhileQueuedCancelsAtPickup) {
  serve::Service::Config config = service_config(/*workers=*/1);
  config.max_batch = 1;
  serve::Service service(config);
  // A large cold request pins the single worker while "c" waits in queue.
  auto blocker = [&] {
    serve::Request r;
    r.id = "blocker";
    r.matrix = small_matrix(40, 1);
    return service.submit(std::move(r));
  }();
  serve::Request r;
  r.id = "c";
  r.matrix = small_matrix(8, 1);
  r.cancel = serve::make_cancel_token();
  const serve::CancelToken token = r.cancel;
  auto cancelled = service.submit(std::move(r));
  token->store(true);  // flipped while queued
  ASSERT_EQ(blocker.get().status, serve::Status::kOk);
  const serve::Response response = cancelled.get();
  EXPECT_EQ(response.status, serve::Status::kCancelled);
  EXPECT_EQ(response.scatter_seconds, 0.0) << "cancelled request ran numeric";
  EXPECT_EQ(service.counters().cancelled, 1);
}

// ---------------------------------------------------------------------------
// Drain and watchdog

TEST(ServeDrain, GracefulDrainCompletesOutstandingWorkThenStopsAdmission) {
  serve::Service service(service_config(/*workers=*/2));
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < 6; ++i) {
    serve::Request r;
    r.id = "d" + std::to_string(i);
    r.matrix = small_matrix(8, static_cast<std::uint64_t>(i % 2 + 1));
    futures.push_back(service.submit(std::move(r)));
  }
  const serve::Service::DrainReport report = service.drain(60.0);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.hard_failed, 0);
  EXPECT_EQ(service.queued_depth(), 0u);
  EXPECT_EQ(service.in_flight(), 0);
  for (auto& f : futures) EXPECT_EQ(f.get().status, serve::Status::kOk);

  // Admission is stopped after drain, before shutdown.
  serve::Request late;
  late.id = "late";
  late.matrix = small_matrix(8, 1);
  const serve::Response r = service.submit(std::move(late)).get();
  EXPECT_EQ(r.status, serve::Status::kShutdown);
  EXPECT_NE(r.detail.find("draining"), std::string::npos) << r.detail;
  service.shutdown();
}

TEST(ServeDrain, TimeoutHardFailsEveryQueuedRequestWithShutdown) {
  // Admit-only service: nothing ever drains, so the timeout path is exact.
  serve::Service service(service_config(/*workers=*/0));
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < 3; ++i) {
    serve::Request r;
    r.id = "q" + std::to_string(i);
    r.matrix = small_matrix(8, 1);
    futures.push_back(service.submit(std::move(r)));
  }
  const serve::Service::DrainReport report = service.drain(0.05);
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.hard_failed, 3);
  EXPECT_EQ(service.queued_depth(), 0u) << "drain leaked queue entries";
  for (auto& f : futures) {
    const serve::Response r = f.get();
    EXPECT_EQ(r.status, serve::Status::kShutdown);
    EXPECT_NE(r.detail.find("drain timeout"), std::string::npos) << r.detail;
  }
  EXPECT_EQ(service.counters().shutdown_aborted, 3);
  service.shutdown();
}

TEST(ServeWatchdog, StalledWorkerIsCancelledAtItsNextPhaseBoundary) {
  serve::Service::Config config = service_config(/*workers=*/1);
  config.stall_budget_seconds = 0.02;
  config.phase_hook = [](const serve::PhaseEvent& event) {
    if (std::string(event.phase) == "factor" && event.id == "stall")
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
  };
  serve::Service service(config);
  serve::Request r;
  r.id = "stall";
  r.matrix = small_matrix(8, 1);
  const serve::Response response = service.submit(std::move(r)).get();
  EXPECT_EQ(response.status, serve::Status::kCancelled);
  EXPECT_NE(response.detail.find("watchdog"), std::string::npos)
      << response.detail;
  const serve::Service::Counters counters = service.counters();
  EXPECT_GE(counters.worker_stalls, 1);

  // The worker is released and serves fresh work (the stale cancel flag
  // does not leak into the next pickup).
  const serve::Response ok =
      submit_and_wait(service, small_matrix(8, 2), "after-stall");
  EXPECT_EQ(ok.status, serve::Status::kOk) << ok.detail;
}

TEST(ServeWatchdog, AllWorkersStalledFailsTheQueueOverToClients) {
  serve::Service::Config config = service_config(/*workers=*/1);
  config.stall_budget_seconds = 0.02;
  config.phase_hook = [](const serve::PhaseEvent& event) {
    if (std::string(event.phase) == "scatter" && event.id == "stall")
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
  };
  serve::Service service(config);
  serve::Request stall;
  stall.id = "stall";
  stall.matrix = small_matrix(8, 1);
  auto stalled = service.submit(std::move(stall));
  serve::Request queued;  // different structure: never batched with "stall"
  queued.id = "queued";
  queued.matrix = small_matrix(9, 1);
  auto waiting = service.submit(std::move(queued));

  const serve::Response failed_over = waiting.get();
  EXPECT_EQ(failed_over.status, serve::Status::kRejected);
  EXPECT_NE(failed_over.detail.find("watchdog failover"), std::string::npos)
      << failed_over.detail;
  EXPECT_EQ(stalled.get().status, serve::Status::kCancelled);
  const serve::Service::Counters counters = service.counters();
  EXPECT_GE(counters.watchdog_failovers, 1);
  EXPECT_GE(counters.worker_stalls, 1);
}

TEST(ServeShutdown, DrainTimeoutDuringInflightColdBuildResolvesAllFollowers) {
  // Regression: destroying the service while a single-flight cold build is
  // in flight with batched followers behind it must resolve EVERY future
  // with kShutdown — no hang, no use-after-free. The leader blocks in the
  // build hook; same-structure followers queue behind it (and coalesce on
  // the single-flight build from the second worker).
  std::promise<void> build_started;
  std::promise<void> release_build;
  std::shared_future<void> release = release_build.get_future().share();
  std::atomic<bool> started{false};
  serve::Service::Config config = service_config(/*workers=*/2);
  config.max_batch = 4;
  config.phase_hook = [&](const serve::PhaseEvent& event) {
    if (std::string(event.phase) == "build" &&
        !started.exchange(true)) {
      build_started.set_value();
      release.wait();
    }
  };
  std::vector<std::future<serve::Response>> futures;
  {
    serve::Service service(config);
    for (int i = 0; i < 3; ++i) {
      serve::Request r;
      r.id = "b" + std::to_string(i);
      r.matrix = small_matrix(8, static_cast<std::uint64_t>(i + 1));
      futures.push_back(service.submit(std::move(r)));
      if (i == 0) build_started.get_future().wait();
    }
    const serve::Service::DrainReport report = service.drain(0.05);
    EXPECT_FALSE(report.completed);
    release_build.set_value();  // let the build finish; hard stop is set
    service.shutdown();
    EXPECT_EQ(service.in_flight(), 0);
    EXPECT_EQ(service.queued_depth(), 0u);
  }  // destructor runs with every future already terminal
  int shutdown_count = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "a follower future never resolved";
    const serve::Response r = f.get();
    EXPECT_EQ(r.status, serve::Status::kShutdown) << r.detail;
    ++shutdown_count;
  }
  EXPECT_EQ(shutdown_count, 3);
}

// ---------------------------------------------------------------------------
// Workload + metrics

TEST(ServeWorkload, WarmStartClosedLoopServesEverythingFromCache) {
  serve::Service service(service_config(2));
  serve::WorkloadOptions workload;
  workload.structures = 2;
  workload.nx = 8;
  workload.requests = 10;
  workload.window = 3;
  workload.warm_start = true;
  const serve::WorkloadReport report = serve::run_workload(service, workload);
  EXPECT_EQ(report.ok, 10);
  EXPECT_EQ(report.rejected, 0);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.warm, 10);  // both structures were pre-touched
  EXPECT_EQ(report.cold, 0);
  EXPECT_GT(report.throughput_rps, 0.0);
  EXPECT_EQ(report.total_s.count(), 10u);

  service.shutdown();
  psi::obs::MetricsRegistry registry;
  service.fold_metrics(registry);
  const std::string ndjson = registry.to_ndjson();
  EXPECT_NE(ndjson.find("serve_requests_completed"), std::string::npos);
  EXPECT_NE(ndjson.find("serve_cache_hits"), std::string::npos);
  EXPECT_NE(ndjson.find("serve_request_seconds"), std::string::npos);

  const serve::PlanCache::Stats cache = service.cache_stats();
  EXPECT_EQ(cache.misses, 2);  // one per structure, during warm start
  EXPECT_GE(cache.hits, 10);
  EXPECT_EQ(cache.entries, 2u);

  std::ostringstream out;
  serve::print_report(out, report);
  EXPECT_NE(out.str().find("hit rate"), std::string::npos);
  EXPECT_EQ(report.to_record().keys().size(), 22u);  // + deadline, cancelled
}
