/// Integration tests for the distributed PSelInv engine: plan invariants,
/// end-to-end numerical correctness on the simulator against the sequential
/// reference and the dense inverse, volume consistency between the analytic
/// accounting and the simulator counters, and the LU reference model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "driver/experiment.hpp"
#include "driver/paper_matrices.hpp"
#include "numeric/selinv.hpp"
#include "pselinv/engine.hpp"
#include "pselinv/lu_model.hpp"
#include "pselinv/plan.hpp"
#include "pselinv/volume_analysis.hpp"
#include "sparse/generators.hpp"

namespace psi::pselinv {
namespace {

using trees::TreeScheme;

AnalysisOptions small_options() {
  AnalysisOptions opt;
  opt.ordering.method = OrderingMethod::kNestedDissection;
  opt.ordering.dissection_leaf_size = 8;
  opt.supernodes.max_size = 12;
  return opt;
}

sim::Machine test_machine() {
  sim::MachineConfig config;
  config.cores_per_node = 4;
  config.nodes_per_group = 4;
  return sim::Machine(config);
}

Plan make_plan(const SymbolicAnalysis& an, int pr, int pc, TreeScheme scheme) {
  const dist::ProcessGrid grid(pr, pc);
  trees::TreeOptions topt;
  topt.scheme = scheme;
  return Plan(an.blocks, grid, topt);
}

// ----- plan invariants -------------------------------------------------------

TEST(Plan, TreesLiveInTheRightGridGroups) {
  const GeneratedMatrix gen = fem3d(4, 3, 3, 2, 3);
  const SymbolicAnalysis an = analyze(gen, small_options());
  const Plan plan = make_plan(an, 3, 4, TreeScheme::kShiftedBinary);
  const auto& grid = plan.grid();
  const auto& map = plan.map();

  for (Int k = 0; k < plan.supernode_count(); ++k) {
    const auto& sp = plan.supernode(k);
    const auto& str = an.blocks.struct_of[static_cast<std::size_t>(k)];
    // Diag-Bcast and Col-Reduce run inside processor column pc(K).
    for (int r : sp.diag_bcast.participants())
      EXPECT_EQ(grid.col_of(r), map.pcol_of(k));
    for (int r : sp.col_reduce.participants())
      EXPECT_EQ(grid.col_of(r), map.pcol_of(k));
    EXPECT_EQ(sp.diag_bcast.root(), map.owner(k, k));
    for (Int t = 0; t < static_cast<Int>(str.size()); ++t) {
      const Int b = str[static_cast<std::size_t>(t)];
      // Col-Bcast of Û_{K,I} runs inside processor column pc(I), rooted at
      // the U-side owner.
      const auto& bcast = sp.col_bcast[static_cast<std::size_t>(t)];
      EXPECT_EQ(bcast.root(), map.owner(k, b));
      for (int r : bcast.participants())
        EXPECT_EQ(grid.col_of(r), map.pcol_of(b));
      // Row-Reduce runs inside processor row pr(J), rooted at the L owner.
      const auto& reduce = sp.row_reduce[static_cast<std::size_t>(t)];
      EXPECT_EQ(reduce.root(), map.owner(b, k));
      for (int r : reduce.participants())
        EXPECT_EQ(grid.row_of(r), map.prow_of(b));
      // Cross pair endpoints.
      EXPECT_EQ(sp.cross_src[static_cast<std::size_t>(t)], map.owner(b, k));
      EXPECT_EQ(sp.cross_dst[static_cast<std::size_t>(t)], map.owner(k, b));
    }
  }
}

TEST(Plan, CommunicatorAuditGrowsWithProblem) {
  const SymbolicAnalysis small = analyze(fem3d(3, 3, 2, 2, 1), small_options());
  const SymbolicAnalysis large = analyze(fem3d(5, 4, 4, 2, 1), small_options());
  const Plan psmall = make_plan(small, 4, 4, TreeScheme::kFlat);
  const Plan plarge = make_plan(large, 4, 4, TreeScheme::kFlat);
  EXPECT_GT(plarge.distinct_communicators(), psmall.distinct_communicators());
  EXPECT_GT(psmall.distinct_communicators(), 0);
  EXPECT_GT(psmall.total_collectives(), 0);
}

TEST(Plan, BlockBytes) {
  const SymbolicAnalysis an = analyze(laplacian2d(6, 6, 1), small_options());
  const Plan plan = make_plan(an, 2, 2, TreeScheme::kFlat);
  const Int k = 0;
  EXPECT_EQ(plan.block_bytes(k, k),
            static_cast<Count>(an.blocks.part.size(k)) *
                an.blocks.part.size(k) * 8);
}

// ----- end-to-end numeric correctness ---------------------------------------

struct EndToEndCase {
  std::string label;
  GeneratedMatrix gen;
  int pr, pc;
  TreeScheme scheme;
};

class PSelInvEndToEnd : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(PSelInvEndToEnd, MatchesSequentialAndDenseInverse) {
  const auto& param = GetParam();
  const SymbolicAnalysis an = analyze(param.gen, small_options());

  // Sequential reference.
  SupernodalLU lu_seq = SupernodalLU::factor(an);
  const BlockMatrix ainv_seq = selected_inversion(lu_seq);

  // Distributed run (fresh unnormalized factor).
  SupernodalLU lu_dist = SupernodalLU::factor(an);
  const Plan plan = make_plan(an, param.pr, param.pc, param.scheme);
  const RunResult result = run_pselinv(plan, test_machine(),
                                       ExecutionMode::kNumeric, &lu_dist);
  ASSERT_TRUE(result.complete());
  ASSERT_NE(result.ainv, nullptr);
  EXPECT_GT(result.makespan, 0.0);

  // Every block must match the sequential selected inversion.
  const BlockStructure& bs = an.blocks;
  double max_err = 0.0;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    max_err = std::max(max_err,
                       max_abs_diff(result.ainv->block(k, k), ainv_seq.block(k, k)));
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      max_err = std::max(max_err, max_abs_diff(result.ainv->block(i, k),
                                               ainv_seq.block(i, k)));
      max_err = std::max(max_err, max_abs_diff(result.ainv->block(k, i),
                                               ainv_seq.block(k, i)));
    }
  }
  EXPECT_LT(max_err, 1e-10) << param.label;

  // Spot-check directly against the dense inverse as well.
  const Int n = an.matrix.n();
  DenseMatrix dense(n, n);
  for (Int j = 0; j < n; ++j)
    for (Int p = an.matrix.pattern.col_ptr[j]; p < an.matrix.pattern.col_ptr[j + 1];
         ++p)
      dense(an.matrix.pattern.row_idx[p], j) =
          an.matrix.values[static_cast<std::size_t>(p)];
  const DenseMatrix full_inv = inverse(dense);
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    const DenseMatrix blk = result.ainv->block(k, k);
    const Int c0 = bs.part.first_col(k);
    for (Int c = 0; c < blk.cols(); ++c)
      for (Int r = 0; r < blk.rows(); ++r)
        EXPECT_NEAR(blk(r, c), full_inv(c0 + r, c0 + c), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndSchemes, PSelInvEndToEnd,
    ::testing::Values(
        EndToEndCase{"lap2d_1x1_flat", laplacian2d(6, 6, 1), 1, 1, TreeScheme::kFlat},
        EndToEndCase{"lap2d_2x2_flat", laplacian2d(6, 6, 1), 2, 2, TreeScheme::kFlat},
        EndToEndCase{"lap2d_2x2_shifted", laplacian2d(6, 6, 1), 2, 2,
                     TreeScheme::kShiftedBinary},
        EndToEndCase{"lap2d_4x3_binary", laplacian2d(7, 6, 2), 4, 3,
                     TreeScheme::kBinary},
        EndToEndCase{"lap2d_3x4_shifted", laplacian2d(7, 6, 2), 3, 4,
                     TreeScheme::kShiftedBinary},
        EndToEndCase{"fem3d_3x3_shifted", fem3d(3, 3, 2, 2, 3), 3, 3,
                     TreeScheme::kShiftedBinary},
        EndToEndCase{"fem3d_4x4_randperm", fem3d(3, 3, 2, 2, 3), 4, 4,
                     TreeScheme::kRandomPerm},
        EndToEndCase{"fem3d_5x2_hybrid", fem3d(3, 2, 3, 2, 4), 5, 2,
                     TreeScheme::kHybrid},
        EndToEndCase{"dg2d_4x4_shifted", dg2d(3, 3, 4, 5), 4, 4,
                     TreeScheme::kShiftedBinary},
        EndToEndCase{"dg2d_2x5_binary", dg2d(3, 3, 4, 5), 2, 5, TreeScheme::kBinary},
        EndToEndCase{"dg3d_6x6_flat", dg3d(2, 2, 2, 4, 6), 6, 6, TreeScheme::kFlat},
        EndToEndCase{"lap3d_7x3_shifted", laplacian3d(3, 3, 3, 7), 7, 3,
                     TreeScheme::kShiftedBinary}),
    [](const ::testing::TestParamInfo<EndToEndCase>& info) {
      return info.param.label;
    });

// ----- unsymmetric-values extension -------------------------------------------

class UnsymmetricEndToEnd : public ::testing::TestWithParam<TreeScheme> {};

TEST_P(UnsymmetricEndToEnd, MatchesSequentialReference) {
  // The paper's declared work-in-progress extension: unsymmetric values over
  // the symmetric pattern, with the mirrored U-side phases.
  const GeneratedMatrix gen = fem3d(3, 3, 2, 2, 23, ValueKind::kUnsymmetric);
  const SymbolicAnalysis an = analyze(gen, small_options());

  SupernodalLU lu_seq = SupernodalLU::factor(an);
  const BlockMatrix reference = selected_inversion(lu_seq);

  SupernodalLU lu_dist = SupernodalLU::factor(an);
  const Plan plan(an.blocks, dist::ProcessGrid(3, 4),
                  driver::tree_options_for(GetParam()),
                  ValueSymmetry::kUnsymmetric);
  const RunResult run = run_pselinv(plan, test_machine(),
                                    ExecutionMode::kNumeric, &lu_dist);
  ASSERT_TRUE(run.complete());

  const BlockStructure& bs = an.blocks;
  double max_err = 0.0;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    max_err = std::max(max_err,
                       max_abs_diff(run.ainv->block(k, k), reference.block(k, k)));
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      max_err = std::max(max_err, max_abs_diff(run.ainv->block(i, k),
                                               reference.block(i, k)));
      max_err = std::max(max_err, max_abs_diff(run.ainv->block(k, i),
                                               reference.block(k, i)));
    }
  }
  EXPECT_LT(max_err, 1e-10) << trees::scheme_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Schemes, UnsymmetricEndToEnd,
                         ::testing::Values(TreeScheme::kFlat, TreeScheme::kBinary,
                                           TreeScheme::kShiftedBinary),
                         [](const ::testing::TestParamInfo<TreeScheme>& info) {
                           std::string name = trees::scheme_name(info.param);
                           for (char& c : name)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

TEST(Unsymmetric, SymmetricValuesAgreeUnderBothModes) {
  // Running a symmetric-values matrix through the unsymmetric engine must
  // give the same inverse (Û = L̂^T numerically).
  const GeneratedMatrix gen = laplacian2d(6, 5, 29);
  const SymbolicAnalysis an = analyze(gen, small_options());
  SupernodalLU lu_sym = SupernodalLU::factor(an);
  SupernodalLU lu_unsym = SupernodalLU::factor(an);

  const Plan plan_sym = make_plan(an, 3, 3, TreeScheme::kShiftedBinary);
  const Plan plan_unsym(an.blocks, dist::ProcessGrid(3, 3),
                        driver::tree_options_for(TreeScheme::kShiftedBinary),
                        ValueSymmetry::kUnsymmetric);
  const RunResult sym =
      run_pselinv(plan_sym, test_machine(), ExecutionMode::kNumeric, &lu_sym);
  const RunResult unsym =
      run_pselinv(plan_unsym, test_machine(), ExecutionMode::kNumeric, &lu_unsym);

  const BlockStructure& bs = an.blocks;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    EXPECT_LT(max_abs_diff(sym.ainv->block(k, k), unsym.ainv->block(k, k)), 1e-10);
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)])
      EXPECT_LT(max_abs_diff(sym.ainv->block(k, i), unsym.ainv->block(k, i)),
                1e-10);
  }
}

TEST(Unsymmetric, TraceMatchesNumericTraffic) {
  const GeneratedMatrix gen = fem3d(3, 2, 2, 2, 27, ValueKind::kUnsymmetric);
  const SymbolicAnalysis an = analyze(gen, small_options());
  const Plan plan(an.blocks, dist::ProcessGrid(2, 3),
                  driver::tree_options_for(TreeScheme::kBinary),
                  ValueSymmetry::kUnsymmetric);
  SupernodalLU lu = SupernodalLU::factor(an);
  const RunResult numeric =
      run_pselinv(plan, test_machine(), ExecutionMode::kNumeric, &lu);
  const RunResult trace = run_pselinv(plan, test_machine(), ExecutionMode::kTrace);
  EXPECT_EQ(trace.events, numeric.events);
  EXPECT_DOUBLE_EQ(trace.makespan, numeric.makespan);
}

TEST(Unsymmetric, VolumeAnalysisMatchesSimulator) {
  const GeneratedMatrix gen = fem3d(3, 3, 2, 1, 31);
  const SymbolicAnalysis an = analyze(gen, small_options());
  const Plan plan(an.blocks, dist::ProcessGrid(3, 3),
                  driver::tree_options_for(TreeScheme::kShiftedBinary),
                  ValueSymmetry::kUnsymmetric);
  const VolumeReport report = analyze_volume(plan);
  const RunResult run = run_pselinv(plan, test_machine(), ExecutionMode::kTrace);
  for (int r = 0; r < plan.grid().size(); ++r)
    for (int c = 0; c < kCommClassCount; ++c) {
      EXPECT_EQ(report.of(c).bytes_sent()[static_cast<std::size_t>(r)],
                run.rank_stats[static_cast<std::size_t>(r)]
                    .per_class[static_cast<std::size_t>(c)].bytes_sent)
          << comm_class_name(c) << " rank " << r;
    }
  // The cross-back class must be silent and the U-side classes active.
  Count crossback = 0, rowbcast = 0;
  for (Count b : report.of(kCrossBack).bytes_sent()) crossback += b;
  for (Count b : report.of(kRowBcast).bytes_sent()) rowbcast += b;
  EXPECT_EQ(crossback, 0);
  EXPECT_GT(rowbcast, 0);
}

// ----- trace mode ------------------------------------------------------------

TEST(TraceMode, CompletesWithSameTrafficAsNumeric) {
  const GeneratedMatrix gen = fem3d(3, 3, 2, 2, 9);
  const SymbolicAnalysis an = analyze(gen, small_options());
  const Plan plan = make_plan(an, 3, 3, TreeScheme::kShiftedBinary);

  SupernodalLU lu = SupernodalLU::factor(an);
  const RunResult numeric =
      run_pselinv(plan, test_machine(), ExecutionMode::kNumeric, &lu);
  const RunResult trace = run_pselinv(plan, test_machine(), ExecutionMode::kTrace);

  ASSERT_TRUE(trace.complete());
  EXPECT_EQ(trace.events, numeric.events);
  EXPECT_DOUBLE_EQ(trace.makespan, numeric.makespan);
  for (int r = 0; r < plan.grid().size(); ++r)
    for (int c = 0; c < kCommClassCount; ++c) {
      EXPECT_EQ(trace.rank_stats[static_cast<std::size_t>(r)]
                    .per_class[static_cast<std::size_t>(c)].bytes_sent,
                numeric.rank_stats[static_cast<std::size_t>(r)]
                    .per_class[static_cast<std::size_t>(c)].bytes_sent);
    }
}

TEST(TraceMode, NumericRequiresFactor) {
  const GeneratedMatrix gen = laplacian2d(4, 4, 1);
  const SymbolicAnalysis an = analyze(gen, small_options());
  const Plan plan = make_plan(an, 2, 2, TreeScheme::kFlat);
  EXPECT_THROW(run_pselinv(plan, test_machine(), ExecutionMode::kNumeric, nullptr),
               Error);
}

// ----- analytic volume vs simulator counters ---------------------------------

TEST(VolumeAnalysis, MatchesSimulatorCounters) {
  const GeneratedMatrix gen = fem3d(3, 3, 3, 1, 4);
  const SymbolicAnalysis an = analyze(gen, small_options());
  for (TreeScheme scheme :
       {TreeScheme::kFlat, TreeScheme::kBinary, TreeScheme::kShiftedBinary}) {
    const Plan plan = make_plan(an, 3, 4, scheme);
    const VolumeReport report = analyze_volume(plan);
    const RunResult run = run_pselinv(plan, test_machine(), ExecutionMode::kTrace);
    for (int r = 0; r < plan.grid().size(); ++r) {
      for (int c : {kDiagBcast, kCrossSend, kColBcast, kRowReduce, kColReduce,
                    kCrossBack}) {
        EXPECT_EQ(report.of(c).bytes_sent()[static_cast<std::size_t>(r)],
                  run.rank_stats[static_cast<std::size_t>(r)]
                      .per_class[static_cast<std::size_t>(c)].bytes_sent)
            << trees::scheme_name(scheme) << " class "
            << comm_class_name(c) << " rank " << r;
        EXPECT_EQ(report.of(c).bytes_received()[static_cast<std::size_t>(r)],
                  run.rank_stats[static_cast<std::size_t>(r)]
                      .per_class[static_cast<std::size_t>(c)].bytes_received)
            << trees::scheme_name(scheme) << " class "
            << comm_class_name(c) << " rank " << r;
      }
    }
  }
}

TEST(VolumeAnalysis, SchemePreservesTotalColBcastVolume) {
  // Trees change WHO sends, not how much total data moves per receiver.
  const GeneratedMatrix gen = fem3d(4, 3, 3, 1, 8);
  const SymbolicAnalysis an = analyze(gen, small_options());
  Count total_flat = 0, total_shifted = 0;
  {
    const Plan plan = make_plan(an, 4, 4, TreeScheme::kFlat);
    const VolumeReport report = analyze_volume(plan);
    for (Count b : report.of(kColBcast).bytes_sent()) total_flat += b;
  }
  {
    const Plan plan = make_plan(an, 4, 4, TreeScheme::kShiftedBinary);
    const VolumeReport report = analyze_volume(plan);
    for (Count b : report.of(kColBcast).bytes_sent()) total_shifted += b;
  }
  EXPECT_EQ(total_flat, total_shifted);
}

TEST(VolumeAnalysis, MbConversion) {
  const GeneratedMatrix gen = laplacian2d(8, 8, 1);
  const SymbolicAnalysis an = analyze(gen, small_options());
  const Plan plan = make_plan(an, 2, 2, TreeScheme::kFlat);
  const VolumeReport report = analyze_volume(plan);
  const auto mb = report.col_bcast_sent_mb();
  ASSERT_EQ(mb.size(), 4u);
  for (std::size_t r = 0; r < mb.size(); ++r)
    EXPECT_NEAR(mb[r] * 1024.0 * 1024.0,
                static_cast<double>(report.of(kColBcast).bytes_sent()[r]), 1e-6);
}

// ----- scheme behaviour properties (the paper's §IV-A in miniature) ----------

TEST(SchemeProperties, BinaryHasExtremeSpreadShiftedBalances) {
  // Binary: min sent across ranks collapses (last rank in a group never
  // forwards) while max exceeds flat's; Shifted: stddev well below flat's.
  // The workload needs ancestor sets spanning the grid column (|C| >~ Pr)
  // for the tree shapes to matter — the paper's operating regime.
  const GeneratedMatrix gen = fem3d(10, 10, 10, 3, 12);
  AnalysisOptions opt = driver::default_analysis_options();
  opt.supernodes.max_size = 32;
  const SymbolicAnalysis an = analyze(gen, opt);

  auto stats_for = [&](TreeScheme scheme) {
    const Plan plan = make_plan(an, 8, 8, scheme);
    return VolumeReport::summarize(analyze_volume(plan).col_bcast_sent_mb());
  };
  const SampleStats flat = stats_for(TreeScheme::kFlat);
  const SampleStats binary = stats_for(TreeScheme::kBinary);
  const SampleStats shifted = stats_for(TreeScheme::kShiftedBinary);

  EXPECT_LT(binary.min(), 0.5 * flat.min());   // starved leaves
  EXPECT_GT(binary.max(), flat.max());         // overloaded internal stripes
  EXPECT_LT(shifted.stddev(), flat.stddev());  // the heuristic's payoff
  EXPECT_LT(shifted.max() - shifted.min(), flat.max() - flat.min());
}

// ----- LU reference model -----------------------------------------------------

TEST(LuModel, CompletesAndScalesDown) {
  const GeneratedMatrix gen = fem3d(4, 4, 3, 1, 2);
  const SymbolicAnalysis an = analyze(gen, small_options());
  trees::TreeOptions topt;
  topt.scheme = TreeScheme::kBinary;
  const LuRunResult small = run_distributed_lu(an.blocks, dist::ProcessGrid(2, 2),
                                               topt, test_machine());
  const LuRunResult large = run_distributed_lu(an.blocks, dist::ProcessGrid(6, 6),
                                               topt, test_machine());
  EXPECT_TRUE(small.complete());
  EXPECT_TRUE(large.complete());
  EXPECT_GT(small.makespan, 0.0);
  // More ranks must not be slower by more than communication overheads allow
  // on this small problem; mostly we assert both ran and produced sane times.
  EXPECT_GT(large.events, small.events);  // more forwarding messages
}

TEST(LuModel, SingleRankMatchesFlopTime) {
  const GeneratedMatrix gen = laplacian2d(8, 8, 1);
  const SymbolicAnalysis an = analyze(gen, small_options());
  trees::TreeOptions topt;
  topt.scheme = TreeScheme::kFlat;
  sim::MachineConfig config;
  config.flop_rate = 1e9;
  const LuRunResult run = run_distributed_lu(an.blocks, dist::ProcessGrid(1, 1),
                                             topt, sim::Machine(config));
  const double expected =
      static_cast<double>(factorization_flops(an.blocks)) / 1e9;
  EXPECT_NEAR(run.makespan, expected, expected * 1e-9 + 1e-12);
}

// ----- timing property: shifted binary beats flat at scale -------------------

TEST(Timing, ShiftedBinaryBeatsFlatOnManyRanks) {
  // The paper's headline effect, at the calibrated timing machine and a
  // grid large enough that the flat root serialization dominates.
  const GeneratedMatrix gen = fem3d(16, 16, 16, 3, 7);
  AnalysisOptions opt = driver::default_analysis_options();
  opt.supernodes.max_size = 32;
  const SymbolicAnalysis an = analyze(gen, opt);
  const sim::Machine machine(driver::timing_machine(/*jitter_sigma=*/0.0));

  auto time_for = [&](TreeScheme scheme) {
    const Plan plan = make_plan(an, 32, 32, scheme);
    return run_pselinv(plan, machine, ExecutionMode::kTrace).makespan;
  };
  const double flat = time_for(TreeScheme::kFlat);
  const double shifted = time_for(TreeScheme::kShiftedBinary);
  EXPECT_LT(shifted, flat);
}

}  // namespace
}  // namespace psi::pselinv
