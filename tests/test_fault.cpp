/// Unit tests for the fault-injection stack: FaultPlan builders and env
/// parsing, the deterministic injector's per-message draws, dynamic machine
/// perturbation (stragglers, degraded links), and the engine-level effects
/// of injected drops / duplicates / delays — including their obs marks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/recorder.hpp"
#include "sim/engine.hpp"

namespace psi::fault {
namespace {

sim::MachineConfig test_config() {
  sim::MachineConfig config;
  config.cores_per_node = 4;
  config.nodes_per_group = 2;
  config.flop_rate = 1e9;
  config.msg_overhead = 1e-6;
  return config;
}

// ----- plan builders ---------------------------------------------------------

TEST(FaultPlan, RejectsInvalidInputs) {
  FaultPlan plan;
  EXPECT_THROW(plan.add_straggler(Straggler{0, 0.5}), Error);  // speedup
  EXPECT_THROW(plan.add_straggler(Straggler{-1, 2.0}), Error);
  EXPECT_THROW(plan.add_degraded_link(DegradedLink{0, 1, 0.9}), Error);
  MessageFaultRule always_drop;
  always_drop.drop_prob = 1.0;  // would retry forever
  EXPECT_THROW(plan.add_rule(always_drop), Error);
  MessageFaultRule negative_delay;
  negative_delay.delay_prob = 0.5;
  negative_delay.delay = -1.0;
  EXPECT_THROW(plan.add_rule(negative_delay), Error);
}

TEST(FaultPlan, RandomSelectionIsSeedDeterministic) {
  const auto ranks_of = [](const FaultPlan& plan) {
    std::vector<int> ranks;
    for (const Straggler& s : plan.stragglers()) ranks.push_back(s.rank);
    return ranks;
  };
  FaultPlan a(42), b(42), c(43);
  a.add_random_stragglers(4, 64, 8.0);
  b.add_random_stragglers(4, 64, 8.0);
  c.add_random_stragglers(4, 64, 8.0);
  EXPECT_EQ(ranks_of(a), ranks_of(b));
  EXPECT_NE(ranks_of(a), ranks_of(c));
  // Distinct ranks.
  std::vector<int> ranks = ranks_of(a);
  std::sort(ranks.begin(), ranks.end());
  EXPECT_EQ(std::unique(ranks.begin(), ranks.end()), ranks.end());

  FaultPlan links(7);
  links.add_random_degraded_links(3, 8, 4.0);
  ASSERT_EQ(links.degraded_links().size(), 3u);
  for (const DegradedLink& l : links.degraded_links()) {
    EXPECT_NE(l.node_a, l.node_b);
    EXPECT_LT(l.node_a, 8);
  }
}

TEST(FaultPlan, FromEnvReadsKnobs) {
  setenv("PSI_FAULT_SEED", "99", 1);
  setenv("PSI_FAULT_STRAGGLERS", "2", 1);
  setenv("PSI_FAULT_SLOWDOWN", "16", 1);
  setenv("PSI_FAULT_DROP", "0.05", 1);
  setenv("PSI_FAULT_DUP", "0.01", 1);
  const FaultPlan plan = FaultPlan::from_env(/*rank_count=*/16);
  unsetenv("PSI_FAULT_SEED");
  unsetenv("PSI_FAULT_STRAGGLERS");
  unsetenv("PSI_FAULT_SLOWDOWN");
  unsetenv("PSI_FAULT_DROP");
  unsetenv("PSI_FAULT_DUP");

  EXPECT_EQ(plan.seed(), 99u);
  ASSERT_EQ(plan.stragglers().size(), 2u);
  EXPECT_EQ(plan.stragglers()[0].slowdown, 16.0);
  ASSERT_EQ(plan.rules().size(), 1u);
  EXPECT_EQ(plan.rules()[0].drop_prob, 0.05);
  EXPECT_EQ(plan.rules()[0].dup_prob, 0.01);

  // No knobs: an empty plan.
  const FaultPlan none = FaultPlan::from_env(16);
  EXPECT_TRUE(none.stragglers().empty());
  EXPECT_TRUE(none.rules().empty());
}

// ----- perturbation ----------------------------------------------------------

TEST(Perturbation, WindowedFactorsCompose) {
  sim::Perturbation p;
  p.add_compute_slowdown(3, 1.0, 2.0, 4.0);
  p.add_compute_slowdown(3, 1.5, 3.0, 2.0);  // overlaps: factors multiply
  EXPECT_EQ(p.compute_factor(3, 0.5), 1.0);
  EXPECT_EQ(p.compute_factor(3, 1.25), 4.0);
  EXPECT_EQ(p.compute_factor(3, 1.75), 8.0);
  EXPECT_EQ(p.compute_factor(3, 2.5), 2.0);
  EXPECT_EQ(p.compute_factor(3, 3.5), 1.0);
  EXPECT_EQ(p.compute_factor(4, 1.25), 1.0);  // other ranks untouched

  p.add_link_degradation(0, 2, 0.0, 5.0, 3.0);
  EXPECT_EQ(p.link_factor(0, 2, 1.0), 3.0);
  EXPECT_EQ(p.link_factor(2, 0, 1.0), 3.0);  // symmetric
  EXPECT_EQ(p.link_factor(0, 1, 1.0), 1.0);
  EXPECT_EQ(p.link_factor(0, 2, 6.0), 1.0);

  EXPECT_THROW(p.add_compute_slowdown(0, 2.0, 1.0, 2.0), Error);  // end<begin
  EXPECT_THROW(p.add_link_degradation(0, 1, 0.0, 1.0, 0.5), Error);
}

TEST(Perturbation, StragglerInflatesEngineCompute) {
  class Worker : public sim::Rank {
   public:
    void on_start(sim::Context& ctx) override { ctx.compute_flops(4'000'000); }
    void on_message(sim::Context&, const sim::Message&) override {}
  };
  const auto run = [](const sim::Perturbation* p) {
    const sim::Machine m(test_config());
    sim::Engine engine(m, 1, 1);
    if (p != nullptr) engine.set_perturbation(p);
    engine.set_rank(0, std::make_unique<Worker>());
    return engine.run();
  };
  sim::Perturbation slow;
  slow.add_compute_slowdown(0, 0.0, 1.0, 8.0);
  EXPECT_NEAR(run(nullptr), 4e-3, 1e-12);
  EXPECT_NEAR(run(&slow), 32e-3, 1e-12);
}

TEST(Perturbation, DegradedLinkStretchesTransfer) {
  class Sender : public sim::Rank {
   public:
    void on_start(sim::Context& ctx) override {
      if (ctx.rank() == 0) ctx.send(4, 0, 1 << 20, 0);  // node 0 -> node 1
    }
    void on_message(sim::Context&, const sim::Message&) override {}
  };
  const auto run = [](const sim::Perturbation* p) {
    const sim::Machine m(test_config());
    sim::Engine engine(m, 8, 1);
    if (p != nullptr) engine.set_perturbation(p);
    for (int r = 0; r < 8; ++r) engine.set_rank(r, std::make_unique<Sender>());
    return engine.run();
  };
  sim::Perturbation degraded;
  degraded.add_link_degradation(0, 1, 0.0, 10.0, 4.0);
  const double healthy = run(nullptr);
  EXPECT_GT(run(&degraded), 2.0 * healthy);
}

// ----- deterministic injector ------------------------------------------------

TEST(DeterministicInjector, RatesWindowsAndClassesRespected) {
  FaultPlan plan(123);
  MessageFaultRule rule;
  rule.drop_prob = 0.2;
  rule.comm_class = 1;       // only class 1
  rule.begin = 0.0;
  rule.end = 1.0;            // only the first simulated second
  plan.add_rule(rule);
  DeterministicInjector injector(plan);

  int dropped_in = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i)
    if (injector.on_send(0, 1, i, 100, 1, 0.5, i).drop) ++dropped_in;
  EXPECT_NEAR(static_cast<double>(dropped_in) / trials, 0.2, 0.02);

  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.on_send(0, 1, i, 100, 0, 0.5, i).drop);  // class miss
    EXPECT_FALSE(injector.on_send(0, 1, i, 100, 1, 2.0, i).drop);  // window miss
  }
  EXPECT_EQ(injector.stats().dropped, static_cast<Count>(dropped_in));
}

TEST(DeterministicInjector, SameSeedSameSequence) {
  const FaultPlan plan = FaultPlan::scenario(/*seed=*/7, /*rank_count=*/8,
                                             /*stragglers=*/0, /*slowdown=*/1.0,
                                             /*drop_prob=*/0.3,
                                             /*dup_prob=*/0.1);
  DeterministicInjector a(plan), b(plan);
  for (int i = 0; i < 5000; ++i) {
    const sim::FaultDecision da = a.on_send(0, 1, i, 64, 0, 0.0, i);
    const sim::FaultDecision db = b.on_send(0, 1, i, 64, 0, 0.0, i);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicates, db.duplicates);
    EXPECT_EQ(da.delay, db.delay);
  }
  EXPECT_GT(a.stats().dropped, 0);
  EXPECT_GT(a.stats().duplicated, 0);
}

// ----- engine-level fault effects -------------------------------------------

/// Rank 0 sends `count` messages to rank 1, which counts deliveries.
class Pitcher : public sim::Rank {
 public:
  explicit Pitcher(int count) : count_(count) {}
  void on_start(sim::Context& ctx) override {
    if (ctx.rank() == 0)
      for (int i = 0; i < count_; ++i) ctx.send(1, i, 1000, 0);
  }
  void on_message(sim::Context&, const sim::Message&) override {}
 private:
  int count_;
};

class Catcher : public sim::Rank {
 public:
  explicit Catcher(std::vector<sim::SimTime>* times) : times_(times) {}
  void on_start(sim::Context&) override {}
  void on_message(sim::Context& ctx, const sim::Message&) override {
    times_->push_back(ctx.now());
  }
 private:
  std::vector<sim::SimTime>* times_;
};

struct FixedInjector : sim::FaultInjector {
  sim::FaultDecision decision;
  sim::FaultDecision on_send(int, int, std::int64_t, Count, int, sim::SimTime,
                             std::uint64_t) override {
    return decision;
  }
};

TEST(EngineFaults, DropsDuplicatesAndDelays) {
  const auto run = [](sim::FaultInjector* injector, obs::Recorder* recorder) {
    const sim::Machine m(test_config());
    sim::Engine engine(m, 2, 1);
    if (injector != nullptr) engine.set_fault_injector(injector);
    if (recorder != nullptr) engine.set_sink(recorder);
    std::vector<sim::SimTime> times;
    engine.set_rank(0, std::make_unique<Pitcher>(10));
    engine.set_rank(1, std::make_unique<Catcher>(&times));
    engine.run();
    return times;
  };

  EXPECT_EQ(run(nullptr, nullptr).size(), 10u);

  FixedInjector drop;
  drop.decision.drop = true;
  obs::Recorder recorder;
  EXPECT_EQ(run(&drop, &recorder).size(), 0u);  // wire loss; run terminates
  int drop_marks = 0;
  for (const obs::MarkEvent& mark : recorder.marks())
    if (std::string_view(mark.name) == "fault-drop") ++drop_marks;
  EXPECT_EQ(drop_marks, 10);

  FixedInjector dup;
  dup.decision.duplicates = 2;
  dup.decision.duplicate_delay = 1e-6;
  EXPECT_EQ(run(&dup, nullptr).size(), 30u);  // original + 2 copies each

  FixedInjector delay;
  delay.decision.delay = 5e-3;
  const std::vector<sim::SimTime> prompt = run(nullptr, nullptr);
  const std::vector<sim::SimTime> late = run(&delay, nullptr);
  ASSERT_EQ(prompt.size(), late.size());
  for (std::size_t i = 0; i < prompt.size(); ++i)
    EXPECT_NEAR(late[i] - prompt[i], 5e-3, 1e-9);
}

TEST(EngineFaults, SelfSendsNeverConsultInjector) {
  class SelfLooper : public sim::Rank {
   public:
    void on_start(sim::Context& ctx) override { ctx.send(0, 0, 8, 0); }
    void on_message(sim::Context&, const sim::Message& msg) override {
      got += 1;
      (void)msg;
    }
    int got = 0;
  };
  FixedInjector drop;
  drop.decision.drop = true;
  const sim::Machine m(test_config());
  sim::Engine engine(m, 1, 1);
  engine.set_fault_injector(&drop);
  auto program = std::make_unique<SelfLooper>();
  SelfLooper* looper = program.get();
  engine.set_rank(0, std::move(program));
  engine.run();
  EXPECT_EQ(looper->got, 1);  // delivered despite the drop-everything injector
}

}  // namespace
}  // namespace psi::fault
