/// \file test_chaos.cpp
/// \brief psi::chaos tests: stateless-hash determinism of the injection
/// draws, each injector in isolation (transparent at rate 0, certain at
/// rate 1, honest counters), determinism of the fault-free reference
/// digests, and a small end-to-end campaign whose robustness invariants
/// (one terminal outcome per request, leak-free drain, bitwise-correct
/// successes, store hygiene) must all hold under a seeded fault storm.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "chaos/harness.hpp"
#include "store/filesystem.hpp"

namespace chaos = psi::chaos;
namespace store = psi::store;
namespace serve = psi::serve;
namespace fs = std::filesystem;
using psi::Count;

namespace {

std::string scratch_dir(const std::string& name) {
  const std::string dir = "chaos_test_scratch/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

chaos::Plan zero_plan() { return chaos::Plan{}; }

}  // namespace

// --- stateless-hash injection draws -----------------------------------------

TEST(ChaosHash, UniformFromIsDeterministicPerInputAndDecorrelatedAcrossSalts) {
  for (std::uint64_t counter = 0; counter < 64; ++counter) {
    const double draw = chaos::uniform_from(42, counter, 7);
    EXPECT_EQ(draw, chaos::uniform_from(42, counter, 7))
        << "same (seed, counter, salt) must give the same draw";
    EXPECT_GE(draw, 0.0);
    EXPECT_LT(draw, 1.0);
  }
  // Different salts / seeds / counters decorrelate: over 64 draws at least
  // one must differ (they are 53-bit uniforms; collision odds are nil).
  int salt_diff = 0, seed_diff = 0, counter_diff = 0;
  for (std::uint64_t c = 0; c < 64; ++c) {
    salt_diff += chaos::uniform_from(42, c, 7) != chaos::uniform_from(42, c, 8);
    seed_diff += chaos::uniform_from(42, c, 7) != chaos::uniform_from(43, c, 7);
    counter_diff +=
        chaos::uniform_from(42, c, 7) != chaos::uniform_from(42, c + 1, 7);
  }
  EXPECT_GT(salt_diff, 32);
  EXPECT_GT(seed_diff, 32);
  EXPECT_GT(counter_diff, 32);
}

// --- ChaosFileSystem --------------------------------------------------------

TEST(ChaosFileSystem, ZeroPlanIsATransparentProxy) {
  const std::string dir = scratch_dir("transparent");
  chaos::ChaosFileSystem cfs(zero_plan());
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  std::string error;
  ASSERT_TRUE(cfs.write_file(dir + "/a.bin", payload.data(), payload.size(),
                             /*sync=*/true, &error))
      << error;
  ASSERT_TRUE(cfs.rename_file(dir + "/a.bin", dir + "/b.bin", &error)) << error;
  ASSERT_TRUE(cfs.sync_dir(dir, &error)) << error;
  std::vector<std::uint8_t> out;
  ASSERT_EQ(cfs.read_file(dir + "/b.bin", out, &error),
            store::FileSystem::ReadResult::kOk)
      << error;
  EXPECT_EQ(out, payload);
  std::vector<std::string> names;
  ASSERT_TRUE(cfs.list_dir(dir, names, &error)) << error;
  EXPECT_EQ(names, std::vector<std::string>{"b.bin"});

  const chaos::ChaosFileSystem::Stats stats = cfs.stats();
  EXPECT_EQ(stats.reads, 1);
  EXPECT_EQ(stats.writes, 1);
  EXPECT_EQ(stats.renames, 1);
  EXPECT_EQ(stats.read_errors, 0);
  EXPECT_EQ(stats.write_errors, 0);
  EXPECT_EQ(stats.torn_writes, 0);
  EXPECT_EQ(stats.rename_errors, 0);
}

TEST(ChaosFileSystem, CertainReadErrorsFailEveryReadWithAReason) {
  const std::string dir = scratch_dir("read_errors");
  {
    chaos::ChaosFileSystem clean(zero_plan());
    const std::vector<std::uint8_t> payload = {9, 9, 9};
    ASSERT_TRUE(clean.write_file(dir + "/x.bin", payload.data(), payload.size(),
                                 true, nullptr));
  }
  chaos::Plan plan;
  plan.seed = 123;
  plan.store_read_error_rate = 1.0;
  chaos::ChaosFileSystem cfs(plan);
  for (int i = 0; i < 5; ++i) {
    std::vector<std::uint8_t> out;
    std::string error;
    EXPECT_EQ(cfs.read_file(dir + "/x.bin", out, &error),
              store::FileSystem::ReadResult::kError);
    EXPECT_FALSE(error.empty());
  }
  EXPECT_EQ(cfs.stats().read_errors, 5);
  EXPECT_EQ(cfs.stats().reads, 5);
}

TEST(ChaosFileSystem, TornWritesReportSuccessButPersistOnlyAPrefix) {
  const std::string dir = scratch_dir("torn");
  chaos::Plan plan;
  plan.seed = 9;
  plan.store_torn_write_rate = 1.0;
  chaos::ChaosFileSystem cfs(plan);
  const std::vector<std::uint8_t> payload(256, 0x5a);
  std::string error;
  ASSERT_TRUE(cfs.write_file(dir + "/t.bin", payload.data(), payload.size(),
                             true, &error))
      << "a torn write must still REPORT success: " << error;
  EXPECT_EQ(cfs.stats().torn_writes, 1);
  const auto written = fs::file_size(dir + "/t.bin");
  EXPECT_GT(written, 0u);
  EXPECT_LT(written, payload.size())
      << "a torn write must persist a strict prefix";
}

// --- ChaosClock and StallInjector -------------------------------------------

TEST(ChaosClock, ZeroRateTracksTheHostAndCertainRateJumps) {
  chaos::ChaosClock steady(zero_plan());
  const double a = steady.now();
  const double b = steady.now();
  EXPECT_GE(b, a) << "skew-free chaos clock must stay monotone";
  EXPECT_EQ(steady.skew_jumps(), 0);

  chaos::Plan plan;
  plan.seed = 31;
  plan.clock_skew_rate = 1.0;
  plan.clock_skew_seconds = 5.0;
  chaos::ChaosClock skewed(plan);
  for (int i = 0; i < 10; ++i) skewed.now();
  EXPECT_EQ(skewed.skew_jumps(), 10);
}

TEST(StallInjector, CertainRateSleepsAndCountsEveryBoundary) {
  chaos::Plan plan;
  plan.seed = 77;
  plan.stall_rate = 1.0;
  plan.stall_seconds = 1e-4;
  chaos::StallInjector injector(plan);
  const std::string id = "r0";
  const std::string tenant = "t0";
  for (int i = 0; i < 3; ++i) {
    injector.on_phase(serve::PhaseEvent{"scatter", 0, id, tenant});
  }
  EXPECT_EQ(injector.stalls(), 3);

  chaos::StallInjector quiet(zero_plan());
  for (int i = 0; i < 3; ++i) {
    quiet.on_phase(serve::PhaseEvent{"scatter", 0, id, tenant});
  }
  EXPECT_EQ(quiet.stalls(), 0);
}

// --- campaign ---------------------------------------------------------------

namespace {

chaos::CampaignOptions small_campaign(const std::string& plan_dir) {
  chaos::CampaignOptions options;
  options.plan.seed = 0xc4a05;
  options.plan.store_read_error_rate = 0.10;
  options.plan.store_write_error_rate = 0.05;
  options.plan.store_rename_error_rate = 0.05;
  options.plan.store_torn_write_rate = 0.10;
  options.plan.stall_rate = 0.02;
  options.plan.stall_seconds = 0.05;
  options.plan.clock_skew_rate = 0.05;
  options.plan.clock_skew_seconds = 0.02;
  options.shards = 2;
  options.workers = 2;
  options.queue_capacity = 8;
  options.max_batch = 4;
  options.stall_budget_seconds = 0.02;
  options.plan_dir = plan_dir;
  options.requests = 30;
  options.structures = 2;
  options.nx = 10;
  options.tenants = 2;
  options.workload_seed = 5;
  options.deadline_fraction = 0.3;
  options.cancel_fraction = 0.2;
  options.window = 6;
  options.storm_every = 10;
  options.storm_size = 12;
  options.drain_timeout_seconds = 5.0;
  return options;
}

}  // namespace

TEST(ChaosCampaign, ReferenceDigestsAreDeterministicAndCoverEveryRequest) {
  chaos::CampaignOptions options = small_campaign("");
  const auto first = chaos::reference_digests(options);
  const auto second = chaos::reference_digests(options);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), static_cast<std::size_t>(options.requests));
  for (const auto& [id, digest] : first) {
    EXPECT_FALSE(digest.empty()) << id;
  }
}

TEST(ChaosCampaign, SeededStormUpholdsEveryRobustnessInvariant) {
  const chaos::CampaignOptions options =
      small_campaign(scratch_dir("campaign_store"));
  const chaos::CampaignResult result = chaos::run_chaos_campaign(options);
  for (const auto& violation : result.violations) {
    ADD_FAILURE() << "invariant violated: " << violation;
  }
  EXPECT_TRUE(result.passed());
  // The tally is a partition of the request population.
  EXPECT_EQ(result.ok + result.failed + result.rejected + result.shutdown +
                result.deadline + result.cancelled,
            options.requests);
  EXPECT_GT(result.ok, 0) << "a passing campaign serves at least something";
  EXPECT_EQ(result.queued_after_drain, 0u);
  EXPECT_EQ(result.in_flight_after_shutdown, 0);
  // The storm actually stormed: injected faults were drawn.
  EXPECT_GT(result.fs.reads + result.fs.writes + result.fs.renames, 0);
  EXPECT_GT(result.deadlines_assigned, 0);
  EXPECT_GT(result.cancels_flipped, 0);
}

TEST(ChaosCampaign, SameSeedGivesTheSameFaultStream) {
  // The outcome tally can shift between runs (thread interleaving decides
  // which request a fault lands on) but the injected fault STREAM is a pure
  // function of the seed, so the per-injector draw sequences are too. Run
  // two campaigns with the same seed against fresh stores and compare the
  // deterministic request-derivation counters.
  chaos::CampaignOptions options = small_campaign(scratch_dir("repeat_a"));
  const chaos::CampaignResult a = chaos::run_chaos_campaign(options);
  options.plan_dir = scratch_dir("repeat_b");
  const chaos::CampaignResult b = chaos::run_chaos_campaign(options);
  EXPECT_EQ(a.deadlines_assigned, b.deadlines_assigned);
  EXPECT_EQ(a.cancels_flipped, b.cancels_flipped);
  EXPECT_TRUE(a.passed());
  EXPECT_TRUE(b.passed());
}
