/// Tests for psi::check — adversarial schedule exploration, the
/// differential oracle, the shrinker, and repro replay (ctest -L check).
///
/// The headline assertions mirror the subsystem's acceptance criteria: the
/// planted arrival-order ReduceState bug is caught by a fixed-seed campaign
/// within 200 trials, shrunk to a small spec (<= 20 rows, <= 2 fault
/// rules), and its repro file replays to the byte-identical failure
/// signature.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "check/campaign.hpp"
#include "check/oracle.hpp"
#include "check/repro.hpp"
#include "check/schedule.hpp"
#include "check/shrink.hpp"
#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "trees/protocol.hpp"

namespace psi::check {
namespace {

// ----- AdversarialSchedule -------------------------------------------------

TEST(AdversarialSchedule, SeedZeroIsIdentity) {
  AdversarialSchedule schedule(0, /*delay_bound=*/1.0);
  for (std::uint64_t seq : {0ull, 1ull, 17ull, 123456789ull})
    EXPECT_EQ(schedule.tie_priority(seq), seq);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(schedule.network_delay(0, 1, i, 100, 0, 0.0, i), 0.0);
}

TEST(AdversarialSchedule, SameSeedSameStreams) {
  AdversarialSchedule a(42, 1e-4);
  AdversarialSchedule b(42, 1e-4);
  for (std::uint64_t seq = 0; seq < 64; ++seq)
    EXPECT_EQ(a.tie_priority(seq), b.tie_priority(seq));
  for (int i = 0; i < 64; ++i) {
    const double da = a.network_delay(0, 1, i, 100, 0, 0.0, i);
    const double db = b.network_delay(0, 1, i, 100, 0, 0.0, i);
    EXPECT_EQ(da, db);
    EXPECT_GE(da, 0.0);
    EXPECT_LT(da, 1e-4);
  }
  // Different seeds give a different tie permutation.
  AdversarialSchedule c(43, 1e-4);
  bool any_difference = false;
  for (std::uint64_t seq = 0; seq < 64; ++seq)
    any_difference = any_difference || a.tie_priority(seq) != c.tie_priority(seq);
  EXPECT_TRUE(any_difference);
}

/// N ranks each send rank 0 one equal-size message at t = 0, so all N
/// arrivals carry the identical delivery timestamp. Without a policy the
/// engine must hand them over in FIFO post order; with a seeded policy the
/// pop order is a deterministic permutation of the ties.
class TieSender : public sim::Rank {
 public:
  void on_start(sim::Context& ctx) override {
    if (ctx.rank() != 0) ctx.send(0, /*tag=*/ctx.rank(), 64, 0);
  }
  void on_message(sim::Context&, const sim::Message&) override {}
};

class TieReceiver : public sim::Rank {
 public:
  explicit TieReceiver(std::vector<std::int64_t>* order) : order_(order) {}
  void on_start(sim::Context&) override {}
  void on_message(sim::Context&, const sim::Message& msg) override {
    order_->push_back(msg.tag);
  }

 private:
  std::vector<std::int64_t>* order_;
};

std::vector<std::int64_t> arrival_order(std::uint64_t schedule_seed) {
  // Zero per-message overhead and flat latency: every sender's NIC is free
  // at t = 0 and all transfers are identical, so the deliveries tie.
  sim::MachineConfig config;
  config.cores_per_node = 16;
  config.msg_overhead = 0.0;
  const sim::Machine machine(config);
  const int ranks = 9;
  sim::Engine engine(machine, ranks, 1);
  std::vector<std::int64_t> order;
  engine.set_rank(0, std::make_unique<TieReceiver>(&order));
  for (int r = 1; r < ranks; ++r)
    engine.set_rank(r, std::make_unique<TieSender>());
  AdversarialSchedule schedule(schedule_seed);
  if (schedule_seed != 0) engine.set_schedule_policy(&schedule);
  engine.run();
  return order;
}

TEST(AdversarialSchedule, EnginePermutesTiesDeterministically) {
  const std::vector<std::int64_t> fifo = arrival_order(0);
  std::vector<std::int64_t> expected;
  for (int r = 1; r < 9; ++r) expected.push_back(r);
  EXPECT_EQ(fifo, expected);  // no policy: FIFO by post order

  const std::vector<std::int64_t> seeded = arrival_order(7);
  EXPECT_EQ(seeded, arrival_order(7));  // same seed, same order
  std::vector<std::int64_t> sorted = seeded;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, expected);  // a permutation: nothing lost or duplicated
  EXPECT_NE(seeded, fifo);      // and for this seed, a real reordering
}

// ----- Planted-bug hook ----------------------------------------------------

/// With the test hook on, the canonical ReduceState degrades to fast-mode
/// arrival-order folding — the order-dependence bug the oracle must catch.
TEST(PlantedBug, HookMakesCanonicalFoldArrivalOrdered) {
  const auto scalar = [](double v) {
    auto m = std::make_shared<DenseMatrix>(1, 1);
    (*m)(0, 0) = v;
    return m;
  };
  const std::array<int, 2> children{3, 7};
  const auto fold = [&](bool child7_first) {
    trees::ReduceState r{std::span<const int>(children)};
    r.add_local(scalar(1e16));
    if (child7_first) {
      r.add_child_from(7, scalar(-1e16));
      r.add_child_from(3, scalar(1.0));
    } else {
      r.add_child_from(3, scalar(1.0));
      r.add_child_from(7, scalar(-1e16));
    }
    return (*r.accumulated())(0, 0);
  };
  ASSERT_FALSE(trees::ReduceState::test_fold_in_arrival_order());
  EXPECT_EQ(fold(true), fold(false));  // healthy: order-independent

  trees::ReduceState::test_set_fold_in_arrival_order(true);
  EXPECT_NE(fold(true), fold(false));  // planted: arrival order leaks
  trees::ReduceState::test_set_fold_in_arrival_order(false);
  ASSERT_FALSE(trees::ReduceState::test_fold_in_arrival_order());
}

// ----- Oracle --------------------------------------------------------------

TEST(Oracle, CleanCasePassesWithInvariantsExercised) {
  CaseSpec spec;
  spec.matrix_seed = 12345;
  spec.n = 32;
  spec.degree = 3.5;
  spec.grid_rows = 2;
  spec.grid_cols = 2;
  spec.fault_seed = 99;
  FaultRuleSpec rule;
  rule.drop_prob = 0.02;
  rule.dup_prob = 0.02;
  spec.fault_rules.push_back(rule);
  spec.schedule_seed = 7;
  spec.schedules = 2;
  spec.delay_bound = 100e-6;

  const CaseResult result = run_case(spec);
  EXPECT_TRUE(result.passed) << result.signature;
  EXPECT_EQ(result.signature, "");
  // 3 schemes x (1 fast + 1 baseline + K adversarial legs), plus the two
  // partitioned-engine legs on the shifted-binary scheme.
  EXPECT_EQ(result.legs_run, 3u * (2u + 2u) + 2u);
  // Plus the shared-memory legs: threads=2 natural + threads=4 scrambled.
  EXPECT_EQ(result.numeric_parallel_legs, 2u);
  EXPECT_EQ(result.sim_partition_legs, 2u);
  // Plus the non-symmetric differential: one task-parallel sweep, three
  // fast scheme legs, and the resilient baseline + adversarial pair.
  EXPECT_EQ(result.nsym_legs, 6u);
  EXPECT_GT(result.events, 0);
  EXPECT_GT(result.arena_high_water, 0u);
  EXPECT_LT(result.max_ref_err, 1e-8);
  // The fault plan actually fired (the invariants were checked under load).
  EXPECT_GT(result.injected_drops + result.injected_duplicates, 0);
}

TEST(Oracle, DeterministicAcrossRuns) {
  const CaseSpec spec = trial_spec(/*seed=*/3, /*index=*/0, false);
  const CaseResult a = run_case(spec);
  const CaseResult b = run_case(spec);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.arena_high_water, b.arena_high_water);
}

TEST(Oracle, SignatureKindSplitsAtFirstSpace) {
  EXPECT_EQ(signature_kind("bitwise-mismatch scheme=x leg=y"),
            "bitwise-mismatch");
  EXPECT_EQ(signature_kind("invariant:volume a=1"), "invariant:volume");
  EXPECT_EQ(signature_kind("bare"), "bare");
}

// ----- Campaign + shrinker + replay on the planted bug ---------------------

/// End-to-end acceptance: a fixed-seed campaign with the planted bug
/// enabled fails within 200 trials; the failure shrinks to <= 20 rows and
/// <= 2 fault rules; the written repro file replays to the byte-identical
/// failure signature.
TEST(PlantedBugCampaign, CaughtShrunkAndReplayedByteIdentically) {
  const std::string repro_dir = ::testing::TempDir();
  CampaignOptions options;
  options.seed = 1;
  options.trials = 200;
  options.plant_bug = true;
  options.stop_on_failure = true;
  options.repro_dir = repro_dir;

  const CampaignResult campaign = run_campaign(options, nullptr, nullptr);
  ASSERT_GT(campaign.failures, 0)
      << "planted bug not caught within 200 trials";
  ASSERT_GE(campaign.first_failure_trial, 0);
  ASSERT_LT(campaign.first_failure_trial, 200);
  // The planted fold lives in trees::ReduceState, which both engines share,
  // so whichever resilient differential reaches it first — symmetric or
  // non-symmetric — reports the bitwise mismatch.
  const std::string kind = signature_kind(campaign.first_failure_signature);
  EXPECT_TRUE(kind == "bitwise-mismatch" || kind == "nsym-bitwise-mismatch")
      << campaign.first_failure_signature;
  ASSERT_FALSE(campaign.first_repro_path.empty());

  const Repro repro = read_repro_file(campaign.first_repro_path);
  EXPECT_LE(repro.spec.n, 20);
  EXPECT_LE(repro.spec.fault_rules.size(), 2u);
  EXPECT_TRUE(repro.spec.plant_bug);

  // Replay: the shrunk spec reproduces its recorded signature exactly.
  const CaseResult replayed = run_case(repro.spec);
  ASSERT_FALSE(replayed.passed);
  EXPECT_EQ(replayed.signature, repro.signature);
}

TEST(Campaign, CleanSliceReportsNoFailuresAndStreamsNdjson) {
  CampaignOptions options;
  options.seed = 1;
  options.trials = 3;
  std::ostringstream ndjson;
  obs::MetricsRegistry metrics;
  const CampaignResult campaign = run_campaign(options, &ndjson, &metrics);
  EXPECT_EQ(campaign.trials_run, 3);
  EXPECT_EQ(campaign.failures, 0) << campaign.first_failure_signature;
  EXPECT_GT(campaign.total_events, 0);
  // One JSON object per trial, wired into the metrics registry.
  std::istringstream lines(ndjson.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"passed\":true"), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, 3);
  EXPECT_GT(metrics.size(), 0u);
  EXPECT_NE(metrics.to_ndjson().find("check.trials"), std::string::npos);
}

TEST(Campaign, TrialSpecIsAPureFunction) {
  const CaseSpec a = trial_spec(9, 4, false);
  const CaseSpec b = trial_spec(9, 4, false);
  EXPECT_EQ(a.matrix_seed, b.matrix_seed);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.fault_rules.size(), b.fault_rules.size());
  EXPECT_EQ(a.schedule_seed, b.schedule_seed);
  const CaseSpec c = trial_spec(9, 5, false);
  EXPECT_NE(a.matrix_seed, c.matrix_seed);
}

// ----- Repro round-trip ----------------------------------------------------

TEST(Repro, TextRoundTripIsExact) {
  Repro repro;
  repro.spec.matrix_seed = 0xdeadbeefcafef00dULL;
  repro.spec.n = 47;
  repro.spec.degree = 0.1 + 1.0 / 3.0;  // not exactly representable
  repro.spec.unsymmetric = true;
  repro.spec.grid_rows = 3;
  repro.spec.grid_cols = 5;
  repro.spec.fault_seed = 0xffffffffffffffffULL;
  repro.spec.schedule_seed = 1;
  repro.spec.schedules = 4;
  repro.spec.delay_bound = 1.2345678901234567e-5;
  repro.spec.plant_bug = true;
  FaultRuleSpec rule;
  rule.drop_prob = 1.0 / 7.0;
  rule.dup_prob = 2.2250738585072014e-308;  // smallest normal double
  rule.delay_prob = 0.25;
  rule.delay = 9.9e-6;
  rule.comm_class = 3;
  repro.spec.fault_rules.push_back(rule);
  repro.signature = "bitwise-mismatch scheme=Flat-Tree leg=resilient1 "
                    "block=4,2 baseline=0.001 got=0.002";

  const std::string text = to_text(repro);
  const Repro parsed = parse_repro(text);
  EXPECT_EQ(parsed.spec.matrix_seed, repro.spec.matrix_seed);
  EXPECT_EQ(parsed.spec.n, repro.spec.n);
  EXPECT_EQ(std::memcmp(&parsed.spec.degree, &repro.spec.degree,
                        sizeof(double)), 0);
  EXPECT_EQ(parsed.spec.unsymmetric, repro.spec.unsymmetric);
  EXPECT_EQ(parsed.spec.grid_rows, repro.spec.grid_rows);
  EXPECT_EQ(parsed.spec.grid_cols, repro.spec.grid_cols);
  EXPECT_EQ(parsed.spec.fault_seed, repro.spec.fault_seed);
  EXPECT_EQ(parsed.spec.schedule_seed, repro.spec.schedule_seed);
  EXPECT_EQ(parsed.spec.schedules, repro.spec.schedules);
  EXPECT_EQ(std::memcmp(&parsed.spec.delay_bound, &repro.spec.delay_bound,
                        sizeof(double)), 0);
  EXPECT_EQ(parsed.spec.plant_bug, repro.spec.plant_bug);
  ASSERT_EQ(parsed.spec.fault_rules.size(), 1u);
  const FaultRuleSpec& got = parsed.spec.fault_rules[0];
  EXPECT_EQ(std::memcmp(&got.drop_prob, &rule.drop_prob, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&got.dup_prob, &rule.dup_prob, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&got.delay_prob, &rule.delay_prob, sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&got.delay, &rule.delay, sizeof(double)), 0);
  EXPECT_EQ(got.comm_class, rule.comm_class);
  EXPECT_EQ(parsed.signature, repro.signature);
  // Serializing the parse reproduces the bytes.
  EXPECT_EQ(to_text(parsed), text);
}

TEST(Repro, MalformedInputFailsLoudly) {
  EXPECT_THROW(parse_repro("not a repro"), Error);
  EXPECT_THROW(parse_repro("psi-check-repro v1\nn 12\n"), Error);  // no sig
  EXPECT_THROW(parse_repro("psi-check-repro v1\nbogus_key 1\nsignature x\n"),
               Error);
  EXPECT_THROW(
      parse_repro("psi-check-repro v1\nn twelve\nsignature x\n"), Error);
}

// ----- Shrinker ------------------------------------------------------------

TEST(Shrink, LeavesPassingDimensionsAloneAndIsDeterministic) {
  // Build a failing planted-bug case via the campaign generator.
  CampaignOptions probe;
  probe.seed = 1;
  probe.trials = 200;
  probe.plant_bug = true;
  probe.stop_on_failure = true;
  const CampaignResult campaign = run_campaign(probe, nullptr, nullptr);
  ASSERT_GT(campaign.failures, 0);
  const CaseSpec failing =
      trial_spec(probe.seed, campaign.first_failure_trial, true);

  const ShrinkResult a =
      shrink(failing, campaign.first_failure_signature, 120);
  const ShrinkResult b =
      shrink(failing, campaign.first_failure_signature, 120);
  // Deterministic: same input, same minimum, same signature.
  EXPECT_EQ(a.spec.n, b.spec.n);
  EXPECT_EQ(a.spec.matrix_seed, b.spec.matrix_seed);
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_EQ(a.attempts, b.attempts);
  // Monotone: never grows any dimension.
  EXPECT_LE(a.spec.n, failing.n);
  EXPECT_LE(a.spec.fault_rules.size(), failing.fault_rules.size());
  EXPECT_LE(a.spec.schedules, failing.schedules);
  EXPECT_LE(a.spec.delay_bound, failing.delay_bound);
  // Still failing with the same kind.
  EXPECT_EQ(signature_kind(a.signature),
            signature_kind(campaign.first_failure_signature));
  const CaseResult check = run_case(a.spec);
  EXPECT_FALSE(check.passed);
  EXPECT_EQ(check.signature, a.signature);
}

}  // namespace
}  // namespace psi::check
