/// Unit tests for the asynchronous tree protocol helpers (trees/protocol.hpp)
/// driven through the simulator: a full broadcast and a full reduction over
/// each scheme, with numeric payload verification.
#include <gtest/gtest.h>

#include <map>

#include "common/check.hpp"
#include "sim/engine.hpp"
#include "trees/comm_tree.hpp"
#include "trees/protocol.hpp"

namespace psi::trees {
namespace {

sim::Machine test_machine() {
  sim::MachineConfig config;
  config.cores_per_node = 4;
  return sim::Machine(config);
}

TEST(ReduceState, CountsChildrenPlusLocal) {
  ReduceState state(2);  // two children + local
  EXPECT_FALSE(state.ready());
  EXPECT_FALSE(state.add_local(nullptr));
  EXPECT_FALSE(state.add_child(nullptr));
  EXPECT_TRUE(state.add_child(nullptr));
  EXPECT_TRUE(state.ready());
  EXPECT_EQ(state.accumulated(), nullptr);  // trace mode: no matrix
}

TEST(ReduceState, AccumulatesMatrices) {
  ReduceState state(1);
  auto local = std::make_shared<DenseMatrix>(2, 2, 1.0);
  EXPECT_FALSE(state.add_local(std::move(local)));
  auto child = std::make_shared<DenseMatrix>(2, 2, 2.5);
  EXPECT_TRUE(state.add_child(child));
  const auto sum = state.accumulated();
  ASSERT_NE(sum, nullptr);
  EXPECT_DOUBLE_EQ((*sum)(0, 0), 3.5);
  EXPECT_DOUBLE_EQ((*sum)(1, 1), 3.5);
  // The child's payload must not have been mutated (it may be shared with
  // other consumers of the broadcast).
  EXPECT_DOUBLE_EQ((*child)(0, 0), 2.5);
}

TEST(ReduceState, ShapeMismatchThrows) {
  ReduceState state(1);
  state.add_local(std::make_shared<DenseMatrix>(2, 2, 1.0));
  EXPECT_THROW(state.add_child(std::make_shared<DenseMatrix>(3, 2, 1.0)), Error);
}

TEST(ReduceState, OvercountThrows) {
  ReduceState state(0);
  EXPECT_TRUE(state.add_local(nullptr));
  EXPECT_THROW(state.add_local(nullptr), Error);
}

/// A rank program executing one broadcast followed by one reduction over the
/// same tree: the root broadcasts a value, every participant contributes
/// value + rank, the root checks the total.
class BcastReduceRank : public sim::Rank {
 public:
  struct Shared {
    const CommTree* tree;
    double broadcast_value = 7.0;
    double reduced_total = 0.0;
    int deliveries = 0;
  };

  BcastReduceRank(Shared& shared, int rank) : sh_(&shared), me_(rank) {}

  void on_start(sim::Context& ctx) override {
    if (!sh_->tree->participates(me_) || me_ != sh_->tree->root()) return;
    auto payload = std::make_shared<DenseMatrix>(1, 1, sh_->broadcast_value);
    bcast_forward(ctx, *sh_->tree, /*tag=*/1, 8, 0, payload);
    consume(ctx, payload);
  }

  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    if (msg.tag == 1) {
      bcast_forward(ctx, *sh_->tree, msg.tag, msg.bytes, 0, msg.data);
      consume(ctx, msg.data);
    } else {
      if (reduce_.add_child(msg.data)) complete(ctx);
    }
  }

 private:
  void consume(sim::Context& ctx, const std::shared_ptr<const DenseMatrix>& p) {
    ++sh_->deliveries;
    EXPECT_DOUBLE_EQ((*p)(0, 0), sh_->broadcast_value);
    reduce_ = ReduceState(static_cast<int>(sh_->tree->children_of(me_).size()));
    auto contribution =
        std::make_shared<DenseMatrix>(1, 1, (*p)(0, 0) + me_);
    if (reduce_.add_local(std::move(contribution))) complete(ctx);
  }

  void complete(sim::Context& ctx) {
    if (me_ == sh_->tree->root()) {
      sh_->reduced_total = (*reduce_.accumulated())(0, 0);
    } else {
      ctx.send(sh_->tree->parent_of(me_), /*tag=*/2, 8, 0, reduce_.accumulated());
    }
  }

  Shared* sh_;
  int me_;
  ReduceState reduce_;
};

class ProtocolRoundTrip : public ::testing::TestWithParam<TreeScheme> {};

TEST_P(ProtocolRoundTrip, BcastThenReduceOverTree) {
  const int nranks = 13;
  TreeOptions options;
  options.scheme = GetParam();
  std::vector<int> receivers;
  for (int r = 0; r < nranks; ++r)
    if (r != 4) receivers.push_back(r);
  const CommTree tree = CommTree::build(options, 4, receivers, 99);

  BcastReduceRank::Shared shared{&tree};
  const sim::Machine machine = test_machine();
  sim::Engine engine(machine, nranks, 1);
  for (int r = 0; r < nranks; ++r)
    engine.set_rank(r, std::make_unique<BcastReduceRank>(shared, r));
  engine.run();

  EXPECT_EQ(shared.deliveries, nranks);  // every participant consumed once
  // Sum over all ranks of (7 + rank) = 13*7 + 0+1+...+12.
  EXPECT_DOUBLE_EQ(shared.reduced_total, 13 * 7.0 + 78.0);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ProtocolRoundTrip,
                         ::testing::Values(TreeScheme::kFlat, TreeScheme::kBinary,
                                           TreeScheme::kShiftedBinary,
                                           TreeScheme::kRandomPerm,
                                           TreeScheme::kHybrid),
                         [](const ::testing::TestParamInfo<TreeScheme>& info) {
                           std::string name = scheme_name(info.param);
                           for (char& c : name)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

}  // namespace
}  // namespace psi::trees
