/// Tests for the resilient protocol layer: ReduceState misuse detection and
/// canonical-order accumulation, ResilientChannel delivery guarantees under
/// injected drops / duplicates / ack loss, subtree re-parenting around a
/// blackholed child, and the end-to-end guarantee that a faulty resilient
/// PSelInv run is bitwise identical to the fault-free one.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "driver/experiment.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "numeric/selinv.hpp"
#include "obs/analysis.hpp"
#include "obs/recorder.hpp"
#include "pselinv/engine.hpp"
#include "sim/engine.hpp"
#include "sparse/generators.hpp"
#include "trees/protocol.hpp"
#include "trees/resilient.hpp"

namespace psi::trees {
namespace {

sim::MachineConfig test_config() {
  sim::MachineConfig config;
  config.cores_per_node = 4;
  config.nodes_per_group = 2;
  config.flop_rate = 1e9;
  config.msg_overhead = 1e-6;
  return config;
}

std::shared_ptr<DenseMatrix> scalar(double v) {
  auto m = std::make_shared<DenseMatrix>(1, 1);
  (*m)(0, 0) = v;
  return m;
}

// ----- ReduceState misuse ----------------------------------------------------

TEST(ReduceState, CountingModeRejectsMisuse) {
  ReduceState r(2);
  EXPECT_FALSE(r.add_local(scalar(1.0)));
  EXPECT_THROW(r.add_local(scalar(1.0)), Error);  // add_local twice
  EXPECT_FALSE(r.add_child(scalar(2.0)));
  EXPECT_TRUE(r.add_child(scalar(3.0)));
  EXPECT_TRUE(r.ready());
  // Any contribution after completion fails loudly.
  EXPECT_THROW(r.add_child(scalar(4.0)), Error);
  EXPECT_EQ((*r.accumulated())(0, 0), 6.0);

  // Over-counted children without a local contribution also fail.
  ReduceState s(1);
  EXPECT_FALSE(s.add_child(nullptr));
  EXPECT_THROW(s.add_child(nullptr), Error);
}

TEST(ReduceState, CanonicalModeRejectsMisuse) {
  const std::array<int, 2> children{4, 9};
  ReduceState r{std::span<const int>(children)};
  EXPECT_THROW(r.add_child(scalar(1.0)), Error);       // needs add_child_from
  EXPECT_THROW(r.add_child_from(5, scalar(1.0)), Error);  // not a tree child
  EXPECT_FALSE(r.add_child_from(4, scalar(1.0)));
  EXPECT_THROW(r.add_child_from(4, scalar(1.0)), Error);  // duplicate child
  EXPECT_THROW(r.accumulated(), Error);  // folded before completion
  EXPECT_FALSE(r.add_local(scalar(2.0)));
  EXPECT_THROW(r.add_local(scalar(2.0)), Error);
  EXPECT_TRUE(r.add_child_from(9, scalar(3.0)));
  EXPECT_EQ((*r.accumulated())(0, 0), 6.0);
}

TEST(ReduceState, CanonicalFoldIsArrivalOrderIndependent) {
  // Values chosen so floating-point summation order changes the result:
  // (1e16 + 1) - 1e16 == 0 but (1e16 - 1e16) + 1 == 1.
  const std::array<int, 2> children{3, 7};
  const auto fold = [&children](bool child7_first) {
    ReduceState r{std::span<const int>(children)};
    r.add_local(scalar(1e16));
    if (child7_first) {
      r.add_child_from(7, scalar(-1e16));
      r.add_child_from(3, scalar(1.0));
    } else {
      r.add_child_from(3, scalar(1.0));
      r.add_child_from(7, scalar(-1e16));
    }
    return (*r.accumulated())(0, 0);
  };
  const double a = fold(true);
  const double b = fold(false);
  EXPECT_EQ(a, b);  // bitwise: the fold order is fixed at construction
  EXPECT_EQ(a, (1e16 + 1.0) + -1e16);  // local, then children in tree order
}

// ----- ResilientChannel ------------------------------------------------------

constexpr int kAckClass = 1;

ResilienceConfig fast_config() {
  ResilienceConfig config;
  config.enabled = true;
  config.ack_comm_class = kAckClass;
  config.retry_base = 200e-6;
  return config;
}

/// Rank 0 streams `count` tracked sends to rank 1 through its channel.
class ChannelSender : public sim::Rank {
 public:
  ChannelSender(const ResilienceConfig& config, int count)
      : config_(config), count_(count) {}
  void on_start(sim::Context& ctx) override {
    channel.configure(config_, ctx.rank());
    for (int i = 0; i < count_; ++i)
      channel.send(ctx, 1, i, 512, 0, nullptr, /*idempotent=*/false);
  }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    PSI_CHECK_MSG(!channel.on_message(ctx, msg),
                  "sender got unexpected application data");
  }
  void on_timer(sim::Context& ctx, std::int64_t tag) override {
    PSI_CHECK(channel.on_timer(ctx, tag));
  }
  ResilientChannel channel;

 private:
  ResilienceConfig config_;
  int count_;
};

class ChannelReceiver : public sim::Rank {
 public:
  explicit ChannelReceiver(const ResilienceConfig& config) : config_(config) {}
  void on_start(sim::Context& ctx) override {
    channel.configure(config_, ctx.rank());
  }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    if (channel.on_message(ctx, msg)) fresh_tags.push_back(msg.tag);
  }
  void on_timer(sim::Context& ctx, std::int64_t tag) override {
    PSI_CHECK(channel.on_timer(ctx, tag));
  }
  ResilientChannel channel;
  std::vector<std::int64_t> fresh_tags;

 private:
  ResilienceConfig config_;
};

struct StreamOutcome {
  std::vector<std::int64_t> fresh_tags;
  ChannelStats sender_stats;
  ChannelStats receiver_stats;
  std::size_t inflight_left = 0;
};

StreamOutcome run_stream(int count, sim::FaultInjector* injector) {
  const sim::Machine m(test_config());
  sim::Engine engine(m, 2, 2);
  if (injector != nullptr) engine.set_fault_injector(injector);
  auto sender = std::make_unique<ChannelSender>(fast_config(), count);
  auto receiver = std::make_unique<ChannelReceiver>(fast_config());
  ChannelSender* s = sender.get();
  ChannelReceiver* r = receiver.get();
  engine.set_rank(0, std::move(sender));
  engine.set_rank(1, std::move(receiver));
  engine.run();
  return StreamOutcome{r->fresh_tags, s->channel.stats(), r->channel.stats(),
                       s->channel.inflight()};
}

TEST(ResilientChannel, ExactlyOnceUnderDrops) {
  fault::FaultPlan plan(11);
  fault::MessageFaultRule rule;
  rule.drop_prob = 0.4;  // both data and acks
  plan.add_rule(rule);
  fault::DeterministicInjector injector(plan);

  const StreamOutcome out = run_stream(200, &injector);
  ASSERT_EQ(out.fresh_tags.size(), 200u);  // every message delivered once
  std::vector<std::int64_t> sorted = out.fresh_tags;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 200; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(out.inflight_left, 0u);  // every send eventually acked
  EXPECT_GT(out.sender_stats.retries, 0);
  EXPECT_GT(injector.stats().dropped, 0);
}

TEST(ResilientChannel, SuppressesInjectedDuplicates) {
  fault::FaultPlan plan(12);
  fault::MessageFaultRule rule;
  rule.dup_prob = 1.0;
  plan.add_rule(rule);
  fault::DeterministicInjector injector(plan);

  const StreamOutcome out = run_stream(50, &injector);
  EXPECT_EQ(out.fresh_tags.size(), 50u);
  EXPECT_GT(out.receiver_stats.duplicates_suppressed, 0);
  EXPECT_EQ(out.inflight_left, 0u);
}

TEST(ResilientChannel, SurvivesAckLoss) {
  fault::FaultPlan plan(13);
  fault::MessageFaultRule rule;
  rule.drop_prob = 0.6;
  rule.comm_class = kAckClass;  // only acks are lost
  plan.add_rule(rule);
  fault::DeterministicInjector injector(plan);

  const StreamOutcome out = run_stream(100, &injector);
  EXPECT_EQ(out.fresh_tags.size(), 100u);
  EXPECT_EQ(out.inflight_left, 0u);
  // Lost acks force retransmissions of already-delivered data, which the
  // receiver must recognize as duplicates.
  EXPECT_GT(out.sender_stats.retries, 0);
  EXPECT_GT(out.receiver_stats.duplicates_suppressed, 0);
}

TEST(ResilientChannel, DisabledChannelIsTransparent) {
  const StreamOutcome out = run_stream(10, nullptr);
  EXPECT_EQ(out.fresh_tags.size(), 10u);

  ResilienceConfig off;  // enabled == false
  const sim::Machine m(test_config());
  sim::Engine engine(m, 2, 2);
  auto sender = std::make_unique<ChannelSender>(off, 10);
  auto receiver = std::make_unique<ChannelReceiver>(off);
  ChannelReceiver* r = receiver.get();
  ChannelSender* s = sender.get();
  engine.set_rank(0, std::move(sender));
  engine.set_rank(1, std::move(receiver));
  engine.run();
  EXPECT_EQ(r->fresh_tags.size(), 10u);
  EXPECT_EQ(s->channel.stats().tracked_sends, 0);  // plain sends, no protocol
}

// ----- graceful degradation (subtree re-parenting) ---------------------------

/// Drops every message addressed to `dst` posted before `until`.
struct Blackhole : sim::FaultInjector {
  int dst = -1;
  sim::SimTime until = 0.0;
  sim::FaultDecision on_send(int, int d, std::int64_t, Count, int,
                             sim::SimTime post, std::uint64_t) override {
    sim::FaultDecision decision;
    decision.drop = (d == dst && post < until);
    return decision;
  }
};

/// A broadcast participant: forwards fresh payloads down the tree through
/// its channel and records the receipt time.
class BcastRank : public sim::Rank {
 public:
  BcastRank(const ResilienceConfig& config, const CommTree* tree)
      : config_(config), tree_(tree) {}
  void on_start(sim::Context& ctx) override {
    channel.configure(config_, ctx.rank());
    if (ctx.rank() == tree_->root()) {
      received = true;
      channel.bcast_forward(ctx, *tree_, /*tag=*/77, 4096, 0, nullptr);
    }
  }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    if (!channel.on_message(ctx, msg)) return;
    PSI_CHECK(!received);
    received = true;
    channel.bcast_forward(ctx, *tree_, msg.tag, msg.bytes, 0, msg.data);
  }
  void on_timer(sim::Context& ctx, std::int64_t tag) override {
    PSI_CHECK(channel.on_timer(ctx, tag));
  }
  ResilientChannel channel;
  bool received = false;

 private:
  ResilienceConfig config_;
  const CommTree* tree_;
};

TEST(ResilientChannel, ReroutesAroundStalledForwarder) {
  const int nranks = 15;
  TreeOptions topt;
  topt.scheme = TreeScheme::kBinary;
  std::vector<int> receivers;
  for (int r = 1; r < nranks; ++r) receivers.push_back(r);
  const CommTree tree = CommTree::build(topt, /*root=*/0, receivers, 1);
  // Blackhole the root's first forwarding child long enough for the root to
  // declare it stalled (stall_retries backoffs) and re-parent its subtree.
  const int stalled = tree.children_of(0)[0];
  ASSERT_FALSE(tree.children_of(stalled).empty());
  Blackhole injector;
  injector.dst = stalled;
  injector.until = 10e-3;

  const sim::Machine m(test_config());
  sim::Engine engine(m, nranks, 2);
  engine.set_fault_injector(&injector);
  std::vector<BcastRank*> ranks;
  for (int r = 0; r < nranks; ++r) {
    auto program = std::make_unique<BcastRank>(fast_config(), &tree);
    ranks.push_back(program.get());
    engine.set_rank(r, std::move(program));
  }
  engine.run();

  for (int r = 0; r < nranks; ++r) EXPECT_TRUE(ranks[r]->received) << r;
  EXPECT_GT(ranks[0]->channel.stats().reroutes, 0);  // subtree re-parented
  for (const BcastRank* rank : ranks) EXPECT_EQ(rank->channel.inflight(), 0u);
  // The grandchildren saw the payload twice (direct + via the recovered
  // child) — dedup by tag must have suppressed the late copies somewhere.
  ChannelStats total;
  for (const BcastRank* rank : ranks) total.merge(rank->channel.stats());
  EXPECT_GT(total.duplicates_suppressed, 0);
}

}  // namespace
}  // namespace psi::trees

// ----- end-to-end: faulty PSelInv is bitwise identical -----------------------

namespace psi::pselinv {
namespace {

AnalysisOptions small_options() {
  AnalysisOptions opt;
  opt.ordering.method = OrderingMethod::kNestedDissection;
  opt.ordering.dissection_leaf_size = 8;
  opt.supernodes.max_size = 12;
  return opt;
}

sim::Machine test_machine() {
  sim::MachineConfig config;
  config.cores_per_node = 4;
  config.nodes_per_group = 4;
  return sim::Machine(config);
}

void expect_bitwise_equal(const BlockMatrix& a, const BlockMatrix& b,
                          const BlockStructure& bs) {
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    const auto check = [&](Int row, Int col) {
      const DenseMatrix& lhs = a.block(row, col);
      const DenseMatrix& rhs = b.block(row, col);
      ASSERT_EQ(lhs.rows(), rhs.rows());
      ASSERT_EQ(lhs.cols(), rhs.cols());
      const std::size_t bytes =
          static_cast<std::size_t>(lhs.rows()) *
          static_cast<std::size_t>(lhs.cols()) * sizeof(double);
      EXPECT_EQ(std::memcmp(lhs.data(), rhs.data(), bytes), 0)
          << "block (" << row << ", " << col << ") differs";
    };
    check(k, k);
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      check(i, k);
      check(k, i);
    }
  }
}

/// The PR's acceptance criterion: with the resilient protocol on, a run
/// under >= 1% drops, duplicates, and two 8x stragglers produces
/// selected-inversion entries BITWISE identical to the fault-free resilient
/// run, and the same seed reproduces the same makespan exactly.
TEST(ResilientPSelInv, FaultyRunBitwiseMatchesFaultFree) {
  const GeneratedMatrix gen = fem3d(4, 3, 3, 2, 3);
  const SymbolicAnalysis an = analyze(gen, small_options());
  const Plan plan(an.blocks, dist::ProcessGrid(4, 4),
                  driver::tree_options_for(trees::TreeScheme::kShiftedBinary));

  trees::ResilienceConfig resilience;
  resilience.enabled = true;

  const fault::FaultPlan fault_plan = fault::FaultPlan::scenario(
      /*seed=*/0xfa17, /*rank_count=*/16, /*stragglers=*/2, /*slowdown=*/8.0,
      /*drop_prob=*/0.02, /*dup_prob=*/0.01);
  const sim::Perturbation perturbation = fault_plan.perturbation();

  struct Outcome {
    sim::SimTime makespan;
    std::unique_ptr<BlockMatrix> ainv;
    trees::ChannelStats stats;
  };
  const auto run = [&](bool faulty) {
    SupernodalLU lu = SupernodalLU::factor(an);
    RunOptions options;
    options.resilience = resilience;
    fault::DeterministicInjector injector(fault_plan);  // fresh counter
    if (faulty) {
      options.injector = &injector;
      options.perturbation = &perturbation;
    }
    RunResult result = run_pselinv(plan, test_machine(),
                                   ExecutionMode::kNumeric, &lu, nullptr,
                                   nullptr, options);
    EXPECT_TRUE(result.complete());
    return Outcome{result.makespan, std::move(result.ainv),
                   result.channel_stats};
  };

  const Outcome clean = run(false);
  const Outcome faulty = run(true);
  const Outcome faulty_again = run(true);

  // Same seed, same makespan — exactly.
  EXPECT_EQ(faulty.makespan, faulty_again.makespan);
  // Faults cost time but never change the numbers.
  EXPECT_GT(faulty.makespan, clean.makespan);
  expect_bitwise_equal(*faulty.ainv, *clean.ainv, an.blocks);
  expect_bitwise_equal(*faulty.ainv, *faulty_again.ainv, an.blocks);

  // The run actually exercised the protocol.
  EXPECT_GT(faulty.stats.tracked_sends, 0);
  EXPECT_GT(faulty.stats.retries, 0);
  EXPECT_GT(faulty.stats.duplicates_suppressed, 0);
  EXPECT_GT(clean.stats.tracked_sends, 0);
  EXPECT_EQ(clean.stats.retries, 0);

  // And the resilient result still matches the sequential reference.
  SupernodalLU lu_seq = SupernodalLU::factor(an);
  const BlockMatrix ainv_seq = selected_inversion(lu_seq);
  double max_err = 0.0;
  for (Int k = 0; k < an.blocks.supernode_count(); ++k) {
    max_err = std::max(max_err, max_abs_diff(faulty.ainv->block(k, k),
                                             ainv_seq.block(k, k)));
    for (Int i : an.blocks.struct_of[static_cast<std::size_t>(k)])
      max_err = std::max(max_err, max_abs_diff(faulty.ainv->block(i, k),
                                               ainv_seq.block(i, k)));
  }
  EXPECT_LT(max_err, 1e-10);
}

TEST(ResilientPSelInv, TraceModeMatchesNumericMakespanUnderFaults) {
  const GeneratedMatrix gen = fem3d(3, 3, 2, 2, 2);
  const SymbolicAnalysis an = analyze(gen, small_options());
  const Plan plan(an.blocks, dist::ProcessGrid(2, 2),
                  driver::tree_options_for(trees::TreeScheme::kBinary));
  const fault::FaultPlan fault_plan =
      fault::FaultPlan::scenario(5, 4, 1, 4.0, 0.03, 0.02);
  const sim::Perturbation perturbation = fault_plan.perturbation();

  const auto run = [&](ExecutionMode mode) {
    SupernodalLU lu = SupernodalLU::factor(an);
    RunOptions options;
    options.resilience.enabled = true;
    fault::DeterministicInjector injector(fault_plan);
    options.injector = &injector;
    options.perturbation = &perturbation;
    return run_pselinv(plan, test_machine(), mode,
                       mode == ExecutionMode::kNumeric ? &lu : nullptr,
                       nullptr, nullptr, options)
        .makespan;
  };
  EXPECT_DOUBLE_EQ(run(ExecutionMode::kNumeric), run(ExecutionMode::kTrace));
}

/// Retry timers on the binding chain must keep the critical path's exact
/// makespan coverage: the timer-wait category fills the armed-delay gaps.
TEST(ResilientPSelInv, CriticalPathCoversMakespanWithTimerWaits) {
  const GeneratedMatrix gen = fem3d(3, 3, 2, 2, 2);
  const SymbolicAnalysis an = analyze(gen, small_options());
  const Plan plan(an.blocks, dist::ProcessGrid(2, 2),
                  driver::tree_options_for(trees::TreeScheme::kBinary));
  const fault::FaultPlan fault_plan =
      fault::FaultPlan::scenario(21, 4, 0, 1.0, 0.25, 0.0);  // heavy drops

  RunOptions options;
  options.resilience.enabled = true;
  fault::DeterministicInjector injector(fault_plan);
  options.injector = &injector;
  obs::Recorder recorder;
  const RunResult result = run_pselinv(plan, test_machine(),
                                       ExecutionMode::kTrace, nullptr, nullptr,
                                       &recorder, options);
  ASSERT_GT(result.channel_stats.retries, 0);

  const obs::CriticalPath path =
      obs::extract_critical_path(recorder, kCommClassCount);
  EXPECT_DOUBLE_EQ(path.makespan, result.makespan);
  ASSERT_FALSE(path.segments.empty());
  EXPECT_EQ(path.segments.front().begin, 0.0);
  EXPECT_EQ(path.segments.back().end, path.makespan);
  for (std::size_t i = 1; i < path.segments.size(); ++i)
    EXPECT_EQ(path.segments[i].begin, path.segments[i - 1].end);
  double covered = 0.0;
  for (double seconds : path.category_seconds) covered += seconds;
  EXPECT_NEAR(covered, path.makespan, 1e-12 * std::max(1.0, path.makespan));
  // Retry backoffs on the binding chain surface as timer-wait segments with
  // real width (the arming instant is preserved, not the fire time).
  EXPECT_GT(path.timer_hops, 0);
  EXPECT_GT(path.category_seconds[static_cast<int>(
                obs::PathCategory::kTimerWait)],
            0.0);

  // Injected faults are visible to obs as marks.
  bool saw_fault_mark = false;
  for (const obs::MarkEvent& mark : recorder.marks())
    saw_fault_mark |= std::string_view(mark.name) == "fault-drop";
  EXPECT_TRUE(saw_fault_mark);
}

}  // namespace
}  // namespace psi::pselinv
