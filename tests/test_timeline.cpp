/// Unit tests for the communication-timeline analysis and the simulator's
/// trace recording.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "driver/experiment.hpp"
#include "driver/timeline.hpp"
#include "pselinv/engine.hpp"
#include "sparse/generators.hpp"

namespace psi::driver {
namespace {

const char* class_name(int c) { return pselinv::comm_class_name(c); }

TEST(CommTimeline, BucketsByTimeAndClass) {
  std::vector<sim::TraceEvent> trace{
      {0.1, 0, 1, 0, 100, 0},
      {0.15, 1, 2, 0, 50, 0},
      {0.9, 2, 3, 1, 200, 0},
      {1.0, 3, 0, 1, 10, 0},  // exactly at makespan: clamped to last bucket
  };
  const CommTimeline timeline(trace, /*makespan=*/1.0, /*buckets=*/4,
                              /*comm_classes=*/2);
  EXPECT_EQ(timeline.bytes_at(0, 0), 150);
  EXPECT_EQ(timeline.messages_at(0, 0), 2);
  EXPECT_EQ(timeline.bytes_at(3, 1), 210);
  EXPECT_EQ(timeline.bytes_at(1, 0), 0);
  EXPECT_THROW(timeline.bytes_at(4, 0), Error);
  EXPECT_THROW(timeline.bytes_at(0, 2), Error);
}

TEST(CommTimeline, RenderAndCsv) {
  std::vector<sim::TraceEvent> trace{{0.2, 0, 1, pselinv::kColBcast, 1 << 20, 0}};
  const CommTimeline timeline(trace, 1.0, 8, pselinv::kCommClassCount);
  const std::string render = timeline.render(&class_name);
  EXPECT_NE(render.find("Col-Bcast"), std::string::npos);
  EXPECT_EQ(render.find("Row-Reduce"), std::string::npos);  // silent class skipped
  const std::string csv = timeline.to_csv(&class_name);
  EXPECT_NE(csv.find("bucket_start_s"), std::string::npos);
  EXPECT_NE(csv.find("1048576"), std::string::npos);
}

TEST(CommTimeline, TraceFromPSelInvRunConservesBytes) {
  const GeneratedMatrix gen = fem3d(3, 3, 2, 2, 7);
  const SymbolicAnalysis an = analyze(gen, default_analysis_options());
  const pselinv::Plan plan(an.blocks, dist::ProcessGrid(3, 3),
                           tree_options_for(trees::TreeScheme::kShiftedBinary));
  const sim::Machine machine(edison_config());
  std::vector<sim::TraceEvent> trace;
  const pselinv::RunResult run = run_pselinv(
      plan, machine, pselinv::ExecutionMode::kTrace, nullptr, &trace);
  ASSERT_FALSE(trace.empty());

  // The trace must account for exactly the bytes the per-rank counters saw.
  Count trace_bytes = 0;
  for (const auto& event : trace) {
    trace_bytes += event.bytes;
    EXPECT_GE(event.time, 0.0);
    EXPECT_LE(event.time, run.makespan);
    EXPECT_NE(event.src, event.dst);  // self-sends are not traced
  }
  Count counter_bytes = 0;
  for (const auto& stats : run.rank_stats)
    for (const auto& c : stats.per_class) counter_bytes += c.bytes_received;
  EXPECT_EQ(trace_bytes, counter_bytes);

  const CommTimeline timeline(trace, run.makespan, 16, pselinv::kCommClassCount);
  Count bucket_bytes = 0;
  for (std::size_t b = 0; b < timeline.buckets(); ++b)
    for (int c = 0; c < timeline.comm_classes(); ++c)
      bucket_bytes += timeline.bytes_at(b, c);
  EXPECT_EQ(bucket_bytes, trace_bytes);
}

TEST(CommTimeline, TraceLimitRespected) {
  sim::MachineConfig config;
  const sim::Machine machine(config);
  // Use the engine directly with a tiny trace limit.
  class Chatter : public sim::Rank {
   public:
    void on_start(sim::Context& ctx) override {
      if (ctx.rank() == 0)
        for (int i = 0; i < 50; ++i) ctx.send(1, i, 8, 0);
    }
    void on_message(sim::Context&, const sim::Message&) override {}
  };
  sim::Engine engine(machine, 2, 1);
  engine.enable_trace(/*max_events=*/10);
  engine.set_rank(0, std::make_unique<Chatter>());
  engine.set_rank(1, std::make_unique<Chatter>());
  engine.run();
  EXPECT_EQ(engine.trace().size(), 10u);
}

}  // namespace
}  // namespace psi::driver
