/// Cross-module integration tests: the full pipeline from matrix input to
/// verified distributed selected inversion, plan reuse across shifted
/// matrices (the PEXSI pole-loop pattern), system-level determinism, and the
/// LU reference model across schemes and grid shapes.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "driver/experiment.hpp"
#include "numeric/selinv.hpp"
#include "pselinv/engine.hpp"
#include "pselinv/lu_model.hpp"
#include "pselinv/volume_analysis.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"

namespace psi {
namespace {

using pselinv::ExecutionMode;
using pselinv::Plan;
using trees::TreeScheme;

sim::Machine small_machine() {
  sim::MachineConfig config;
  config.cores_per_node = 4;
  return sim::Machine(config);
}

TEST(Integration, MatrixMarketToDistributedInverse) {
  // A user workflow: write a matrix to Matrix Market, read it back, run the
  // whole pipeline, verify against the dense inverse.
  const GeneratedMatrix gen = fem3d(3, 3, 2, 2, 21);
  std::stringstream mm;
  write_matrix_market(mm, gen.matrix);
  const SparseMatrix loaded = read_matrix_market(mm);

  AnalysisOptions opt;
  opt.ordering.method = OrderingMethod::kMinDegree;  // no coords after I/O
  opt.supernodes.max_size = 12;
  const SymbolicAnalysis an = analyze(loaded, opt);
  SupernodalLU lu = SupernodalLU::factor(an);
  const Plan plan(an.blocks, dist::ProcessGrid(3, 3),
                  driver::tree_options_for(TreeScheme::kShiftedBinary));
  const auto run = run_pselinv(plan, small_machine(), ExecutionMode::kNumeric, &lu);

  DenseMatrix dense(an.matrix.n(), an.matrix.n());
  for (Int j = 0; j < an.matrix.n(); ++j)
    for (Int p = an.matrix.pattern.col_ptr[j]; p < an.matrix.pattern.col_ptr[j + 1];
         ++p)
      dense(an.matrix.pattern.row_idx[p], j) =
          an.matrix.values[static_cast<std::size_t>(p)];
  const DenseMatrix inv = inverse(dense);
  for (Int k = 0; k < an.blocks.supernode_count(); ++k) {
    const DenseMatrix blk = run.ainv->block(k, k);
    const Int c0 = an.blocks.part.first_col(k);
    for (Int c = 0; c < blk.cols(); ++c)
      for (Int r = 0; r < blk.rows(); ++r)
        EXPECT_NEAR(blk(r, c), inv(c0 + r, c0 + c), 1e-9);
  }
}

TEST(Integration, PlanReuseAcrossShiftedMatrices) {
  // The PEXSI pole-loop pattern: one symbolic analysis + one plan serve many
  // numeric factorizations with different diagonal shifts.
  const GeneratedMatrix gen = dg2d(3, 3, 3, 31);
  AnalysisOptions opt;
  opt.ordering.method = OrderingMethod::kGeometricDissection;
  opt.supernodes.max_size = 12;
  const SymbolicAnalysis an = analyze(gen, opt);
  const Plan plan(an.blocks, dist::ProcessGrid(2, 3),
                  driver::tree_options_for(TreeScheme::kBinary));

  for (double shift : {0.0, 1.0, 5.0}) {
    SymbolicAnalysis shifted = an;
    for (Int j = 0; j < shifted.matrix.n(); ++j)
      for (Int p = shifted.matrix.pattern.col_ptr[j];
           p < shifted.matrix.pattern.col_ptr[j + 1]; ++p)
        if (shifted.matrix.pattern.row_idx[p] == j)
          shifted.matrix.values[static_cast<std::size_t>(p)] += shift;

    SupernodalLU lu_dist = SupernodalLU::factor(shifted);
    SupernodalLU lu_seq = SupernodalLU::factor(shifted);
    const BlockMatrix reference = selected_inversion(lu_seq);
    const auto run =
        run_pselinv(plan, small_machine(), ExecutionMode::kNumeric, &lu_dist);
    double err = 0.0;
    for (Int k = 0; k < an.blocks.supernode_count(); ++k)
      err = std::max(err, max_abs_diff(run.ainv->block(k, k), reference.block(k, k)));
    EXPECT_LT(err, 1e-10) << "shift " << shift;
  }
}

TEST(Integration, TraceRunsAreDeterministic) {
  const GeneratedMatrix gen = fem3d(4, 3, 3, 2, 3);
  const SymbolicAnalysis an = analyze(gen, driver::default_analysis_options());
  const Plan plan(an.blocks, dist::ProcessGrid(4, 4),
                  driver::tree_options_for(TreeScheme::kShiftedBinary));
  const sim::Machine machine(driver::edison_config(0.3, 17));
  const auto a = run_pselinv(plan, machine, ExecutionMode::kTrace);
  const auto b = run_pselinv(plan, machine, ExecutionMode::kTrace);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
}

TEST(Integration, JitterSeedChangesMakespan) {
  const GeneratedMatrix gen = fem3d(4, 4, 3, 2, 3);
  const SymbolicAnalysis an = analyze(gen, driver::default_analysis_options());
  const Plan plan(an.blocks, dist::ProcessGrid(6, 6),
                  driver::tree_options_for(TreeScheme::kFlat));
  const auto a = run_pselinv(plan, sim::Machine(driver::edison_config(0.4, 1)),
                             ExecutionMode::kTrace);
  const auto b = run_pselinv(plan, sim::Machine(driver::edison_config(0.4, 2)),
                             ExecutionMode::kTrace);
  EXPECT_NE(a.makespan, b.makespan);  // different placement, different time
  EXPECT_EQ(a.events, b.events);      // same protocol either way
}

TEST(Integration, LuModelAcrossSchemesAndGrids) {
  const GeneratedMatrix gen = fem3d(4, 4, 3, 1, 9);
  const SymbolicAnalysis an = analyze(gen, driver::default_analysis_options());
  for (TreeScheme scheme : {TreeScheme::kFlat, TreeScheme::kBinary,
                            TreeScheme::kShiftedBinary}) {
    for (auto [pr, pc] : {std::pair{1, 1}, {2, 3}, {5, 5}, {3, 7}}) {
      const auto run = pselinv::run_distributed_lu(
          an.blocks, dist::ProcessGrid(pr, pc),
          driver::tree_options_for(scheme), small_machine());
      EXPECT_TRUE(run.complete())
          << trees::scheme_name(scheme) << " on " << pr << "x" << pc;
      EXPECT_GT(run.makespan, 0.0);
    }
  }
}

TEST(Integration, WideAndTallGridsAgreeNumerically) {
  // The same problem on very different grid aspect ratios must give the same
  // inverse (communication pattern changes completely; results must not).
  const GeneratedMatrix gen = laplacian2d(7, 7, 11);
  AnalysisOptions opt;
  opt.ordering.method = OrderingMethod::kNestedDissection;
  opt.supernodes.max_size = 8;
  const SymbolicAnalysis an = analyze(gen, opt);

  std::unique_ptr<BlockMatrix> previous;
  for (auto [pr, pc] : {std::pair{1, 8}, {8, 1}, {4, 2}}) {
    SupernodalLU lu = SupernodalLU::factor(an);
    const Plan plan(an.blocks, dist::ProcessGrid(pr, pc),
                    driver::tree_options_for(TreeScheme::kShiftedBinary));
    auto run = run_pselinv(plan, small_machine(), ExecutionMode::kNumeric, &lu);
    if (previous) {
      double err = 0.0;
      for (Int k = 0; k < an.blocks.supernode_count(); ++k)
        err = std::max(err,
                       max_abs_diff(run.ainv->block(k, k), previous->block(k, k)));
      EXPECT_LT(err, 1e-12) << pr << "x" << pc;
    }
    previous = std::move(run.ainv);
  }
}

TEST(Integration, HybridThresholdAblation) {
  // Hybrid must equal Flat when every collective is below the threshold and
  // equal ShiftedBinary when above it (volume-wise).
  const GeneratedMatrix gen = fem3d(5, 5, 5, 2, 13);
  AnalysisOptions opt = driver::default_analysis_options();
  opt.supernodes.max_size = 24;
  const SymbolicAnalysis an = analyze(gen, opt);

  trees::TreeOptions hybrid_all_flat = driver::tree_options_for(TreeScheme::kHybrid);
  hybrid_all_flat.hybrid_flat_threshold = 1 << 20;
  const Plan plan_hybrid(an.blocks, dist::ProcessGrid(6, 6), hybrid_all_flat);
  const Plan plan_flat(an.blocks, dist::ProcessGrid(6, 6),
                       driver::tree_options_for(TreeScheme::kFlat));
  const auto vol_h = pselinv::analyze_volume(plan_hybrid);
  const auto vol_f = pselinv::analyze_volume(plan_flat);
  EXPECT_EQ(vol_h.of(pselinv::kColBcast).bytes_sent(),
            vol_f.of(pselinv::kColBcast).bytes_sent());

  trees::TreeOptions hybrid_all_tree = driver::tree_options_for(TreeScheme::kHybrid);
  hybrid_all_tree.hybrid_flat_threshold = 0;
  const Plan plan_hybrid2(an.blocks, dist::ProcessGrid(6, 6), hybrid_all_tree);
  const Plan plan_shift(an.blocks, dist::ProcessGrid(6, 6),
                        driver::tree_options_for(TreeScheme::kShiftedBinary));
  const auto vol_h2 = pselinv::analyze_volume(plan_hybrid2);
  const auto vol_s = pselinv::analyze_volume(plan_shift);
  EXPECT_EQ(vol_h2.of(pselinv::kColBcast).bytes_sent(),
            vol_s.of(pselinv::kColBcast).bytes_sent());
}

}  // namespace
}  // namespace psi
