/// Randomized property sweeps (parameterized over seeds): end-to-end
/// invariants that must hold for ANY structurally symmetric input —
/// factorization identity, selected-inversion agreement with the dense
/// inverse, tree/spanning invariants over random participant subsets, and
/// volume conservation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <set>

#include "check/schedule.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "driver/experiment.hpp"
#include "numeric/selinv.hpp"
#include "pselinv/engine.hpp"
#include "pselinv/volume_analysis.hpp"
#include "sparse/generators.hpp"
#include "trees/volume.hpp"

namespace psi {
namespace {

using pselinv::ExecutionMode;
using pselinv::Plan;
using trees::TreeScheme;

class RandomMatrixSweep : public ::testing::TestWithParam<std::uint64_t> {};

/// For a random connected symmetric matrix: analyze with a seed-dependent
/// ordering/supernode configuration, factor, invert, verify against dense.
TEST_P(RandomMatrixSweep, SelectedInversionMatchesDenseInverse) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const Int n = 30 + static_cast<Int>(rng.uniform(50));
  const double degree = 3.0 + rng.uniform_double(0.0, 4.0);
  const ValueKind values =
      rng.uniform(2) ? ValueKind::kSymmetric : ValueKind::kUnsymmetric;
  const GeneratedMatrix gen = random_symmetric(n, degree, seed, values);

  AnalysisOptions opt;
  const OrderingMethod methods[] = {OrderingMethod::kNatural, OrderingMethod::kRcm,
                                    OrderingMethod::kMinDegree,
                                    OrderingMethod::kNestedDissection};
  opt.ordering.method = methods[rng.uniform(4)];
  opt.ordering.dissection_leaf_size = 4 + static_cast<Int>(rng.uniform(16));
  opt.supernodes.max_size = 4 + static_cast<Int>(rng.uniform(20));
  opt.supernodes.relax_small = static_cast<Int>(rng.uniform(8));
  const SymbolicAnalysis an = analyze(gen, opt);
  an.blocks.validate();

  SupernodalLU lu = SupernodalLU::factor(an);
  const BlockMatrix ainv = selected_inversion(lu);

  DenseMatrix dense(n, n);
  for (Int j = 0; j < n; ++j)
    for (Int p = an.matrix.pattern.col_ptr[j]; p < an.matrix.pattern.col_ptr[j + 1];
         ++p)
      dense(an.matrix.pattern.row_idx[p], j) =
          an.matrix.values[static_cast<std::size_t>(p)];
  const DenseMatrix full_inv = inverse(dense);

  double max_err = 0.0;
  const BlockStructure& bs = an.blocks;
  auto check = [&](Int i, Int k) {
    const DenseMatrix blk = ainv.block(i, k);
    const Int r0 = bs.part.first_col(i), c0 = bs.part.first_col(k);
    for (Int c = 0; c < blk.cols(); ++c)
      for (Int r = 0; r < blk.rows(); ++r)
        max_err = std::max(max_err, std::fabs(blk(r, c) - full_inv(r0 + r, c0 + c)));
  };
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    check(k, k);
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      check(i, k);
      check(k, i);
    }
  }
  EXPECT_LT(max_err, 1e-8) << "seed " << seed << " n " << n;
}

/// The distributed engine must agree with the sequential one on random
/// configurations (grid shape, scheme, value kind all seed-derived).
TEST_P(RandomMatrixSweep, DistributedMatchesSequential) {
  const std::uint64_t seed = GetParam() ^ 0xD157ULL;
  Rng rng(seed);
  const Int n = 30 + static_cast<Int>(rng.uniform(40));
  const ValueKind values =
      rng.uniform(2) ? ValueKind::kSymmetric : ValueKind::kUnsymmetric;
  const GeneratedMatrix gen = random_symmetric(n, 4.0, seed, values);

  AnalysisOptions opt;
  opt.ordering.method = OrderingMethod::kMinDegree;
  opt.supernodes.max_size = 4 + static_cast<Int>(rng.uniform(12));
  const SymbolicAnalysis an = analyze(gen, opt);

  SupernodalLU lu_seq = SupernodalLU::factor(an);
  const BlockMatrix reference = selected_inversion(lu_seq);

  const int pr = 1 + static_cast<int>(rng.uniform(5));
  const int pc = 1 + static_cast<int>(rng.uniform(5));
  const TreeScheme schemes[] = {TreeScheme::kFlat, TreeScheme::kBinary,
                                TreeScheme::kShiftedBinary, TreeScheme::kBinomial,
                                TreeScheme::kShiftedBinomial};
  const TreeScheme scheme = schemes[rng.uniform(5)];
  const auto symmetry = values == ValueKind::kSymmetric
                            ? pselinv::ValueSymmetry::kSymmetric
                            : pselinv::ValueSymmetry::kUnsymmetric;
  const Plan plan(an.blocks, dist::ProcessGrid(pr, pc),
                  driver::tree_options_for(scheme, seed), symmetry);
  SupernodalLU lu_dist = SupernodalLU::factor(an);
  const sim::Machine machine(driver::edison_config(0.2, seed));
  const auto run =
      run_pselinv(plan, machine, ExecutionMode::kNumeric, &lu_dist);

  double max_err = 0.0;
  const BlockStructure& bs = an.blocks;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    max_err = std::max(max_err,
                       max_abs_diff(run.ainv->block(k, k), reference.block(k, k)));
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      max_err = std::max(max_err,
                         max_abs_diff(run.ainv->block(i, k), reference.block(i, k)));
      max_err = std::max(max_err,
                         max_abs_diff(run.ainv->block(k, i), reference.block(k, i)));
    }
  }
  EXPECT_LT(max_err, 1e-9) << "seed " << seed << " grid " << pr << "x" << pc
                           << " scheme " << trees::scheme_name(scheme);
}

/// Random participant subsets: every scheme must yield a spanning tree whose
/// broadcast conserves bytes.
TEST_P(RandomMatrixSweep, RandomSubsetTreesSpanAndConserve) {
  const std::uint64_t seed = GetParam() ^ 0x7EEE5ULL;
  Rng rng(seed);
  const int universe = 8 + static_cast<int>(rng.uniform(120));
  const int root = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(universe)));
  std::vector<int> receivers;
  for (int r = 0; r < universe; ++r)
    if (r != root && rng.uniform(3) != 0) receivers.push_back(r);

  const TreeScheme schemes[] = {TreeScheme::kFlat, TreeScheme::kBinary,
                                TreeScheme::kShiftedBinary, TreeScheme::kRandomPerm,
                                TreeScheme::kHybrid, TreeScheme::kBinomial,
                                TreeScheme::kShiftedBinomial};
  for (TreeScheme scheme : schemes) {
    const trees::CommTree tree = trees::CommTree::build(
        driver::tree_options_for(scheme, seed), root, receivers, seed);
    // Spanning: every participant reachable exactly once.
    std::set<int> reached{root};
    std::vector<int> frontier{root};
    while (!frontier.empty()) {
      const int v = frontier.back();
      frontier.pop_back();
      for (int c : tree.children_of(v)) {
        EXPECT_TRUE(reached.insert(c).second);
        frontier.push_back(c);
      }
    }
    EXPECT_EQ(reached.size(), receivers.size() + 1) << trees::scheme_name(scheme);

    trees::VolumeAccumulator acc(universe);
    acc.add_bcast(tree, 1000);
    Count sent = 0, received = 0;
    for (Count b : acc.bytes_sent()) sent += b;
    for (Count b : acc.bytes_received()) received += b;
    EXPECT_EQ(sent, static_cast<Count>(receivers.size()) * 1000);
    EXPECT_EQ(received, sent);
  }
}

/// Total per-class traffic must be invariant under the tree scheme (trees
/// move the same data differently) and exactly double-counted between the
/// send and receive sides.
TEST_P(RandomMatrixSweep, PlanTrafficInvariants) {
  const std::uint64_t seed = GetParam() ^ 0x70FFULL;
  Rng rng(seed);
  const GeneratedMatrix gen =
      fem3d(2 + static_cast<Int>(rng.uniform(3)), 3, 3, 2, seed);
  AnalysisOptions opt;
  opt.supernodes.max_size = 6 + static_cast<Int>(rng.uniform(10));
  const SymbolicAnalysis an = analyze(gen, opt);
  const int pr = 2 + static_cast<int>(rng.uniform(4));
  const int pc = 2 + static_cast<int>(rng.uniform(4));

  std::vector<Count> totals;
  for (TreeScheme scheme :
       {TreeScheme::kFlat, TreeScheme::kShiftedBinary, TreeScheme::kBinomial}) {
    const Plan plan(an.blocks, dist::ProcessGrid(pr, pc),
                    driver::tree_options_for(scheme, seed));
    const auto report = pselinv::analyze_volume(plan);
    Count sent = 0, received = 0;
    for (int c = 0; c < pselinv::kCommClassCount; ++c) {
      for (Count b : report.of(c).bytes_sent()) sent += b;
      for (Count b : report.of(c).bytes_received()) received += b;
    }
    EXPECT_EQ(sent, received) << trees::scheme_name(scheme);
    totals.push_back(sent);
  }
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(totals[1], totals[2]);
}

/// Resilient mode must be schedule-independent down to the last bit: the
/// same problem run under three different adversarial schedules (seeded
/// same-timestamp reordering plus bounded network jitter) produces bitwise
/// identical selected inverses, which also agree with the fast-mode run on
/// the native schedule to tight tolerance (fast mode folds in arrival
/// order, so bitwise equality against it is not obtainable by design).
TEST_P(RandomMatrixSweep, ResilientBitwiseStableUnderAdversarialSchedules) {
  const std::uint64_t seed = GetParam() ^ 0x5CED0ULL;
  Rng rng(seed);
  const Int n = 24 + static_cast<Int>(rng.uniform(30));
  const GeneratedMatrix gen = random_symmetric(n, 3.5, seed);

  AnalysisOptions opt;
  opt.ordering.method = OrderingMethod::kMinDegree;
  opt.supernodes.max_size = 4 + static_cast<Int>(rng.uniform(10));
  const SymbolicAnalysis an = analyze(gen, opt);

  const int pr = 2 + static_cast<int>(rng.uniform(2));
  const int pc = 2 + static_cast<int>(rng.uniform(2));
  const TreeScheme schemes[] = {TreeScheme::kFlat, TreeScheme::kShiftedBinary,
                                TreeScheme::kBinomial};
  const TreeScheme scheme = schemes[rng.uniform(3)];
  const Plan plan(an.blocks, dist::ProcessGrid(pr, pc),
                  driver::tree_options_for(scheme, seed));
  const sim::Machine machine(driver::edison_config(0.2, seed));

  SupernodalLU lu_fast = SupernodalLU::factor(an);
  const auto fast = run_pselinv(plan, machine, ExecutionMode::kNumeric,
                                &lu_fast);
  ASSERT_TRUE(fast.complete());

  std::vector<std::unique_ptr<BlockMatrix>> resilient;
  for (int leg = 0; leg < 3; ++leg) {
    SupernodalLU lu = SupernodalLU::factor(an);
    pselinv::RunOptions options;
    options.resilience.enabled = true;
    std::uint64_t sched_state =
        hash_combine(seed, static_cast<std::uint64_t>(leg));
    check::AdversarialSchedule schedule(splitmix64(sched_state) | 1,
                                        /*delay_bound=*/100e-6);
    options.schedule = &schedule;
    auto run = run_pselinv(plan, machine, ExecutionMode::kNumeric, &lu,
                           nullptr, nullptr, options);
    ASSERT_TRUE(run.complete());
    EXPECT_EQ(run.channel_inflight, 0u);
    EXPECT_EQ(run.leaked_timers, 0u);
    resilient.push_back(std::move(run.ainv));
  }

  const BlockStructure& bs = an.blocks;
  double max_err = 0.0;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    const auto check_block = [&](Int row, Int col) {
      const DenseMatrix first = resilient[0]->block(row, col);
      for (std::size_t leg = 1; leg < resilient.size(); ++leg) {
        const DenseMatrix other = resilient[leg]->block(row, col);
        ASSERT_EQ(first.rows(), other.rows());
        ASSERT_EQ(first.cols(), other.cols());
        const std::size_t bytes = static_cast<std::size_t>(first.rows()) *
                                  static_cast<std::size_t>(first.cols()) *
                                  sizeof(double);
        EXPECT_EQ(std::memcmp(first.data(), other.data(), bytes), 0)
            << "block (" << row << ", " << col << ") differs between "
            << "schedule legs 0 and " << leg << " (seed " << seed << ", "
            << trees::scheme_name(scheme) << ")";
      }
      max_err =
          std::max(max_err, max_abs_diff(first, fast.ainv->block(row, col)));
    };
    check_block(k, k);
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      check_block(i, k);
      check_block(k, i);
    }
  }
  EXPECT_LT(max_err, 1e-10) << "resilient vs fast, seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMatrixSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace psi
