/// Golden-trace differential suite for the partitioned engine: every
/// observable output of a partitioned run — makespan, event trace, the full
/// obs record stream with its causal links, per-rank stats, fault draws,
/// and numeric selected-inversion digests — must be BITWISE identical to
/// the sequential engine for any partition count and seed (DESIGN.md §14).
/// Also the regression tests for timer set/cancel straddling a two-tier
/// refill boundary and the per-partition leaked_timers() accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <vector>

#include "check/schedule.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "driver/experiment.hpp"
#include "driver/paper_matrices.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "numeric/supernodal_lu.hpp"
#include "obs/recorder.hpp"
#include "pselinv/engine.hpp"
#include "sim/engine.hpp"

namespace psi::sim {
namespace {

MachineConfig storm_config() {
  // Small nodes/groups so a couple of dozen ranks span all three latency
  // tiers; any contiguous split then has a positive cross-partition
  // latency, i.e. a positive lookahead.
  MachineConfig config;
  config.cores_per_node = 4;
  config.nodes_per_group = 2;
  config.flop_rate = 1e9;
  config.msg_overhead = 1e-6;
  return config;
}

// ----- full bitwise capture of a run's observable output --------------------

struct Capture {
  SimTime makespan = 0.0;
  Count events = 0;
  int partitions = 0;
  std::vector<TraceEvent> trace;
  std::vector<obs::EventRecord> records;
  std::vector<obs::SpanEvent> spans;
  std::vector<obs::MarkEvent> marks;
  std::vector<RankStats> stats;
  fault::DeterministicInjector::Stats fault_stats;
};

/// EXPECT_EQ on doubles is bitwise-exact (no tolerance) — exactly the
/// contract under test.
void expect_identical(const Capture& a, const Capture& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);

  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].time, b.trace[i].time) << "trace[" << i << "]";
    EXPECT_EQ(a.trace[i].src, b.trace[i].src) << "trace[" << i << "]";
    EXPECT_EQ(a.trace[i].dst, b.trace[i].dst) << "trace[" << i << "]";
    EXPECT_EQ(a.trace[i].comm_class, b.trace[i].comm_class);
    EXPECT_EQ(a.trace[i].bytes, b.trace[i].bytes);
    EXPECT_EQ(a.trace[i].tag, b.trace[i].tag);
  }

  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const obs::EventRecord& x = a.records[i];
    const obs::EventRecord& y = b.records[i];
    EXPECT_EQ(x.post, y.post) << "record[" << i << "]";
    EXPECT_EQ(x.xfer_start, y.xfer_start) << "record[" << i << "]";
    EXPECT_EQ(x.xfer_end, y.xfer_end) << "record[" << i << "]";
    EXPECT_EQ(x.arrival, y.arrival) << "record[" << i << "]";
    EXPECT_EQ(x.ready, y.ready) << "record[" << i << "]";
    EXPECT_EQ(x.start, y.start) << "record[" << i << "]";
    EXPECT_EQ(x.end, y.end) << "record[" << i << "]";
    EXPECT_EQ(x.compute, y.compute) << "record[" << i << "]";
    EXPECT_EQ(x.emitter, y.emitter) << "record[" << i << "]";
    EXPECT_EQ(x.prev_on_rank, y.prev_on_rank) << "record[" << i << "]";
    EXPECT_EQ(x.tag, y.tag) << "record[" << i << "]";
    EXPECT_EQ(x.bytes, y.bytes) << "record[" << i << "]";
    EXPECT_EQ(x.src, y.src) << "record[" << i << "]";
    EXPECT_EQ(x.dst, y.dst) << "record[" << i << "]";
    EXPECT_EQ(x.comm_class, y.comm_class) << "record[" << i << "]";
    EXPECT_EQ(x.handled, y.handled) << "record[" << i << "]";
  }

  ASSERT_EQ(a.spans.size(), b.spans.size());
  for (std::size_t i = 0; i < a.spans.size(); ++i) {
    EXPECT_EQ(a.spans[i].rank, b.spans[i].rank) << "span[" << i << "]";
    EXPECT_EQ(std::string_view(a.spans[i].name),
              std::string_view(b.spans[i].name));
    EXPECT_EQ(a.spans[i].id, b.spans[i].id) << "span[" << i << "]";
    EXPECT_EQ(a.spans[i].begin, b.spans[i].begin) << "span[" << i << "]";
    EXPECT_EQ(a.spans[i].end, b.spans[i].end) << "span[" << i << "]";
  }
  ASSERT_EQ(a.marks.size(), b.marks.size());
  for (std::size_t i = 0; i < a.marks.size(); ++i) {
    EXPECT_EQ(a.marks[i].rank, b.marks[i].rank) << "mark[" << i << "]";
    EXPECT_EQ(std::string_view(a.marks[i].name),
              std::string_view(b.marks[i].name));
    EXPECT_EQ(a.marks[i].id, b.marks[i].id) << "mark[" << i << "]";
    EXPECT_EQ(a.marks[i].time, b.marks[i].time) << "mark[" << i << "]";
  }

  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (std::size_t r = 0; r < a.stats.size(); ++r) {
    EXPECT_EQ(a.stats[r].compute_seconds, b.stats[r].compute_seconds);
    EXPECT_EQ(a.stats[r].overhead_seconds, b.stats[r].overhead_seconds);
    EXPECT_EQ(a.stats[r].finish_time, b.stats[r].finish_time);
    EXPECT_EQ(a.stats[r].events_handled, b.stats[r].events_handled);
    ASSERT_EQ(a.stats[r].per_class.size(), b.stats[r].per_class.size());
    for (std::size_t c = 0; c < a.stats[r].per_class.size(); ++c) {
      EXPECT_EQ(a.stats[r].per_class[c].bytes_sent,
                b.stats[r].per_class[c].bytes_sent);
      EXPECT_EQ(a.stats[r].per_class[c].bytes_received,
                b.stats[r].per_class[c].bytes_received);
      EXPECT_EQ(a.stats[r].per_class[c].messages_sent,
                b.stats[r].per_class[c].messages_sent);
      EXPECT_EQ(a.stats[r].per_class[c].messages_received,
                b.stats[r].per_class[c].messages_received);
    }
  }

  EXPECT_EQ(a.fault_stats.consulted, b.fault_stats.consulted);
  EXPECT_EQ(a.fault_stats.dropped, b.fault_stats.dropped);
  EXPECT_EQ(a.fault_stats.duplicated, b.fault_stats.duplicated);
  EXPECT_EQ(a.fault_stats.delayed, b.fault_stats.delayed);
  EXPECT_EQ(a.fault_stats.dropped_bytes, b.fault_stats.dropped_bytes);
  EXPECT_EQ(a.fault_stats.duplicated_bytes, b.fault_stats.duplicated_bytes);
}

// ----- synthetic storm program ----------------------------------------------

/// Deterministic hash-driven traffic generator: every rank fans out seeded
/// sends at t = 0 (with a self-send and an occasional timer mixed in) and
/// forwards each received message a bounded number of hops to a hashed next
/// destination. Exercises all three latency tiers, NIC contention,
/// same-timestamp ties, self-sends, and timers in one program.
class StormRank : public Rank {
 public:
  StormRank(int rank_count, int fanout, std::uint64_t seed)
      : ranks_(rank_count), fanout_(fanout), seed_(seed) {}

  void on_start(Context& ctx) override {
    for (int i = 0; i < fanout_; ++i) {
      const int dst = peer(ctx.rank(), i, 0);
      const Count bytes = 128 + static_cast<Count>(
                                    mix(ctx.rank(), i, 17) % 4096);
      ctx.send(dst, /*tag=*/3, bytes, static_cast<int>(mix(i, 3, 5) % 2));
    }
    ctx.send(ctx.rank(), /*tag=*/1, 64, 0);  // local hand-off leg
    if (ctx.rank() % 3 == 0) ctx.set_timer(1.5e-4, /*tag=*/-7);
  }

  void on_message(Context& ctx, const Message& msg) override {
    ctx.compute(2.0e-8 * static_cast<double>(1 + msg.bytes % 7));
    if (msg.tag > 0) {
      const int dst = peer(ctx.rank(), msg.src, msg.bytes);
      ctx.send(dst, msg.tag - 1, msg.bytes / 2 + 64, msg.comm_class);
    }
  }

  void on_timer(Context& ctx, std::int64_t tag) override {
    (void)tag;
    ctx.compute(1.0e-8);
  }

 private:
  std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) const {
    std::uint64_t state = hash_combine(hash_combine(seed_ ^ a, b), c);
    return splitmix64(state);
  }
  int peer(int self, std::uint64_t a, std::uint64_t b) const {
    const int dst =
        static_cast<int>(mix(static_cast<std::uint64_t>(self), a, b) %
                         static_cast<std::uint64_t>(ranks_));
    return dst == self ? (dst + 1) % ranks_ : dst;
  }

  int ranks_;
  int fanout_;
  std::uint64_t seed_;
};

fault::FaultPlan storm_fault_plan(std::uint64_t seed) {
  fault::FaultPlan plan(seed);
  fault::MessageFaultRule rule;
  rule.drop_prob = 0.05;
  rule.dup_prob = 0.05;
  rule.dup_spacing = 1.0e-6;
  rule.delay_prob = 0.10;
  rule.delay = 2.0e-6;
  plan.add_rule(rule);
  return plan;
}

struct StormOptions {
  int ranks = 24;
  int partitions = 1;
  std::uint64_t seed = 1;
  bool faulted = false;
  std::uint64_t schedule_seed = 0;  ///< 0: engine-native tie-break
};

Capture run_storm(const StormOptions& opt) {
  const Machine machine(storm_config());
  Engine engine(machine, opt.ranks, 2);
  engine.set_partitions(opt.partitions);
  engine.enable_trace();
  obs::Recorder recorder;
  engine.set_sink(&recorder);
  const fault::FaultPlan plan = storm_fault_plan(opt.seed);
  fault::DeterministicInjector injector(plan);
  if (opt.faulted) engine.set_fault_injector(&injector);
  check::AdversarialSchedule schedule(opt.schedule_seed, 1.0e-6);
  if (opt.schedule_seed != 0) engine.set_schedule_policy(&schedule);
  for (int r = 0; r < opt.ranks; ++r)
    engine.set_rank(r, std::make_unique<StormRank>(opt.ranks, 6, opt.seed));

  Capture capture;
  capture.makespan = engine.run();
  capture.events = engine.events_processed();
  capture.partitions = engine.partitions();
  capture.trace = engine.trace();
  capture.records = recorder.events();
  capture.spans = recorder.spans();
  capture.marks = recorder.marks();
  for (int r = 0; r < opt.ranks; ++r) capture.stats.push_back(engine.stats(r));
  capture.fault_stats = injector.stats();
  EXPECT_EQ(engine.leaked_timers(), 0u);
  for (int p = 0; p < engine.partitions(); ++p)
    EXPECT_EQ(engine.leaked_timers(p), 0u) << "partition " << p;
  return capture;
}

TEST(PartitionedStorm, BitwiseIdenticalAcrossPartitionCounts) {
  for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{77}}) {
    StormOptions opt;
    opt.seed = seed;
    const Capture sequential = run_storm(opt);
    ASSERT_GT(sequential.trace.size(), 100u);
    for (const int partitions : {2, 4, 8}) {
      opt.partitions = partitions;
      const Capture partitioned = run_storm(opt);
      EXPECT_EQ(partitioned.partitions, partitions) << "seed " << seed;
      expect_identical(sequential, partitioned);
    }
  }
}

TEST(PartitionedStorm, FaultDrawsAreCounterStableAcrossPartitions) {
  for (const std::uint64_t seed : {std::uint64_t{9}, std::uint64_t{123}}) {
    StormOptions opt;
    opt.seed = seed;
    opt.faulted = true;
    const Capture sequential = run_storm(opt);
    // The plan actually fired (otherwise the leg tests nothing).
    EXPECT_GT(sequential.fault_stats.dropped, 0u);
    EXPECT_GT(sequential.fault_stats.duplicated, 0u);
    EXPECT_GT(sequential.fault_stats.delayed, 0u);
    for (const int partitions : {2, 4}) {
      opt.partitions = partitions;
      expect_identical(sequential, run_storm(opt));
    }
  }
}

TEST(PartitionedStorm, AdversarialScheduleIsPartitionInvariant) {
  StormOptions opt;
  opt.schedule_seed = 0xabcdef;
  const Capture sequential = run_storm(opt);
  for (const int partitions : {2, 4, 8}) {
    opt.partitions = partitions;
    expect_identical(sequential, run_storm(opt));
  }
  // And the combined worst case: faults + adversarial schedule.
  opt.faulted = true;
  opt.partitions = 1;
  const Capture faulted_sequential = run_storm(opt);
  opt.partitions = 4;
  expect_identical(faulted_sequential, run_storm(opt));
}

// ----- engine fallbacks and clamps ------------------------------------------

TEST(PartitionedEngine, ZeroLookaheadFallsBackToSequential) {
  // Every rank on one node with zero intra-node latency: no conservative
  // window exists, so the engine must refuse to partition (and still run).
  MachineConfig config = storm_config();
  config.cores_per_node = 64;
  config.lat_intranode = 0.0;
  const Machine machine(config);
  Engine engine(machine, 8, 2);
  engine.set_partitions(4);
  for (int r = 0; r < 8; ++r)
    engine.set_rank(r, std::make_unique<StormRank>(8, 3, 5));
  engine.run();
  EXPECT_EQ(engine.partitions(), 1);
  EXPECT_EQ(engine.lookahead(), 0.0);
}

TEST(PartitionedEngine, PartitionCountClampsToRankCount) {
  const Machine machine(storm_config());
  Engine engine(machine, 3, 2);
  engine.set_partitions(8);
  for (int r = 0; r < 3; ++r)
    engine.set_rank(r, std::make_unique<StormRank>(3, 2, 5));
  engine.run();
  EXPECT_LE(engine.partitions(), 3);
  EXPECT_GT(engine.lookahead(), 0.0);
}

TEST(PartitionedEngine, EnvKnobParsesAndClamps) {
  EXPECT_EQ(parallel::parse_sim_partitions(nullptr), 1);
  EXPECT_EQ(parallel::parse_sim_partitions("4"), 4);
  EXPECT_EQ(parallel::parse_sim_partitions("garbage"), 1);
  EXPECT_EQ(parallel::parse_sim_partitions("0"), 1);
  EXPECT_EQ(parallel::parse_sim_partitions("-3"), 1);
  EXPECT_EQ(parallel::parse_sim_partitions("100000"),
            parallel::kMaxSimPartitions);
}

// ----- timer set/cancel straddling a refill boundary ------------------------

/// Rank 0 floods far-future timers (more than one refill chunk's worth, so
/// the two-tier queue must select them across several nth_element refills),
/// then cancels every other one from a near-future trigger timer — the
/// cancelled set straddles the refill boundary that partitioned safe-time
/// advancement leans on. Other ranks ping across partitions so windows keep
/// advancing.
class TimerFlood : public Rank {
 public:
  static constexpr int kTimers = 20000;  // > one 16384-handle refill chunk
  TimerFlood(int rank_count, std::vector<std::int64_t>* fired)
      : ranks_(rank_count), fired_(fired) {}

  void on_start(Context& ctx) override {
    if (ctx.rank() == 0) {
      ids_.reserve(kTimers);
      for (int i = 0; i < kTimers; ++i) {
        // Fire times spread over [1, 2): far beyond the first horizon.
        const SimTime delay =
            1.0 + static_cast<double>(splitmix64_mix(i)) * 0x1.0p-64;
        ids_.push_back(ctx.set_timer(delay, i));
      }
      ctx.set_timer(0.5, /*tag=*/-1);  // the cancellation trigger
    } else {
      ctx.send((ctx.rank() + 1) % ranks_, /*tag=*/4, 256, 0);
    }
  }

  void on_message(Context& ctx, const Message& msg) override {
    if (msg.tag > 0)
      ctx.send((ctx.rank() + 3) % ranks_, msg.tag - 1, msg.bytes, 0);
  }

  void on_timer(Context& ctx, std::int64_t tag) override {
    if (tag == -1) {
      // Cancel every other pending flood timer (all fire at t >= 1.0, so
      // none has fired yet — every cancel is a clean pre-fire cancel).
      for (std::size_t i = 0; i < ids_.size(); i += 2) ctx.cancel_timer(ids_[i]);
      return;
    }
    fired_->push_back(tag);
  }

 private:
  static std::uint64_t splitmix64_mix(std::uint64_t i) {
    std::uint64_t state = 0x9e3779b97f4a7c15ULL * (i + 1);
    return splitmix64(state);
  }

  int ranks_;
  std::vector<std::int64_t>* fired_;
  std::vector<std::uint64_t> ids_;
};

TEST(TimerRefillBoundary, CancelStraddlingRefillIsExactAndPartitionInvariant) {
  const auto run = [](int partitions) {
    const Machine machine(storm_config());
    Engine engine(machine, 8, 1);
    engine.set_partitions(partitions);
    std::vector<std::int64_t> fired;
    for (int r = 0; r < 8; ++r)
      engine.set_rank(r, std::make_unique<TimerFlood>(8, &fired));
    const SimTime makespan = engine.run();
    // Exactly the uncancelled half fired, none leaked, in identical order.
    EXPECT_EQ(fired.size(),
              static_cast<std::size_t>(TimerFlood::kTimers / 2));
    EXPECT_EQ(engine.leaked_timers(), 0u);
    for (int p = 0; p < engine.partitions(); ++p)
      EXPECT_EQ(engine.leaked_timers(p), 0u) << "partition " << p;
    return std::make_pair(makespan, fired);
  };
  const auto sequential = run(1);
  for (const int partitions : {2, 4}) {
    const auto partitioned = run(partitions);
    EXPECT_EQ(sequential.first, partitioned.first);
    EXPECT_EQ(sequential.second, partitioned.second);
  }
}

/// Cancelling a timer that already fired leaks one bookkeeping entry — and
/// leaked_timers(partition) must localize it to the cancelling rank's
/// partition.
class LateCancel : public Rank {
 public:
  explicit LateCancel(int victim) : victim_(victim) {}
  void on_start(Context& ctx) override {
    if (ctx.rank() != victim_) return;
    id_ = ctx.set_timer(0.0, 1);   // fires first (earlier stable key)...
    ctx.send(ctx.rank(), 2, 0, 0);  // ...then this handler cancels it
  }
  void on_message(Context& ctx, const Message&) override {
    ctx.cancel_timer(id_);
  }
  void on_timer(Context&, std::int64_t) override {}

 private:
  int victim_;
  std::uint64_t id_ = 0;
};

TEST(TimerRefillBoundary, LeakedTimersAreAttributedPerPartition) {
  const Machine machine(storm_config());
  Engine engine(machine, 8, 1);
  engine.set_partitions(2);
  for (int r = 0; r < 8; ++r)
    engine.set_rank(r, std::make_unique<LateCancel>(/*victim=*/6));
  engine.run();
  ASSERT_EQ(engine.partitions(), 2);
  EXPECT_EQ(engine.leaked_timers(0), 0u);  // victim rank 6 lives in [4, 8)
  EXPECT_EQ(engine.leaked_timers(1), 1u);
  EXPECT_EQ(engine.leaked_timers(), 1u);
}

// ----- full PSelInv replays across {Flat, Binary, Shifted-Binary} -----------

class PselinvPartitioned : public ::testing::TestWithParam<trees::TreeScheme> {
};

TEST_P(PselinvPartitioned, TraceAndObsBitwiseIdenticalAcrossPartitions) {
  const GeneratedMatrix gen =
      driver::make_paper_matrix(driver::PaperMatrix::kDgWater, 0.5);
  const SymbolicAnalysis an = analyze(gen, driver::default_analysis_options());
  const pselinv::Plan plan(an.blocks, dist::ProcessGrid(4, 4),
                           driver::tree_options_for(GetParam()));
  const Machine machine(driver::timing_machine(0.25, 1001));

  const auto replay = [&](int partitions) {
    std::vector<TraceEvent> trace;
    obs::Recorder recorder;
    pselinv::RunOptions options;
    options.partitions = partitions;
    const pselinv::RunResult run =
        run_pselinv(plan, machine, pselinv::ExecutionMode::kTrace, nullptr,
                    &trace, &recorder, options);
    Capture capture;
    capture.makespan = run.makespan;
    capture.events = run.events;
    capture.trace = std::move(trace);
    capture.records = recorder.events();
    capture.spans = recorder.spans();
    capture.marks = recorder.marks();
    capture.stats = run.rank_stats;
    EXPECT_EQ(run.leaked_timers, 0u);
    EXPECT_TRUE(run.complete());
    return capture;
  };

  const Capture sequential = replay(1);
  ASSERT_GT(sequential.trace.size(), 0u);
  ASSERT_GT(sequential.spans.size(), 0u);  // supernode spans came through
  for (const int partitions : {2, 4, 8})
    expect_identical(sequential, replay(partitions));
}

INSTANTIATE_TEST_SUITE_P(Schemes, PselinvPartitioned,
                         ::testing::Values(trees::TreeScheme::kFlat,
                                           trees::TreeScheme::kBinary,
                                           trees::TreeScheme::kShiftedBinary),
                         [](const auto& info) {
                           std::string name(trees::scheme_name(info.param));
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

TEST(PselinvPartitioned, NumericSelectedInverseBitwiseIdentical) {
  const GeneratedMatrix gen =
      driver::make_paper_matrix(driver::PaperMatrix::kDgWater, 0.4);
  const SymbolicAnalysis an = analyze(gen, driver::default_analysis_options());
  const pselinv::Plan plan(
      an.blocks, dist::ProcessGrid(3, 3),
      driver::tree_options_for(trees::TreeScheme::kShiftedBinary));
  const Machine machine(driver::timing_machine(0.25, 7));

  const auto invert = [&](int partitions) {
    SupernodalLU lu = SupernodalLU::factor(an);
    pselinv::RunOptions options;
    options.partitions = partitions;
    pselinv::RunResult run =
        run_pselinv(plan, machine, pselinv::ExecutionMode::kNumeric, &lu,
                    nullptr, nullptr, options);
    EXPECT_TRUE(run.complete());
    PSI_CHECK(run.ainv != nullptr);
    return std::make_pair(run.makespan, run.ainv->to_dense());
  };

  const auto sequential = invert(1);
  for (const int partitions : {2, 4}) {
    const auto partitioned = invert(partitions);
    EXPECT_EQ(sequential.first, partitioned.first);
    const DenseMatrix& ref = sequential.second;
    const DenseMatrix& got = partitioned.second;
    ASSERT_EQ(ref.rows(), got.rows());
    ASSERT_EQ(ref.cols(), got.cols());
    for (Int c = 0; c < ref.cols(); ++c)
      for (Int r = 0; r < ref.rows(); ++r)
        ASSERT_EQ(ref(r, c), got(r, c))  // bitwise, no tolerance
            << "partitions=" << partitions << " at (" << r << "," << c << ")";
  }
}

}  // namespace
}  // namespace psi::sim
