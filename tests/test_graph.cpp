/// Unit tests for the graph utilities backing the ordering heuristics.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "sparse/generators.hpp"
#include "ordering/ordering.hpp"
#include "sparse/graph.hpp"

namespace psi {
namespace {

Graph path_graph(Int n) {
  TripletBuilder b(n);
  for (Int i = 0; i < n; ++i) b.add(i, i, 1.0);
  for (Int i = 0; i + 1 < n; ++i) b.add_symmetric(i, i + 1, -1.0);
  return Graph(b.compile().pattern);
}

TEST(Graph, DegreesFromPattern) {
  const Graph g = path_graph(5);
  EXPECT_EQ(g.n(), 5);
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_EQ(g.degree(4), 1);
}

TEST(Graph, NeighborsSorted) {
  const GeneratedMatrix gen = laplacian2d(4, 4, 1);
  const Graph g(gen.matrix.pattern);
  for (Int v = 0; v < g.n(); ++v)
    EXPECT_TRUE(std::is_sorted(g.neighbors_begin(v), g.neighbors_end(v)));
}

TEST(Graph, SelfLoopsDropped) {
  TripletBuilder b(3);
  for (Int i = 0; i < 3; ++i) b.add(i, i, 1.0);
  b.add_symmetric(0, 1, 1.0);
  const Graph g(b.compile().pattern);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(Graph, InducedSubgraph) {
  const Graph g = path_graph(6);
  std::vector<Int> local_of;
  const Graph sub = g.induced_subgraph({1, 2, 3, 5}, local_of);
  EXPECT_EQ(sub.n(), 4);
  EXPECT_EQ(sub.edge_count(), 2);  // 1-2, 2-3; vertex 5 isolated
  EXPECT_EQ(local_of[static_cast<std::size_t>(2)], 1);
  EXPECT_EQ(local_of[static_cast<std::size_t>(0)], -1);
  EXPECT_EQ(sub.degree(3), 0);  // vertex 5
}

TEST(Graph, InducedSubgraphSortedForUnsortedVertexList) {
  // Regression: local ids are not monotone in global ids when the vertex
  // list is unsorted (separators come ordered by coordinate, not id); the
  // adjacency lists must still come out sorted — min-degree's clique merge
  // relies on it, and the original bug made its lists blow up with
  // duplicates.
  const GeneratedMatrix gen = laplacian2d(5, 5, 1);
  const Graph g(gen.matrix.pattern);
  std::vector<Int> vertices{12, 3, 17, 8, 2, 13, 7, 11};  // deliberately unsorted
  std::vector<Int> local_of;
  const Graph sub = g.induced_subgraph(vertices, local_of);
  for (Int v = 0; v < sub.n(); ++v)
    EXPECT_TRUE(std::is_sorted(sub.neighbors_begin(v), sub.neighbors_end(v)))
        << "local vertex " << v;
  // And min-degree on such a subgraph terminates with a valid permutation.
  const Permutation p = min_degree_ordering(sub);
  EXPECT_EQ(p.size(), sub.n());
}

TEST(BfsLevels, PathDistances) {
  const Graph g = path_graph(5);
  const LevelStructure ls = bfs_levels(g, 0, {}, 0);
  EXPECT_EQ(ls.depth, 5);
  for (Int v = 0; v < 5; ++v) EXPECT_EQ(ls.level[static_cast<std::size_t>(v)], v);
  EXPECT_EQ(ls.order.size(), 5u);
}

TEST(BfsLevels, RespectsMask) {
  const Graph g = path_graph(5);
  std::vector<Int> mask{0, 0, 1, 0, 0};  // vertex 2 excluded from mask 0
  const LevelStructure ls = bfs_levels(g, 0, mask, 0);
  EXPECT_EQ(ls.level[1], 1);
  EXPECT_EQ(ls.level[2], -1);  // blocked
  EXPECT_EQ(ls.level[3], -1);  // unreachable behind the block
}

TEST(PseudoPeripheral, FindsPathEndpoint) {
  const Graph g = path_graph(9);
  const Int v = pseudo_peripheral_vertex(g, 4, {}, 0);
  EXPECT_TRUE(v == 0 || v == 8);
}

TEST(ConnectedComponents, CountsAndLabels) {
  TripletBuilder b(6);
  for (Int i = 0; i < 6; ++i) b.add(i, i, 1.0);
  b.add_symmetric(0, 1, 1.0);
  b.add_symmetric(2, 3, 1.0);
  b.add_symmetric(3, 4, 1.0);
  const Graph g(b.compile().pattern);
  Int count = 0;
  const std::vector<Int> comp = connected_components(g, count);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[2], comp[5]);
}

TEST(ConnectedComponents, GridIsConnected) {
  const GeneratedMatrix gen = laplacian3d(4, 3, 2, 1);
  const Graph g(gen.matrix.pattern);
  Int count = 0;
  connected_components(g, count);
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace psi
