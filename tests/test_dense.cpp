/// Unit tests for the dense kernels (gemm/trsm/getrf/inverse) that the
/// supernodal factorization and selected inversion are built on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sparse/dense.hpp"

namespace psi {
namespace {

DenseMatrix random_matrix(Int rows, Int cols, Rng& rng) {
  DenseMatrix m(rows, cols);
  for (Int c = 0; c < cols; ++c)
    for (Int r = 0; r < rows; ++r) m(r, c) = rng.uniform_double(-1.0, 1.0);
  return m;
}

/// Diagonally dominant square matrix (safe for unpivoted LU).
DenseMatrix random_dd_matrix(Int n, Rng& rng) {
  DenseMatrix m = random_matrix(n, n, rng);
  for (Int i = 0; i < n; ++i) {
    double sum = 0.0;
    for (Int j = 0; j < n; ++j) sum += std::fabs(m(i, j));
    m(i, i) = sum + 1.0;
  }
  return m;
}

DenseMatrix naive_multiply(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c(a.rows(), b.cols());
  for (Int i = 0; i < a.rows(); ++i)
    for (Int j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (Int k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  return c;
}

TEST(DenseMatrix, BasicAccess) {
  DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 2.0);
}

TEST(DenseMatrix, Transpose) {
  Rng rng(1);
  const DenseMatrix a = random_matrix(3, 5, rng);
  const DenseMatrix t = a.transposed();
  for (Int i = 0; i < 3; ++i)
    for (Int j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(t(j, i), a(i, j));
}

TEST(Gemm, MatchesNaive) {
  Rng rng(2);
  const DenseMatrix a = random_matrix(4, 6, rng);
  const DenseMatrix b = random_matrix(6, 3, rng);
  DenseMatrix c(4, 3);
  gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, c);
  EXPECT_LT(max_abs_diff(c, naive_multiply(a, b)), 1e-13);
}

TEST(Gemm, TransposedOperands) {
  Rng rng(3);
  const DenseMatrix a = random_matrix(6, 4, rng);   // use a^T
  const DenseMatrix b = random_matrix(3, 6, rng);   // use b^T
  DenseMatrix c(4, 3);
  gemm(Trans::kYes, Trans::kYes, 2.0, a, b, 0.0, c);
  DenseMatrix expected = naive_multiply(a.transposed(), b.transposed());
  for (Int i = 0; i < 4; ++i)
    for (Int j = 0; j < 3; ++j) expected(i, j) *= 2.0;
  EXPECT_LT(max_abs_diff(c, expected), 1e-13);
}

TEST(Gemm, AccumulatesWithBeta) {
  Rng rng(4);
  const DenseMatrix a = random_matrix(3, 3, rng);
  const DenseMatrix b = random_matrix(3, 3, rng);
  DenseMatrix c(3, 3, 1.0);
  gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 2.0, c);
  DenseMatrix expected = naive_multiply(a, b);
  for (Int i = 0; i < 3; ++i)
    for (Int j = 0; j < 3; ++j) expected(i, j) += 2.0;
  EXPECT_LT(max_abs_diff(c, expected), 1e-13);
}

TEST(Gemm, DimensionMismatchThrows) {
  DenseMatrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, c), Error);
}

class TrsmTest : public ::testing::TestWithParam<std::tuple<Side, UpLo, Trans, Diag>> {};

TEST_P(TrsmTest, SolvesAgainstMultiply) {
  const auto [side, uplo, trans, diag] = GetParam();
  Rng rng(5);
  const Int n = 5, m = 4;
  // Build a well-conditioned triangular T.
  DenseMatrix t(n, n);
  for (Int c = 0; c < n; ++c)
    for (Int r = 0; r < n; ++r) {
      const bool in_tri = (uplo == UpLo::kLower) ? (r >= c) : (r <= c);
      if (!in_tri) continue;
      t(r, c) = (r == c) ? 3.0 + rng.uniform_double() : rng.uniform_double(-1.0, 1.0);
    }
  const DenseMatrix x_expected =
      (side == Side::kLeft) ? random_matrix(n, m, rng) : random_matrix(m, n, rng);

  // Effective operator: op(T) with unit diagonal replaced if requested.
  DenseMatrix t_eff = t;
  if (diag == Diag::kUnit)
    for (Int i = 0; i < n; ++i) t_eff(i, i) = 1.0;
  if (trans == Trans::kYes) t_eff = t_eff.transposed();

  DenseMatrix b = (side == Side::kLeft) ? naive_multiply(t_eff, x_expected)
                                        : naive_multiply(x_expected, t_eff);
  trsm(side, uplo, trans, diag, 1.0, t, b);
  EXPECT_LT(max_abs_diff(b, x_expected), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrsmTest,
    ::testing::Combine(::testing::Values(Side::kLeft, Side::kRight),
                       ::testing::Values(UpLo::kLower, UpLo::kUpper),
                       ::testing::Values(Trans::kNo, Trans::kYes),
                       ::testing::Values(Diag::kUnit, Diag::kNonUnit)));

TEST(Getrf, ReconstructsMatrix) {
  Rng rng(6);
  const Int n = 8;
  const DenseMatrix a = random_dd_matrix(n, rng);
  DenseMatrix lu = a;
  getrf_nopivot(lu);
  // Rebuild L * U.
  DenseMatrix l(n, n), u(n, n);
  for (Int c = 0; c < n; ++c)
    for (Int r = 0; r < n; ++r) {
      if (r > c) l(r, c) = lu(r, c);
      if (r == c) l(r, c) = 1.0;
      if (r <= c) u(r, c) = lu(r, c);
    }
  EXPECT_LT(max_abs_diff(naive_multiply(l, u), a), 1e-10);
}

TEST(Getrf, SingularThrows) {
  DenseMatrix a(2, 2);  // all zeros
  EXPECT_THROW(getrf_nopivot(a), Error);
}

TEST(Inverse, RoundTrips) {
  Rng rng(7);
  const Int n = 7;
  const DenseMatrix a = random_dd_matrix(n, rng);
  const DenseMatrix ainv = inverse(a);
  const DenseMatrix prod = naive_multiply(a, ainv);
  DenseMatrix eye(n, n);
  for (Int i = 0; i < n; ++i) eye(i, i) = 1.0;
  EXPECT_LT(max_abs_diff(prod, eye), 1e-10);
}

TEST(TriangularInverse, LowerUnit) {
  Rng rng(8);
  const Int n = 5;
  DenseMatrix t(n, n);
  for (Int c = 0; c < n; ++c) {
    t(c, c) = 1.0;
    for (Int r = c + 1; r < n; ++r) t(r, c) = rng.uniform_double(-1.0, 1.0);
  }
  DenseMatrix tinv = t;
  triangular_inverse(UpLo::kLower, Diag::kUnit, tinv);
  DenseMatrix eye(n, n);
  for (Int i = 0; i < n; ++i) eye(i, i) = 1.0;
  EXPECT_LT(max_abs_diff(naive_multiply(t, tinv), eye), 1e-12);
}

TEST(Flops, Formulas) {
  EXPECT_EQ(gemm_flops(2, 3, 4), 48);
  EXPECT_EQ(trsm_flops(3, 5), 45);
  EXPECT_EQ(getrf_flops(3), 18);
  EXPECT_EQ(dense_bytes(4, 5), 160);
}

}  // namespace
}  // namespace psi
