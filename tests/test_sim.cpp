/// Unit tests for the discrete-event simulator: machine cost model, event
/// ordering, NIC serialization, counters, determinism — including the
/// regression test that a full PSelInv replay is bit-identical across
/// repeated runs and across the bench thread pool.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "driver/experiment.hpp"
#include "driver/paper_matrices.hpp"
#include "pselinv/engine.hpp"
#include "sim/engine.hpp"

namespace psi::sim {
namespace {

MachineConfig test_config() {
  MachineConfig config;
  config.cores_per_node = 4;
  config.nodes_per_group = 2;
  config.flop_rate = 1e9;
  config.msg_overhead = 1e-6;
  return config;
}

TEST(Machine, TopologyTiers) {
  const Machine m(test_config());
  EXPECT_EQ(m.node_of(0), 0);
  EXPECT_EQ(m.node_of(3), 0);
  EXPECT_EQ(m.node_of(4), 1);
  EXPECT_EQ(m.group_of(0), 0);
  EXPECT_EQ(m.group_of(7), 0);
  EXPECT_EQ(m.group_of(8), 1);
  // Latencies increase with distance.
  EXPECT_EQ(m.latency(0, 0), 0.0);
  EXPECT_LT(m.latency(0, 1), m.latency(0, 4));
  EXPECT_LT(m.latency(0, 4), m.latency(0, 8));
}

TEST(Machine, OccupancyScalesWithBytes) {
  const Machine m(test_config());
  EXPECT_DOUBLE_EQ(m.occupancy(0, 0, 1 << 20), 0.0);  // rank-local
  const double small = m.occupancy(0, 4, 1000);
  const double large = m.occupancy(0, 4, 2000);
  EXPECT_NEAR(large, 2.0 * small, 1e-12);
  // Farther tiers are slower per byte.
  EXPECT_LT(m.occupancy(0, 1, 1 << 20), m.occupancy(0, 8, 1 << 20));
}

TEST(Machine, JitterDeterministicAndSymmetric) {
  MachineConfig config = test_config();
  config.jitter_sigma = 0.3;
  config.jitter_seed = 7;
  const Machine m(config);
  EXPECT_DOUBLE_EQ(m.pair_jitter(0, 4), m.pair_jitter(4, 0));
  EXPECT_DOUBLE_EQ(m.pair_jitter(0, 4), m.pair_jitter(1, 5));  // same node pair
  EXPECT_DOUBLE_EQ(m.pair_jitter(0, 1), 1.0);                  // intra-node
  // A different seed gives a different field (with overwhelming probability
  // across several pairs).
  config.jitter_seed = 8;
  const Machine m2(config);
  bool differs = false;
  for (int dst = 4; dst < 32; dst += 4)
    differs = differs || (m.pair_jitter(0, dst) != m2.pair_jitter(0, dst));
  EXPECT_TRUE(differs);
}

TEST(Machine, NoJitterIsUnity) {
  const Machine m(test_config());
  EXPECT_DOUBLE_EQ(m.pair_jitter(0, 100), 1.0);
}

/// Ping-pong program: rank 0 sends to rank 1, which echoes back N times.
class PingPong : public Rank {
 public:
  PingPong(int peer, int rounds, std::vector<SimTime>* log)
      : peer_(peer), rounds_(rounds), log_(log) {}

  void on_start(Context& ctx) override {
    if (ctx.rank() == 0) ctx.send(peer_, 0, 1024, 0);
  }
  void on_message(Context& ctx, const Message& msg) override {
    log_->push_back(ctx.now());
    if (static_cast<int>(msg.tag) < rounds_)
      ctx.send(msg.src, msg.tag + 1, 1024, 0);
  }

 private:
  int peer_;
  int rounds_;
  std::vector<SimTime>* log_;
};

TEST(Engine, PingPongAdvancesTime) {
  const Machine m(test_config());
  Engine engine(m, 2, 1);
  std::vector<SimTime> log;
  engine.set_rank(0, std::make_unique<PingPong>(1, 4, &log));
  engine.set_rank(1, std::make_unique<PingPong>(0, 4, &log));
  const SimTime makespan = engine.run();
  EXPECT_EQ(log.size(), 5u);  // 5 deliveries (tags 0..4)
  for (std::size_t i = 1; i < log.size(); ++i) EXPECT_GT(log[i], log[i - 1]);
  EXPECT_GT(makespan, 0.0);
  // Counters: rank 0 sent 3 messages (tags 0, 2, 4... tag 0,2,4 -> 3 sends);
  // rank 1 sent 2.
  EXPECT_EQ(engine.stats(0).per_class[0].messages_sent, 3);
  EXPECT_EQ(engine.stats(1).per_class[0].messages_sent, 2);
  EXPECT_EQ(engine.stats(1).per_class[0].bytes_received, 3 * 1024);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    const Machine m(test_config());
    Engine engine(m, 2, 1);
    std::vector<SimTime> log;
    engine.set_rank(0, std::make_unique<PingPong>(1, 10, &log));
    engine.set_rank(1, std::make_unique<PingPong>(0, 10, &log));
    return engine.run();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

/// Fan-out: rank 0 sends one message to every other rank.
class FanOutRoot : public Rank {
 public:
  FanOutRoot(int nranks, Count bytes) : nranks_(nranks), bytes_(bytes) {}
  void on_start(Context& ctx) override {
    for (int r = 1; r < nranks_; ++r) ctx.send(r, 0, bytes_, 0);
  }
  void on_message(Context&, const Message&) override {}
 private:
  int nranks_;
  Count bytes_;
};

class Sink : public Rank {
 public:
  explicit Sink(std::vector<SimTime>* arrivals) : arrivals_(arrivals) {}
  void on_start(Context&) override {}
  void on_message(Context& ctx, const Message&) override {
    arrivals_->push_back(ctx.now());
  }
 private:
  std::vector<SimTime>* arrivals_;
};

TEST(Engine, SenderNicSerializesFanOut) {
  // With NIC serialization the k-th recipient sees ~k * occupancy delay:
  // the makespan of a 1-to-15 fan-out of 1MB messages must be around
  // 15 * occupancy, not 1 * occupancy.
  const Machine m(test_config());
  const int nranks = 16;
  const Count bytes = 1 << 20;
  Engine engine(m, nranks, 1);
  std::vector<SimTime> arrivals;
  engine.set_rank(0, std::make_unique<FanOutRoot>(nranks, bytes));
  for (int r = 1; r < nranks; ++r)
    engine.set_rank(r, std::make_unique<Sink>(&arrivals));
  const SimTime makespan = engine.run();
  const double one_transfer = m.occupancy(0, 8, bytes);
  EXPECT_GT(makespan, 10.0 * one_transfer);
}

/// Binary relay: root sends to 2 children, each forwards to 2 more — the
/// makespan should beat the flat fan-out for the same payload count.
class Relay : public Rank {
 public:
  Relay(int nranks, Count bytes) : nranks_(nranks), bytes_(bytes) {}
  void on_start(Context& ctx) override {
    if (ctx.rank() == 0) forward(ctx);
  }
  void on_message(Context& ctx, const Message&) override { forward(ctx); }
 private:
  void forward(Context& ctx) {
    const int left = 2 * ctx.rank() + 1, right = 2 * ctx.rank() + 2;
    if (left < nranks_) ctx.send(left, 0, bytes_, 0);
    if (right < nranks_) ctx.send(right, 0, bytes_, 0);
  }
  int nranks_;
  Count bytes_;
};

TEST(Engine, TreeFanOutBeatsFlatFanOut) {
  const int nranks = 32;
  const Count bytes = 1 << 20;
  const Machine m(test_config());

  Engine flat(m, nranks, 1);
  flat.set_rank(0, std::make_unique<FanOutRoot>(nranks, bytes));
  std::vector<SimTime> arrivals;
  for (int r = 1; r < nranks; ++r)
    flat.set_rank(r, std::make_unique<Sink>(&arrivals));
  const SimTime flat_time = flat.run();

  Engine tree(m, nranks, 1);
  for (int r = 0; r < nranks; ++r)
    tree.set_rank(r, std::make_unique<Relay>(nranks, bytes));
  const SimTime tree_time = tree.run();

  EXPECT_LT(tree_time, flat_time);
}

TEST(Engine, ComputeAccounting) {
  class Worker : public Rank {
   public:
    void on_start(Context& ctx) override { ctx.compute_flops(5'000'000); }
    void on_message(Context&, const Message&) override {}
  };
  const Machine m(test_config());  // 1 GF/s
  Engine engine(m, 1, 1);
  engine.set_rank(0, std::make_unique<Worker>());
  const SimTime makespan = engine.run();
  EXPECT_NEAR(makespan, 5e-3, 1e-12);
  EXPECT_NEAR(engine.stats(0).compute_seconds, 5e-3, 1e-12);
}

TEST(Engine, SelfSendDelivered) {
  class SelfSender : public Rank {
   public:
    explicit SelfSender(int* got) : got_(got) {}
    void on_start(Context& ctx) override { ctx.send(ctx.rank(), 42, 100, 0); }
    void on_message(Context&, const Message& msg) override {
      if (msg.tag == 42) ++*got_;
    }
   private:
    int* got_;
  };
  const Machine m(test_config());
  Engine engine(m, 1, 1);
  int got = 0;
  engine.set_rank(0, std::make_unique<SelfSender>(&got));
  engine.run();
  EXPECT_EQ(got, 1);
  // Self-sends are not network traffic.
  EXPECT_EQ(engine.stats(0).per_class[0].bytes_sent, 0);
}

TEST(Engine, RejectsBadSends) {
  class BadSender : public Rank {
   public:
    void on_start(Context& ctx) override { ctx.send(99, 0, 8, 0); }
    void on_message(Context&, const Message&) override {}
  };
  const Machine m(test_config());
  Engine engine(m, 2, 1);
  engine.set_rank(0, std::make_unique<BadSender>());
  engine.set_rank(1, std::make_unique<BadSender>());
  EXPECT_THROW(engine.run(), Error);
}

TEST(Engine, RejectsNegativeBytesAndBadClass) {
  class NegativeBytes : public Rank {
   public:
    void on_start(Context& ctx) override { ctx.send(1, 0, -8, 0); }
    void on_message(Context&, const Message&) override {}
  };
  class BadClass : public Rank {
   public:
    void on_start(Context& ctx) override { ctx.send(1, 0, 8, 7); }
    void on_message(Context&, const Message&) override {}
  };
  class Idle : public Rank {
    void on_start(Context&) override {}
    void on_message(Context&, const Message&) override {}
  };
  const Machine m(test_config());
  {
    Engine engine(m, 2, 1);
    engine.set_rank(0, std::make_unique<NegativeBytes>());
    engine.set_rank(1, std::make_unique<Idle>());
    EXPECT_THROW(engine.run(), Error);
  }
  {
    Engine engine(m, 2, 1);
    engine.set_rank(0, std::make_unique<BadClass>());
    engine.set_rank(1, std::make_unique<Idle>());
    EXPECT_THROW(engine.run(), Error);
  }
}

TEST(Engine, TimerFiresAtArmedDelay) {
  class TimerRank : public Rank {
   public:
    void on_start(Context& ctx) override { ctx.set_timer(3e-3, 7); }
    void on_message(Context&, const Message&) override {}
    void on_timer(Context& ctx, std::int64_t tag) override {
      fired_tag = tag;
      fired_at = ctx.now();
    }
    std::int64_t fired_tag = -1;
    SimTime fired_at = -1.0;
  };
  const Machine m(test_config());
  Engine engine(m, 1, 1);
  auto program = std::make_unique<TimerRank>();
  TimerRank* rank = program.get();
  engine.set_rank(0, std::move(program));
  const SimTime makespan = engine.run();
  EXPECT_EQ(rank->fired_tag, 7);
  EXPECT_DOUBLE_EQ(rank->fired_at, 3e-3);
  EXPECT_GE(makespan, 3e-3);
}

TEST(Engine, CancelledTimerNeitherFiresNorExtendsMakespan) {
  class CancellingRank : public Rank {
   public:
    void on_start(Context& ctx) override {
      const std::uint64_t id = ctx.set_timer(1.0, 1);  // far-future deadline
      ctx.set_timer(1e-3, 2);
      ctx.cancel_timer(id);
    }
    void on_message(Context&, const Message&) override {}
    void on_timer(Context&, std::int64_t tag) override {
      PSI_CHECK_MSG(tag != 1, "cancelled timer fired");
      ++fired;
    }
    int fired = 0;
  };
  const Machine m(test_config());
  Engine engine(m, 1, 1);
  auto program = std::make_unique<CancellingRank>();
  CancellingRank* rank = program.get();
  engine.set_rank(0, std::move(program));
  const SimTime makespan = engine.run();
  EXPECT_EQ(rank->fired, 1);
  // The cancelled 1 s deadline must not stretch the run.
  EXPECT_DOUBLE_EQ(makespan, 1e-3);
}

TEST(Engine, UnhandledTimerFailsLoudly) {
  class NoHandler : public Rank {
   public:
    void on_start(Context& ctx) override { ctx.set_timer(1e-3, 0); }
    void on_message(Context&, const Message&) override {}
    // Inherits the default on_timer, which throws.
  };
  const Machine m(test_config());
  Engine engine(m, 1, 1);
  engine.set_rank(0, std::make_unique<NoHandler>());
  EXPECT_THROW(engine.run(), Error);
}

TEST(Engine, RejectsNegativeTimerDelay) {
  class NegativeDelay : public Rank {
   public:
    void on_start(Context& ctx) override { ctx.set_timer(-1e-3, 0); }
    void on_message(Context&, const Message&) override {}
    void on_timer(Context&, std::int64_t) override {}
  };
  const Machine m(test_config());
  Engine engine(m, 1, 1);
  engine.set_rank(0, std::make_unique<NegativeDelay>());
  EXPECT_THROW(engine.run(), Error);
}

TEST(Engine, RunTwiceThrows) {
  class Idle : public Rank {
    void on_start(Context&) override {}
    void on_message(Context&, const Message&) override {}
  };
  const Machine m(test_config());
  Engine engine(m, 1, 1);
  engine.set_rank(0, std::make_unique<Idle>());
  engine.run();
  EXPECT_THROW(engine.run(), Error);
}

/// One handler posting a storm of sends whose NIC-serialized delivery times
/// stretch far past the scheduling horizon: every send lands in the
/// overflow buffer, forcing repeated refill_heap() chunk selections, the
/// consumed-prefix cursor, the mid-buffer compaction (erase once the dead
/// prefix crosses half), and the final clear. Delivery order must stay
/// exactly deterministic throughout.
TEST(Engine, OverflowBufferCompactionPreservesOrder) {
  constexpr int kRanks = 8;
  constexpr int kSends = 60000;  // ~4 refill chunks of >= 16384

  class Flood : public Rank {
   public:
    void on_start(Context& ctx) override {
      if (ctx.rank() != 0) return;
      for (int i = 0; i < kSends; ++i)
        ctx.send(1 + i % (kRanks - 1), /*tag=*/i, /*bytes=*/1 << 16, 0);
    }
    void on_message(Context&, const Message&) override {}
  };
  class Receiver : public Rank {
   public:
    explicit Receiver(std::vector<std::int64_t>* tags) : tags_(tags) {}
    void on_start(Context&) override {}
    void on_message(Context& ctx, const Message& msg) override {
      times_.push_back(ctx.now());
      tags_->push_back(msg.tag);
    }
    const std::vector<SimTime>& times() const { return times_; }

   private:
    std::vector<SimTime> times_;
    std::vector<std::int64_t>* tags_;
  };

  const auto run_once = [](std::vector<std::int64_t>* tags) {
    const Machine m(test_config());
    Engine engine(m, kRanks, 1);
    engine.set_rank(0, std::make_unique<Flood>());
    std::vector<const Receiver*> receivers;
    for (int r = 1; r < kRanks; ++r) {
      auto receiver = std::make_unique<Receiver>(tags);
      receivers.push_back(receiver.get());
      engine.set_rank(r, std::move(receiver));
    }
    const SimTime makespan = engine.run();
    EXPECT_EQ(engine.events_processed(), kRanks + kSends);
    // Receiver NIC serialization: each rank's handler starts strictly
    // increase, and none were lost.
    std::size_t delivered = 0;
    for (const Receiver* receiver : receivers) {
      delivered += receiver->times().size();
      for (std::size_t i = 1; i < receiver->times().size(); ++i)
        EXPECT_GT(receiver->times()[i], receiver->times()[i - 1]);
    }
    EXPECT_EQ(delivered, static_cast<std::size_t>(kSends));
    return makespan;
  };

  std::vector<std::int64_t> tags_a, tags_b;
  const SimTime first = run_once(&tags_a);
  const SimTime second = run_once(&tags_b);
  EXPECT_EQ(first, second);  // bitwise
  ASSERT_EQ(tags_a.size(), tags_b.size());
  EXPECT_EQ(tags_a, tags_b);  // identical global delivery order
}

/// Regression guard for the pooled event queue and the bench thread pool: a
/// seeded PSelInv trace replay must be bit-identical run-to-run, and running
/// it on pool workers (the fig8/fig9 bench path) must not perturb it.
TEST(Determinism, PselinvTraceBitIdenticalAcrossRunsAndPool) {
  const GeneratedMatrix gen =
      driver::make_paper_matrix(driver::PaperMatrix::kDgWater, 0.5);
  const SymbolicAnalysis an = analyze(gen, driver::default_analysis_options());
  const pselinv::Plan plan(
      an.blocks, dist::ProcessGrid(4, 4),
      driver::tree_options_for(trees::TreeScheme::kShiftedBinary));

  struct Replay {
    SimTime makespan = 0.0;
    std::size_t trace_length = 0;
    std::vector<RankStats> stats;
  };
  const auto replay = [&plan]() {
    const Machine machine(driver::timing_machine(0.25, 1001));
    std::vector<TraceEvent> trace;
    const pselinv::RunResult run = run_pselinv(
        plan, machine, pselinv::ExecutionMode::kTrace, nullptr, &trace);
    return Replay{run.makespan, trace.size(), run.rank_stats};
  };
  const auto expect_identical = [](const Replay& a, const Replay& b) {
    EXPECT_EQ(a.makespan, b.makespan);  // bitwise: no tolerance
    EXPECT_EQ(a.trace_length, b.trace_length);
    ASSERT_EQ(a.stats.size(), b.stats.size());
    for (std::size_t r = 0; r < a.stats.size(); ++r) {
      EXPECT_EQ(a.stats[r].finish_time, b.stats[r].finish_time);
      EXPECT_EQ(a.stats[r].events_handled, b.stats[r].events_handled);
      ASSERT_EQ(a.stats[r].per_class.size(), b.stats[r].per_class.size());
      for (std::size_t c = 0; c < a.stats[r].per_class.size(); ++c) {
        EXPECT_EQ(a.stats[r].per_class[c].bytes_sent,
                  b.stats[r].per_class[c].bytes_sent);
        EXPECT_EQ(a.stats[r].per_class[c].bytes_received,
                  b.stats[r].per_class[c].bytes_received);
        EXPECT_EQ(a.stats[r].per_class[c].messages_sent,
                  b.stats[r].per_class[c].messages_sent);
        EXPECT_EQ(a.stats[r].per_class[c].messages_received,
                  b.stats[r].per_class[c].messages_received);
      }
    }
  };

  const Replay reference = replay();
  ASSERT_GT(reference.trace_length, 0u);
  expect_identical(reference, replay());

  // The bench path: independent replays on pool workers.
  std::vector<Replay> pooled(3);
  parallel::parallel_for_each(
      pooled, [&replay](Replay& slot) { slot = replay(); }, 3);
  for (const Replay& p : pooled) expect_identical(reference, p);
}

}  // namespace
}  // namespace psi::sim
