/// \file test_store.cpp
/// \brief psi::store tests: psi-plan v1 round-trip fidelity, robustness of
/// the loader against truncated/corrupt/version-mismatched files (every
/// failure is a precise StoreError, never a crash), the directory store's
/// read-through/write-through behaviour with rebuild-on-corruption, bitwise
/// digest equality of disk-loaded vs freshly built plans across worker and
/// shard counts, and the multi-tenant admission primitives (token quotas,
/// SLO priority aging, fingerprint sharding).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "serve/plan_cache.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "sparse/generators.hpp"
#include "store/admission.hpp"
#include "store/plan_io.hpp"
#include "store/plan_store.hpp"
#include "store/sharded_service.hpp"

namespace serve = psi::serve;
namespace store = psi::store;
namespace fs = std::filesystem;
using psi::Count;
using psi::GeneratedMatrix;
using psi::Int;
using psi::SparseMatrix;

namespace {

serve::PlanConfig small_config() {
  serve::PlanConfig config;
  config.grid_rows = 2;
  config.grid_cols = 2;
  return config;
}

SparseMatrix small_matrix(Int nx, std::uint64_t value_seed) {
  GeneratedMatrix gen = psi::laplacian2d(nx, nx, 1);
  psi::assign_dd_values(gen.matrix, value_seed, psi::ValueKind::kSymmetric);
  return gen.matrix;
}

std::shared_ptr<const serve::ServePlan> small_plan(Int nx = 6) {
  return serve::build_serve_plan(small_matrix(nx, 1), small_config());
}

/// Fresh scratch directory under the build tree's cwd.
std::string scratch_dir(const std::string& name) {
  const std::string dir = "store_test_scratch/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

std::uint32_t read_u32(const std::vector<std::uint8_t>& b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(b[at + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

std::uint64_t read_u64(const std::vector<std::uint8_t>& b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(b[at + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

void write_u64(std::vector<std::uint8_t>& b, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    b[at + static_cast<std::size_t>(i)] = (v >> (8 * i)) & 0xff;
}

struct SectionExtent {
  std::uint32_t id;
  std::size_t offset;
  std::size_t length;
};

/// Parses the section table straight off the documented v1 layout.
std::vector<SectionExtent> section_table(const std::vector<std::uint8_t>& b) {
  const std::uint32_t count = read_u32(b, 12);
  std::vector<SectionExtent> out;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = 32 + 32 * static_cast<std::size_t>(i);
    out.push_back({read_u32(b, at),
                   static_cast<std::size_t>(read_u64(b, at + 8)),
                   static_cast<std::size_t>(read_u64(b, at + 16))});
  }
  return out;
}

/// Recomputes and patches the header/table checksum (so tests can tamper
/// with header fields and still reach the field-specific error).
void fix_header_checksum(std::vector<std::uint8_t>& b) {
  const std::uint32_t count = read_u32(b, 12);
  const std::size_t table_end = 32 + 32 * static_cast<std::size_t>(count);
  serve::FingerprintHasher hasher;
  hasher.mix_bytes(b.data(), table_end);
  write_u64(b, table_end, hasher.finish().lo);
}

serve::WorkloadOptions digest_workload() {
  serve::WorkloadOptions workload;
  workload.structures = 3;
  workload.nx = 6;
  workload.requests = 10;
  workload.window = 3;
  workload.tenants = 2;
  workload.seed = 11;
  return workload;
}

store::ShardedService::Config sharded_config(const std::string& plan_dir,
                                             int shards, int workers) {
  store::ShardedService::Config config;
  config.shards = shards;
  config.service.workers = workers;
  config.service.plan = small_config();
  config.plan_dir = plan_dir;
  return config;
}

}  // namespace

// --- psi-plan v1 round trip -------------------------------------------------

TEST(PlanIo, RoundTripReconstructsEveryPlanComponent) {
  const auto plan = small_plan();
  const std::vector<std::uint8_t> bytes = store::encode_serve_plan(*plan);
  const auto loaded = store::decode_serve_plan(bytes);

  EXPECT_EQ(loaded->fingerprint, plan->fingerprint);
  EXPECT_EQ(store::encode_plan_config(loaded->config),
            store::encode_plan_config(plan->config));

  // Symbolic pipeline output.
  EXPECT_EQ(loaded->analysis.matrix.pattern.col_ptr,
            plan->analysis.matrix.pattern.col_ptr);
  EXPECT_EQ(loaded->analysis.matrix.pattern.row_idx,
            plan->analysis.matrix.pattern.row_idx);
  EXPECT_TRUE(loaded->analysis.matrix.values.empty());
  EXPECT_EQ(loaded->analysis.perm.old_to_new(),
            plan->analysis.perm.old_to_new());
  EXPECT_EQ(loaded->analysis.etree, plan->analysis.etree);
  EXPECT_EQ(loaded->analysis.counts, plan->analysis.counts);
  EXPECT_EQ(loaded->analysis.blocks.part.starts,
            plan->analysis.blocks.part.starts);
  EXPECT_EQ(loaded->analysis.blocks.part.sup_of_col,
            plan->analysis.blocks.part.sup_of_col);
  EXPECT_EQ(loaded->analysis.blocks.parent, plan->analysis.blocks.parent);
  EXPECT_EQ(loaded->analysis.blocks.struct_of,
            plan->analysis.blocks.struct_of);

  // Communication plan: index tables and every tree's shape.
  ASSERT_EQ(loaded->plan.supernode_count(), plan->plan.supernode_count());
  EXPECT_EQ(loaded->plan.kt_count(), plan->plan.kt_count());
  for (std::int64_t t = 0; t < plan->plan.kt_count(); ++t) {
    EXPECT_EQ(loaded->plan.row_ordinal(t), plan->plan.row_ordinal(t));
    EXPECT_EQ(loaded->plan.col_ordinal(t), plan->plan.col_ordinal(t));
  }
  for (Int k = 0; k < plan->plan.supernode_count(); ++k) {
    const psi::pselinv::SupernodePlan& a = plan->plan.supernode(k);
    const psi::pselinv::SupernodePlan& b = loaded->plan.supernode(k);
    EXPECT_EQ(a.prows, b.prows);
    EXPECT_EQ(a.pcols, b.pcols);
    EXPECT_EQ(a.prow_counts, b.prow_counts);
    EXPECT_EQ(a.pcol_counts, b.pcol_counts);
    EXPECT_EQ(a.cross_dst, b.cross_dst);
    EXPECT_EQ(a.cross_src, b.cross_src);
    EXPECT_EQ(a.diag_bcast.participants(), b.diag_bcast.participants());
    EXPECT_EQ(a.col_reduce.participants(), b.col_reduce.participants());
    ASSERT_EQ(a.col_bcast.size(), b.col_bcast.size());
    for (std::size_t t = 0; t < a.col_bcast.size(); ++t) {
      EXPECT_EQ(a.col_bcast[t].participants(),
                b.col_bcast[t].participants());
      for (int rank : a.col_bcast[t].participants())
        EXPECT_EQ(a.col_bcast[t].parent_of(rank),
                  b.col_bcast[t].parent_of(rank));
    }
  }

  // Cached trace artifacts and the scatter map.
  EXPECT_EQ(loaded->trace_makespan, plan->trace_makespan);
  EXPECT_EQ(loaded->trace_events, plan->trace_events);
  ASSERT_EQ(loaded->scatter.size(), plan->scatter.size());
  for (std::size_t p = 0; p < plan->scatter.size(); ++p) {
    EXPECT_EQ(loaded->scatter[p].kind, plan->scatter[p].kind);
    EXPECT_EQ(loaded->scatter[p].sup, plan->scatter[p].sup);
    EXPECT_EQ(loaded->scatter[p].row, plan->scatter[p].row);
    EXPECT_EQ(loaded->scatter[p].col, plan->scatter[p].col);
  }
  EXPECT_GT(loaded->bytes, 0u);
}

TEST(PlanIo, EncodeIsDeterministic) {
  const auto plan = small_plan();
  EXPECT_EQ(store::encode_serve_plan(*plan), store::encode_serve_plan(*plan));
}

TEST(PlanIo, PeekFingerprintReadsHeaderOnly) {
  const auto plan = small_plan();
  const std::vector<std::uint8_t> bytes = store::encode_serve_plan(*plan);
  EXPECT_EQ(store::peek_fingerprint(bytes.data(), bytes.size()),
            plan->fingerprint);
}

// --- loader robustness ------------------------------------------------------

TEST(PlanIo, ZeroLengthAndTinyFilesRejected) {
  for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                 std::size_t{7}, std::size_t{39}}) {
    const std::vector<std::uint8_t> bytes(size, 0);
    EXPECT_THROW(store::decode_serve_plan(bytes), store::StoreError)
        << "size " << size;
  }
}

TEST(PlanIo, WrongMagicRejected) {
  auto bytes = store::encode_serve_plan(*small_plan());
  bytes[0] ^= 0xff;
  try {
    store::decode_serve_plan(bytes);
    FAIL() << "decode accepted a wrong magic";
  } catch (const store::StoreError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(PlanIo, VersionMismatchRejectedWithBothVersions) {
  auto bytes = store::encode_serve_plan(*small_plan());
  bytes[8] = 99;  // format_version
  fix_header_checksum(bytes);
  try {
    store::decode_serve_plan(bytes);
    FAIL() << "decode accepted a future format version";
  } catch (const store::StoreError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version"), std::string::npos) << what;
    EXPECT_NE(what.find("99"), std::string::npos) << what;
  }
}

TEST(PlanIo, CorruptHeaderChecksumRejected) {
  auto bytes = store::encode_serve_plan(*small_plan());
  bytes[16] ^= 0x01;  // fingerprint.hi low byte — covered by the checksum
  EXPECT_THROW(store::decode_serve_plan(bytes), store::StoreError);
}

TEST(PlanIo, TruncationAtEverySectionBoundaryRejected) {
  const auto bytes = store::encode_serve_plan(*small_plan());
  std::set<std::size_t> cuts = {bytes.size() - 1};
  for (const SectionExtent& s : section_table(bytes)) {
    cuts.insert(s.offset);                  // section absent entirely
    cuts.insert(s.offset + s.length / 2);   // section half-written
    if (s.length > 0) cuts.insert(s.offset + s.length - 1);  // last byte gone
  }
  for (const std::size_t cut : cuts) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(store::decode_serve_plan(truncated), store::StoreError)
        << "truncated to " << cut << " of " << bytes.size() << " bytes";
  }
}

TEST(PlanIo, FlippedByteInEverySectionNamesTheSection) {
  const auto bytes = store::encode_serve_plan(*small_plan());
  for (const SectionExtent& s : section_table(bytes)) {
    if (s.length == 0) continue;
    auto corrupt = bytes;
    corrupt[s.offset + s.length / 2] ^= 0x40;
    try {
      store::decode_serve_plan(corrupt);
      FAIL() << "decode accepted a corrupt " << store::section_name(s.id)
             << " section";
    } catch (const store::StoreError& e) {
      EXPECT_NE(std::string(e.what()).find(store::section_name(s.id)),
                std::string::npos)
          << "error for section " << store::section_name(s.id)
          << " does not name it: " << e.what();
    }
  }
}

TEST(PlanIo, MissingSectionRejectedByName) {
  auto bytes = store::encode_serve_plan(*small_plan());
  // Relabel the scatter section as a bogus id: table checksum must be fixed
  // for the parser to reach the missing-section check.
  const std::uint32_t count = read_u32(bytes, 12);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = 32 + 32 * static_cast<std::size_t>(i);
    if (read_u32(bytes, at) == store::kScatter) {
      bytes[at] = 0x3f;
      bytes[at + 1] = 0;
    }
  }
  fix_header_checksum(bytes);
  try {
    store::decode_serve_plan(bytes);
    FAIL() << "decode accepted a file without the scatter section";
  } catch (const store::StoreError& e) {
    EXPECT_NE(std::string(e.what()).find("scatter"), std::string::npos)
        << e.what();
  }
}

// --- directory store --------------------------------------------------------

TEST(PlanStore, PublishThenFetchRoundTrips) {
  const std::string dir = scratch_dir("roundtrip");
  store::PlanStore::Config config;
  config.directory = dir;
  config.expected = small_config();
  store::PlanStore plan_store(config);

  const auto plan = small_plan();
  std::string reason;
  ASSERT_TRUE(plan_store.publish(*plan, &reason)) << reason;
  EXPECT_TRUE(fs::exists(plan_store.path_for(plan->fingerprint)));
  ASSERT_EQ(plan_store.list().size(), 1u);
  EXPECT_EQ(plan_store.list()[0], plan->fingerprint);

  const auto loaded = plan_store.fetch(plan->fingerprint, &reason);
  ASSERT_NE(loaded, nullptr) << reason;
  EXPECT_EQ(loaded->fingerprint, plan->fingerprint);
  const store::PlanStore::Stats stats = plan_store.stats();
  EXPECT_EQ(stats.publishes, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.load_failures, 0);
}

TEST(PlanStore, MissLeavesReasonEmptyButCorruptFileReportsWhy) {
  const std::string dir = scratch_dir("corrupt");
  store::PlanStore::Config config;
  config.directory = dir;
  config.expected = small_config();
  store::PlanStore plan_store(config);
  const auto plan = small_plan();

  std::string reason = "";
  EXPECT_EQ(plan_store.fetch(plan->fingerprint, &reason), nullptr);
  EXPECT_TRUE(reason.empty()) << "plain miss must not report a failure";

  ASSERT_TRUE(plan_store.publish(*plan, nullptr));
  auto bytes = read_file(plan_store.path_for(plan->fingerprint));
  bytes[bytes.size() / 2] ^= 0x10;
  write_file(plan_store.path_for(plan->fingerprint), bytes);

  EXPECT_EQ(plan_store.fetch(plan->fingerprint, &reason), nullptr);
  EXPECT_FALSE(reason.empty());
  EXPECT_EQ(plan_store.stats().load_failures, 1);
}

TEST(PlanStore, TruncatedFileNeverThrowsFromFetch) {
  const std::string dir = scratch_dir("truncated");
  store::PlanStore::Config config;
  config.directory = dir;
  config.expected = small_config();
  store::PlanStore plan_store(config);
  const auto plan = small_plan();
  ASSERT_TRUE(plan_store.publish(*plan, nullptr));

  const auto bytes = read_file(plan_store.path_for(plan->fingerprint));
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{10}, bytes.size() / 2, bytes.size() - 1}) {
    write_file(plan_store.path_for(plan->fingerprint),
               std::vector<std::uint8_t>(
                   bytes.begin(), bytes.begin() + static_cast<long>(keep)));
    std::string reason;
    EXPECT_NO_THROW({
      EXPECT_EQ(plan_store.fetch(plan->fingerprint, &reason), nullptr);
    }) << "keep=" << keep;
    EXPECT_FALSE(reason.empty()) << "keep=" << keep;
  }
}

TEST(PlanStore, FileUnderWrongFingerprintNameRejected) {
  const std::string dir = scratch_dir("wrongname");
  store::PlanStore::Config config;
  config.directory = dir;
  config.expected = small_config();
  store::PlanStore plan_store(config);
  const auto plan = small_plan();
  ASSERT_TRUE(plan_store.publish(*plan, nullptr));

  serve::Fingerprint other = plan->fingerprint;
  other.lo ^= 1;
  fs::copy_file(plan_store.path_for(plan->fingerprint),
                plan_store.path_for(other));
  std::string reason;
  EXPECT_EQ(plan_store.fetch(other, &reason), nullptr);
  EXPECT_NE(reason.find("fingerprint"), std::string::npos) << reason;
}

TEST(PlanStore, ConfigMismatchRejectedWithReason) {
  const std::string dir = scratch_dir("confmismatch");
  {
    store::PlanStore::Config config;
    config.directory = dir;
    config.expected = small_config();
    store::PlanStore writer(config);
    ASSERT_TRUE(writer.publish(*small_plan(), nullptr));
  }
  store::PlanStore::Config config;
  config.directory = dir;
  config.expected = small_config();
  config.expected.machine.flop_rate *= 2;  // different simulated machine
  store::PlanStore reader(config);
  const auto plan = small_plan();
  std::string reason;
  EXPECT_EQ(reader.fetch(plan->fingerprint, &reason), nullptr);
  EXPECT_NE(reason.find("configuration"), std::string::npos) << reason;
}

TEST(PlanStore, ReadOnlyStoreRefusesPublishButServesLoads) {
  const std::string dir = scratch_dir("readonly");
  {
    store::PlanStore::Config config;
    config.directory = dir;
    config.expected = small_config();
    store::PlanStore writer(config);
    ASSERT_TRUE(writer.publish(*small_plan(), nullptr));
  }
  store::PlanStore::Config config;
  config.directory = dir;
  config.read_only = true;
  config.expected = small_config();
  store::PlanStore reader(config);
  const auto plan = small_plan();
  std::string reason;
  EXPECT_NE(reader.fetch(plan->fingerprint, &reason), nullptr) << reason;
  const auto other = serve::build_serve_plan(small_matrix(7, 1),
                                             small_config());
  EXPECT_FALSE(reader.publish(*other, &reason));
  EXPECT_NE(reason.find("read-only"), std::string::npos) << reason;
}

// --- disk-loaded plans serve bitwise-identical responses --------------------

TEST(StoreService, DiskWarmDigestsMatchInMemoryAcrossWorkersAndShards) {
  const std::string dir = scratch_dir("digests");
  const serve::WorkloadOptions workload = digest_workload();

  // Baseline: no store at all — every plan built in memory.
  std::uint64_t baseline;
  {
    store::ShardedService service(sharded_config("", 1, 1));
    const serve::WorkloadReport report = run_workload(service, workload);
    ASSERT_EQ(report.ok, workload.requests);
    baseline = report.digest_xor;
  }
  // Populate the store.
  {
    store::ShardedService service(sharded_config(dir, 1, 1));
    const serve::WorkloadReport report = run_workload(service, workload);
    ASSERT_EQ(report.ok, workload.requests);
    EXPECT_EQ(report.digest_xor, baseline);
    EXPECT_GE(service.cache_stats().store_writes,
              static_cast<Count>(workload.structures));
  }
  // Disk-warm restarts across worker and shard counts: every response set
  // must be bitwise identical to the in-memory baseline, and plans must
  // come from the store (no rebuilds).
  for (const int shards : {1, 3}) {
    for (const int workers : {1, 2}) {
      store::ShardedService service(sharded_config(dir, shards, workers));
      const serve::WorkloadReport report = run_workload(service, workload);
      EXPECT_EQ(report.ok, workload.requests)
          << "shards=" << shards << " workers=" << workers;
      EXPECT_EQ(report.digest_xor, baseline)
          << "shards=" << shards << " workers=" << workers;
      const serve::PlanCache::Stats stats = service.cache_stats();
      EXPECT_GE(stats.store_hits, static_cast<Count>(workload.structures))
          << "shards=" << shards << " workers=" << workers;
      EXPECT_EQ(stats.store_writes, 0)
          << "shards=" << shards << " workers=" << workers;
      EXPECT_GE(report.disk, static_cast<Count>(workload.structures));
    }
  }
}

TEST(StoreService, CorruptPlanFileDegradesToRebuildAndRequestsSucceed) {
  const std::string dir = scratch_dir("degrade");
  const serve::WorkloadOptions workload = digest_workload();
  std::uint64_t baseline;
  {
    store::ShardedService service(sharded_config(dir, 1, 1));
    baseline = run_workload(service, workload).digest_xor;
  }
  // Corrupt every stored plan.
  for (const auto& entry : fs::directory_iterator(dir)) {
    auto bytes = read_file(entry.path().string());
    ASSERT_GT(bytes.size(), 100u);
    bytes[bytes.size() - 20] ^= 0xff;
    write_file(entry.path().string(), bytes);
  }
  store::ShardedService service(sharded_config(dir, 1, 1));
  const serve::WorkloadReport report = run_workload(service, workload);
  EXPECT_EQ(report.ok, workload.requests);
  EXPECT_EQ(report.digest_xor, baseline) << "rebuild changed response bytes";
  const serve::PlanCache::Stats stats = service.cache_stats();
  EXPECT_GE(stats.store_load_failures, static_cast<Count>(1));
  EXPECT_FALSE(stats.last_store_error.empty());
  EXPECT_GE(stats.store_writes, static_cast<Count>(1))
      << "rebuilt plans should overwrite the corrupt files";
}

TEST(StoreService, ResponsesReportPlanSourceAndShard) {
  const std::string dir = scratch_dir("source");
  serve::Request request;
  request.matrix = small_matrix(6, 1);
  request.id = "a";
  {
    store::ShardedService service(sharded_config(dir, 2, 1));
    serve::Request first = request;
    const serve::Response r = service.submit(std::move(first)).get();
    ASSERT_TRUE(r.ok()) << r.detail;
    EXPECT_EQ(r.plan_source, serve::PlanSource::kBuilt);
  }
  store::ShardedService service(sharded_config(dir, 2, 1));
  const serve::Fingerprint fp =
      serve::plan_fingerprint(request.matrix.pattern, small_config());
  serve::Request second = request;
  const serve::Response r = service.submit(std::move(second)).get();
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.plan_source, serve::PlanSource::kDisk);
  EXPECT_EQ(r.shard, service.shard_of(fp));
  serve::Request third = request;
  const serve::Response again = service.submit(std::move(third)).get();
  EXPECT_EQ(again.plan_source, serve::PlanSource::kMemory);
  EXPECT_TRUE(again.cache_hit);
}

// --- admission: quotas, tenants, sharding -----------------------------------

TEST(Admission, TokenBucketEnforcesRateAndBurst) {
  store::TokenBucket bucket(/*rate_per_s=*/2.0, /*burst=*/3.0);
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_FALSE(bucket.try_take(0.0)) << "burst exhausted";
  EXPECT_FALSE(bucket.try_take(0.4)) << "only 0.8 tokens accrued";
  EXPECT_TRUE(bucket.try_take(0.6)) << "1.2 tokens accrued";
  // Refill caps at burst.
  EXPECT_TRUE(bucket.try_take(100.0));
  EXPECT_TRUE(bucket.try_take(100.0));
  EXPECT_TRUE(bucket.try_take(100.0));
  EXPECT_FALSE(bucket.try_take(100.0));
}

TEST(Admission, ZeroRateMeansUnlimited) {
  store::TokenBucket bucket(0.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_take(0.0));
}

TEST(Admission, TenantTableAppliesOverridesAndReportsReasons) {
  store::TenantQuota unlimited;
  std::map<std::string, store::TenantQuota> overrides;
  overrides["limited"] = {/*rate_per_s=*/1.0, /*burst=*/1.0};
  store::TenantTable table(unlimited, overrides);

  EXPECT_FALSE(table.try_admit_at("free", 0.0).has_value());
  EXPECT_FALSE(table.try_admit_at("limited", 0.0).has_value());
  const auto reject = table.try_admit_at("limited", 0.0);
  ASSERT_TRUE(reject.has_value());
  EXPECT_NE(reject->find("limited"), std::string::npos) << *reject;
  EXPECT_NE(reject->find("quota"), std::string::npos) << *reject;
  EXPECT_FALSE(table.try_admit_at("limited", 1.5).has_value())
      << "token refilled after 1.5s at 1/s";

  table.record("free", true, 0.25);
  const auto snapshot = table.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].tenant, "free");
  EXPECT_EQ(snapshot[0].completed, 1);
  EXPECT_EQ(snapshot[1].rejected, 1);
}

TEST(Admission, QuotaRejectionFulfilsFutureWithoutTouchingShards) {
  store::ShardedService::Config config = sharded_config("", 1, 1);
  config.default_quota = {/*rate_per_s=*/1e-9, /*burst=*/1.0};
  store::ShardedService service(config);
  serve::Request first;
  first.matrix = small_matrix(6, 1);
  first.tenant = "t0";
  ASSERT_TRUE(service.submit(std::move(first)).get().ok());
  serve::Request second;
  second.matrix = small_matrix(6, 2);
  second.tenant = "t0";
  const serve::Response r = service.submit(std::move(second)).get();
  EXPECT_EQ(r.status, serve::Status::kRejected);
  EXPECT_EQ(r.tenant, "t0");
  EXPECT_NE(r.detail.find("quota"), std::string::npos) << r.detail;
  EXPECT_EQ(service.quota_rejected(), 1);
  EXPECT_EQ(service.shard(0).counters().submitted, 1)
      << "rejected request must not reach a shard";
}

TEST(Admission, ShardRoutingIsDeterministicInRangeAndSpreads) {
  std::set<int> seen;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const int s = store::shard_of_fingerprint(i * 0x9e37, i ^ 0xabcd, 4);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
    EXPECT_EQ(s, store::shard_of_fingerprint(i * 0x9e37, i ^ 0xabcd, 4));
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 4u) << "64 fingerprints should touch all 4 shards";
  EXPECT_EQ(store::shard_of_fingerprint(123, 456, 1), 0);
}

// --- SLO-aware priority aging -----------------------------------------------

TEST(Aging, SelectQueueClassPreventsStarvationUnderStrictPriorityStorm) {
  // No aging: strict priority, first nonempty class wins.
  {
    const double ages[2] = {0.1, 60.0};
    EXPECT_EQ(serve::select_queue_class(ages, 2, 0.0), 0);
  }
  // Aging on: the batch head has starved past the threshold and is older
  // than the interactive head — it wins.
  {
    const double ages[2] = {0.1, 60.0};
    EXPECT_EQ(serve::select_queue_class(ages, 2, 1.0), 1);
  }
  // Interactive past the threshold too and older: interactive wins.
  {
    const double ages[2] = {120.0, 60.0};
    EXPECT_EQ(serve::select_queue_class(ages, 2, 1.0), 0);
  }
  // Batch below the threshold: strict priority applies.
  {
    const double ages[2] = {0.1, 0.5};
    EXPECT_EQ(serve::select_queue_class(ages, 2, 1.0), 0);
  }
  // Empty interactive queue: batch serves regardless of age.
  {
    const double ages[2] = {-1.0, 0.01};
    EXPECT_EQ(serve::select_queue_class(ages, 2, 1.0), 1);
  }
  // Everything empty.
  {
    const double ages[2] = {-1.0, -1.0};
    EXPECT_EQ(serve::select_queue_class(ages, 2, 1.0), -1);
  }
}

TEST(Aging, AgedBatchRequestOvertakesInteractiveInLiveService) {
  // Admit-only service (workers=0): queue a batch request, let it age past
  // the threshold, storm interactive requests, then start draining by
  // shutdown — instead we use a 1-worker service gated by a slow first
  // request to give the batch head time to age.
  serve::Service::Config config;
  config.workers = 0;  // admit-only: requests queue, nothing drains
  config.plan = small_config();
  config.age_promote_seconds = 0.01;
  serve::Service service(config);
  serve::Request batch;
  batch.matrix = small_matrix(6, 1);
  batch.priority = serve::Priority::kBatch;
  auto batch_future = service.submit(std::move(batch));
  // Nothing processes; shutdown fails them. This test only checks the pure
  // selector above plus counter plumbing of a real drain below.
  service.shutdown();
  EXPECT_EQ(batch_future.get().status, serve::Status::kShutdown);
}

// --- tenant metrics through the sharded front end ---------------------------

TEST(StoreService, PerTenantLatencyQuantilesExported) {
  store::ShardedService service(sharded_config("", 2, 1));
  const serve::WorkloadOptions workload = digest_workload();
  const serve::WorkloadReport report = run_workload(service, workload);
  ASSERT_EQ(report.ok, workload.requests);
  service.shutdown();

  const auto tenants = service.tenants().snapshot();
  ASSERT_GE(tenants.size(), 2u) << "two tenants should have traffic";
  Count completed = 0;
  for (const auto& t : tenants) completed += t.completed;
  EXPECT_EQ(completed, report.ok);

  psi::obs::MetricsRegistry registry;
  service.fold_metrics(registry);
  const std::string ndjson = registry.to_ndjson();
  EXPECT_NE(ndjson.find("tenant_total_p99_s"), std::string::npos);
  EXPECT_NE(ndjson.find("tenant_total_p999_s"), std::string::npos);
  EXPECT_NE(ndjson.find("\"tenant\":\"t0\""), std::string::npos);
  EXPECT_NE(ndjson.find("serve_quota_rejected"), std::string::npos);
}
