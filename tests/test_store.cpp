/// \file test_store.cpp
/// \brief psi::store tests: psi-plan v1 round-trip fidelity, robustness of
/// the loader against truncated/corrupt/version-mismatched files (every
/// failure is a precise StoreError, never a crash), the directory store's
/// read-through/write-through behaviour with rebuild-on-corruption, bitwise
/// digest equality of disk-loaded vs freshly built plans across worker and
/// shard counts, and the multi-tenant admission primitives (token quotas,
/// SLO priority aging, fingerprint sharding).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "serve/plan_cache.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "sparse/generators.hpp"
#include "store/admission.hpp"
#include "store/filesystem.hpp"
#include "store/plan_io.hpp"
#include "store/plan_store.hpp"
#include "store/sharded_service.hpp"

namespace serve = psi::serve;
namespace store = psi::store;
namespace fs = std::filesystem;
using psi::Count;
using psi::GeneratedMatrix;
using psi::Int;
using psi::SparseMatrix;

namespace {

serve::PlanConfig small_config() {
  serve::PlanConfig config;
  config.grid_rows = 2;
  config.grid_cols = 2;
  return config;
}

SparseMatrix small_matrix(Int nx, std::uint64_t value_seed) {
  GeneratedMatrix gen = psi::laplacian2d(nx, nx, 1);
  psi::assign_dd_values(gen.matrix, value_seed, psi::ValueKind::kSymmetric);
  return gen.matrix;
}

std::shared_ptr<const serve::ServePlan> small_plan(Int nx = 6) {
  return serve::build_serve_plan(small_matrix(nx, 1), small_config());
}

/// Fresh scratch directory under the build tree's cwd.
std::string scratch_dir(const std::string& name) {
  const std::string dir = "store_test_scratch/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

std::uint32_t read_u32(const std::vector<std::uint8_t>& b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(b[at + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

std::uint64_t read_u64(const std::vector<std::uint8_t>& b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(b[at + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

void write_u64(std::vector<std::uint8_t>& b, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    b[at + static_cast<std::size_t>(i)] = (v >> (8 * i)) & 0xff;
}

struct SectionExtent {
  std::uint32_t id;
  std::size_t offset;
  std::size_t length;
};

/// Parses the section table straight off the documented v1 layout.
std::vector<SectionExtent> section_table(const std::vector<std::uint8_t>& b) {
  const std::uint32_t count = read_u32(b, 12);
  std::vector<SectionExtent> out;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = 32 + 32 * static_cast<std::size_t>(i);
    out.push_back({read_u32(b, at),
                   static_cast<std::size_t>(read_u64(b, at + 8)),
                   static_cast<std::size_t>(read_u64(b, at + 16))});
  }
  return out;
}

/// Recomputes and patches the header/table checksum (so tests can tamper
/// with header fields and still reach the field-specific error).
void fix_header_checksum(std::vector<std::uint8_t>& b) {
  const std::uint32_t count = read_u32(b, 12);
  const std::size_t table_end = 32 + 32 * static_cast<std::size_t>(count);
  serve::FingerprintHasher hasher;
  hasher.mix_bytes(b.data(), table_end);
  write_u64(b, table_end, hasher.finish().lo);
}

serve::WorkloadOptions digest_workload() {
  serve::WorkloadOptions workload;
  workload.structures = 3;
  workload.nx = 6;
  workload.requests = 10;
  workload.window = 3;
  workload.tenants = 2;
  workload.seed = 11;
  return workload;
}

store::ShardedService::Config sharded_config(const std::string& plan_dir,
                                             int shards, int workers) {
  store::ShardedService::Config config;
  config.shards = shards;
  config.service.workers = workers;
  config.service.plan = small_config();
  config.plan_dir = plan_dir;
  return config;
}

}  // namespace

// --- psi-plan v1 round trip -------------------------------------------------

TEST(PlanIo, RoundTripReconstructsEveryPlanComponent) {
  const auto plan = small_plan();
  const std::vector<std::uint8_t> bytes = store::encode_serve_plan(*plan);
  const auto loaded = store::decode_serve_plan(bytes);

  EXPECT_EQ(loaded->fingerprint, plan->fingerprint);
  EXPECT_EQ(store::encode_plan_config(loaded->config),
            store::encode_plan_config(plan->config));

  // Symbolic pipeline output.
  EXPECT_EQ(loaded->analysis.matrix.pattern.col_ptr,
            plan->analysis.matrix.pattern.col_ptr);
  EXPECT_EQ(loaded->analysis.matrix.pattern.row_idx,
            plan->analysis.matrix.pattern.row_idx);
  EXPECT_TRUE(loaded->analysis.matrix.values.empty());
  EXPECT_EQ(loaded->analysis.perm.old_to_new(),
            plan->analysis.perm.old_to_new());
  EXPECT_EQ(loaded->analysis.etree, plan->analysis.etree);
  EXPECT_EQ(loaded->analysis.counts, plan->analysis.counts);
  EXPECT_EQ(loaded->analysis.blocks.part.starts,
            plan->analysis.blocks.part.starts);
  EXPECT_EQ(loaded->analysis.blocks.part.sup_of_col,
            plan->analysis.blocks.part.sup_of_col);
  EXPECT_EQ(loaded->analysis.blocks.parent, plan->analysis.blocks.parent);
  EXPECT_EQ(loaded->analysis.blocks.struct_of,
            plan->analysis.blocks.struct_of);

  // Communication plan: index tables and every tree's shape.
  ASSERT_EQ(loaded->plan.supernode_count(), plan->plan.supernode_count());
  EXPECT_EQ(loaded->plan.kt_count(), plan->plan.kt_count());
  for (std::int64_t t = 0; t < plan->plan.kt_count(); ++t) {
    EXPECT_EQ(loaded->plan.row_ordinal(t), plan->plan.row_ordinal(t));
    EXPECT_EQ(loaded->plan.col_ordinal(t), plan->plan.col_ordinal(t));
  }
  for (Int k = 0; k < plan->plan.supernode_count(); ++k) {
    const psi::pselinv::SupernodePlan& a = plan->plan.supernode(k);
    const psi::pselinv::SupernodePlan& b = loaded->plan.supernode(k);
    EXPECT_EQ(a.prows, b.prows);
    EXPECT_EQ(a.pcols, b.pcols);
    EXPECT_EQ(a.prow_counts, b.prow_counts);
    EXPECT_EQ(a.pcol_counts, b.pcol_counts);
    EXPECT_EQ(a.cross_dst, b.cross_dst);
    EXPECT_EQ(a.cross_src, b.cross_src);
    EXPECT_EQ(a.diag_bcast.participants(), b.diag_bcast.participants());
    EXPECT_EQ(a.col_reduce.participants(), b.col_reduce.participants());
    ASSERT_EQ(a.col_bcast.size(), b.col_bcast.size());
    for (std::size_t t = 0; t < a.col_bcast.size(); ++t) {
      EXPECT_EQ(a.col_bcast[t].participants(),
                b.col_bcast[t].participants());
      for (int rank : a.col_bcast[t].participants())
        EXPECT_EQ(a.col_bcast[t].parent_of(rank),
                  b.col_bcast[t].parent_of(rank));
    }
  }

  // Cached trace artifacts and the scatter map.
  EXPECT_EQ(loaded->trace_makespan, plan->trace_makespan);
  EXPECT_EQ(loaded->trace_events, plan->trace_events);
  ASSERT_EQ(loaded->scatter.size(), plan->scatter.size());
  for (std::size_t p = 0; p < plan->scatter.size(); ++p) {
    EXPECT_EQ(loaded->scatter[p].kind, plan->scatter[p].kind);
    EXPECT_EQ(loaded->scatter[p].sup, plan->scatter[p].sup);
    EXPECT_EQ(loaded->scatter[p].row, plan->scatter[p].row);
    EXPECT_EQ(loaded->scatter[p].col, plan->scatter[p].col);
  }
  EXPECT_GT(loaded->bytes, 0u);
}

TEST(PlanIo, EncodeIsDeterministic) {
  const auto plan = small_plan();
  EXPECT_EQ(store::encode_serve_plan(*plan), store::encode_serve_plan(*plan));
}

TEST(PlanIo, PeekFingerprintReadsHeaderOnly) {
  const auto plan = small_plan();
  const std::vector<std::uint8_t> bytes = store::encode_serve_plan(*plan);
  EXPECT_EQ(store::peek_fingerprint(bytes.data(), bytes.size()),
            plan->fingerprint);
}

// --- loader robustness ------------------------------------------------------

TEST(PlanIo, ZeroLengthAndTinyFilesRejected) {
  for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                 std::size_t{7}, std::size_t{39}}) {
    const std::vector<std::uint8_t> bytes(size, 0);
    EXPECT_THROW(store::decode_serve_plan(bytes), store::StoreError)
        << "size " << size;
  }
}

TEST(PlanIo, WrongMagicRejected) {
  auto bytes = store::encode_serve_plan(*small_plan());
  bytes[0] ^= 0xff;
  try {
    store::decode_serve_plan(bytes);
    FAIL() << "decode accepted a wrong magic";
  } catch (const store::StoreError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(PlanIo, VersionMismatchRejectedWithBothVersions) {
  auto bytes = store::encode_serve_plan(*small_plan());
  bytes[8] = 99;  // format_version
  fix_header_checksum(bytes);
  try {
    store::decode_serve_plan(bytes);
    FAIL() << "decode accepted a future format version";
  } catch (const store::StoreError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version"), std::string::npos) << what;
    EXPECT_NE(what.find("99"), std::string::npos) << what;
  }
}

TEST(PlanIo, CorruptHeaderChecksumRejected) {
  auto bytes = store::encode_serve_plan(*small_plan());
  bytes[16] ^= 0x01;  // fingerprint.hi low byte — covered by the checksum
  EXPECT_THROW(store::decode_serve_plan(bytes), store::StoreError);
}

TEST(PlanIo, TruncationAtEverySectionBoundaryRejected) {
  const auto bytes = store::encode_serve_plan(*small_plan());
  std::set<std::size_t> cuts = {bytes.size() - 1};
  for (const SectionExtent& s : section_table(bytes)) {
    cuts.insert(s.offset);                  // section absent entirely
    cuts.insert(s.offset + s.length / 2);   // section half-written
    if (s.length > 0) cuts.insert(s.offset + s.length - 1);  // last byte gone
  }
  for (const std::size_t cut : cuts) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(store::decode_serve_plan(truncated), store::StoreError)
        << "truncated to " << cut << " of " << bytes.size() << " bytes";
  }
}

TEST(PlanIo, FlippedByteInEverySectionNamesTheSection) {
  const auto bytes = store::encode_serve_plan(*small_plan());
  for (const SectionExtent& s : section_table(bytes)) {
    if (s.length == 0) continue;
    auto corrupt = bytes;
    corrupt[s.offset + s.length / 2] ^= 0x40;
    try {
      store::decode_serve_plan(corrupt);
      FAIL() << "decode accepted a corrupt " << store::section_name(s.id)
             << " section";
    } catch (const store::StoreError& e) {
      EXPECT_NE(std::string(e.what()).find(store::section_name(s.id)),
                std::string::npos)
          << "error for section " << store::section_name(s.id)
          << " does not name it: " << e.what();
    }
  }
}

TEST(PlanIo, MissingSectionRejectedByName) {
  auto bytes = store::encode_serve_plan(*small_plan());
  // Relabel the scatter section as a bogus id: table checksum must be fixed
  // for the parser to reach the missing-section check.
  const std::uint32_t count = read_u32(bytes, 12);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = 32 + 32 * static_cast<std::size_t>(i);
    if (read_u32(bytes, at) == store::kScatter) {
      bytes[at] = 0x3f;
      bytes[at + 1] = 0;
    }
  }
  fix_header_checksum(bytes);
  try {
    store::decode_serve_plan(bytes);
    FAIL() << "decode accepted a file without the scatter section";
  } catch (const store::StoreError& e) {
    EXPECT_NE(std::string(e.what()).find("scatter"), std::string::npos)
        << e.what();
  }
}

// --- directory store --------------------------------------------------------

TEST(PlanStore, PublishThenFetchRoundTrips) {
  const std::string dir = scratch_dir("roundtrip");
  store::PlanStore::Config config;
  config.directory = dir;
  config.expected = small_config();
  store::PlanStore plan_store(config);

  const auto plan = small_plan();
  std::string reason;
  ASSERT_TRUE(plan_store.publish(*plan, &reason)) << reason;
  EXPECT_TRUE(fs::exists(plan_store.path_for(plan->fingerprint)));
  ASSERT_EQ(plan_store.list().size(), 1u);
  EXPECT_EQ(plan_store.list()[0], plan->fingerprint);

  const auto loaded = plan_store.fetch(plan->fingerprint, &reason);
  ASSERT_NE(loaded, nullptr) << reason;
  EXPECT_EQ(loaded->fingerprint, plan->fingerprint);
  const store::PlanStore::Stats stats = plan_store.stats();
  EXPECT_EQ(stats.publishes, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.load_failures, 0);
}

TEST(PlanStore, MissLeavesReasonEmptyButCorruptFileReportsWhy) {
  const std::string dir = scratch_dir("corrupt");
  store::PlanStore::Config config;
  config.directory = dir;
  config.expected = small_config();
  store::PlanStore plan_store(config);
  const auto plan = small_plan();

  std::string reason = "";
  EXPECT_EQ(plan_store.fetch(plan->fingerprint, &reason), nullptr);
  EXPECT_TRUE(reason.empty()) << "plain miss must not report a failure";

  ASSERT_TRUE(plan_store.publish(*plan, nullptr));
  auto bytes = read_file(plan_store.path_for(plan->fingerprint));
  bytes[bytes.size() / 2] ^= 0x10;
  write_file(plan_store.path_for(plan->fingerprint), bytes);

  EXPECT_EQ(plan_store.fetch(plan->fingerprint, &reason), nullptr);
  EXPECT_FALSE(reason.empty());
  EXPECT_EQ(plan_store.stats().load_failures, 1);
}

TEST(PlanStore, TruncatedFileNeverThrowsFromFetch) {
  const std::string dir = scratch_dir("truncated");
  store::PlanStore::Config config;
  config.directory = dir;
  config.expected = small_config();
  store::PlanStore plan_store(config);
  const auto plan = small_plan();
  ASSERT_TRUE(plan_store.publish(*plan, nullptr));

  const auto bytes = read_file(plan_store.path_for(plan->fingerprint));
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{10}, bytes.size() / 2, bytes.size() - 1}) {
    write_file(plan_store.path_for(plan->fingerprint),
               std::vector<std::uint8_t>(
                   bytes.begin(), bytes.begin() + static_cast<long>(keep)));
    std::string reason;
    EXPECT_NO_THROW({
      EXPECT_EQ(plan_store.fetch(plan->fingerprint, &reason), nullptr);
    }) << "keep=" << keep;
    EXPECT_FALSE(reason.empty()) << "keep=" << keep;
  }
}

TEST(PlanStore, FileUnderWrongFingerprintNameRejected) {
  const std::string dir = scratch_dir("wrongname");
  store::PlanStore::Config config;
  config.directory = dir;
  config.expected = small_config();
  store::PlanStore plan_store(config);
  const auto plan = small_plan();
  ASSERT_TRUE(plan_store.publish(*plan, nullptr));

  serve::Fingerprint other = plan->fingerprint;
  other.lo ^= 1;
  fs::copy_file(plan_store.path_for(plan->fingerprint),
                plan_store.path_for(other));
  std::string reason;
  EXPECT_EQ(plan_store.fetch(other, &reason), nullptr);
  EXPECT_NE(reason.find("fingerprint"), std::string::npos) << reason;
}

TEST(PlanStore, ConfigMismatchRejectedWithReason) {
  const std::string dir = scratch_dir("confmismatch");
  {
    store::PlanStore::Config config;
    config.directory = dir;
    config.expected = small_config();
    store::PlanStore writer(config);
    ASSERT_TRUE(writer.publish(*small_plan(), nullptr));
  }
  store::PlanStore::Config config;
  config.directory = dir;
  config.expected = small_config();
  config.expected.machine.flop_rate *= 2;  // different simulated machine
  store::PlanStore reader(config);
  const auto plan = small_plan();
  std::string reason;
  EXPECT_EQ(reader.fetch(plan->fingerprint, &reason), nullptr);
  EXPECT_NE(reason.find("configuration"), std::string::npos) << reason;
}

TEST(PlanStore, ReadOnlyStoreRefusesPublishButServesLoads) {
  const std::string dir = scratch_dir("readonly");
  {
    store::PlanStore::Config config;
    config.directory = dir;
    config.expected = small_config();
    store::PlanStore writer(config);
    ASSERT_TRUE(writer.publish(*small_plan(), nullptr));
  }
  store::PlanStore::Config config;
  config.directory = dir;
  config.read_only = true;
  config.expected = small_config();
  store::PlanStore reader(config);
  const auto plan = small_plan();
  std::string reason;
  EXPECT_NE(reader.fetch(plan->fingerprint, &reason), nullptr) << reason;
  const auto other = serve::build_serve_plan(small_matrix(7, 1),
                                             small_config());
  EXPECT_FALSE(reader.publish(*other, &reason));
  EXPECT_NE(reason.find("read-only"), std::string::npos) << reason;
}

// --- filesystem seam: retries, durability ordering, quarantine --------------

namespace {

/// Scripted decorator over the real filesystem: fails the next N reads with
/// a transient error, optionally fails the next rename, and logs every
/// mutation in call order (the durability-ordering test asserts on it).
class ScriptedFileSystem : public store::FileSystem {
 public:
  std::atomic<int> fail_reads{0};
  std::atomic<int> fail_renames{0};

  std::vector<std::string> ops() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ops_;
  }

  ReadResult read_file(const std::string& path,
                       std::vector<std::uint8_t>& out,
                       std::string* error) override {
    if (fail_reads.fetch_sub(1) > 0) {
      if (error != nullptr) *error = "injected transient read error";
      return ReadResult::kError;
    }
    fail_reads.fetch_add(1);  // undo the decrement below zero
    return store::real_filesystem().read_file(path, out, error);
  }
  bool write_file(const std::string& path, const void* data, std::size_t size,
                  bool sync, std::string* error) override {
    log("write " + std::string(sync ? "sync " : "nosync ") + path);
    return store::real_filesystem().write_file(path, data, size, sync, error);
  }
  bool rename_file(const std::string& from, const std::string& to,
                   std::string* error) override {
    if (fail_renames.fetch_sub(1) > 0) {
      if (error != nullptr) *error = "injected rename failure";
      return false;
    }
    fail_renames.fetch_add(1);
    log("rename " + from + " -> " + to);
    return store::real_filesystem().rename_file(from, to, error);
  }
  bool remove_file(const std::string& path, std::string* error) override {
    log("remove " + path);
    return store::real_filesystem().remove_file(path, error);
  }
  bool create_directories(const std::string& path,
                          std::string* error) override {
    return store::real_filesystem().create_directories(path, error);
  }
  bool list_dir(const std::string& dir, std::vector<std::string>& out,
                std::string* error) override {
    return store::real_filesystem().list_dir(dir, out, error);
  }
  bool sync_dir(const std::string& dir, std::string* error) override {
    log("sync_dir " + dir);
    return store::real_filesystem().sync_dir(dir, error);
  }

 private:
  void log(std::string op) {
    std::lock_guard<std::mutex> lock(mutex_);
    ops_.push_back(std::move(op));
  }
  mutable std::mutex mutex_;
  std::vector<std::string> ops_;
};

store::PlanStore::Config seamed_config(const std::string& dir,
                                       store::FileSystem* fs) {
  store::PlanStore::Config config;
  config.directory = dir;
  config.expected = small_config();
  config.fs = fs;
  config.scan_on_open = false;
  config.retry_backoff_seconds = 0.0;  // no sleeping in tests
  return config;
}

}  // namespace

TEST(PlanStoreRetry, TransientReadErrorsAreRetriedThenSucceed) {
  const std::string dir = scratch_dir("retry_ok");
  const auto plan = small_plan();
  {
    store::PlanStore writer(seamed_config(dir, nullptr));
    ASSERT_TRUE(writer.publish(*plan, nullptr));
  }
  ScriptedFileSystem fs;
  store::PlanStore reader(seamed_config(dir, &fs));
  fs.fail_reads = 2;  // both extra attempts are consumed, the third succeeds
  std::string reason;
  const auto loaded = reader.fetch(plan->fingerprint, &reason);
  ASSERT_NE(loaded, nullptr) << reason;
  EXPECT_EQ(loaded->fingerprint, plan->fingerprint);
  const store::PlanStore::Stats stats = reader.stats();
  EXPECT_EQ(stats.read_retries, 2);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.load_failures, 0);
}

TEST(PlanStoreRetry, ExhaustedRetriesReportThePreciseFailure) {
  const std::string dir = scratch_dir("retry_fail");
  const auto plan = small_plan();
  {
    store::PlanStore writer(seamed_config(dir, nullptr));
    ASSERT_TRUE(writer.publish(*plan, nullptr));
  }
  ScriptedFileSystem fs;
  store::PlanStore reader(seamed_config(dir, &fs));
  fs.fail_reads = 1000;  // never recovers
  std::string reason;
  EXPECT_EQ(reader.fetch(plan->fingerprint, &reason), nullptr);
  EXPECT_NE(reason.find("3 attempts"), std::string::npos) << reason;
  EXPECT_NE(reason.find("injected transient read error"), std::string::npos)
      << reason;
  const store::PlanStore::Stats stats = reader.stats();
  EXPECT_EQ(stats.read_retries, 2);  // Config::read_retries extra attempts
  EXPECT_EQ(stats.load_failures, 1);
}

TEST(PlanStoreDurability, PublishSyncsDataBeforeRenameAndDirectoryAfter) {
  const std::string dir = scratch_dir("fsync_order");
  ScriptedFileSystem fs;
  store::PlanStore plan_store(seamed_config(dir, &fs));
  const auto plan = small_plan();
  std::string reason;
  ASSERT_TRUE(plan_store.publish(*plan, &reason)) << reason;

  // Crash-consistency order: synced write of the tmp name, atomic rename
  // over the live name, then the directory entry flushed.
  const std::string final_path = plan_store.path_for(plan->fingerprint);
  const std::string tmp_path = final_path + ".tmp";
  const std::vector<std::string> ops = fs.ops();
  std::size_t write_at = ops.size(), rename_at = ops.size(),
              sync_at = ops.size();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i] == "write sync " + tmp_path) write_at = i;
    if (ops[i] == "rename " + tmp_path + " -> " + final_path) rename_at = i;
    if (ops[i] == "sync_dir " + dir) sync_at = i;
  }
  ASSERT_LT(write_at, ops.size()) << "tmp write missing or not synced";
  ASSERT_LT(rename_at, ops.size()) << "rename missing";
  ASSERT_LT(sync_at, ops.size()) << "directory sync missing";
  EXPECT_LT(write_at, rename_at) << "data must be durable before the rename";
  EXPECT_LT(rename_at, sync_at) << "directory sync must follow the rename";
  EXPECT_FALSE(fs::exists(tmp_path)) << "tmp name left behind";
  EXPECT_NE(plan_store.fetch(plan->fingerprint, nullptr), nullptr);
}

TEST(PlanStoreDurability, FailedRenameCleansUpTmpAndReportsReason) {
  const std::string dir = scratch_dir("rename_fail");
  ScriptedFileSystem fs;
  store::PlanStore plan_store(seamed_config(dir, &fs));
  const auto plan = small_plan();
  fs.fail_renames = 1;
  std::string reason;
  EXPECT_FALSE(plan_store.publish(*plan, &reason));
  EXPECT_NE(reason.find("injected rename failure"), std::string::npos)
      << reason;
  EXPECT_FALSE(fs::exists(plan_store.path_for(plan->fingerprint) + ".tmp"))
      << "failed publish left its tmp file behind";
  EXPECT_EQ(plan_store.stats().publish_failures, 1);
  // The failure is not sticky: the next publish lands.
  ASSERT_TRUE(plan_store.publish(*plan, &reason)) << reason;
  EXPECT_NE(plan_store.fetch(plan->fingerprint, nullptr), nullptr);
}

TEST(PlanStoreScan, QuarantinesDamagedAndForeignFilesWithPreciseReasons) {
  const std::string dir = scratch_dir("quarantine");
  store::PlanStore plan_store(seamed_config(dir, nullptr));

  // 1. A valid plan (stays).
  const auto valid = small_plan(6);
  ASSERT_TRUE(plan_store.publish(*valid, nullptr));
  // 2. A valid plan built under a different configuration (stays: it
  //    belongs to a sibling deployment sharing the directory).
  serve::PlanConfig other_config = small_config();
  other_config.machine.flop_rate *= 2;
  const auto foreign_plan =
      serve::build_serve_plan(small_matrix(7, 1), other_config);
  ASSERT_TRUE(plan_store.publish(*foreign_plan, nullptr));
  // 3. An orphaned temporary from an interrupted publish.
  write_file(dir + "/0123456789abcdef0123456789abcdef.plan.tmp",
             {1, 2, 3, 4});
  // 4. A foreign file that is not a plan at all.
  write_file(dir + "/README.txt", {'h', 'i'});
  // 5. A .plan whose stem is not a fingerprint.
  write_file(dir + "/nothex.plan", {5, 6, 7});
  // 6. Garbage bytes under a well-formed plan name (torn/corrupt write).
  const auto unpublished = serve::build_serve_plan(small_matrix(9, 1),
                                                   small_config());
  const std::vector<std::uint8_t> junk(64, 0xab);
  write_file(plan_store.path_for(unpublished->fingerprint), junk);
  // 7. Valid plan bytes filed under the WRONG fingerprint name.
  serve::Fingerprint wrong = valid->fingerprint;
  wrong.lo ^= 1;
  write_file(plan_store.path_for(wrong),
             read_file(plan_store.path_for(valid->fingerprint)));

  const store::PlanStore::ScanReport report = plan_store.scan();
  EXPECT_EQ(report.scanned, 7);
  EXPECT_EQ(report.plans_ok, 1);
  EXPECT_EQ(report.config_mismatch, 1);
  EXPECT_EQ(report.quarantined, 5);
  ASSERT_EQ(report.quarantined_files.size(), 5u);
  // Reasons are precise, per category.
  std::map<std::string, std::string> reasons(report.quarantined_files.begin(),
                                             report.quarantined_files.end());
  EXPECT_NE(reasons["0123456789abcdef0123456789abcdef.plan.tmp"].find(
                "orphaned temporary"),
            std::string::npos);
  EXPECT_NE(reasons["README.txt"].find("foreign file"), std::string::npos);
  EXPECT_NE(reasons["nothex.plan"].find("not a 32-hex-digit fingerprint"),
            std::string::npos);
  EXPECT_NE(reasons[unpublished->fingerprint.hex() + ".plan"].find(
                "corrupt plan"),
            std::string::npos);
  EXPECT_NE(reasons[wrong.hex() + ".plan"].find("fingerprint mismatch"),
            std::string::npos);

  // Quarantine moves, never deletes: every damaged file sits intact in
  // quarantine/ next to its .reason note; the survivors stay serveable.
  const std::string qdir = plan_store.quarantine_dir();
  for (const auto& [name, reason] : report.quarantined_files) {
    EXPECT_TRUE(fs::exists(qdir + "/" + name)) << name;
    EXPECT_TRUE(fs::exists(qdir + "/" + name + ".reason")) << name;
    EXPECT_FALSE(fs::exists(dir + "/" + name)) << name << " left in place";
  }
  EXPECT_EQ(read_file(qdir + "/" + unpublished->fingerprint.hex() + ".plan"),
            junk)
      << "quarantine changed the evidence bytes";
  EXPECT_NE(plan_store.fetch(valid->fingerprint, nullptr), nullptr);
  EXPECT_EQ(plan_store.stats().quarantined, 5);

  // Idempotent: a second scan over the cleaned directory moves nothing.
  const store::PlanStore::ScanReport rescan = plan_store.scan();
  EXPECT_EQ(rescan.scanned, 2);
  EXPECT_EQ(rescan.plans_ok, 1);
  EXPECT_EQ(rescan.config_mismatch, 1);
  EXPECT_EQ(rescan.quarantined, 0);
}

TEST(PlanStoreScan, RepeatedQuarantineOfTheSameNameKeepsEarlierEvidence) {
  const std::string dir = scratch_dir("quarantine_twice");
  store::PlanStore plan_store(seamed_config(dir, nullptr));
  const std::string name = "nothex.plan";
  write_file(dir + "/" + name, {1, 1, 1});
  ASSERT_EQ(plan_store.scan().quarantined, 1);
  write_file(dir + "/" + name, {2, 2, 2});
  ASSERT_EQ(plan_store.scan().quarantined, 1);
  const std::string qdir = plan_store.quarantine_dir();
  EXPECT_EQ(read_file(qdir + "/" + name),
            (std::vector<std::uint8_t>{1, 1, 1}));
  EXPECT_EQ(read_file(qdir + "/" + name + ".1"),
            (std::vector<std::uint8_t>{2, 2, 2}));
}

TEST(PlanStoreScan, ReadOnlyStoreNeverMovesFiles) {
  const std::string dir = scratch_dir("readonly_scan");
  write_file(dir + "/README.txt", {'h', 'i'});
  store::PlanStore::Config config = seamed_config(dir, nullptr);
  config.read_only = true;
  config.scan_on_open = true;  // must be ignored for read-only stores
  store::PlanStore plan_store(config);
  const store::PlanStore::ScanReport report = plan_store.scan();
  EXPECT_EQ(report.scanned, 0);
  EXPECT_EQ(report.quarantined, 0);
  EXPECT_TRUE(fs::exists(dir + "/README.txt"))
      << "read-only store moved a file it does not own";
  EXPECT_FALSE(fs::exists(plan_store.quarantine_dir()));
}

TEST(PlanStoreRace, ReadOnlyReaderNeverSeesATornPlanDuringRepublish) {
  // Satellite regression: a read-only store racing a writer republishing
  // the same fingerprint must always see the old or the new file as a unit
  // (atomic rename), never a torn read.
  const std::string dir = scratch_dir("race");
  const auto plan = small_plan();
  store::PlanStore writer(seamed_config(dir, nullptr));
  ASSERT_TRUE(writer.publish(*plan, nullptr));

  store::PlanStore::Config reader_config = seamed_config(dir, nullptr);
  reader_config.read_only = true;
  reader_config.read_retries = 0;  // any transient wobble would be visible
  store::PlanStore reader(reader_config);

  std::atomic<bool> stop{false};
  std::thread republisher([&] {
    for (int i = 0; i < 50; ++i) ASSERT_TRUE(writer.publish(*plan, nullptr));
    stop.store(true);
  });
  Count fetches = 0;
  while (!stop.load()) {
    std::string reason;
    const auto loaded = reader.fetch(plan->fingerprint, &reason);
    ASSERT_NE(loaded, nullptr)
        << "torn or failed read during concurrent republish: " << reason;
    EXPECT_EQ(loaded->fingerprint, plan->fingerprint);
    ++fetches;
  }
  republisher.join();
  EXPECT_GT(fetches, 0);
  EXPECT_EQ(reader.stats().load_failures, 0);
}

// --- validated quota construction -------------------------------------------

TEST(Admission, ValidatedQuotaRejectsNonFiniteAndOutOfRangeArguments) {
  const store::TenantQuota quota = store::validated_quota(2.5, 4.0);
  EXPECT_EQ(quota.rate_per_s, 2.5);
  EXPECT_EQ(quota.burst, 4.0);
  EXPECT_EQ(store::validated_quota(0.0, 1.0).rate_per_s, 0.0)
      << "rate 0 stays the unlimited sentinel";

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(store::validated_quota(-1.0, 8.0), psi::Error);
  EXPECT_THROW(store::validated_quota(nan, 8.0), psi::Error);
  EXPECT_THROW(store::validated_quota(inf, 8.0), psi::Error);
  EXPECT_THROW(store::validated_quota(1.0, 0.5), psi::Error);
  EXPECT_THROW(store::validated_quota(1.0, -2.0), psi::Error);
  EXPECT_THROW(store::validated_quota(1.0, nan), psi::Error);
  EXPECT_THROW(store::validated_quota(1.0, inf), psi::Error);
  try {
    store::validated_quota(-3.0, 8.0);
    FAIL() << "negative rate accepted";
  } catch (const psi::Error& e) {
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos)
        << "error must name the offending value: " << e.what();
  }
}

// --- disk-loaded plans serve bitwise-identical responses --------------------

TEST(StoreService, DiskWarmDigestsMatchInMemoryAcrossWorkersAndShards) {
  const std::string dir = scratch_dir("digests");
  const serve::WorkloadOptions workload = digest_workload();

  // Baseline: no store at all — every plan built in memory.
  std::uint64_t baseline;
  {
    store::ShardedService service(sharded_config("", 1, 1));
    const serve::WorkloadReport report = run_workload(service, workload);
    ASSERT_EQ(report.ok, workload.requests);
    baseline = report.digest_xor;
  }
  // Populate the store.
  {
    store::ShardedService service(sharded_config(dir, 1, 1));
    const serve::WorkloadReport report = run_workload(service, workload);
    ASSERT_EQ(report.ok, workload.requests);
    EXPECT_EQ(report.digest_xor, baseline);
    EXPECT_GE(service.cache_stats().store_writes,
              static_cast<Count>(workload.structures));
  }
  // Disk-warm restarts across worker and shard counts: every response set
  // must be bitwise identical to the in-memory baseline, and plans must
  // come from the store (no rebuilds).
  for (const int shards : {1, 3}) {
    for (const int workers : {1, 2}) {
      store::ShardedService service(sharded_config(dir, shards, workers));
      const serve::WorkloadReport report = run_workload(service, workload);
      EXPECT_EQ(report.ok, workload.requests)
          << "shards=" << shards << " workers=" << workers;
      EXPECT_EQ(report.digest_xor, baseline)
          << "shards=" << shards << " workers=" << workers;
      const serve::PlanCache::Stats stats = service.cache_stats();
      EXPECT_GE(stats.store_hits, static_cast<Count>(workload.structures))
          << "shards=" << shards << " workers=" << workers;
      EXPECT_EQ(stats.store_writes, 0)
          << "shards=" << shards << " workers=" << workers;
      EXPECT_GE(report.disk, static_cast<Count>(workload.structures));
    }
  }
}

TEST(StoreService, CorruptPlanFileDegradesToRebuildAndRequestsSucceed) {
  const std::string dir = scratch_dir("degrade");
  const serve::WorkloadOptions workload = digest_workload();
  std::uint64_t baseline;
  {
    store::ShardedService service(sharded_config(dir, 1, 1));
    baseline = run_workload(service, workload).digest_xor;
  }
  // Corrupt every stored plan.
  for (const auto& entry : fs::directory_iterator(dir)) {
    auto bytes = read_file(entry.path().string());
    ASSERT_GT(bytes.size(), 100u);
    bytes[bytes.size() - 20] ^= 0xff;
    write_file(entry.path().string(), bytes);
  }
  // Scan-on-open would quarantine the corrupt files before any fetch could
  // trip on them (covered below); disable it to exercise the fetch-time
  // degradation path.
  store::ShardedService::Config config = sharded_config(dir, 1, 1);
  config.store_scan_on_open = false;
  store::ShardedService service(config);
  const serve::WorkloadReport report = run_workload(service, workload);
  EXPECT_EQ(report.ok, workload.requests);
  EXPECT_EQ(report.digest_xor, baseline) << "rebuild changed response bytes";
  const serve::PlanCache::Stats stats = service.cache_stats();
  EXPECT_GE(stats.store_load_failures, static_cast<Count>(1));
  EXPECT_FALSE(stats.last_store_error.empty());
  EXPECT_GE(stats.store_writes, static_cast<Count>(1))
      << "rebuilt plans should overwrite the corrupt files";
}

TEST(StoreService, StartupScanQuarantinesCorruptPlansBeforeServing) {
  const std::string dir = scratch_dir("degrade_scan");
  const serve::WorkloadOptions workload = digest_workload();
  std::uint64_t baseline;
  {
    store::ShardedService service(sharded_config(dir, 1, 1));
    baseline = run_workload(service, workload).digest_xor;
  }
  std::size_t corrupted = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    auto bytes = read_file(entry.path().string());
    ASSERT_GT(bytes.size(), 100u);
    bytes[bytes.size() - 20] ^= 0xff;
    write_file(entry.path().string(), bytes);
    ++corrupted;
  }
  // Default scan-on-open moves every corrupt file aside at construction, so
  // the restart serves via clean rebuilds: no fetch ever sees a bad file.
  store::ShardedService service(sharded_config(dir, 1, 1));
  ASSERT_NE(service.plan_store(), nullptr);
  EXPECT_EQ(service.plan_store()->stats().quarantined,
            static_cast<Count>(corrupted));
  const serve::WorkloadReport report = run_workload(service, workload);
  EXPECT_EQ(report.ok, workload.requests);
  EXPECT_EQ(report.digest_xor, baseline) << "rebuild changed response bytes";
  const serve::PlanCache::Stats stats = service.cache_stats();
  EXPECT_EQ(stats.store_load_failures, 0)
      << "scan should have removed every corrupt file from the live dir";
  EXPECT_GE(stats.store_writes, static_cast<Count>(1));
}

TEST(StoreService, ResponsesReportPlanSourceAndShard) {
  const std::string dir = scratch_dir("source");
  serve::Request request;
  request.matrix = small_matrix(6, 1);
  request.id = "a";
  {
    store::ShardedService service(sharded_config(dir, 2, 1));
    serve::Request first = request;
    const serve::Response r = service.submit(std::move(first)).get();
    ASSERT_TRUE(r.ok()) << r.detail;
    EXPECT_EQ(r.plan_source, serve::PlanSource::kBuilt);
  }
  store::ShardedService service(sharded_config(dir, 2, 1));
  const serve::Fingerprint fp =
      serve::plan_fingerprint(request.matrix.pattern, small_config());
  serve::Request second = request;
  const serve::Response r = service.submit(std::move(second)).get();
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.plan_source, serve::PlanSource::kDisk);
  EXPECT_EQ(r.shard, service.shard_of(fp));
  serve::Request third = request;
  const serve::Response again = service.submit(std::move(third)).get();
  EXPECT_EQ(again.plan_source, serve::PlanSource::kMemory);
  EXPECT_TRUE(again.cache_hit);
}

// --- admission: quotas, tenants, sharding -----------------------------------

TEST(Admission, TokenBucketEnforcesRateAndBurst) {
  store::TokenBucket bucket(/*rate_per_s=*/2.0, /*burst=*/3.0);
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_FALSE(bucket.try_take(0.0)) << "burst exhausted";
  EXPECT_FALSE(bucket.try_take(0.4)) << "only 0.8 tokens accrued";
  EXPECT_TRUE(bucket.try_take(0.6)) << "1.2 tokens accrued";
  // Refill caps at burst.
  EXPECT_TRUE(bucket.try_take(100.0));
  EXPECT_TRUE(bucket.try_take(100.0));
  EXPECT_TRUE(bucket.try_take(100.0));
  EXPECT_FALSE(bucket.try_take(100.0));
}

TEST(Admission, ZeroRateMeansUnlimited) {
  store::TokenBucket bucket(0.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_take(0.0));
}

TEST(Admission, TenantTableAppliesOverridesAndReportsReasons) {
  store::TenantQuota unlimited;
  std::map<std::string, store::TenantQuota> overrides;
  overrides["limited"] = {/*rate_per_s=*/1.0, /*burst=*/1.0};
  store::TenantTable table(unlimited, overrides);

  EXPECT_FALSE(table.try_admit_at("free", 0.0).has_value());
  EXPECT_FALSE(table.try_admit_at("limited", 0.0).has_value());
  const auto reject = table.try_admit_at("limited", 0.0);
  ASSERT_TRUE(reject.has_value());
  EXPECT_NE(reject->find("limited"), std::string::npos) << *reject;
  EXPECT_NE(reject->find("quota"), std::string::npos) << *reject;
  EXPECT_FALSE(table.try_admit_at("limited", 1.5).has_value())
      << "token refilled after 1.5s at 1/s";

  table.record("free", serve::Status::kOk, 0.25);
  const auto snapshot = table.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].tenant, "free");
  EXPECT_EQ(snapshot[0].completed, 1);
  EXPECT_EQ(snapshot[1].rejected, 1);
}

TEST(Admission, QuotaRejectionFulfilsFutureWithoutTouchingShards) {
  store::ShardedService::Config config = sharded_config("", 1, 1);
  config.default_quota = {/*rate_per_s=*/1e-9, /*burst=*/1.0};
  store::ShardedService service(config);
  serve::Request first;
  first.matrix = small_matrix(6, 1);
  first.tenant = "t0";
  ASSERT_TRUE(service.submit(std::move(first)).get().ok());
  serve::Request second;
  second.matrix = small_matrix(6, 2);
  second.tenant = "t0";
  const serve::Response r = service.submit(std::move(second)).get();
  EXPECT_EQ(r.status, serve::Status::kRejected);
  EXPECT_EQ(r.tenant, "t0");
  EXPECT_NE(r.detail.find("quota"), std::string::npos) << r.detail;
  EXPECT_EQ(service.quota_rejected(), 1);
  EXPECT_EQ(service.shard(0).counters().submitted, 1)
      << "rejected request must not reach a shard";
}

TEST(Admission, ShardRoutingIsDeterministicInRangeAndSpreads) {
  std::set<int> seen;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const int s = store::shard_of_fingerprint(i * 0x9e37, i ^ 0xabcd, 4);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
    EXPECT_EQ(s, store::shard_of_fingerprint(i * 0x9e37, i ^ 0xabcd, 4));
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 4u) << "64 fingerprints should touch all 4 shards";
  EXPECT_EQ(store::shard_of_fingerprint(123, 456, 1), 0);
}

// --- SLO-aware priority aging -----------------------------------------------

TEST(Aging, SelectQueueClassPreventsStarvationUnderStrictPriorityStorm) {
  // No aging: strict priority, first nonempty class wins.
  {
    const double ages[2] = {0.1, 60.0};
    EXPECT_EQ(serve::select_queue_class(ages, 2, 0.0), 0);
  }
  // Aging on: the batch head has starved past the threshold and is older
  // than the interactive head — it wins.
  {
    const double ages[2] = {0.1, 60.0};
    EXPECT_EQ(serve::select_queue_class(ages, 2, 1.0), 1);
  }
  // Interactive past the threshold too and older: interactive wins.
  {
    const double ages[2] = {120.0, 60.0};
    EXPECT_EQ(serve::select_queue_class(ages, 2, 1.0), 0);
  }
  // Batch below the threshold: strict priority applies.
  {
    const double ages[2] = {0.1, 0.5};
    EXPECT_EQ(serve::select_queue_class(ages, 2, 1.0), 0);
  }
  // Empty interactive queue: batch serves regardless of age.
  {
    const double ages[2] = {-1.0, 0.01};
    EXPECT_EQ(serve::select_queue_class(ages, 2, 1.0), 1);
  }
  // Everything empty.
  {
    const double ages[2] = {-1.0, -1.0};
    EXPECT_EQ(serve::select_queue_class(ages, 2, 1.0), -1);
  }
}

TEST(Aging, AgedBatchRequestOvertakesInteractiveInLiveService) {
  // Admit-only service (workers=0): queue a batch request, let it age past
  // the threshold, storm interactive requests, then start draining by
  // shutdown — instead we use a 1-worker service gated by a slow first
  // request to give the batch head time to age.
  serve::Service::Config config;
  config.workers = 0;  // admit-only: requests queue, nothing drains
  config.plan = small_config();
  config.age_promote_seconds = 0.01;
  serve::Service service(config);
  serve::Request batch;
  batch.matrix = small_matrix(6, 1);
  batch.priority = serve::Priority::kBatch;
  auto batch_future = service.submit(std::move(batch));
  // Nothing processes; shutdown fails them. This test only checks the pure
  // selector above plus counter plumbing of a real drain below.
  service.shutdown();
  EXPECT_EQ(batch_future.get().status, serve::Status::kShutdown);
}

// --- tenant metrics through the sharded front end ---------------------------

TEST(StoreService, PerTenantLatencyQuantilesExported) {
  store::ShardedService service(sharded_config("", 2, 1));
  const serve::WorkloadOptions workload = digest_workload();
  const serve::WorkloadReport report = run_workload(service, workload);
  ASSERT_EQ(report.ok, workload.requests);
  service.shutdown();

  const auto tenants = service.tenants().snapshot();
  ASSERT_GE(tenants.size(), 2u) << "two tenants should have traffic";
  Count completed = 0;
  for (const auto& t : tenants) completed += t.completed;
  EXPECT_EQ(completed, report.ok);

  psi::obs::MetricsRegistry registry;
  service.fold_metrics(registry);
  const std::string ndjson = registry.to_ndjson();
  EXPECT_NE(ndjson.find("tenant_total_p99_s"), std::string::npos);
  EXPECT_NE(ndjson.find("tenant_total_p999_s"), std::string::npos);
  EXPECT_NE(ndjson.find("\"tenant\":\"t0\""), std::string::npos);
  EXPECT_NE(ndjson.find("serve_quota_rejected"), std::string::npos);
}
