/// Tests for the psi::obs observability subsystem: metrics registry
/// identity and exporters, the causal-graph Recorder attached to an
/// instrumented engine run, exact critical-path extraction, contention
/// attribution, Chrome trace export, and the pselinv span/mark integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/experiment.hpp"
#include "obs/analysis.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "pselinv/engine.hpp"
#include "pselinv/plan.hpp"
#include "sim/engine.hpp"
#include "sparse/generators.hpp"

namespace psi::obs {
namespace {

// ----- metrics registry ------------------------------------------------------

TEST(Labels, FingerprintIsSortedAndOrderIndependent) {
  Labels a;
  a.set("scheme", "Flat").rank(3).phase("diag");
  Labels b;
  b.phase("diag").set("scheme", "Flat").rank(3);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), "phase=diag,rank=3,scheme=Flat");
  EXPECT_EQ(a.get("rank"), "3");
  EXPECT_EQ(a.get("missing"), "");
  // Insertion order is preserved for rendering even though identity sorts.
  ASSERT_EQ(a.pairs().size(), 3u);
  EXPECT_EQ(a.pairs()[0].first, "scheme");
}

TEST(MetricsRegistry, SameSeriesReturnsSameInstance) {
  MetricsRegistry reg;
  Labels l;
  l.rank(0).collective("Diag-Bcast");
  Counter& c1 = reg.counter("messages_total", l);
  c1.add(5);
  Labels l2;
  l2.collective("Diag-Bcast").rank(0);  // same identity, different order
  Counter& c2 = reg.counter("messages_total", l2);
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value, 5);
  // Different name or labels -> distinct series.
  Counter& c3 = reg.counter("messages_total", Labels().rank(1));
  EXPECT_NE(&c1, &c3);
  Gauge& g = reg.gauge("makespan_seconds");
  g.set(1.5);
  EXPECT_EQ(reg.gauge("makespan_seconds").value, 1.5);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, HistogramBucketsAreCumulative) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("latency", Labels(), {1.0, 2.0, 4.0});
  for (double v : {0.5, 1.5, 1.9, 3.0, 10.0}) h.observe(v);
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 1);  // <= 1
  EXPECT_EQ(h.counts()[1], 3);  // <= 2
  EXPECT_EQ(h.counts()[2], 4);  // <= 4
  EXPECT_EQ(h.counts()[3], 5);  // +inf
  EXPECT_EQ(h.total_count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 16.9);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(Histogram, QuantileEmptyHistogramReportsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
  EXPECT_DOUBLE_EQ(h.p999(), 0.0);
}

TEST(Histogram, QuantileNearestRankWithLinearInterpolation) {
  // 990 fast observations in the first bucket, 10 slow ones in the third:
  // p99 is the last fast observation (bucket upper bound), p999 the 9th of
  // the 10 slow ones, interpolated inside [0.01, 0.1].
  Histogram h({0.001, 0.01, 0.1, 1.0});
  for (int i = 0; i < 990; ++i) h.observe(0.0005);
  for (int i = 0; i < 10; ++i) h.observe(0.05);
  EXPECT_DOUBLE_EQ(h.p50(), 0.001 * (500.0 / 990.0));
  EXPECT_DOUBLE_EQ(h.p99(), 0.001);
  EXPECT_DOUBLE_EQ(h.p999(), 0.01 + (0.1 - 0.01) * (9.0 / 10.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.1);
}

TEST(Histogram, QuantileOverflowBucketReportsObservedMax) {
  // Observations past the last bound have no upper bound to interpolate
  // against; the best available estimate is the observed max.
  Histogram h({1.0});
  h.observe(5.0);
  h.observe(7.0);
  EXPECT_DOUBLE_EQ(h.p50(), 7.0);
  EXPECT_DOUBLE_EQ(h.p999(), 7.0);
  h.observe(0.5);  // now rank 1 of 3 lands in the first (bounded) bucket,
  // whose single observation interpolates to the bucket's upper bound —
  // within-bucket error is bounded by the bucket width by design.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
}

TEST(Histogram, QuantilesAreMonotoneInQ) {
  Histogram h({0.001, 0.01, 0.1, 1.0, 10.0});
  for (int i = 0; i < 1000; ++i)
    h.observe(0.0001 * static_cast<double>((i * 7919) % 100000));
  double previous = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, previous) << "q=" << q;
    previous = v;
  }
  // Interpolation may overshoot the observed max by up to one bucket width
  // (it reports the bucket's upper bound), never past the last bound.
  EXPECT_LE(previous, 10.0);
}

TEST(Histogram, QuantileRejectsOutOfRangeQ) {
  Histogram h({1.0});
  h.observe(0.5);
  EXPECT_THROW(h.quantile(-0.01), psi::Error);
  EXPECT_THROW(h.quantile(1.01), psi::Error);
}

TEST(MetricsRegistry, ExportersAreDeterministicInsertionOrder) {
  MetricsRegistry reg;
  reg.counter("events_total", Labels().scheme("Flat")).add(7);
  reg.gauge("makespan_seconds", Labels().scheme("Flat")).set(0.25);
  reg.histogram("bytes", Labels(), {100.0}).observe(42.0);

  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("name,type,labels"), std::string::npos);
  EXPECT_NE(csv.find("events_total"), std::string::npos);
  EXPECT_LT(csv.find("events_total"), csv.find("makespan_seconds"));

  const std::string ndjson = reg.to_ndjson();
  std::istringstream lines(ndjson);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"name\""), std::string::npos);
  }
  EXPECT_GE(n, 3);
}

TEST(MetricsRegistry, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\ny"), "x\\ny");
}

// ----- instrumented engine run ----------------------------------------------

/// Rank 0 fans a message out to every other rank; each receiver computes and
/// replies. With the flat fan-out the root NIC serializes every transfer,
/// so the recording exhibits both send-queueing and busy-bound handlers.
class FanRoot final : public sim::Rank {
 public:
  explicit FanRoot(int peers) : peers_(peers) {}
  void on_start(sim::Context& ctx) override {
    ctx.compute(1e-6);
    for (int r = 1; r <= peers_; ++r) ctx.send(r, r, 1 << 16, /*class*/ 1);
  }
  void on_message(sim::Context& ctx, const sim::Message&) override {
    ctx.compute(2e-6);
  }

 private:
  int peers_;
};

class FanLeaf final : public sim::Rank {
 public:
  void on_start(sim::Context&) override {}
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    ctx.compute(5e-6);
    ctx.send(0, msg.tag + 1000, 1 << 12, /*class*/ 2);
  }
};

sim::MachineConfig small_machine_config() {
  sim::MachineConfig config;
  config.cores_per_node = 2;
  config.nodes_per_group = 2;
  return config;
}

/// Runs the fan-out program over `ranks` ranks with `recorder` attached and
/// returns the makespan.
double run_fan(int ranks, Recorder& recorder) {
  const sim::Machine machine(small_machine_config());
  sim::Engine engine(machine, ranks, /*comm_classes=*/3);
  engine.set_rank(0, std::make_unique<FanRoot>(ranks - 1));
  for (int r = 1; r < ranks; ++r)
    engine.set_rank(r, std::make_unique<FanLeaf>());
  engine.set_sink(&recorder);
  return engine.run();
}

TEST(Recorder, CapturesEveryEventWithConsistentTiming) {
  Recorder recorder;
  const int ranks = 8;
  const double makespan = run_fan(ranks, recorder);

  // ranks start seeds + (ranks-1) fan-out sends + (ranks-1) replies.
  const std::size_t expected = static_cast<std::size_t>(ranks + 2 * (ranks - 1));
  ASSERT_EQ(recorder.events().size(), expected);
  EXPECT_DOUBLE_EQ(recorder.makespan(), makespan);
  ASSERT_NE(recorder.final_event(), kNoEvent);
  EXPECT_DOUBLE_EQ(recorder.events()[recorder.final_event()].end, makespan);

  int network = 0;
  for (std::uint64_t seq = 0; seq < recorder.events().size(); ++seq) {
    const EventRecord& rec = recorder.events()[seq];
    ASSERT_TRUE(rec.handled) << "seq " << seq;
    // The timing decomposition is monotone.
    EXPECT_LE(rec.post, rec.xfer_start);
    EXPECT_LE(rec.xfer_start, rec.xfer_end);
    EXPECT_LE(rec.xfer_end, rec.arrival);
    EXPECT_LE(rec.arrival, rec.ready);
    EXPECT_LE(rec.ready, rec.start);
    EXPECT_LE(rec.start, rec.end);
    // Causal links point strictly backward.
    if (rec.emitter != kNoEvent) EXPECT_LT(rec.emitter, seq);
    if (rec.prev_on_rank != kNoEvent) {
      const EventRecord& prev = recorder.events()[rec.prev_on_rank];
      EXPECT_EQ(prev.dst, rec.dst);
      EXPECT_LE(prev.end, rec.start);
    }
    if (rec.network()) {
      ++network;
      EXPECT_GT(rec.occupancy(), 0.0);
      EXPECT_NE(rec.emitter, kNoEvent);
    }
  }
  EXPECT_EQ(network, 2 * (ranks - 1));
}

TEST(Recorder, ClearResets) {
  Recorder recorder;
  run_fan(4, recorder);
  EXPECT_FALSE(recorder.events().empty());
  recorder.clear();
  EXPECT_TRUE(recorder.events().empty());
  EXPECT_EQ(recorder.final_event(), kNoEvent);
  EXPECT_EQ(recorder.makespan(), 0.0);
  // A cleared recorder can be reused for another run.
  const double makespan = run_fan(4, recorder);
  EXPECT_DOUBLE_EQ(recorder.makespan(), makespan);
}

// ----- critical path ---------------------------------------------------------

TEST(CriticalPath, SegmentsPartitionTheMakespanExactly) {
  Recorder recorder;
  const double makespan = run_fan(8, recorder);
  const CriticalPath path = extract_critical_path(recorder, /*comm_classes=*/3);

  EXPECT_DOUBLE_EQ(path.makespan, makespan);
  ASSERT_FALSE(path.segments.empty());
  // Contiguous forward-in-time cover of [0, makespan] with the engine's own
  // doubles: endpoints must chain bitwise.
  EXPECT_EQ(path.segments.front().begin, 0.0);
  for (std::size_t i = 1; i < path.segments.size(); ++i)
    EXPECT_EQ(path.segments[i].begin, path.segments[i - 1].end);
  EXPECT_EQ(path.segments.back().end, makespan);

  double by_category = 0.0;
  for (double s : path.category_seconds) {
    EXPECT_GE(s, 0.0);
    by_category += s;
  }
  EXPECT_NEAR(by_category, makespan, 1e-12 * std::max(1.0, makespan));
  EXPECT_NEAR(path.exec_seconds() + path.comm_seconds(), makespan,
              1e-12 * std::max(1.0, makespan));
  EXPECT_GT(path.handler_count, 0);
  // The root's reply inbox is the bottleneck: the binding chain must cross
  // the network at least once.
  EXPECT_GE(path.network_hops, 1);

  double by_class = 0.0;
  for (double s : path.class_comm_seconds) by_class += s;
  EXPECT_NEAR(by_class, path.comm_seconds(),
              1e-12 * std::max(1.0, makespan));
}

TEST(CriticalPath, SingleRankRunIsAllExec) {
  Recorder recorder;
  const sim::Machine machine(small_machine_config());
  sim::Engine engine(machine, 1, 1);
  engine.set_rank(0, std::make_unique<FanRoot>(0));
  engine.set_sink(&recorder);
  const double makespan = engine.run();
  const CriticalPath path = extract_critical_path(recorder, 1);
  EXPECT_DOUBLE_EQ(path.exec_seconds(), makespan);
  EXPECT_DOUBLE_EQ(path.comm_seconds(), 0.0);
  EXPECT_EQ(path.network_hops, 0);
}

// ----- contention ------------------------------------------------------------

TEST(Contention, FlatFanOutConcentratesOnTheRoot) {
  Recorder recorder;
  const int ranks = 8;
  run_fan(ranks, recorder);
  const sim::MachineConfig config = small_machine_config();
  const ContentionReport report =
      analyze_contention(recorder, config.cores_per_node, config.nodes_per_group);

  ASSERT_EQ(report.per_rank.size(), static_cast<std::size_t>(ranks));
  // Rank 0 sends 7 large fan-out messages through one NIC; every other rank
  // sends one small reply. The hot link must be the root.
  EXPECT_EQ(report.busiest_send_rank(), 0);
  EXPECT_GT(report.max_send_residency(), 0.0);
  EXPECT_DOUBLE_EQ(report.per_rank[0].send_residency,
                   report.max_send_residency());
  EXPECT_EQ(report.per_rank[0].messages_out, ranks - 1);
  EXPECT_EQ(report.per_rank[0].bytes_out,
            static_cast<Count>(ranks - 1) * (1 << 16));
  // Serialized fan-out => the root's send queue backs up.
  EXPECT_GT(report.per_rank[0].send_queue_wait, 0.0);
  EXPECT_GT(report.per_rank[0].max_send_queue_depth, 1);
  // All replies land on rank 0's receive NIC.
  EXPECT_EQ(report.per_rank[0].messages_in, ranks - 1);

  Count tier_messages = 0;
  Count tier_bytes = 0;
  for (const TierStats& tier : report.tiers) {
    tier_messages += tier.messages;
    tier_bytes += tier.bytes;
  }
  EXPECT_EQ(tier_messages, 2 * (ranks - 1));
  Count network_bytes = 0;
  for (const EventRecord& rec : recorder.events())
    if (rec.network()) network_bytes += rec.bytes;
  EXPECT_EQ(tier_bytes, network_bytes);
  // 8 ranks over 2-core nodes / 2-node groups: all three tiers see traffic.
  for (int t = 0; t < kTierCount; ++t)
    EXPECT_GT(report.tiers[t].messages, 0) << tier_name(t);
}

// ----- chrome trace ----------------------------------------------------------

TEST(ChromeTrace, EmitsStructurallyValidJson) {
  Recorder recorder;
  run_fan(6, recorder);
  const std::string path = testing::TempDir() + "psi_obs_trace_test.json";
  ChromeTraceOptions options;
  options.max_events = 0;  // unlimited
  write_chrome_trace(recorder, path, options);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string trace = buffer.str();
  std::remove(path.c_str());

  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(trace.find("\"displayTimeUnit\""), std::string::npos);
  // Balanced braces/brackets (no string in the output contains either).
  long braces = 0, brackets = 0;
  for (char c : trace) {
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
    ASSERT_GE(braces, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // Complete slices, flow arrows, and thread metadata are all present.
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(trace.find("nic-send"), std::string::npos);
}

// ----- pselinv integration ---------------------------------------------------

TEST(PselinvObs, SpansAndMarksCoverEverySupernode) {
  const GeneratedMatrix gen = fem3d(4, 3, 3, 2, 3);
  AnalysisOptions options;
  options.ordering.method = OrderingMethod::kNestedDissection;
  options.ordering.dissection_leaf_size = 8;
  options.supernodes.max_size = 12;
  const SymbolicAnalysis an = analyze(gen, options);
  trees::TreeOptions topt;
  topt.scheme = trees::TreeScheme::kShiftedBinary;
  const pselinv::Plan plan(an.blocks, dist::ProcessGrid(3, 3), topt);

  sim::MachineConfig config;
  config.cores_per_node = 4;
  config.nodes_per_group = 4;
  const sim::Machine machine(config);

  Recorder recorder;
  const pselinv::RunResult run =
      pselinv::run_pselinv(plan, machine, pselinv::ExecutionMode::kTrace,
                           nullptr, nullptr, &recorder);
  ASSERT_TRUE(run.complete());

  const Int supernodes = plan.supernode_count();
  ASSERT_EQ(recorder.spans().size(), static_cast<std::size_t>(supernodes));
  ASSERT_EQ(recorder.marks().size(), static_cast<std::size_t>(supernodes));
  std::vector<bool> seen(static_cast<std::size_t>(supernodes), false);
  for (const SpanEvent& span : recorder.spans()) {
    EXPECT_STREQ(span.name, "supernode");
    EXPECT_GE(span.begin, 0.0);
    EXPECT_LE(span.begin, span.end);
    EXPECT_LE(span.end, run.makespan);
    ASSERT_GE(span.id, 0);
    ASSERT_LT(span.id, supernodes);
    EXPECT_FALSE(seen[static_cast<std::size_t>(span.id)]);
    seen[static_cast<std::size_t>(span.id)] = true;
  }
  for (const MarkEvent& mark : recorder.marks()) {
    EXPECT_STREQ(mark.name, "diag-final");
    EXPECT_LE(mark.time, run.makespan);
  }

  // The recording must agree with the engine's own accounting.
  EXPECT_DOUBLE_EQ(recorder.makespan(), run.makespan);
  Count handled = 0;
  for (const EventRecord& rec : recorder.events()) handled += rec.handled;
  EXPECT_EQ(handled, run.events);

  // The attached sink must not perturb the simulation.
  const pselinv::RunResult bare =
      pselinv::run_pselinv(plan, machine, pselinv::ExecutionMode::kTrace);
  EXPECT_EQ(bare.makespan, run.makespan);
  EXPECT_EQ(bare.events, run.events);
}

}  // namespace
}  // namespace psi::obs
