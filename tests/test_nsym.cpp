/// Tests for psi::nsym — structurally non-symmetric selected inversion.
///
/// Covers the non-symmetric generators, the directed L/U symbolic
/// structure, the restricted supernodal LU (sequential + task-parallel,
/// bitwise), the restricted Algorithm 1 sweep against the dense inverse,
/// the symmetric-input consistency gate (nsym path on a symmetric matrix is
/// bitwise identical to the symmetric path), and the distributed engine:
/// numeric correctness across schemes and grids, trace/numeric agreement,
/// partition-parallel and resilient-faulted bitwise determinism, and the
/// analytic volume report against the simulator's per-class counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "check/schedule.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "driver/experiment.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "numeric/selinv.hpp"
#include "numeric/supernodal_lu.hpp"
#include "nsym/engine.hpp"
#include "nsym/plan.hpp"
#include "nsym/selinv.hpp"
#include "nsym/structure.hpp"
#include "nsym/volume.hpp"
#include "sparse/generators.hpp"

namespace psi::nsym {
namespace {

using trees::TreeScheme;

AnalysisOptions small_options() {
  AnalysisOptions opt;
  opt.ordering.method = OrderingMethod::kNestedDissection;
  opt.ordering.dissection_leaf_size = 8;
  // Cap supernodes at the generators' coupling-group width so directed
  // drops survive amalgamation and genuinely restrict lstruct/ustruct.
  opt.supernodes.max_size = 4;
  return opt;
}

/// Scalar supernodes — maximally restricted structures for the zero-block
/// and placeholder-tree paths.
AnalysisOptions tiny_options() {
  AnalysisOptions opt = small_options();
  opt.supernodes.max_size = 1;
  return opt;
}

/// Heavy scalar drops on a 2-D Laplacian: with scalar supernodes several
/// supernodes lose an entire restricted side while union ancestors remain —
/// the exact-zero / placeholder-tree regime.
GeneratedMatrix empty_side_case() {
  return make_nonsym(laplacian2d(5, 5, 13), 13, 0.6);
}

AnalysisOptions random_options() {
  AnalysisOptions opt;
  opt.ordering.method = OrderingMethod::kMinDegree;
  opt.supernodes.max_size = 12;
  return opt;
}

sim::Machine test_machine() {
  sim::MachineConfig config;
  config.cores_per_node = 4;
  config.nodes_per_group = 4;
  return sim::Machine(config);
}

NsymPlan make_plan(const NsymAnalysis& an, int pr, int pc, TreeScheme scheme) {
  return NsymPlan(an.sym.blocks, an.structure, dist::ProcessGrid(pr, pc),
                  driver::tree_options_for(scheme));
}

DenseMatrix dense_of(const SparseMatrix& a) {
  DenseMatrix d(a.n(), a.n());
  for (Int j = 0; j < a.n(); ++j)
    for (Int p = a.pattern.col_ptr[static_cast<std::size_t>(j)];
         p < a.pattern.col_ptr[static_cast<std::size_t>(j) + 1]; ++p)
      d(a.pattern.row_idx[static_cast<std::size_t>(p)], j) =
          a.values[static_cast<std::size_t>(p)];
  return d;
}

/// Expands the (unnormalized) restricted factor into dense unit-lower L and
/// upper U for reconstruction checks.
void dense_factors(const NsymSupernodalLU& lu, Int n, DenseMatrix& l,
                   DenseMatrix& u) {
  const BlockStructure& bs = lu.blocks();
  const NsymStructure& str = lu.structure();
  l = DenseMatrix(n, n);
  u = DenseMatrix(n, n);
  for (Int i = 0; i < n; ++i) l(i, i) = 1.0;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    const Int c0 = bs.part.first_col(k);
    const DenseMatrix& d = lu.storage().diag(k);
    for (Int c = 0; c < d.cols(); ++c)
      for (Int r = 0; r < d.rows(); ++r)
        (r > c ? l : u)(c0 + r, c0 + c) = d(r, c);
    for (Int i : str.lstruct_of[static_cast<std::size_t>(k)]) {
      const DenseMatrix blk = lu.storage().block(i, k);
      const Int r0 = bs.part.first_col(i);
      for (Int c = 0; c < blk.cols(); ++c)
        for (Int r = 0; r < blk.rows(); ++r) l(r0 + r, c0 + c) = blk(r, c);
    }
    for (Int i : str.ustruct_of[static_cast<std::size_t>(k)]) {
      const DenseMatrix blk = lu.storage().block(k, i);
      const Int j0 = bs.part.first_col(i);
      for (Int c = 0; c < blk.cols(); ++c)
        for (Int r = 0; r < blk.rows(); ++r) u(c0 + r, j0 + c) = blk(r, c);
    }
  }
}

void expect_block_bitwise(const DenseMatrix& lhs, const DenseMatrix& rhs,
                          Int row, Int col) {
  ASSERT_EQ(lhs.rows(), rhs.rows());
  ASSERT_EQ(lhs.cols(), rhs.cols());
  const std::size_t bytes = static_cast<std::size_t>(lhs.rows()) *
                            static_cast<std::size_t>(lhs.cols()) *
                            sizeof(double);
  EXPECT_EQ(std::memcmp(lhs.data(), rhs.data(), bytes), 0)
      << "block (" << row << ", " << col << ") differs";
}

/// Bitwise equality over every union block (diag + both triangles).
void expect_union_bitwise(const BlockMatrix& a, const BlockMatrix& b,
                          const BlockStructure& bs) {
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    expect_block_bitwise(a.block(k, k), b.block(k, k), k, k);
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      expect_block_bitwise(a.block(i, k), b.block(i, k), i, k);
      expect_block_bitwise(a.block(k, i), b.block(k, i), k, i);
    }
  }
}

double max_union_diff(const BlockMatrix& a, const BlockMatrix& b,
                      const BlockStructure& bs) {
  double err = 0.0;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    err = std::max(err, max_abs_diff(a.block(k, k), b.block(k, k)));
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      err = std::max(err, max_abs_diff(a.block(i, k), b.block(i, k)));
      err = std::max(err, max_abs_diff(a.block(k, i), b.block(k, i)));
    }
  }
  return err;
}

// ----- non-symmetric generators ---------------------------------------------

TEST(NonsymGenerators, AsymmetricPatternWithSymmetricClosure) {
  struct Pair {
    GeneratedMatrix base, nonsym;
  };
  const std::vector<Pair> cases = {
      {dg2d(3, 3, 4, 7), dg2d_nonsym(3, 3, 4, 7)},
      {dg3d(2, 2, 2, 3, 7), dg3d_nonsym(2, 2, 2, 3, 7)},
      {fem3d(3, 3, 2, 2, 7), fem3d_nonsym(3, 3, 2, 2, 7)},
      {random_symmetric(80, 4.0, 7), random_nonsym(80, 4.0, 7)},
  };
  for (const Pair& c : cases) {
    SCOPED_TRACE(c.nonsym.name);
    EXPECT_FALSE(c.nonsym.matrix.pattern.is_structurally_symmetric());
    EXPECT_LT(c.nonsym.matrix.pattern.nnz(), c.base.matrix.pattern.nnz());
    // The symmetric closure recovers the base pattern exactly.
    const SparsityPattern closure = c.nonsym.matrix.pattern.symmetrized();
    EXPECT_EQ(closure.col_ptr, c.base.matrix.pattern.col_ptr);
    EXPECT_EQ(closure.row_idx, c.base.matrix.pattern.row_idx);
    // Full diagonal survives every drop.
    for (Int j = 0; j < c.nonsym.matrix.n(); ++j) {
      bool has_diag = false;
      for (Int p = c.nonsym.matrix.pattern.col_ptr[static_cast<std::size_t>(j)];
           p < c.nonsym.matrix.pattern.col_ptr[static_cast<std::size_t>(j) + 1];
           ++p)
        has_diag |=
            c.nonsym.matrix.pattern.row_idx[static_cast<std::size_t>(p)] == j;
      ASSERT_TRUE(has_diag) << "column " << j;
    }
    // Mesh geometry and naming are preserved.
    EXPECT_EQ(c.nonsym.coords.size(), c.base.coords.size());
    EXPECT_EQ(c.nonsym.name, c.base.name + "_nonsym");
  }
}

TEST(NonsymGenerators, ValuesAreUnsymmetricOnSurvivingPairs) {
  const GeneratedMatrix gen = dg2d_nonsym(3, 3, 4, 7, /*drop_prob=*/0.2);
  const DenseMatrix d = dense_of(gen.matrix);
  int both = 0, unequal = 0;
  for (Int j = 0; j < gen.matrix.n(); ++j)
    for (Int i = 0; i < j; ++i)
      if (d(i, j) != 0.0 && d(j, i) != 0.0) {
        ++both;
        unequal += d(i, j) != d(j, i);
      }
  ASSERT_GT(both, 0);
  EXPECT_GT(unequal, both / 2);
}

TEST(NonsymGenerators, DeterministicAndSeedSensitive) {
  const GeneratedMatrix a = fem3d_nonsym(3, 3, 2, 2, 11);
  const GeneratedMatrix b = fem3d_nonsym(3, 3, 2, 2, 11);
  EXPECT_EQ(a.matrix.pattern.row_idx, b.matrix.pattern.row_idx);
  EXPECT_EQ(a.matrix.values, b.matrix.values);
  const GeneratedMatrix c = fem3d_nonsym(3, 3, 2, 2, 12);
  EXPECT_NE(a.matrix.pattern.row_idx, c.matrix.pattern.row_idx);
}

TEST(NonsymGenerators, DropProbZeroKeepsThePattern) {
  const GeneratedMatrix base = dg2d(3, 3, 3, 5);
  const GeneratedMatrix kept = make_nonsym(dg2d(3, 3, 3, 5), 5, 0.0);
  EXPECT_TRUE(kept.matrix.pattern.is_structurally_symmetric());
  EXPECT_EQ(kept.matrix.pattern.row_idx, base.matrix.pattern.row_idx);
}

// ----- directed symbolic structure ------------------------------------------

TEST(Structure, RestrictedListsAreSubsetsAndGenuinelyRestricted) {
  const NsymAnalysis an =
      analyze_nsym(dg2d_nonsym(3, 3, 4, 5), small_options());
  EXPECT_NO_THROW(an.structure.validate(an.sym.blocks));
  bool restricted = false;
  for (Int k = 0; k < an.structure.supernode_count(); ++k) {
    const auto& uni = an.sym.blocks.struct_of[static_cast<std::size_t>(k)];
    const auto& ls = an.structure.lstruct_of[static_cast<std::size_t>(k)];
    const auto& us = an.structure.ustruct_of[static_cast<std::size_t>(k)];
    for (Int i : ls)
      EXPECT_TRUE(std::binary_search(uni.begin(), uni.end(), i));
    for (Int i : us)
      EXPECT_TRUE(std::binary_search(uni.begin(), uni.end(), i));
    restricted |= ls.size() < uni.size() || us.size() < uni.size();
  }
  EXPECT_TRUE(restricted) << "dropped blocks must restrict some supernode";
  EXPECT_GT(nsym_factorization_flops(an.sym.blocks, an.structure), 0);
  EXPECT_GT(nsym_selinv_flops(an.sym.blocks, an.structure), 0);
}

TEST(Structure, SymmetricInputCollapsesToTheSymmetricStructure) {
  const GeneratedMatrix gen = laplacian2d(6, 6, 1);
  const NsymAnalysis an = analyze_nsym(gen, small_options());
  for (Int k = 0; k < an.structure.supernode_count(); ++k) {
    const auto& uni = an.sym.blocks.struct_of[static_cast<std::size_t>(k)];
    EXPECT_EQ(an.structure.lstruct_of[static_cast<std::size_t>(k)], uni);
    EXPECT_EQ(an.structure.ustruct_of[static_cast<std::size_t>(k)], uni);
  }
}

// ----- restricted LU --------------------------------------------------------

TEST(Factor, ReconstructsThePermutedMatrix) {
  const NsymAnalysis an =
      analyze_nsym(dg2d_nonsym(3, 3, 3, 5), small_options());
  const NsymSupernodalLU lu = NsymSupernodalLU::factor(an);
  const Int n = an.matrix.n();
  DenseMatrix l, u;
  dense_factors(lu, n, l, u);
  DenseMatrix prod(n, n);
  gemm(Trans::kNo, Trans::kNo, 1.0, l, u, 0.0, prod);
  EXPECT_LT(max_abs_diff(prod, dense_of(an.matrix)), 1e-10);
}

TEST(Factor, SolveReachesResidualTolerance) {
  const NsymAnalysis an =
      analyze_nsym(fem3d_nonsym(3, 3, 2, 2, 9), small_options());
  const NsymSupernodalLU lu = NsymSupernodalLU::factor(an);
  const Int n = an.matrix.n();
  std::vector<double> b(static_cast<std::size_t>(n));
  for (Int i = 0; i < n; ++i)
    b[static_cast<std::size_t>(i)] = std::sin(static_cast<double>(i) + 1.0);
  const std::vector<double> x = lu.solve(b);
  const DenseMatrix a = dense_of(an.matrix);
  double resid = 0.0;
  for (Int i = 0; i < n; ++i) {
    double ax = 0.0;
    for (Int j = 0; j < n; ++j) ax += a(i, j) * x[static_cast<std::size_t>(j)];
    resid = std::max(resid, std::abs(ax - b[static_cast<std::size_t>(i)]));
  }
  EXPECT_LT(resid, 1e-9);
}

// ----- sequential selected inversion vs the dense inverse -------------------

struct DenseCase {
  std::string label;
  GeneratedMatrix gen;
  AnalysisOptions options;
};

class NsymSelinvDense : public ::testing::TestWithParam<DenseCase> {};

TEST_P(NsymSelinvDense, MatchesDenseInverseOnTheUnionPattern) {
  const NsymAnalysis an = analyze_nsym(GetParam().gen, GetParam().options);
  NsymSupernodalLU lu = NsymSupernodalLU::factor(an);
  const BlockMatrix ainv = nsym_selected_inversion(lu);
  EXPECT_TRUE(lu.normalized());

  const DenseMatrix full_inv = inverse(dense_of(an.matrix));
  const BlockStructure& bs = an.sym.blocks;
  double err = 0.0;
  const auto check = [&](Int i, Int k) {
    const DenseMatrix blk = ainv.block(i, k);
    const Int r0 = bs.part.first_col(i);
    const Int c0 = bs.part.first_col(k);
    for (Int c = 0; c < blk.cols(); ++c)
      for (Int r = 0; r < blk.rows(); ++r)
        err = std::max(err, std::abs(blk(r, c) - full_inv(r0 + r, c0 + c)));
  };
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    check(k, k);
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      check(i, k);
      check(k, i);
    }
  }
  EXPECT_LT(err, 1e-10) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Generators, NsymSelinvDense,
    ::testing::Values(
        DenseCase{"dg2d", dg2d_nonsym(3, 3, 3, 5), small_options()},
        DenseCase{"dg3d", dg3d_nonsym(2, 2, 2, 3, 9), small_options()},
        DenseCase{"fem3d", fem3d_nonsym(3, 3, 2, 2, 11), small_options()},
        DenseCase{"fem3d_heavy_drop", fem3d_nonsym(3, 2, 2, 2, 13, 0.7),
                  small_options()},
        DenseCase{"random", random_nonsym(70, 4.0, 13), random_options()},
        DenseCase{"empty_sides", empty_side_case(), tiny_options()},
        DenseCase{"symmetric_input", laplacian2d(6, 6, 1), small_options()}),
    [](const ::testing::TestParamInfo<DenseCase>& info) {
      return info.param.label;
    });

TEST(Selinv, EmptyRestrictedColumnYieldsExactZeroBlocks) {
  // With heavy drops some supernode loses its whole lstruct (or ustruct)
  // while union ancestors remain; the corresponding A^{-1} blocks are
  // exact zeros (empty restricted sum), not merely small.
  const NsymAnalysis an = analyze_nsym(empty_side_case(), tiny_options());
  NsymSupernodalLU lu = NsymSupernodalLU::factor(an);
  const BlockMatrix ainv = nsym_selected_inversion(lu);
  int zero_sides = 0;
  for (Int k = 0; k < an.structure.supernode_count(); ++k) {
    const auto& uni = an.sym.blocks.struct_of[static_cast<std::size_t>(k)];
    if (uni.empty()) continue;
    if (an.structure.lstruct_of[static_cast<std::size_t>(k)].empty()) {
      ++zero_sides;
      for (Int j : uni) {
        const DenseMatrix blk = ainv.block(j, k);
        for (Int c = 0; c < blk.cols(); ++c)
          for (Int r = 0; r < blk.rows(); ++r) ASSERT_EQ(blk(r, c), 0.0);
      }
    }
    if (an.structure.ustruct_of[static_cast<std::size_t>(k)].empty()) {
      ++zero_sides;
      for (Int j : uni) {
        const DenseMatrix blk = ainv.block(k, j);
        for (Int c = 0; c < blk.cols(); ++c)
          for (Int r = 0; r < blk.rows(); ++r) ASSERT_EQ(blk(r, c), 0.0);
      }
    }
  }
  EXPECT_GT(zero_sides, 0) << "case must exercise an empty restricted side";
}

// ----- symmetric-input consistency gate -------------------------------------

TEST(Consistency, SymmetricInputBitwiseMatchesTheSymmetricPath) {
  // On a structurally symmetric matrix the nsym kernels execute the exact
  // same call sequence as the symmetric path, so factors AND selected
  // inverses agree bitwise — the cheapest possible differential oracle.
  const GeneratedMatrix gen = fem3d(3, 3, 2, 2, 3);
  const NsymAnalysis an = analyze_nsym(gen, small_options());

  psi::SupernodalLU lu_sym =
      psi::SupernodalLU::factor(an.sym.blocks, an.matrix);
  NsymSupernodalLU lu_nsym =
      NsymSupernodalLU::factor(an.sym.blocks, an.structure, an.matrix);

  const BlockStructure& bs = an.sym.blocks;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    expect_block_bitwise(lu_sym.blocks().block(k, k),
                         lu_nsym.storage().diag(k), k, k);
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      expect_block_bitwise(lu_sym.blocks().block(i, k),
                           lu_nsym.storage().block(i, k), i, k);
      expect_block_bitwise(lu_sym.blocks().block(k, i),
                           lu_nsym.storage().block(k, i), k, i);
    }
  }

  const BlockMatrix ainv_sym = psi::selected_inversion(lu_sym);
  const BlockMatrix ainv_nsym = nsym_selected_inversion(lu_nsym);
  expect_union_bitwise(ainv_nsym, ainv_sym, bs);
}

// ----- task-parallel bitwise determinism ------------------------------------

TEST(Parallel, FactorAndSelinvBitwiseMatchSequential) {
  const NsymAnalysis an =
      analyze_nsym(fem3d_nonsym(3, 3, 2, 2, 5), small_options());
  // One unnormalized sequential factor for storage comparison and one
  // sequential sweep (which normalizes its own copy) for the inverse.
  const NsymSupernodalLU lu_seq = NsymSupernodalLU::factor(an);
  NsymSupernodalLU lu_sweep = NsymSupernodalLU::factor(an);
  const BlockMatrix ainv_seq = nsym_selected_inversion(lu_sweep);
  parallel::ThreadPool pool(3);
  for (const int threads : {2, 4}) {
    for (const std::uint64_t seed : {0ull, 0x9e3779b97f4a7c15ull}) {
      numeric::ParallelOptions options;
      options.threads = threads;
      options.pool = &pool;
      options.tie_break_seed = seed;
      NsymSupernodalLU lu_par = NsymSupernodalLU::factor_parallel(an, options);
      const BlockStructure& bs = an.sym.blocks;
      for (Int k = 0; k < bs.supernode_count(); ++k) {
        expect_block_bitwise(lu_par.storage().diag(k), lu_seq.storage().diag(k),
                             k, k);
        for (Int i : an.structure.lstruct_of[static_cast<std::size_t>(k)])
          expect_block_bitwise(lu_par.storage().block(i, k),
                               lu_seq.storage().block(i, k), i, k);
        for (Int i : an.structure.ustruct_of[static_cast<std::size_t>(k)])
          expect_block_bitwise(lu_par.storage().block(k, i),
                               lu_seq.storage().block(k, i), k, i);
      }
      const BlockMatrix ainv_par = nsym_selinv_parallel(lu_par, options);
      EXPECT_TRUE(lu_par.normalized());
      expect_union_bitwise(ainv_par, ainv_seq, bs);
    }
  }
}

// ----- distributed engine: plan invariants ----------------------------------

/// Full per-supernode audit of the paired trees; returns the number of
/// absent-side placeholder trees encountered.
int audit_plan(const NsymAnalysis& an, const NsymPlan& plan) {
  int placeholders = 0;
  const auto& grid = plan.grid();
  const auto& map = plan.map();
  for (Int k = 0; k < plan.supernode_count(); ++k) {
    const auto& sp = plan.supernode(k);
    const auto& uni = an.sym.blocks.struct_of[static_cast<std::size_t>(k)];
    EXPECT_EQ(sp.diag_bcast.root(), map.owner(k, k));
    EXPECT_EQ(sp.diag_row_bcast.root(), map.owner(k, k));
    EXPECT_EQ(sp.col_reduce.root(), map.owner(k, k));
    for (int r : sp.diag_bcast.participants())
      EXPECT_EQ(grid.col_of(r), map.pcol_of(k));
    for (int r : sp.diag_row_bcast.participants())
      EXPECT_EQ(grid.row_of(r), map.prow_of(k));
    for (int r : sp.col_reduce.participants())
      EXPECT_EQ(grid.col_of(r), map.pcol_of(k));
    for (Int t = 0; t < static_cast<Int>(uni.size()); ++t) {
      const Int b = uni[static_cast<std::size_t>(t)];
      const std::int64_t kt = plan.kt_id(k, t);
      EXPECT_EQ(sp.cross_src[static_cast<std::size_t>(t)], map.owner(b, k));
      EXPECT_EQ(sp.cross_dst[static_cast<std::size_t>(t)], map.owner(k, b));
      const auto& cb = sp.col_bcast[static_cast<std::size_t>(t)];
      const auto& rr = sp.row_reduce[static_cast<std::size_t>(t)];
      const auto& rb = sp.row_bcast[static_cast<std::size_t>(t)];
      const auto& cru = sp.col_reduce_up[static_cast<std::size_t>(t)];
      const auto& lstr =
          an.structure.lstruct_of[static_cast<std::size_t>(k)];
      const auto& ustr =
          an.structure.ustruct_of[static_cast<std::size_t>(k)];
      // Panel broadcasts exist only where the factor block exists.
      if (plan.lpos(kt) >= 0) {
        EXPECT_EQ(cb.root(), map.owner(k, b));
        for (int r : cb.participants())
          EXPECT_EQ(grid.col_of(r), map.pcol_of(b));
      } else {
        // Absent-side placeholders never carry traffic.
        ++placeholders;
        EXPECT_LE(cb.participant_count(), 1);
      }
      if (plan.upos(kt) >= 0) {
        EXPECT_EQ(rb.root(), map.owner(b, k));
        for (int r : rb.participants())
          EXPECT_EQ(grid.row_of(r), map.prow_of(b));
      } else {
        ++placeholders;
        EXPECT_LE(rb.participant_count(), 1);
      }
      // Result-block reductions exist for EVERY union entry as long as the
      // driving restricted list is nonempty (the sum ranges over lstruct /
      // ustruct, the target over the whole union set).
      if (!lstr.empty()) {
        EXPECT_EQ(rr.root(), map.owner(b, k));
        for (int r : rr.participants())
          EXPECT_EQ(grid.row_of(r), map.prow_of(b));
      } else {
        ++placeholders;
        EXPECT_LE(rr.participant_count(), 1);
      }
      if (!ustr.empty()) {
        EXPECT_EQ(cru.root(), map.owner(k, b));
        for (int r : cru.participants())
          EXPECT_EQ(grid.col_of(r), map.pcol_of(b));
      } else {
        ++placeholders;
        EXPECT_LE(cru.participant_count(), 1);
      }
      // lpos/upos agree with the restricted lists.
      EXPECT_EQ(plan.lpos(kt) >= 0, an.structure.in_lstruct(k, b));
      EXPECT_EQ(plan.upos(kt) >= 0, an.structure.in_ustruct(k, b));
    }
  }
  EXPECT_GT(plan.distinct_communicators(), 0);
  EXPECT_GT(plan.total_collectives(), 0);
  EXPECT_GT(plan.memory_bytes(), 0u);
  return placeholders;
}

TEST(Plan, PairedTreesLiveInTheRightGridGroups) {
  const NsymAnalysis an =
      analyze_nsym(fem3d_nonsym(4, 3, 3, 2, 3), small_options());
  const NsymPlan plan = make_plan(an, 3, 4, TreeScheme::kShiftedBinary);
  // The restricted structure must produce at least one absent side.
  EXPECT_GT(audit_plan(an, plan), 0);
}

TEST(Plan, EmptySidedSupernodesGetPlaceholderTrees) {
  const NsymAnalysis an = analyze_nsym(empty_side_case(), tiny_options());
  const NsymPlan plan = make_plan(an, 2, 3, TreeScheme::kBinary);
  EXPECT_GT(audit_plan(an, plan), 0);
}

TEST(Plan, BlockIdsRoundTrip) {
  const NsymAnalysis an =
      analyze_nsym(dg2d_nonsym(3, 3, 3, 5), small_options());
  const NsymPlan plan = make_plan(an, 2, 2, TreeScheme::kFlat);
  for (Int k = 0; k < plan.supernode_count(); ++k) {
    EXPECT_EQ(plan.block_id(k, k), plan.diag_block_id(k));
    const auto& uni = an.sym.blocks.struct_of[static_cast<std::size_t>(k)];
    for (Int t = 0; t < static_cast<Int>(uni.size()); ++t) {
      const Int b = uni[static_cast<std::size_t>(t)];
      EXPECT_EQ(plan.block_id(b, k), plan.lower_block_id(k, t));
      EXPECT_EQ(plan.block_id(k, b), plan.upper_block_id(k, t));
    }
  }
}

// ----- distributed engine: end-to-end numeric correctness -------------------

struct EngineCase {
  std::string label;
  GeneratedMatrix gen;
  AnalysisOptions options;
  int pr, pc;
  TreeScheme scheme;
};

class NsymEngineEndToEnd : public ::testing::TestWithParam<EngineCase> {};

TEST_P(NsymEngineEndToEnd, MatchesTheSequentialSweep) {
  const auto& param = GetParam();
  const NsymAnalysis an = analyze_nsym(param.gen, param.options);

  NsymSupernodalLU lu_seq = NsymSupernodalLU::factor(an);
  const BlockMatrix reference = nsym_selected_inversion(lu_seq);

  NsymSupernodalLU lu_dist = NsymSupernodalLU::factor(an);
  const NsymPlan plan = make_plan(an, param.pr, param.pc, param.scheme);
  const RunResult result =
      run_nsym(plan, test_machine(), ExecutionMode::kNumeric, &lu_dist);
  ASSERT_TRUE(result.complete());
  ASSERT_NE(result.ainv, nullptr);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_LT(max_union_diff(*result.ainv, reference, an.sym.blocks), 1e-10)
      << param.label;
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndSchemes, NsymEngineEndToEnd,
    ::testing::Values(
        EngineCase{"dg2d_1x1_flat", dg2d_nonsym(3, 3, 3, 5), small_options(),
                   1, 1, TreeScheme::kFlat},
        EngineCase{"dg2d_2x2_flat", dg2d_nonsym(3, 3, 3, 5), small_options(),
                   2, 2, TreeScheme::kFlat},
        EngineCase{"dg2d_3x3_binary", dg2d_nonsym(3, 3, 4, 7), small_options(),
                   3, 3, TreeScheme::kBinary},
        EngineCase{"dg3d_4x4_shifted", dg3d_nonsym(2, 2, 2, 3, 9),
                   small_options(), 4, 4, TreeScheme::kShiftedBinary},
        EngineCase{"fem3d_3x4_shifted", fem3d_nonsym(3, 3, 2, 2, 11),
                   small_options(), 3, 4, TreeScheme::kShiftedBinary},
        EngineCase{"fem3d_2x3_binary", fem3d_nonsym(3, 2, 3, 2, 13),
                   small_options(), 2, 3, TreeScheme::kBinary},
        EngineCase{"heavy_drop_3x2_shifted", dg2d_nonsym(3, 3, 4, 7, 0.7),
                   small_options(), 3, 2, TreeScheme::kShiftedBinary},
        EngineCase{"empty_sides_2x2_shifted", empty_side_case(),
                   tiny_options(), 2, 2, TreeScheme::kShiftedBinary},
        EngineCase{"empty_sides_3x3_flat", empty_side_case(), tiny_options(),
                   3, 3, TreeScheme::kFlat},
        EngineCase{"symmetric_3x3_flat", fem3d(3, 3, 2, 2, 3), small_options(),
                   3, 3, TreeScheme::kFlat}),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      return info.param.label;
    });

TEST(Engine, TraceMatchesNumericTraffic) {
  const NsymAnalysis an =
      analyze_nsym(fem3d_nonsym(3, 2, 2, 2, 27), small_options());
  const NsymPlan plan = make_plan(an, 2, 3, TreeScheme::kBinary);
  NsymSupernodalLU lu = NsymSupernodalLU::factor(an);
  const RunResult numeric =
      run_nsym(plan, test_machine(), ExecutionMode::kNumeric, &lu);
  const RunResult trace = run_nsym(plan, test_machine(), ExecutionMode::kTrace);
  ASSERT_TRUE(trace.complete());
  EXPECT_EQ(trace.events, numeric.events);
  EXPECT_DOUBLE_EQ(trace.makespan, numeric.makespan);
  for (int r = 0; r < plan.grid().size(); ++r)
    for (int c = 0; c < kCommClassCount; ++c)
      EXPECT_EQ(trace.rank_stats[static_cast<std::size_t>(r)]
                    .per_class[static_cast<std::size_t>(c)].bytes_sent,
                numeric.rank_stats[static_cast<std::size_t>(r)]
                    .per_class[static_cast<std::size_t>(c)].bytes_sent);
}

TEST(Engine, NumericModeValidatesTheFactor) {
  const NsymAnalysis an =
      analyze_nsym(dg2d_nonsym(3, 3, 3, 5), small_options());
  const NsymPlan plan = make_plan(an, 2, 2, TreeScheme::kFlat);
  EXPECT_THROW(
      run_nsym(plan, test_machine(), ExecutionMode::kNumeric, nullptr), Error);
  // A pre-normalized factor must be rejected (the engine normalizes).
  NsymSupernodalLU lu = NsymSupernodalLU::factor(an);
  lu.normalize_panels();
  EXPECT_THROW(run_nsym(plan, test_machine(), ExecutionMode::kNumeric, &lu),
               Error);
}

TEST(Engine, PartitionedRunsAreBitwiseIdentical) {
  // Heavy drops so partitioned runs also cross the zero-side finalization
  // and deferred-diagonal paths.
  const NsymAnalysis an =
      analyze_nsym(dg2d_nonsym(3, 3, 4, 7, 0.7), small_options());
  const NsymPlan plan = make_plan(an, 3, 4, TreeScheme::kShiftedBinary);

  NsymSupernodalLU lu_ref = NsymSupernodalLU::factor(an);
  const RunResult reference =
      run_nsym(plan, test_machine(), ExecutionMode::kNumeric, &lu_ref);
  ASSERT_TRUE(reference.complete());

  for (const int partitions : {1, 4}) {
    SCOPED_TRACE(partitions);
    RunOptions options;
    options.partitions = partitions;
    NsymSupernodalLU lu = NsymSupernodalLU::factor(an);
    const RunResult run = run_nsym(plan, test_machine(),
                                   ExecutionMode::kNumeric, &lu, nullptr,
                                   nullptr, options);
    ASSERT_TRUE(run.complete());
    EXPECT_EQ(run.makespan, reference.makespan);
    EXPECT_EQ(run.events, reference.events);
    expect_union_bitwise(*run.ainv, *reference.ainv, an.sym.blocks);
  }
}

TEST(Engine, ResilientFaultyAndAdversarialRunsAreBitwiseIdentical) {
  const NsymAnalysis an =
      analyze_nsym(fem3d_nonsym(4, 3, 3, 2, 3), small_options());
  const NsymPlan plan = make_plan(an, 4, 4, TreeScheme::kShiftedBinary);

  trees::ResilienceConfig resilience;
  resilience.enabled = true;
  const fault::FaultPlan fault_plan = fault::FaultPlan::scenario(
      /*seed=*/0xfa17, /*rank_count=*/16, /*stragglers=*/2, /*slowdown=*/8.0,
      /*drop_prob=*/0.02, /*dup_prob=*/0.01);
  const sim::Perturbation perturbation = fault_plan.perturbation();

  struct Outcome {
    sim::SimTime makespan;
    std::unique_ptr<BlockMatrix> ainv;
    trees::ChannelStats stats;
  };
  const auto run = [&](bool faulty, std::uint64_t schedule_seed) {
    NsymSupernodalLU lu = NsymSupernodalLU::factor(an);
    RunOptions options;
    options.resilience = resilience;
    fault::DeterministicInjector injector(fault_plan);
    check::AdversarialSchedule schedule(schedule_seed);
    if (faulty) {
      options.injector = &injector;
      options.perturbation = &perturbation;
    }
    if (schedule_seed != 0) options.schedule = &schedule;
    RunResult result = run_nsym(plan, test_machine(), ExecutionMode::kNumeric,
                                &lu, nullptr, nullptr, options);
    EXPECT_TRUE(result.complete());
    return Outcome{result.makespan, std::move(result.ainv),
                   result.channel_stats};
  };

  const Outcome clean = run(false, 0);
  const Outcome faulty = run(true, 0);
  const Outcome faulty_again = run(true, 0);
  const Outcome adversarial = run(true, 0xadbeef);

  EXPECT_EQ(faulty.makespan, faulty_again.makespan);
  EXPECT_GT(faulty.makespan, clean.makespan);
  expect_union_bitwise(*faulty.ainv, *clean.ainv, an.sym.blocks);
  expect_union_bitwise(*faulty.ainv, *faulty_again.ainv, an.sym.blocks);
  expect_union_bitwise(*adversarial.ainv, *clean.ainv, an.sym.blocks);
  EXPECT_GT(faulty.stats.tracked_sends, 0);
}

// ----- analytic volume vs simulator counters --------------------------------

TEST(Volume, MatchesSimulatorCounters) {
  struct VolumeProblem {
    NsymAnalysis an;
    int pr, pc;
  };
  VolumeProblem problems[] = {
      {analyze_nsym(fem3d_nonsym(3, 3, 3, 1, 4), small_options()), 3, 4},
      {analyze_nsym(empty_side_case(), tiny_options()), 2, 3},
  };
  for (const VolumeProblem& prob : problems) {
    for (TreeScheme scheme : {TreeScheme::kFlat, TreeScheme::kBinary,
                              TreeScheme::kShiftedBinary}) {
      const NsymPlan plan = make_plan(prob.an, prob.pr, prob.pc, scheme);
      const NsymVolumeReport report = analyze_nsym_volume(plan);
      const RunResult run =
          run_nsym(plan, test_machine(), ExecutionMode::kTrace);
      ASSERT_TRUE(run.complete());
      for (int r = 0; r < plan.grid().size(); ++r)
        for (int c = 0; c < kCommClassCount; ++c) {
          EXPECT_EQ(report.of(c).bytes_sent()[static_cast<std::size_t>(r)],
                    run.rank_stats[static_cast<std::size_t>(r)]
                        .per_class[static_cast<std::size_t>(c)].bytes_sent)
              << trees::scheme_name(scheme) << " class "
              << pselinv::comm_class_name(c) << " rank " << r;
          EXPECT_EQ(report.of(c).bytes_received()[static_cast<std::size_t>(r)],
                    run.rank_stats[static_cast<std::size_t>(r)]
                        .per_class[static_cast<std::size_t>(c)].bytes_received)
              << trees::scheme_name(scheme) << " class "
              << pselinv::comm_class_name(c) << " rank " << r;
        }
    }
  }
}

TEST(Volume, RowAndColumnSidesSplitTheTraffic) {
  const NsymAnalysis nonsym =
      analyze_nsym(fem3d_nonsym(3, 3, 2, 2, 13, 0.5), small_options());
  const NsymPlan plan = make_plan(nonsym, 3, 3, TreeScheme::kShiftedBinary);
  const NsymVolumeReport report = analyze_nsym_volume(plan);
  EXPECT_GT(report.total_col_side(), 0u);
  EXPECT_GT(report.total_row_side(), 0u);
  const std::vector<double> imbalance = report.side_imbalance();
  ASSERT_EQ(imbalance.size(),
            static_cast<std::size_t>(plan.supernode_count()));
  for (double v : imbalance) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  const SampleStats stats = NsymVolumeReport::summarize(imbalance);
  EXPECT_GT(stats.max(), 0.0);

  // The same mesh without drops is structurally balanced: dropping blocks
  // must push the per-supernode imbalance distribution upward.
  const NsymAnalysis sym = analyze_nsym(fem3d(3, 3, 2, 2, 13), small_options());
  const NsymPlan splan = make_plan(sym, 3, 3, TreeScheme::kShiftedBinary);
  const SampleStats sym_stats = NsymVolumeReport::summarize(
      analyze_nsym_volume(splan).side_imbalance());
  EXPECT_GT(stats.mean(), sym_stats.mean());
}

TEST(Volume, SchemePreservesTotalVolumePerClass) {
  // Trees change WHO forwards, not how much data each receiver consumes.
  const NsymAnalysis an =
      analyze_nsym(fem3d_nonsym(4, 3, 3, 1, 8), small_options());
  const auto received_total = [&](TreeScheme scheme, int comm_class) {
    const NsymPlan plan = make_plan(an, 4, 4, scheme);
    const NsymVolumeReport report = analyze_nsym_volume(plan);
    Count total = 0;
    for (Count b : report.of(comm_class).bytes_received()) total += b;
    return total;
  };
  for (int c : {pselinv::kColBcast, pselinv::kRowBcast, pselinv::kRowReduce,
                pselinv::kColReduce}) {
    EXPECT_EQ(received_total(TreeScheme::kFlat, c),
              received_total(TreeScheme::kShiftedBinary, c))
        << pselinv::comm_class_name(c);
  }
}

}  // namespace
}  // namespace psi::nsym
