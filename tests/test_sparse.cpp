/// Unit tests for sparse structures, the Matrix Market I/O, and the
/// synthetic matrix generators.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "sparse/generators.hpp"
#include "sparse/graph.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/sparse_matrix.hpp"

namespace psi {
namespace {

TEST(TripletBuilder, CompilesSortedDeduplicated) {
  TripletBuilder b(3);
  b.add(2, 0, 1.0);
  b.add(0, 0, 2.0);
  b.add(2, 0, 0.5);  // duplicate -> summed
  b.add(1, 2, 3.0);
  const SparseMatrix m = b.compile();
  m.validate();
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.value_at(2, 0), 1.5);
  EXPECT_DOUBLE_EQ(m.value_at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.value_at(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.value_at(1, 1), 0.0);
}

TEST(TripletBuilder, OutOfRangeThrows) {
  TripletBuilder b(2);
  EXPECT_THROW(b.add(2, 0, 1.0), Error);
  EXPECT_THROW(b.add(0, -1, 1.0), Error);
}

TEST(TripletBuilder, AddSymmetric) {
  TripletBuilder b(3);
  b.add_symmetric(0, 1, 2.5);
  b.add_symmetric(2, 2, 1.0);  // diagonal: added once
  const SparseMatrix m = b.compile();
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.value_at(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(m.value_at(1, 0), 2.5);
  EXPECT_DOUBLE_EQ(m.value_at(2, 2), 1.0);
}

TEST(SparsityPattern, SymmetryDetection) {
  TripletBuilder b(3);
  b.add(0, 1, 1.0);
  const SparseMatrix m = b.compile();
  EXPECT_FALSE(m.pattern.is_structurally_symmetric());
  const SparsityPattern sym = m.pattern.symmetrized();
  EXPECT_TRUE(sym.is_structurally_symmetric());
  EXPECT_TRUE(sym.has_entry(1, 0));
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  const GeneratedMatrix gen = laplacian2d(4, 3, 5);
  const auto dense = gen.matrix.to_dense_rowmajor();
  const auto n = static_cast<std::size_t>(gen.matrix.n());
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i) * 0.25 - 1.0;
  std::vector<double> y;
  gen.matrix.multiply(x, y);
  for (std::size_t i = 0; i < n; ++i) {
    double expected = 0.0;
    for (std::size_t j = 0; j < n; ++j) expected += dense[i * n + j] * x[j];
    EXPECT_NEAR(y[i], expected, 1e-12);
  }
}

TEST(PermuteSymmetric, ValuesFollowPermutation) {
  const GeneratedMatrix gen = laplacian2d(3, 3, 7);
  std::vector<Int> perm(static_cast<std::size_t>(gen.matrix.n()));
  for (std::size_t k = 0; k < perm.size(); ++k)
    perm[k] = static_cast<Int>((k + 3) % perm.size());
  const SparseMatrix p = permute_symmetric(gen.matrix, perm);
  p.validate();
  EXPECT_EQ(p.nnz(), gen.matrix.nnz());
  for (Int j = 0; j < gen.matrix.n(); ++j)
    for (Int i = 0; i < gen.matrix.n(); ++i)
      EXPECT_DOUBLE_EQ(p.value_at(perm[static_cast<std::size_t>(i)],
                                  perm[static_cast<std::size_t>(j)]),
                       gen.matrix.value_at(i, j));
}

TEST(MatrixMarket, RoundTripGeneral) {
  const GeneratedMatrix gen = fem3d(3, 2, 2, 2, 11);
  std::stringstream ss;
  write_matrix_market(ss, gen.matrix);
  const SparseMatrix back = read_matrix_market(ss);
  back.validate();
  ASSERT_EQ(back.n(), gen.matrix.n());
  ASSERT_EQ(back.nnz(), gen.matrix.nnz());
  for (Int j = 0; j < back.n(); ++j)
    for (Int p = back.pattern.col_ptr[j]; p < back.pattern.col_ptr[j + 1]; ++p)
      EXPECT_DOUBLE_EQ(back.values[static_cast<std::size_t>(p)],
                       gen.matrix.values[static_cast<std::size_t>(p)]);
}

TEST(MatrixMarket, ReadsSymmetricStorage) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% comment line\n"
     << "3 3 4\n"
     << "1 1 2.0\n"
     << "2 1 -1.0\n"
     << "3 3 5.0\n"
     << "3 2 0.5\n";
  const SparseMatrix m = read_matrix_market(ss);
  EXPECT_EQ(m.n(), 3);
  EXPECT_EQ(m.nnz(), 6);  // two off-diagonals mirrored
  EXPECT_DOUBLE_EQ(m.value_at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.value_at(1, 2), 0.5);
}

TEST(MatrixMarket, RejectsMalformed) {
  std::stringstream bad_banner("%%NotMM matrix coordinate real general\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(bad_banner), Error);
  std::stringstream rect(
      "%%MatrixMarket matrix coordinate real general\n2 3 0\n");
  EXPECT_THROW(read_matrix_market(rect), Error);
  EXPECT_THROW(read_matrix_market_file("/nonexistent/file.mtx"), Error);
}

namespace {

/// The parser error message for `text`, "" if it parsed.
std::string market_error(const std::string& text) {
  std::stringstream ss(text);
  try {
    read_matrix_market(ss);
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

}  // namespace

TEST(MatrixMarket, ErrorsNameLineAndOffendingToken) {
  const std::string header = "%%MatrixMarket matrix coordinate real general\n";

  // Banner problems are reported against line 1 with the bad word.
  EXPECT_NE(market_error("%%NotMM matrix coordinate real general\n1 1 0\n")
                .find("line 1"),
            std::string::npos);
  const std::string bad_field =
      market_error("%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
  EXPECT_NE(bad_field.find("line 1"), std::string::npos) << bad_field;
  EXPECT_NE(bad_field.find("'complex'"), std::string::npos) << bad_field;

  // Size line: wrong token count, then a non-integer token, both with the
  // line number (line 3 here — a comment line shifts it).
  const std::string short_size = market_error(header + "% c\n3 3\n");
  EXPECT_NE(short_size.find("line 3"), std::string::npos) << short_size;
  const std::string bad_count = market_error(header + "3 3 four\n");
  EXPECT_NE(bad_count.find("line 2"), std::string::npos) << bad_count;
  EXPECT_NE(bad_count.find("'four'"), std::string::npos) << bad_count;

  // Entry lines: non-numeric value, then an out-of-range row index with the
  // valid range spelled out.
  const std::string bad_value =
      market_error(header + "2 2 1\n1 1 abc\n");
  EXPECT_NE(bad_value.find("line 3"), std::string::npos) << bad_value;
  EXPECT_NE(bad_value.find("'abc'"), std::string::npos) << bad_value;
  const std::string bad_row = market_error(header + "2 2 1\n7 1 1.0\n");
  EXPECT_NE(bad_row.find("line 3"), std::string::npos) << bad_row;
  EXPECT_NE(bad_row.find("[1, 2]"), std::string::npos) << bad_row;

  // Truncated entry list reports how many entries were actually read.
  const std::string truncated =
      market_error(header + "2 2 3\n1 1 1.0\n2 2 1.0\n");
  EXPECT_NE(truncated.find("truncated"), std::string::npos) << truncated;
  EXPECT_NE(truncated.find("2"), std::string::npos) << truncated;
}

/// All generators must produce structurally symmetric, diagonally dominant
/// matrices with a full diagonal — the contract the unpivoted factorization
/// relies on.
class GeneratorContractTest : public ::testing::TestWithParam<GeneratedMatrix> {};

TEST_P(GeneratorContractTest, StructurallySymmetric) {
  EXPECT_TRUE(GetParam().matrix.pattern.is_structurally_symmetric());
}

TEST_P(GeneratorContractTest, ValidStructure) {
  GetParam().matrix.validate();
  EXPECT_EQ(static_cast<Int>(GetParam().coords.size()), GetParam().matrix.n());
  EXPECT_FALSE(GetParam().name.empty());
}

TEST_P(GeneratorContractTest, RowAndColumnDiagonallyDominant) {
  const SparseMatrix& m = GetParam().matrix;
  const Int n = m.n();
  std::vector<double> row_off(static_cast<std::size_t>(n), 0.0);
  std::vector<double> col_off(static_cast<std::size_t>(n), 0.0);
  std::vector<double> diag(static_cast<std::size_t>(n), 0.0);
  for (Int j = 0; j < n; ++j)
    for (Int p = m.pattern.col_ptr[j]; p < m.pattern.col_ptr[j + 1]; ++p) {
      const Int i = m.pattern.row_idx[p];
      const double v = m.values[static_cast<std::size_t>(p)];
      if (i == j)
        diag[static_cast<std::size_t>(i)] = v;
      else {
        row_off[static_cast<std::size_t>(i)] += std::fabs(v);
        col_off[static_cast<std::size_t>(j)] += std::fabs(v);
      }
    }
  for (Int i = 0; i < n; ++i) {
    EXPECT_GT(diag[static_cast<std::size_t>(i)], row_off[static_cast<std::size_t>(i)]);
    EXPECT_GT(diag[static_cast<std::size_t>(i)], col_off[static_cast<std::size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorContractTest,
    ::testing::Values(laplacian2d(5, 4, 1), laplacian3d(3, 3, 3, 2),
                      fem3d(3, 3, 2, 3, 3), dg2d(3, 3, 4, 4),
                      dg3d(2, 2, 2, 5, 5), random_symmetric(40, 4.0, 6),
                      laplacian2d(5, 4, 1, ValueKind::kUnsymmetric),
                      fem3d(3, 2, 2, 2, 7, ValueKind::kUnsymmetric)),
    [](const ::testing::TestParamInfo<GeneratedMatrix>& info) {
      std::string name = info.param.name + "_" + std::to_string(info.index);
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(Generators, SymmetricValuesAreSymmetric) {
  const GeneratedMatrix gen = fem3d(3, 3, 2, 2, 17, ValueKind::kSymmetric);
  const SparseMatrix& m = gen.matrix;
  for (Int j = 0; j < m.n(); ++j)
    for (Int p = m.pattern.col_ptr[j]; p < m.pattern.col_ptr[j + 1]; ++p)
      EXPECT_DOUBLE_EQ(m.values[static_cast<std::size_t>(p)],
                       m.value_at(j, m.pattern.row_idx[p]));
}

TEST(Generators, UnsymmetricValuesDiffer) {
  const GeneratedMatrix gen = fem3d(3, 3, 2, 2, 17, ValueKind::kUnsymmetric);
  const SparseMatrix& m = gen.matrix;
  int differing = 0;
  for (Int j = 0; j < m.n(); ++j)
    for (Int p = m.pattern.col_ptr[j]; p < m.pattern.col_ptr[j + 1]; ++p) {
      const Int i = m.pattern.row_idx[p];
      if (i != j &&
          m.values[static_cast<std::size_t>(p)] != m.value_at(j, i))
        ++differing;
    }
  EXPECT_GT(differing, 0);
}

TEST(Generators, DeterministicInSeed) {
  const GeneratedMatrix a = dg2d(3, 3, 3, 42);
  const GeneratedMatrix b = dg2d(3, 3, 3, 42);
  ASSERT_EQ(a.matrix.nnz(), b.matrix.nnz());
  EXPECT_EQ(a.matrix.values, b.matrix.values);
  const GeneratedMatrix c = dg2d(3, 3, 3, 43);
  EXPECT_NE(a.matrix.values, c.matrix.values);
}

TEST(Generators, ExpectedDimensions) {
  EXPECT_EQ(laplacian2d(4, 5, 1).matrix.n(), 20);
  EXPECT_EQ(fem3d(2, 3, 4, 3, 1).matrix.n(), 72);
  EXPECT_EQ(dg2d(3, 4, 6, 1).matrix.n(), 72);
  EXPECT_EQ(dg3d(2, 2, 3, 4, 1).matrix.n(), 48);
}

TEST(Generators, DgBlockDensity) {
  // Each element couples densely to itself and to 4 (2-D) neighbors.
  const GeneratedMatrix gen = dg2d(3, 1, 4, 1);  // 3 elements in a row
  // Middle element: 3 blocks of 16 entries = 48 stored entries per column
  // group of 4 columns -> column degree 12.
  const SparseMatrix& m = gen.matrix;
  const Int middle_col = 5;  // inside element 1
  EXPECT_EQ(m.pattern.col_ptr[middle_col + 1] - m.pattern.col_ptr[middle_col], 12);
}

TEST(Generators, RandomSymmetricConnected) {
  const GeneratedMatrix gen = random_symmetric(60, 5.0, 9);
  Int count = 0;
  const Graph g(gen.matrix.pattern);
  connected_components(g, count);
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace psi
