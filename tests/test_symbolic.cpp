/// Unit tests for the symbolic stack: elimination trees, postorder, column
/// counts, supernodes and the quotient block symbolic factorization.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.hpp"
#include "sparse/generators.hpp"
#include "symbolic/analysis.hpp"

namespace psi {
namespace {

SparseMatrix tridiagonal(Int n) {
  TripletBuilder b(n);
  for (Int i = 0; i < n; ++i) b.add(i, i, 2.0);
  for (Int i = 0; i + 1 < n; ++i) b.add_symmetric(i, i + 1, -1.0);
  return b.compile();
}

/// Reference dense symbolic factorization (no supernodes): simulate scalar
/// Gaussian elimination on a boolean matrix, return the filled lower pattern.
std::vector<std::set<Int>> dense_symbolic(const SparsityPattern& pattern) {
  const Int n = pattern.n;
  std::vector<std::set<Int>> lower(static_cast<std::size_t>(n));
  for (Int j = 0; j < n; ++j)
    for (Int p = pattern.col_ptr[j]; p < pattern.col_ptr[j + 1]; ++p)
      if (pattern.row_idx[p] >= j)
        lower[static_cast<std::size_t>(j)].insert(pattern.row_idx[p]);
  for (Int k = 0; k < n; ++k) {
    std::vector<Int> rows(lower[static_cast<std::size_t>(k)].begin(),
                          lower[static_cast<std::size_t>(k)].end());
    for (Int r : rows)
      if (r > k)
        for (Int r2 : rows)
          if (r2 >= r) lower[static_cast<std::size_t>(r)].insert(r2);
  }
  return lower;
}

TEST(Etree, TridiagonalIsChain) {
  const SparseMatrix m = tridiagonal(6);
  const std::vector<Int> parent = elimination_tree(m.pattern);
  for (Int j = 0; j + 1 < 6; ++j) EXPECT_EQ(parent[static_cast<std::size_t>(j)], j + 1);
  EXPECT_EQ(parent[5], -1);
}

TEST(Etree, ArrowMatrixIsStar) {
  // Arrow pointing to the last column: every column's parent is n-1.
  const Int n = 6;
  TripletBuilder b(n);
  for (Int i = 0; i < n; ++i) b.add(i, i, 2.0);
  for (Int i = 0; i + 1 < n; ++i) b.add_symmetric(i, n - 1, -1.0);
  const std::vector<Int> parent = elimination_tree(b.compile().pattern);
  for (Int j = 0; j + 1 < n; ++j) EXPECT_EQ(parent[static_cast<std::size_t>(j)], n - 1);
}

TEST(Etree, MatchesDenseSymbolicParents) {
  // parent(j) = min { i > j : L_ij != 0 } on the filled pattern.
  const GeneratedMatrix gen = laplacian2d(5, 4, 3);
  const auto lower = dense_symbolic(gen.matrix.pattern);
  const std::vector<Int> parent = elimination_tree(gen.matrix.pattern);
  for (Int j = 0; j < gen.matrix.n(); ++j) {
    Int expected = -1;
    for (Int r : lower[static_cast<std::size_t>(j)])
      if (r > j) {
        expected = r;
        break;
      }
    EXPECT_EQ(parent[static_cast<std::size_t>(j)], expected) << "column " << j;
  }
}

TEST(Postorder, IsValidPostorder) {
  const GeneratedMatrix gen = fem3d(3, 3, 2, 1, 5);
  std::vector<Int> parent = elimination_tree(gen.matrix.pattern);
  const std::vector<Int> post = tree_postorder(parent);
  // Relabel the tree and verify.
  std::vector<Int> o2n(post.size());
  for (std::size_t k = 0; k < post.size(); ++k)
    o2n[static_cast<std::size_t>(post[k])] = static_cast<Int>(k);
  std::vector<Int> relabeled(post.size());
  for (std::size_t j = 0; j < post.size(); ++j) {
    const Int p = parent[j];
    relabeled[static_cast<std::size_t>(o2n[j])] =
        p < 0 ? -1 : o2n[static_cast<std::size_t>(p)];
  }
  EXPECT_TRUE(is_postordered(relabeled));
}

TEST(Postorder, DetectsNonPostordered) {
  // Star rooted at 0 with children 1, 2: node 0 precedes its children.
  EXPECT_FALSE(is_postordered({-1, 0, 0}));
  // Chain 0 -> 2 and 1 -> 2 is postordered.
  EXPECT_TRUE(is_postordered({2, 2, -1}));
  // Interleaved subtrees: children 0, 2 of root 3, child 1 of 2... gap test:
  // parent = {3, 3, 3, -1} is postordered (flat); {1, 3, 1, -1}: node 1 has
  // children 0 and 2 but 1 < 2, not postordered.
  EXPECT_FALSE(is_postordered({1, 3, 1, -1}));
}

TEST(ColumnCounts, MatchDenseSymbolic) {
  for (const GeneratedMatrix& gen :
       {laplacian2d(6, 5, 1), fem3d(3, 2, 2, 2, 2), random_symmetric(50, 4.0, 8)}) {
    // Counts require a postordered pattern; run through analyze()'s steps.
    std::vector<Int> parent = elimination_tree(gen.matrix.pattern);
    const std::vector<Int> post = tree_postorder(parent);
    std::vector<Int> o2n(post.size());
    for (std::size_t k = 0; k < post.size(); ++k)
      o2n[static_cast<std::size_t>(post[k])] = static_cast<Int>(k);
    const SparseMatrix pm = permute_symmetric(gen.matrix, o2n);
    const std::vector<Int> parent2 = elimination_tree(pm.pattern);
    const std::vector<Int> counts = column_counts(pm.pattern, parent2);
    const auto lower = dense_symbolic(pm.pattern);
    for (Int j = 0; j < pm.n(); ++j)
      EXPECT_EQ(counts[static_cast<std::size_t>(j)],
                static_cast<Int>(lower[static_cast<std::size_t>(j)].size()))
          << "column " << j << " in " << gen.name;
  }
}

TEST(Supernodes, TridiagonalFundamentalSupernodesAreScalar) {
  const SparseMatrix m = tridiagonal(8);
  const std::vector<Int> parent = elimination_tree(m.pattern);
  const std::vector<Int> counts = column_counts(m.pattern, parent);
  SupernodeOptions opt;
  opt.relax_small = 0;  // fundamental only
  opt.max_size = 0;
  const SupernodePartition part = build_supernodes(m.pattern, parent, counts, opt);
  // Tridiagonal: struct(j) = {j+1}, counts = 2, 2, ..., 1. Fundamental rule
  // merges nothing except... counts(j-1) == counts(j) + 1 fails for equal
  // counts, so every column is its own supernode until the tail pair.
  part.validate();
  EXPECT_GE(part.count(), 7);
}

TEST(Supernodes, DenseBlockDetected) {
  // A fully dense matrix is one fundamental supernode.
  const Int n = 6;
  TripletBuilder b(n);
  for (Int i = 0; i < n; ++i)
    for (Int j = 0; j < n; ++j) b.add(i, j, 1.0);
  const SparseMatrix m = b.compile();
  const std::vector<Int> parent = elimination_tree(m.pattern);
  const std::vector<Int> counts = column_counts(m.pattern, parent);
  SupernodeOptions opt;
  opt.relax_small = 0;
  opt.max_size = 0;
  const SupernodePartition part = build_supernodes(m.pattern, parent, counts, opt);
  EXPECT_EQ(part.count(), 1);
}

TEST(Supernodes, MaxSizeCapRespected) {
  const Int n = 12;
  TripletBuilder b(n);
  for (Int i = 0; i < n; ++i)
    for (Int j = 0; j < n; ++j) b.add(i, j, 1.0);
  const SparseMatrix m = b.compile();
  const std::vector<Int> parent = elimination_tree(m.pattern);
  const std::vector<Int> counts = column_counts(m.pattern, parent);
  SupernodeOptions opt;
  opt.max_size = 5;
  const SupernodePartition part = build_supernodes(m.pattern, parent, counts, opt);
  for (Int k = 0; k < part.count(); ++k) EXPECT_LE(part.size(k), 5);
  EXPECT_EQ(part.n(), n);
}

TEST(Supernodes, UniformAndScalarPartitions) {
  const SupernodePartition s = scalar_supernodes(5);
  EXPECT_EQ(s.count(), 5);
  const SupernodePartition u = uniform_supernodes(10, 4);
  EXPECT_EQ(u.count(), 3);
  EXPECT_EQ(u.size(2), 2);
  u.validate();
}

TEST(BlockSymbolic, ScalarPartitionMatchesScalarSymbolic) {
  // With width-1 supernodes the quotient symbolic factorization must equal
  // the scalar one.
  const GeneratedMatrix gen = laplacian2d(5, 5, 2);
  std::vector<Int> parent = elimination_tree(gen.matrix.pattern);
  const std::vector<Int> post = tree_postorder(parent);
  std::vector<Int> o2n(post.size());
  for (std::size_t k = 0; k < post.size(); ++k)
    o2n[static_cast<std::size_t>(post[k])] = static_cast<Int>(k);
  const SparseMatrix pm = permute_symmetric(gen.matrix, o2n);
  const BlockStructure bs =
      block_symbolic_factorization(pm.pattern, scalar_supernodes(pm.n()));
  bs.validate();
  const auto lower = dense_symbolic(pm.pattern);
  for (Int j = 0; j < pm.n(); ++j) {
    std::vector<Int> expected;
    for (Int r : lower[static_cast<std::size_t>(j)])
      if (r > j) expected.push_back(r);
    EXPECT_EQ(bs.struct_of[static_cast<std::size_t>(j)], expected) << "col " << j;
  }
}

TEST(BlockSymbolic, ParentIsMinStruct) {
  const GeneratedMatrix gen = fem3d(3, 3, 2, 2, 4);
  const SymbolicAnalysis an = analyze(gen, {});
  an.blocks.validate();  // checks parent == min(struct) among other things
}

TEST(BlockSymbolic, AncestorChainProperty) {
  // Every element of struct(K) must be an ancestor of K in the supernodal
  // etree (the paper's C(K) lies on K's path to the root).
  const GeneratedMatrix gen = dg2d(4, 4, 3, 9);
  const SymbolicAnalysis an = analyze(gen, {});
  const BlockStructure& bs = an.blocks;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    std::set<Int> ancestors;
    for (Int a = bs.parent[static_cast<std::size_t>(k)]; a >= 0;
         a = bs.parent[static_cast<std::size_t>(a)])
      ancestors.insert(a);
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)])
      EXPECT_TRUE(ancestors.count(i)) << "block " << i << " of supernode " << k;
  }
}

TEST(BlockSymbolic, BlockCliqueProperty) {
  // For I < J both in struct(K), block (J, I) must be in struct(I) — the
  // property PSelInv's update GEMMs rely on.
  const GeneratedMatrix gen = fem3d(3, 3, 3, 1, 6);
  const SymbolicAnalysis an = analyze(gen, {});
  const BlockStructure& bs = an.blocks;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    const auto& str = bs.struct_of[static_cast<std::size_t>(k)];
    for (std::size_t a = 0; a < str.size(); ++a)
      for (std::size_t b = a + 1; b < str.size(); ++b) {
        const auto& si = bs.struct_of[static_cast<std::size_t>(str[a])];
        EXPECT_TRUE(std::binary_search(si.begin(), si.end(), str[b]))
            << "missing block (" << str[b] << "," << str[a] << ")";
      }
  }
}

TEST(Analyze, PipelineInvariants) {
  for (const GeneratedMatrix& gen :
       {laplacian2d(8, 8, 1), fem3d(3, 3, 2, 3, 2), dg3d(2, 2, 2, 4, 3)}) {
    AnalysisOptions opt;
    opt.ordering.method = OrderingMethod::kGeometricDissection;
    opt.ordering.dissection_leaf_size = 16;
    const SymbolicAnalysis an = analyze(gen, opt);
    EXPECT_TRUE(is_postordered(an.etree)) << gen.name;
    an.blocks.validate();
    EXPECT_EQ(an.matrix.n(), gen.matrix.n());
    EXPECT_EQ(an.matrix.nnz(), gen.matrix.nnz());
    // Full-block fill dominates scalar fill.
    EXPECT_GE(an.blocks.factor_nnz_fullblock(), an.scalar_factor_nnz());
    // The permutation round-trips values.
    EXPECT_DOUBLE_EQ(an.matrix.value_at(an.perm.new_of(0), an.perm.new_of(0)),
                     gen.matrix.value_at(0, 0));
  }
}

TEST(Analyze, FullBlockCountsConsistent) {
  const GeneratedMatrix gen = fem3d(4, 4, 3, 2, 12);
  AnalysisOptions opt;
  opt.ordering.dissection_leaf_size = 16;
  opt.supernodes.max_size = 16;
  const SymbolicAnalysis an = analyze(gen, opt);
  const BlockStructure& bs = an.blocks;
  EXPECT_EQ(bs.lu_nnz_fullblock(), 2 * bs.factor_nnz_fullblock() -
                                       [&] {
                                         Count d = 0;
                                         for (Int k = 0; k < bs.supernode_count(); ++k)
                                           d += static_cast<Count>(bs.part.size(k)) *
                                                bs.part.size(k);
                                         return d;
                                       }());
  EXPECT_GT(bs.block_count(), bs.supernode_count());
}

TEST(Analyze, RejectsUnsymmetricPattern) {
  TripletBuilder b(3);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  b.add(2, 2, 1.0);
  b.add(2, 0, 1.0);
  SparseMatrix m = b.compile();
  EXPECT_THROW(analyze(m, {}), Error);
}

}  // namespace
}  // namespace psi
