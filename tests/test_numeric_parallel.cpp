/// Tests for the task-parallel numeric phase: TaskGraph scheduling
/// semantics, and the bitwise-determinism contract of factor_parallel /
/// selinv_parallel — identical bytes to the sequential kernels for any
/// thread count, pool, or adversarial ready-queue permutation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <optional>
#include <vector>

#include "check/oracle.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "numeric/selinv.hpp"
#include "numeric/supernodal_lu.hpp"
#include "numeric/task_graph.hpp"
#include "sparse/generators.hpp"

namespace psi {
namespace {

using numeric::ParallelOptions;
using numeric::TaskGraph;
using numeric::TaskGraphStats;

// ----- TaskGraph scheduling ------------------------------------------------

TEST(TaskGraph, InlineRunsInKeyOrder) {
  TaskGraph graph;
  std::vector<int> order;
  // Insert in reverse key order; the inline drain must follow keys.
  for (int i = 7; i >= 0; --i)
    graph.add(static_cast<std::uint64_t>(i),
              [&order, i] { order.push_back(i); });
  graph.run(ParallelOptions{});
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(TaskGraph, EdgesOverrideKeyOrder) {
  TaskGraph graph;
  std::vector<char> order;
  const TaskGraph::TaskId low =
      graph.add(0, [&order] { order.push_back('a'); });
  const TaskGraph::TaskId high =
      graph.add(100, [&order] { order.push_back('b'); });
  // The key-preferred task depends on the key-dispreferred one.
  graph.add_edge(high, low);
  graph.run(ParallelOptions{});
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'b');
  EXPECT_EQ(order[1], 'a');
}

TEST(TaskGraph, PooledRunExecutesEveryTaskOnce) {
  parallel::ThreadPool pool(3);
  TaskGraph graph;
  std::atomic<int> runs{0};
  std::vector<TaskGraph::TaskId> layer;
  for (int i = 0; i < 16; ++i)
    layer.push_back(
        graph.add(static_cast<std::uint64_t>(i), [&runs] { ++runs; }));
  const TaskGraph::TaskId sink = graph.add(1000, [&runs] { ++runs; });
  for (const TaskGraph::TaskId id : layer) graph.add_edge(id, sink);
  ParallelOptions options;
  options.threads = 4;
  options.pool = &pool;
  TaskGraphStats stats;
  options.stats = &stats;
  graph.run(options);
  EXPECT_EQ(runs.load(), 17);
  EXPECT_EQ(stats.tasks, 17);
  EXPECT_EQ(stats.edges, 16);
  EXPECT_EQ(stats.threads, 4);
  EXPECT_GE(stats.ready_high_water, 1u);
  EXPECT_GE(stats.run_seconds, 0.0);
}

TEST(TaskGraph, ErrorCancelsPendingInline) {
  TaskGraph graph;
  std::atomic<int> ran{0};
  const TaskGraph::TaskId boom =
      graph.add(0, [] { throw Error("kernel failed"); });
  const TaskGraph::TaskId dependent = graph.add(1, [&ran] { ++ran; });
  graph.add_edge(boom, dependent);
  EXPECT_THROW(graph.run(ParallelOptions{}), Error);
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGraph, ErrorCancelsPendingPooled) {
  parallel::ThreadPool pool(1);
  TaskGraph graph;
  std::atomic<int> ran{0};
  const TaskGraph::TaskId boom =
      graph.add(0, [] { throw Error("kernel failed"); });
  const TaskGraph::TaskId dependent = graph.add(1, [&ran] { ++ran; });
  graph.add_edge(boom, dependent);
  ParallelOptions options;
  options.threads = 2;
  options.pool = &pool;
  EXPECT_THROW(graph.run(options), Error);
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGraph, RootlessCycleThrows) {
  TaskGraph graph;
  const TaskGraph::TaskId a = graph.add(0, [] {});
  const TaskGraph::TaskId b = graph.add(1, [] {});
  graph.add_edge(a, b);
  graph.add_edge(b, a);
  EXPECT_THROW(graph.run(ParallelOptions{}), Error);
}

TEST(TaskGraph, PartialCycleDetectedInline) {
  TaskGraph graph;
  graph.add(0, [] {});
  const TaskGraph::TaskId a = graph.add(1, [] {});
  const TaskGraph::TaskId b = graph.add(2, [] {});
  graph.add_edge(a, b);
  graph.add_edge(b, a);
  EXPECT_THROW(graph.run(ParallelOptions{}), Error);
}

TEST(TaskGraph, PartialCycleDetectedPooled) {
  // The pooled drain must diagnose unreachable tasks instead of parking
  // every worker on the condition variable forever.
  parallel::ThreadPool pool(1);
  TaskGraph graph;
  graph.add(0, [] {});
  const TaskGraph::TaskId a = graph.add(1, [] {});
  const TaskGraph::TaskId b = graph.add(2, [] {});
  graph.add_edge(a, b);
  graph.add_edge(b, a);
  ParallelOptions options;
  options.threads = 2;
  options.pool = &pool;
  EXPECT_THROW(graph.run(options), Error);
}

TEST(TaskGraph, TieBreakSeedScramblesInlineOrder) {
  // With a seed the inline drain follows the scrambled priorities — a
  // deterministic adversarial execution order — yet still runs everything.
  const auto order_with_seed = [](std::uint64_t seed) {
    TaskGraph graph;
    std::vector<int> order;
    for (int i = 0; i < 12; ++i)
      graph.add(static_cast<std::uint64_t>(i),
                [&order, i] { order.push_back(i); });
    ParallelOptions options;
    options.tie_break_seed = seed;
    graph.run(options);
    return order;
  };
  const std::vector<int> natural = order_with_seed(0);
  const std::vector<int> scrambled = order_with_seed(0x5eed);
  const std::vector<int> scrambled_again = order_with_seed(0x5eed);
  ASSERT_EQ(natural.size(), 12u);
  ASSERT_EQ(scrambled.size(), 12u);
  EXPECT_NE(scrambled, natural);          // actually adversarial
  EXPECT_EQ(scrambled, scrambled_again);  // and deterministic
}

// ----- bitwise identity of the parallel numeric drivers --------------------

/// Byte-compare every stored panel of two block matrices.
::testing::AssertionResult bitwise_equal(const BlockMatrix& a,
                                         const BlockMatrix& b) {
  const auto bytes_equal = [](const DenseMatrix& x, const DenseMatrix& y) {
    return x.rows() == y.rows() && x.cols() == y.cols() &&
           std::memcmp(x.data(), y.data(),
                       static_cast<std::size_t>(x.rows()) *
                           static_cast<std::size_t>(x.cols()) *
                           sizeof(double)) == 0;
  };
  if (a.supernode_count() != b.supernode_count())
    return ::testing::AssertionFailure() << "supernode count differs";
  for (Int k = 0; k < a.supernode_count(); ++k) {
    if (!bytes_equal(a.diag(k), b.diag(k)))
      return ::testing::AssertionFailure() << "diag(" << k << ") differs";
    if (!bytes_equal(a.lpanel(k), b.lpanel(k)))
      return ::testing::AssertionFailure() << "lpanel(" << k << ") differs";
    if (!bytes_equal(a.upanel(k), b.upanel(k)))
      return ::testing::AssertionFailure() << "upanel(" << k << ") differs";
  }
  return ::testing::AssertionSuccess();
}

struct Problem {
  const char* name;
  SymbolicAnalysis analysis;
};

std::vector<Problem> problems() {
  AnalysisOptions opt;
  opt.ordering.method = OrderingMethod::kMinDegree;
  opt.supernodes.max_size = 8;
  std::vector<Problem> out;
  out.push_back({"dg2d", analyze(dg2d(6, 6, 3, 7), opt)});
  out.push_back({"dg3d", analyze(dg3d(3, 3, 3, 2, 9), opt)});
  out.push_back({"fem3d", analyze(fem3d(4, 4, 4, 2, 11), opt)});
  return out;
}

TEST(NumericParallel, FactorBitwiseAcrossThreadCounts) {
  for (const Problem& problem : problems()) {
    const SupernodalLU seq = SupernodalLU::factor(problem.analysis);
    for (const int threads : {1, 2, 4, 8}) {
      std::optional<parallel::ThreadPool> pool;
      ParallelOptions options;
      options.threads = threads;
      if (threads > 1) {
        pool.emplace(threads - 1);
        options.pool = &*pool;
      }
      const SupernodalLU par =
          SupernodalLU::factor_parallel(problem.analysis, options);
      EXPECT_TRUE(bitwise_equal(seq.blocks(), par.blocks()))
          << problem.name << " threads=" << threads;
    }
  }
}

TEST(NumericParallel, SelinvBitwiseAcrossThreadCounts) {
  for (const Problem& problem : problems()) {
    SupernodalLU seq = SupernodalLU::factor(problem.analysis);
    const BlockMatrix reference = selected_inversion(seq);
    for (const int threads : {1, 2, 4, 8}) {
      std::optional<parallel::ThreadPool> pool;
      ParallelOptions options;
      options.threads = threads;
      if (threads > 1) {
        pool.emplace(threads - 1);
        options.pool = &*pool;
      }
      SupernodalLU par =
          SupernodalLU::factor_parallel(problem.analysis, options);
      const BlockMatrix ainv = selinv_parallel(par, options);
      EXPECT_TRUE(par.normalized());
      // Both the selected inverse AND the normalized factors must match the
      // sequential pipeline byte for byte.
      EXPECT_TRUE(bitwise_equal(reference, ainv))
          << problem.name << " ainv threads=" << threads;
      EXPECT_TRUE(bitwise_equal(seq.blocks(), par.blocks()))
          << problem.name << " factors threads=" << threads;
    }
  }
}

TEST(NumericParallel, AdversarialTieBreakSeedsAreBitwiseInvariant) {
  // Scrambled ready-queue priorities reorder task execution (inline: fully
  // deterministically) — the canonical-ordinal reduction must hide it.
  for (const Problem& problem : problems()) {
    SupernodalLU seq = SupernodalLU::factor(problem.analysis);
    const BlockMatrix reference = selected_inversion(seq);
    for (const std::uint64_t seed :
         {std::uint64_t{1}, std::uint64_t{0x9e3779b97f4a7c15ULL},
          std::uint64_t{0xdecafbadULL}}) {
      for (const int threads : {1, 3}) {
        std::optional<parallel::ThreadPool> pool;
        ParallelOptions options;
        options.threads = threads;
        options.tie_break_seed = seed;
        if (threads > 1) {
          pool.emplace(threads - 1);
          options.pool = &*pool;
        }
        SupernodalLU par =
            SupernodalLU::factor_parallel(problem.analysis, options);
        const BlockMatrix ainv = selinv_parallel(par, options);
        EXPECT_TRUE(bitwise_equal(reference, ainv))
            << problem.name << " seed=" << seed << " threads=" << threads;
      }
    }
  }
}

TEST(NumericParallel, LoaderOverloadMatchesSparseOverload) {
  const Problem problem = problems().front();
  ParallelOptions options;  // inline
  const SupernodalLU from_sparse = SupernodalLU::factor_parallel(
      problem.analysis.blocks, problem.analysis.matrix, options);
  const SupernodalLU from_loader = SupernodalLU::factor_parallel(
      problem.analysis.blocks,
      [&](BlockMatrix& m) { m.load(problem.analysis.matrix); }, options);
  EXPECT_TRUE(bitwise_equal(from_sparse.blocks(), from_loader.blocks()));
}

TEST(NumericParallel, StatsAccumulateAcrossBothGraphs) {
  const Problem problem = problems().front();
  parallel::ThreadPool pool(1);
  ParallelOptions options;
  options.threads = 2;
  options.pool = &pool;
  TaskGraphStats stats;
  options.stats = &stats;
  SupernodalLU lu = SupernodalLU::factor_parallel(problem.analysis, options);
  const TaskGraphStats after_factor = stats;
  EXPECT_GT(after_factor.tasks, 0);
  EXPECT_GT(after_factor.edges, 0);
  const BlockMatrix ainv = selinv_parallel(lu, options);
  EXPECT_GT(stats.tasks, after_factor.tasks);  // selinv's graph accumulated
  EXPECT_EQ(stats.threads, 2);
  EXPECT_GT(ainv.supernode_count(), 0);
}

TEST(NumericParallel, BlockRowStructureIsTransposeOfStructOf) {
  for (const Problem& problem : problems()) {
    const BlockStructure& bs = problem.analysis.blocks;
    const std::vector<std::vector<Int>> rows = block_row_structure(bs);
    ASSERT_EQ(rows.size(), static_cast<std::size_t>(bs.supernode_count()));
    // rows[c] lists exactly the s with c in struct(s), ascending.
    std::vector<std::vector<Int>> expected(rows.size());
    for (Int s = 0; s < bs.supernode_count(); ++s)
      for (const Int c : bs.struct_of[static_cast<std::size_t>(s)])
        expected[static_cast<std::size_t>(c)].push_back(s);
    EXPECT_EQ(rows, expected) << problem.name;
  }
}

TEST(NumericParallel, OracleRunsNumericParallelLegs) {
  // The differential oracle carries the shared-memory legs on every trial:
  // factor_parallel + selinv_parallel compared bitwise to the sequential
  // reference (one natural, one adversarially scrambled).
  check::CaseSpec spec;
  spec.matrix_seed = 77;
  spec.n = 24;
  spec.degree = 3.0;
  spec.schedules = 1;
  const check::CaseResult result = check::run_case(spec);
  EXPECT_TRUE(result.passed) << result.signature;
  EXPECT_EQ(result.numeric_parallel_legs, 2u);
}

}  // namespace
}  // namespace psi
