/// Regression test for event-arena exhaustion. This target compiles the
/// simulator sources directly (not via psi_sim) with PSI_SIM_SLOT_BITS=10,
/// so the pooled arena holds at most 2^10 live events and the exhaustion
/// check is reachable with a small storm of posted sends. With the default
/// 24-bit arena the same storm would just grow the pool.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/check.hpp"
#include "sim/engine.hpp"

static_assert(PSI_SIM_SLOT_BITS == 10,
              "this test must be built with PSI_SIM_SLOT_BITS=10");

namespace psi::sim {
namespace {

sim::MachineConfig test_config() {
  MachineConfig config;
  config.cores_per_node = 4;
  config.nodes_per_group = 2;
  config.flop_rate = 1e9;
  return config;
}

class Quiet : public Rank {
 public:
  void on_start(Context&) override {}
  void on_message(Context&, const Message&) override {}
};

/// Posts `count` sends from one handler, so they are all simultaneously live.
class Storm : public Rank {
 public:
  explicit Storm(int count) : count_(count) {}
  void on_start(Context& ctx) override {
    for (int i = 0; i < count_; ++i) ctx.send(1, i, 64, 0);
  }
  void on_message(Context&, const Message&) override {}

 private:
  int count_;
};

void run_storm(int count) {
  const Machine m(test_config());
  Engine engine(m, 2, 1);
  engine.set_rank(0, std::make_unique<Storm>(count));
  engine.set_rank(1, std::make_unique<Quiet>());
  engine.run();
}

TEST(EventArena, ExhaustionFailsLoudly) {
  try {
    run_storm(2000);  // > 2^10 live events
    FAIL() << "expected arena exhaustion";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("event arena exhausted"),
              std::string::npos)
        << e.what();
  }
}

TEST(EventArena, BelowCapacityRunsToCompletion) {
  run_storm(500);  // fits in the 1024-slot arena
}

TEST(EventArena, SlotRecyclingSurvivesSustainedLoad) {
  // A long ping-pong posts far more than 2^10 TOTAL events but only a
  // handful live at once: slot recycling must keep the pool small.
  class Pinger : public Rank {
   public:
    void on_start(Context& ctx) override {
      if (ctx.rank() == 0) ctx.send(1, 0, 64, 0);
    }
    void on_message(Context& ctx, const Message& msg) override {
      if (msg.tag < 5000) ctx.send(msg.src, msg.tag + 1, 64, 0);
    }
  };
  const Machine m(test_config());
  Engine engine(m, 2, 1);
  engine.set_rank(0, std::make_unique<Pinger>());
  engine.set_rank(1, std::make_unique<Pinger>());
  engine.run();  // would throw if recycling leaked slots
  EXPECT_GT(engine.events_processed(), 5000);
}

}  // namespace
}  // namespace psi::sim
