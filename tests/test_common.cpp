/// Unit tests for psi_common: checks, stats, rng, histogram, table, heatmap,
/// csv, and the bench thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/heatmap.hpp"
#include "common/histogram.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace psi {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    PSI_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(PSI_CHECK(2 + 2 == 4));
  EXPECT_NO_THROW(PSI_CHECK_MSG(true, "unused"));
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_THROW(parse_log_level("bogus"), Error);
}

TEST(Logging, SetAndGet) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(before);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(17);
    EXPECT_LT(v, 17u);
  }
  EXPECT_THROW(rng.uniform(0), Error);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(Rng, LognormalPositive) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(HashCombine, DistinctInputsDistinctOutputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(hash_combine(1234, i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(HashCombine, Deterministic) {
  EXPECT_EQ(hash_combine(7, 9), hash_combine(7, 9));
  EXPECT_NE(hash_combine(7, 9), hash_combine(9, 7));
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleStats, MedianEvenOdd) {
  SampleStats odd({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(odd.median(), 2.0);
  SampleStats even({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(even.median(), 2.5);
}

TEST(SampleStats, MatchesOnline) {
  Rng rng(21);
  SampleStats sample;
  OnlineStats online;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform_double(0.0, 10.0);
    sample.add(v);
    online.add(v);
  }
  EXPECT_NEAR(sample.mean(), online.mean(), 1e-9);
  EXPECT_NEAR(sample.stddev(), online.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(sample.min(), online.min());
  EXPECT_DOUBLE_EQ(sample.max(), online.max());
}

TEST(SampleStats, QuantileEndpoints) {
  SampleStats s({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
  EXPECT_THROW(s.quantile(1.5), Error);
}

TEST(SampleStats, EmptyThrows) {
  SampleStats s;
  EXPECT_THROW(s.min(), Error);
  EXPECT_THROW(s.median(), Error);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to bin 0
  h.add(0.5);
  h.add(9.9);
  h.add(25.0);   // clamps to last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 4.0, 2);
  h.add_all({1.0, 1.5, 3.0});
  const std::string render = h.render(20, "volume");
  EXPECT_NE(render.find("volume"), std::string::npos);
  EXPECT_NE(render.find("total 3"), std::string::npos);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(TextTable, RendersAligned) {
  TextTable t({"scheme", "min", "max"});
  t.add_row({"Flat-Tree", "28.99", "69.49"});
  t.add_row({"Shifted Binary-Tree", "33.64", "54.10"});
  const std::string s = t.render();
  EXPECT_NE(s.find("Flat-Tree"), std::string::npos);
  EXPECT_NE(s.find("Shifted Binary-Tree"), std::string::npos);
  EXPECT_NE(s.find("| scheme"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt_int(42), "42");
}

TEST(HeatMap, StoresValues) {
  HeatMap m(3, 4);
  m.at(1, 2) = 7.5;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 7.5);
  EXPECT_DOUBLE_EQ(m.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(m.max_value(), 7.5);
}

TEST(HeatMap, RenderSharedScale) {
  HeatMap m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(1, 1) = 2.0;
  const std::string s = m.render(0.0, 4.0);
  EXPECT_NE(s.find("scale"), std::string::npos);
}

TEST(HeatMap, CsvShape) {
  HeatMap m(2, 3);
  m.at(0, 1) = 1.5;
  std::istringstream in(m.to_csv());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 2);
}

TEST(HeatMap, OutOfRangeThrows) {
  HeatMap m(2, 2);
  EXPECT_THROW(m.at(2, 0), Error);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(ThreadPool, RunsEveryTask) {
  parallel::ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i)
    pool.submit([&sum, i] { sum += i; });
  pool.wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, WaitRethrowsTaskException) {
  parallel::ThreadPool pool(2);
  std::atomic<int> completed{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&completed, i] {
      if (i == 3) throw Error("task 3 failed");
      ++completed;
    });
  EXPECT_THROW(pool.wait(), Error);
  // All other tasks still ran, and the pool stays usable after the throw.
  EXPECT_EQ(completed.load(), 7);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  EXPECT_NO_THROW(pool.wait());
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, NestedSubmitRejected) {
  parallel::ThreadPool pool(2);
  std::atomic<bool> rejected{false};
  pool.submit([&pool, &rejected] {
    try {
      pool.submit([] {});
    } catch (const Error&) {
      rejected = true;
    }
  });
  pool.wait();
  EXPECT_TRUE(rejected.load());
}

TEST(ThreadPool, CrossPoolSubmitAllowed) {
  // The self-nesting guard is per pool: a worker of one pool may drive a
  // different pool (a serve worker driving its dedicated compute pool).
  parallel::ThreadPool outer(1);
  parallel::ThreadPool inner(1);
  std::atomic<int> ran{0};
  outer.submit([&inner, &ran] {
    inner.submit([&ran] { ran = 1; });
    inner.wait();
  });
  outer.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelForEach, EmptyRangeIsNoOp) {
  std::vector<int> empty;
  EXPECT_NO_THROW(parallel::parallel_for_each(
      empty, [](int&) { FAIL() << "must not be called"; }, 8));
}

TEST(ParallelForEach, VisitsEveryItemOnce) {
  std::vector<int> items(1000);
  std::iota(items.begin(), items.end(), 0);
  parallel::parallel_for_each(items, [](int& v) { v += 1; }, 8);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(items[static_cast<std::size_t>(i)], i + 1);
}

TEST(ParallelForEach, SingleThreadRunsInline) {
  // threads == 1 must not spawn a pool: nested use inside a pool task is
  // then legal (parallel_for_each falls back to a plain loop).
  parallel::ThreadPool pool(2);
  std::atomic<int> sum{0};
  pool.submit([&sum] {
    std::vector<int> items{1, 2, 3};
    parallel::parallel_for_each(items, [&sum](int& v) { sum += v; }, 1);
  });
  pool.wait();
  EXPECT_EQ(sum.load(), 6);
}

TEST(ParallelForEach, PropagatesException) {
  std::vector<int> items(64);
  std::iota(items.begin(), items.end(), 0);
  EXPECT_THROW(parallel::parallel_for_each(
                   items,
                   [](int& v) {
                     if (v == 40) throw Error("boom");
                   },
                   4),
               Error);
}

TEST(BenchThreads, EnvOverride) {
  ASSERT_EQ(setenv("PSI_BENCH_THREADS", "3", 1), 0);
  EXPECT_EQ(parallel::bench_threads(), 3);
  ASSERT_EQ(unsetenv("PSI_BENCH_THREADS"), 0);
  EXPECT_GE(parallel::bench_threads(), 1);
}

TEST(BenchThreads, BadValuesClampToOneWithWarning) {
  // A mistyped knob must degrade to sequential execution, not abort a
  // multi-hour harness run.
  EXPECT_EQ(parallel::parse_bench_threads("0"), 1);
  EXPECT_EQ(parallel::parse_bench_threads("-4"), 1);
  EXPECT_EQ(parallel::parse_bench_threads("garbage"), 1);
  EXPECT_EQ(parallel::parse_bench_threads(""), 1);
  EXPECT_EQ(parallel::parse_bench_threads("3x"), 1);  // trailing junk
  EXPECT_EQ(parallel::parse_bench_threads("2.5"), 1);
  EXPECT_EQ(parallel::parse_bench_threads("99999999999999999999"), 1);

  EXPECT_EQ(parallel::parse_bench_threads("1"), 1);
  EXPECT_EQ(parallel::parse_bench_threads("16"), 16);
  EXPECT_EQ(parallel::parse_bench_threads("1000000"),
            parallel::kMaxBenchThreads);
  EXPECT_GE(parallel::parse_bench_threads(nullptr), 1);  // unset: hw default

  // The clamp must hold through the env-reading entry point too.
  ASSERT_EQ(setenv("PSI_BENCH_THREADS", "not-a-number", 1), 0);
  EXPECT_EQ(parallel::bench_threads(), 1);
  ASSERT_EQ(setenv("PSI_BENCH_THREADS", "0", 1), 0);
  EXPECT_EQ(parallel::bench_threads(), 1);
  ASSERT_EQ(unsetenv("PSI_BENCH_THREADS"), 0);
}

TEST(ComputeThreads, EnvOverride) {
  ASSERT_EQ(setenv("PSI_SERVE_COMPUTE_THREADS", "3", 1), 0);
  EXPECT_EQ(parallel::compute_threads(), 3);
  // Unset defaults to 1 (a service must opt into grabbing cores), unlike
  // bench_threads' hardware-concurrency default.
  ASSERT_EQ(unsetenv("PSI_SERVE_COMPUTE_THREADS"), 0);
  EXPECT_EQ(parallel::compute_threads(), 1);
}

TEST(ComputeThreads, BadValuesClampToOneWithWarning) {
  EXPECT_EQ(parallel::parse_compute_threads("0"), 1);
  EXPECT_EQ(parallel::parse_compute_threads("-4"), 1);
  EXPECT_EQ(parallel::parse_compute_threads("garbage"), 1);
  EXPECT_EQ(parallel::parse_compute_threads(""), 1);
  EXPECT_EQ(parallel::parse_compute_threads("3x"), 1);  // trailing junk
  EXPECT_EQ(parallel::parse_compute_threads("2.5"), 1);
  EXPECT_EQ(parallel::parse_compute_threads("99999999999999999999"), 1);

  EXPECT_EQ(parallel::parse_compute_threads("1"), 1);
  EXPECT_EQ(parallel::parse_compute_threads("8"), 8);
  EXPECT_EQ(parallel::parse_compute_threads("1000000"),
            parallel::kMaxComputeThreads);
  EXPECT_EQ(parallel::parse_compute_threads(nullptr), 1);  // unset: sequential

  ASSERT_EQ(setenv("PSI_SERVE_COMPUTE_THREADS", "not-a-number", 1), 0);
  EXPECT_EQ(parallel::compute_threads(), 1);
  ASSERT_EQ(unsetenv("PSI_SERVE_COMPUTE_THREADS"), 0);
}

}  // namespace
}  // namespace psi
