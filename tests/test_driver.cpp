/// Unit tests for the experiment scaffolding and paper-analog matrices.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "driver/experiment.hpp"
#include "driver/paper_matrices.hpp"

namespace psi::driver {
namespace {

TEST(PaperMatrices, AllBuildAndAreSymmetric) {
  for (PaperMatrix which : all_paper_matrices()) {
    const GeneratedMatrix gen = make_paper_matrix(which, 0.4);
    EXPECT_TRUE(gen.matrix.pattern.is_structurally_symmetric())
        << paper_matrix_name(which);
    EXPECT_GT(gen.matrix.n(), 0);
  }
}

TEST(PaperMatrices, DgDenserThanFem) {
  // The paper's two regimes: DG matrices are "relatively dense", the FEM
  // matrices "relatively sparse" (density = nnz / n^2).
  const GeneratedMatrix dg = make_paper_matrix(PaperMatrix::kDgPnf14000, 0.5);
  const GeneratedMatrix fem = make_paper_matrix(PaperMatrix::kAudikw1, 0.5);
  const double dg_density = static_cast<double>(dg.matrix.nnz()) /
                            (static_cast<double>(dg.matrix.n()) * dg.matrix.n());
  const double fem_density =
      static_cast<double>(fem.matrix.nnz()) /
      (static_cast<double>(fem.matrix.n()) * fem.matrix.n());
  EXPECT_GT(dg_density, fem_density);
}

TEST(PaperMatrices, ScaleChangesSize) {
  const GeneratedMatrix small = make_paper_matrix(PaperMatrix::kAudikw1, 0.3);
  const GeneratedMatrix large = make_paper_matrix(PaperMatrix::kAudikw1, 0.6);
  EXPECT_LT(small.matrix.n(), large.matrix.n());
  EXPECT_THROW(make_paper_matrix(PaperMatrix::kAudikw1, 0.0), Error);
}

TEST(Experiment, SquareGridFactorizations) {
  int pr = 0, pc = 0;
  square_grid(64, pr, pc);
  EXPECT_EQ(pr, 8);
  EXPECT_EQ(pc, 8);
  square_grid(2116, pr, pc);
  EXPECT_EQ(pr, 46);
  EXPECT_EQ(pc, 46);
  square_grid(12, pr, pc);
  EXPECT_EQ(pr * pc, 12);
  EXPECT_GE(pr, pc);
  square_grid(7, pr, pc);  // prime: 7x1
  EXPECT_EQ(pr, 7);
  EXPECT_EQ(pc, 1);
}

TEST(Experiment, HeatmapFromRankField) {
  const dist::ProcessGrid grid(2, 3);
  std::vector<double> field{1, 2, 3, 4, 5, 6};
  const HeatMap map = rank_field_to_heatmap(field, grid);
  EXPECT_DOUBLE_EQ(map.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(map.at(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(map.at(1, 0), 4.0);
  EXPECT_THROW(rank_field_to_heatmap({1.0}, grid), Error);
}

TEST(Experiment, EdisonConfigDefaults) {
  const sim::MachineConfig config = edison_config(0.25, 99);
  EXPECT_EQ(config.cores_per_node, 24);
  EXPECT_DOUBLE_EQ(config.jitter_sigma, 0.25);
  EXPECT_EQ(config.jitter_seed, 99u);
  // Tiers are ordered: closer is faster.
  EXPECT_LT(config.lat_intranode, config.lat_intragroup);
  EXPECT_LT(config.lat_intragroup, config.lat_intergroup);
  EXPECT_GT(config.bw_intranode, config.bw_intergroup);
}

TEST(Experiment, TimingMachineCalibration) {
  const sim::MachineConfig nominal = edison_config();
  const sim::MachineConfig timing = timing_machine(0.3, 5);
  // Bandwidths scaled down by the traffic-equivalence factor; latencies and
  // topology untouched (see the calibration note in experiment.cpp).
  EXPECT_LT(timing.bw_intergroup, nominal.bw_intergroup / 32.0);
  EXPECT_DOUBLE_EQ(timing.lat_intergroup, nominal.lat_intergroup);
  EXPECT_EQ(timing.cores_per_node, nominal.cores_per_node);
  EXPECT_LT(timing.flop_rate, nominal.flop_rate);
  EXPECT_DOUBLE_EQ(timing.jitter_sigma, 0.3);
  EXPECT_EQ(timing.jitter_seed, 5u);
}

TEST(Experiment, SchemeLists) {
  EXPECT_EQ(paper_schemes().size(), 3u);
  EXPECT_EQ(all_schemes().size(), 7u);
  EXPECT_EQ(paper_schemes()[2], trees::TreeScheme::kShiftedBinary);
}

}  // namespace
}  // namespace psi::driver
