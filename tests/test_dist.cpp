/// Unit tests for the process grid and the supernodal block-cyclic mapping.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "dist/process_grid.hpp"

namespace psi::dist {
namespace {

TEST(ProcessGrid, RowMajorRanks) {
  const ProcessGrid grid(4, 3);
  EXPECT_EQ(grid.size(), 12);
  EXPECT_EQ(grid.rank_of(0, 0), 0);
  EXPECT_EQ(grid.rank_of(0, 2), 2);
  EXPECT_EQ(grid.rank_of(1, 0), 3);
  EXPECT_EQ(grid.rank_of(3, 2), 11);
  for (int r = 0; r < grid.size(); ++r)
    EXPECT_EQ(grid.rank_of(grid.row_of(r), grid.col_of(r)), r);
}

TEST(ProcessGrid, RejectsBadShapes) {
  EXPECT_THROW(ProcessGrid(0, 3), Error);
  const ProcessGrid grid(2, 2);
  EXPECT_THROW(grid.rank_of(2, 0), Error);
}

TEST(BlockCyclicMap, PaperFigure1Mapping) {
  // Paper Fig. 1(a)-(b): a 4x3 grid; block (i, j) -> P(i mod 4, j mod 3).
  // The paper numbers processors P1..P12 row-major; we use 0-based ranks.
  const ProcessGrid grid(4, 3);
  const BlockCyclicMap map(grid);
  EXPECT_EQ(map.owner(0, 0), 0);                       // P1
  EXPECT_EQ(map.owner(1, 1), grid.rank_of(1, 1));      // P5
  EXPECT_EQ(map.owner(4, 3), grid.rank_of(0, 0));      // wraps both ways
  EXPECT_EQ(map.owner(9, 5), grid.rank_of(1, 2));
  EXPECT_EQ(map.prow_of(7), 3);
  EXPECT_EQ(map.pcol_of(7), 1);
}

TEST(BlockCyclicMap, ColumnGroupSharesGridColumn) {
  const ProcessGrid grid(5, 4);
  const BlockCyclicMap map(grid);
  // All blocks of block-column K live in grid column K mod Pc.
  for (Int i = 0; i < 20; ++i)
    EXPECT_EQ(grid.col_of(map.owner(i, 7)), 7 % 4);
  // All blocks of block-row I live in grid row I mod Pr.
  for (Int k = 0; k < 20; ++k)
    EXPECT_EQ(grid.row_of(map.owner(13, k)), 13 % 5);
}

TEST(BlockCyclicMap, SingleRankGrid) {
  const ProcessGrid grid(1, 1);
  const BlockCyclicMap map(grid);
  for (Int i = 0; i < 5; ++i)
    for (Int k = 0; k < 5; ++k) EXPECT_EQ(map.owner(i, k), 0);
}

TEST(ValidatedGrid, AcceptsWellFormedShapes) {
  EXPECT_EQ(validated_grid(2, 3).size(), 6);
  EXPECT_EQ(validated_grid(1, 1).size(), 1);
  EXPECT_EQ(validated_grid(4, 6, 24).size(), 24);
}

TEST(ValidatedGrid, RejectsNonPositiveDimensions) {
  EXPECT_THROW(validated_grid(0, 3), Error);
  EXPECT_THROW(validated_grid(3, 0), Error);
  EXPECT_THROW(validated_grid(-2, 4), Error);
  try {
    validated_grid(-2, 4);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    // The message must name the offending values, not just fail.
    EXPECT_NE(std::string(e.what()).find("-2"), std::string::npos) << e.what();
  }
}

TEST(ValidatedGrid, RejectsRankCountMismatch) {
  try {
    validated_grid(4, 6, 25);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("24"), std::string::npos) << msg;
    EXPECT_NE(msg.find("25"), std::string::npos) << msg;
  }
}

TEST(ValidatedGrid, RejectsIntOverflow) {
  EXPECT_THROW(validated_grid(1 << 16, 1 << 16), Error);
  EXPECT_THROW(ProcessGrid(1 << 17, 1 << 15), Error);
}

}  // namespace
}  // namespace psi::dist
