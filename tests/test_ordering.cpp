/// Unit tests for the fill-reducing orderings: validity of the permutations
/// and fill-quality properties (dissection beats natural ordering on meshes).
#include <gtest/gtest.h>

#include <numeric>

#include "common/check.hpp"
#include "ordering/ordering.hpp"
#include "sparse/generators.hpp"
#include "symbolic/etree.hpp"

namespace psi {
namespace {

/// Scalar fill of the factor under a given ordering.
Count fill_under(const SparseMatrix& a, const Permutation& perm) {
  const SparseMatrix p = permute_symmetric(a, perm.old_to_new());
  const std::vector<Int> parent = elimination_tree(p.pattern);
  const std::vector<Int> post = tree_postorder(parent);
  std::vector<Int> post_o2n(post.size());
  for (std::size_t k = 0; k < post.size(); ++k)
    post_o2n[static_cast<std::size_t>(post[k])] = static_cast<Int>(k);
  const SparseMatrix p2 = permute_symmetric(p, post_o2n);
  const std::vector<Int> parent2 = elimination_tree(p2.pattern);
  return factor_nnz(column_counts(p2.pattern, parent2));
}

TEST(Permutation, IdentityAndInverse) {
  const Permutation id = Permutation::identity(5);
  for (Int i = 0; i < 5; ++i) {
    EXPECT_EQ(id.new_of(i), i);
    EXPECT_EQ(id.old_of(i), i);
  }
  const Permutation p(std::vector<Int>{2, 0, 1});
  const Permutation inv = p.inverse();
  for (Int i = 0; i < 3; ++i) EXPECT_EQ(inv.new_of(p.new_of(i)), i);
}

TEST(Permutation, RejectsNonBijection) {
  EXPECT_THROW(Permutation(std::vector<Int>{0, 0, 1}), Error);
  EXPECT_THROW(Permutation(std::vector<Int>{0, 3, 1}), Error);
}

TEST(Permutation, Compose) {
  const Permutation a(std::vector<Int>{1, 2, 0});
  const Permutation b(std::vector<Int>{2, 1, 0});
  const Permutation c = a.compose_after(b);  // apply b then a
  for (Int i = 0; i < 3; ++i) EXPECT_EQ(c.new_of(i), a.new_of(b.new_of(i)));
}

/// Each method must return a valid permutation on a variety of graphs.
struct OrderingCase {
  const char* label;
  OrderingMethod method;
};

class OrderingValidityTest : public ::testing::TestWithParam<OrderingCase> {};

TEST_P(OrderingValidityTest, ProducesValidPermutation) {
  for (const GeneratedMatrix& gen :
       {laplacian2d(7, 6, 1), fem3d(3, 3, 3, 2, 2), dg2d(4, 3, 3, 3),
        random_symmetric(80, 4.0, 4)}) {
    OrderingOptions opt;
    opt.method = GetParam().method;
    opt.dissection_leaf_size = 8;
    // Geometric dissection needs coordinates; others ignore them.
    const Permutation p = compute_ordering(gen.matrix.pattern, opt, gen.coords);
    EXPECT_EQ(p.size(), gen.matrix.n());
    // Constructor validated bijectivity; spot-check round trip.
    for (Int i = 0; i < p.size(); i += 7) EXPECT_EQ(p.old_of(p.new_of(i)), i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, OrderingValidityTest,
    ::testing::Values(OrderingCase{"natural", OrderingMethod::kNatural},
                      OrderingCase{"rcm", OrderingMethod::kRcm},
                      OrderingCase{"mindeg", OrderingMethod::kMinDegree},
                      OrderingCase{"nd", OrderingMethod::kNestedDissection},
                      OrderingCase{"geo", OrderingMethod::kGeometricDissection}),
    [](const ::testing::TestParamInfo<OrderingCase>& info) {
      return std::string(info.param.label);
    });

TEST(Rcm, ReducesBandwidthOnShuffledPath) {
  // A path relabeled badly has large bandwidth; RCM restores it to 1.
  const Int n = 50;
  TripletBuilder b(n);
  for (Int i = 0; i < n; ++i) b.add(i, i, 1.0);
  // Path over a decimated ordering: v_k = (k * 17) % n is a permutation of
  // 0..n-1 (gcd(17, 50) = 1); connect consecutive path vertices.
  for (Int k = 0; k + 1 < n; ++k)
    b.add_symmetric((k * 17) % n, ((k + 1) * 17) % n, -1.0);
  const SparseMatrix m = b.compile();
  const Graph g(m.pattern);
  const Permutation p = rcm_ordering(g);
  Int max_band = 0;
  for (Int k = 0; k + 1 < n; ++k) {
    const Int u = p.new_of((k * 17) % n), v = p.new_of(((k + 1) * 17) % n);
    max_band = std::max(max_band, std::abs(u - v));
  }
  EXPECT_EQ(max_band, 1);
}

TEST(MinDegree, EliminatesPathWithoutFill) {
  // On a path, min-degree produces zero fill: factor nnz == nnz(tril(A)).
  const Int n = 40;
  TripletBuilder b(n);
  for (Int i = 0; i < n; ++i) b.add(i, i, 1.0);
  for (Int i = 0; i + 1 < n; ++i) b.add_symmetric(i, i + 1, -1.0);
  const SparseMatrix m = b.compile();
  const Permutation p = min_degree_ordering(Graph(m.pattern));
  EXPECT_EQ(fill_under(m, p), 2 * n - 1);
}

TEST(Dissection, BeatsNaturalOrderingOnGrid) {
  const GeneratedMatrix gen = laplacian2d(20, 20, 1);
  const Graph g(gen.matrix.pattern);
  const Count natural = fill_under(gen.matrix, Permutation::identity(gen.matrix.n()));
  const Count nd = fill_under(gen.matrix, nested_dissection_ordering(g, 16));
  const Count geo =
      fill_under(gen.matrix, geometric_dissection_ordering(g, gen.coords, 16));
  EXPECT_LT(nd, natural);
  EXPECT_LT(geo, natural);
}

TEST(Dissection, HandlesDisconnectedGraphs) {
  TripletBuilder b(20);
  for (Int i = 0; i < 20; ++i) b.add(i, i, 1.0);
  for (Int i = 0; i + 1 < 10; ++i) b.add_symmetric(i, i + 1, -1.0);
  for (Int i = 10; i + 1 < 20; ++i) b.add_symmetric(i, i + 1, -1.0);
  const SparseMatrix m = b.compile();
  const Permutation p = nested_dissection_ordering(Graph(m.pattern), 4);
  EXPECT_EQ(p.size(), 20);
}

TEST(Dissection, LeafSizeOneWorks) {
  const GeneratedMatrix gen = laplacian2d(5, 5, 1);
  const Permutation p = nested_dissection_ordering(Graph(gen.matrix.pattern), 1);
  EXPECT_EQ(p.size(), 25);
}

TEST(GeometricDissection, RequiresCoordinates) {
  const GeneratedMatrix gen = laplacian2d(4, 4, 1);
  OrderingOptions opt;
  opt.method = OrderingMethod::kGeometricDissection;
  EXPECT_THROW(compute_ordering(gen.matrix.pattern, opt, {}), Error);
}

TEST(Ordering, MethodNames) {
  EXPECT_STREQ(ordering_method_name(OrderingMethod::kRcm), "rcm");
  EXPECT_STREQ(ordering_method_name(OrderingMethod::kGeometricDissection),
               "geometric-dissection");
}

TEST(Ordering, RequiresSymmetricPattern) {
  TripletBuilder b(3);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  b.add(2, 2, 1.0);
  b.add(1, 0, 1.0);  // no mirror
  OrderingOptions opt;
  EXPECT_THROW(compute_ordering(b.compile().pattern, opt), Error);
}

}  // namespace
}  // namespace psi
