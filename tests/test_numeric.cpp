/// Unit + property tests for the numeric stack: block storage, supernodal LU
/// and the sequential selected inversion, validated against dense linear
/// algebra.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "numeric/selinv.hpp"
#include "numeric/supernodal_lu.hpp"
#include "sparse/generators.hpp"

namespace psi {
namespace {

DenseMatrix dense_of(const SparseMatrix& a) {
  const Int n = a.n();
  DenseMatrix d(n, n);
  for (Int j = 0; j < n; ++j)
    for (Int p = a.pattern.col_ptr[j]; p < a.pattern.col_ptr[j + 1]; ++p)
      d(a.pattern.row_idx[p], j) = a.values[static_cast<std::size_t>(p)];
  return d;
}

AnalysisOptions default_options() {
  AnalysisOptions opt;
  opt.ordering.method = OrderingMethod::kNestedDissection;
  opt.ordering.dissection_leaf_size = 8;
  opt.supernodes.max_size = 16;
  return opt;
}

TEST(BlockMatrix, LoadAndDenseRoundTrip) {
  const GeneratedMatrix gen = laplacian2d(4, 4, 3);
  const SymbolicAnalysis an = analyze(gen, default_options());
  BlockMatrix bm(an.blocks);
  bm.load(an.matrix);
  const DenseMatrix dense = bm.to_dense();
  EXPECT_LT(max_abs_diff(dense, dense_of(an.matrix)), 1e-14);
}

TEST(BlockMatrix, StructPositionFastPathMatchesReference) {
  // The AP fast path must agree with the binary-search reference for EVERY
  // (supernode, candidate) pair — members and absentees alike — on every
  // generator family under both orderings (min-degree structures are the
  // ones that produce non-AP struct lists and exercise the fallback).
  std::vector<GeneratedMatrix> gens;
  gens.push_back(laplacian2d(6, 6, 3));
  gens.push_back(dg2d(4, 4, 3, 7));
  gens.push_back(dg3d(3, 3, 3, 2, 9));
  gens.push_back(fem3d(3, 3, 3, 2, 11));
  gens.push_back(random_symmetric(48, 3.0, 21));
  for (const GeneratedMatrix& gen : gens) {
    for (const OrderingMethod method :
         {OrderingMethod::kMinDegree, OrderingMethod::kNestedDissection}) {
      AnalysisOptions opt = default_options();
      opt.ordering.method = method;
      opt.supernodes.max_size = 6;
      const SymbolicAnalysis an = analyze(gen, opt);
      const BlockMatrix bm(an.blocks);
      const Int nsup = an.blocks.supernode_count();
      for (Int k = 0; k < nsup; ++k)
        for (Int i = 0; i < nsup; ++i)
          ASSERT_EQ(bm.struct_position(k, i),
                    bm.struct_position_reference(k, i))
              << "k=" << k << " i=" << i;
    }
  }
}

TEST(BlockMatrix, BlockGetSetRoundTrip) {
  const GeneratedMatrix gen = fem3d(2, 2, 2, 2, 5);
  const SymbolicAnalysis an = analyze(gen, default_options());
  BlockMatrix bm(an.blocks);
  const BlockStructure& bs = an.blocks;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      DenseMatrix v(bs.part.size(i), bs.part.size(k));
      for (Int c = 0; c < v.cols(); ++c)
        for (Int r = 0; r < v.rows(); ++r)
          v(r, c) = static_cast<double>(k * 1000 + i * 10 + r + c);
      bm.set_block(i, k, v);                      // lower
      EXPECT_LT(max_abs_diff(bm.block(i, k), v), 1e-15);
      const DenseMatrix vt = v.transposed();
      bm.set_block(k, i, vt);                     // upper
      EXPECT_LT(max_abs_diff(bm.block(k, i), vt), 1e-15);
    }
  }
}

TEST(BlockMatrix, AddBlockAccumulates) {
  const GeneratedMatrix gen = laplacian2d(3, 3, 2);
  const SymbolicAnalysis an = analyze(gen, default_options());
  BlockMatrix bm(an.blocks);
  const Int k = 0;
  DenseMatrix v(an.blocks.part.size(k), an.blocks.part.size(k), 2.0);
  bm.add_block(k, k, v, 1.0);
  bm.add_block(k, k, v, -0.5);
  EXPECT_NEAR(bm.diag(k)(0, 0), 1.0, 1e-15);
}

TEST(BlockMatrix, MissingBlockThrows) {
  const GeneratedMatrix gen = laplacian2d(6, 6, 2);
  const SymbolicAnalysis an = analyze(gen, default_options());
  BlockMatrix bm(an.blocks);
  // Find a pair (i, k) NOT in the structure.
  const BlockStructure& bs = an.blocks;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    const auto& str = bs.struct_of[static_cast<std::size_t>(k)];
    for (Int i = k + 1; i < bs.supernode_count(); ++i) {
      if (!std::binary_search(str.begin(), str.end(), i)) {
        EXPECT_THROW(bm.block_offset(k, i), Error);
        return;
      }
    }
  }
  GTEST_SKIP() << "structure is fully dense; nothing to test";
}

/// Parameterized end-to-end numeric validation across matrix families,
/// orderings, and value kinds.
struct NumericCase {
  std::string label;
  GeneratedMatrix gen;
  AnalysisOptions options;
};

NumericCase make_case(std::string label, GeneratedMatrix gen,
                      OrderingMethod method, Int max_snode) {
  NumericCase c{std::move(label), std::move(gen), {}};
  c.options.ordering.method = method;
  c.options.ordering.dissection_leaf_size = 8;
  c.options.supernodes.max_size = max_snode;
  return c;
}

class LuCorrectnessTest : public ::testing::TestWithParam<NumericCase> {};

TEST_P(LuCorrectnessTest, FactorReconstructsMatrix) {
  const auto& param = GetParam();
  const SymbolicAnalysis an = analyze(param.gen, param.options);
  const SupernodalLU lu = SupernodalLU::factor(an);

  // Rebuild L and U from the packed storage and compare L*U to the matrix.
  const Int n = an.matrix.n();
  const DenseMatrix packed = lu.blocks().to_dense();
  DenseMatrix l(n, n), u(n, n);
  for (Int c = 0; c < n; ++c)
    for (Int r = 0; r < n; ++r) {
      if (r > c) l(r, c) = packed(r, c);
      if (r == c) l(r, c) = 1.0;
      if (r <= c) u(r, c) = packed(r, c);
    }
  DenseMatrix prod(n, n);
  gemm(Trans::kNo, Trans::kNo, 1.0, l, u, 0.0, prod);
  EXPECT_LT(max_abs_diff(prod, dense_of(an.matrix)), 1e-9) << param.label;
}

TEST_P(LuCorrectnessTest, SolveMatchesDense) {
  const auto& param = GetParam();
  const SymbolicAnalysis an = analyze(param.gen, param.options);
  const SupernodalLU lu = SupernodalLU::factor(an);
  const Int n = an.matrix.n();
  std::vector<double> b(static_cast<std::size_t>(n));
  for (Int i = 0; i < n; ++i)
    b[static_cast<std::size_t>(i)] = std::sin(static_cast<double>(i) + 1.0);
  const std::vector<double> x = lu.solve(b);
  std::vector<double> ax;
  an.matrix.multiply(x, ax);
  for (Int i = 0; i < n; ++i)
    EXPECT_NEAR(ax[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-9)
        << param.label << " row " << i;
}

TEST_P(LuCorrectnessTest, SelectedInversionMatchesDenseInverse) {
  const auto& param = GetParam();
  const SymbolicAnalysis an = analyze(param.gen, param.options);
  SupernodalLU lu = SupernodalLU::factor(an);
  const BlockMatrix ainv = selected_inversion(lu);

  const DenseMatrix full_inv = inverse(dense_of(an.matrix));
  // Every stored block of the selected inverse must match the dense inverse.
  const BlockStructure& bs = an.blocks;
  double max_err = 0.0;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    const Int col0 = bs.part.first_col(k);
    auto check_block = [&](Int i, Int kk) {
      const DenseMatrix blk = ainv.block(i, kk);
      const Int r0 = bs.part.first_col(i), c0 = bs.part.first_col(kk);
      for (Int c = 0; c < blk.cols(); ++c)
        for (Int r = 0; r < blk.rows(); ++r)
          max_err = std::max(max_err, std::fabs(blk(r, c) - full_inv(r0 + r, c0 + c)));
    };
    check_block(k, k);
    (void)col0;
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      check_block(i, k);
      check_block(k, i);
    }
  }
  EXPECT_LT(max_err, 1e-9) << param.label;
}

INSTANTIATE_TEST_SUITE_P(
    Matrices, LuCorrectnessTest,
    ::testing::Values(
        make_case("lap2d_nd", laplacian2d(6, 6, 1), OrderingMethod::kNestedDissection, 16),
        make_case("lap2d_natural", laplacian2d(5, 5, 2), OrderingMethod::kNatural, 16),
        make_case("lap2d_mindeg", laplacian2d(6, 5, 3), OrderingMethod::kMinDegree, 8),
        make_case("lap3d", laplacian3d(3, 3, 3, 4), OrderingMethod::kNestedDissection, 8),
        make_case("fem3d_d2", fem3d(3, 2, 2, 2, 5), OrderingMethod::kNestedDissection, 12),
        make_case("fem3d_geo", fem3d(3, 3, 2, 2, 6), OrderingMethod::kGeometricDissection, 16),
        make_case("dg2d", dg2d(3, 3, 4, 7), OrderingMethod::kGeometricDissection, 24),
        make_case("dg3d", dg3d(2, 2, 2, 4, 8), OrderingMethod::kNestedDissection, 16),
        make_case("random", random_symmetric(60, 4.0, 9), OrderingMethod::kMinDegree, 8),
        make_case("rcm", laplacian2d(6, 4, 10), OrderingMethod::kRcm, 8),
        make_case("unsym_values",
                  fem3d(3, 2, 2, 2, 11, ValueKind::kUnsymmetric),
                  OrderingMethod::kNestedDissection, 12),
        make_case("unsym_dg",
                  dg2d(3, 2, 4, 12, ValueKind::kUnsymmetric),
                  OrderingMethod::kGeometricDissection, 16),
        make_case("scalar_snodes", laplacian2d(5, 5, 13), OrderingMethod::kNestedDissection, 1)),
    [](const ::testing::TestParamInfo<NumericCase>& info) { return info.param.label; });

TEST(SupernodalLu, NormalizeIsIdempotentGuard) {
  const GeneratedMatrix gen = laplacian2d(4, 4, 1);
  const SymbolicAnalysis an = analyze(gen, default_options());
  SupernodalLU lu = SupernodalLU::factor(an);
  lu.normalize_panels();
  EXPECT_TRUE(lu.normalized());
  EXPECT_THROW(lu.normalize_panels(), Error);
}

TEST(SupernodalLu, NormalizedPanelsMatchDefinition) {
  // L̂_{I,K} = L_{I,K} (L_KK)^{-1} and Û_{K,I} = (U_KK)^{-1} U_{K,I}.
  const GeneratedMatrix gen = fem3d(2, 2, 2, 2, 3);
  const SymbolicAnalysis an = analyze(gen, default_options());
  SupernodalLU raw = SupernodalLU::factor(an);
  SupernodalLU norm = SupernodalLU::factor(an);
  norm.normalize_panels();
  const BlockStructure& bs = an.blocks;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    const Int w = bs.part.size(k);
    // Extract L_KK (unit lower) and U_KK from the packed diagonal.
    DenseMatrix lkk(w, w), ukk(w, w);
    for (Int c = 0; c < w; ++c)
      for (Int r = 0; r < w; ++r) {
        if (r > c) lkk(r, c) = raw.blocks().diag(k)(r, c);
        if (r == c) lkk(r, c) = 1.0;
        if (r <= c) ukk(r, c) = raw.blocks().diag(k)(r, c);
      }
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      DenseMatrix expected = raw.blocks().block(i, k);
      trsm(Side::kRight, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0, lkk, expected);
      EXPECT_LT(max_abs_diff(norm.blocks().block(i, k), expected), 1e-10);
      DenseMatrix expected_u = raw.blocks().block(k, i);
      trsm(Side::kLeft, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0, ukk, expected_u);
      EXPECT_LT(max_abs_diff(norm.blocks().block(k, i), expected_u), 1e-10);
    }
  }
}

TEST(SelInv, SymmetricValuesGiveSymmetricInverseBlocks) {
  const GeneratedMatrix gen = fem3d(3, 2, 2, 2, 4, ValueKind::kSymmetric);
  const SymbolicAnalysis an = analyze(gen, default_options());
  SupernodalLU lu = SupernodalLU::factor(an);
  const BlockMatrix ainv = selected_inversion(lu);
  const BlockStructure& bs = an.blocks;
  for (Int k = 0; k < bs.supernode_count(); ++k)
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      const DenseMatrix lower = ainv.block(i, k);
      const DenseMatrix upper = ainv.block(k, i);
      EXPECT_LT(max_abs_diff(lower, upper.transposed()), 1e-9);
    }
}

TEST(Flops, CountsArePositiveAndMonotone) {
  const GeneratedMatrix small = laplacian2d(6, 6, 1);
  const GeneratedMatrix large = laplacian2d(12, 12, 1);
  const SymbolicAnalysis an_small = analyze(small, default_options());
  const SymbolicAnalysis an_large = analyze(large, default_options());
  EXPECT_GT(factorization_flops(an_small.blocks), 0);
  EXPECT_GT(selinv_flops(an_small.blocks), 0);
  EXPECT_GT(factorization_flops(an_large.blocks), factorization_flops(an_small.blocks));
  EXPECT_GT(selinv_flops(an_large.blocks), selinv_flops(an_small.blocks));
}

TEST(SupernodalLu, ZeroPivotThrows) {
  // A structurally symmetric matrix with a zero diagonal entry.
  TripletBuilder b(2);
  b.add(0, 0, 0.0);
  b.add(1, 1, 1.0);
  b.add_symmetric(0, 1, 1.0);
  SparseMatrix m = b.compile();
  AnalysisOptions opt;
  opt.ordering.method = OrderingMethod::kNatural;
  const SymbolicAnalysis an = analyze(m, opt);
  EXPECT_THROW(SupernodalLU::factor(an), Error);
}

}  // namespace
}  // namespace psi
