/// Regenerates **Table I** of the paper: per-rank volume SENT during
/// Col-Bcast (MB) — min / max / median / stddev — for the audikw_1 analog on
/// a 46x46 processor grid, under each tree scheme. Also prints the
/// communicator audit backing the paper's §III infeasibility argument
/// ("up to 20,061 distinct row and column communicators on a 24x24 grid").
///
/// Paper reference values (audikw_1, 46x46):
///   Flat-Tree             min 28.99  max 69.49  median 40.80  stddev  8.25
///   Binary-Tree           min  1.46  max 97.14  median 36.87  stddev 27.36
///   Shifted Binary-Tree   min 33.64  max 54.10  median 42.63  stddev  3.33
/// Expected shape: Binary collapses the min (starved leaves) and inflates
/// the max (hot internal stripes); Shifted tightens the whole distribution
/// (smallest stddev, smallest max-min span).
#include "bench_common.hpp"

int main() {
  using namespace psi;
  using namespace psi::bench;

  const SymbolicAnalysis an =
      analyze_paper_matrix(driver::PaperMatrix::kAudikw1);
  const int pr = 46, pc = 46;
  std::printf("# grid %dx%d = %d ranks\n\n", pr, pc, pr * pc);

  TextTable table({"Communication tree", "Min", "Max", "Median", "Std. dev"});
  CsvWriter csv(out_dir() + "/table1_colbcast.csv",
                {"scheme", "rank", "col_bcast_sent_mb"});

  for (trees::TreeScheme scheme : driver::all_schemes()) {
    const pselinv::Plan plan = make_plan(an, pr, pc, scheme);
    const pselinv::VolumeReport report = pselinv::analyze_volume(plan);
    const std::vector<double> mb = report.col_bcast_sent_mb();
    add_stats_row(table, trees::scheme_name(scheme),
                  pselinv::VolumeReport::summarize(mb));
    for (std::size_t r = 0; r < mb.size(); ++r)
      csv.write_row({trees::scheme_name(scheme), std::to_string(r),
                     TextTable::fmt(mb[r], 6)});
  }

  std::printf("Table I: volume sent during Col-Bcast (MB), audikw_1-like\n%s\n",
              table.render().c_str());

  // Communicator audit (paper §III): the 24x24 grid of the original claim.
  const pselinv::Plan audit = make_plan(an, 24, 24, trees::TreeScheme::kFlat);
  std::printf(
      "Communicator audit on a 24x24 grid: %lld distinct restricted\n"
      "collectives' participant sets (paper reports 20,061 for the full-size\n"
      "audikw_1) over %lld collectives -- far beyond what MPI communicator\n"
      "limits (~4,096 on Cray MPI) allow.\n",
      static_cast<long long>(audit.distinct_communicators()),
      static_cast<long long>(audit.total_collectives()));
  return 0;
}
