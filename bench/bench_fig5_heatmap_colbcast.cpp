/// Regenerates **Figure 5** of the paper: the Pr x Pc heat map of per-rank
/// Col-Bcast sent volume (audikw_1 analog, 46x46 grid) for Flat / Binary /
/// Shifted Binary trees. The Flat and Shifted maps share one scale, exactly
/// as the paper shares the colorbar between Fig. 5(a) and 5(c) so the
/// "cooler" map is directly visible.
///
/// Expected qualitative features: (a) Flat — hot band near the grid
/// diagonal (roots concentrate where pr(K) meets pc(I)); (b) Binary —
/// regular hot stripes perpendicular to the broadcast direction (same low
/// ranks picked as internal nodes over and over); (c) Shifted — a uniform,
/// visibly cooler field with the hot spots gone.
#include "bench_common.hpp"

int main() {
  using namespace psi;
  using namespace psi::bench;

  const SymbolicAnalysis an =
      analyze_paper_matrix(driver::PaperMatrix::kAudikw1);
  const int pr = 46, pc = 46;
  const dist::ProcessGrid grid(pr, pc);
  CsvWriter csv(out_dir() + "/fig5_heatmap_colbcast.csv",
                {"scheme", "prow", "pcol", "sent_mb"});

  // Shared scale from the Flat-Tree map (the paper's colorbar).
  double shared_lo = 0.0, shared_hi = 1.0;
  for (trees::TreeScheme scheme : driver::paper_schemes()) {
    const pselinv::Plan plan = make_plan(an, pr, pc, scheme);
    const std::vector<double> mb =
        pselinv::analyze_volume(plan).col_bcast_sent_mb();
    const HeatMap map = driver::rank_field_to_heatmap(mb, grid);
    if (scheme == trees::TreeScheme::kFlat) {
      shared_lo = map.min_value();
      shared_hi = map.max_value();
    }
    std::printf("Figure 5 (%s): Col-Bcast sent volume heat map (MB)\n%s\n",
                trees::scheme_name(scheme),
                map.render(shared_lo, shared_hi).c_str());
    const SampleStats stats = pselinv::VolumeReport::summarize(mb);
    std::printf("  min %.2f  max %.2f  median %.2f  stddev %.2f (MB)\n\n",
                stats.min(), stats.max(), stats.median(), stats.stddev());
    for (int r = 0; r < grid.size(); ++r)
      csv.write_row({trees::scheme_name(scheme), std::to_string(grid.row_of(r)),
                     std::to_string(grid.col_of(r)),
                     TextTable::fmt(mb[static_cast<std::size_t>(r)], 5)});
  }
  return 0;
}
