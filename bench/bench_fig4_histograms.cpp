/// Regenerates **Figure 4** of the paper: the distribution (histogram) of
/// per-rank Col-Bcast sent volume for the audikw_1 analog on a 46x46 grid
/// under Flat / Binary / Shifted Binary trees (plus the Random-Perm
/// ablation the paper discusses in §III).
///
/// Expected shape: Flat — a broad right-skewed bell; Binary — a bimodal /
/// wide spread reaching both near-zero and far-above-flat values; Shifted —
/// a visibly narrower peak than Flat's (the paper's "much more evenly
/// spread" distribution).
#include <algorithm>

#include "bench_common.hpp"
#include "common/histogram.hpp"

int main() {
  using namespace psi;
  using namespace psi::bench;

  const SymbolicAnalysis an =
      analyze_paper_matrix(driver::PaperMatrix::kAudikw1);
  const int pr = 46, pc = 46;
  CsvWriter csv(out_dir() + "/fig4_histograms.csv",
                {"scheme", "bin_lo_mb", "bin_hi_mb", "count"});

  // Shared bin range across schemes so the histograms are comparable
  // (the paper plots them on a common volume axis).
  double lo = 1e300, hi = -1e300;
  std::vector<std::pair<trees::TreeScheme, std::vector<double>>> samples;
  for (trees::TreeScheme scheme : driver::all_schemes()) {
    const pselinv::Plan plan = make_plan(an, pr, pc, scheme);
    std::vector<double> mb = pselinv::analyze_volume(plan).col_bcast_sent_mb();
    lo = std::min(lo, *std::min_element(mb.begin(), mb.end()));
    hi = std::max(hi, *std::max_element(mb.begin(), mb.end()));
    samples.emplace_back(scheme, std::move(mb));
  }
  if (hi <= lo) hi = lo + 1.0;

  for (const auto& [scheme, mb] : samples) {
    Histogram hist(lo, hi, 24);
    hist.add_all(mb);
    std::printf("Figure 4 (%s): Col-Bcast sent volume distribution\n%s\n",
                trees::scheme_name(scheme),
                hist.render(48, "volume bin (MB) | ranks").c_str());
    for (std::size_t b = 0; b < hist.bins(); ++b)
      csv.write_row({trees::scheme_name(scheme), TextTable::fmt(hist.bin_lo(b), 4),
                     TextTable::fmt(hist.bin_hi(b), 4),
                     std::to_string(hist.count(b))});
    const SampleStats stats = pselinv::VolumeReport::summarize(mb);
    std::printf("  spread: min %.2f MB, max %.2f MB, stddev %.2f MB\n\n",
                stats.min(), stats.max(), stats.stddev());
  }
  return 0;
}
