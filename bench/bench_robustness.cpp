/// Robustness sweep: how gracefully does each tree scheme degrade when the
/// network and the machine misbehave? For every scheme (Flat / Binary /
/// Shifted Binary, resilient protocol ON) we sweep a straggler-count x
/// drop-rate grid (plus a degraded-link row) of seeded deterministic fault
/// scenarios and report the makespan degradation ratio against the
/// fault-free resilient run of the same scheme, together with the protocol
/// work (retries, re-routed subtrees, suppressed duplicates) and the
/// injector's ground truth (messages dropped / duplicated).
///
/// Expected shape: the flat tree pays the most for a straggling root-adjacent
/// rank (every child re-arms against one sender), while the binary schemes
/// localize the damage to a subtree and recover via re-parenting; drop rates
/// raise everyone's makespan smoothly (retry backoff) rather than hanging.
///
/// A final showcase run records the heaviest scenario with the obs recorder:
/// the critical path now crosses timer-wait (retry backoff) segments, the
/// injected faults appear as marks, and a Chrome trace is written for
/// chrome://tracing / Perfetto.
///
/// Environment knobs: PSI_BENCH_SCALE, PSI_BENCH_THREADS, and the
/// PSI_FAULT_* family (see fault/fault_plan.hpp) for the showcase override.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/recorder.hpp"

namespace {

using namespace psi;
using namespace psi::bench;

constexpr std::uint64_t kSweepSeed = 0xfa175eed;

struct Cell {
  int stragglers = 0;
  double drop = 0.0;
  double dup = 0.0;
  int degraded_links = 0;
  std::string label() const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "s=%d d=%.0f%% l=%d", stragglers,
                  drop * 100.0, degraded_links);
    return buf;
  }
};

struct CellResult {
  double makespan = 0.0;
  trees::ChannelStats channel;
  fault::DeterministicInjector::Stats injector;
};

fault::FaultPlan cell_plan(const Cell& cell, int p, int node_count) {
  fault::FaultPlan plan = fault::FaultPlan::scenario(
      kSweepSeed, p, cell.stragglers, /*slowdown=*/8.0, cell.drop, cell.dup);
  if (cell.degraded_links > 0)
    plan.add_random_degraded_links(cell.degraded_links, node_count,
                                   /*factor=*/4.0);
  return plan;
}

CellResult run_cell(const SymbolicAnalysis& an, int pr, int pc,
                    trees::TreeScheme scheme, const Cell& cell,
                    const sim::MachineConfig& config) {
  const pselinv::Plan plan = make_plan(an, pr, pc, scheme);
  const int node_count = (pr * pc + config.cores_per_node - 1) /
                         config.cores_per_node;
  const fault::FaultPlan faults = cell_plan(cell, pr * pc, node_count);
  const sim::Perturbation perturbation = faults.perturbation();
  fault::DeterministicInjector injector(faults);

  pselinv::RunOptions options;
  options.resilience.enabled = true;
  options.injector = &injector;
  options.perturbation = &perturbation;

  const pselinv::RunResult run =
      run_pselinv(plan, sim::Machine(config), pselinv::ExecutionMode::kTrace,
                  nullptr, nullptr, nullptr, options);
  PSI_CHECK_MSG(run.complete(), "faulty run did not finalize every block");
  return CellResult{run.makespan, run.channel_stats, injector.stats()};
}

void showcase_heaviest(const SymbolicAnalysis& an, int pr, int pc,
                       const Cell& cell, const sim::MachineConfig& config) {
  const pselinv::Plan plan =
      make_plan(an, pr, pc, trees::TreeScheme::kShiftedBinary);
  const int node_count = (pr * pc + config.cores_per_node - 1) /
                         config.cores_per_node;
  // PSI_FAULT_* overrides the sweep's heaviest cell when set.
  fault::FaultPlan faults = fault::FaultPlan::from_env(pr * pc);
  if (faults.stragglers().empty() && faults.rules().empty())
    faults = cell_plan(cell, pr * pc, node_count);
  const sim::Perturbation perturbation = faults.perturbation();
  fault::DeterministicInjector injector(faults);

  pselinv::RunOptions options;
  options.resilience.enabled = true;
  options.injector = &injector;
  options.perturbation = &perturbation;

  obs::Recorder recorder;
  const pselinv::RunResult run =
      run_pselinv(plan, sim::Machine(config), pselinv::ExecutionMode::kTrace,
                  nullptr, nullptr, &recorder, options);
  PSI_CHECK(run.complete());

  const driver::ObsAnalysis analysis = driver::analyze_recording(recorder, config);
  Count fault_marks = 0;
  for (const obs::MarkEvent& mark : recorder.marks())
    if (std::string(mark.name).rfind("fault-", 0) == 0) ++fault_marks;
  std::printf(
      "showcase (Shifted Binary, heaviest cell %s): makespan %.3f s, "
      "%lld injected-fault marks, %d timer-wait hops on the critical path\n",
      cell.label().c_str(), run.makespan, static_cast<long long>(fault_marks),
      analysis.path.timer_hops);
  std::printf("%s", driver::render_critical_path(analysis.path).c_str());

  const std::string trace_path = out_dir() + "/robustness_trace.json";
  obs::ChromeTraceOptions trace_options;
  trace_options.class_name = pselinv::comm_class_name;
  obs::write_chrome_trace(recorder, trace_path, trace_options);
  std::printf("# chrome trace written to %s\n\n", trace_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = json_flag(argc, argv, "robustness");
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* reg = json_path.empty() ? nullptr : &registry;
  obs::RecordWriter row_writer;
  row_writer.open_csv(out_dir() + "/robustness.csv");
  row_writer.open_ndjson(out_dir() + "/robustness_rows.ndjson");

  const SymbolicAnalysis an =
      analyze_paper_matrix(driver::PaperMatrix::kDgPnf14000, 0.6);
  const int pr = 8, pc = 8;
  const sim::MachineConfig config = driver::timing_machine(/*jitter=*/0.0);

  // The grid: fault-free baseline, then stragglers x drop rates, then a
  // collapsed-links row. dup rides along at half the drop rate.
  std::vector<Cell> cells;
  for (int stragglers : {0, 2, 4})
    for (double drop : {0.0, 0.01, 0.05})
      cells.push_back(Cell{stragglers, drop, drop / 2.0, 0});
  cells.push_back(Cell{2, 0.01, 0.005, 2});
  const std::vector<trees::TreeScheme> schemes{
      trees::TreeScheme::kFlat, trees::TreeScheme::kBinary,
      trees::TreeScheme::kShiftedBinary};

  // Every (scheme, cell) simulation is independent: pre-size the result
  // grid and let the worker pool fill it, render sequentially after.
  struct Job {
    const SymbolicAnalysis* an;
    int pr, pc;
    trees::TreeScheme scheme;
    Cell cell;
    const sim::MachineConfig* config;
    CellResult result;
    void operator()() {
      result = run_cell(*an, pr, pc, scheme, cell, *config);
    }
  };
  std::vector<Job> jobs;
  for (trees::TreeScheme scheme : schemes)
    for (const Cell& cell : cells)
      jobs.push_back(Job{&an, pr, pc, scheme, cell, &config, {}});
  run_bench_jobs(jobs);

  std::vector<std::string> header{"cell"};
  for (trees::TreeScheme scheme : schemes) {
    header.push_back(std::string(trees::scheme_name(scheme)) + " (s)");
    header.push_back("xbase");
  }
  TextTable table(header);
  std::size_t job_index = 0;
  std::vector<double> baselines(schemes.size(), 0.0);
  std::vector<std::vector<std::string>> rows(cells.size());
  for (std::size_t ci = 0; ci < cells.size(); ++ci)
    rows[ci].push_back(cells[ci].label());
  for (std::size_t si = 0; si < schemes.size(); ++si) {
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
      const Job& job = jobs[job_index++];
      const CellResult& r = job.result;
      if (job.cell.stragglers == 0 && job.cell.drop == 0.0 &&
          job.cell.degraded_links == 0)
        baselines[si] = r.makespan;
      const double degradation =
          baselines[si] > 0.0 ? r.makespan / baselines[si] : 1.0;
      rows[ci].push_back(TextTable::fmt(r.makespan, 3));
      rows[ci].push_back(TextTable::fmt(degradation, 2));
      row_writer.write(
          obs::Record()
              .add("scheme", trees::scheme_name(job.scheme))
              .add("stragglers", job.cell.stragglers)
              .add("drop_prob", job.cell.drop)
              .add("degraded_links", job.cell.degraded_links)
              .add("makespan_s", r.makespan)
              .add("degradation", degradation)
              .add("retries", static_cast<long long>(r.channel.retries))
              .add("reroutes", static_cast<long long>(r.channel.reroutes))
              .add("duplicates_suppressed",
                   static_cast<long long>(r.channel.duplicates_suppressed))
              .add("msgs_dropped", static_cast<long long>(r.injector.dropped))
              .add("msgs_duplicated",
                   static_cast<long long>(r.injector.duplicated)));
      if (reg != nullptr) {
        obs::Labels labels;
        labels.set("bench", "robustness")
            .scheme(trees::scheme_name(job.scheme))
            .set("stragglers", job.cell.stragglers)
            .set("degraded_links", job.cell.degraded_links)
            .set("drop_pct", static_cast<int>(job.cell.drop * 100.0));
        registry.gauge("makespan_seconds", labels).set(r.makespan);
        registry.gauge("degradation_ratio", labels).set(degradation);
        registry.gauge("protocol_retries", labels)
            .set(static_cast<double>(r.channel.retries));
        registry.gauge("protocol_reroutes", labels)
            .set(static_cast<double>(r.channel.reroutes));
        registry.gauge("messages_dropped", labels)
            .set(static_cast<double>(r.injector.dropped));
      }
    }
  }
  for (std::vector<std::string>& row : rows) table.add_row(std::move(row));
  std::printf(
      "Robustness sweep (P=%d, resilient protocol on): makespan and "
      "degradation vs the scheme's fault-free run\n%s\n",
      pr * pc, table.render().c_str());

  showcase_heaviest(an, pr, pc, cells.back(), config);
  write_json_summary(registry, json_path);
  return 0;
}
