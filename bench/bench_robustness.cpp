/// Robustness sweep: how gracefully does each tree scheme degrade when the
/// network and the machine misbehave? For every scheme (Flat / Binary /
/// Shifted Binary, resilient protocol ON) we sweep a straggler-count x
/// drop-rate grid (plus a degraded-link row) of seeded deterministic fault
/// scenarios and report the makespan degradation ratio against the
/// fault-free resilient run of the same scheme, together with the protocol
/// work (retries, re-routed subtrees, suppressed duplicates) and the
/// injector's ground truth (messages dropped / duplicated).
///
/// Expected shape: the flat tree pays the most for a straggling root-adjacent
/// rank (every child re-arms against one sender), while the binary schemes
/// localize the damage to a subtree and recover via re-parenting; drop rates
/// raise everyone's makespan smoothly (retry backoff) rather than hanging.
///
/// A final showcase run records the heaviest scenario with the obs recorder:
/// the critical path now crosses timer-wait (retry backoff) segments, the
/// injected faults appear as marks, and a Chrome trace is written for
/// chrome://tracing / Perfetto.
///
/// A second, service-layer campaign follows the tree sweep: the seeded
/// chaos harness (chaos/harness.hpp) drives a live ShardedService through
/// store I/O faults, torn writes, worker stalls, clock skew, admission
/// storms, deadlines and client cancellations over a shards x workers grid,
/// checking the robustness invariants (one terminal outcome per request,
/// clean drain, every kOk digest bitwise equal to the fault-free run).
/// The bench EXITS NON-ZERO if any cell violates an invariant — it is a
/// gate, not just a report.
///
/// Environment knobs: PSI_BENCH_SCALE, PSI_BENCH_THREADS, and the
/// PSI_FAULT_* family (see fault/fault_plan.hpp) for the showcase override.
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chaos/harness.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/recorder.hpp"

namespace {

using namespace psi;
using namespace psi::bench;

constexpr std::uint64_t kSweepSeed = 0xfa175eed;

struct Cell {
  int stragglers = 0;
  double drop = 0.0;
  double dup = 0.0;
  int degraded_links = 0;
  std::string label() const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "s=%d d=%.0f%% l=%d", stragglers,
                  drop * 100.0, degraded_links);
    return buf;
  }
};

struct CellResult {
  double makespan = 0.0;
  trees::ChannelStats channel;
  fault::DeterministicInjector::Stats injector;
};

fault::FaultPlan cell_plan(const Cell& cell, int p, int node_count) {
  fault::FaultPlan plan = fault::FaultPlan::scenario(
      kSweepSeed, p, cell.stragglers, /*slowdown=*/8.0, cell.drop, cell.dup);
  if (cell.degraded_links > 0)
    plan.add_random_degraded_links(cell.degraded_links, node_count,
                                   /*factor=*/4.0);
  return plan;
}

CellResult run_cell(const SymbolicAnalysis& an, int pr, int pc,
                    trees::TreeScheme scheme, const Cell& cell,
                    const sim::MachineConfig& config) {
  const pselinv::Plan plan = make_plan(an, pr, pc, scheme);
  const int node_count = (pr * pc + config.cores_per_node - 1) /
                         config.cores_per_node;
  const fault::FaultPlan faults = cell_plan(cell, pr * pc, node_count);
  const sim::Perturbation perturbation = faults.perturbation();
  fault::DeterministicInjector injector(faults);

  pselinv::RunOptions options;
  options.resilience.enabled = true;
  options.injector = &injector;
  options.perturbation = &perturbation;

  const pselinv::RunResult run =
      run_pselinv(plan, sim::Machine(config), pselinv::ExecutionMode::kTrace,
                  nullptr, nullptr, nullptr, options);
  PSI_CHECK_MSG(run.complete(), "faulty run did not finalize every block");
  return CellResult{run.makespan, run.channel_stats, injector.stats()};
}

void showcase_heaviest(const SymbolicAnalysis& an, int pr, int pc,
                       const Cell& cell, const sim::MachineConfig& config) {
  const pselinv::Plan plan =
      make_plan(an, pr, pc, trees::TreeScheme::kShiftedBinary);
  const int node_count = (pr * pc + config.cores_per_node - 1) /
                         config.cores_per_node;
  // PSI_FAULT_* overrides the sweep's heaviest cell when set.
  fault::FaultPlan faults = fault::FaultPlan::from_env(pr * pc);
  if (faults.stragglers().empty() && faults.rules().empty())
    faults = cell_plan(cell, pr * pc, node_count);
  const sim::Perturbation perturbation = faults.perturbation();
  fault::DeterministicInjector injector(faults);

  pselinv::RunOptions options;
  options.resilience.enabled = true;
  options.injector = &injector;
  options.perturbation = &perturbation;

  obs::Recorder recorder;
  const pselinv::RunResult run =
      run_pselinv(plan, sim::Machine(config), pselinv::ExecutionMode::kTrace,
                  nullptr, nullptr, &recorder, options);
  PSI_CHECK(run.complete());

  const driver::ObsAnalysis analysis = driver::analyze_recording(recorder, config);
  Count fault_marks = 0;
  for (const obs::MarkEvent& mark : recorder.marks())
    if (std::string(mark.name).rfind("fault-", 0) == 0) ++fault_marks;
  std::printf(
      "showcase (Shifted Binary, heaviest cell %s): makespan %.3f s, "
      "%lld injected-fault marks, %d timer-wait hops on the critical path\n",
      cell.label().c_str(), run.makespan, static_cast<long long>(fault_marks),
      analysis.path.timer_hops);
  std::printf("%s", driver::render_critical_path(analysis.path).c_str());

  const std::string trace_path = out_dir() + "/robustness_trace.json";
  obs::ChromeTraceOptions trace_options;
  trace_options.class_name = pselinv::comm_class_name;
  obs::write_chrome_trace(recorder, trace_path, trace_options);
  std::printf("# chrome trace written to %s\n\n", trace_path.c_str());
}

/// Service-layer chaos campaign over a shards x workers grid. Every cell
/// replays the same seeded fault plan and request population against a live
/// ShardedService and checks the harness invariants; the fault-free digest
/// reference is computed once and shared (it depends only on the request
/// population). Returns the total number of invariant violations.
int run_serve_chaos(obs::MetricsRegistry* reg) {
  chaos::CampaignOptions base;
  base.plan.seed = 0x5eed'c4a0'5ULL;
  base.plan.store_read_error_rate = 0.10;
  base.plan.store_write_error_rate = 0.05;
  base.plan.store_rename_error_rate = 0.05;
  base.plan.store_torn_write_rate = 0.10;
  base.plan.stall_rate = 0.02;
  base.plan.stall_seconds = 0.05;
  base.plan.clock_skew_rate = 0.05;
  base.plan.clock_skew_seconds = 0.02;
  base.requests = 200;
  base.structures = 4;
  base.nx = 14;
  base.tenants = 3;
  base.stall_budget_seconds = 0.02;
  base.deadline_fraction = 0.25;
  base.cancel_fraction = 0.10;
  base.storm_every = 50;
  base.storm_size = 24;
  base.drain_timeout_seconds = 5.0;

  // One fault-free reference for every cell: the digests depend only on the
  // request population, never on shards/workers/faults.
  const std::map<std::string, std::string> reference =
      chaos::reference_digests(base);
  base.reference = &reference;

  obs::RecordWriter writer;
  writer.open_csv(out_dir() + "/serve_chaos.csv");
  writer.open_ndjson(out_dir() + "/serve_chaos.ndjson");

  TextTable table({"cell", "ok", "failed", "rejected", "deadline",
                   "cancelled", "shutdown", "stalls", "store faults",
                   "drain (s)", "quarantined", "violations"});
  int total_violations = 0;
  for (int shards : {1, 3}) {
    for (int workers : {1, 2}) {
      chaos::CampaignOptions options = base;
      options.shards = shards;
      options.workers = workers;
      options.plan_dir = out_dir() + "/serve_chaos_store";
      std::filesystem::remove_all(options.plan_dir);
      const chaos::CampaignResult r = chaos::run_chaos_campaign(options);
      std::filesystem::remove_all(options.plan_dir);

      char cell[32];
      std::snprintf(cell, sizeof(cell), "s=%d w=%d", shards, workers);
      const Count store_faults =
          r.fs.read_errors + r.fs.write_errors + r.fs.rename_errors +
          r.fs.torn_writes;
      table.add_row({cell, std::to_string(r.ok), std::to_string(r.failed),
                     std::to_string(r.rejected), std::to_string(r.deadline),
                     std::to_string(r.cancelled), std::to_string(r.shutdown),
                     std::to_string(r.stalls_injected),
                     std::to_string(store_faults),
                     TextTable::fmt(r.drain.waited_seconds, 3),
                     std::to_string(r.post_scan.quarantined),
                     std::to_string(r.violations.size())});
      writer.write(obs::Record()
                       .add("shards", shards)
                       .add("workers", workers)
                       .add("requests", options.requests)
                       .add("ok", static_cast<long long>(r.ok))
                       .add("failed", static_cast<long long>(r.failed))
                       .add("rejected", static_cast<long long>(r.rejected))
                       .add("deadline", static_cast<long long>(r.deadline))
                       .add("cancelled", static_cast<long long>(r.cancelled))
                       .add("shutdown", static_cast<long long>(r.shutdown))
                       .add("stalls_injected",
                            static_cast<long long>(r.stalls_injected))
                       .add("clock_jumps",
                            static_cast<long long>(r.clock_jumps))
                       .add("store_read_errors",
                            static_cast<long long>(r.fs.read_errors))
                       .add("store_write_errors",
                            static_cast<long long>(r.fs.write_errors))
                       .add("store_rename_errors",
                            static_cast<long long>(r.fs.rename_errors))
                       .add("store_torn_writes",
                            static_cast<long long>(r.fs.torn_writes))
                       .add("drain_waited_s", r.drain.waited_seconds)
                       .add("drain_hard_failed",
                            static_cast<long long>(r.drain.hard_failed))
                       .add("quarantined",
                            static_cast<long long>(r.post_scan.quarantined))
                       .add("wall_s", r.wall_seconds)
                       .add("violations",
                            static_cast<long long>(r.violations.size())));
      if (reg != nullptr) {
        obs::Labels labels;
        labels.set("bench", "serve_chaos")
            .set("shards", shards)
            .set("workers", workers);
        reg->gauge("chaos_ok", labels).set(static_cast<double>(r.ok));
        reg->gauge("chaos_violations", labels)
            .set(static_cast<double>(r.violations.size()));
        reg->gauge("chaos_drain_seconds", labels).set(r.drain.waited_seconds);
      }
      for (const std::string& v : r.violations)
        std::printf("VIOLATION (s=%d w=%d): %s\n", shards, workers, v.c_str());
      total_violations += static_cast<int>(r.violations.size());
    }
  }
  std::printf(
      "Service chaos campaign (seed %#llx, %d requests/cell, deadlines + "
      "cancellations + storms + store faults + stalls + clock skew):\n%s\n",
      static_cast<unsigned long long>(base.plan.seed), base.requests,
      table.render().c_str());
  std::printf(total_violations == 0
                  ? "serve-chaos: PASS — all robustness invariants held\n\n"
                  : "serve-chaos: FAIL — %d invariant violation(s)\n\n",
              total_violations);
  return total_violations;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = json_flag(argc, argv, "robustness");
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* reg = json_path.empty() ? nullptr : &registry;
  obs::RecordWriter row_writer;
  row_writer.open_csv(out_dir() + "/robustness.csv");
  row_writer.open_ndjson(out_dir() + "/robustness_rows.ndjson");

  const SymbolicAnalysis an =
      analyze_paper_matrix(driver::PaperMatrix::kDgPnf14000, 0.6);
  const int pr = 8, pc = 8;
  const sim::MachineConfig config = driver::timing_machine(/*jitter=*/0.0);

  // The grid: fault-free baseline, then stragglers x drop rates, then a
  // collapsed-links row. dup rides along at half the drop rate.
  std::vector<Cell> cells;
  for (int stragglers : {0, 2, 4})
    for (double drop : {0.0, 0.01, 0.05})
      cells.push_back(Cell{stragglers, drop, drop / 2.0, 0});
  cells.push_back(Cell{2, 0.01, 0.005, 2});
  const std::vector<trees::TreeScheme> schemes{
      trees::TreeScheme::kFlat, trees::TreeScheme::kBinary,
      trees::TreeScheme::kShiftedBinary};

  // Every (scheme, cell) simulation is independent: pre-size the result
  // grid and let the worker pool fill it, render sequentially after.
  struct Job {
    const SymbolicAnalysis* an;
    int pr, pc;
    trees::TreeScheme scheme;
    Cell cell;
    const sim::MachineConfig* config;
    CellResult result;
    void operator()() {
      result = run_cell(*an, pr, pc, scheme, cell, *config);
    }
  };
  std::vector<Job> jobs;
  for (trees::TreeScheme scheme : schemes)
    for (const Cell& cell : cells)
      jobs.push_back(Job{&an, pr, pc, scheme, cell, &config, {}});
  run_bench_jobs(jobs);

  std::vector<std::string> header{"cell"};
  for (trees::TreeScheme scheme : schemes) {
    header.push_back(std::string(trees::scheme_name(scheme)) + " (s)");
    header.push_back("xbase");
  }
  TextTable table(header);
  std::size_t job_index = 0;
  std::vector<double> baselines(schemes.size(), 0.0);
  std::vector<std::vector<std::string>> rows(cells.size());
  for (std::size_t ci = 0; ci < cells.size(); ++ci)
    rows[ci].push_back(cells[ci].label());
  for (std::size_t si = 0; si < schemes.size(); ++si) {
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
      const Job& job = jobs[job_index++];
      const CellResult& r = job.result;
      if (job.cell.stragglers == 0 && job.cell.drop == 0.0 &&
          job.cell.degraded_links == 0)
        baselines[si] = r.makespan;
      const double degradation =
          baselines[si] > 0.0 ? r.makespan / baselines[si] : 1.0;
      rows[ci].push_back(TextTable::fmt(r.makespan, 3));
      rows[ci].push_back(TextTable::fmt(degradation, 2));
      row_writer.write(
          obs::Record()
              .add("scheme", trees::scheme_name(job.scheme))
              .add("stragglers", job.cell.stragglers)
              .add("drop_prob", job.cell.drop)
              .add("degraded_links", job.cell.degraded_links)
              .add("makespan_s", r.makespan)
              .add("degradation", degradation)
              .add("retries", static_cast<long long>(r.channel.retries))
              .add("reroutes", static_cast<long long>(r.channel.reroutes))
              .add("duplicates_suppressed",
                   static_cast<long long>(r.channel.duplicates_suppressed))
              .add("msgs_dropped", static_cast<long long>(r.injector.dropped))
              .add("msgs_duplicated",
                   static_cast<long long>(r.injector.duplicated)));
      if (reg != nullptr) {
        obs::Labels labels;
        labels.set("bench", "robustness")
            .scheme(trees::scheme_name(job.scheme))
            .set("stragglers", job.cell.stragglers)
            .set("degraded_links", job.cell.degraded_links)
            .set("drop_pct", static_cast<int>(job.cell.drop * 100.0));
        registry.gauge("makespan_seconds", labels).set(r.makespan);
        registry.gauge("degradation_ratio", labels).set(degradation);
        registry.gauge("protocol_retries", labels)
            .set(static_cast<double>(r.channel.retries));
        registry.gauge("protocol_reroutes", labels)
            .set(static_cast<double>(r.channel.reroutes));
        registry.gauge("messages_dropped", labels)
            .set(static_cast<double>(r.injector.dropped));
      }
    }
  }
  for (std::vector<std::string>& row : rows) table.add_row(std::move(row));
  std::printf(
      "Robustness sweep (P=%d, resilient protocol on): makespan and "
      "degradation vs the scheme's fault-free run\n%s\n",
      pr * pc, table.render().c_str());

  showcase_heaviest(an, pr, pc, cells.back(), config);
  const int chaos_violations = run_serve_chaos(reg);
  write_json_summary(registry, json_path);
  return chaos_violations == 0 ? 0 : 1;
}
