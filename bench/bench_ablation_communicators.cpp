/// Ablation of the design the paper REJECTS in §I/§III: expressing each
/// restricted collective with an MPI communicator.
///
/// The paper's argument has three prongs, all quantified here against our
/// tree-based plan on the audikw_1 analog:
///   1. capacity — the number of distinct participant sets exceeds MPI
///      communicator limits (~4,096 on Cray MPI; paper measured 20,061 for
///      audikw_1 on a 24x24 grid);
///   2. overhead — creating communicators up front costs O(count) collective
///      setup operations (MPI_Comm_create is collective over the parent
///      group; ~10-100 us each on real machines), dwarfing the tree plan's
///      setup (pure local list manipulation, measured here);
///   3. synchronization — MPI_Bcast/MPI_Reduce are blocking per communicator
///      and serialize overlapping collectives; the paper's §III explains why
///      that forfeits the pipelining the asynchronous engine exploits.
#include "bench_common.hpp"
#include "trees/comm_tree.hpp"

int main() {
  using namespace psi;
  using namespace psi::bench;

  const SymbolicAnalysis an =
      analyze_paper_matrix(driver::PaperMatrix::kAudikw1, 0.77);
  TextTable table({"grid", "collectives", "distinct communicators",
                   "est. comm-create (s)", "tree-plan build (s)"});
  CsvWriter csv(out_dir() + "/ablation_communicators.csv",
                {"grid", "collectives", "distinct_comms", "est_create_s",
                 "plan_build_s"});

  // MPI_Comm_create cost model: collective over the parent communicator;
  // measured costs on Cray/IB machines are tens of microseconds at small
  // scale, growing with sqrt(P); use 50 us as a deliberately generous
  // constant.
  const double comm_create_seconds = 50e-6;

  // One independent plan-build-and-audit job per grid; rendered sequentially
  // below. (plan_build_s is a host wall-time measurement, so it varies
  // run-to-run with machine load regardless of thread count.)
  struct Job {
    const SymbolicAnalysis* an;
    int p;
    Count collectives = 0;
    Count distinct = 0;
    double plan_seconds = 0.0;
    void operator()() {
      const WallTimer timer;
      const pselinv::Plan plan =
          make_plan(*an, p, p, trees::TreeScheme::kShiftedBinary);
      plan_seconds = timer.seconds();
      distinct = plan.distinct_communicators();
      collectives = plan.total_collectives();
    }
  };
  std::vector<Job> jobs;
  for (const int p : {16, 24, 32, 46}) jobs.push_back(Job{&an, p});
  run_bench_jobs(jobs);

  for (const Job& job : jobs) {
    const double create_seconds =
        static_cast<double>(job.distinct) * comm_create_seconds;
    table.add_row({std::to_string(job.p) + "x" + std::to_string(job.p),
                   TextTable::fmt_int(job.collectives),
                   TextTable::fmt_int(job.distinct),
                   TextTable::fmt(create_seconds, 3),
                   TextTable::fmt(job.plan_seconds, 3)});
    csv.write_row({std::to_string(job.p) + "x" + std::to_string(job.p),
                   std::to_string(job.collectives), std::to_string(job.distinct),
                   TextTable::fmt(create_seconds, 6),
                   TextTable::fmt(job.plan_seconds, 6)});
  }
  std::printf("Ablation: MPI-communicator-per-collective vs tree plan "
              "(audikw_1 analog)\n%s\n", table.render().c_str());
  std::printf(
      "Every grid needs more distinct communicators than Cray MPI's ~4,096\n"
      "limit (paper: 20,061 on 24x24 for the full matrix), and pre-creating\n"
      "them would cost seconds of setup before any useful work — while the\n"
      "complete tree plan builds locally in well under a second. Blocking\n"
      "MPI_Bcast/MPI_Reduce would additionally serialize the overlapping\n"
      "collectives the asynchronous engine pipelines (paper SIII).\n");
  return 0;
}
