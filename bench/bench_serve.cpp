/// \file bench_serve.cpp
/// \brief Serving benchmark: cold vs warm plan-cache latency and
/// worker-count throughput scaling of psi::serve.
///
/// Scenarios:
///  * cold-vs-warm — a small structure catalog, repeated value-refresh
///    requests on one worker: the first request per structure pays ordering
///    + symbolic + plan/tree construction + the kTrace schedule simulation,
///    the rest ride the plan cache. Reports the p50 latency of each
///    population and the cold/warm ratio.
///  * closed-loop sweep — a Zipf catalog driven closed-loop at several
///    worker counts; reports throughput and latency percentiles.
///
/// Rows land in bench_out/serve.csv + bench_out/serve_rows.ndjson; a
/// metrics-registry dump (cache counters, phase histograms) goes to
/// bench_out/serve_metrics.ndjson.
#include "bench_common.hpp"

#include <iostream>

#include "serve/service.hpp"
#include "serve/workload.hpp"

namespace psi {
namespace {

serve::Service::Config service_config(int workers) {
  serve::Service::Config config;
  config.workers = workers;
  config.queue_capacity = 256;
  // A large simulated deployment (32x32 ranks) with narrow supernodes: the
  // pattern-side work a cold request pays — min-degree ordering, symbolic
  // analysis, per-supernode tree construction, and the kTrace schedule
  // simulation — dwarfs the per-request numeric phase, which is exactly the
  // amortization the plan cache is for.
  config.plan.grid_rows = 32;
  config.plan.grid_cols = 32;
  config.plan.machine = driver::timing_machine();
  config.plan.analysis.ordering.method = OrderingMethod::kMinDegree;
  config.plan.analysis.supernodes.max_size = 8;
  return config;
}

obs::Record scenario_record(const std::string& scenario, int workers,
                            const serve::WorkloadOptions& workload,
                            const serve::WorkloadReport& report) {
  obs::Record record;
  record.add("scenario", scenario)
      .add("workers", workers)
      .add("structures", workload.structures)
      .add("nx", static_cast<long long>(workload.nx))
      .add("requests", workload.requests);
  return report.append_to(record);
}

}  // namespace
}  // namespace psi

int main(int argc, char** argv) {
  using namespace psi;
  const std::string json_path = bench::json_flag(argc, argv, "serve_metrics");

  obs::RecordWriter rows;
  rows.open_csv(bench::out_dir() + "/serve.csv");
  rows.open_ndjson(bench::out_dir() + "/serve_rows.ndjson");
  obs::MetricsRegistry registry;

  // --- cold vs warm ---------------------------------------------------------
  {
    serve::WorkloadOptions workload;
    workload.structures = 6;
    workload.nx = 20;
    workload.requests = 48;
    workload.window = 1;  // strictly sequential: isolate per-request latency
    workload.seed = 3;
    serve::Service service(service_config(/*workers=*/1));
    const serve::WorkloadReport report = serve::run_workload(service, workload);
    service.shutdown();

    std::printf("== cold vs warm (%d structures, nx=%d, 1 worker, sequential) ==\n",
                workload.structures, static_cast<int>(workload.nx));
    serve::print_report(std::cout, report);
    const serve::PlanCache::Stats cache = service.cache_stats();
    std::printf("cache: %lld hits / %lld misses / %lld evictions\n",
                static_cast<long long>(cache.hits),
                static_cast<long long>(cache.misses),
                static_cast<long long>(cache.evictions));
    rows.write(psi::scenario_record("cold_vs_warm", 1, workload, report));
    service.fold_metrics(registry);
  }

  // --- closed-loop worker sweep --------------------------------------------
  for (const int workers : {1, 2, 4}) {
    serve::WorkloadOptions workload;
    workload.structures = 4;
    workload.nx = 24;
    workload.requests = 48;
    workload.window = 2 * workers;
    workload.zipf_s = 1.0;
    workload.warm_start = true;
    workload.seed = 5;
    serve::Service service(service_config(workers));
    const serve::WorkloadReport report = serve::run_workload(service, workload);
    service.shutdown();

    std::printf("\n== closed loop (nx=%d, %d structures, %d workers) ==\n",
                static_cast<int>(workload.nx), workload.structures, workers);
    serve::print_report(std::cout, report);
    rows.write(psi::scenario_record("closed_loop", workers, workload, report));
    service.fold_metrics(registry);
  }

  rows.flush();
  registry.write_ndjson(bench::out_dir() + "/serve_metrics.ndjson");
  std::printf("\n# rows written to %s/serve.csv (+ serve_rows.ndjson), "
              "metrics to %s/serve_metrics.ndjson\n",
              bench::out_dir().c_str(), bench::out_dir().c_str());
  bench::write_json_summary(registry, json_path);
  return 0;
}
