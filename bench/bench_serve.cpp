/// \file bench_serve.cpp
/// \brief Serving benchmark: cold vs warm plan-cache latency, worker-count
/// throughput scaling, and compute-thread latency scaling of psi::serve.
///
/// Scenarios:
///  * cold-vs-warm — a small structure catalog, repeated value-refresh
///    requests on one worker: the first request per structure pays ordering
///    + symbolic + plan/tree construction + the kTrace schedule simulation,
///    the rest ride the plan cache. Reports the p50 latency of each
///    population and the cold/warm ratio.
///  * warm compute sweep — the cold-vs-warm catalog replayed fully warm at
///    compute_threads in {1, 2, 4, 8} (task-parallel factor_parallel /
///    selinv_parallel per request). Every leg must produce the exact digest
///    sequence of the sequential leg — the canonical-order reduction
///    contract — and the bench EXITS NONZERO on any mismatch. Per-phase
///    latency decomposition (scatter / factor / invert, plus queue / plan /
///    total) lands in bench_out/serve_phases.csv as its own fixed schema.
///  * closed-loop sweep — a Zipf catalog driven closed-loop at several
///    worker counts; reports throughput and latency percentiles.
///  * restart campaign — a Zipf multi-tenant workload over the sharded
///    front end (psi::store) three ways: COLD (empty plan directory — every
///    plan built and published), DISK-WARM (a fresh service over the
///    now-populated directory — plans load from the store, no rebuilds),
///    and MEM-WARM (the same service again — pure in-memory hits). All
///    three runs must produce the identical order-independent response
///    digest (digest_xor) — the bench EXITS NONZERO otherwise — and the
///    disk-warm leg must actually hit the store. Rows land in
///    bench_out/store_restart.csv + .ndjson; the scratch plan directory
///    bench_out/plans_scratch/ is wiped at the start and gitignored.
///
/// Flags:
///  * --threads N (or --compute-threads N): the largest compute-thread leg
///    (default 8; legs are the powers of two up to N).
///  * --smoke: tiny catalog, compute legs {1, N}, digest cross-check only —
///    no files written (CI tier-1 runs this from the build tree). Exit 0 iff
///    every digest matches the sequential leg.
///
/// Rows land in bench_out/serve.csv + bench_out/serve_rows.ndjson; phase
/// rows in bench_out/serve_phases.csv + .ndjson; a metrics-registry dump
/// (cache counters, phase histograms, task-graph totals) goes to
/// bench_out/serve_metrics.ndjson.
#include "bench_common.hpp"

#include <cstring>
#include <iostream>
#include <vector>

#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "store/sharded_service.hpp"

namespace psi {
namespace {

serve::Service::Config service_config(int workers, int compute_threads = 1) {
  serve::Service::Config config;
  config.workers = workers;
  config.compute_threads = compute_threads;
  config.queue_capacity = 256;
  // A large simulated deployment (32x32 ranks) with narrow supernodes: the
  // pattern-side work a cold request pays — min-degree ordering, symbolic
  // analysis, per-supernode tree construction, and the kTrace schedule
  // simulation — dwarfs the per-request numeric phase, which is exactly the
  // amortization the plan cache is for.
  config.plan.grid_rows = 32;
  config.plan.grid_cols = 32;
  config.plan.machine = driver::timing_machine();
  config.plan.analysis.ordering.method = OrderingMethod::kMinDegree;
  config.plan.analysis.supernodes.max_size = 8;
  return config;
}

obs::Record scenario_record(const std::string& scenario, int workers,
                            int compute_threads,
                            const serve::WorkloadOptions& workload,
                            const serve::WorkloadReport& report) {
  obs::Record record;
  record.add("scenario", scenario)
      .add("workers", workers)
      .add("compute_threads", compute_threads)
      .add("structures", workload.structures)
      .add("nx", static_cast<long long>(workload.nx))
      .add("requests", workload.requests);
  return report.append_to(record);
}

/// The PR 5 cold-vs-warm catalog — also the compute-sweep workload.
serve::WorkloadOptions sweep_workload() {
  serve::WorkloadOptions workload;
  workload.structures = 6;
  workload.nx = 20;
  workload.requests = 48;
  workload.window = 1;  // strictly sequential: isolate per-request latency
  workload.seed = 3;
  return workload;
}

/// Submits the workload's exact request sequence one at a time and returns
/// the full responses — run_workload() only reports aggregates, and the
/// compute sweep needs each response's digest and phase decomposition.
std::vector<serve::Response> drive_sequential(
    serve::Service& service, const serve::WorkloadOptions& options) {
  std::vector<serve::Response> responses;
  responses.reserve(static_cast<std::size_t>(options.requests));
  for (int i = 0; i < options.requests; ++i)
    responses.push_back(
        service.submit(serve::make_request(options, i)).get());
  return responses;
}

/// Report over an all-warm response set (the measured second pass).
serve::WorkloadReport report_from(const std::vector<serve::Response>& responses,
                                  double wall_seconds) {
  serve::WorkloadReport report;
  report.wall_seconds = wall_seconds;
  for (const serve::Response& r : responses) {
    if (!r.ok()) {
      report.failed += 1;
      continue;
    }
    report.ok += 1;
    (r.cache_hit ? report.warm : report.cold) += 1;
    report.total_s.add(r.total_seconds);
    (r.cache_hit ? report.warm_total_s : report.cold_total_s)
        .add(r.total_seconds);
    report.queue_s.add(r.queue_seconds);
  }
  if (wall_seconds > 0.0)
    report.throughput_rps = static_cast<double>(report.ok) / wall_seconds;
  return report;
}

/// One compute-sweep leg: a fresh 1-worker service at `compute_threads`,
/// one cold pass to populate the plan cache, then the measured warm pass.
struct SweepLeg {
  int compute_threads = 1;
  std::vector<std::string> digests;  ///< per request index, measured pass
  serve::WorkloadReport report;
  SampleStats phase_s[6];  ///< queue, plan, scatter, factor, invert, total
};

constexpr const char* kPhaseNames[6] = {"queue",  "plan",   "scatter",
                                        "factor", "invert", "total"};

SweepLeg run_sweep_leg(const serve::WorkloadOptions& workload,
                       int compute_threads, obs::MetricsRegistry* registry) {
  SweepLeg leg;
  leg.compute_threads = compute_threads;
  serve::Service service(service_config(/*workers=*/1, compute_threads));
  drive_sequential(service, workload);  // cold pass: builds every plan
  WallTimer timer;
  const std::vector<serve::Response> responses =
      drive_sequential(service, workload);
  leg.report = report_from(responses, timer.seconds());
  for (const serve::Response& r : responses) {
    leg.digests.push_back(r.digest);
    if (!r.ok()) continue;
    const double phase_values[6] = {r.queue_seconds,  r.plan_seconds,
                                    r.scatter_seconds, r.factor_seconds,
                                    r.invert_seconds, r.total_seconds};
    for (int p = 0; p < 6; ++p) leg.phase_s[p].add(phase_values[p]);
  }
  service.shutdown();
  if (registry != nullptr) service.fold_metrics(*registry);
  return leg;
}

/// Digest-compares every leg against the first (sequential) one; returns
/// the number of mismatching request indices (0 = bitwise clean).
int check_digests(const std::vector<SweepLeg>& legs) {
  int mismatches = 0;
  const SweepLeg& base = legs.front();
  for (std::size_t l = 1; l < legs.size(); ++l) {
    const SweepLeg& leg = legs[l];
    for (std::size_t i = 0; i < base.digests.size(); ++i) {
      if (i < leg.digests.size() && leg.digests[i] == base.digests[i])
        continue;
      ++mismatches;
      std::fprintf(stderr,
                   "DIGEST MISMATCH request=%zu compute_threads=%d: %s != %s\n",
                   i, leg.compute_threads,
                   i < leg.digests.size() ? leg.digests[i].c_str() : "<none>",
                   base.digests[i].c_str());
    }
  }
  return mismatches;
}

std::vector<int> sweep_thread_counts(int max_threads) {
  std::vector<int> counts;
  for (int t = 1; t <= max_threads; t *= 2) counts.push_back(t);
  if (counts.back() != max_threads) counts.push_back(max_threads);
  return counts;
}

// --- restart campaign (psi::store) ------------------------------------------

/// Zipf multi-tenant workload of the restart campaign: skewed popularity so
/// the store sees both hot and rare structures, three tenants so the
/// per-tenant SLO metrics carry real samples.
serve::WorkloadOptions restart_workload() {
  serve::WorkloadOptions workload;
  workload.structures = 6;
  workload.nx = 20;
  workload.requests = 48;
  workload.window = 4;
  workload.zipf_s = 1.0;
  workload.tenants = 3;
  workload.seed = 7;
  return workload;
}

store::ShardedService::Config restart_config(const std::string& plan_dir) {
  store::ShardedService::Config config;
  config.shards = 2;
  config.service = service_config(/*workers=*/2);
  config.plan_dir = plan_dir;
  return config;
}

struct RestartLeg {
  const char* scenario;
  serve::WorkloadReport report;
  serve::PlanCache::Stats cache;
};

int run_restart_campaign(obs::RecordWriter& rows,
                         obs::MetricsRegistry& registry) {
  const std::string plan_dir = bench::out_dir() + "/plans_scratch";
  std::filesystem::remove_all(plan_dir);
  const serve::WorkloadOptions workload = restart_workload();
  std::vector<RestartLeg> legs;

  {
    // COLD: empty store — every structure builds and publishes.
    store::ShardedService service(restart_config(plan_dir));
    legs.push_back({"restart_cold",
                    serve::run_workload(service, workload),
                    service.cache_stats()});
    service.shutdown();
    service.fold_metrics(registry);
  }
  {
    // DISK-WARM then MEM-WARM on one fresh process-restart equivalent: the
    // first pass loads every plan from the directory the cold run wrote,
    // the second hits the in-memory caches those loads populated.
    store::ShardedService service(restart_config(plan_dir));
    legs.push_back({"restart_disk_warm",
                    serve::run_workload(service, workload),
                    service.cache_stats()});
    legs.push_back({"restart_mem_warm",
                    serve::run_workload(service, workload),
                    service.cache_stats()});
    service.shutdown();
    service.fold_metrics(registry);
  }

  std::printf("\n== restart campaign (2 shards, 2 workers each, %d tenants, "
              "zipf %.1f, plan dir %s) ==\n",
              workload.tenants, workload.zipf_s, plan_dir.c_str());
  int failures = 0;
  const std::uint64_t base_digest = legs.front().report.digest_xor;
  for (const RestartLeg& leg : legs) {
    const serve::WorkloadReport& r = leg.report;
    std::printf("%-18s ok=%lld cold=%lld (disk %lld) warm=%lld "
                "p50=%.6fs p99=%.6fs digest=%016llx\n",
                leg.scenario, static_cast<long long>(r.ok),
                static_cast<long long>(r.cold),
                static_cast<long long>(r.disk),
                static_cast<long long>(r.warm),
                r.total_s.empty() ? 0.0 : r.total_s.quantile(0.5),
                r.total_s.empty() ? 0.0 : r.total_s.quantile(0.99),
                static_cast<unsigned long long>(r.digest_xor));
    if (r.digest_xor != base_digest || r.ok != workload.requests) {
      std::fprintf(stderr, "restart campaign FAILED: %s digest/count "
                   "mismatch\n", leg.scenario);
      ++failures;
    }
    obs::Record record;
    record.add("scenario", leg.scenario)
        .add("shards", 2)
        .add("workers", 2)
        .add("tenants", workload.tenants)
        .add("structures", workload.structures)
        .add("nx", static_cast<long long>(workload.nx))
        .add("requests", workload.requests)
        .add("store_hits", static_cast<long long>(leg.cache.store_hits))
        .add("store_writes", static_cast<long long>(leg.cache.store_writes));
    leg.report.append_to(record);
    rows.write(record);
  }
  // The disk-warm run must have loaded (not rebuilt) its plans…
  const serve::PlanCache::Stats& disk = legs[1].cache;
  if (disk.store_hits < workload.structures) {
    std::fprintf(stderr, "restart campaign FAILED: disk-warm run loaded only "
                 "%lld plans from the store\n",
                 static_cast<long long>(disk.store_hits));
    ++failures;
  }
  // …and the cold run must have published every structure it built.
  if (legs[0].cache.store_writes < workload.structures) {
    std::fprintf(stderr, "restart campaign FAILED: cold run published only "
                 "%lld plans\n",
                 static_cast<long long>(legs[0].cache.store_writes));
    ++failures;
  }
  const double disk_p50 = legs[1].report.total_s.empty()
                              ? 0.0
                              : legs[1].report.total_s.quantile(0.5);
  const double mem_p50 = legs[2].report.total_s.empty()
                             ? 0.0
                             : legs[2].report.total_s.quantile(0.5);
  const double cold_p50 = legs[0].report.total_s.empty()
                              ? 0.0
                              : legs[0].report.total_s.quantile(0.5);
  if (mem_p50 > 0.0)
    std::printf("warm restart: disk p50 / mem p50 = %.2fx, cold p50 / disk "
                "p50 = %.2fx\n",
                disk_p50 / mem_p50, disk_p50 > 0.0 ? cold_p50 / disk_p50 : 0.0);
  if (failures == 0)
    std::printf("restart digests bitwise identical: cold == disk-warm == "
                "mem-warm\n");
  return failures;
}

}  // namespace
}  // namespace psi

int main(int argc, char** argv) {
  using namespace psi;
  const std::string json_path = bench::json_flag(argc, argv, "serve_metrics");
  bool smoke = false;
  int max_compute = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if ((arg == "--threads" || arg == "--compute-threads") && i + 1 < argc)
      max_compute = std::max(1, std::atoi(argv[i + 1]));
  }

  if (smoke) {
    // CI tier-1 path: tiny catalog, legs {1, max}, digest check, no files.
    serve::WorkloadOptions workload;
    workload.structures = 2;
    workload.nx = 8;
    workload.requests = 6;
    workload.window = 1;
    workload.seed = 3;
    std::vector<SweepLeg> legs;
    for (const int threads : std::vector<int>{1, max_compute})
      legs.push_back(run_sweep_leg(workload, threads, nullptr));
    const int mismatches = check_digests(legs);
    for (const SweepLeg& leg : legs)
      std::printf("smoke compute_threads=%d ok=%lld warm_p50=%.6fs\n",
                  leg.compute_threads, static_cast<long long>(leg.report.ok),
                  leg.report.warm_total_s.empty()
                      ? 0.0
                      : leg.report.warm_total_s.quantile(0.5));
    if (mismatches != 0 ||
        legs.front().report.ok != static_cast<Count>(workload.requests)) {
      std::fprintf(stderr, "smoke FAILED: %d digest mismatches\n", mismatches);
      return 1;
    }
    std::printf("smoke OK: digests bitwise identical across compute threads "
                "{1, %d}\n", max_compute);
    return 0;
  }

  obs::RecordWriter rows;
  rows.open_csv(bench::out_dir() + "/serve.csv");
  rows.open_ndjson(bench::out_dir() + "/serve_rows.ndjson");
  obs::RecordWriter phase_rows;
  phase_rows.open_csv(bench::out_dir() + "/serve_phases.csv");
  phase_rows.open_ndjson(bench::out_dir() + "/serve_phases.ndjson");
  obs::MetricsRegistry registry;

  // --- cold vs warm ---------------------------------------------------------
  {
    const serve::WorkloadOptions workload = sweep_workload();
    serve::Service service(service_config(/*workers=*/1));
    const serve::WorkloadReport report = serve::run_workload(service, workload);
    service.shutdown();

    std::printf("== cold vs warm (%d structures, nx=%d, 1 worker, sequential) ==\n",
                workload.structures, static_cast<int>(workload.nx));
    serve::print_report(std::cout, report);
    const serve::PlanCache::Stats cache = service.cache_stats();
    std::printf("cache: %lld hits / %lld misses / %lld evictions\n",
                static_cast<long long>(cache.hits),
                static_cast<long long>(cache.misses),
                static_cast<long long>(cache.evictions));
    rows.write(psi::scenario_record("cold_vs_warm", 1, 1, workload, report));
    service.fold_metrics(registry);
  }

  // --- warm compute-thread sweep --------------------------------------------
  {
    const serve::WorkloadOptions workload = sweep_workload();
    std::vector<SweepLeg> legs;
    for (const int threads : sweep_thread_counts(max_compute))
      legs.push_back(run_sweep_leg(workload, threads, &registry));

    const SampleStats& base_total = legs.front().report.total_s;
    const double base_p50 = base_total.empty() ? 0.0 : base_total.quantile(0.5);
    std::printf("\n== warm compute sweep (%d structures, nx=%d, 1 worker) ==\n",
                workload.structures, static_cast<int>(workload.nx));
    for (const SweepLeg& leg : legs) {
      const double p50 = leg.report.total_s.empty()
                             ? 0.0
                             : leg.report.total_s.quantile(0.5);
      const double total_mean = leg.phase_s[5].mean();
      const auto share = [total_mean](const SampleStats& s) {
        return total_mean > 0.0 ? 100.0 * s.mean() / total_mean : 0.0;
      };
      std::printf("compute_threads=%d warm_p50=%.6fs speedup=%.2fx "
                  "(scatter %.0f%% factor %.0f%% invert %.0f%% of total)\n",
                  leg.compute_threads, p50, p50 > 0.0 ? base_p50 / p50 : 0.0,
                  share(leg.phase_s[2]), share(leg.phase_s[3]),
                  share(leg.phase_s[4]));
      rows.write(psi::scenario_record("warm_compute_sweep", 1,
                                      leg.compute_threads, workload,
                                      leg.report));
      for (int p = 0; p < 6; ++p) {
        const SampleStats& s = leg.phase_s[p];
        obs::Record record;
        record.add("scenario", "warm_compute_sweep")
            .add("compute_threads", leg.compute_threads)
            .add("phase", kPhaseNames[p])
            .add("count", static_cast<long long>(s.count()))
            .add("mean_s", s.mean())
            .add("p50_s", s.empty() ? 0.0 : s.quantile(0.5))
            .add("p95_s", s.empty() ? 0.0 : s.quantile(0.95))
            .add("max_s", s.max());
        phase_rows.write(record);
      }
    }

    const int mismatches = check_digests(legs);
    if (mismatches != 0) {
      std::fprintf(stderr,
                   "compute sweep FAILED: %d digest mismatches\n", mismatches);
      return 1;
    }
    std::printf("digests bitwise identical across all compute-thread legs\n");
  }

  // --- closed-loop worker sweep --------------------------------------------
  for (const int workers : {1, 2, 4}) {
    serve::WorkloadOptions workload;
    workload.structures = 4;
    workload.nx = 24;
    workload.requests = 48;
    workload.window = 2 * workers;
    workload.zipf_s = 1.0;
    workload.warm_start = true;
    workload.seed = 5;
    serve::Service service(service_config(workers));
    const serve::WorkloadReport report = serve::run_workload(service, workload);
    service.shutdown();

    std::printf("\n== closed loop (nx=%d, %d structures, %d workers) ==\n",
                static_cast<int>(workload.nx), workload.structures, workers);
    serve::print_report(std::cout, report);
    rows.write(psi::scenario_record("closed_loop", workers, 1, workload,
                                    report));
    service.fold_metrics(registry);
  }

  // --- warm restart campaign (persistent plan store) ------------------------
  int restart_failures = 0;
  {
    obs::RecordWriter restart_rows;
    restart_rows.open_csv(bench::out_dir() + "/store_restart.csv");
    restart_rows.open_ndjson(bench::out_dir() + "/store_restart.ndjson");
    restart_failures = psi::run_restart_campaign(restart_rows, registry);
    restart_rows.flush();
  }

  rows.flush();
  phase_rows.flush();
  registry.write_ndjson(bench::out_dir() + "/serve_metrics.ndjson");
  std::printf("\n# rows written to %s/serve.csv (+ serve_rows.ndjson), "
              "phases to %s/serve_phases.csv, restart rows to "
              "%s/store_restart.csv, metrics to %s/serve_metrics.ndjson\n",
              bench::out_dir().c_str(), bench::out_dir().c_str(),
              bench::out_dir().c_str(), bench::out_dir().c_str());
  bench::write_json_summary(registry, json_path);
  return restart_failures == 0 ? 0 : 1;
}
