/// Regenerates **Figure 6** of the paper: the Flat-Tree Col-Bcast heat map
/// for the audikw_1 analog on the SMALL 16x16 grid, plus the paper's
/// accompanying claim that the relative imbalance (stddev / mean) is much
/// lower at 256 ranks than at 2,116 ranks (10.2% vs 19.2% in the paper) —
/// i.e. communication imbalance is a *scale* problem.
#include "bench_common.hpp"

int main() {
  using namespace psi;
  using namespace psi::bench;

  const SymbolicAnalysis an =
      analyze_paper_matrix(driver::PaperMatrix::kAudikw1);
  CsvWriter csv(out_dir() + "/fig6_smallgrid.csv",
                {"grid", "mean_mb", "stddev_mb", "relative_stddev_pct"});

  double rel_small = 0.0, rel_large = 0.0;
  for (const int p : {16, 46}) {
    const pselinv::Plan plan = make_plan(an, p, p, trees::TreeScheme::kFlat);
    const std::vector<double> mb =
        pselinv::analyze_volume(plan).col_bcast_sent_mb();
    const SampleStats stats = pselinv::VolumeReport::summarize(mb);
    const double rel = 100.0 * stats.stddev() / stats.mean();
    (p == 16 ? rel_small : rel_large) = rel;
    if (p == 16) {
      const dist::ProcessGrid grid(p, p);
      const HeatMap map = driver::rank_field_to_heatmap(mb, grid);
      std::printf(
          "Figure 6: Col-Bcast sent volume heat map, Flat-Tree, %dx%d grid\n%s\n",
          p, p, map.render().c_str());
    }
    std::printf("grid %2dx%2d: mean %.2f MB, stddev %.2f MB -> %.1f%% relative "
                "(paper: 10.2%% at 16x16 vs 19.2%% at 46x46)\n",
                p, p, stats.mean(), stats.stddev(), rel);
    csv.write_row({std::to_string(p) + "x" + std::to_string(p),
                   TextTable::fmt(stats.mean(), 3), TextTable::fmt(stats.stddev(), 3),
                   TextTable::fmt(rel, 2)});
  }
  std::printf("\nimbalance grows with scale: %s (%.1f%% < %.1f%%)\n",
              rel_small < rel_large ? "REPRODUCED" : "NOT reproduced",
              rel_small, rel_large);
  return 0;
}
