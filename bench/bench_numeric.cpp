/// \file bench_numeric.cpp
/// \brief Shared-memory numeric-phase benchmark: task-parallel supernodal
/// factorization (factor_parallel) and selected inversion (selinv_parallel)
/// swept over compute threads {1, 2, 4, 8} on the three generator families
/// (dg2d / dg3d / fem3d).
///
/// Every leg's factor and selected-inverse content must be BITWISE identical
/// to the sequential kernels (canonical-order reductions); the bench digests
/// each leg and exits nonzero on any mismatch, so committed artifacts are
/// also a determinism witness. Rows (per structure x thread count: wall
/// seconds of each phase, task/edge counts, ready-queue high water, speedup
/// vs threads=1) land in bench_out/numeric.csv + bench_out/numeric.ndjson.
#include "bench_common.hpp"

#include <optional>
#include <string>
#include <vector>

#include "numeric/selinv.hpp"
#include "numeric/supernodal_lu.hpp"
#include "serve/service.hpp"
#include "sparse/generators.hpp"

namespace psi {
namespace {

struct Problem {
  std::string name;
  GeneratedMatrix gen;
};

std::vector<Problem> problems() {
  std::vector<Problem> out;
  out.push_back({"dg2d_12x12b4", dg2d(12, 12, 4, /*seed=*/11)});
  out.push_back({"dg3d_5x5x5b3", dg3d(5, 5, 5, 3, /*seed=*/12)});
  out.push_back({"fem3d_7x7x7d2", fem3d(7, 7, 7, 2, /*seed=*/13)});
  return out;
}

struct Leg {
  int threads = 1;
  double factor_seconds = 0.0;
  double selinv_seconds = 0.0;
  std::string factor_digest;
  std::string ainv_digest_hex;
  numeric::TaskGraphStats stats;
};

Leg run_leg(const SymbolicAnalysis& an, int threads) {
  Leg leg;
  leg.threads = threads;
  numeric::ParallelOptions opts;
  opts.threads = threads;
  opts.stats = &leg.stats;
  std::optional<parallel::ThreadPool> pool;
  if (threads > 1) {
    pool.emplace(threads - 1);
    opts.pool = &*pool;
  }

  WallTimer timer;
  SupernodalLU lu = threads > 1 ? SupernodalLU::factor_parallel(an, opts)
                                : SupernodalLU::factor(an);
  leg.factor_seconds = timer.seconds();
  leg.factor_digest = serve::ainv_digest(lu.blocks());
  timer.reset();
  const BlockMatrix ainv =
      threads > 1 ? selinv_parallel(lu, opts) : selected_inversion(lu);
  leg.selinv_seconds = timer.seconds();
  leg.ainv_digest_hex = serve::ainv_digest(ainv);
  return leg;
}

}  // namespace
}  // namespace psi

int main(int argc, char** argv) {
  using namespace psi;
  const std::string json_path = bench::json_flag(argc, argv, "numeric");

  obs::RecordWriter rows;
  rows.open_csv(bench::out_dir() + "/numeric.csv");
  rows.open_ndjson(bench::out_dir() + "/numeric.ndjson");
  obs::MetricsRegistry registry;

  int mismatches = 0;
  for (const Problem& problem : problems()) {
    AnalysisOptions opt;
    opt.ordering.method = OrderingMethod::kMinDegree;
    opt.supernodes.max_size = 8;
    const SymbolicAnalysis an = analyze(problem.gen, opt);
    std::printf("== %s: n=%d supernodes=%d ==\n", problem.name.c_str(),
                an.matrix.n(), an.blocks.supernode_count());

    std::vector<Leg> legs;
    for (const int threads : {1, 2, 4, 8})
      legs.push_back(run_leg(an, threads));

    const Leg& base = legs.front();
    for (const Leg& leg : legs) {
      const bool factor_ok = leg.factor_digest == base.factor_digest;
      const bool ainv_ok = leg.ainv_digest_hex == base.ainv_digest_hex;
      if (!factor_ok || !ainv_ok) {
        ++mismatches;
        std::fprintf(stderr,
                     "DIGEST MISMATCH %s threads=%d factor_ok=%d ainv_ok=%d\n",
                     problem.name.c_str(), leg.threads, factor_ok, ainv_ok);
      }
      const double base_total = base.factor_seconds + base.selinv_seconds;
      const double leg_total = leg.factor_seconds + leg.selinv_seconds;
      const double speedup = leg_total > 0.0 ? base_total / leg_total : 0.0;
      std::printf("  threads=%d factor=%.4fs selinv=%.4fs speedup=%.2fx "
                  "tasks=%lld edges=%lld ready_hw=%zu\n",
                  leg.threads, leg.factor_seconds, leg.selinv_seconds, speedup,
                  static_cast<long long>(leg.stats.tasks),
                  static_cast<long long>(leg.stats.edges),
                  leg.stats.ready_high_water);
      obs::Record record;
      record.add("structure", problem.name)
          .add("n", an.matrix.n())
          .add("supernodes", an.blocks.supernode_count())
          .add("threads", leg.threads)
          .add("factor_s", leg.factor_seconds)
          .add("selinv_s", leg.selinv_seconds)
          .add("speedup", speedup)
          .add("tasks", static_cast<long long>(leg.stats.tasks))
          .add("edges", static_cast<long long>(leg.stats.edges))
          .add("ready_high_water",
               static_cast<long long>(leg.stats.ready_high_water))
          .add("bitwise_ok", factor_ok && ainv_ok)
          .add("ainv_digest", leg.ainv_digest_hex);
      rows.write(record);

      registry.counter("numeric.legs").add(1);
      registry
          .histogram("numeric.leg_seconds", obs::Labels(),
                     {1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0})
          .observe(leg_total);
    }
  }

  rows.flush();
  std::printf("\n# rows written to %s/numeric.csv (+ numeric.ndjson)\n",
              bench::out_dir().c_str());
  bench::write_json_summary(registry, json_path);
  if (mismatches != 0) {
    std::fprintf(stderr, "bench_numeric FAILED: %d digest mismatches\n",
                 mismatches);
    return 1;
  }
  std::printf("# digests bitwise identical across all thread legs\n");
  return 0;
}
