/// Regenerates **Figure 7** of the paper: the Pr x Pc heat map of per-rank
/// Row-Reduce RECEIVED volume (audikw_1 analog, 46x46 grid), Flat-Tree vs
/// Shifted Binary-Tree on a shared scale. Expected: the shifted scheme
/// yields a visibly more uniform field — "the reverse operation of a
/// broadcast" shows the same balancing effect.
#include "bench_common.hpp"

int main() {
  using namespace psi;
  using namespace psi::bench;

  const SymbolicAnalysis an =
      analyze_paper_matrix(driver::PaperMatrix::kAudikw1);
  const int pr = 46, pc = 46;
  const dist::ProcessGrid grid(pr, pc);
  CsvWriter csv(out_dir() + "/fig7_heatmap_rowreduce.csv",
                {"scheme", "prow", "pcol", "received_mb"});

  double shared_lo = 0.0, shared_hi = 1.0;
  for (trees::TreeScheme scheme :
       {trees::TreeScheme::kFlat, trees::TreeScheme::kShiftedBinary}) {
    const pselinv::Plan plan = make_plan(an, pr, pc, scheme);
    const std::vector<double> mb =
        pselinv::analyze_volume(plan).row_reduce_received_mb();
    const HeatMap map = driver::rank_field_to_heatmap(mb, grid);
    if (scheme == trees::TreeScheme::kFlat) {
      shared_lo = map.min_value();
      shared_hi = map.max_value();
    }
    std::printf("Figure 7 (%s): Row-Reduce received volume heat map (MB)\n%s\n",
                trees::scheme_name(scheme),
                map.render(shared_lo, shared_hi).c_str());
    const SampleStats stats = pselinv::VolumeReport::summarize(mb);
    std::printf("  min %.2f  max %.2f  median %.2f  stddev %.2f (MB)\n\n",
                stats.min(), stats.max(), stats.median(), stats.stddev());
    for (int r = 0; r < grid.size(); ++r)
      csv.write_row({trees::scheme_name(scheme), std::to_string(grid.row_of(r)),
                     std::to_string(grid.col_of(r)),
                     TextTable::fmt(mb[static_cast<std::size_t>(r)], 5)});
  }
  return 0;
}
