/// \file bench_nsym.cpp
/// \brief Non-symmetric selected inversion benchmark: row-side vs
/// column-side tree traffic and makespan across the three tree schemes and
/// several process grids, on the structurally non-symmetric generator
/// families (dg2d/dg3d/fem3d one-directional coupling drops).
///
/// Two outputs:
///  * a volume/makespan grid (per problem x grid x scheme: column-side,
///    row-side, and cross bytes, the per-supernode side-imbalance
///    distribution |row-col|/(row+col), plan inventory, trace-mode
///    makespan/events) in bench_out/nsym_trees.csv + .ndjson;
///  * a determinism digest gate (bench_out/nsym_digest.csv + .ndjson):
///    task-parallel factor+sweep digests at threads {2, 4} must equal the
///    sequential restricted sweep BITWISE, resilient engine runs at
///    partitions {1, 4} must agree bitwise with identical makespans, and
///    each scheme's fast engine leg must match the sequential sweep to
///    1e-8. Any violation exits nonzero, so the committed artifacts are a
///    determinism witness.
///
/// `--smoke` shrinks to one tiny problem and runs the digest gate only
/// (registered as the tier-1 ctest `bench_nsym_smoke`, label `nsym`).
#include "bench_common.hpp"

#include <cmath>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nsym/engine.hpp"
#include "nsym/selinv.hpp"
#include "nsym/structure.hpp"
#include "nsym/volume.hpp"
#include "serve/service.hpp"
#include "sparse/generators.hpp"

namespace psi {
namespace {

struct Problem {
  std::string name;
  GeneratedMatrix gen;
  Int group;  ///< coupling-group width = supernode cap (keeps drops visible)
};

std::vector<Problem> problems(bool smoke) {
  std::vector<Problem> out;
  if (smoke) {
    out.push_back({"dg2d_3x3b4_drop07", dg2d_nonsym(3, 3, 4, 7, 0.7), 4});
    return out;
  }
  out.push_back({"dg2d_8x8b4", dg2d_nonsym(8, 8, 4, 11), 4});
  out.push_back({"dg3d_4x4x4b3", dg3d_nonsym(4, 4, 4, 3, 12), 3});
  out.push_back({"fem3d_6x6x6d2", fem3d_nonsym(6, 6, 6, 2, 13), 2});
  return out;
}

nsym::NsymAnalysis analyze_problem(const Problem& problem) {
  AnalysisOptions opt;
  opt.ordering.method = OrderingMethod::kNestedDissection;
  // Cap supernodes at the coupling-group width: amalgamating past it would
  // re-symmetrize the directed drops at block granularity and the restricted
  // paths under test would never fire.
  opt.supernodes.max_size = problem.group;
  return nsym::analyze_nsym(problem.gen, opt);
}

sim::Machine bench_machine() {
  sim::MachineConfig config;
  config.cores_per_node = 4;
  config.nodes_per_group = 4;
  return sim::Machine(config);
}

constexpr trees::TreeScheme kSchemes[] = {trees::TreeScheme::kFlat,
                                          trees::TreeScheme::kBinary,
                                          trees::TreeScheme::kShiftedBinary};

/// Worst entry gap over both triangles of the union structure.
double union_gap(const BlockMatrix& got, const BlockMatrix& ref,
                 const BlockStructure& bs) {
  double gap = 0.0;
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    gap = std::max(gap, max_abs_diff(got.block(k, k), ref.block(k, k)));
    for (Int i : bs.struct_of[static_cast<std::size_t>(k)]) {
      gap = std::max(gap, max_abs_diff(got.block(i, k), ref.block(i, k)));
      gap = std::max(gap, max_abs_diff(got.block(k, i), ref.block(k, i)));
    }
  }
  return gap;
}

/// The determinism/accuracy gate; returns the number of violations (0 = ok)
/// and appends one row per leg to `rows`.
int digest_gate(const Problem& problem, const nsym::NsymAnalysis& an,
                obs::RecordWriter& rows) {
  int violations = 0;
  const sim::Machine machine = bench_machine();
  const BlockStructure& bs = an.sym.blocks;

  const auto emit = [&](const std::string& leg, double seconds, bool ok,
                        const std::string& digest) {
    obs::Record record;
    record.add("structure", problem.name)
        .add("n", an.matrix.n())
        .add("supernodes", bs.supernode_count())
        .add("leg", leg)
        .add("wall_s", seconds)
        .add("ok", ok)
        .add("digest", digest);
    rows.write(record);
    if (!ok) {
      ++violations;
      std::fprintf(stderr, "DIGEST GATE FAILED %s leg=%s\n",
                   problem.name.c_str(), leg.c_str());
    }
  };

  // Sequential reference: restricted factorization + restricted sweep.
  WallTimer timer;
  nsym::NsymSupernodalLU lu_seq = nsym::NsymSupernodalLU::factor(an);
  const double factor_s = timer.seconds();
  timer.reset();
  const BlockMatrix reference = nsym::nsym_selected_inversion(lu_seq);
  const double selinv_s = timer.seconds();
  const std::string ref_digest = serve::ainv_digest(reference);
  emit("seq_factor", factor_s, true, "");
  emit("seq_selinv", selinv_s, true, ref_digest);

  // Task-parallel legs: bitwise against the sequential sweep.
  for (const int threads : {2, 4}) {
    parallel::ThreadPool pool(threads - 1);
    numeric::ParallelOptions popt;
    popt.threads = threads;
    popt.pool = &pool;
    timer.reset();
    nsym::NsymSupernodalLU lu_par =
        nsym::NsymSupernodalLU::factor_parallel(an, popt);
    const BlockMatrix par = nsym::nsym_selinv_parallel(lu_par, popt);
    const std::string digest = serve::ainv_digest(par);
    emit("task_parallel_t" + std::to_string(threads), timer.seconds(),
         digest == ref_digest, digest);
  }

  // Fast engine legs per scheme: tolerance against the sequential sweep
  // (fast mode folds in arrival order; bitwise is for resilient mode).
  const dist::ProcessGrid grid(2, 2);
  for (const trees::TreeScheme scheme : kSchemes) {
    const nsym::NsymPlan plan(bs, an.structure, grid,
                              driver::tree_options_for(scheme));
    nsym::NsymSupernodalLU lu = nsym::NsymSupernodalLU::factor(an);
    timer.reset();
    pselinv::RunResult run = nsym::run_nsym(
        plan, machine, pselinv::ExecutionMode::kNumeric, &lu);
    const double gap = union_gap(*run.ainv, reference, bs);
    emit(std::string("engine_fast_") + trees::scheme_name(scheme),
         timer.seconds(), run.complete() && gap <= 1e-8, "");
  }

  // Resilient engine legs at partitions {1, 4}: bitwise identical results
  // and identical makespans (DESIGN.md §14/§15).
  std::string p1_digest;
  sim::SimTime p1_makespan = 0.0;
  for (const int partitions : {1, 4}) {
    const nsym::NsymPlan plan(
        bs, an.structure, grid,
        driver::tree_options_for(trees::TreeScheme::kShiftedBinary));
    nsym::NsymSupernodalLU lu = nsym::NsymSupernodalLU::factor(an);
    pselinv::RunOptions options;
    options.resilience.enabled = true;
    options.partitions = partitions;
    timer.reset();
    pselinv::RunResult run = nsym::run_nsym(
        plan, machine, pselinv::ExecutionMode::kNumeric, &lu, nullptr,
        nullptr, options);
    const std::string digest = serve::ainv_digest(*run.ainv);
    if (partitions == 1) {
      p1_digest = digest;
      p1_makespan = run.makespan;
      emit("engine_resilient_p1", timer.seconds(), run.complete(), digest);
    } else {
      emit("engine_resilient_p4", timer.seconds(),
           run.complete() && digest == p1_digest &&
               run.makespan == p1_makespan,
           digest);
    }
  }
  return violations;
}

}  // namespace
}  // namespace psi

int main(int argc, char** argv) {
  using namespace psi;
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  const std::string json_path = bench::json_flag(argc, argv, "nsym");

  obs::RecordWriter digest_rows;
  digest_rows.open_csv(bench::out_dir() + "/nsym_digest.csv");
  digest_rows.open_ndjson(bench::out_dir() + "/nsym_digest.ndjson");
  obs::MetricsRegistry registry;

  int violations = 0;
  std::vector<std::pair<Problem, nsym::NsymAnalysis>> analyzed;
  for (Problem& problem : problems(smoke)) {
    nsym::NsymAnalysis an = analyze_problem(problem);
    std::printf("== %s: n=%d supernodes=%d lower_blocks=%lld "
                "upper_blocks=%lld ==\n",
                problem.name.c_str(), an.matrix.n(),
                an.sym.blocks.supernode_count(),
                static_cast<long long>(an.structure.lower_block_count()),
                static_cast<long long>(an.structure.upper_block_count()));
    violations += digest_gate(problem, an, digest_rows);
    registry.counter("nsym.digest_problems").add(1);
    analyzed.emplace_back(std::move(problem), std::move(an));
  }
  digest_rows.flush();

  if (!smoke) {
    // Volume/makespan grid: per problem x grid x scheme, trace mode.
    obs::RecordWriter rows;
    rows.open_csv(bench::out_dir() + "/nsym_trees.csv");
    rows.open_ndjson(bench::out_dir() + "/nsym_trees.ndjson");
    const sim::Machine machine = bench_machine();
    const std::pair<int, int> grids[] = {{2, 2}, {4, 4}, {2, 8}};
    for (const auto& [problem, an] : analyzed) {
      for (const auto& [pr, pc] : grids) {
        for (const trees::TreeScheme scheme : kSchemes) {
          const nsym::NsymPlan plan(an.sym.blocks, an.structure,
                                    dist::ProcessGrid(pr, pc),
                                    driver::tree_options_for(scheme));
          const nsym::NsymVolumeReport volume = nsym::analyze_nsym_volume(plan);
          pselinv::RunResult run =
              nsym::run_nsym(plan, machine, pselinv::ExecutionMode::kTrace);
          const SampleStats imbalance =
              nsym::NsymVolumeReport::summarize(volume.side_imbalance());
          Count cross = 0;
          for (const Count c : volume.cross_bytes) cross += c;
          std::printf("  %s grid=%dx%d scheme=%s col=%lld row=%lld "
                      "cross=%lld imb_med=%.3f makespan=%.6fs\n",
                      problem.name.c_str(), pr, pc,
                      trees::scheme_name(scheme),
                      static_cast<long long>(volume.total_col_side()),
                      static_cast<long long>(volume.total_row_side()),
                      static_cast<long long>(cross), imbalance.median(),
                      run.makespan);
          obs::Record record;
          record.add("structure", problem.name)
              .add("n", an.matrix.n())
              .add("supernodes", an.sym.blocks.supernode_count())
              .add("grid", std::to_string(pr) + "x" + std::to_string(pc))
              .add("scheme", trees::scheme_name(scheme))
              .add("col_side_bytes",
                   static_cast<long long>(volume.total_col_side()))
              .add("row_side_bytes",
                   static_cast<long long>(volume.total_row_side()))
              .add("cross_bytes", static_cast<long long>(cross))
              .add("imbalance_min", imbalance.min())
              .add("imbalance_median", imbalance.median())
              .add("imbalance_mean", imbalance.mean())
              .add("imbalance_max", imbalance.max())
              .add("imbalance_stddev", imbalance.stddev())
              .add("distinct_communicators",
                   static_cast<long long>(plan.distinct_communicators()))
              .add("total_collectives",
                   static_cast<long long>(plan.total_collectives()))
              .add("plan_bytes", static_cast<long long>(plan.memory_bytes()))
              .add("makespan_s", run.makespan)
              .add("events", static_cast<long long>(run.events));
          rows.write(record);
          registry.counter("nsym.grid_rows").add(1);
        }
      }
    }
    rows.flush();
    std::printf("\n# rows written to %s/nsym_trees.csv (+ .ndjson)\n",
                bench::out_dir().c_str());
  }

  std::printf("# digest rows written to %s/nsym_digest.csv (+ .ndjson)\n",
              bench::out_dir().c_str());
  bench::write_json_summary(registry, json_path);
  if (violations != 0) {
    std::fprintf(stderr, "bench_nsym FAILED: %d digest-gate violations\n",
                 violations);
    return 1;
  }
  std::printf("# digest gate passed: task-parallel and partitioned legs "
              "bitwise identical, fast legs within 1e-8\n");
  return 0;
}
