/// Regenerates **Table II** of the paper: per-rank volume RECEIVED during
/// Row-Reduce (MB) — min / max / median / stddev — for all six evaluation
/// matrices on a 46x46 grid, under Flat / Binary / Shifted Binary trees.
///
/// Paper shape to reproduce for every matrix: the Binary-Tree's min
/// collapses (by 10-30x vs Flat) and its max/stddev inflate (3-5x), while
/// the Shifted Binary-Tree restores a tight distribution with a stddev at or
/// below the Flat-Tree's.
#include "bench_common.hpp"

int main() {
  using namespace psi;
  using namespace psi::bench;

  const int pr = 46, pc = 46;
  std::printf("# grid %dx%d = %d ranks\n\n", pr, pc, pr * pc);
  CsvWriter csv(out_dir() + "/table2_rowreduce.csv",
                {"matrix", "scheme", "min_mb", "max_mb", "median_mb", "stddev_mb"});

  std::printf("Table II: volume received during Row-Reduce (MB)\n");
  for (driver::PaperMatrix which : driver::all_paper_matrices()) {
    const SymbolicAnalysis an = analyze_paper_matrix(which);
    TextTable table({"Communication tree", "Min", "Max", "Median", "Std. dev"});
    for (trees::TreeScheme scheme : driver::paper_schemes()) {
      const pselinv::Plan plan = make_plan(an, pr, pc, scheme);
      const pselinv::VolumeReport report = pselinv::analyze_volume(plan);
      const SampleStats stats =
          pselinv::VolumeReport::summarize(report.row_reduce_received_mb());
      add_stats_row(table, trees::scheme_name(scheme), stats);
      csv.write_row({driver::paper_matrix_name(which), trees::scheme_name(scheme),
                     TextTable::fmt(stats.min(), 4), TextTable::fmt(stats.max(), 4),
                     TextTable::fmt(stats.median(), 4),
                     TextTable::fmt(stats.stddev(), 4)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
