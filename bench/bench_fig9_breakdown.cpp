/// Regenerates **Figure 9** of the paper (and the §IV intro's 27%/73% vs
/// 89%/11% communication breakdown): computation vs communication time of
/// the simulated selected inversion at P = 256 and P = 4,096, Flat-Tree vs
/// Shifted Binary-Tree.
///
/// Expected shape: with the Flat-Tree, communication swamps computation at
/// 4,096 ranks (paper: comm/comp ratio 11.8); the Shifted Binary-Tree cuts
/// the ratio (paper: 1.9) and the total time. At 256 ranks the schemes are
/// close (paper §IV-B: many collectives fit within one node there).
///
/// Matrix substitution: the paper measures DG_PNF14000; at laptop scale the
/// 2-D DG analog's ancestor sets are too small (|C| ~ 5) for any broadcast
/// tree to matter, so this harness uses the audikw_1 analog whose ancestor
/// sets span the processor columns like the full-size DG matrix's do. The
/// absolute comm/comp ratios are inflated by the analog's flop deficit
/// (flops shrink faster than traffic when a matrix is scaled down); the
/// growth of the ratio with P and the scheme ordering are the reproduced
/// quantities. See EXPERIMENTS.md.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace psi;
  using namespace psi::bench;
  const std::string json_path = json_flag(argc, argv, "fig9_breakdown");

  AnalysisOptions options = driver::default_analysis_options();
  options.supernodes.max_size = 32;
  const SymbolicAnalysis an =
      analyze_paper_matrix(driver::PaperMatrix::kAudikw1, 0.77, options);
  obs::RecordWriter rows;
  rows.open_csv(out_dir() + "/fig9_breakdown.csv");
  rows.open_ndjson(out_dir() + "/fig9_breakdown_rows.ndjson");

  // One independent simulation per (scheme, P); results land in per-job
  // slots and are rendered sequentially below (bit-identical output for any
  // PSI_BENCH_THREADS).
  struct Job {
    const SymbolicAnalysis* an;
    trees::TreeScheme scheme;
    int p;
    double makespan = 0.0;
    double compute = 0.0;
    pselinv::RunResult run;  ///< kept for the --json metrics summary
    void operator()() {
      int pr = 0, pc = 0;
      driver::square_grid(p, pr, pc);
      const pselinv::Plan plan = make_plan(*an, pr, pc, scheme);
      const sim::Machine machine(driver::timing_machine(0.25, 7));
      run = run_pselinv(plan, machine, pselinv::ExecutionMode::kTrace);
      makespan = run.makespan;
      compute = run.mean_compute_seconds();
    }
  };
  std::vector<Job> jobs;
  for (trees::TreeScheme scheme :
       {trees::TreeScheme::kFlat, trees::TreeScheme::kShiftedBinary})
    for (int p : {256, 4096}) jobs.push_back(Job{&an, scheme, p});
  run_bench_jobs(jobs);

  TextTable table({"Scheme", "P", "Total (s)", "Computation (s)",
                   "Communication (s)", "Comm/Comp"});
  double flat_ratio_4096 = 0.0, shifted_ratio_4096 = 0.0;
  for (const Job& job : jobs) {
    const double comm = job.makespan - job.compute;
    const double ratio = comm / job.compute;
    if (job.p == 4096 && job.scheme == trees::TreeScheme::kFlat)
      flat_ratio_4096 = ratio;
    if (job.p == 4096 && job.scheme == trees::TreeScheme::kShiftedBinary)
      shifted_ratio_4096 = ratio;
    table.add_row({trees::scheme_name(job.scheme), std::to_string(job.p),
                   TextTable::fmt(job.makespan, 3), TextTable::fmt(job.compute, 3),
                   TextTable::fmt(comm, 3), TextTable::fmt(ratio, 2)});
    rows.write(obs::Record()
                   .add("scheme", trees::scheme_name(job.scheme))
                   .add("procs", job.p)
                   .add("total_s", job.makespan)
                   .add("compute_s", job.compute)
                   .add("comm_s", comm)
                   .add("comm_over_comp", ratio));
  }
  std::printf("Figure 9: computation vs communication (audikw_1-like)\n%s\n",
              table.render().c_str());
  std::printf("comm/comp at P=4096: Flat %.1f -> Shifted %.1f "
              "(paper: 11.8 -> 1.9)\n",
              flat_ratio_4096, shifted_ratio_4096);

  if (!json_path.empty()) {
    obs::MetricsRegistry registry;
    for (const Job& job : jobs)
      driver::record_run_metrics(registry, "fig9_breakdown",
                                 trees::scheme_name(job.scheme), job.p,
                                 job.run);
    write_json_summary(registry, json_path);
  }
  return 0;
}
