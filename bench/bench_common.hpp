/// \file bench_common.hpp
/// \brief Shared scaffolding for the per-table/per-figure bench harnesses.
///
/// Every bench binary regenerates one table or figure of the paper: it
/// prints the paper's reported rows/series next to our measured values, and
/// writes the raw data as CSV into bench_out/ for external re-plotting.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "driver/experiment.hpp"
#include "driver/obs_report.hpp"
#include "driver/paper_matrices.hpp"
#include "obs/metrics.hpp"
#include "obs/record.hpp"
#include "pselinv/engine.hpp"
#include "pselinv/plan.hpp"
#include "pselinv/volume_analysis.hpp"

namespace psi::bench {

/// Output directory for raw CSV data (created on demand).
inline std::string out_dir() {
  const std::string dir = "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Value of the `--json <path>` flag (machine-readable run summary via the
/// psi::obs metrics registry), or "" when absent. `--json` without a path
/// defaults to bench_out/<bench>.ndjson.
inline std::string json_flag(int argc, char** argv, const std::string& bench) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json")
      return i + 1 < argc ? std::string(argv[i + 1])
                          : out_dir() + "/" + bench + ".ndjson";
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  return "";
}

/// Writes `registry` as newline-JSON to `path` (no-op when path is empty).
inline void write_json_summary(const obs::MetricsRegistry& registry,
                               const std::string& path) {
  if (path.empty()) return;
  registry.write_ndjson(path);
  std::printf("# json summary written to %s (%zu metrics)\n", path.c_str(),
              registry.size());
}

/// Analysis for a paper matrix at bench scale; prints a one-line inventory.
inline SymbolicAnalysis analyze_paper_matrix(
    driver::PaperMatrix which, double extra_scale, const AnalysisOptions& options) {
  const double scale = driver::bench_scale() * extra_scale;
  const GeneratedMatrix gen = driver::make_paper_matrix(which, scale);
  const SymbolicAnalysis an = analyze(gen, options);
  std::printf("# %-24s n=%d nnz(A)=%lld nnz(LU)=%lld supernodes=%d\n",
              driver::paper_matrix_name(which), an.matrix.n(),
              static_cast<long long>(an.matrix.nnz()),
              static_cast<long long>(an.blocks.lu_nnz_fullblock()),
              an.blocks.supernode_count());
  return an;
}

inline SymbolicAnalysis analyze_paper_matrix(driver::PaperMatrix which,
                                             double extra_scale = 1.0) {
  return analyze_paper_matrix(which, extra_scale,
                              driver::default_analysis_options());
}

inline pselinv::Plan make_plan(const SymbolicAnalysis& an, int pr, int pc,
                               trees::TreeScheme scheme,
                               std::uint64_t seed = 0x2016) {
  return pselinv::Plan(an.blocks, dist::ProcessGrid(pr, pc),
                       driver::tree_options_for(scheme, seed));
}

/// Runs independent bench jobs (callables) over the PSI_BENCH_THREADS worker
/// pool. Each job must write its results into a pre-sized slot owned by the
/// caller, keyed by job index; all printing and CSV emission must happen
/// sequentially after this returns, so bench output is bit-identical for any
/// thread count. Jobs may run in any order — they must not depend on each
/// other or touch shared mutable state.
template <typename Job>
void run_bench_jobs(std::vector<Job>& jobs) {
  const int threads = parallel::bench_threads();
  if (threads > 1 && jobs.size() > 1)
    std::fprintf(stderr, "# running %zu bench jobs on %d threads\n",
                 jobs.size(), threads);
  parallel::parallel_for_each(jobs, [](Job& job) { job(); }, threads);
}

/// Adds a min/max/median/stddev row (the format of the paper's Tables I-II).
inline void add_stats_row(TextTable& table, const std::string& label,
                          const SampleStats& stats) {
  table.add_row({label, TextTable::fmt(stats.min(), 3),
                 TextTable::fmt(stats.max(), 3),
                 TextTable::fmt(stats.median(), 3),
                 TextTable::fmt(stats.stddev(), 3)});
}

}  // namespace psi::bench
