/// Regenerates **Figure 8** of the paper: strong scaling of the simulated
/// selected inversion for the DG_PNF14000 analog (a) and the audikw_1
/// analog (b). For each processor count we plot/print:
///   * the distributed-LU reference (the paper's SuperLU_DIST curve),
///   * PSelInv with Flat / Binary / Shifted Binary trees (+ the Hybrid
///     extension suggested in the paper's §IV-B as an ablation),
/// as mean +/- stddev over repeated runs with re-seeded network jitter
/// (the paper's error bars over 6 runs on Edison).
///
/// Expected shape (paper): the Flat-Tree curve flattens/deteriorates beyond
/// ~1,024 ranks; Binary and Shifted keep scaling, with Shifted fastest at
/// scale (paper: 3.4-4.5x average beyond 1,024 ranks, up to 5-8x at
/// 6,400-12,100) and with clearly smaller run-to-run variation (paper: the
/// stddev shrinks by >4x).
///
/// Environment knobs: PSI_BENCH_SCALE (matrix size multiplier),
/// PSI_BENCH_REPS (jitter repetitions, default 3), PSI_BENCH_THREADS
/// (worker threads running independent (P, scheme) simulations; output is
/// bit-identical for any value).
#include <cmath>

#include "bench_common.hpp"
#include "pselinv/lu_model.hpp"

namespace {

using namespace psi;
using namespace psi::bench;

struct Series {
  double mean = 0.0;
  double stddev = 0.0;
};

Series timed_pselinv(const SymbolicAnalysis& an, int p, trees::TreeScheme scheme,
                     int reps, double jitter,
                     pselinv::RunResult* last_run = nullptr) {
  int pr = 0, pc = 0;
  driver::square_grid(p, pr, pc);
  const pselinv::Plan plan = make_plan(an, pr, pc, scheme);
  SampleStats stats;
  // Honoring PSI_SIM_PARTITIONS cannot change any number in the figure —
  // partitioned replay is bitwise identical to sequential by contract.
  pselinv::RunOptions options;
  options.partitions = parallel::sim_partitions();
  for (int rep = 0; rep < reps; ++rep) {
    const sim::Machine machine(
        driver::timing_machine(jitter, 1000 + static_cast<std::uint64_t>(rep)));
    pselinv::RunResult run =
        run_pselinv(plan, machine, pselinv::ExecutionMode::kTrace,
                    /*factor=*/nullptr, /*trace_out=*/nullptr,
                    /*obs_sink=*/nullptr, options);
    stats.add(run.makespan);
    if (last_run != nullptr) *last_run = std::move(run);
  }
  return {stats.mean(), stats.stddev()};
}

Series timed_lu(const SymbolicAnalysis& an, int p, double jitter) {
  int pr = 0, pc = 0;
  driver::square_grid(p, pr, pc);
  const sim::Machine machine(driver::timing_machine(jitter, 1000));
  const auto result = pselinv::run_distributed_lu(
      an.blocks, dist::ProcessGrid(pr, pc),
      driver::tree_options_for(trees::TreeScheme::kBinary), machine);
  return {result.makespan, 0.0};
}

void run_matrix(driver::PaperMatrix which, double extra_scale, Int max_snode,
                obs::RecordWriter& rows, psi::obs::MetricsRegistry* registry) {
  AnalysisOptions options = driver::default_analysis_options();
  options.supernodes.max_size = max_snode;
  const SymbolicAnalysis an = analyze_paper_matrix(which, extra_scale, options);
  const int reps = driver::bench_reps();
  const double jitter = 0.25;
  const std::vector<int> procs{64, 121, 256, 576, 1024, 2116, 4096, 6400, 12100};
  // (the paper's Fig. 8 sweeps the same counts; 8100/10000 omitted for time)
  const std::vector<trees::TreeScheme> schemes{
      trees::TreeScheme::kFlat, trees::TreeScheme::kBinary,
      trees::TreeScheme::kShiftedBinary, trees::TreeScheme::kHybrid};

  // One independent job per (P, scheme) plus one LU reference per P; each
  // builds its own plan and writes into its own slot, so they run in any
  // order over the worker pool. Rendering below stays sequential — the
  // printed table and CSV are bit-identical for any PSI_BENCH_THREADS.
  struct Job {
    const SymbolicAnalysis* an;
    int p;
    int scheme_index;  ///< index into `schemes`, or -1 for the LU reference
    trees::TreeScheme scheme;
    int reps;
    double jitter;
    Series result;
    pselinv::RunResult run;  ///< last repetition (--json volume metrics)
    void operator()() {
      result = scheme_index < 0
                   ? timed_lu(*an, p, jitter)
                   : timed_pselinv(*an, p, scheme, reps, jitter, &run);
    }
  };
  std::vector<Job> jobs;
  jobs.reserve(procs.size() * (schemes.size() + 1));
  for (int p : procs) {
    jobs.push_back(Job{&an, p, -1, trees::TreeScheme::kFlat, reps, jitter, {}});
    for (std::size_t si = 0; si < schemes.size(); ++si)
      jobs.push_back(
          Job{&an, p, static_cast<int>(si), schemes[si], reps, jitter, {}});
  }
  run_bench_jobs(jobs);

  TextTable table({"P", "LU ref (s)", "Flat (s)", "Binary (s)", "Shifted (s)",
                   "Hybrid (s)", "Flat/Shifted"});
  double speedup_6400 = 0.0;
  std::vector<double> flat_sd, shifted_sd;
  std::size_t job_index = 0;
  const std::string bench_id =
      std::string("fig8_scaling/") + driver::paper_matrix_name(which);
  for (int p : procs) {
    std::vector<std::string> row{std::to_string(p)};
    const Series lu = jobs[job_index++].result;
    row.push_back(TextTable::fmt(lu.mean, 3));
    if (registry != nullptr) {
      obs::Labels lu_labels;
      lu_labels.set("bench", bench_id).scheme("LU-reference").set("p", p);
      registry->gauge("makespan_mean_seconds", lu_labels).set(lu.mean);
    }
    double flat_mean = 0.0, shifted_mean = 0.0;
    for (trees::TreeScheme scheme : schemes) {
      const Job& job = jobs[job_index];
      const Series s = jobs[job_index++].result;
      if (registry != nullptr) {
        driver::record_run_metrics(*registry, bench_id,
                                   trees::scheme_name(scheme), p, job.run);
        obs::Labels labels;
        labels.set("bench", bench_id)
            .scheme(trees::scheme_name(scheme))
            .set("p", p);
        registry->gauge("makespan_mean_seconds", labels).set(s.mean);
        registry->gauge("makespan_stddev_seconds", labels).set(s.stddev);
      }
      row.push_back(TextTable::fmt(s.mean, 3) + "±" + TextTable::fmt(s.stddev, 3));
      if (scheme == trees::TreeScheme::kFlat) {
        flat_mean = s.mean;
        flat_sd.push_back(s.stddev);
      }
      if (scheme == trees::TreeScheme::kShiftedBinary) {
        shifted_mean = s.mean;
        shifted_sd.push_back(s.stddev);
      }
      rows.write(obs::Record()
                     .add("matrix", driver::paper_matrix_name(which))
                     .add("procs", p)
                     .add("scheme", trees::scheme_name(scheme))
                     .add("mean_s", s.mean)
                     .add("stddev_s", s.stddev));
    }
    rows.write(obs::Record()
                   .add("matrix", driver::paper_matrix_name(which))
                   .add("procs", p)
                   .add("scheme", "LU-reference")
                   .add("mean_s", lu.mean)
                   .add("stddev_s", 0.0));
    const double speedup = flat_mean / shifted_mean;
    if (p == 6400) speedup_6400 = speedup;
    row.push_back(TextTable::fmt(speedup, 2) + "x");
    table.add_row(std::move(row));
  }
  std::printf("Figure 8 (%s): strong scaling, mean±stddev over %d jittered runs\n%s",
              driver::paper_matrix_name(which), reps, table.render().c_str());
  std::printf("Flat/Shifted speedup at P=6400: %.2fx (paper: >5x)\n", speedup_6400);

  // Variability reduction (paper: stddev shrinks >4x at scale).
  double flat_total = 0.0, shifted_total = 0.0;
  for (std::size_t i = flat_sd.size() / 2; i < flat_sd.size(); ++i) {
    flat_total += flat_sd[i];
    shifted_total += shifted_sd[i];
  }
  if (shifted_total > 0.0)
    std::printf("run-to-run stddev reduction (large-P half): %.1fx\n\n",
                flat_total / shifted_total);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psi::bench;
  const std::string json_path = json_flag(argc, argv, "fig8_scaling");
  psi::obs::MetricsRegistry registry;
  psi::obs::MetricsRegistry* reg = json_path.empty() ? nullptr : &registry;
  psi::obs::RecordWriter rows;
  rows.open_csv(out_dir() + "/fig8_scaling.csv");
  rows.open_ndjson(out_dir() + "/fig8_scaling_rows.ndjson");
  // DG analog at full bench scale; the audikw analog is trimmed (extents
  // x0.77, narrower supernodes) to keep the 12,100-rank traces fast while
  // retaining ancestor sets that span the processor columns.
  run_matrix(psi::driver::PaperMatrix::kDgPnf14000, 1.0, 48, rows, reg);
  run_matrix(psi::driver::PaperMatrix::kAudikw1, 0.77, 32, rows, reg);
  write_json_summary(registry, json_path);
  return 0;
}
