/// Google-benchmark microbenchmarks for the building blocks: tree
/// construction (the per-collective overhead the paper's design keeps
/// "very small"), dense kernels, symbolic analysis, plan construction and
/// raw simulator event throughput.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "driver/experiment.hpp"
#include "driver/paper_matrices.hpp"
#include "pselinv/plan.hpp"
#include "sim/engine.hpp"
#include "sparse/dense.hpp"
#include "sparse/generators.hpp"
#include "symbolic/analysis.hpp"
#include "trees/comm_tree.hpp"

namespace {

using namespace psi;

void BM_TreeBuild(benchmark::State& state, trees::TreeScheme scheme) {
  const int receivers = static_cast<int>(state.range(0));
  std::vector<int> list;
  for (int r = 1; r <= receivers; ++r) list.push_back(r);
  trees::TreeOptions opt;
  opt.scheme = scheme;
  std::uint64_t id = 0;
  for (auto _ : state) {
    const trees::CommTree tree = trees::CommTree::build(opt, 0, list, id++);
    benchmark::DoNotOptimize(tree.participant_count());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Gemm(benchmark::State& state) {
  const Int n = static_cast<Int>(state.range(0));
  Rng rng(1);
  DenseMatrix a(n, n), b(n, n), c(n, n);
  for (Int j = 0; j < n; ++j)
    for (Int i = 0; i < n; ++i) {
      a(i, j) = rng.uniform_double();
      b(i, j) = rng.uniform_double();
    }
  for (auto _ : state) {
    gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * gemm_flops(n, n, n));
}

void BM_SymbolicAnalysis(benchmark::State& state) {
  const Int m = static_cast<Int>(state.range(0));
  const GeneratedMatrix gen = fem3d(m, m, m, 3, 1);
  const AnalysisOptions opt = driver::default_analysis_options();
  for (auto _ : state) {
    const SymbolicAnalysis an = analyze(gen, opt);
    benchmark::DoNotOptimize(an.blocks.supernode_count());
  }
}

void BM_PlanBuild(benchmark::State& state) {
  const GeneratedMatrix gen = driver::make_paper_matrix(
      driver::PaperMatrix::kDgWater, 0.6);
  const SymbolicAnalysis an = analyze(gen, driver::default_analysis_options());
  const dist::ProcessGrid grid(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(0)));
  const trees::TreeOptions opt =
      driver::tree_options_for(trees::TreeScheme::kShiftedBinary);
  for (auto _ : state) {
    const pselinv::Plan plan(an.blocks, grid, opt);
    benchmark::DoNotOptimize(plan.supernode_count());
  }
}

/// Raw DES throughput: a ring of ranks passing a token many times.
class RingRank : public sim::Rank {
 public:
  RingRank(int nranks, int hops) : nranks_(nranks), hops_(hops) {}
  void on_start(sim::Context& ctx) override {
    if (ctx.rank() == 0) ctx.send(1 % nranks_, 0, 64, 0);
  }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    if (msg.tag < hops_)
      ctx.send((ctx.rank() + 1) % nranks_, msg.tag + 1, 64, 0);
  }
 private:
  int nranks_;
  int hops_;
};

void BM_SimulatorThroughput(benchmark::State& state) {
  const int nranks = 64;
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const sim::Machine machine(driver::edison_config());
    sim::Engine engine(machine, nranks, 1);
    for (int r = 0; r < nranks; ++r)
      engine.set_rank(r, std::make_unique<RingRank>(nranks, hops));
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * (hops + nranks));
}

}  // namespace

BENCHMARK_CAPTURE(BM_TreeBuild, flat, psi::trees::TreeScheme::kFlat)
    ->Arg(16)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_TreeBuild, binary, psi::trees::TreeScheme::kBinary)
    ->Arg(16)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_TreeBuild, shifted, psi::trees::TreeScheme::kShiftedBinary)
    ->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Gemm)->Arg(16)->Arg(48)->Arg(96);
BENCHMARK(BM_SymbolicAnalysis)->Arg(6)->Arg(8);
BENCHMARK(BM_PlanBuild)->Arg(8)->Arg(24);
BENCHMARK(BM_SimulatorThroughput)->Arg(10000);

BENCHMARK_MAIN();
