/// Google-benchmark microbenchmarks for the building blocks: tree
/// construction (the per-collective overhead the paper's design keeps
/// "very small"), dense kernels, symbolic analysis, plan construction and
/// raw simulator event throughput.
///
/// The engine-throughput storms (all-to-all rounds and overlapping
/// shifted-tree broadcasts — deep event queues like the ones the PSelInv
/// replay produces at 12,100 ranks) additionally run once up front and write
/// their events/sec into bench_out/kernels_engine_throughput.csv, CSV like
/// the figure benches, so throughput regressions diff in version control.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "driver/experiment.hpp"
#include "driver/paper_matrices.hpp"
#include "pselinv/plan.hpp"
#include "sim/engine.hpp"
#include "sparse/dense.hpp"
#include "sparse/generators.hpp"
#include "symbolic/analysis.hpp"
#include "trees/comm_tree.hpp"
#include "trees/protocol.hpp"

namespace {

using namespace psi;

void BM_TreeBuild(benchmark::State& state, trees::TreeScheme scheme) {
  const int receivers = static_cast<int>(state.range(0));
  std::vector<int> list;
  for (int r = 1; r <= receivers; ++r) list.push_back(r);
  trees::TreeOptions opt;
  opt.scheme = scheme;
  std::uint64_t id = 0;
  for (auto _ : state) {
    const trees::CommTree tree = trees::CommTree::build(opt, 0, list, id++);
    benchmark::DoNotOptimize(tree.participant_count());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Gemm(benchmark::State& state) {
  const Int n = static_cast<Int>(state.range(0));
  Rng rng(1);
  DenseMatrix a(n, n), b(n, n), c(n, n);
  for (Int j = 0; j < n; ++j)
    for (Int i = 0; i < n; ++i) {
      a(i, j) = rng.uniform_double();
      b(i, j) = rng.uniform_double();
    }
  for (auto _ : state) {
    gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * gemm_flops(n, n, n));
}

void BM_SymbolicAnalysis(benchmark::State& state) {
  const Int m = static_cast<Int>(state.range(0));
  const GeneratedMatrix gen = fem3d(m, m, m, 3, 1);
  const AnalysisOptions opt = driver::default_analysis_options();
  for (auto _ : state) {
    const SymbolicAnalysis an = analyze(gen, opt);
    benchmark::DoNotOptimize(an.blocks.supernode_count());
  }
}

void BM_PlanBuild(benchmark::State& state) {
  const GeneratedMatrix gen = driver::make_paper_matrix(
      driver::PaperMatrix::kDgWater, 0.6);
  const SymbolicAnalysis an = analyze(gen, driver::default_analysis_options());
  const dist::ProcessGrid grid(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(0)));
  const trees::TreeOptions opt =
      driver::tree_options_for(trees::TreeScheme::kShiftedBinary);
  for (auto _ : state) {
    const pselinv::Plan plan(an.blocks, grid, opt);
    benchmark::DoNotOptimize(plan.supernode_count());
  }
}

/// Raw DES throughput: a ring of ranks passing a token many times.
class RingRank : public sim::Rank {
 public:
  RingRank(int nranks, int hops) : nranks_(nranks), hops_(hops) {}
  void on_start(sim::Context& ctx) override {
    if (ctx.rank() == 0) ctx.send(1 % nranks_, 0, 64, 0);
  }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    if (msg.tag < hops_)
      ctx.send((ctx.rank() + 1) % nranks_, msg.tag + 1, 64, 0);
  }
 private:
  int nranks_;
  int hops_;
};

void BM_SimulatorThroughput(benchmark::State& state) {
  const int nranks = 64;
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const sim::Machine machine(driver::edison_config());
    sim::Engine engine(machine, nranks, 1);
    for (int r = 0; r < nranks; ++r)
      engine.set_rank(r, std::make_unique<RingRank>(nranks, hops));
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * (hops + nranks));
}

// ----- engine-throughput storms -------------------------------------------
// The ring benchmark keeps at most one event in flight; the PSelInv replay
// keeps thousands. These storms exercise the heap and arena at depth.

/// Every rank blasts a message to every other rank, `rounds` times (a new
/// round starts once all of a rank's round-r messages arrived): N*(N-1)
/// events in the queue at once.
class AllToAllRank : public sim::Rank {
 public:
  AllToAllRank(int nranks, int rounds) : nranks_(nranks), rounds_(rounds) {}
  void on_start(sim::Context& ctx) override { blast(ctx, 0); }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    (void)msg;
    if (++received_ < nranks_ - 1) return;
    received_ = 0;
    if (++round_ < rounds_) blast(ctx, round_);
  }

 private:
  void blast(sim::Context& ctx, int round) {
    for (int r = 0; r < nranks_; ++r)
      if (r != ctx.rank()) ctx.send(r, round, 256, 0);
  }
  int nranks_;
  int rounds_;
  int round_ = 0;
  int received_ = 0;
};

/// Many overlapping shifted-binary-tree broadcasts (the paper's scheme),
/// roots cycling over the ranks; every rank relays each broadcast down its
/// tree — the fan-out pattern of the Col-Bcast phase.
class BcastStormRank : public sim::Rank {
 public:
  explicit BcastStormRank(const std::vector<trees::CommTree>* storms)
      : storms_(storms) {}
  void on_start(sim::Context& ctx) override {
    for (std::size_t b = 0; b < storms_->size(); ++b)
      if ((*storms_)[b].root() == ctx.rank())
        trees::bcast_forward(ctx, (*storms_)[b],
                             static_cast<std::int64_t>(b), 1024, 0, nullptr);
  }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    trees::bcast_forward(ctx, (*storms_)[static_cast<std::size_t>(msg.tag)],
                         msg.tag, msg.bytes, 0, msg.data);
  }

 private:
  const std::vector<trees::CommTree>* storms_;
};

struct StormResult {
  Count events = 0;
  double wall_seconds = 0.0;
  double events_per_second = 0.0;
  int partitions = 1;         ///< effective partition count of the run
  sim::SimTime makespan = 0.0;
  std::uint64_t digest = 0;   ///< trace digest (0 unless tracing was on)
};

/// Order-sensitive digest of the full delivery trace plus the makespan and
/// event-count bits — any reordering, retiming, or dropped/extra event under
/// partitioned execution flips it.
std::uint64_t trace_digest(const sim::Engine& engine) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const sim::TraceEvent& ev : engine.trace()) {
    std::uint64_t bits = 0;
    static_assert(sizeof(ev.time) == sizeof(bits), "SimTime is 64-bit");
    std::memcpy(&bits, &ev.time, sizeof(bits));
    h = hash_combine(h, bits);
    h = hash_combine(h, static_cast<std::uint64_t>(ev.src));
    h = hash_combine(h, static_cast<std::uint64_t>(ev.dst));
    h = hash_combine(h, static_cast<std::uint64_t>(ev.comm_class));
    h = hash_combine(h, static_cast<std::uint64_t>(ev.bytes));
    h = hash_combine(h, static_cast<std::uint64_t>(ev.tag));
  }
  std::uint64_t mk = 0;
  const sim::SimTime makespan = engine.makespan();
  std::memcpy(&mk, &makespan, sizeof(mk));
  h = hash_combine(h, mk);
  return hash_combine(h, static_cast<std::uint64_t>(engine.events_processed()));
}

StormResult storm_result(sim::Engine& engine, bool traced) {
  engine.run();
  return {engine.events_processed(),  engine.run_wall_seconds(),
          engine.events_per_second(), engine.partitions(),
          engine.makespan(),          traced ? trace_digest(engine) : 0};
}

StormResult run_all_to_all_storm(int nranks, int rounds, int partitions = 1,
                                 bool traced = false) {
  const sim::Machine machine(driver::edison_config());
  sim::Engine engine(machine, nranks, 1);
  for (int r = 0; r < nranks; ++r)
    engine.set_rank(r, std::make_unique<AllToAllRank>(nranks, rounds));
  engine.set_partitions(partitions);
  if (traced) engine.enable_trace(1u << 22);
  return storm_result(engine, traced);
}

StormResult run_bcast_storm(int nranks, int bcasts, int partitions = 1,
                            bool traced = false) {
  trees::TreeOptions opt =
      driver::tree_options_for(trees::TreeScheme::kShiftedBinary);
  std::vector<trees::CommTree> storms;
  storms.reserve(static_cast<std::size_t>(bcasts));
  for (int b = 0; b < bcasts; ++b) {
    const int root = b % nranks;
    std::vector<int> receivers;
    receivers.reserve(static_cast<std::size_t>(nranks) - 1);
    for (int r = 0; r < nranks; ++r)
      if (r != root) receivers.push_back(r);
    storms.push_back(trees::CommTree::build(
        opt, root, receivers, static_cast<std::uint64_t>(b)));
  }
  const sim::Machine machine(driver::edison_config());
  sim::Engine engine(machine, nranks, 1);
  for (int r = 0; r < nranks; ++r)
    engine.set_rank(r, std::make_unique<BcastStormRank>(&storms));
  engine.set_partitions(partitions);
  if (traced) engine.enable_trace(1u << 22);
  return storm_result(engine, traced);
}

void BM_AllToAllStorm(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  Count events = 0;
  for (auto _ : state) {
    const StormResult result = run_all_to_all_storm(nranks, /*rounds=*/10);
    events += result.events;
    benchmark::DoNotOptimize(result.events);
  }
  state.SetItemsProcessed(events);
}

void BM_BcastStorm(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  Count events = 0;
  for (auto _ : state) {
    const StormResult result = run_bcast_storm(nranks, /*bcasts=*/4 * nranks);
    events += result.events;
    benchmark::DoNotOptimize(result.events);
  }
  state.SetItemsProcessed(events);
}

/// One-shot storm run with CSV emission (the google-benchmark registrations
/// above remain for iterated timing).
void report_engine_throughput() {
  using psi::bench::out_dir;
  CsvWriter csv(out_dir() + "/kernels_engine_throughput.csv",
                {"workload", "ranks", "events", "wall_s", "events_per_s"});
  struct Row {
    const char* workload;
    int ranks;
    StormResult result;
  };
  // The deep-queue rows (2048 ranks, ~8.4M events, ~4M simultaneously
  // pending) are the configuration the pooled two-tier event queue targets;
  // the shallow rows sit comfortably in cache on any engine and mostly
  // track per-event constant costs.
  const Row rows[] = {
      {"all_to_all_10rounds", 256, run_all_to_all_storm(256, 10)},
      {"bcast_storm_4x", 512, run_bcast_storm(512, 4 * 512)},
      {"all_to_all_deep", 2048, run_all_to_all_storm(2048, 2)},
      {"bcast_storm_deep", 2048, run_bcast_storm(2048, 2 * 2048)},
  };
  std::printf("Engine throughput storms:\n");
  for (const Row& row : rows) {
    std::printf("  %-20s ranks=%-5d events=%-9lld %.3fs  %.2fM events/s\n",
                row.workload, row.ranks,
                static_cast<long long>(row.result.events),
                row.result.wall_seconds, row.result.events_per_second / 1e6);
    csv.write_row({row.workload, std::to_string(row.ranks),
                   std::to_string(row.result.events),
                   TextTable::fmt(row.result.wall_seconds, 4),
                   TextTable::fmt(row.result.events_per_second, 0)});
  }
}

/// Partition sweep over the storm workloads: every partition count must
/// reproduce the sequential trace digest bit-for-bit (the determinism
/// contract of sim::Engine::set_partitions), and the CSV records the honest
/// single-core overhead of windowed execution. Returns false — and the bench
/// exits non-zero — on any digest mismatch.
bool report_partition_sweep() {
  using psi::bench::out_dir;
  CsvWriter csv(out_dir() + "/kernels_partition_sweep.csv",
                {"workload", "ranks", "partitions", "effective_partitions",
                 "events", "wall_s", "events_per_s", "digest", "match"});
  struct Workload {
    const char* name;
    int ranks;
    StormResult (*run)(int partitions);
  };
  const Workload workloads[] = {
      {"all_to_all", 64,
       [](int p) { return run_all_to_all_storm(64, 5, p, /*traced=*/true); }},
      {"bcast_storm", 128,
       [](int p) { return run_bcast_storm(128, 256, p, /*traced=*/true); }},
  };
  const int sweep[] = {1, 2, 4, 8};
  // PSI_SIM_PARTITIONS joins the sweep so CI can gate an arbitrary count.
  const int env_partitions = parallel::sim_partitions();
  bool ok = true;
  std::printf("Partition sweep (digest gate vs partitions=1):\n");
  for (const Workload& w : workloads) {
    std::uint64_t baseline = 0;
    for (int partitions : sweep) {
      const StormResult result = w.run(partitions);
      if (partitions == 1) baseline = result.digest;
      const bool match = result.digest == baseline;
      ok = ok && match;
      std::printf(
          "  %-12s ranks=%-4d partitions=%d(eff %d) events=%-8lld %.3fs  "
          "digest=%016llx %s\n",
          w.name, w.ranks, partitions, result.partitions,
          static_cast<long long>(result.events), result.wall_seconds,
          static_cast<unsigned long long>(result.digest),
          match ? "ok" : "MISMATCH");
      csv.write_row({w.name, std::to_string(w.ranks),
                     std::to_string(partitions),
                     std::to_string(result.partitions),
                     std::to_string(result.events),
                     TextTable::fmt(result.wall_seconds, 4),
                     TextTable::fmt(result.events_per_second, 0),
                     std::to_string(result.digest),
                     match ? "1" : "0"});
    }
    if (env_partitions > 1) {
      const StormResult result = w.run(env_partitions);
      const bool match = result.digest == baseline;
      ok = ok && match;
      std::printf("  %-12s PSI_SIM_PARTITIONS=%d(eff %d) digest=%016llx %s\n",
                  w.name, env_partitions, result.partitions,
                  static_cast<unsigned long long>(result.digest),
                  match ? "ok" : "MISMATCH");
      csv.write_row({w.name, std::to_string(w.ranks),
                     std::to_string(env_partitions),
                     std::to_string(result.partitions),
                     std::to_string(result.events),
                     TextTable::fmt(result.wall_seconds, 4),
                     TextTable::fmt(result.events_per_second, 0),
                     std::to_string(result.digest),
                     match ? "1" : "0"});
    }
  }
  if (!ok)
    std::fprintf(stderr,
                 "FAIL: partitioned storm trace diverged from sequential\n");
  return ok;
}

}  // namespace

BENCHMARK_CAPTURE(BM_TreeBuild, flat, psi::trees::TreeScheme::kFlat)
    ->Arg(16)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_TreeBuild, binary, psi::trees::TreeScheme::kBinary)
    ->Arg(16)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_TreeBuild, shifted, psi::trees::TreeScheme::kShiftedBinary)
    ->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Gemm)->Arg(16)->Arg(48)->Arg(96);
BENCHMARK(BM_SymbolicAnalysis)->Arg(6)->Arg(8);
BENCHMARK(BM_PlanBuild)->Arg(8)->Arg(24);
BENCHMARK(BM_SimulatorThroughput)->Arg(10000);
BENCHMARK(BM_AllToAllStorm)->Arg(64)->Arg(256);
BENCHMARK(BM_BcastStorm)->Arg(256)->Arg(512);

int main(int argc, char** argv) {
  // `--storm-gate`: run only the partition-determinism gate (CI smoke mode;
  // exit code reports digest equality) and skip the iterated benchmarks.
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--storm-gate") == 0)
      return report_partition_sweep() ? 0 : 1;
  report_engine_throughput();
  const bool partitions_ok = report_partition_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return partitions_ok ? 0 : 1;
}
