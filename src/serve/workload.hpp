/// \file workload.hpp
/// \brief Synthetic request workloads for psi::serve: a catalog of distinct
/// matrix structures, Zipf-distributed popularity, fresh numeric values per
/// request (pattern-equal, value-different — the plan cache's bread and
/// butter), and open-loop (Poisson arrivals) or closed-loop (bounded
/// outstanding window) driving with latency/throughput reporting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/record.hpp"
#include "serve/service.hpp"

namespace psi::serve {

struct WorkloadOptions {
  /// Distinct matrix structures in the catalog (distinct fingerprints).
  int structures = 4;
  /// Base 2-D Laplacian grid edge; structure i is (nx + i) x nx, so every
  /// structure has a different pattern but comparable cost.
  Int nx = 24;
  int requests = 32;
  /// Zipf popularity exponent over the catalog (0 = uniform): structure i
  /// is drawn with weight 1/(i+1)^s.
  double zipf_s = 1.0;
  std::uint64_t seed = 1;
  /// Open loop: mean Poisson arrival rate (requests/s). 0 = closed loop.
  double arrival_hz = 0.0;
  /// Closed loop: maximum outstanding requests (the client window).
  int window = 4;
  /// Fraction of requests submitted at Priority::kInteractive.
  double interactive_fraction = 0.0;
  /// Distinct tenants; request `i`'s tenant is drawn uniformly from
  /// {"t0".."t<tenants-1>"} by the per-request RNG. 1 = everything bills to
  /// "t0".
  int tenants = 1;
  /// Touch every catalog structure once, waiting for completion, before the
  /// measured phase (a pure-cold warmup wave so the measured phase is warm).
  bool warm_start = false;
};

struct WorkloadReport {
  Count ok = 0;
  Count failed = 0;
  Count rejected = 0;
  Count shutdown = 0;
  Count deadline = 0;   ///< kDeadline responses
  Count cancelled = 0;  ///< kCancelled responses
  Count cold = 0;  ///< ok responses with cache_hit == false
  Count warm = 0;  ///< ok responses with cache_hit == true
  Count disk = 0;  ///< cold subset whose plan loaded from the plan store
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;  ///< ok responses per wall second
  /// Order-independent content digest of the whole run: XOR over ok
  /// responses of a stable 64-bit hash of (request id, response digest).
  /// Two runs of the same workload against bitwise-identical services match
  /// exactly, regardless of completion order, worker/shard counts, or plan
  /// source — the warm-restart CI gate compares this across restarts.
  std::uint64_t digest_xor = 0;

  SampleStats total_s;       ///< ok responses, end-to-end latency
  SampleStats cold_total_s;  ///< cold subset
  SampleStats warm_total_s;  ///< warm subset
  SampleStats disk_total_s;  ///< disk-loaded subset of cold
  SampleStats queue_s;       ///< ok responses, admission -> pickup

  /// Appends the flat export fields (counts, throughput, p50/p95/p99 of
  /// total / cold / warm latency) to `record` — after any caller-added
  /// scenario columns. to_record() is the standalone row.
  obs::Record& append_to(obs::Record& record) const;
  obs::Record to_record() const;
};

/// Builds request `index` of the workload: a pattern-identical copy of the
/// sampled catalog structure with fresh deterministic values derived from
/// (seed, index). Exposed so tests can replay exact request sets.
Request make_request(const WorkloadOptions& options, int index);

/// Drives `service` (any RequestSink: a bare Service or the sharded
/// multi-tenant front end) with the workload and collects every response.
/// Open loop (arrival_hz > 0) sleeps exponential inter-arrival gaps between
/// submissions; closed loop keeps at most `window` requests outstanding.
WorkloadReport run_workload(RequestSink& service,
                            const WorkloadOptions& options);

/// Human-readable summary (counts, hit rate, latency percentiles).
void print_report(std::ostream& out, const WorkloadReport& report);

}  // namespace psi::serve
