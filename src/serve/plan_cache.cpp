#include "serve/plan_cache.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "pselinv/engine.hpp"

namespace psi::serve {

namespace {

template <typename T>
std::size_t vector_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

std::size_t analysis_bytes(const SymbolicAnalysis& a) {
  std::size_t bytes = vector_bytes(a.matrix.pattern.col_ptr) +
                      vector_bytes(a.matrix.pattern.row_idx) +
                      vector_bytes(a.matrix.values) +
                      vector_bytes(a.perm.old_to_new()) +
                      vector_bytes(a.perm.new_to_old()) +
                      vector_bytes(a.etree) + vector_bytes(a.counts) +
                      vector_bytes(a.blocks.part.starts) +
                      vector_bytes(a.blocks.part.sup_of_col) +
                      vector_bytes(a.blocks.parent) +
                      vector_bytes(a.blocks.struct_of);
  for (const auto& s : a.blocks.struct_of) bytes += vector_bytes(s);
  return bytes;
}

/// Builds the request-CSR -> block-slot scatter map (ServePlan::scatter).
/// Mirrors BlockMatrix::load exactly, with the symmetric permutation folded
/// in: entry (row, j) of the ORIGINAL pattern lands where the permuted
/// entry (perm[row], perm[j]) would land.
std::vector<ServePlan::ValueSlot> build_scatter_map(
    const SparsityPattern& pattern, const SymbolicAnalysis& analysis) {
  using SlotKind = ServePlan::SlotKind;
  const auto& perm = analysis.perm.old_to_new();
  const auto& part = analysis.blocks.part;
  const auto& struct_of = analysis.blocks.struct_of;

  // Row offset of block i inside panel k, keyed by i's position in
  // struct(k) — the same table BlockMatrix builds in its constructor.
  const Int nsup = analysis.blocks.supernode_count();
  std::vector<std::vector<Int>> offsets(static_cast<std::size_t>(nsup));
  for (Int k = 0; k < nsup; ++k) {
    Int off = 0;
    for (Int i : struct_of[static_cast<std::size_t>(k)]) {
      offsets[static_cast<std::size_t>(k)].push_back(off);
      off += part.size(i);
    }
  }
  const auto panel_offset = [&](Int k, Int i) {
    const auto& str = struct_of[static_cast<std::size_t>(k)];
    const auto it = std::lower_bound(str.begin(), str.end(), i);
    PSI_CHECK_MSG(it != str.end() && *it == i,
                  "matrix entry maps to block (" << i << ", " << k
                      << ") outside the symbolic structure");
    return offsets[static_cast<std::size_t>(k)]
                  [static_cast<std::size_t>(it - str.begin())];
  };

  std::vector<ServePlan::ValueSlot> scatter;
  scatter.reserve(pattern.row_idx.size());
  for (Int j = 0; j < pattern.n; ++j) {
    const Int jp = perm[static_cast<std::size_t>(j)];
    const Int k = part.sup_of_col[static_cast<std::size_t>(jp)];
    const Int jc = jp - part.first_col(k);
    for (Int q = pattern.col_ptr[j]; q < pattern.col_ptr[j + 1]; ++q) {
      const Int ip =
          perm[static_cast<std::size_t>(pattern.row_idx[static_cast<std::size_t>(q)])];
      const Int bi = part.sup_of_col[static_cast<std::size_t>(ip)];
      const Int ir = ip - part.first_col(bi);
      if (bi == k) {
        scatter.push_back({SlotKind::kDiag, k, ir, jc});
      } else if (bi > k) {
        scatter.push_back({SlotKind::kLower, k, panel_offset(k, bi) + ir, jc});
      } else {
        scatter.push_back({SlotKind::kUpper, bi, ir, panel_offset(bi, k) + jc});
      }
    }
  }
  return scatter;
}

}  // namespace

void ServePlan::scatter_values(const std::vector<double>& values,
                               BlockMatrix& m) const {
  PSI_CHECK_MSG(values.size() == scatter.size(),
                "request carries " << values.size()
                    << " values but the plan's load map has "
                    << scatter.size() << " slots");
  for (std::size_t p = 0; p < scatter.size(); ++p) {
    const ValueSlot& s = scatter[p];
    switch (s.kind) {
      case SlotKind::kDiag: m.diag(s.sup)(s.row, s.col) = values[p]; break;
      case SlotKind::kLower: m.lpanel(s.sup)(s.row, s.col) = values[p]; break;
      case SlotKind::kUpper: m.upanel(s.sup)(s.row, s.col) = values[p]; break;
    }
  }
}

ServePlan::ServePlan(const Fingerprint& fp, const PlanConfig& cfg,
                     SymbolicAnalysis an)
    : fingerprint(fp),
      config(cfg),
      analysis(std::move(an)),
      grid(dist::validated_grid(cfg.grid_rows, cfg.grid_cols)),
      plan(analysis.blocks, grid, cfg.tree, cfg.symmetry) {}

ServePlan::ServePlan(const Fingerprint& fp, const PlanConfig& cfg,
                     SymbolicAnalysis an, pselinv::Plan::RawParts plan_parts)
    : fingerprint(fp),
      config(cfg),
      analysis(std::move(an)),
      grid(dist::validated_grid(cfg.grid_rows, cfg.grid_cols)),
      plan(analysis.blocks, grid, std::move(plan_parts)) {}

std::size_t serve_plan_heap_bytes(const ServePlan& plan) {
  return sizeof(ServePlan) + analysis_bytes(plan.analysis) +
         vector_bytes(plan.scatter) + plan.plan.memory_bytes();
}

const char* plan_source_name(PlanSource source) {
  switch (source) {
    case PlanSource::kBuilt: return "built";
    case PlanSource::kDisk: return "disk";
    case PlanSource::kMemory: return "memory";
  }
  return "?";
}

std::shared_ptr<const ServePlan> build_serve_plan(const SparseMatrix& matrix,
                                                  const PlanConfig& config) {
  PSI_CHECK_MSG(
      config.analysis.ordering.method != OrderingMethod::kGeometricDissection,
      "serve plans cannot use geometric dissection (requests carry no mesh "
      "coordinates)");
  matrix.validate();
  PSI_CHECK_MSG(matrix.pattern.is_structurally_symmetric(),
                "serve request matrix must be structurally symmetric");
  WallTimer timer;
  const Fingerprint fp = plan_fingerprint(matrix.pattern, config);
  std::shared_ptr<ServePlan> plan = std::make_shared<ServePlan>(
      fp, config, analyze(matrix, config.analysis));
  // The first requester's values are not part of the plan — requests bring
  // their own values, which the service re-permutes with the cached
  // permutation. Drop them so the cache budget covers structure only.
  ServePlan& p = *plan;
  p.analysis.matrix.values = {};
  p.scatter = build_scatter_map(matrix.pattern, p.analysis);
  p.bytes = serve_plan_heap_bytes(p);
  // Simulate the distributed schedule once, values-free. Requests serve
  // their numeric phase with the sequential algorithm and report this
  // cached makespan — the DES never reruns for a cached structure.
  {
    WallTimer trace_timer;
    const sim::Machine machine(config.machine);
    const pselinv::RunResult trace =
        run_pselinv(p.plan, machine, pselinv::ExecutionMode::kTrace);
    PSI_CHECK_MSG(trace.complete(),
                  "plan trace run incomplete: " << trace.blocks_finalized
                                                << "/" << trace.expected_blocks
                                                << " blocks");
    p.trace_makespan = trace.makespan;
    p.trace_events = trace.events;
    p.trace_seconds = trace_timer.seconds();
  }
  p.build_seconds = timer.seconds();
  return plan;
}

Fingerprint plan_fingerprint(const SparsityPattern& pattern,
                             const PlanConfig& config) {
  return structure_fingerprint(pattern, config.grid_rows, config.grid_cols,
                               config.tree, config.symmetry, config.analysis);
}

std::shared_ptr<const ServePlan> PlanCache::lookup_locked(
    const Fingerprint& fp) {
  auto it = index_.find(fp);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to front
  return it->second->plan;
}

void PlanCache::insert_locked(const std::shared_ptr<const ServePlan>& plan) {
  if (plan->bytes > config_.capacity_bytes) {
    ++stats_.oversize;
    return;
  }
  lru_.push_front(Entry{plan->fingerprint, plan});
  index_[plan->fingerprint] = lru_.begin();
  stats_.bytes += plan->bytes;
  while (stats_.bytes > config_.capacity_bytes && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.plan->bytes;
    index_.erase(victim.fp);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
  if (stats_.bytes > stats_.bytes_high_water)
    stats_.bytes_high_water = stats_.bytes;
}

std::shared_ptr<const ServePlan> PlanCache::get_or_build(
    const Fingerprint& fp, const Builder& build, bool* hit_out,
    PlanSource* source_out) {
  std::shared_future<std::shared_ptr<const ServePlan>> pending;
  std::promise<std::shared_ptr<const ServePlan>> promise;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto plan = lookup_locked(fp)) {
      ++stats_.hits;
      if (hit_out) *hit_out = true;
      if (source_out) *source_out = PlanSource::kMemory;
      return plan;
    }
    ++stats_.misses;
    if (hit_out) *hit_out = false;
    auto inflight = building_.find(fp);
    if (inflight != building_.end()) {
      ++stats_.coalesced;
      // Coalesced waiters cannot know whether the owner ends up loading or
      // building; report the conservative (slower) source.
      if (source_out) *source_out = PlanSource::kBuilt;
      pending = inflight->second;
    } else {
      building_.emplace(fp, promise.get_future().share());
    }
  }
  if (pending.valid()) return pending.get();  // propagates build exceptions

  std::shared_ptr<const ServePlan> plan;
  PlanSource source = PlanSource::kBuilt;
  try {
    // Read-through: a persisted plan short-circuits the build. Storage
    // failures of any kind degrade to a rebuild — a corrupt file must never
    // fail the request it was supposed to accelerate.
    if (config_.storage != nullptr) {
      std::string reason;
      std::shared_ptr<const ServePlan> loaded;
      try {
        loaded = config_.storage->fetch(fp, &reason);
      } catch (const std::exception& e) {
        loaded = nullptr;
        reason = e.what();
      }
      if (loaded != nullptr && loaded->fingerprint != fp) {
        reason = "stored plan fingerprint mismatch: expected " + fp.hex() +
                 ", file carries " + loaded->fingerprint.hex();
        loaded = nullptr;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (loaded != nullptr) {
        ++stats_.store_hits;
        plan = std::move(loaded);
        source = PlanSource::kDisk;
      } else {
        ++stats_.store_misses;
        if (!reason.empty()) {
          ++stats_.store_load_failures;
          stats_.last_store_error = reason;
        }
      }
    }
    if (plan == nullptr) {
      plan = build();
      PSI_CHECK_MSG(plan != nullptr, "plan builder returned null");
      PSI_CHECK_MSG(plan->fingerprint == fp,
                    "plan builder fingerprint mismatch: expected "
                        << fp.hex() << ", built " << plan->fingerprint.hex());
      // Write-through: publish the fresh build so the next process restart
      // starts warm. Failure is counted, never propagated.
      if (config_.storage != nullptr) {
        std::string reason;
        bool published = false;
        try {
          published = config_.storage->publish(*plan, &reason);
        } catch (const std::exception& e) {
          published = false;
          reason = e.what();
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (published) {
          ++stats_.store_writes;
        } else {
          ++stats_.store_write_failures;
          if (!reason.empty()) stats_.last_store_error = reason;
        }
      }
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      building_.erase(fp);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  if (source_out) *source_out = source;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    insert_locked(plan);
    building_.erase(fp);
  }
  promise.set_value(plan);
  return plan;
}

std::shared_ptr<const ServePlan> PlanCache::lookup(const Fingerprint& fp) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto plan = lookup_locked(fp);
  if (plan)
    ++stats_.hits;
  else
    ++stats_.misses;
  return plan;
}

void PlanCache::record_external_hits(Count count) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.hits += count;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PlanCache::fold_metrics(obs::MetricsRegistry& registry) const {
  const Stats s = stats();
  registry.counter("serve_cache_hits").add(s.hits);
  registry.counter("serve_cache_misses").add(s.misses);
  registry.counter("serve_cache_evictions").add(s.evictions);
  registry.counter("serve_cache_oversize").add(s.oversize);
  registry.counter("serve_cache_coalesced").add(s.coalesced);
  registry.counter("serve_store_hits").add(s.store_hits);
  registry.counter("serve_store_misses").add(s.store_misses);
  registry.counter("serve_store_load_failures").add(s.store_load_failures);
  registry.counter("serve_store_writes").add(s.store_writes);
  registry.counter("serve_store_write_failures").add(s.store_write_failures);
  registry.gauge("serve_cache_bytes").set(static_cast<double>(s.bytes));
  registry.gauge("serve_cache_entries").set(static_cast<double>(s.entries));
  registry.gauge("serve_cache_bytes_high_water")
      .set(static_cast<double>(s.bytes_high_water));
}

}  // namespace psi::serve
