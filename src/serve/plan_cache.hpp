/// \file plan_cache.hpp
/// \brief The psi::serve plan cache: immutable, shareable selected-inversion
/// plans keyed by structure fingerprint, with LRU eviction under a byte
/// budget and single-flight builds.
///
/// A ServePlan bundles everything that depends only on a matrix's sparsity
/// PATTERN and the run configuration: the fill ordering, the symbolic
/// analysis (etree, supernode partition, block structure), and the PSelInv
/// communication plan with all its per-supernode tree layouts. Building one
/// is the expensive preprocessing the paper amortizes over repeated
/// inversions; serving a numeric-only request against a cached plan skips
/// straight to permute + factorization + inversion.
///
/// Concurrency contract: ServePlan is immutable after construction and
/// shared via shared_ptr<const>, so any number of service workers can run
/// against one plan concurrently. PlanCache itself is fully thread-safe;
/// builds are single-flight (concurrent requests for the same missing
/// fingerprint wait for one build instead of duplicating it).
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "dist/process_grid.hpp"
#include "numeric/block_matrix.hpp"
#include "obs/metrics.hpp"
#include "pselinv/plan.hpp"
#include "serve/fingerprint.hpp"
#include "sim/machine.hpp"
#include "symbolic/analysis.hpp"

namespace psi::serve {

/// Everything a plan is built from besides the sparsity pattern. All
/// orderings must be coordinate-free (geometric dissection needs mesh
/// coordinates, which requests do not carry).
struct PlanConfig {
  int grid_rows = 2;
  int grid_cols = 2;
  trees::TreeOptions tree;
  pselinv::ValueSymmetry symmetry = pselinv::ValueSymmetry::kSymmetric;
  AnalysisOptions analysis;
  /// Simulated machine the plan's kTrace schedule run executes on. Not part
  /// of the fingerprint: a service has exactly one machine, so within one
  /// cache the trace artifacts are keyed by structure alone.
  sim::MachineConfig machine;
};

/// An immutable cached plan. Never constructed directly — build_serve_plan
/// returns it heap-allocated, because `plan` holds a pointer into
/// `analysis.blocks` and the object must therefore never move.
struct ServePlan {
  /// Destination of one request CSR entry in the factor's block storage.
  enum class SlotKind : std::uint8_t { kDiag, kLower, kUpper };
  struct ValueSlot {
    SlotKind kind;
    Int sup;       ///< supernode owning the destination panel
    Int row, col;  ///< position within diag(sup) / lpanel(sup) / upanel(sup)
  };

  Fingerprint fingerprint;
  PlanConfig config;
  /// Symbolic pipeline output. `analysis.matrix.values` is cleared after
  /// the build (the first requester's values are not part of the plan);
  /// the permuted pattern, permutation, etree and block structure remain.
  SymbolicAnalysis analysis;
  dist::ProcessGrid grid;
  pselinv::Plan plan;  ///< references analysis.blocks
  /// Distributed-schedule artifacts from the build's kTrace simulation run.
  /// The DES schedule is a pure function of structure + config + machine —
  /// values never change message counts or timing — so it is simulated once
  /// here and every request sharing the fingerprint reuses the result.
  double trace_makespan = 0.0;  ///< simulated selected-inversion seconds
  Count trace_events = 0;       ///< DES events the schedule run processed
  double trace_seconds = 0.0;   ///< host seconds spent simulating
  /// Precomputed numeric load map: entry p of a request's CSR (the exact
  /// pattern the fingerprint hashes, so identical for every request served
  /// by this plan) lands at scatter[p]. Turns the per-request symmetric
  /// permutation + CSR scan into one linear pass over the value array.
  std::vector<ValueSlot> scatter;
  std::size_t bytes = 0;          ///< heap footprint (cache accounting)
  double build_seconds = 0.0;     ///< host seconds spent building

  /// Scatters `values` (a request's CSR value array on this plan's pattern)
  /// into the zeroed block storage `m`. Throws psi::Error on a length
  /// mismatch (the request pattern cannot differ — the cache keys on it).
  void scatter_values(const std::vector<double>& values, BlockMatrix& m) const;

  ServePlan(const Fingerprint& fp, const PlanConfig& cfg, SymbolicAnalysis an);
  /// Deserialization constructor (psi::store): adopts a previously built
  /// communication plan instead of re-running the per-supernode tree
  /// construction. The caller still fills scatter/trace_*/bytes.
  ServePlan(const Fingerprint& fp, const PlanConfig& cfg, SymbolicAnalysis an,
            pselinv::Plan::RawParts plan_parts);
  ServePlan(const ServePlan&) = delete;
  ServePlan& operator=(const ServePlan&) = delete;
};

/// Heap bytes retained by a plan (analysis + scatter map + comm plan) —
/// the PlanCache budget accounting, shared by the builder and the on-disk
/// loader so a plan costs the same no matter how it entered the cache.
std::size_t serve_plan_heap_bytes(const ServePlan& plan);

/// Where a resolved plan came from, reported per response. kMemory also
/// covers batch followers (their leader resolved the plan for them).
enum class PlanSource { kBuilt, kDisk, kMemory };
const char* plan_source_name(PlanSource source);

/// Persistence backend the PlanCache reads through on miss and writes
/// through on build (implemented by store::PlanStore; kept abstract here so
/// psi::serve never depends on the store subsystem). Implementations must be
/// thread-safe — the cache calls from concurrent service workers, though
/// never concurrently for the SAME fingerprint (single-flight).
class PlanStorage {
 public:
  virtual ~PlanStorage() = default;
  /// Returns the stored plan for `fp`, or nullptr. A plain miss leaves
  /// `reason` empty; a failed load (corrupt/truncated/version-mismatched
  /// file) reports why — it must never throw or abort, the caller falls
  /// back to a rebuild either way.
  virtual std::shared_ptr<const ServePlan> fetch(const Fingerprint& fp,
                                                 std::string* reason) = 0;
  /// Persists a freshly built plan; returns false with a reason on failure
  /// (which must not fail the request being served).
  virtual bool publish(const ServePlan& plan, std::string* reason) = 0;
};

/// Runs the full pattern-side pipeline (validate, fingerprint, analyze,
/// plan, kTrace schedule simulation) for `matrix` under `config`. Throws
/// psi::Error on invalid input (e.g. a structurally unsymmetric pattern or
/// a coordinate-needing ordering).
std::shared_ptr<const ServePlan> build_serve_plan(const SparseMatrix& matrix,
                                                  const PlanConfig& config);

/// Fingerprint of `matrix`'s pattern under `config` (what the cache keys
/// on; value changes do not change it).
Fingerprint plan_fingerprint(const SparsityPattern& pattern,
                             const PlanConfig& config);

/// Thread-safe LRU plan cache with a byte budget and single-flight builds.
class PlanCache {
 public:
  struct Config {
    /// Total ServePlan::bytes the cache may retain. A single plan larger
    /// than the budget is returned to its requester but never retained
    /// (counted in Stats::oversize).
    std::size_t capacity_bytes = std::size_t{256} << 20;
    /// Optional persistence backend (non-owning; must outlive the cache).
    /// On a memory miss the single-flight owner consults it BEFORE building
    /// (a warm restart is a disk hit, not a rebuild) and publishes every
    /// freshly built plan to it.
    PlanStorage* storage = nullptr;
  };

  struct Stats {
    Count hits = 0;        ///< served from cache
    Count misses = 0;      ///< not cached at lookup time
    Count evictions = 0;   ///< entries dropped to fit the byte budget
    Count oversize = 0;    ///< built plans too large to retain
    Count coalesced = 0;   ///< misses that joined an in-flight build
    Count store_hits = 0;           ///< misses served from the plan store
    Count store_misses = 0;         ///< store consulted, no usable file
    Count store_load_failures = 0;  ///< store files rejected (corrupt/...)
    Count store_writes = 0;         ///< plans published to the store
    Count store_write_failures = 0; ///< publishes that failed
    std::string last_store_error;   ///< most recent load/publish reason
    std::size_t bytes = 0;             ///< currently retained
    std::size_t entries = 0;           ///< currently retained
    std::size_t bytes_high_water = 0;  ///< peak retained bytes
  };

  using Builder = std::function<std::shared_ptr<const ServePlan>()>;

  explicit PlanCache(const Config& config) : config_(config) {}
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `fp`, or resolves it (outside the cache
  /// lock; single-flight across threads): first from Config::storage when
  /// attached, then by invoking `build`; the result is retained under
  /// LRU/byte-budget policy and freshly BUILT plans are written through to
  /// the storage. A builder exception propagates to every waiter and caches
  /// nothing; storage failures never propagate (they degrade to a rebuild
  /// or an unpublished plan, counted in Stats). `hit_out` (optional)
  /// reports whether this call was served from memory; `source_out`
  /// (optional) additionally distinguishes disk loads from builds.
  std::shared_ptr<const ServePlan> get_or_build(const Fingerprint& fp,
                                                const Builder& build,
                                                bool* hit_out = nullptr,
                                                PlanSource* source_out = nullptr);

  /// Cached plan for `fp`, or nullptr. Touches LRU order and the hit/miss
  /// counters but never builds.
  std::shared_ptr<const ServePlan> lookup(const Fingerprint& fp);

  /// Accounts `count` additional cache hits that did not go through
  /// get_or_build — the service batcher resolves a plan once per batch and
  /// serves the followers from it, and those requests are cache hits too.
  void record_external_hits(Count count);

  Stats stats() const;

  /// Adds the cache counters/gauges ("serve_cache_*") to `registry`.
  /// MetricsRegistry is not thread-safe: call from one thread, after (or
  /// between) request waves.
  void fold_metrics(obs::MetricsRegistry& registry) const;

 private:
  struct Entry {
    Fingerprint fp;
    std::shared_ptr<const ServePlan> plan;
  };

  /// Caller holds mutex_. Returns the plan if cached (front of LRU after).
  std::shared_ptr<const ServePlan> lookup_locked(const Fingerprint& fp);
  /// Caller holds mutex_. Retains `plan` and evicts LRU entries over budget.
  void insert_locked(const std::shared_ptr<const ServePlan>& plan);

  Config config_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<Fingerprint, std::list<Entry>::iterator, FingerprintHash>
      index_;
  std::unordered_map<Fingerprint,
                     std::shared_future<std::shared_ptr<const ServePlan>>,
                     FingerprintHash>
      building_;
  Stats stats_;
};

}  // namespace psi::serve
