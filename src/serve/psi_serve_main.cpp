/// \file psi_serve_main.cpp
/// \brief psi_serve — drive the in-process selected-inversion service with a
/// synthetic workload and report latency/throughput/cache behaviour.
///
/// Usage:
///   psi_serve [--workers N] [--queue-capacity N] [--max-batch N]
///             [--cache-mb MB] [--grid RxC] [--scheme NAME]
///             [--tree-seed S] [--unsymmetric]
///             [--shards N] [--plan-dir DIR] [--read-only-store]
///             [--quota-rate R] [--quota-burst B] [--age-promote S]
///             [--requests N] [--structures N] [--nx N] [--zipf S]
///             [--tenants N] [--arrival-hz HZ] [--window N]
///             [--interactive-frac F] [--warm-start] [--seed S]
///             [--access-log PATH] [--metrics PATH] [--summary PATH]
///
/// Exit codes: 0 — workload ran and every request completed or was
/// rejected by design; 1 — requests failed; 2 — usage error.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <optional>
#include <string>

#include "chaos/harness.hpp"
#include "driver/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/record.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "store/sharded_service.hpp"
#include "trees/comm_tree.hpp"

namespace {

void usage(std::ostream& out) {
  out << "psi_serve: request-driven selected-inversion service harness.\n\n"
         "Service options:\n"
         "  --workers N          worker threads per shard (default 2)\n"
         "  --compute-threads N  task-parallel numeric threads per request\n"
         "                       (default: PSI_SERVE_COMPUTE_THREADS, else 1;\n"
         "                       bitwise-identical results for any value)\n"
         "  --queue-capacity N   admission queue slots per shard (default 64)\n"
         "  --max-batch N        same-structure batch size (default 8)\n"
         "  --cache-mb MB        plan cache budget per shard (default 256)\n"
         "  --grid RxC           process grid (default 2x2)\n"
         "  --scheme NAME        tree scheme (default shifted-binary)\n"
         "  --tree-seed S        tree shift seed\n"
         "  --unsymmetric        unsymmetric-values plans\n"
         "  --ordering NAME      natural|rcm|min-degree|nested-dissection\n"
         "  --leaf N             dissection leaf size\n"
         "  --max-supernode N    supernode width cap\n"
         "Store / sharding options:\n"
         "  --shards N           fingerprint-sharded worker pools (default 1)\n"
         "  --plan-dir DIR       persistent plan store directory; plans are\n"
         "                       loaded on miss and written on build, so a\n"
         "                       restart with the same DIR starts warm\n"
         "  --read-only-store    never write to --plan-dir\n"
         "  --quota-rate R       per-tenant token rate, req/s (0 = unlimited)\n"
         "  --quota-burst B      per-tenant token burst (default 8)\n"
         "  --age-promote S      priority-aging threshold seconds (0 = strict\n"
         "                       priority; > 0 prevents batch starvation)\n"
         "Robustness options:\n"
         "  --stall-budget S     watchdog worker-stall budget seconds (0 =\n"
         "                       no watchdog)\n"
         "  --drain-timeout S    finish with drain(S) before shutdown:\n"
         "                       graceful completion up to S seconds, then\n"
         "                       hard kShutdown for the rest\n"
         "  --chaos-seed S       run the seeded chaos campaign instead of the\n"
         "                       workload: store I/O faults + torn writes +\n"
         "                       worker stalls + clock skew + admission\n"
         "                       storms + deadlines + cancellations against\n"
         "                       this topology; exit 0 iff every robustness\n"
         "                       invariant held (one terminal outcome per\n"
         "                       request, clean drain, ok digests bitwise\n"
         "                       equal to the fault-free run)\n"
         "Workload options:\n"
         "  --requests N         requests to submit (default 32)\n"
         "  --structures N       distinct matrix structures (default 4)\n"
         "  --nx N               base Laplacian edge (default 24)\n"
         "  --zipf S             popularity skew (default 1.0)\n"
         "  --tenants N          distinct tenants (default 1)\n"
         "  --arrival-hz HZ      open-loop Poisson rate (default: closed)\n"
         "  --window N           closed-loop outstanding window (default 4)\n"
         "  --interactive-frac F fraction at interactive priority\n"
         "  --warm-start         touch each structure before measuring\n"
         "  --seed S             workload seed (default 1)\n"
         "Output options:\n"
         "  --access-log PATH    per-request NDJSON access log\n"
         "                       (suffixed .s<k> per shard when --shards > 1)\n"
         "  --metrics PATH       metrics-registry NDJSON dump\n"
         "  --summary PATH       one-line NDJSON workload summary\n";
}

bool parse_ordering(const std::string& name, psi::OrderingMethod& method) {
  if (name == "natural") method = psi::OrderingMethod::kNatural;
  else if (name == "rcm") method = psi::OrderingMethod::kRcm;
  else if (name == "min-degree") method = psi::OrderingMethod::kMinDegree;
  else if (name == "nested-dissection")
    method = psi::OrderingMethod::kNestedDissection;
  else return false;
  return true;
}

/// Parses "RxC" (also accepts "R,C").
bool parse_grid(const std::string& text, int& rows, int& cols) {
  const std::size_t sep = text.find_first_of("xX,");
  if (sep == std::string::npos) return false;
  try {
    rows = std::stoi(text.substr(0, sep));
    cols = std::stoi(text.substr(sep + 1));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) try {
  psi::store::ShardedService::Config config;
  psi::serve::WorkloadOptions workload;
  config.service.plan.machine = psi::driver::timing_machine();
  std::string metrics_path;
  std::string summary_path;
  double drain_timeout = -1.0;  ///< < 0: plain shutdown, no drain
  std::optional<std::uint64_t> chaos_seed;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "psi_serve: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--workers") {
      config.service.workers = std::stoi(value());
    } else if (arg == "--compute-threads") {
      config.service.compute_threads = std::stoi(value());
    } else if (arg == "--queue-capacity") {
      config.service.queue_capacity =
          static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--max-batch") {
      config.service.max_batch = std::stoi(value());
    } else if (arg == "--cache-mb") {
      config.service.cache.capacity_bytes =
          static_cast<std::size_t>(std::stoul(value())) << 20;
    } else if (arg == "--grid") {
      if (!parse_grid(value(), config.service.plan.grid_rows,
                      config.service.plan.grid_cols)) {
        std::cerr << "psi_serve: --grid expects RxC\n";
        return 2;
      }
    } else if (arg == "--scheme") {
      config.service.plan.tree.scheme = psi::trees::parse_scheme(value());
    } else if (arg == "--tree-seed") {
      config.service.plan.tree.seed = std::stoull(value());
    } else if (arg == "--unsymmetric") {
      config.service.plan.symmetry = psi::pselinv::ValueSymmetry::kUnsymmetric;
    } else if (arg == "--ordering") {
      if (!parse_ordering(value(),
                          config.service.plan.analysis.ordering.method)) {
        std::cerr << "psi_serve: unknown ordering\n";
        return 2;
      }
    } else if (arg == "--leaf") {
      config.service.plan.analysis.ordering.dissection_leaf_size =
          std::stoi(value());
    } else if (arg == "--max-supernode") {
      config.service.plan.analysis.supernodes.max_size = std::stoi(value());
    } else if (arg == "--shards") {
      config.shards = std::stoi(value());
    } else if (arg == "--plan-dir") {
      config.plan_dir = value();
    } else if (arg == "--read-only-store") {
      config.read_only_store = true;
    } else if (arg == "--quota-rate") {
      config.default_quota.rate_per_s = std::stod(value());
    } else if (arg == "--quota-burst") {
      config.default_quota.burst = std::stod(value());
    } else if (arg == "--age-promote") {
      config.service.age_promote_seconds = std::stod(value());
    } else if (arg == "--stall-budget") {
      config.service.stall_budget_seconds = std::stod(value());
    } else if (arg == "--drain-timeout") {
      drain_timeout = std::stod(value());
    } else if (arg == "--chaos-seed") {
      chaos_seed = std::stoull(value());
    } else if (arg == "--requests") {
      workload.requests = std::stoi(value());
    } else if (arg == "--structures") {
      workload.structures = std::stoi(value());
    } else if (arg == "--nx") {
      workload.nx = std::stoi(value());
    } else if (arg == "--zipf") {
      workload.zipf_s = std::stod(value());
    } else if (arg == "--tenants") {
      workload.tenants = std::stoi(value());
    } else if (arg == "--arrival-hz") {
      workload.arrival_hz = std::stod(value());
    } else if (arg == "--window") {
      workload.window = std::stoi(value());
    } else if (arg == "--interactive-frac") {
      workload.interactive_fraction = std::stod(value());
    } else if (arg == "--warm-start") {
      workload.warm_start = true;
    } else if (arg == "--seed") {
      workload.seed = std::stoull(value());
    } else if (arg == "--access-log") {
      config.service.access_log_path = value();
    } else if (arg == "--metrics") {
      metrics_path = value();
    } else if (arg == "--summary") {
      summary_path = value();
    } else {
      std::cerr << "psi_serve: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }

  // Validate flags before spinning up any threads: one-line error, exit 2.
  if (config.shards < 1) {
    std::cerr << "psi_serve: --shards must be >= 1, got " << config.shards
              << "\n";
    return 2;
  }
  if (!std::isfinite(config.service.age_promote_seconds) ||
      config.service.age_promote_seconds < 0.0) {
    std::cerr << "psi_serve: --age-promote must be finite and >= 0, got "
              << config.service.age_promote_seconds << "\n";
    return 2;
  }
  config.default_quota = psi::store::validated_quota(
      config.default_quota.rate_per_s, config.default_quota.burst);

  if (chaos_seed) {
    // Chaos-campaign mode: seeded faults against this topology; the
    // workload flags shape the request population.
    psi::chaos::CampaignOptions campaign;
    campaign.plan.seed = *chaos_seed;
    campaign.plan.store_read_error_rate = 0.10;
    campaign.plan.store_write_error_rate = 0.05;
    campaign.plan.store_rename_error_rate = 0.05;
    campaign.plan.store_torn_write_rate = 0.10;
    campaign.plan.stall_rate = 0.02;
    campaign.plan.stall_seconds = 0.05;
    campaign.plan.clock_skew_rate = 0.05;
    campaign.plan.clock_skew_seconds = 0.02;
    campaign.shards = config.shards;
    campaign.workers = config.service.workers;
    campaign.queue_capacity = config.service.queue_capacity;
    campaign.max_batch = config.service.max_batch;
    campaign.stall_budget_seconds =
        config.service.stall_budget_seconds > 0.0
            ? config.service.stall_budget_seconds
            : 0.02;
    campaign.plan_dir = config.plan_dir;
    campaign.requests = workload.requests;
    campaign.structures = workload.structures;
    campaign.nx = workload.nx;
    campaign.tenants = workload.tenants;
    campaign.workload_seed = workload.seed;
    campaign.deadline_fraction = 0.25;
    campaign.cancel_fraction = 0.10;
    campaign.window = workload.window;
    campaign.storm_every = 50;
    campaign.storm_size = 24;
    campaign.drain_timeout_seconds = drain_timeout > 0.0 ? drain_timeout : 5.0;

    const psi::chaos::CampaignResult result =
        psi::chaos::run_chaos_campaign(campaign);
    std::cout << "chaos:    seed " << *chaos_seed << ", " << campaign.requests
              << " requests over " << campaign.shards << " shard(s) x "
              << campaign.workers << " worker(s) in " << result.wall_seconds
              << " s\n"
              << "outcome:  " << result.ok << " ok, " << result.failed
              << " failed, " << result.rejected << " rejected, "
              << result.deadline << " deadline, " << result.cancelled
              << " cancelled, " << result.shutdown << " shutdown\n"
              << "faults:   " << result.fs.read_errors << " read errors, "
              << result.fs.write_errors << " write errors, "
              << result.fs.rename_errors << " rename errors, "
              << result.fs.torn_writes << " torn writes, "
              << result.stalls_injected << " stalls, " << result.clock_jumps
              << " clock jumps\n"
              << "lifecycle: drained in " << result.drain.waited_seconds
              << " s (" << result.drain.completed << " graceful, "
              << result.drain.hard_failed << " hard-failed), "
              << result.post_scan.quarantined << " files quarantined\n";
    if (result.passed()) {
      std::cout << "verdict:  PASS — all robustness invariants held\n";
      return 0;
    }
    std::cout << "verdict:  FAIL — " << result.violations.size()
              << " invariant violation(s):\n";
    for (const std::string& v : result.violations)
      std::cout << "  - " << v << "\n";
    return 1;
  }

  psi::store::ShardedService service(config);
  const psi::serve::WorkloadReport report =
      psi::serve::run_workload(service, workload);
  if (drain_timeout >= 0.0) {
    const psi::serve::Service::DrainReport drained =
        service.drain(drain_timeout);
    std::cout << "drain:    " << drained.completed << " completed, "
              << drained.hard_failed << " hard-failed in "
              << drained.waited_seconds << " s\n";
  }
  service.shutdown();

  psi::serve::print_report(std::cout, report);
  const psi::serve::PlanCache::Stats cache = service.cache_stats();
  std::cout << "cache:    " << cache.hits << " hits, " << cache.misses
            << " misses, " << cache.evictions << " evictions, "
            << cache.entries << " entries / " << cache.bytes << " bytes\n";
  if (!config.plan_dir.empty()) {
    std::cout << "store:    " << cache.store_hits << " disk hits, "
              << cache.store_misses << " misses, "
              << cache.store_load_failures << " load failures, "
              << cache.store_writes << " writes\n";
    if (!cache.last_store_error.empty())
      std::cout << "store:    last error: " << cache.last_store_error << "\n";
  }
  if (service.quota_rejected() > 0)
    std::cout << "quota:    " << service.quota_rejected()
              << " requests rejected over tenant quota\n";
  char digest_hex[17];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(report.digest_xor));
  std::cout << "digest:   " << digest_hex << "\n";

  if (!metrics_path.empty()) {
    psi::obs::MetricsRegistry registry;
    service.fold_metrics(registry);
    registry.write_ndjson(metrics_path);
  }
  if (!summary_path.empty()) {
    psi::obs::RecordWriter writer;
    writer.open_ndjson(summary_path);
    psi::obs::Record record;
    record.add("store_hits", cache.store_hits)
        .add("store_writes", cache.store_writes)
        .add("store_load_failures", cache.store_load_failures);
    report.append_to(record);
    writer.write(record);
    writer.flush();
  }
  return report.failed > 0 ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "psi_serve: " << e.what() << "\n";
  return 2;
}
