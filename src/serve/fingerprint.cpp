#include "serve/fingerprint.hpp"

#include <cstdio>
#include <cstring>

#include "common/rng.hpp"

namespace psi::serve {

std::string Fingerprint::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

std::array<std::uint8_t, 16> Fingerprint::to_bytes() const {
  std::array<std::uint8_t, 16> bytes{};
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(hi >> (56 - 8 * i));
    bytes[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(lo >> (56 - 8 * i));
  }
  return bytes;
}

Fingerprint Fingerprint::from_bytes(const std::array<std::uint8_t, 16>& bytes) {
  Fingerprint fp;
  for (int i = 0; i < 8; ++i) {
    fp.hi = (fp.hi << 8) | bytes[static_cast<std::size_t>(i)];
    fp.lo = (fp.lo << 8) | bytes[static_cast<std::size_t>(8 + i)];
  }
  return fp;
}

std::optional<Fingerprint> Fingerprint::from_hex(const std::string& text) {
  if (text.size() != 32) return std::nullopt;
  Fingerprint fp;
  for (int i = 0; i < 32; ++i) {
    const char c = text[static_cast<std::size_t>(i)];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F') digit = static_cast<std::uint64_t>(c - 'A') + 10;
    else return std::nullopt;
    std::uint64_t& lane = i < 16 ? fp.hi : fp.lo;
    lane = (lane << 4) | digit;
  }
  return fp;
}

FingerprintHasher::FingerprintHasher()
    // Arbitrary distinct lane seeds; fixed so fingerprints are stable
    // across processes (a warm cache file or log can be compared between
    // runs).
    : hi_(0x9c6e1fb5c3a2d401ULL), lo_(0x2545f4914f6cdd1dULL) {}

void FingerprintHasher::mix(std::uint64_t word) {
  hi_ = hash_combine(hi_, word);
  lo_ = hash_combine(lo_, word ^ 0xa5a5a5a5a5a5a5a5ULL);
}

void FingerprintHasher::mix_bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t word = 0;
  std::size_t full = size / sizeof(word);
  for (std::size_t i = 0; i < full; ++i) {
    std::memcpy(&word, bytes + i * sizeof(word), sizeof(word));
    mix(word);
  }
  const std::size_t tail = size % sizeof(word);
  if (tail > 0) {
    word = 0;
    std::memcpy(&word, bytes + full * sizeof(word), tail);
    mix(word);
  }
  mix(static_cast<std::uint64_t>(size));
}

Fingerprint FingerprintHasher::finish() const {
  // One extra avalanche per lane so trailing zero-words still diffuse.
  std::uint64_t hi_state = hi_;
  std::uint64_t lo_state = lo_;
  return Fingerprint{splitmix64(hi_state), splitmix64(lo_state)};
}

Fingerprint structure_fingerprint(const SparsityPattern& pattern,
                                  int grid_rows, int grid_cols,
                                  const trees::TreeOptions& tree_options,
                                  pselinv::ValueSymmetry symmetry,
                                  const AnalysisOptions& analysis) {
  FingerprintHasher hasher;
  // A version tag so a future layout change cannot alias old fingerprints.
  hasher.mix(0x70736921'73657276ULL);  // "psi!serv"
  hasher.mix(static_cast<std::uint64_t>(pattern.n));
  hasher.mix_bytes(pattern.col_ptr.data(),
                   pattern.col_ptr.size() * sizeof(Int));
  hasher.mix_bytes(pattern.row_idx.data(),
                   pattern.row_idx.size() * sizeof(Int));
  hasher.mix(static_cast<std::uint64_t>(grid_rows));
  hasher.mix(static_cast<std::uint64_t>(grid_cols));
  hasher.mix(static_cast<std::uint64_t>(tree_options.scheme));
  hasher.mix(static_cast<std::uint64_t>(tree_options.hybrid_flat_threshold));
  hasher.mix(tree_options.seed);
  hasher.mix(static_cast<std::uint64_t>(symmetry));
  hasher.mix(static_cast<std::uint64_t>(analysis.ordering.method));
  hasher.mix(static_cast<std::uint64_t>(analysis.ordering.dissection_leaf_size));
  hasher.mix(static_cast<std::uint64_t>(analysis.supernodes.max_size));
  hasher.mix(static_cast<std::uint64_t>(analysis.supernodes.relax_small));
  return hasher.finish();
}

}  // namespace psi::serve
