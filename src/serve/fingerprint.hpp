/// \file fingerprint.hpp
/// \brief Structure fingerprints: the plan-cache key of psi::serve.
///
/// A selected-inversion *plan* (ordering, supernode partition, PSelInv
/// communication plan, per-supernode tree layouts) depends only on the
/// sparsity PATTERN of the matrix and the run configuration — never on the
/// numeric values. Two requests whose patterns, grids, tree options,
/// analysis options, and value symmetry all match can share one plan; the
/// second request skips the entire symbolic/plan/tree pipeline (the
/// amortizable preprocessing the PSelInv papers describe for repeated
/// inversions on a fixed structure).
///
/// The fingerprint is a 128-bit streaming hash (two independently seeded
/// 64-bit lanes) over the CSR arrays and the configuration words, so
/// accidental collisions are out of reach for any realistic catalog size;
/// value-different but pattern-equal matrices hash identically by
/// construction.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "pselinv/plan.hpp"
#include "sparse/sparse_matrix.hpp"
#include "symbolic/analysis.hpp"
#include "trees/comm_tree.hpp"

namespace psi::serve {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Fingerprint&) const = default;

  /// 32 lowercase hex digits (for logs and access records).
  std::string hex() const;

  /// Canonical 16-byte encoding, stable across hosts: `hi` then `lo`, each
  /// big-endian (most significant byte first), so the byte sequence reads
  /// exactly like hex() and sorts the same lexicographically. Fingerprints
  /// name on-disk plan files, so this encoding is a persistent format —
  /// never change it without bumping the store's format version.
  std::array<std::uint8_t, 16> to_bytes() const;
  /// Inverse of to_bytes().
  static Fingerprint from_bytes(const std::array<std::uint8_t, 16>& bytes);
  /// Parses a 32-hex-digit string (the hex()/file-name form); nullopt on
  /// any malformed input (wrong length, non-hex digit).
  static std::optional<Fingerprint> from_hex(const std::string& text);
};

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const {
    return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Streaming two-lane 64-bit mixer (hash_combine per word, independent
/// seeds). Exposed so tests can probe sensitivity to single-word changes.
class FingerprintHasher {
 public:
  FingerprintHasher();

  void mix(std::uint64_t word);
  void mix_bytes(const void* data, std::size_t size);

  Fingerprint finish() const;

 private:
  std::uint64_t hi_;
  std::uint64_t lo_;
};

/// Fingerprint of everything a ServePlan is built from: the sparsity
/// pattern (n, col_ptr, row_idx — values excluded), the process grid, the
/// tree options (scheme, hybrid threshold, shift seed), the value symmetry
/// (it adds the mirrored U-side phases to the plan), and the analysis
/// options (they change the supernode partition).
Fingerprint structure_fingerprint(const SparsityPattern& pattern,
                                  int grid_rows, int grid_cols,
                                  const trees::TreeOptions& tree_options,
                                  pselinv::ValueSymmetry symmetry,
                                  const AnalysisOptions& analysis);

}  // namespace psi::serve
