/// \file service.hpp
/// \brief psi::serve — an in-process selected-inversion service.
///
/// Requests carry a structurally symmetric matrix; responses carry the
/// selected inverse (on demand) plus a content digest and a full timing
/// decomposition. The service runs:
///
///  * an admission queue — bounded, two priority classes, reject-with-reason
///    backpressure when full;
///  * a structure-fingerprint plan cache (plan_cache.hpp) — requests whose
///    pattern+configuration were seen before skip ordering/symbolic/plan
///    construction and go straight to permute + factor + inversion;
///  * a batcher — when a worker pops a request it also claims queued
///    requests of the same fingerprint (same priority class, up to
///    max_batch), so one plan resolution serves the whole group;
///  * a deterministic worker pool — N workers over parallel::ThreadPool.
///
/// Determinism discipline: a response's numeric content depends ONLY on
/// (request matrix, service PlanConfig). Plans are pure functions of the
/// pattern+configuration, the cached-plan numeric path is the same code as
/// the cold path (scatter the request values through the plan's precomputed
/// load map, factor over the cached block structure, selected inversion —
/// Algorithm 1 — over the factor), and workers never share mutable numeric
/// state — so results are bitwise identical for any worker count, arrival
/// order, batching, or cache history. The numeric phase itself may be
/// task-parallel (Config::compute_threads > 1 drives factor_parallel /
/// selinv_parallel on a per-worker compute pool), and stays inside the same
/// contract: canonical-order reductions make the parallel kernels bitwise
/// identical to the sequential ones, so compute_threads never changes a
/// digest either. Tests enforce all of this via the response digest.
///
/// The distributed side of the paper is served from the plan cache: the
/// plan build runs the DES once in kTrace mode (message counts and timing
/// are value-free) and every request reports that structure's simulated
/// makespan without re-simulating. This is what makes warm requests cheap —
/// they skip ordering, symbolic analysis, tree construction, AND the
/// discrete-event schedule simulation, leaving only permute + factor +
/// sequential inversion.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <condition_variable>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "numeric/block_matrix.hpp"
#include "numeric/task_graph.hpp"
#include "obs/metrics.hpp"
#include "obs/record.hpp"
#include "serve/plan_cache.hpp"

namespace psi::serve {

enum class Priority { kInteractive = 0, kBatch = 1 };
inline constexpr int kPriorityCount = 2;

enum class Status {
  kOk,        ///< selected inversion completed
  kRejected,  ///< admission refused (queue full / quota / watchdog failover)
  kFailed,    ///< pipeline error (invalid matrix, zero pivot, ...)
  kShutdown,  ///< abandoned by shutdown / drain timeout
  kDeadline,  ///< request deadline expired before completion
  kCancelled, ///< cancelled (client token or watchdog stall recovery)
};

const char* priority_name(Priority priority);
const char* status_name(Status status);

/// Shared cancellation token: the client keeps a copy and flips it to true;
/// the worker observes it at every phase boundary and releases early with
/// kCancelled instead of finishing the numeric work.
using CancelToken = std::shared_ptr<std::atomic<bool>>;
inline CancelToken make_cancel_token() {
  return std::make_shared<std::atomic<bool>>(false);
}

/// Request::timeout_seconds value meaning "no deadline".
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

struct Request {
  std::string id;  ///< client-chosen tag for logs (may be empty)
  /// Tenant this request bills against. The multi-tenant front end
  /// (store::ShardedService) keys quotas and SLO metrics on it; the service
  /// itself only carries it through to the response/access log. "" is the
  /// anonymous tenant.
  std::string tenant;
  SparseMatrix matrix;
  Priority priority = Priority::kBatch;
  /// Ship the selected inverse in the response (Response::ainv). Off by
  /// default: the digest alone identifies the result bitwise.
  bool return_ainv = false;
  /// Deadline budget, measured on the service clock from admission.
  /// kNoDeadline (the default) disables it; <= 0 means the deadline had
  /// already passed when the client submitted — admission rejects it with
  /// kDeadline without spending a queue slot; NaN is an invalid request
  /// (kFailed). Queued requests past their deadline are expired lazily at
  /// dequeue, and in-flight requests are checked between the
  /// scatter/factor/selinv phases, so an expired request releases its
  /// worker at the next phase boundary instead of completing.
  double timeout_seconds = kNoDeadline;
  /// Optional cancellation token (see CancelToken). Null = not cancellable.
  CancelToken cancel;
};

struct Response {
  std::string id;
  std::string tenant;
  Priority priority = Priority::kBatch;
  Status status = Status::kFailed;
  std::string detail;       ///< reject reason / error message ("" when kOk)
  std::string fingerprint;  ///< structure fingerprint, 32 hex digits
  bool cache_hit = false;   ///< plan served from cache
  /// Where the plan came from: memory (cache hit / batch follower), disk
  /// (plan-store load), or a fresh build. Never affects the digest.
  PlanSource plan_source = PlanSource::kBuilt;
  bool batched = false;     ///< follower of a same-fingerprint batch
  int shard = 0;            ///< admission shard (Config::shard label)
  int worker = -1;
  /// Deterministic content hash of the selected inverse (all block bytes in
  /// supernode order): bitwise-equal results <=> equal digests.
  std::string digest;

  double queue_seconds = 0.0;    ///< admission -> worker pickup
  double plan_seconds = 0.0;     ///< plan resolution (cache hit: ~0)
  double scatter_seconds = 0.0;  ///< value scatter through the plan slot map
  double factor_seconds = 0.0;   ///< numeric factorization (scatter excluded)
  double invert_seconds = 0.0;   ///< selected inversion sweep
  double total_seconds = 0.0;    ///< admission -> response
  /// Simulated distributed makespan for this structure — the plan's cached
  /// kTrace result (ServePlan::trace_makespan), not a per-request run.
  double sim_makespan = 0.0;

  /// Set only when Request::return_ainv: the selected inverse, plus the
  /// plan that owns the block structure `ainv` points into (kept alive here
  /// so cache eviction cannot dangle it).
  std::shared_ptr<const BlockMatrix> ainv;
  std::shared_ptr<const ServePlan> plan;

  bool ok() const { return status == Status::kOk; }
};

/// Bitwise content digest of a block matrix (diag/lpanel/upanel bytes in
/// supernode order); exposed for tests comparing cached vs fresh results.
std::string ainv_digest(const BlockMatrix& ainv);

/// Anything requests can be submitted to: the Service itself, or a fronting
/// layer (store::ShardedService) that routes/gates before delegating.
/// Workload drivers run against this interface so every harness works with
/// both.
class RequestSink {
 public:
  virtual ~RequestSink() = default;
  virtual std::future<Response> submit(Request request) = 0;
};

/// Queue-class selection with SLO-aware priority aging. `head_age_seconds`
/// holds the queue-head wait time per priority class, -1 for an empty
/// class. Normally the highest-priority (lowest-index) nonempty class wins;
/// when `age_promote_seconds` > 0 and any queue head has waited beyond it,
/// the OLDEST such head wins instead — so batch traffic keeps flowing under
/// a sustained interactive storm (no starvation), while fresh batch work
/// still always yields to interactive work. Returns -1 if every class is
/// empty. Pure function, exposed for deterministic tests.
int select_queue_class(const double* head_age_seconds, int classes,
                       double age_promote_seconds);

/// One request-processing phase boundary, reported to Config::phase_hook
/// just before the corresponding cancellation check. "build" fires inside
/// the single-flight plan build; "pickup" right after dequeue; "scatter" /
/// "factor" after those numeric phases complete. The chaos harness hooks
/// this to inject worker stalls; tests hook it to hold workers at exact
/// points.
struct PhaseEvent {
  const char* phase;  ///< "build" | "pickup" | "scatter" | "factor"
  int worker;
  const std::string& id;      ///< request id (the leader's for "build")
  const std::string& tenant;  ///< request tenant
};

class Service : public RequestSink {
 public:
  struct Config {
    /// Worker threads. 0 = admit-only: requests queue but nothing drains
    /// until shutdown() fails them with kShutdown (deterministic
    /// backpressure testing).
    int workers = 2;
    /// Compute threads per in-flight request (task-parallel numeric phase).
    /// 1 = the sequential factor/selinv kernels, untouched. > 1 = each
    /// service worker drives factor_parallel()/selinv_parallel() with a
    /// dedicated (compute_threads - 1)-worker pool; the response stays
    /// bitwise identical either way (canonical-order reductions), so this
    /// only moves latency, never content. <= 0 resolves
    /// parallel::compute_threads() (the PSI_SERVE_COMPUTE_THREADS
    /// environment knob); values above parallel::kMaxComputeThreads clamp.
    int compute_threads = 1;
    std::size_t queue_capacity = 64;  ///< both priority classes combined
    int max_batch = 8;                ///< leader + followers per pickup
    /// Priority aging threshold (seconds): a queued request older than this
    /// is served ahead of younger higher-priority work (see
    /// select_queue_class). 0 disables aging (strict priority).
    double age_promote_seconds = 0.0;
    /// Shard label this service instance carries (store::ShardedService
    /// numbers its shards; standalone services report 0). Responses and
    /// access-log records echo it.
    int shard = 0;
    /// Worker-stall budget (seconds). > 0 starts a watchdog thread that
    /// scans the workers every watchdog_poll_seconds: a worker busy on one
    /// request longer than the budget is recorded (Counters::worker_stalls)
    /// and flagged for cancellation at its next phase boundary (the stuck
    /// request finishes kCancelled and the worker is released); when EVERY
    /// worker is stalled the watchdog additionally fails the queued
    /// requests over to the client with kRejected
    /// (Counters::watchdog_failovers) instead of letting the shard hang.
    /// 0 disables the watchdog. Must be finite and >= 0.
    double stall_budget_seconds = 0.0;
    /// Watchdog scan period; <= 0 derives stall_budget_seconds / 4
    /// (clamped to [1 ms, 1 s]).
    double watchdog_poll_seconds = 0.0;
    /// Deadline clock: monotone seconds, consulted at admission and at
    /// every cancellation check. Null uses the service's own host-time
    /// uptime clock. The chaos harness injects skewed clocks here; nothing
    /// else (queue aging, latency accounting, the watchdog) reads it.
    std::function<double()> clock;
    /// Called at every request phase boundary BEFORE the cancellation
    /// check there (see PhaseEvent), from the worker thread — must be
    /// thread-safe. The chaos harness injects stalls here. Null disables.
    std::function<void(const PhaseEvent&)> phase_hook;
    /// Grid / trees / symmetry / analysis / simulated machine — everything
    /// plans (and their cached kTrace schedule runs) are built from.
    PlanConfig plan;
    PlanCache::Config cache;  ///< includes the optional PlanStorage backend
    /// Called with every finished response (after counters/log, before the
    /// submitter's future is fulfilled), from the finishing thread — must be
    /// thread-safe and cheap. The multi-tenant front end hooks per-tenant
    /// SLO accounting here. Null disables.
    std::function<void(const Response&)> observer;
    /// NDJSON access log (one record per finished request, including
    /// rejections); "" disables.
    std::string access_log_path;
  };

  struct Counters {
    Count submitted = 0;
    Count completed = 0;         ///< kOk responses
    Count failed = 0;            ///< kFailed responses
    Count rejected = 0;          ///< kRejected (admission / watchdog failover)
    Count shutdown_aborted = 0;  ///< kShutdown responses
    Count deadline_expired = 0;  ///< kDeadline responses
    Count cancelled = 0;         ///< kCancelled responses
    Count batch_followers = 0;   ///< requests served as batch followers
    Count aged_promotions = 0;   ///< pickups won via priority aging
    Count worker_stalls = 0;     ///< stall episodes the watchdog flagged
    Count watchdog_failovers = 0;  ///< queue failovers (all workers stalled)
    std::size_t queue_high_water = 0;
  };

  /// What drain(timeout) did. Every queued request still reaches exactly
  /// one terminal outcome: drained normally (kOk/kFailed/...) or hard-
  /// failed with kShutdown when the timeout expired.
  struct DrainReport {
    bool completed = false;     ///< queue + in-flight emptied in time
    Count hard_failed = 0;      ///< queued requests failed with kShutdown
    double waited_seconds = 0;  ///< host time drain() actually waited
  };

  explicit Service(const Config& config);
  ~Service();  ///< calls shutdown()

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admits (or rejects) the request; the future is fulfilled when the
  /// request finishes. Rejection fulfills it immediately with kRejected /
  /// kShutdown / kDeadline and a reason in Response::detail — submit never
  /// throws on load.
  std::future<Response> submit(Request request) override;

  /// Graceful lifecycle: stops admission (subsequent submits get
  /// kShutdown), lets the workers finish in-flight and queued work for up
  /// to `timeout_seconds` (host time), then hard-fails whatever is still
  /// queued with kShutdown and flags in-flight requests to abandon at
  /// their next phase boundary. Returns within the timeout (plus
  /// bookkeeping) — it never joins the worker pool; shutdown() (or the
  /// destructor) does that. After a drain the queue is empty: zero leaked
  /// entries, every request with exactly one terminal outcome.
  DrainReport drain(double timeout_seconds);

  /// Drains the queue, stops the workers and the watchdog, and fails
  /// anything still queued (workers == 0, or a preceding drain timeout)
  /// with kShutdown. Idempotent; called by the destructor.
  void shutdown();

  /// Requests currently sitting in the admission queues (diagnostics; the
  /// chaos invariant checks require 0 after drain()).
  std::size_t queued_depth() const;
  /// Requests currently being processed by workers.
  int in_flight() const;

  const Config& config() const { return config_; }
  PlanCache::Stats cache_stats() const { return cache_.stats(); }
  Counters counters() const;

  /// Copy of the per-phase latency sample ("queue", "plan", "scatter",
  /// "factor", "invert", "total") over completed requests.
  SampleStats latency(const std::string& phase) const;

  /// Effective compute threads per request after resolving Config's <= 0
  /// sentinel and clamping (what the workers actually use).
  int compute_threads() const { return compute_threads_; }

  /// Accumulated task-graph instrumentation over all parallel numeric runs
  /// (two graphs per request: factorization + inversion sweep); all-zero
  /// when compute_threads() == 1.
  numeric::TaskGraphStats task_graph_stats() const;

  /// Folds service counters, phase-latency histograms, and the cache
  /// counters into `registry`. MetricsRegistry is not thread-safe — call
  /// from one thread, after shutdown() or between request waves.
  void fold_metrics(obs::MetricsRegistry& registry) const;

 private:
  struct Pending {
    Request request;
    Fingerprint fp;
    std::promise<Response> promise;
    WallTimer queued;          ///< started at admission
    double queue_seconds = 0;  ///< fixed at worker pickup
    double deadline = kNoDeadline;  ///< absolute, on the deadline clock
  };

  /// Per-worker state the watchdog scans. busy_since is host uptime
  /// seconds (-1 = idle); episode increments at every batch pickup so the
  /// watchdog counts each stall once; cancel is set by the watchdog and
  /// observed at the worker's next phase boundary.
  struct WorkerState {
    std::atomic<double> busy_since{-1.0};
    std::atomic<std::uint64_t> episode{0};
    std::atomic<bool> cancel{false};
  };

  /// Internal unwind used to abort a request mid-pipeline (e.g. from the
  /// scatter callback inside factor()) with a specific terminal status.
  struct AbortRequest {
    Status status;
    std::string detail;
  };

  void worker_loop(int worker);
  void watchdog_loop();
  /// Fails every queued request with kRejected — the all-workers-stalled
  /// escape hatch so clients are told to retry instead of hanging.
  void watchdog_failover();
  /// Deadline-clock reading (Config::clock or host uptime).
  double deadline_now() const;
  /// Terminal status forced on `pending` right now (drain hard-stop,
  /// watchdog cancel of this worker, client cancel, expired deadline), or
  /// nullopt to keep going. Called at every phase boundary.
  std::optional<AbortRequest> forced_abort(const Pending& pending,
                                           int worker) const;
  /// Runs Config::phase_hook (if any), then forced_abort.
  std::optional<AbortRequest> phase_boundary(const char* phase,
                                             const Pending& pending,
                                             int worker) const;
  /// Response skeleton for a request that terminates without numeric work.
  Response abort_response(const Pending& pending, int worker, Status status,
                          std::string detail) const;
  /// Pops a leader plus same-fingerprint followers; caller holds mutex_.
  /// Applies priority aging (Config::age_promote_seconds) to the leader's
  /// queue-class choice.
  std::vector<Pending> pop_batch_locked();
  /// `compute_pool` is the worker's dedicated numeric pool (null when
  /// compute_threads_ == 1 -> sequential kernels).
  void process(Pending pending, int worker, bool batched,
               std::shared_ptr<const ServePlan> plan, bool cache_hit,
               PlanSource plan_source, double plan_seconds,
               parallel::ThreadPool* compute_pool);
  void finish(Pending& pending, Response response);
  void log_response(const Response& response);
  std::size_t queued_count_locked() const;
  /// Moves every queued request out (caller fails them); holds mutex_.
  std::vector<Pending> take_queued_locked();

  Config config_;
  int compute_threads_ = 1;  ///< resolved + clamped at construction
  PlanCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable drained_;  ///< queue empty && in-flight == 0
  std::deque<Pending> queues_[kPriorityCount];
  bool closed_ = false;
  bool draining_ = false;  ///< admission stopped (drain() or shutdown())
  int in_flight_ = 0;      ///< requests popped but not yet finished
  std::atomic<bool> hard_stop_{false};  ///< drain timeout: workers bail out

  mutable std::mutex stats_mutex_;
  Counters counters_;
  SampleStats queue_s_, plan_s_, scatter_s_, factor_s_, invert_s_, total_s_;
  numeric::TaskGraphStats task_stats_;

  std::mutex log_mutex_;
  obs::RecordWriter access_log_;
  WallTimer uptime_;

  std::vector<WorkerState> worker_states_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_wake_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;  ///< running iff stall_budget > 0 && workers > 0

  std::optional<parallel::ThreadPool> pool_;  ///< constructed last
};

}  // namespace psi::serve
