/// \file service.hpp
/// \brief psi::serve — an in-process selected-inversion service.
///
/// Requests carry a structurally symmetric matrix; responses carry the
/// selected inverse (on demand) plus a content digest and a full timing
/// decomposition. The service runs:
///
///  * an admission queue — bounded, two priority classes, reject-with-reason
///    backpressure when full;
///  * a structure-fingerprint plan cache (plan_cache.hpp) — requests whose
///    pattern+configuration were seen before skip ordering/symbolic/plan
///    construction and go straight to permute + factor + inversion;
///  * a batcher — when a worker pops a request it also claims queued
///    requests of the same fingerprint (same priority class, up to
///    max_batch), so one plan resolution serves the whole group;
///  * a deterministic worker pool — N workers over parallel::ThreadPool.
///
/// Determinism discipline: a response's numeric content depends ONLY on
/// (request matrix, service PlanConfig). Plans are pure functions of the
/// pattern+configuration, the cached-plan numeric path is the same code as
/// the cold path (scatter the request values through the plan's precomputed
/// load map, factor over the cached block structure, selected inversion —
/// Algorithm 1 — over the factor), and workers never share mutable numeric
/// state — so results are bitwise identical for any worker count, arrival
/// order, batching, or cache history. The numeric phase itself may be
/// task-parallel (Config::compute_threads > 1 drives factor_parallel /
/// selinv_parallel on a per-worker compute pool), and stays inside the same
/// contract: canonical-order reductions make the parallel kernels bitwise
/// identical to the sequential ones, so compute_threads never changes a
/// digest either. Tests enforce all of this via the response digest.
///
/// The distributed side of the paper is served from the plan cache: the
/// plan build runs the DES once in kTrace mode (message counts and timing
/// are value-free) and every request reports that structure's simulated
/// makespan without re-simulating. This is what makes warm requests cheap —
/// they skip ordering, symbolic analysis, tree construction, AND the
/// discrete-event schedule simulation, leaving only permute + factor +
/// sequential inversion.
#pragma once

#include <cstdint>
#include <deque>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "numeric/block_matrix.hpp"
#include "numeric/task_graph.hpp"
#include "obs/metrics.hpp"
#include "obs/record.hpp"
#include "serve/plan_cache.hpp"

namespace psi::serve {

enum class Priority { kInteractive = 0, kBatch = 1 };
inline constexpr int kPriorityCount = 2;

enum class Status {
  kOk,        ///< selected inversion completed
  kRejected,  ///< admission refused (queue full); detail names the reason
  kFailed,    ///< pipeline error (invalid matrix, zero pivot, ...)
  kShutdown,  ///< still queued when the service shut down
};

const char* priority_name(Priority priority);
const char* status_name(Status status);

struct Request {
  std::string id;  ///< client-chosen tag for logs (may be empty)
  /// Tenant this request bills against. The multi-tenant front end
  /// (store::ShardedService) keys quotas and SLO metrics on it; the service
  /// itself only carries it through to the response/access log. "" is the
  /// anonymous tenant.
  std::string tenant;
  SparseMatrix matrix;
  Priority priority = Priority::kBatch;
  /// Ship the selected inverse in the response (Response::ainv). Off by
  /// default: the digest alone identifies the result bitwise.
  bool return_ainv = false;
};

struct Response {
  std::string id;
  std::string tenant;
  Priority priority = Priority::kBatch;
  Status status = Status::kFailed;
  std::string detail;       ///< reject reason / error message ("" when kOk)
  std::string fingerprint;  ///< structure fingerprint, 32 hex digits
  bool cache_hit = false;   ///< plan served from cache
  /// Where the plan came from: memory (cache hit / batch follower), disk
  /// (plan-store load), or a fresh build. Never affects the digest.
  PlanSource plan_source = PlanSource::kBuilt;
  bool batched = false;     ///< follower of a same-fingerprint batch
  int shard = 0;            ///< admission shard (Config::shard label)
  int worker = -1;
  /// Deterministic content hash of the selected inverse (all block bytes in
  /// supernode order): bitwise-equal results <=> equal digests.
  std::string digest;

  double queue_seconds = 0.0;    ///< admission -> worker pickup
  double plan_seconds = 0.0;     ///< plan resolution (cache hit: ~0)
  double scatter_seconds = 0.0;  ///< value scatter through the plan slot map
  double factor_seconds = 0.0;   ///< numeric factorization (scatter excluded)
  double invert_seconds = 0.0;   ///< selected inversion sweep
  double total_seconds = 0.0;    ///< admission -> response
  /// Simulated distributed makespan for this structure — the plan's cached
  /// kTrace result (ServePlan::trace_makespan), not a per-request run.
  double sim_makespan = 0.0;

  /// Set only when Request::return_ainv: the selected inverse, plus the
  /// plan that owns the block structure `ainv` points into (kept alive here
  /// so cache eviction cannot dangle it).
  std::shared_ptr<const BlockMatrix> ainv;
  std::shared_ptr<const ServePlan> plan;

  bool ok() const { return status == Status::kOk; }
};

/// Bitwise content digest of a block matrix (diag/lpanel/upanel bytes in
/// supernode order); exposed for tests comparing cached vs fresh results.
std::string ainv_digest(const BlockMatrix& ainv);

/// Anything requests can be submitted to: the Service itself, or a fronting
/// layer (store::ShardedService) that routes/gates before delegating.
/// Workload drivers run against this interface so every harness works with
/// both.
class RequestSink {
 public:
  virtual ~RequestSink() = default;
  virtual std::future<Response> submit(Request request) = 0;
};

/// Queue-class selection with SLO-aware priority aging. `head_age_seconds`
/// holds the queue-head wait time per priority class, -1 for an empty
/// class. Normally the highest-priority (lowest-index) nonempty class wins;
/// when `age_promote_seconds` > 0 and any queue head has waited beyond it,
/// the OLDEST such head wins instead — so batch traffic keeps flowing under
/// a sustained interactive storm (no starvation), while fresh batch work
/// still always yields to interactive work. Returns -1 if every class is
/// empty. Pure function, exposed for deterministic tests.
int select_queue_class(const double* head_age_seconds, int classes,
                       double age_promote_seconds);

class Service : public RequestSink {
 public:
  struct Config {
    /// Worker threads. 0 = admit-only: requests queue but nothing drains
    /// until shutdown() fails them with kShutdown (deterministic
    /// backpressure testing).
    int workers = 2;
    /// Compute threads per in-flight request (task-parallel numeric phase).
    /// 1 = the sequential factor/selinv kernels, untouched. > 1 = each
    /// service worker drives factor_parallel()/selinv_parallel() with a
    /// dedicated (compute_threads - 1)-worker pool; the response stays
    /// bitwise identical either way (canonical-order reductions), so this
    /// only moves latency, never content. <= 0 resolves
    /// parallel::compute_threads() (the PSI_SERVE_COMPUTE_THREADS
    /// environment knob); values above parallel::kMaxComputeThreads clamp.
    int compute_threads = 1;
    std::size_t queue_capacity = 64;  ///< both priority classes combined
    int max_batch = 8;                ///< leader + followers per pickup
    /// Priority aging threshold (seconds): a queued request older than this
    /// is served ahead of younger higher-priority work (see
    /// select_queue_class). 0 disables aging (strict priority).
    double age_promote_seconds = 0.0;
    /// Shard label this service instance carries (store::ShardedService
    /// numbers its shards; standalone services report 0). Responses and
    /// access-log records echo it.
    int shard = 0;
    /// Grid / trees / symmetry / analysis / simulated machine — everything
    /// plans (and their cached kTrace schedule runs) are built from.
    PlanConfig plan;
    PlanCache::Config cache;  ///< includes the optional PlanStorage backend
    /// Called with every finished response (after counters/log, before the
    /// submitter's future is fulfilled), from the finishing thread — must be
    /// thread-safe and cheap. The multi-tenant front end hooks per-tenant
    /// SLO accounting here. Null disables.
    std::function<void(const Response&)> observer;
    /// NDJSON access log (one record per finished request, including
    /// rejections); "" disables.
    std::string access_log_path;
  };

  struct Counters {
    Count submitted = 0;
    Count completed = 0;         ///< kOk responses
    Count failed = 0;            ///< kFailed responses
    Count rejected = 0;          ///< kRejected at admission
    Count shutdown_aborted = 0;  ///< kShutdown responses
    Count batch_followers = 0;   ///< requests served as batch followers
    Count aged_promotions = 0;   ///< pickups won via priority aging
    std::size_t queue_high_water = 0;
  };

  explicit Service(const Config& config);
  ~Service();  ///< calls shutdown()

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admits (or rejects) the request; the future is fulfilled when the
  /// request finishes. Rejection fulfills it immediately with kRejected /
  /// kShutdown and a reason in Response::detail — submit never throws on
  /// load.
  std::future<Response> submit(Request request) override;

  /// Drains the queue, stops the workers, and fails anything still queued
  /// (workers == 0) with kShutdown. Idempotent; called by the destructor.
  void shutdown();

  const Config& config() const { return config_; }
  PlanCache::Stats cache_stats() const { return cache_.stats(); }
  Counters counters() const;

  /// Copy of the per-phase latency sample ("queue", "plan", "scatter",
  /// "factor", "invert", "total") over completed requests.
  SampleStats latency(const std::string& phase) const;

  /// Effective compute threads per request after resolving Config's <= 0
  /// sentinel and clamping (what the workers actually use).
  int compute_threads() const { return compute_threads_; }

  /// Accumulated task-graph instrumentation over all parallel numeric runs
  /// (two graphs per request: factorization + inversion sweep); all-zero
  /// when compute_threads() == 1.
  numeric::TaskGraphStats task_graph_stats() const;

  /// Folds service counters, phase-latency histograms, and the cache
  /// counters into `registry`. MetricsRegistry is not thread-safe — call
  /// from one thread, after shutdown() or between request waves.
  void fold_metrics(obs::MetricsRegistry& registry) const;

 private:
  struct Pending {
    Request request;
    Fingerprint fp;
    std::promise<Response> promise;
    WallTimer queued;          ///< started at admission
    double queue_seconds = 0;  ///< fixed at worker pickup
  };

  void worker_loop(int worker);
  /// Pops a leader plus same-fingerprint followers; caller holds mutex_.
  /// Applies priority aging (Config::age_promote_seconds) to the leader's
  /// queue-class choice.
  std::vector<Pending> pop_batch_locked();
  /// `compute_pool` is the worker's dedicated numeric pool (null when
  /// compute_threads_ == 1 -> sequential kernels).
  void process(Pending pending, int worker, bool batched,
               std::shared_ptr<const ServePlan> plan, bool cache_hit,
               PlanSource plan_source, double plan_seconds,
               parallel::ThreadPool* compute_pool);
  void finish(Pending& pending, Response response);
  void log_response(const Response& response);
  std::size_t queued_count_locked() const;

  Config config_;
  int compute_threads_ = 1;  ///< resolved + clamped at construction
  PlanCache cache_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Pending> queues_[kPriorityCount];
  bool closed_ = false;

  mutable std::mutex stats_mutex_;
  Counters counters_;
  SampleStats queue_s_, plan_s_, scatter_s_, factor_s_, invert_s_, total_s_;
  numeric::TaskGraphStats task_stats_;

  std::mutex log_mutex_;
  obs::RecordWriter access_log_;
  WallTimer uptime_;

  std::optional<parallel::ThreadPool> pool_;  ///< constructed last
};

}  // namespace psi::serve
