#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <utility>

#include "common/check.hpp"
#include "numeric/selinv.hpp"
#include "numeric/supernodal_lu.hpp"

namespace psi::serve {

const char* priority_name(Priority priority) {
  switch (priority) {
    case Priority::kInteractive: return "interactive";
    case Priority::kBatch: return "batch";
  }
  return "?";
}

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kFailed: return "failed";
    case Status::kShutdown: return "shutdown";
    case Status::kDeadline: return "deadline";
    case Status::kCancelled: return "cancelled";
  }
  return "?";
}

std::string ainv_digest(const BlockMatrix& ainv) {
  FingerprintHasher hasher;
  const BlockStructure& bs = ainv.structure();
  hasher.mix(static_cast<std::uint64_t>(bs.supernode_count()));
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    const DenseMatrix& d = ainv.diag(k);
    const DenseMatrix& l = ainv.lpanel(k);
    const DenseMatrix& u = ainv.upanel(k);
    hasher.mix_bytes(d.data(), static_cast<std::size_t>(d.rows()) *
                                   static_cast<std::size_t>(d.cols()) *
                                   sizeof(double));
    hasher.mix_bytes(l.data(), static_cast<std::size_t>(l.rows()) *
                                   static_cast<std::size_t>(l.cols()) *
                                   sizeof(double));
    hasher.mix_bytes(u.data(), static_cast<std::size_t>(u.rows()) *
                                   static_cast<std::size_t>(u.cols()) *
                                   sizeof(double));
  }
  return hasher.finish().hex();
}

Service::Service(const Config& config)
    : config_(config),
      cache_(config.cache),
      worker_states_(static_cast<std::size_t>(std::max(config.workers, 0))) {
  PSI_CHECK_MSG(config_.workers >= 0,
                "workers must be >= 0, got " << config_.workers);
  PSI_CHECK_MSG(config_.queue_capacity > 0, "queue_capacity must be > 0");
  PSI_CHECK_MSG(config_.max_batch >= 1,
                "max_batch must be >= 1, got " << config_.max_batch);
  PSI_CHECK_MSG(std::isfinite(config_.stall_budget_seconds) &&
                    config_.stall_budget_seconds >= 0.0,
                "stall_budget_seconds must be finite and >= 0");
  compute_threads_ = config_.compute_threads <= 0
                         ? parallel::compute_threads()
                         : std::min(config_.compute_threads,
                                    parallel::kMaxComputeThreads);
  if (!config_.access_log_path.empty())
    access_log_.open_ndjson(config_.access_log_path);
  if (config_.stall_budget_seconds > 0.0 && config_.workers > 0)
    watchdog_ = std::thread([this] { watchdog_loop(); });
  if (config_.workers > 0) {
    pool_.emplace(config_.workers);
    for (int w = 0; w < config_.workers; ++w)
      pool_->submit([this, w] { worker_loop(w); });
  }
}

Service::~Service() { shutdown(); }

double Service::deadline_now() const {
  return config_.clock ? config_.clock() : uptime_.seconds();
}

int select_queue_class(const double* head_age_seconds, int classes,
                       double age_promote_seconds) {
  int pick = -1;
  for (int c = 0; c < classes; ++c)
    if (head_age_seconds[c] >= 0.0) {
      pick = c;
      break;
    }
  if (pick < 0 || age_promote_seconds <= 0.0) return pick;
  // Aging override: among ALL queue heads older than the threshold, the
  // oldest wins — an interactive head past the threshold still beats a
  // younger starving batch head, and vice versa.
  int oldest = -1;
  for (int c = 0; c < classes; ++c)
    if (head_age_seconds[c] > age_promote_seconds &&
        (oldest < 0 || head_age_seconds[c] > head_age_seconds[oldest]))
      oldest = c;
  return oldest >= 0 ? oldest : pick;
}

std::future<Response> Service::submit(Request request) {
  Pending pending;
  pending.promise = std::promise<Response>();
  std::future<Response> future = pending.promise.get_future();

  Response early;
  early.id = request.id;
  early.tenant = request.tenant;
  early.shard = config_.shard;
  early.priority = request.priority;
  try {
    PSI_CHECK_MSG(!std::isnan(request.timeout_seconds),
                  "timeout_seconds must not be NaN");
    request.matrix.validate();
    pending.fp = plan_fingerprint(request.matrix.pattern, config_.plan);
    early.fingerprint = pending.fp.hex();
  } catch (const std::exception& e) {
    early.status = Status::kFailed;
    early.detail = e.what();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counters_.submitted;
      ++counters_.failed;
    }
    log_response(early);
    pending.promise.set_value(std::move(early));
    return future;
  }
  if (request.timeout_seconds <= 0.0) {
    // Already-expired budget: reject at admission without a queue slot.
    early.status = Status::kDeadline;
    early.detail = "deadline expired before admission (timeout " +
                   std::to_string(request.timeout_seconds) + " s)";
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counters_.submitted;
      ++counters_.deadline_expired;
    }
    log_response(early);
    pending.promise.set_value(std::move(early));
    return future;
  }
  if (request.timeout_seconds < kNoDeadline)
    pending.deadline = deadline_now() + request.timeout_seconds;

  pending.request = std::move(request);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++counters_.submitted;
    if (closed_ || draining_) {
      early.status = Status::kShutdown;
      early.detail = closed_ ? "service is shut down"
                             : "service is draining; admission stopped";
      ++counters_.shutdown_aborted;
    } else if (queued_count_locked() >= config_.queue_capacity) {
      early.status = Status::kRejected;
      early.detail = "queue full (capacity " +
                     std::to_string(config_.queue_capacity) + ")";
      ++counters_.rejected;
    } else {
      auto& q = queues_[static_cast<int>(pending.request.priority)];
      q.push_back(std::move(pending));
      const std::size_t depth = queued_count_locked();
      if (depth > counters_.queue_high_water)
        counters_.queue_high_water = depth;
      lock.unlock();
      wake_.notify_one();
      return future;
    }
  }
  log_response(early);
  pending.promise.set_value(std::move(early));
  return future;
}

std::size_t Service::queued_count_locked() const {
  std::size_t total = 0;
  for (const auto& q : queues_) total += q.size();
  return total;
}

std::vector<Service::Pending> Service::take_queued_locked() {
  std::vector<Pending> taken;
  for (auto& q : queues_) {
    for (Pending& p : q) taken.push_back(std::move(p));
    q.clear();
  }
  return taken;
}

std::vector<Service::Pending> Service::pop_batch_locked() {
  std::vector<Pending> batch;
  double head_ages[kPriorityCount];
  int first_nonempty = -1;
  for (int c = 0; c < kPriorityCount; ++c) {
    head_ages[c] = queues_[c].empty() ? -1.0 : queues_[c].front().queued.seconds();
    if (first_nonempty < 0 && !queues_[c].empty()) first_nonempty = c;
  }
  const int pick = select_queue_class(head_ages, kPriorityCount,
                                      config_.age_promote_seconds);
  if (pick < 0) return batch;
  if (pick != first_nonempty) {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++counters_.aged_promotions;
  }
  auto& q = queues_[pick];
  batch.push_back(std::move(q.front()));
  q.pop_front();
  const Fingerprint fp = batch.front().fp;
  for (auto it = q.begin();
       it != q.end() && static_cast<int>(batch.size()) < config_.max_batch;) {
    if (it->fp == fp) {
      batch.push_back(std::move(*it));
      it = q.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

std::optional<Service::AbortRequest> Service::forced_abort(
    const Pending& pending, int worker) const {
  if (hard_stop_.load(std::memory_order_acquire))
    return AbortRequest{Status::kShutdown,
                        "drain timeout: request abandoned at phase boundary"};
  if (worker >= 0 &&
      worker < static_cast<int>(worker_states_.size()) &&
      worker_states_[static_cast<std::size_t>(worker)].cancel.load(
          std::memory_order_acquire))
    return AbortRequest{Status::kCancelled,
                        "watchdog: worker " + std::to_string(worker) +
                            " stalled past budget; request abandoned"};
  if (pending.request.cancel &&
      pending.request.cancel->load(std::memory_order_acquire))
    return AbortRequest{Status::kCancelled, "cancelled by client token"};
  if (pending.deadline < kNoDeadline && deadline_now() > pending.deadline)
    return AbortRequest{Status::kDeadline,
                        "deadline expired (budget " +
                            std::to_string(pending.request.timeout_seconds) +
                            " s)"};
  return std::nullopt;
}

std::optional<Service::AbortRequest> Service::phase_boundary(
    const char* phase, const Pending& pending, int worker) const {
  if (config_.phase_hook) {
    PhaseEvent event{phase, worker, pending.request.id,
                     pending.request.tenant};
    config_.phase_hook(event);
  }
  return forced_abort(pending, worker);
}

Response Service::abort_response(const Pending& pending, int worker,
                                 Status status, std::string detail) const {
  Response r;
  r.id = pending.request.id;
  r.tenant = pending.request.tenant;
  r.shard = config_.shard;
  r.priority = pending.request.priority;
  r.status = status;
  r.detail = std::move(detail);
  r.fingerprint = pending.fp.hex();
  r.worker = worker;
  r.queue_seconds = pending.queue_seconds;
  r.total_seconds = pending.queued.seconds();
  return r;
}

void Service::worker_loop(int worker) {
  // Dedicated numeric pool: the worker thread itself drains the task graphs
  // too, so compute_threads_ - 1 extra threads give compute_threads_ total.
  // Per-worker (not shared) so concurrent requests never contend for
  // compute slots and latency stays independent of sibling traffic.
  std::optional<parallel::ThreadPool> compute_pool;
  if (compute_threads_ > 1) compute_pool.emplace(compute_threads_ - 1);
  parallel::ThreadPool* compute = compute_pool ? &*compute_pool : nullptr;
  WorkerState& state = worker_states_[static_cast<std::size_t>(worker)];
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock,
                 [this] { return closed_ || queued_count_locked() > 0; });
      if (queued_count_locked() == 0) return;  // closed_ && drained
      batch = pop_batch_locked();
      in_flight_ += static_cast<int>(batch.size());
    }
    for (Pending& p : batch) p.queue_seconds = p.queued.seconds();

    // One stall episode per pickup: the watchdog counts a worker at most
    // once per episode, and a leftover cancel flag from a previous stall
    // must not leak into fresh work.
    state.cancel.store(false, std::memory_order_release);
    state.episode.fetch_add(1, std::memory_order_acq_rel);
    state.busy_since.store(uptime_.seconds(), std::memory_order_release);

    // Pickup boundary: lazy deadline expiry for queued requests, plus
    // client cancellation and drain hard-stop, all before any plan work.
    std::vector<Pending> live;
    live.reserve(batch.size());
    for (Pending& p : batch) {
      if (auto abort = phase_boundary("pickup", p, worker)) {
        finish(p, abort_response(p, worker, abort->status,
                                 std::move(abort->detail)));
      } else {
        live.push_back(std::move(p));
      }
    }
    const int picked = static_cast<int>(batch.size());
    if (live.empty()) {
      state.busy_since.store(-1.0, std::memory_order_release);
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_ -= picked;
      if (queued_count_locked() == 0 && in_flight_ == 0)
        drained_.notify_all();
      continue;
    }

    Pending& leader = live.front();
    std::shared_ptr<const ServePlan> plan;
    bool hit = false;
    PlanSource source = PlanSource::kBuilt;
    WallTimer plan_timer;
    try {
      plan = cache_.get_or_build(
          leader.fp,
          [&] {
            if (config_.phase_hook) {
              PhaseEvent event{"build", worker, leader.request.id,
                               leader.request.tenant};
              config_.phase_hook(event);
            }
            return build_serve_plan(leader.request.matrix, config_.plan);
          },
          &hit, &source);
    } catch (const std::exception& e) {
      const std::string detail = e.what();
      for (std::size_t i = 0; i < live.size(); ++i) {
        Response r = abort_response(live[i], worker, Status::kFailed, detail);
        r.batched = i > 0;
        finish(live[i], std::move(r));
      }
      state.busy_since.store(-1.0, std::memory_order_release);
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_ -= picked;
      if (queued_count_locked() == 0 && in_flight_ == 0)
        drained_.notify_all();
      continue;
    }
    const double plan_seconds = plan_timer.seconds();

    process(std::move(live.front()), worker, /*batched=*/false, plan, hit,
            source, plan_seconds, compute);
    if (live.size() > 1)
      cache_.record_external_hits(static_cast<Count>(live.size() - 1));
    for (std::size_t i = 1; i < live.size(); ++i)
      process(std::move(live[i]), worker, /*batched=*/true, plan,
              /*cache_hit=*/true, PlanSource::kMemory, /*plan_seconds=*/0.0,
              compute);

    state.busy_since.store(-1.0, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_ -= picked;
      if (queued_count_locked() == 0 && in_flight_ == 0)
        drained_.notify_all();
    }
  }
}

void Service::process(Pending pending, int worker, bool batched,
                      std::shared_ptr<const ServePlan> plan, bool cache_hit,
                      PlanSource plan_source, double plan_seconds,
                      parallel::ThreadPool* compute_pool) {
  Response r;
  r.id = pending.request.id;
  r.tenant = pending.request.tenant;
  r.shard = config_.shard;
  r.priority = pending.request.priority;
  r.fingerprint = pending.fp.hex();
  r.cache_hit = cache_hit;
  r.plan_source = plan_source;
  r.batched = batched;
  r.worker = worker;
  r.queue_seconds = pending.queue_seconds;
  r.plan_seconds = plan_seconds;
  // The plan build (single-flight, possibly long) sits between the pickup
  // boundary and here — recheck before committing a worker to the numeric
  // phase, so a deadline that expired during the build aborts now.
  if (auto abort = forced_abort(pending, worker)) {
    r.status = abort->status;
    r.detail = std::move(abort->detail);
    r.total_seconds = pending.queued.seconds();
    finish(pending, std::move(r));
    return;
  }
  try {
    numeric::ParallelOptions opts;
    opts.threads = compute_threads_;
    opts.pool = compute_pool;
    numeric::TaskGraphStats stats;
    opts.stats = &stats;
    const bool parallel_numeric = compute_pool != nullptr;

    WallTimer timer;
    double scatter_seconds = 0.0;
    const auto load = [&](BlockMatrix& m) {
      WallTimer scatter_timer;
      plan->scatter_values(pending.request.matrix.values, m);
      scatter_seconds = scatter_timer.seconds();
      // Scatter/factor boundary: load() runs on this thread before the
      // elimination starts, so throwing here unwinds factor cleanly.
      if (auto abort = phase_boundary("scatter", pending, worker))
        throw *abort;
    };
    SupernodalLU lu =
        parallel_numeric
            ? SupernodalLU::factor_parallel(plan->analysis.blocks, load, opts)
            : SupernodalLU::factor(plan->analysis.blocks, load);
    r.scatter_seconds = scatter_seconds;
    r.factor_seconds = timer.seconds() - scatter_seconds;
    if (auto abort = phase_boundary("factor", pending, worker)) throw *abort;
    timer.reset();
    BlockMatrix ainv =
        parallel_numeric ? selinv_parallel(lu, opts) : selected_inversion(lu);
    r.invert_seconds = timer.seconds();
    if (parallel_numeric) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      task_stats_.accumulate(stats);
    }
    r.sim_makespan = plan->trace_makespan;
    r.digest = ainv_digest(ainv);
    if (pending.request.return_ainv) {
      r.ainv = std::make_shared<const BlockMatrix>(std::move(ainv));
      r.plan = plan;
    }
    r.status = Status::kOk;
  } catch (const AbortRequest& abort) {
    r.status = abort.status;
    r.detail = abort.detail;
    r.digest.clear();
  } catch (const std::exception& e) {
    r.status = Status::kFailed;
    r.detail = e.what();
  }
  r.total_seconds = pending.queued.seconds();
  finish(pending, std::move(r));
}

void Service::finish(Pending& pending, Response response) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    switch (response.status) {
      case Status::kOk: ++counters_.completed; break;
      case Status::kFailed: ++counters_.failed; break;
      case Status::kRejected: ++counters_.rejected; break;
      case Status::kShutdown: ++counters_.shutdown_aborted; break;
      case Status::kDeadline: ++counters_.deadline_expired; break;
      case Status::kCancelled: ++counters_.cancelled; break;
    }
    if (response.batched) ++counters_.batch_followers;
    if (response.ok()) {
      queue_s_.add(response.queue_seconds);
      plan_s_.add(response.plan_seconds);
      scatter_s_.add(response.scatter_seconds);
      factor_s_.add(response.factor_seconds);
      invert_s_.add(response.invert_seconds);
      total_s_.add(response.total_seconds);
    }
  }
  log_response(response);
  if (config_.observer) config_.observer(response);
  pending.promise.set_value(std::move(response));
}

void Service::log_response(const Response& response) {
  std::lock_guard<std::mutex> lock(log_mutex_);
  if (!access_log_.active()) return;
  access_log_.write(obs::Record()
                        .add("ts_s", uptime_.seconds())
                        .add("id", response.id)
                        .add("tenant", response.tenant)
                        .add("priority", priority_name(response.priority))
                        .add("status", status_name(response.status))
                        .add("fingerprint", response.fingerprint)
                        .add("cache_hit", response.cache_hit)
                        .add("plan_source", plan_source_name(response.plan_source))
                        .add("batched", response.batched)
                        .add("shard", response.shard)
                        .add("worker", response.worker)
                        .add("queue_s", response.queue_seconds)
                        .add("plan_s", response.plan_seconds)
                        .add("scatter_s", response.scatter_seconds)
                        .add("factor_s", response.factor_seconds)
                        .add("invert_s", response.invert_seconds)
                        .add("total_s", response.total_seconds)
                        .add("sim_makespan_s", response.sim_makespan)
                        .add("digest", response.digest)
                        .add("detail", response.detail));
}

void Service::watchdog_loop() {
  const double budget = config_.stall_budget_seconds;
  double poll = config_.watchdog_poll_seconds;
  if (poll <= 0.0) poll = std::clamp(budget / 4.0, 1e-3, 1.0);
  std::vector<std::uint64_t> flagged(worker_states_.size(), 0);
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  for (;;) {
    if (watchdog_wake_.wait_for(lock, std::chrono::duration<double>(poll),
                                [this] { return watchdog_stop_; }))
      return;
    const double now = uptime_.seconds();
    int stalled = 0;
    for (std::size_t w = 0; w < worker_states_.size(); ++w) {
      WorkerState& state = worker_states_[w];
      const double since = state.busy_since.load(std::memory_order_acquire);
      if (since < 0.0 || now - since <= budget) continue;
      ++stalled;
      const std::uint64_t episode =
          state.episode.load(std::memory_order_acquire);
      if (flagged[w] == episode) continue;  // this stall already counted
      flagged[w] = episode;
      state.cancel.store(true, std::memory_order_release);
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++counters_.worker_stalls;
    }
    // Every worker wedged: nobody will dequeue, so fail the queue over to
    // the clients (kRejected = "retry elsewhere/later") instead of letting
    // queued requests wait on threads that may never come back.
    if (stalled == static_cast<int>(worker_states_.size()) && stalled > 0)
      watchdog_failover();
  }
}

void Service::watchdog_failover() {
  std::vector<Pending> taken;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    taken = take_queued_locked();
  }
  if (taken.empty()) return;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++counters_.watchdog_failovers;
  }
  for (Pending& p : taken) {
    p.queue_seconds = p.queued.seconds();
    finish(p, abort_response(p, /*worker=*/-1, Status::kRejected,
                             "watchdog failover: all workers stalled past "
                             "budget; retry"));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (queued_count_locked() == 0 && in_flight_ == 0) drained_.notify_all();
}

Service::DrainReport Service::drain(double timeout_seconds) {
  PSI_CHECK_MSG(timeout_seconds >= 0.0 && !std::isnan(timeout_seconds),
                "drain timeout must be >= 0, got " << timeout_seconds);
  WallTimer timer;
  DrainReport report;
  std::vector<Pending> leftovers;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
    const auto empty = [this] {
      return queued_count_locked() == 0 && in_flight_ == 0;
    };
    bool drained = empty();
    if (!drained && config_.workers > 0 && timeout_seconds > 0.0) {
      if (std::isfinite(timeout_seconds)) {
        drained = drained_.wait_for(
            lock, std::chrono::duration<double>(timeout_seconds), empty);
      } else {
        drained_.wait(lock, empty);
        drained = true;
      }
    }
    if (drained) {
      report.completed = true;
    } else {
      // Timeout (or no workers to ever drain it): hard-fail the queue now
      // and tell in-flight work to bail at its next phase boundary.
      hard_stop_.store(true, std::memory_order_release);
      leftovers = take_queued_locked();
      report.hard_failed = static_cast<Count>(leftovers.size());
    }
  }
  for (Pending& p : leftovers) {
    p.queue_seconds = p.queued.seconds();
    finish(p, abort_response(p, /*worker=*/-1, Status::kShutdown,
                             "drain timeout: request abandoned in queue"));
  }
  report.waited_seconds = timer.seconds();
  return report;
}

std::size_t Service::queued_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_count_locked();
}

int Service::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

void Service::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    draining_ = true;
  }
  wake_.notify_all();
  if (pool_) {
    pool_->wait();
    pool_.reset();
  }
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_wake_.notify_all();
    watchdog_.join();
  }
  std::vector<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftovers = take_queued_locked();
  }
  for (Pending& p : leftovers) {
    p.queue_seconds = p.queued.seconds();
    finish(p, abort_response(p, /*worker=*/-1, Status::kShutdown,
                             "service shut down before the request was "
                             "served"));
  }
  {
    std::lock_guard<std::mutex> lock(log_mutex_);
    if (access_log_.active()) access_log_.flush();
  }
}

Service::Counters Service::counters() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return counters_;
}

SampleStats Service::latency(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (phase == "queue") return queue_s_;
  if (phase == "plan") return plan_s_;
  if (phase == "scatter") return scatter_s_;
  if (phase == "factor") return factor_s_;
  if (phase == "invert") return invert_s_;
  if (phase == "total") return total_s_;
  PSI_CHECK_MSG(false, "unknown latency phase '" << phase << "'");
  return {};
}

numeric::TaskGraphStats Service::task_graph_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return task_stats_;
}

void Service::fold_metrics(obs::MetricsRegistry& registry) const {
  const Counters c = counters();
  registry.counter("serve_requests_submitted").add(c.submitted);
  registry.counter("serve_requests_completed").add(c.completed);
  registry.counter("serve_requests_failed").add(c.failed);
  registry.counter("serve_requests_rejected").add(c.rejected);
  registry.counter("serve_requests_shutdown").add(c.shutdown_aborted);
  registry.counter("serve_requests_deadline").add(c.deadline_expired);
  registry.counter("serve_requests_cancelled").add(c.cancelled);
  registry.counter("serve_batch_followers").add(c.batch_followers);
  registry.counter("serve_aged_promotions").add(c.aged_promotions);
  registry.counter("serve_worker_stalls").add(c.worker_stalls);
  registry.counter("serve_watchdog_failovers").add(c.watchdog_failovers);
  registry.gauge("serve_queue_high_water")
      .set(static_cast<double>(c.queue_high_water));

  static const std::vector<double> kBounds = {
      1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0};
  const std::pair<const char*, SampleStats> phases[] = {
      {"queue", latency("queue")},     {"plan", latency("plan")},
      {"scatter", latency("scatter")}, {"factor", latency("factor")},
      {"invert", latency("invert")},   {"total", latency("total")}};
  for (const auto& [name, sample] : phases) {
    obs::Histogram& h = registry.histogram(
        "serve_request_seconds", obs::Labels().phase(name), kBounds);
    for (double v : sample.values()) h.observe(v);
  }

  const numeric::TaskGraphStats ts = task_graph_stats();
  registry.gauge("serve_compute_threads")
      .set(static_cast<double>(compute_threads_));
  registry.counter("serve_taskgraph_tasks").add(ts.tasks);
  registry.counter("serve_taskgraph_edges").add(ts.edges);
  registry.gauge("serve_taskgraph_ready_high_water")
      .set(static_cast<double>(ts.ready_high_water));
  registry.gauge("serve_taskgraph_run_seconds").set(ts.run_seconds);

  cache_.fold_metrics(registry);
}

}  // namespace psi::serve
