#include "serve/workload.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <ostream>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "sparse/generators.hpp"

namespace psi::serve {

namespace {

/// Zipf(s) sample over [0, count) by inverse CDF on the cumulative weights.
int zipf_index(int count, double s, double u) {
  if (count <= 1) return 0;
  double total = 0.0;
  for (int i = 0; i < count; ++i) total += std::pow(1.0 / (i + 1), s);
  double acc = 0.0;
  for (int i = 0; i < count; ++i) {
    acc += std::pow(1.0 / (i + 1), s) / total;
    if (u < acc) return i;
  }
  return count - 1;
}

/// The catalog structure `structure` with values derived from `value_seed`.
Request catalog_request(const WorkloadOptions& options, int structure,
                        std::uint64_t value_seed, std::string id,
                        Priority priority) {
  GeneratedMatrix gen = laplacian2d(options.nx + structure, options.nx, 1);
  assign_dd_values(gen.matrix, value_seed, ValueKind::kSymmetric);
  Request request;
  request.id = std::move(id);
  request.matrix = std::move(gen.matrix);
  request.priority = priority;
  return request;
}

double quantile_or_zero(const SampleStats& s, double q) {
  return s.empty() ? 0.0 : s.quantile(q);
}

/// Host-stable 64-bit FNV-1a over (id, '\0', digest) — the per-response term
/// of WorkloadReport::digest_xor. Independent of std::hash so the run digest
/// is comparable across builds and platforms.
std::uint64_t response_digest_term(const Response& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;  // separator (never a hex/ASCII id byte's value alone)
    h *= 0x100000001b3ULL;
  };
  mix(r.id);
  mix(r.digest);
  return h;
}

}  // namespace

Request make_request(const WorkloadOptions& options, int index) {
  PSI_CHECK_MSG(options.structures >= 1 && options.nx >= 2,
                "workload needs >= 1 structure and nx >= 2");
  // Stateless per-request derivation: request `index` is identical no
  // matter in which order or by which harness it is built.
  Rng rng(hash_combine(options.seed, static_cast<std::uint64_t>(index)));
  const int structure =
      zipf_index(options.structures, options.zipf_s, rng.uniform_double());
  const Priority priority = rng.uniform_double() < options.interactive_fraction
                                ? Priority::kInteractive
                                : Priority::kBatch;
  const int tenant =
      options.tenants > 1
          ? static_cast<int>(rng.uniform_double() * options.tenants) %
                options.tenants
          : 0;
  const std::uint64_t value_seed =
      hash_combine(hash_combine(options.seed, 0x76616c75ULL /*"valu"*/),
                   static_cast<std::uint64_t>(index));
  Request request = catalog_request(options, structure, value_seed,
                                    "r" + std::to_string(index), priority);
  request.tenant = "t" + std::to_string(tenant);
  return request;
}

WorkloadReport run_workload(RequestSink& service,
                            const WorkloadOptions& options) {
  if (options.warm_start) {
    for (int i = 0; i < options.structures; ++i) {
      Request warm = catalog_request(
          options, i, hash_combine(options.seed, 0x7761726dULL /*"warm"*/),
          "warm" + std::to_string(i), Priority::kBatch);
      service.submit(std::move(warm)).get();
    }
  }

  Rng arrivals(hash_combine(options.seed, 0x61727276ULL /*"arrv"*/));
  std::deque<std::future<Response>> outstanding;
  std::vector<Response> responses;
  responses.reserve(static_cast<std::size_t>(options.requests));
  WallTimer wall;

  for (int i = 0; i < options.requests; ++i) {
    if (options.arrival_hz > 0.0) {
      // Open loop: exponential inter-arrival gap, submissions do not wait
      // for completions (the queue absorbs or rejects the burst).
      const double gap =
          -std::log(1.0 - arrivals.uniform_double()) / options.arrival_hz;
      std::this_thread::sleep_for(std::chrono::duration<double>(gap));
    } else {
      // Closed loop: at most `window` outstanding.
      while (static_cast<int>(outstanding.size()) >= options.window) {
        responses.push_back(outstanding.front().get());
        outstanding.pop_front();
      }
    }
    outstanding.push_back(service.submit(make_request(options, i)));
  }
  while (!outstanding.empty()) {
    responses.push_back(outstanding.front().get());
    outstanding.pop_front();
  }

  WorkloadReport report;
  report.wall_seconds = wall.seconds();
  for (const Response& r : responses) {
    switch (r.status) {
      case Status::kOk: ++report.ok; break;
      case Status::kFailed: ++report.failed; break;
      case Status::kRejected: ++report.rejected; break;
      case Status::kShutdown: ++report.shutdown; break;
      case Status::kDeadline: ++report.deadline; break;
      case Status::kCancelled: ++report.cancelled; break;
    }
    if (!r.ok()) continue;
    report.digest_xor ^= response_digest_term(r);
    report.total_s.add(r.total_seconds);
    report.queue_s.add(r.queue_seconds);
    if (r.cache_hit) {
      ++report.warm;
      report.warm_total_s.add(r.total_seconds);
    } else {
      ++report.cold;
      report.cold_total_s.add(r.total_seconds);
      if (r.plan_source == PlanSource::kDisk) {
        ++report.disk;
        report.disk_total_s.add(r.total_seconds);
      }
    }
  }
  report.throughput_rps = report.wall_seconds > 0.0
                              ? static_cast<double>(report.ok) /
                                    report.wall_seconds
                              : 0.0;
  return report;
}

obs::Record WorkloadReport::to_record() const {
  obs::Record record;
  return append_to(record);
}

obs::Record& WorkloadReport::append_to(obs::Record& record) const {
  const double cold_p50 = quantile_or_zero(cold_total_s, 0.5);
  const double warm_p50 = quantile_or_zero(warm_total_s, 0.5);
  char digest_hex[17];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(digest_xor));
  return record
      .add("ok", ok)
      .add("failed", failed)
      .add("rejected", rejected)
      .add("shutdown", shutdown)
      .add("deadline", deadline)
      .add("cancelled", cancelled)
      .add("cold", cold)
      .add("warm", warm)
      .add("disk", disk)
      .add("wall_s", wall_seconds)
      .add("throughput_rps", throughput_rps)
      .add("digest_xor", std::string(digest_hex))
      .add("total_p50_s", quantile_or_zero(total_s, 0.5))
      .add("total_p95_s", quantile_or_zero(total_s, 0.95))
      .add("total_p99_s", quantile_or_zero(total_s, 0.99))
      .add("total_p999_s", quantile_or_zero(total_s, 0.999))
      .add("cold_p50_s", cold_p50)
      .add("cold_p95_s", quantile_or_zero(cold_total_s, 0.95))
      .add("warm_p50_s", warm_p50)
      .add("warm_p95_s", quantile_or_zero(warm_total_s, 0.95))
      .add("disk_p50_s", quantile_or_zero(disk_total_s, 0.5))
      .add("cold_over_warm_p50",
           warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0);
}

void print_report(std::ostream& out, const WorkloadReport& report) {
  out << "requests: ok " << report.ok << ", failed " << report.failed
      << ", rejected " << report.rejected << ", shutdown " << report.shutdown
      << ", deadline " << report.deadline << ", cancelled "
      << report.cancelled << "\n";
  out << "cache:    cold " << report.cold << " (disk " << report.disk
      << "), warm " << report.warm;
  if (report.cold + report.warm > 0)
    out << " (hit rate "
        << 100.0 * static_cast<double>(report.warm) /
               static_cast<double>(report.cold + report.warm)
        << "%)";
  out << "\n";
  out << "wall:     " << report.wall_seconds << " s, " << report.throughput_rps
      << " req/s\n";
  const auto line = [&out](const char* name, const SampleStats& s) {
    out << name << " p50 " << quantile_or_zero(s, 0.5) << " s, p95 "
        << quantile_or_zero(s, 0.95) << " s, p99 "
        << quantile_or_zero(s, 0.99) << " s (n=" << s.count() << ")\n";
  };
  line("latency:  total", report.total_s);
  line("          cold ", report.cold_total_s);
  line("          warm ", report.warm_total_s);
  if (!report.disk_total_s.empty()) line("          disk ", report.disk_total_s);
  const double cold_p50 = quantile_or_zero(report.cold_total_s, 0.5);
  const double warm_p50 = quantile_or_zero(report.warm_total_s, 0.5);
  if (cold_p50 > 0.0 && warm_p50 > 0.0)
    out << "speedup:  cold p50 / warm p50 = " << cold_p50 / warm_p50 << "x\n";
}

}  // namespace psi::serve
