/// \file harness.hpp
/// \brief The chaos campaign: drive a live ShardedService through a seeded
/// storm of faults (store I/O errors, torn writes, worker stalls, deadline
/// clock skew, admission bursts, client cancellations, per-request
/// deadlines) and CHECK the robustness invariants instead of just surviving.
///
/// Invariants (CampaignResult::violations lists every breach, with the
/// campaign passing iff it is empty):
///  1. one terminal outcome per request — every submitted future resolves
///     with a known Status, and the service counters balance exactly:
///     submitted == ok + failed + rejected + shutdown + deadline + cancelled;
///  2. graceful drain — drain(timeout) returns within its budget, and after
///     it no shard has queued entries; after shutdown no shard has in-flight
///     work (no queue/worker leaks);
///  3. correctness under faults — every kOk response digest is bitwise
///     identical to the fault-free reference run's digest for the same
///     request (faults may fail requests, but may NEVER corrupt a success);
///  4. store hygiene — a post-run scan of the plan directory (real
///     filesystem) never finds a torn file still under a live .plan name
///     without quarantining it, and quarantine moves never delete data.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "serve/workload.hpp"
#include "store/plan_store.hpp"
#include "store/sharded_service.hpp"

namespace psi::chaos {

struct CampaignOptions {
  Plan plan;  ///< seeded fault rates (see chaos.hpp)

  // --- topology under test ---
  int shards = 1;
  int workers = 2;
  std::size_t queue_capacity = 16;  ///< small: admission storms must reject
  int max_batch = 4;
  /// Service stall budget; pick below Plan::stall_seconds to guarantee the
  /// watchdog fires on injected stalls. 0 disables the watchdog.
  double stall_budget_seconds = 0.0;
  /// Plan-store directory ("" = no persistence, store faults moot).
  std::string plan_dir;

  // --- request population (serve::make_request derivation) ---
  int requests = 200;
  int structures = 3;
  Int nx = 16;
  int tenants = 3;
  std::uint64_t workload_seed = 1;

  // --- request-level chaos (drawn from Plan::seed, request index) ---
  /// Fraction of requests carrying a deadline, drawn uniformly in
  /// [deadline_min_seconds, deadline_max_seconds]; negative draws exercise
  /// the admission-time kDeadline rejection.
  double deadline_fraction = 0.0;
  double deadline_min_seconds = -0.005;
  double deadline_max_seconds = 0.05;
  /// Fraction of requests carrying a cancel token that the driver flips a
  /// few submissions later (in-queue / in-flight client cancellation).
  double cancel_fraction = 0.0;

  // --- arrival shape ---
  int window = 8;       ///< closed-loop outstanding bound between storms
  int storm_every = 0;  ///< every N submissions, burst without waiting
  int storm_size = 0;   ///< burst length (0 disables storms)

  // --- lifecycle ---
  /// drain() budget; the driver calls drain while work is still outstanding
  /// so the deadline/hard-fail path is actually exercised.
  double drain_timeout_seconds = 10.0;

  /// Fault-free digests to compare kOk responses against (id -> digest).
  /// Null: the campaign computes its own reference first (one extra
  /// single-shard fault-free pass). Share one map across configurations via
  /// reference_digests() — the reference depends only on the request
  /// population, never on shards/workers/faults.
  const std::map<std::string, std::string>* reference = nullptr;
};

struct CampaignResult {
  // Terminal-outcome tally over the driver's responses.
  Count ok = 0;
  Count failed = 0;
  Count rejected = 0;
  Count shutdown = 0;
  Count deadline = 0;
  Count cancelled = 0;

  serve::Service::Counters counters;  ///< summed over shards (+ quota)
  Count quota_rejected = 0;
  serve::Service::DrainReport drain;
  std::size_t queued_after_drain = 0;  ///< must be 0
  int in_flight_after_shutdown = 0;    ///< must be 0

  ChaosFileSystem::Stats fs;  ///< injected store faults
  Count stalls_injected = 0;
  Count clock_jumps = 0;
  Count cancels_flipped = 0;
  Count deadlines_assigned = 0;

  store::PlanStore::ScanReport post_scan;  ///< plan-dir hygiene after run

  double wall_seconds = 0.0;
  std::vector<std::string> violations;  ///< empty <=> campaign passed

  bool passed() const { return violations.empty(); }
};

/// Fault-free reference digests for the campaign's request population:
/// single shard, single worker, no chaos, no deadlines/cancellation — every
/// request must complete kOk (the harness refuses a reference with
/// non-kOk responses). Keyed by request id.
std::map<std::string, std::string> reference_digests(
    const CampaignOptions& options);

/// Runs the full campaign (see file comment). Never throws on fault
/// fallout; configuration errors (bad topology) still throw psi::Error.
CampaignResult run_chaos_campaign(const CampaignOptions& options);

}  // namespace psi::chaos
