/// \file chaos.hpp
/// \brief Seeded service-layer fault injection: the chaos::Plan and the
/// injectors that realize it against a live serving stack.
///
/// The same stateless-hash discipline as fault::DeterministicInjector (PR 3)
/// applied one layer up: every injection decision is a pure function of
/// (plan seed, per-injector event counter, injector salt), so a seed fully
/// determines the fault STREAM each injector emits — reruns inject the same
/// read errors at the same read ordinals, the same torn writes, the same
/// stalls. (Which request a given fault lands on still depends on thread
/// interleaving; the harness's invariants are exactly the properties that
/// must survive any interleaving.)
///
/// Injectors:
///  * ChaosFileSystem — wraps a store::FileSystem with injected transient
///    read errors, failed writes/renames, and TORN writes (a short prefix is
///    written but success is reported — the on-disk checksum discipline must
///    catch it later);
///  * ChaosClock — a deadline clock (serve::Service::Config::clock) with
///    seeded skew jumps, stressing deadline admission/expiry against a clock
///    that is not the host's;
///  * StallInjector — a phase hook (serve::Service::Config::phase_hook) that
///    sleeps workers at seeded phase boundaries, long enough to trip the
///    watchdog when the plan says so.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/timer.hpp"
#include "serve/service.hpp"
#include "store/filesystem.hpp"

namespace psi::chaos {

/// Seeded chaos plan: rates in [0, 1] per injection opportunity. All-zero
/// (the default) injects nothing — a ChaosFileSystem over a zero plan is a
/// transparent proxy.
struct Plan {
  std::uint64_t seed = 0;

  // --- store I/O faults (ChaosFileSystem) ---
  double store_read_error_rate = 0.0;    ///< read_file -> transient kError
  double store_write_error_rate = 0.0;   ///< write_file fails with a reason
  double store_rename_error_rate = 0.0;  ///< rename_file fails
  /// write_file writes only a prefix of the data but REPORTS success — the
  /// torn-write case fsync-before-rename + checksums must contain.
  double store_torn_write_rate = 0.0;

  // --- worker stalls (StallInjector) ---
  double stall_rate = 0.0;     ///< per phase boundary
  double stall_seconds = 0.0;  ///< injected sleep length

  // --- deadline clock skew (ChaosClock) ---
  double clock_skew_rate = 0.0;     ///< per clock read: resample the skew
  double clock_skew_seconds = 0.0;  ///< skew magnitude bound (>= 0)
};

/// Uniform [0, 1) draw from (seed, counter, salt) — stateless, the fault::
/// idiom: equal inputs give equal draws on every platform and run.
double uniform_from(std::uint64_t seed, std::uint64_t counter,
                    std::uint64_t salt);

/// store::FileSystem decorator realizing the plan's I/O fault rates over an
/// inner filesystem. Thread-safe; injection draws are keyed by a global
/// per-operation counter.
class ChaosFileSystem : public store::FileSystem {
 public:
  struct Stats {
    Count reads = 0;
    Count read_errors = 0;  ///< injected (not inner) failures
    Count writes = 0;
    Count write_errors = 0;
    Count torn_writes = 0;
    Count renames = 0;
    Count rename_errors = 0;
  };

  /// `inner` null uses store::real_filesystem(). Not owned.
  explicit ChaosFileSystem(const Plan& plan,
                           store::FileSystem* inner = nullptr);

  ReadResult read_file(const std::string& path, std::vector<std::uint8_t>& out,
                       std::string* error) override;
  bool write_file(const std::string& path, const void* data, std::size_t size,
                  bool sync, std::string* error) override;
  bool rename_file(const std::string& from, const std::string& to,
                   std::string* error) override;
  bool remove_file(const std::string& path, std::string* error) override;
  bool create_directories(const std::string& path,
                          std::string* error) override;
  bool list_dir(const std::string& dir, std::vector<std::string>& out,
                std::string* error) override;
  bool sync_dir(const std::string& dir, std::string* error) override;

  Stats stats() const;

 private:
  Plan plan_;
  store::FileSystem* inner_;
  std::atomic<std::uint64_t> counter_{0};
  mutable std::mutex mutex_;
  Stats stats_;
};

/// Deadline clock with seeded skew: host uptime plus a skew term that is
/// resampled (uniform in [0, clock_skew_seconds)) at seeded reads. The
/// resulting clock is NOT monotone — skew can shrink between reads — which
/// is the point: deadline bookkeeping must degrade to some terminal outcome
/// (early kDeadline or late expiry), never hang or double-complete. Use via
/// the callable adapter: `config.clock = [&c] { return c.now(); }`.
class ChaosClock {
 public:
  explicit ChaosClock(const Plan& plan) : plan_(plan) {}

  double now();

  Count skew_jumps() const { return jumps_.load(); }

 private:
  Plan plan_;
  WallTimer base_;
  std::atomic<std::uint64_t> counter_{0};
  std::atomic<double> skew_{0.0};
  std::atomic<Count> jumps_{0};
};

/// Phase-boundary stall injector (serve phase hook): sleeps the calling
/// worker for plan.stall_seconds at seeded boundaries. Long stalls against a
/// short Service stall budget exercise the watchdog path end to end.
class StallInjector {
 public:
  explicit StallInjector(const Plan& plan) : plan_(plan) {}

  void on_phase(const serve::PhaseEvent& event);

  Count stalls() const { return stalls_.load(); }

 private:
  Plan plan_;
  std::atomic<std::uint64_t> counter_{0};
  std::atomic<Count> stalls_{0};
};

}  // namespace psi::chaos
