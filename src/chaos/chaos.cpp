#include "chaos/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/rng.hpp"

namespace psi::chaos {

namespace {

// Per-injector salts: distinct draw streams from one seed.
constexpr std::uint64_t kSaltRead = 0x63685244ULL;      // "chRD"
constexpr std::uint64_t kSaltWrite = 0x63685752ULL;     // "chWR"
constexpr std::uint64_t kSaltTorn = 0x6368544eULL;      // "chTN"
constexpr std::uint64_t kSaltTornLen = 0x63685440ULL;   // torn-length draw
constexpr std::uint64_t kSaltRename = 0x6368524eULL;    // "chRN"
constexpr std::uint64_t kSaltStall = 0x63685354ULL;     // "chST"
constexpr std::uint64_t kSaltClock = 0x6368434bULL;     // "chCK"
constexpr std::uint64_t kSaltClockMag = 0x6368434dULL;  // skew magnitude

}  // namespace

double uniform_from(std::uint64_t seed, std::uint64_t counter,
                    std::uint64_t salt) {
  std::uint64_t state = hash_combine(hash_combine(seed, counter), salt);
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

ChaosFileSystem::ChaosFileSystem(const Plan& plan, store::FileSystem* inner)
    : plan_(plan),
      inner_(inner != nullptr ? inner : &store::real_filesystem()) {}

store::FileSystem::ReadResult ChaosFileSystem::read_file(
    const std::string& path, std::vector<std::uint8_t>& out,
    std::string* error) {
  const std::uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.reads;
  }
  if (uniform_from(plan_.seed, n, kSaltRead) < plan_.store_read_error_rate) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.read_errors;
    if (error != nullptr)
      *error = "chaos: injected transient read error #" + std::to_string(n) +
               " on " + path;
    return ReadResult::kError;
  }
  return inner_->read_file(path, out, error);
}

bool ChaosFileSystem::write_file(const std::string& path, const void* data,
                                 std::size_t size, bool sync,
                                 std::string* error) {
  const std::uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.writes;
  }
  if (uniform_from(plan_.seed, n, kSaltWrite) < plan_.store_write_error_rate) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.write_errors;
    if (error != nullptr)
      *error = "chaos: injected write failure #" + std::to_string(n) + " on " +
               path;
    return false;
  }
  if (size > 0 &&
      uniform_from(plan_.seed, n, kSaltTorn) < plan_.store_torn_write_rate) {
    // Torn write: persist only a prefix but REPORT success — simulating a
    // crash/lost-tail between write and fsync. The prefix length draw keeps
    // at least one byte and strictly less than the full payload, so the
    // checksum layer always has something malformed to catch.
    const double u = uniform_from(plan_.seed, n, kSaltTornLen);
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(u * static_cast<double>(size - 1)) + 1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.torn_writes;
    }
    inner_->write_file(path, data, std::min(keep, size - 1), sync, nullptr);
    return true;
  }
  return inner_->write_file(path, data, size, sync, error);
}

bool ChaosFileSystem::rename_file(const std::string& from,
                                  const std::string& to, std::string* error) {
  const std::uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.renames;
  }
  if (uniform_from(plan_.seed, n, kSaltRename) <
      plan_.store_rename_error_rate) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rename_errors;
    if (error != nullptr)
      *error = "chaos: injected rename failure #" + std::to_string(n) + " " +
               from + " -> " + to;
    return false;
  }
  return inner_->rename_file(from, to, error);
}

bool ChaosFileSystem::remove_file(const std::string& path,
                                  std::string* error) {
  return inner_->remove_file(path, error);
}

bool ChaosFileSystem::create_directories(const std::string& path,
                                         std::string* error) {
  return inner_->create_directories(path, error);
}

bool ChaosFileSystem::list_dir(const std::string& dir,
                               std::vector<std::string>& out,
                               std::string* error) {
  return inner_->list_dir(dir, out, error);
}

bool ChaosFileSystem::sync_dir(const std::string& dir, std::string* error) {
  return inner_->sync_dir(dir, error);
}

ChaosFileSystem::Stats ChaosFileSystem::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

double ChaosClock::now() {
  if (plan_.clock_skew_rate > 0.0 && plan_.clock_skew_seconds > 0.0) {
    const std::uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed);
    if (uniform_from(plan_.seed, n, kSaltClock) < plan_.clock_skew_rate) {
      skew_.store(plan_.clock_skew_seconds *
                      uniform_from(plan_.seed, n, kSaltClockMag),
                  std::memory_order_relaxed);
      jumps_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return base_.seconds() + skew_.load(std::memory_order_relaxed);
}

void StallInjector::on_phase(const serve::PhaseEvent& event) {
  (void)event;
  if (plan_.stall_rate <= 0.0 || plan_.stall_seconds <= 0.0) return;
  const std::uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed);
  if (uniform_from(plan_.seed, n, kSaltStall) >= plan_.stall_rate) return;
  stalls_.fetch_add(1, std::memory_order_relaxed);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(plan_.stall_seconds));
}

}  // namespace psi::chaos
