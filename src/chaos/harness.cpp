#include "chaos/harness.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/timer.hpp"

namespace psi::chaos {

namespace {

// Request-level draw salts (distinct from the injector salts in chaos.cpp).
constexpr std::uint64_t kSaltDeadline = 0x63684452ULL;     // "chDR"
constexpr std::uint64_t kSaltDeadlineVal = 0x63684456ULL;  // deadline value
constexpr std::uint64_t kSaltCancel = 0x63684358ULL;       // "chCX"
constexpr std::uint64_t kSaltCancelDelay = 0x63684359ULL;  // flip distance

serve::WorkloadOptions workload_options(const CampaignOptions& options) {
  serve::WorkloadOptions w;
  w.structures = options.structures;
  w.nx = options.nx;
  w.requests = options.requests;
  w.seed = options.workload_seed;
  w.tenants = options.tenants;
  return w;
}

}  // namespace

std::map<std::string, std::string> reference_digests(
    const CampaignOptions& options) {
  const serve::WorkloadOptions w = workload_options(options);
  serve::Service::Config config;
  config.workers = 1;
  config.queue_capacity =
      static_cast<std::size_t>(std::max(options.requests, 1));
  serve::Service service(config);
  std::map<std::string, std::string> digests;
  for (int i = 0; i < options.requests; ++i) {
    serve::Request request = serve::make_request(w, i);
    // Reference is fault-free by definition: no deadline, no cancellation.
    const serve::Response r = service.submit(std::move(request)).get();
    PSI_CHECK_MSG(r.ok(), "fault-free reference request " << r.id
                                                          << " failed: "
                                                          << r.detail);
    digests[r.id] = r.digest;
  }
  return digests;
}

CampaignResult run_chaos_campaign(const CampaignOptions& options) {
  PSI_CHECK_MSG(options.requests >= 1, "campaign needs >= 1 request");
  CampaignResult result;
  WallTimer wall;

  std::map<std::string, std::string> own_reference;
  const std::map<std::string, std::string>* reference = options.reference;
  if (reference == nullptr) {
    own_reference = reference_digests(options);
    reference = &own_reference;
  }

  ChaosFileSystem fs(options.plan);
  ChaosClock clock(options.plan);
  StallInjector stalls(options.plan);

  store::ShardedService::Config config;
  config.shards = options.shards;
  config.service.workers = options.workers;
  config.service.queue_capacity = options.queue_capacity;
  config.service.max_batch = options.max_batch;
  config.service.stall_budget_seconds = options.stall_budget_seconds;
  config.service.clock = [&clock] { return clock.now(); };
  config.service.phase_hook = [&stalls](const serve::PhaseEvent& event) {
    stalls.on_phase(event);
  };
  config.plan_dir = options.plan_dir;
  if (!options.plan_dir.empty()) config.store_fs = &fs;

  const serve::WorkloadOptions w = workload_options(options);
  std::vector<serve::Response> responses;
  responses.reserve(static_cast<std::size_t>(options.requests));
  {
    store::ShardedService sharded(config);

    std::deque<std::future<serve::Response>> outstanding;
    std::deque<std::pair<int, serve::CancelToken>> cancel_schedule;
    for (int i = 0; i < options.requests; ++i) {
      // Flip every token scheduled at or before this submission — the
      // cancelled request may be queued, batched, or mid-phase by now.
      while (!cancel_schedule.empty() && cancel_schedule.front().first <= i) {
        cancel_schedule.front().second->store(true);
        ++result.cancels_flipped;
        cancel_schedule.pop_front();
      }
      serve::Request request = serve::make_request(w, i);
      const std::uint64_t seed = options.plan.seed;
      const std::uint64_t idx = static_cast<std::uint64_t>(i);
      if (uniform_from(seed, idx, kSaltDeadline) < options.deadline_fraction) {
        const double u = uniform_from(seed, idx, kSaltDeadlineVal);
        request.timeout_seconds =
            options.deadline_min_seconds +
            u * (options.deadline_max_seconds - options.deadline_min_seconds);
        ++result.deadlines_assigned;
      }
      if (uniform_from(seed, idx, kSaltCancel) < options.cancel_fraction) {
        request.cancel = serve::make_cancel_token();
        const int delay = 1 + static_cast<int>(
            uniform_from(seed, idx, kSaltCancelDelay) * 8.0);
        cancel_schedule.emplace_back(i + delay, request.cancel);
      }
      const bool in_storm =
          options.storm_size > 0 && options.storm_every > 0 &&
          (i % options.storm_every) < options.storm_size;
      if (!in_storm) {
        // Closed loop between storms: bounded outstanding window.
        while (static_cast<int>(outstanding.size()) >= options.window) {
          responses.push_back(outstanding.front().get());
          outstanding.pop_front();
        }
      }
      outstanding.push_back(sharded.submit(std::move(request)));
    }
    while (!cancel_schedule.empty()) {
      cancel_schedule.front().second->store(true);
      ++result.cancels_flipped;
      cancel_schedule.pop_front();
    }

    // Drain while work is still outstanding — the whole point: graceful
    // completion up to the budget, hard kShutdown past it.
    result.drain = sharded.drain(options.drain_timeout_seconds);
    for (int s = 0; s < sharded.shards(); ++s)
      result.queued_after_drain += sharded.shard(s).queued_depth();
    sharded.shutdown();
    for (int s = 0; s < sharded.shards(); ++s)
      result.in_flight_after_shutdown += sharded.shard(s).in_flight();

    while (!outstanding.empty()) {
      responses.push_back(outstanding.front().get());
      outstanding.pop_front();
    }
    result.counters = sharded.counters();
    result.quota_rejected = sharded.quota_rejected();
  }
  result.fs = fs.stats();
  result.stalls_injected = stalls.stalls();
  result.clock_jumps = clock.skew_jumps();

  const auto violate = [&result](const std::string& what) {
    result.violations.push_back(what);
  };

  // Invariant 1a: every future resolved with a known terminal status.
  for (const serve::Response& r : responses) {
    switch (r.status) {
      case serve::Status::kOk: ++result.ok; break;
      case serve::Status::kFailed: ++result.failed; break;
      case serve::Status::kRejected: ++result.rejected; break;
      case serve::Status::kShutdown: ++result.shutdown; break;
      case serve::Status::kDeadline: ++result.deadline; break;
      case serve::Status::kCancelled: ++result.cancelled; break;
      default:
        violate("request " + r.id + " resolved with unknown status");
        break;
    }
  }
  if (responses.size() != static_cast<std::size_t>(options.requests))
    violate("resolved " + std::to_string(responses.size()) + " of " +
            std::to_string(options.requests) + " submitted requests");

  // Invariant 1b: the service's own books balance — each request counted in
  // exactly one terminal counter. counters.rejected includes the quota
  // rejections made before any shard saw the request, hence the adjustment.
  const serve::Service::Counters& c = result.counters;
  const Count terminal = c.completed + c.failed + c.rejected +
                         c.shutdown_aborted + c.deadline_expired + c.cancelled;
  if (terminal != c.submitted + result.quota_rejected) {
    std::ostringstream os;
    os << "terminal-outcome imbalance: submitted " << c.submitted
       << " + quota_rejected " << result.quota_rejected
       << " != ok " << c.completed << " + failed " << c.failed
       << " + rejected " << c.rejected << " + shutdown "
       << c.shutdown_aborted << " + deadline " << c.deadline_expired
       << " + cancelled " << c.cancelled;
    violate(os.str());
  }
  // ...and the driver's tally must agree with the service's (a mismatch
  // means a response was double-counted or dropped somewhere).
  if (result.ok != c.completed || result.failed != c.failed ||
      result.rejected != c.rejected ||
      result.shutdown != c.shutdown_aborted ||
      result.deadline != c.deadline_expired ||
      result.cancelled != c.cancelled)
    violate("driver tally disagrees with service counters");

  // Invariant 2: graceful drain — on time, queue empty, workers idle.
  if (result.drain.waited_seconds > options.drain_timeout_seconds + 1.0)
    violate("drain overran its timeout: waited " +
            std::to_string(result.drain.waited_seconds) + " s of " +
            std::to_string(options.drain_timeout_seconds) + " s");
  if (result.queued_after_drain != 0)
    violate("drain leaked " + std::to_string(result.queued_after_drain) +
            " queue entries");
  if (result.in_flight_after_shutdown != 0)
    violate("shutdown left " +
            std::to_string(result.in_flight_after_shutdown) +
            " requests in flight");

  // Invariant 3: faults may fail a request, never corrupt a success.
  for (const serve::Response& r : responses) {
    if (!r.ok()) continue;
    const auto it = reference->find(r.id);
    if (it == reference->end()) {
      violate("ok response " + r.id + " has no fault-free reference digest");
    } else if (r.digest != it->second) {
      violate("digest mismatch on " + r.id + ": chaos " + r.digest +
              " vs fault-free " + it->second);
    }
  }

  // Invariant 4: plan-dir hygiene — a scan over the REAL filesystem
  // quarantines every torn/corrupt leftover, and a second scan finds a
  // clean directory (the first moved, never duplicated or deleted).
  if (!options.plan_dir.empty()) {
    store::PlanStore::Config store_config;
    store_config.directory = options.plan_dir;
    store_config.expected = config.service.plan;
    store_config.scan_on_open = false;
    store::PlanStore store(store_config);
    result.post_scan = store.scan();
    const store::PlanStore::ScanReport rescan = store.scan();
    if (rescan.quarantined != 0)
      violate("store scan is not idempotent: second pass quarantined " +
              std::to_string(rescan.quarantined) + " more files");
  }

  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace psi::chaos
