/// \file engine.hpp
/// \brief Deterministic discrete-event simulator with MPI-like asynchronous
/// point-to-point messaging.
///
/// Each simulated MPI rank is a reactive program (sim::Rank): it receives a
/// start callback at t=0 and a callback per delivered message, and during a
/// callback it may advance its own clock with compute() and post
/// asynchronous sends (the analogue of MPI_Isend matched by a pre-posted
/// MPI_Irecv — PSelInv's communication is fully asynchronous, paper §III).
///
/// Timing semantics per rank:
///  * a rank executes one handler at a time; a message delivered at time t
///    starts its handler at max(t, rank busy-until);
///  * compute(seconds) and per-message CPU overheads extend busy-until;
///  * each send occupies the sender NIC for the payload's occupancy time
///    (serializing concurrent sends — the flat-tree root bottleneck), takes
///    the wire latency of the tier, and then occupies the receiver NIC.
///
/// The engine is single-threaded and deterministic: ties are broken by a
/// global event sequence number.
///
/// Hot-path layout: pending events live in a pooled arena of POD slots with
/// free-list reuse; the scheduling queue is two-tier — an indexed 4-ary
/// min-heap over 16-byte {time, seq|slot} handles for the near future, plus
/// an unsorted far-future buffer beyond a moving horizon. A storm with
/// millions of pending events keeps the heap cache-resident: far sends are
/// O(1) appends, and when the heap drains the smallest chunk of the buffer
/// is selected (nth_element over the total (time, seq) order — membership
/// is unique, so pop order stays deterministic) and re-heaped. Numeric-mode
/// payloads (shared_ptr<DenseMatrix>) sit in a separate pool indexed from
/// the slot — a trace-mode send is pure POD and produces no shared_ptr
/// refcount traffic anywhere in the event loop.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include <unordered_set>

#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "sim/schedule.hpp"
#include "sparse/dense.hpp"
#include "sparse/types.hpp"

namespace psi::obs {
class Sink;
}

namespace psi::sim {

/// `src` of the start event seeded for every rank at t = 0.
inline constexpr int kStartSrc = -1;
/// `src` of a timer event posted via Context::set_timer.
inline constexpr int kTimerSrc = -2;

/// Payload carried by a message. `data` is set in numeric mode (a shared
/// immutable block); in trace mode only `bytes` matters.
struct Message {
  int src = -1;
  int dst = -1;
  std::int64_t tag = 0;   ///< user-defined; encodes (supernode, phase, index)
  std::int64_t env = 0;   ///< protocol envelope (opaque to the engine)
  Count bytes = 0;
  int comm_class = 0;     ///< user-defined accounting class
  std::shared_ptr<const DenseMatrix> data;
};

/// Per-rank, per-class traffic counters.
struct ClassCounters {
  Count bytes_sent = 0;
  Count bytes_received = 0;
  Count messages_sent = 0;
  Count messages_received = 0;
};

/// One delivered message, recorded when tracing is enabled.
struct TraceEvent {
  SimTime time = 0.0;   ///< delivery time (handler start, before busy-wait)
  int src = -1;
  int dst = -1;
  int comm_class = 0;
  Count bytes = 0;
  std::int64_t tag = 0;
};

struct RankStats {
  std::vector<ClassCounters> per_class;
  double compute_seconds = 0.0;   ///< time spent in compute()
  double overhead_seconds = 0.0;  ///< per-message CPU overheads
  SimTime finish_time = 0.0;      ///< end of this rank's last handler
  Count events_handled = 0;       ///< handler invocations on this rank
};

class Engine;

/// Handler-side API handed to rank callbacks.
class Context {
 public:
  Context(Engine& engine, int rank, SimTime now)
      : engine_(&engine), rank_(rank), now_(now) {}

  int rank() const { return rank_; }
  SimTime now() const { return now_; }

  /// Advances this rank's clock by `seconds` of computation.
  void compute(SimTime seconds);
  /// Convenience: computation expressed in flops (machine flop rate).
  void compute_flops(Count flops);

  /// Posts an asynchronous send. Self-sends are delivered after the current
  /// handler with no network cost (local hand-off). `env` is an opaque
  /// protocol envelope delivered unchanged in Message::env.
  void send(int dst, std::int64_t tag, Count bytes, int comm_class,
            std::shared_ptr<const DenseMatrix> data = nullptr,
            std::int64_t env = 0);

  /// Schedules Rank::on_timer(tag) on this rank `delay` seconds from now,
  /// through the same deterministic event queue. Timers pay no NIC or
  /// message overhead. Returns an id usable with cancel_timer().
  std::uint64_t set_timer(SimTime delay, std::int64_t tag);
  /// Cancels a pending timer. A cancelled timer is discarded without
  /// running a handler and does not extend the makespan. `id` must refer to
  /// a timer that has not fired yet (cancelling an already-fired timer
  /// leaks a bookkeeping entry for the rest of the run).
  void cancel_timer(std::uint64_t id);

 private:
  friend class Engine;
  Engine* engine_;
  int rank_;
  SimTime now_;  ///< advances as the handler computes/sends
};

/// A reactive rank program.
class Rank {
 public:
  virtual ~Rank() = default;
  /// Invoked once at t = 0.
  virtual void on_start(Context& ctx) = 0;
  /// Invoked for each delivered message.
  virtual void on_message(Context& ctx, const Message& msg) = 0;
  /// Invoked when a timer set via Context::set_timer fires. The default
  /// fails loudly: a program that sets timers must override this.
  virtual void on_timer(Context& ctx, std::int64_t tag);
};

class Engine {
 public:
  /// `comm_classes` sizes the per-class counter arrays.
  Engine(const Machine& machine, int rank_count, int comm_classes);

  /// Installs the program for a rank (must be set for all ranks before run).
  void set_rank(int rank, std::unique_ptr<Rank> program);

  int rank_count() const { return static_cast<int>(programs_.size()); }
  const Machine& machine() const { return *machine_; }

  /// Records every delivered network message (self-sends excluded) into an
  /// in-memory trace, up to `max_events` (oldest kept). Call before run().
  void enable_trace(std::size_t max_events = 1 << 20);
  const std::vector<TraceEvent>& trace() const { return trace_; }

  /// Attaches an observability sink (psi::obs) receiving every message send
  /// and handler execution with its full timing decomposition. Call before
  /// run(); the sink must outlive it. Null (the default) disables
  /// instrumentation: the event loop then pays only one predictable branch
  /// per send/dispatch.
  void set_sink(obs::Sink* sink);

  /// Attaches a fault injector consulted once per posted network message
  /// (self-sends and timers are never faulted). Call before run(); the
  /// injector must outlive it. Injected faults are emitted to the sink as
  /// marks ("fault-drop", "fault-dup", "fault-delay") on the sender rank.
  void set_fault_injector(FaultInjector* injector);

  /// Attaches a dynamic machine perturbation: compute() durations are
  /// multiplied by its compute_factor and NIC occupancies by its
  /// link_factor, each looked up at the current simulated time. Call before
  /// run(); the perturbation must outlive it.
  void set_perturbation(const Perturbation* perturbation);

  /// Attaches an adversarial schedule policy (see schedule.hpp): seeded
  /// permutation of the pop order among same-timestamp events plus bounded
  /// extra network delays. Call before run(); the policy must outlive it.
  /// Null (the default) keeps the FIFO tie-break and costs nothing.
  void set_schedule_policy(SchedulePolicy* policy);

  /// Runs to completion (event queue drained). Returns the makespan: the
  /// time the last handler finished.
  SimTime run();

  const RankStats& stats(int rank) const;
  /// Total events processed (for engine throughput reporting).
  Count events_processed() const { return events_processed_; }
  /// Host wall-clock seconds spent inside run().
  double run_wall_seconds() const { return wall_seconds_; }
  /// Engine throughput: events processed per host wall-clock second.
  double events_per_second() const {
    return wall_seconds_ > 0.0
               ? static_cast<double>(events_processed_) / wall_seconds_
               : 0.0;
  }
  SimTime makespan() const { return makespan_; }

  /// Cancel-after-fire bookkeeping entries left behind (see cancel_timer).
  /// A clean protocol run leaves zero; the check oracle asserts it.
  std::size_t leaked_timers() const { return cancelled_timers_.size(); }
  /// Peak number of simultaneously-live event slots the arena ever held (it
  /// only grows). Bounded by 2^PSI_SIM_SLOT_BITS; the check oracle records
  /// it per trial and sanity-checks it against the event count.
  std::size_t arena_high_water() const { return pool_.size(); }

 private:
  friend class Context;

  /// POD core of a queued message. The numeric-mode payload is referenced by
  /// index into payloads_ (kNoPayload when absent) so that queuing a
  /// trace-mode event never constructs, copies, or destroys a shared_ptr.
  struct EventSlot {
    std::int64_t tag;
    std::int64_t env;
    Count bytes;
    int src;
    int dst;
    int comm_class;
    std::int32_t payload;
  };
  static constexpr std::int32_t kNoPayload = -1;

  /// 16-byte heap entry. `key` packs the global sequence number (high
  /// 64 - kSlotBits bits) over the arena slot (low kSlotBits bits):
  /// comparing keys compares seqs, giving the deterministic FIFO tie-break,
  /// and the popped key still recovers the slot. kSlotBits caps *live*
  /// events (default 2^24 = 16.7M); exceeding it fails loudly in enqueue()
  /// rather than silently corrupting the packed key. The compile-time knob
  /// exists so the exhaustion path can be regression-tested cheaply.
  struct Handle {
    SimTime time;
    std::uint64_t key;
  };
#ifndef PSI_SIM_SLOT_BITS
#define PSI_SIM_SLOT_BITS 24
#endif
  static constexpr int kSlotBits = PSI_SIM_SLOT_BITS;
  static_assert(kSlotBits >= 4 && kSlotBits <= 32,
                "PSI_SIM_SLOT_BITS out of range");
  static constexpr std::uint64_t kSlotMask =
      (std::uint64_t{1} << kSlotBits) - 1;

  static bool earlier(const Handle& a, const Handle& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  struct RankState {
    SimTime busy_until = 0.0;
    SimTime nic_send_free = 0.0;
    SimTime nic_recv_free = 0.0;
    RankStats stats;
  };

  void post_send(Context& ctx, int dst, std::int64_t tag, Count bytes,
                 int comm_class, std::shared_ptr<const DenseMatrix> data,
                 std::int64_t env);
  std::uint64_t post_timer(Context& ctx, SimTime delay, std::int64_t tag);
  /// Returns the queued event's global sequence number.
  std::uint64_t enqueue(SimTime time, const EventSlot& slot);
  /// Registers a numeric payload in the pool; kNoPayload for null.
  std::int32_t register_payload(std::shared_ptr<const DenseMatrix> data);
  double compute_factor(int rank, SimTime t) const {
    return perturbation_ != nullptr ? perturbation_->compute_factor(rank, t)
                                    : 1.0;
  }
  /// NIC occupancy of a transfer, including any link degradation in effect
  /// at time `t`.
  SimTime transfer_occupancy(int src, int dst, Count bytes, SimTime t) const {
    SimTime occupancy = machine_->occupancy(src, dst, bytes);
    if (perturbation_ != nullptr)
      occupancy *= perturbation_->link_factor(machine_->node_of(src),
                                              machine_->node_of(dst), t);
    return occupancy;
  }
  void dispatch(SimTime time, std::uint64_t seq, const EventSlot& slot,
                std::shared_ptr<const DenseMatrix> payload);

  void heap_push(Handle handle);
  Handle heap_pop();
  /// Moves the earliest chunk of overflow_ into the (empty) heap and
  /// advances horizon_. Called when the heap drains with far events pending.
  void refill_heap();

  const Machine* machine_;
  int comm_classes_;
  std::vector<std::unique_ptr<Rank>> programs_;
  std::vector<RankState> states_;

  std::vector<Handle> heap_;      ///< 4-ary min-heap: events before horizon_
  std::vector<Handle> overflow_;  ///< unsorted events at/after horizon_
  std::size_t overflow_begin_ = 0;  ///< consumed prefix of overflow_
  /// Pushes not earlier than this go to overflow_. Starts below every real
  /// event so the heap only ever holds refill-selected chunks.
  Handle horizon_{-std::numeric_limits<SimTime>::infinity(), 0};
  std::vector<EventSlot> pool_;            ///< stable event arena
  std::vector<std::uint32_t> free_slots_;  ///< reusable arena slots
  /// With a schedule policy the handle key carries the policy's tie-break
  /// priority instead of the sequence number, so the real seq of each live
  /// event is kept here, indexed by arena slot (sized lazily; empty when no
  /// policy is attached).
  std::vector<std::uint64_t> slot_seq_;
  std::vector<std::shared_ptr<const DenseMatrix>> payloads_;
  std::vector<std::int32_t> free_payloads_;

  std::uint64_t next_seq_ = 0;
  obs::Sink* sink_ = nullptr;
  FaultInjector* injector_ = nullptr;
  const Perturbation* perturbation_ = nullptr;
  SchedulePolicy* schedule_ = nullptr;
  /// Seqs of cancelled-but-not-yet-popped timers; entries are erased when
  /// the timer's event is popped and discarded.
  std::unordered_set<std::uint64_t> cancelled_timers_;
  /// Sequence of the event whose handler is currently dispatching (the
  /// causal emitter of any sends it posts); ~0 outside dispatch.
  std::uint64_t dispatching_seq_ = ~std::uint64_t{0};
  bool tracing_ = false;
  std::size_t trace_limit_ = 0;
  std::vector<TraceEvent> trace_;
  Count events_processed_ = 0;
  SimTime makespan_ = 0.0;
  double wall_seconds_ = 0.0;
  bool ran_ = false;
};

}  // namespace psi::sim
