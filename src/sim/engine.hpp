/// \file engine.hpp
/// \brief Deterministic discrete-event simulator with MPI-like asynchronous
/// point-to-point messaging, sequential or partition-parallel.
///
/// Each simulated MPI rank is a reactive program (sim::Rank): it receives a
/// start callback at t=0 and a callback per delivered message, and during a
/// callback it may advance its own clock with compute() and post
/// asynchronous sends (the analogue of MPI_Isend matched by a pre-posted
/// MPI_Irecv — PSelInv's communication is fully asynchronous, paper §III).
///
/// Timing semantics per rank:
///  * a rank executes one handler at a time; a message delivered at time t
///    starts its handler at max(t, rank busy-until);
///  * compute(seconds) and per-message CPU overheads extend busy-until;
///  * each send occupies the sender NIC for the payload's occupancy time
///    (serializing concurrent sends — the flat-tree root bottleneck), takes
///    the wire latency of the tier, and then occupies the receiver NIC.
///
/// Determinism: every queued event carries a stable 64-bit key derived from
/// (emitting rank, per-rank enqueue counter) — not from global arrival
/// order — and same-timestamp ties are broken by that key (optionally
/// permuted by a SchedulePolicy). Because the key of an event depends only
/// on the causal history of its emitting rank, the tie-break order is
/// identical whether the engine runs sequentially or partitioned.
///
/// Partitioned execution (set_partitions > 1): ranks are split into
/// contiguous partitions, each with its own event queue and arena, executed
/// on a parallel::ThreadPool in conservative windows [W, W + L) where the
/// lookahead L is the minimum cross-partition wire latency (latency carries
/// no jitter, so every cross-partition delivery lands at or beyond the
/// window end). Cross-partition sends travel through single-writer mailboxes
/// drained at the window barrier; observability events are buffered per
/// partition as bundles and merged into the canonical sequential order
/// between windows. Event order, obs output, fault draws, and numeric
/// results are bitwise identical to the sequential engine for any partition
/// count and seed (test-enforced; see DESIGN.md §14).
///
/// Hot-path layout: pending events live in a pooled arena of POD slots with
/// free-list reuse; the scheduling queue is two-tier — an indexed 4-ary
/// min-heap over 16-byte {time, key} handles for the near future, plus an
/// unsorted far-future buffer beyond a moving horizon. A storm with
/// millions of pending events keeps the heap cache-resident: far sends are
/// O(1) appends, and when the heap drains the smallest chunk of the buffer
/// is selected (nth_element over the strict total event order) and
/// re-heaped. Numeric-mode payloads (shared_ptr<DenseMatrix>) sit in a
/// separate pool indexed from the slot — a trace-mode send is pure POD and
/// produces no shared_ptr refcount traffic anywhere in the event loop.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/sink.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "sim/schedule.hpp"
#include "sparse/dense.hpp"
#include "sparse/types.hpp"

namespace psi::sim {

/// `src` of the start event seeded for every rank at t = 0.
inline constexpr int kStartSrc = -1;
/// `src` of a timer event posted via Context::set_timer.
inline constexpr int kTimerSrc = -2;

/// Payload carried by a message. `data` is set in numeric mode (a shared
/// immutable block); in trace mode only `bytes` matters.
struct Message {
  int src = -1;
  int dst = -1;
  std::int64_t tag = 0;   ///< user-defined; encodes (supernode, phase, index)
  std::int64_t env = 0;   ///< protocol envelope (opaque to the engine)
  Count bytes = 0;
  int comm_class = 0;     ///< user-defined accounting class
  std::shared_ptr<const DenseMatrix> data;
};

/// Per-rank, per-class traffic counters.
struct ClassCounters {
  Count bytes_sent = 0;
  Count bytes_received = 0;
  Count messages_sent = 0;
  Count messages_received = 0;
};

/// One delivered message, recorded when tracing is enabled.
struct TraceEvent {
  SimTime time = 0.0;   ///< delivery time (handler start, before busy-wait)
  int src = -1;
  int dst = -1;
  int comm_class = 0;
  Count bytes = 0;
  std::int64_t tag = 0;
};

struct RankStats {
  std::vector<ClassCounters> per_class;
  double compute_seconds = 0.0;   ///< time spent in compute()
  double overhead_seconds = 0.0;  ///< per-message CPU overheads
  SimTime finish_time = 0.0;      ///< end of this rank's last handler
  Count events_handled = 0;       ///< handler invocations on this rank
};

class Engine;

/// Handler-side API handed to rank callbacks.
class Context {
 public:
  Context(Engine& engine, int rank, SimTime now)
      : engine_(&engine), rank_(rank), now_(now) {}

  int rank() const { return rank_; }
  SimTime now() const { return now_; }

  /// Advances this rank's clock by `seconds` of computation.
  void compute(SimTime seconds);
  /// Convenience: computation expressed in flops (machine flop rate).
  void compute_flops(Count flops);

  /// Posts an asynchronous send. Self-sends are delivered after the current
  /// handler with no network cost (local hand-off). `env` is an opaque
  /// protocol envelope delivered unchanged in Message::env.
  void send(int dst, std::int64_t tag, Count bytes, int comm_class,
            std::shared_ptr<const DenseMatrix> data = nullptr,
            std::int64_t env = 0);

  /// Schedules Rank::on_timer(tag) on this rank `delay` seconds from now,
  /// through the same deterministic event queue. Timers pay no NIC or
  /// message overhead. Returns an id usable with cancel_timer().
  std::uint64_t set_timer(SimTime delay, std::int64_t tag);
  /// Cancels a pending timer set by THIS rank. A cancelled timer is
  /// discarded without running a handler and does not extend the makespan.
  /// `id` must refer to a timer that has not fired yet (cancelling an
  /// already-fired timer leaks a bookkeeping entry for the rest of the run).
  void cancel_timer(std::uint64_t id);

  /// Emits a named interval on this rank's timeline into the attached obs
  /// sink (no-op without one). Routed through the engine so partitioned
  /// runs observe spans in the canonical sequential order.
  void span(const char* name, std::int64_t id, SimTime begin, SimTime end);
  /// Emits an instant marker on this rank's timeline (see span()).
  void mark(const char* name, std::int64_t id, SimTime time);

 private:
  friend class Engine;
  Engine* engine_;
  int rank_;
  SimTime now_;  ///< advances as the handler computes/sends
  void* part_ = nullptr;  ///< owning Engine::Partition (set at dispatch)
};

/// A reactive rank program.
class Rank {
 public:
  virtual ~Rank() = default;
  /// Invoked once at t = 0.
  virtual void on_start(Context& ctx) = 0;
  /// Invoked for each delivered message.
  virtual void on_message(Context& ctx, const Message& msg) = 0;
  /// Invoked when a timer set via Context::set_timer fires. The default
  /// fails loudly: a program that sets timers must override this.
  virtual void on_timer(Context& ctx, std::int64_t tag);
};

class Engine {
 public:
  /// `comm_classes` sizes the per-class counter arrays.
  Engine(const Machine& machine, int rank_count, int comm_classes);

  /// Installs the program for a rank (must be set for all ranks before run).
  void set_rank(int rank, std::unique_ptr<Rank> program);

  int rank_count() const { return static_cast<int>(programs_.size()); }
  const Machine& machine() const { return *machine_; }

  /// Records every delivered network message (self-sends excluded) into an
  /// in-memory trace, up to `max_events` (oldest kept). Call before run().
  void enable_trace(std::size_t max_events = 1 << 20);
  const std::vector<TraceEvent>& trace() const { return trace_; }

  /// Attaches an observability sink (psi::obs) receiving every message send
  /// and handler execution with its full timing decomposition. Call before
  /// run(); the sink must outlive it. Null (the default) disables
  /// instrumentation: the event loop then pays only one predictable branch
  /// per send/dispatch. The sink is always invoked from the run() thread in
  /// canonical event order, even in partitioned mode.
  void set_sink(obs::Sink* sink);

  /// Attaches a fault injector consulted once per posted network message
  /// (self-sends and timers are never faulted). Call before run(); the
  /// injector must outlive it. Injected faults are emitted to the sink as
  /// marks ("fault-drop", "fault-dup", "fault-delay") on the sender rank.
  /// In partitioned mode the injector is consulted concurrently from the
  /// partition threads; the draws themselves stay deterministic because the
  /// engine passes a counter-stable draw_id (see FaultInjector::on_send).
  void set_fault_injector(FaultInjector* injector);

  /// Attaches a dynamic machine perturbation: compute() durations are
  /// multiplied by its compute_factor and NIC occupancies by its
  /// link_factor, each looked up at the current simulated time. Call before
  /// run(); the perturbation must outlive it.
  void set_perturbation(const Perturbation* perturbation);

  /// Attaches an adversarial schedule policy (see schedule.hpp): seeded
  /// permutation of the pop order among same-timestamp events plus bounded
  /// extra network delays. Call before run(); the policy must outlive it.
  /// Null (the default) keeps the stable-key tie-break and costs nothing.
  void set_schedule_policy(SchedulePolicy* policy);

  /// Requests partition-parallel execution across `partitions` contiguous
  /// rank blocks (1 = sequential, the default). Call before run(). The
  /// effective count is clamped to rank_count(), and the engine falls back
  /// to sequential execution when the machine offers no positive lookahead
  /// (zero inter-partition latency). All outputs are bitwise identical to
  /// the sequential engine for any value.
  void set_partitions(int partitions);
  /// Effective partition count (after run(); the requested count before).
  int partitions() const {
    return ran_ ? static_cast<int>(parts_.size()) : requested_partitions_;
  }
  /// Conservative lookahead window width used by the last partitioned run
  /// (0 when sequential): the minimum cross-partition wire latency.
  SimTime lookahead() const { return lookahead_; }

  /// Runs to completion (event queue drained). Returns the makespan: the
  /// time the last handler finished.
  SimTime run();

  const RankStats& stats(int rank) const;
  /// Total events processed (for engine throughput reporting).
  Count events_processed() const { return events_processed_; }
  /// Host wall-clock seconds spent inside run().
  double run_wall_seconds() const { return wall_seconds_; }
  /// Engine throughput: events processed per host wall-clock second.
  double events_per_second() const {
    return wall_seconds_ > 0.0
               ? static_cast<double>(events_processed_) / wall_seconds_
               : 0.0;
  }
  SimTime makespan() const { return makespan_; }

  /// Cancel-after-fire bookkeeping entries left behind (see cancel_timer),
  /// summed over all partitions. A clean protocol run leaves zero; the
  /// check oracle asserts it.
  std::size_t leaked_timers() const;
  /// Leaked-timer entries of one partition (0 <= partition < partitions()).
  std::size_t leaked_timers(int partition) const;
  /// Peak number of simultaneously-live event slots the arenas ever held
  /// (they only grow), summed over partitions. Bounded per partition by
  /// 2^PSI_SIM_SLOT_BITS; the check oracle records it per trial and
  /// sanity-checks it against the event count.
  std::size_t arena_high_water() const;

 private:
  friend class Context;

  /// POD core of a queued message. The numeric-mode payload is referenced by
  /// index into the owning partition's payload pool (kNoPayload when absent)
  /// so that queuing a trace-mode event never constructs, copies, or
  /// destroys a shared_ptr.
  struct EventSlot {
    std::int64_t tag;
    std::int64_t env;
    Count bytes;
    int src;
    int dst;
    int comm_class;
    std::int32_t payload;
  };
  static constexpr std::int32_t kNoPayload = -1;

  /// 16-byte heap entry. `key` packs the low (64 - kSlotBits) bits of the
  /// event's tie-break priority over the arena slot index: most ties
  /// resolve on the packed bits alone, and the popped key still recovers
  /// the slot. Exact collisions fall through to the per-slot SlotMeta side
  /// table (see earlier()). kSlotBits caps *live* events per partition
  /// (default 2^24 = 16.7M); exceeding it fails loudly in enqueue() rather
  /// than silently corrupting the packed key. The compile-time knob exists
  /// so the exhaustion path can be regression-tested cheaply.
  struct Handle {
    SimTime time;
    std::uint64_t key;
  };
#ifndef PSI_SIM_SLOT_BITS
#define PSI_SIM_SLOT_BITS 24
#endif
  static constexpr int kSlotBits = PSI_SIM_SLOT_BITS;
  static_assert(kSlotBits >= 4 && kSlotBits <= 32,
                "PSI_SIM_SLOT_BITS out of range");
  static constexpr std::uint64_t kSlotMask =
      (std::uint64_t{1} << kSlotBits) - 1;
  /// Bits of the priority that fit in a handle key above the slot index.
  static constexpr std::uint64_t kOrderMask =
      (std::uint64_t{1} << (64 - kSlotBits)) - 1;

  /// Stable event keys: the low kRankBits bits carry the emitting rank, the
  /// high bits its per-rank enqueue counter. A key therefore depends only
  /// on the emitting rank's causal history — never on global arrival order
  /// — which is what makes the tie-break partition-invariant.
  static constexpr int kRankBits = 20;
  static constexpr std::uint64_t kRankMask =
      (std::uint64_t{1} << kRankBits) - 1;
  /// Hard cap on partitions (event ids pack the partition index above a
  /// 48-bit per-partition counter; practical counts are far smaller).
  static constexpr int kMaxPartitions = 1024;

  /// Per-slot event metadata consulted on exact handle-key ties and at pop.
  struct SlotMeta {
    std::uint64_t pri;    ///< full tie-break priority
    std::uint64_t key64;  ///< stable event key (unique within the run)
    std::uint64_t id;     ///< dense obs seq (sequential) or eid (partitioned)
  };

  /// A fully materialized position in the strict total event order
  /// (time, pri & kOrderMask, pri, key64) — used for the refill horizon,
  /// which must not dangle into the recyclable slot arena.
  struct OrderKey {
    SimTime time;
    std::uint64_t pri;
    std::uint64_t key64;
  };

  static bool key_earlier(const OrderKey& a, const OrderKey& b) {
    if (a.time != b.time) return a.time < b.time;
    const std::uint64_t oa = a.pri & kOrderMask;
    const std::uint64_t ob = b.pri & kOrderMask;
    if (oa != ob) return oa < ob;
    if (a.pri != b.pri) return a.pri < b.pri;
    return a.key64 < b.key64;
  }

  struct RankState {
    SimTime busy_until = 0.0;
    SimTime nic_send_free = 0.0;
    SimTime nic_recv_free = 0.0;
    RankStats stats;
  };

  /// One buffered observability record of a partitioned run, replayed to
  /// the sink in canonical order at the window merge. Kind tags an index
  /// into the per-partition typed record pools.
  struct RecordRef {
    enum Kind : std::uint8_t { kSend, kHandler, kSpan, kMark };
    Kind kind;
    std::uint32_t index;
  };

  /// One dispatched event of a partitioned run: everything the merge needs
  /// to replay it — its position in the total order, its event id, its
  /// buffered records, and its trace entry.
  struct Bundle {
    SimTime time;
    std::uint64_t pri;
    std::uint64_t key64;
    std::uint64_t eid;
    std::uint32_t rec_begin;
    std::uint32_t rec_end;
    bool has_trace;
    TraceEvent trace;
  };

  /// A cross-partition message in flight between windows. The payload rides
  /// as a shared_ptr (refcounts are atomic) and is re-registered in the
  /// destination partition's pool at the drain.
  struct MailboxEntry {
    SimTime time;
    EventSlot slot;  ///< payload == kNoPayload; the real one rides below
    std::uint64_t pri;
    std::uint64_t key64;
    std::uint64_t eid;
    std::shared_ptr<const DenseMatrix> payload;
  };

  /// One contiguous block of ranks with its own event queue, arena, and
  /// observability buffers. Sequential execution is the 1-partition case.
  struct Partition {
    int index = 0;
    int begin_rank = 0;
    int end_rank = 0;  ///< exclusive

    std::vector<Handle> heap;      ///< 4-ary min-heap: events before horizon
    std::vector<Handle> overflow;  ///< unsorted events at/after horizon
    std::size_t overflow_begin = 0;  ///< consumed prefix of overflow
    /// Pushes not earlier than this go to overflow. Starts below every real
    /// event so the heap only ever holds refill-selected chunks.
    OrderKey horizon{-std::numeric_limits<SimTime>::infinity(), 0, 0};

    std::vector<EventSlot> pool;            ///< stable event arena
    std::vector<SlotMeta> meta;             ///< parallel to pool
    std::vector<std::uint32_t> free_slots;  ///< reusable arena slots
    std::vector<std::shared_ptr<const DenseMatrix>> payloads;
    std::vector<std::int32_t> free_payloads;

    /// key64s of cancelled-but-not-yet-popped timers; entries are erased
    /// when the timer's event is popped and discarded.
    std::unordered_set<std::uint64_t> cancelled;

    /// Partitioned-mode event id counter (ids are (index << 48) | counter).
    std::uint64_t next_eid = 0;

    Count events = 0;        ///< handlers dispatched in this partition
    SimTime makespan = 0.0;  ///< latest handler completion in this partition

    /// Observability buffers of the current window (partitioned mode).
    std::vector<Bundle> bundles;
    std::vector<RecordRef> rec_order;
    std::vector<obs::MsgSend> rec_sends;
    std::vector<obs::HandlerRun> rec_handlers;
    std::vector<obs::SpanEvent> rec_spans;
    std::vector<obs::MarkEvent> rec_marks;

    /// Outboxes, one per destination partition; only this partition's
    /// thread writes them during a window.
    std::vector<std::vector<MailboxEntry>> outbox;

    /// Earliest pending event time after the last window (refreshed by
    /// run_window and the mailbox drain).
    SimTime next_time = 0.0;
  };

  bool earlier(const Partition& p, const Handle& a, const Handle& b) const {
    if (a.time != b.time) return a.time < b.time;
    const std::uint64_t oa = a.key >> kSlotBits;
    const std::uint64_t ob = b.key >> kSlotBits;
    if (oa != ob) return oa < ob;
    const SlotMeta& ma = p.meta[a.key & kSlotMask];
    const SlotMeta& mb = p.meta[b.key & kSlotMask];
    if (ma.pri != mb.pri) return ma.pri < mb.pri;
    return ma.key64 < mb.key64;
  }

  void post_send(Context& ctx, int dst, std::int64_t tag, Count bytes,
                 int comm_class, std::shared_ptr<const DenseMatrix> data,
                 std::int64_t env);
  std::uint64_t post_timer(Context& ctx, SimTime delay, std::int64_t tag);
  void post_span(Context& ctx, const char* name, std::int64_t id,
                 SimTime begin, SimTime end);
  void post_mark(Context& ctx, const char* name, std::int64_t id,
                 SimTime time);
  /// Allocates a fresh stable key for an event emitted by `rank`.
  std::uint64_t next_key(int rank);
  /// Queues an event into partition `p` at `time` with full metadata.
  void enqueue(Partition& p, SimTime time, const EventSlot& slot,
               std::uint64_t pri, std::uint64_t key64, std::uint64_t id);
  /// Registers a numeric payload in `p`'s pool; kNoPayload for null.
  std::int32_t register_payload(Partition& p,
                                std::shared_ptr<const DenseMatrix> data);
  double compute_factor(int rank, SimTime t) const {
    return perturbation_ != nullptr ? perturbation_->compute_factor(rank, t)
                                    : 1.0;
  }
  /// NIC occupancy of a transfer, including any link degradation in effect
  /// at time `t`.
  SimTime transfer_occupancy(int src, int dst, Count bytes, SimTime t) const {
    SimTime occupancy = machine_->occupancy(src, dst, bytes);
    if (perturbation_ != nullptr)
      occupancy *= perturbation_->link_factor(machine_->node_of(src),
                                              machine_->node_of(dst), t);
    return occupancy;
  }
  void dispatch(Partition& p, SimTime time, const EventSlot& slot,
                const SlotMeta& meta,
                std::shared_ptr<const DenseMatrix> payload);

  void heap_push(Partition& p, Handle handle);
  Handle heap_pop(Partition& p);
  /// Moves the earliest chunk of p.overflow into the (empty) heap and
  /// advances p.horizon. Called when the heap drains with far events
  /// pending.
  void refill_heap(Partition& p);

  Partition& part_of(Context& ctx) {
    return ctx.part_ != nullptr
               ? *static_cast<Partition*>(ctx.part_)
               : parts_[static_cast<std::size_t>(
                     part_of_rank_[static_cast<std::size_t>(ctx.rank_)])];
  }

  /// Lays out the effective partitions for run(): clamps the requested
  /// count, computes the lookahead, and falls back to sequential execution
  /// when no positive lookahead exists.
  void setup_partitions();
  /// Seeds the t=0 start event of every rank into its partition.
  void seed_starts();
  /// Processes p's events with time < w_end; returns the earliest pending
  /// event time afterwards (+inf when the partition drained).
  SimTime run_window(Partition& p, SimTime w_end);
  /// Replays the window's buffered obs/trace bundles to the sink in
  /// canonical order, reconstructing the dense sequential seq labels.
  void merge_window();
  /// Moves every outbox entry into its destination partition's queue.
  void drain_mailboxes();

  const Machine* machine_;
  int comm_classes_;
  std::vector<std::unique_ptr<Rank>> programs_;
  std::vector<RankState> states_;

  std::vector<Partition> parts_;   ///< 1 partition until set_partitions
  std::vector<int> part_of_rank_;  ///< owning partition per rank
  int requested_partitions_ = 1;
  bool partitioned_ = false;  ///< effective mode of the current run
  SimTime lookahead_ = 0.0;

  /// Per-rank stable-key counters (enqueues) and fault/schedule draw
  /// counters (network posts). Only the owning partition's thread touches a
  /// rank's entries.
  std::vector<std::uint64_t> rank_keys_;
  std::vector<std::uint64_t> rank_draws_;

  /// Dense obs seq assignment. Sequential mode: assigned at enqueue.
  /// Partitioned mode: assigned at the merge, in canonical emission order;
  /// eid_seq_ carries eid -> seq for events whose MsgSend has been emitted
  /// but whose handler has not yet run.
  std::uint64_t next_seq_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> eid_seq_;

  obs::Sink* sink_ = nullptr;
  FaultInjector* injector_ = nullptr;
  const Perturbation* perturbation_ = nullptr;
  SchedulePolicy* schedule_ = nullptr;
  /// Sequence of the event whose handler is currently dispatching (the
  /// causal emitter of any sends it posts); ~0 outside dispatch. Only
  /// meaningful in sequential mode — partitioned runs recover emitters at
  /// the merge.
  std::uint64_t dispatching_seq_ = ~std::uint64_t{0};
  bool tracing_ = false;
  std::size_t trace_limit_ = 0;
  std::vector<TraceEvent> trace_;
  Count events_processed_ = 0;
  SimTime makespan_ = 0.0;
  double wall_seconds_ = 0.0;
  bool ran_ = false;
};

}  // namespace psi::sim
