/// \file machine.hpp
/// \brief Machine model: topology-aware communication costs.
///
/// The paper runs on NERSC Edison (Cray XC30): 24 cores per node, Aries
/// dragonfly interconnect with electrical groups. The model captures what
/// matters for the paper's phenomena:
///
///  * ranks fill nodes consecutively (as most MPI implementations do —
///    paper §III), so logically-close ranks are physically close;
///  * three communication tiers (intra-node shared memory, intra-group,
///    inter-group) with increasing latency and decreasing bandwidth;
///  * per-NIC serialization, which turns the flat tree's p-1 root sends into
///    the "instantaneous hot spot" the paper describes;
///  * seeded lognormal jitter on node-pair bandwidth, modeling the network
///    inhomogeneity/contention that causes the run-to-run variability of
///    Figure 8 (a fresh seed per run = a fresh job placement).
#pragma once

#include <cstdint>

#include "sparse/types.hpp"

namespace psi::sim {

using SimTime = double;  ///< seconds of virtual time

struct MachineConfig {
  int cores_per_node = 24;    ///< Edison: two 12-core Ivy Bridge sockets
  int nodes_per_group = 64;   ///< electrical group size

  /// Effective dense-kernel rate per core (GEMM-dominated; below peak).
  double flop_rate = 10e9;
  /// CPU time consumed per message on each of the send and receive sides.
  double msg_overhead = 1.0e-6;

  /// Tier parameters: latency (s) and bandwidth (bytes/s).
  double lat_intranode = 0.6e-6;
  double bw_intranode = 8.0e9;
  double lat_intragroup = 1.6e-6;
  double bw_intragroup = 5.0e9;
  double lat_intergroup = 2.8e-6;
  double bw_intergroup = 3.2e9;

  /// Lognormal sigma applied to each node pair's effective bandwidth
  /// (0 = perfectly homogeneous network).
  double jitter_sigma = 0.0;
  /// Seed of the jitter field; a different seed models a different job
  /// placement / different background traffic.
  std::uint64_t jitter_seed = 0;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  const MachineConfig& config() const { return config_; }

  int node_of(int rank) const { return rank / config_.cores_per_node; }
  int group_of(int rank) const { return node_of(rank) / config_.nodes_per_group; }

  /// Wire latency between two ranks.
  SimTime latency(int src, int dst) const;
  /// Time the payload occupies a NIC (bytes / effective bandwidth), with the
  /// pair's jitter applied. Zero for rank-local transfers.
  SimTime occupancy(int src, int dst, Count bytes) const;

  /// Deterministic bandwidth multiplier (>= ~lognormal around 1) for the
  /// node pair of (src, dst); 1.0 when jitter_sigma == 0.
  double pair_jitter(int src, int dst) const;

 private:
  MachineConfig config_;
};

}  // namespace psi::sim
