#include "sim/fault.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace psi::sim {

void Perturbation::add_compute_slowdown(int rank, SimTime begin, SimTime end,
                                        double factor) {
  PSI_CHECK_MSG(rank >= 0, "perturbation: invalid rank " << rank);
  PSI_CHECK_MSG(begin <= end, "perturbation: window begins after it ends");
  PSI_CHECK_MSG(factor >= 1.0, "perturbation: factor " << factor << " < 1");
  compute_[rank].push_back(Window{begin, end, factor});
}

void Perturbation::add_link_degradation(int node_a, int node_b, SimTime begin,
                                        SimTime end, double factor) {
  PSI_CHECK_MSG(node_a >= 0 && node_b >= 0, "perturbation: invalid node pair");
  PSI_CHECK_MSG(begin <= end, "perturbation: window begins after it ends");
  PSI_CHECK_MSG(factor >= 1.0, "perturbation: factor " << factor << " < 1");
  const auto key = std::minmax(node_a, node_b);
  links_[key].push_back(Window{begin, end, factor});
}

double Perturbation::lookup(const std::vector<Window>& windows, SimTime t) {
  double factor = 1.0;
  for (const Window& w : windows)
    if (t >= w.begin && t < w.end) factor *= w.factor;
  return factor;
}

double Perturbation::compute_factor(int rank, SimTime t) const {
  const auto it = compute_.find(rank);
  return it == compute_.end() ? 1.0 : lookup(it->second, t);
}

double Perturbation::link_factor(int node_a, int node_b, SimTime t) const {
  if (links_.empty()) return 1.0;
  const auto it = links_.find(std::minmax(node_a, node_b));
  return it == links_.end() ? 1.0 : lookup(it->second, t);
}

}  // namespace psi::sim
