/// \file fault.hpp
/// \brief Engine-side fault hooks: message fault injection and dynamic
/// machine-state perturbation.
///
/// The engine stays deterministic under faults: the injector is consulted
/// exactly once per posted network message with a counter-stable draw_id
/// (unique per post, derived from the sender's causal history — identical
/// across sequential and partitioned execution), so a seeded injector
/// reproduces the same decision per message every run and for any partition
/// count. Perturbation is a pure function of (rank/node pair, simulated
/// time), looked up on the compute and transfer paths.
///
/// Semantics:
///  * drop      — the sender pays full cost (overhead, NIC occupancy) but the
///                message is lost on the wire and never delivered;
///  * duplicates — N extra copies are delivered after the original, each
///                offset by `duplicate_delay`; the sender's NIC is charged
///                once (the network duplicated the packet), the receiver's
///                NIC is charged per copy;
///  * delay     — extra wire time added to every delivered copy.
///
/// Self-sends (local hand-offs) and timer events are never faulted.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/machine.hpp"
#include "sparse/types.hpp"

namespace psi::sim {

/// What the injector decided for one posted message.
struct FaultDecision {
  bool drop = false;         ///< lose the original copy on the wire
  int duplicates = 0;        ///< extra copies delivered after the original
  SimTime delay = 0.0;       ///< extra wire delay on every delivered copy
  SimTime duplicate_delay = 0.0;  ///< spacing between successive copies

  bool any() const { return drop || duplicates > 0 || delay > 0.0; }
};

/// Consulted by the engine for every posted network message (self-sends and
/// timers excluded). Implementations must be pure functions of their seed
/// and the call's arguments — `draw_id` is the engine's counter-stable
/// identity for the post (unique; low bits name the sender, high bits its
/// per-sender post counter), so deriving randomness from (seed, draw_id)
/// yields identical decisions for any partitioning. Partitioned runs call
/// concurrently from the partition threads, so implementations must also be
/// thread-safe (pure draws; any statistics behind atomics). In partitioned
/// runs every returned delay must be >= 0 (a negative delay would violate
/// the conservative lookahead bound; the engine checks).
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual FaultDecision on_send(int src, int dst, std::int64_t tag,
                                Count bytes, int comm_class, SimTime post,
                                std::uint64_t draw_id) = 0;
};

/// Dynamic machine-state perturbation: per-rank compute slowdown windows and
/// per-node-pair bandwidth degradation windows. Factors are multiplicative
/// (overlapping windows compound) and >= 1; outside every window the factor
/// is exactly 1, so an empty Perturbation is a no-op.
class Perturbation {
 public:
  /// Compute on `rank` during [begin, end) takes `factor`x as long.
  void add_compute_slowdown(int rank, SimTime begin, SimTime end,
                            double factor);
  /// Transfers between `node_a` and `node_b` (unordered) during [begin, end)
  /// occupy the NICs `factor`x as long (bandwidth collapses by 1/factor).
  void add_link_degradation(int node_a, int node_b, SimTime begin, SimTime end,
                            double factor);

  /// Multiplier applied to compute() durations on `rank` at time `t`.
  double compute_factor(int rank, SimTime t) const;
  /// Multiplier applied to the NIC occupancy of a transfer between the two
  /// nodes at time `t`.
  double link_factor(int node_a, int node_b, SimTime t) const;

  bool empty() const { return compute_.empty() && links_.empty(); }

 private:
  struct Window {
    SimTime begin;
    SimTime end;
    double factor;
  };
  static double lookup(const std::vector<Window>& windows, SimTime t);

  std::map<int, std::vector<Window>> compute_;
  std::map<std::pair<int, int>, std::vector<Window>> links_;
};

}  // namespace psi::sim
