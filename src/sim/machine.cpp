#include "sim/machine.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace psi::sim {

Machine::Machine(const MachineConfig& config) : config_(config) {
  PSI_CHECK(config.cores_per_node > 0);
  PSI_CHECK(config.nodes_per_group > 0);
  PSI_CHECK(config.flop_rate > 0);
  PSI_CHECK(config.bw_intranode > 0 && config.bw_intragroup > 0 &&
            config.bw_intergroup > 0);
  PSI_CHECK(config.jitter_sigma >= 0);
}

SimTime Machine::latency(int src, int dst) const {
  if (src == dst) return 0.0;
  if (node_of(src) == node_of(dst)) return config_.lat_intranode;
  if (group_of(src) == group_of(dst)) return config_.lat_intragroup;
  return config_.lat_intergroup;
}

double Machine::pair_jitter(int src, int dst) const {
  if (config_.jitter_sigma <= 0.0) return 1.0;
  int a = node_of(src), b = node_of(dst);
  if (a == b) return 1.0;  // shared memory: no network jitter
  if (a > b) std::swap(a, b);
  const std::uint64_t h = hash_combine(
      config_.jitter_seed,
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
          static_cast<std::uint32_t>(b));
  // Convert the hash to a standard normal via a pair of uniforms
  // (Box-Muller); deterministic per (seed, node pair).
  std::uint64_t state = h;
  const double u1 =
      (static_cast<double>(splitmix64(state) >> 11) + 0.5) * 0x1.0p-53;
  const double u2 = static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  // Bandwidth multiplier >= 0: slow pairs have multiplier > 1 on time.
  return std::exp(config_.jitter_sigma * z);
}

SimTime Machine::occupancy(int src, int dst, Count bytes) const {
  if (src == dst) return 0.0;
  double bw = config_.bw_intergroup;
  if (node_of(src) == node_of(dst))
    bw = config_.bw_intranode;
  else if (group_of(src) == group_of(dst))
    bw = config_.bw_intragroup;
  return static_cast<double>(bytes) / bw * pair_jitter(src, dst);
}

}  // namespace psi::sim
