/// \file schedule.hpp
/// \brief Adversarial schedule-space exploration hook for the engine.
///
/// The engine's event queue is a strict (time, seq) total order: events with
/// equal timestamps pop in FIFO order. That FIFO tie-break is an arbitrary
/// choice among the schedules a real asynchronous network could produce —
/// the correctness claims of the tree protocols (and the resilient layer's
/// bitwise fault-independence) must hold for EVERY legal schedule, not just
/// the one the queue happens to realize. A SchedulePolicy lets a test
/// harness explore that space deterministically:
///
///  * tie_priority() replaces the FIFO sequence number as the tie-break key
///    among same-timestamp events, seeded-permuting their pop order. Local
///    hand-offs (self-sends) are exempt: they model a rank's own task queue,
///    whose order is program-controlled, not a network artifact.
///  * network_delay() adds a bounded extra wire delay to each network
///    message, perturbing arrival order across ranks the way real link
///    jitter does. Self-sends and timers are never delayed.
///
/// A policy must be a pure deterministic function of its own seeded state:
/// the engine consults it in its deterministic enqueue/post order, so the
/// same policy seed reproduces the same schedule exactly. Composes with
/// FaultInjector (faults draw first; the adversarial delay adds on top) and
/// with the timer queue (timers are reordered among ties but never delayed
/// — a retry deadline is rank-local, not a network event). Unset, the hook
/// costs one predictable branch per enqueue/send.
#pragma once

#include <cstdint>

#include "sim/machine.hpp"
#include "sparse/types.hpp"

namespace psi::sim {

class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;

  /// Tie-break priority of the event with global sequence number `seq`.
  /// Events queued for the same timestamp pop in ascending priority order
  /// (residual ties broken by arena slot). Return `seq` for FIFO.
  virtual std::uint64_t tie_priority(std::uint64_t seq) = 0;

  /// Extra delivery delay (>= 0, bounded) for one posted network message.
  /// Called once per post, after the fault injector, in deterministic send
  /// order.
  virtual SimTime network_delay(int src, int dst, std::int64_t tag,
                                Count bytes, int comm_class,
                                SimTime post) = 0;
};

}  // namespace psi::sim
