/// \file schedule.hpp
/// \brief Adversarial schedule-space exploration hook for the engine.
///
/// The engine's event queue is a strict (time, key) total order: events with
/// equal timestamps pop by their stable per-rank key. That tie-break is an
/// arbitrary choice among the schedules a real asynchronous network could
/// produce — the correctness claims of the tree protocols (and the resilient
/// layer's bitwise fault-independence) must hold for EVERY legal schedule,
/// not just the one the queue happens to realize. A SchedulePolicy lets a
/// test harness explore that space deterministically:
///
///  * tie_priority() replaces the stable event key as the tie-break value
///    among same-timestamp events, seeded-permuting their pop order. Local
///    hand-offs (self-sends) are exempt: they model a rank's own task queue,
///    whose order is program-controlled, not a network artifact.
///  * network_delay() adds a bounded extra wire delay to each network
///    message, perturbing arrival order across ranks the way real link
///    jitter does. Self-sends and timers are never delayed.
///
/// A policy must be a pure function of its seed and the call's arguments —
/// never of internal call-order counters or mutable state. The engine hands
/// every call a counter-stable identity (the event key, or a per-sender
/// draw_id) that is identical whether the engine runs sequentially or
/// partitioned, so a pure policy reproduces the same schedule exactly in
/// both modes; in partitioned runs it is invoked concurrently from the
/// partition threads. Composes with FaultInjector (faults draw first; the
/// adversarial delay adds on top) and with the timer queue (timers are
/// reordered among ties but never delayed — a retry deadline is rank-local,
/// not a network event). Unset, the hook costs one predictable branch per
/// enqueue/send.
#pragma once

#include <cstdint>

#include "sim/machine.hpp"
#include "sparse/types.hpp"

namespace psi::sim {

class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;

  /// Tie-break priority of the event with stable key `key` (unique per
  /// event; low bits name the emitting rank, high bits its per-rank
  /// counter). Events queued for the same timestamp pop in ascending
  /// priority order (residual ties broken by the key itself). Return `key`
  /// for the engine's default order. Must be pure and thread-safe.
  virtual std::uint64_t tie_priority(std::uint64_t key) = 0;

  /// Extra delivery delay (>= 0, bounded) for one posted network message.
  /// Called once per post, after the fault injector. `draw_id` is the
  /// engine's counter-stable draw identity for this post (unique; low bits
  /// name the sender, high bits its per-sender post counter) — derive all
  /// randomness from (seed, draw_id), never from call order. Must be pure
  /// and thread-safe.
  virtual SimTime network_delay(int src, int dst, std::int64_t tag,
                                Count bytes, int comm_class, SimTime post,
                                std::uint64_t draw_id) = 0;
};

}  // namespace psi::sim
