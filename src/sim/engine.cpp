#include "sim/engine.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "obs/sink.hpp"

namespace psi::sim {

void Context::compute(SimTime seconds) {
  PSI_CHECK(seconds >= 0.0);
  // A perturbed (straggling) rank takes longer for the same work; the
  // inflated duration is what the rank is actually busy for, so it is what
  // gets recorded.
  seconds *= engine_->compute_factor(rank_, now_);
  now_ += seconds;
  // Attribution happens in Engine::dispatch via the time delta; record the
  // compute share directly here.
  engine_->states_[static_cast<std::size_t>(rank_)].stats.compute_seconds += seconds;
}

void Context::compute_flops(Count flops) {
  PSI_CHECK(flops >= 0);
  compute(static_cast<double>(flops) / engine_->machine().config().flop_rate);
}

void Context::send(int dst, std::int64_t tag, Count bytes, int comm_class,
                   std::shared_ptr<const DenseMatrix> data, std::int64_t env) {
  engine_->post_send(*this, dst, tag, bytes, comm_class, std::move(data), env);
}

std::uint64_t Context::set_timer(SimTime delay, std::int64_t tag) {
  return engine_->post_timer(*this, delay, tag);
}

void Context::cancel_timer(std::uint64_t id) {
  PSI_CHECK_MSG(id < engine_->next_seq_,
                "cancel_timer: unknown timer id " << id);
  engine_->cancelled_timers_.insert(id);
}

void Rank::on_timer(Context& ctx, std::int64_t tag) {
  (void)tag;
  PSI_CHECK_MSG(false, "rank " << ctx.rank()
                               << " received a timer but does not override "
                                  "Rank::on_timer");
}

Engine::Engine(const Machine& machine, int rank_count, int comm_classes)
    : machine_(&machine), comm_classes_(comm_classes) {
  PSI_CHECK(rank_count > 0);
  PSI_CHECK(comm_classes > 0);
  programs_.resize(static_cast<std::size_t>(rank_count));
  states_.resize(static_cast<std::size_t>(rank_count));
  for (auto& state : states_)
    state.stats.per_class.resize(static_cast<std::size_t>(comm_classes));
}

void Engine::enable_trace(std::size_t max_events) {
  PSI_CHECK(!ran_);
  tracing_ = true;
  trace_limit_ = max_events;
  trace_.reserve(std::min<std::size_t>(max_events, 1 << 16));
}

void Engine::set_sink(obs::Sink* sink) {
  PSI_CHECK(!ran_);
  sink_ = sink;
}

void Engine::set_fault_injector(FaultInjector* injector) {
  PSI_CHECK(!ran_);
  injector_ = injector;
}

void Engine::set_perturbation(const Perturbation* perturbation) {
  PSI_CHECK(!ran_);
  perturbation_ = perturbation;
}

void Engine::set_schedule_policy(SchedulePolicy* policy) {
  PSI_CHECK(!ran_);
  schedule_ = policy;
}

void Engine::set_rank(int rank, std::unique_ptr<Rank> program) {
  PSI_CHECK(rank >= 0 && rank < rank_count());
  PSI_CHECK(!ran_);
  programs_[static_cast<std::size_t>(rank)] = std::move(program);
}

void Engine::heap_push(Handle handle) {
  std::size_t i = heap_.size();
  heap_.push_back(handle);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(handle, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = handle;
}

Engine::Handle Engine::heap_pop() {
  const Handle top = heap_.front();
  const Handle last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c)
        if (earlier(heap_[c], heap_[best])) best = c;
      if (!earlier(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

std::uint64_t Engine::enqueue(SimTime time, const EventSlot& slot) {
  std::uint32_t idx;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(pool_.size());
    PSI_CHECK_MSG(idx <= kSlotMask,
                  "event arena exhausted: more than 2^"
                      << kSlotBits
                      << " live events; rebuild with a larger "
                         "PSI_SIM_SLOT_BITS or drain sends faster");
    pool_.push_back(EventSlot{});
  }
  pool_[idx] = slot;
  PSI_CHECK_MSG(next_seq_ < (std::uint64_t{1} << (64 - kSlotBits)),
                "event sequence number overflow");
  const std::uint64_t seq = next_seq_++;
  std::uint64_t order = seq;
  if (schedule_ != nullptr) {
    // The handle's high bits become the policy's tie-break priority; the
    // real seq is parked per slot for dispatch. Keys stay unique among live
    // events (the slot index disambiguates priority collisions), so the pop
    // order is still a strict deterministic total order. Self-sends keep
    // FIFO: they model the rank's own task queue, which a network adversary
    // cannot reorder (and whose order the resilient mode's canonical
    // accumulation relies on).
    if (slot_seq_.size() < pool_.size()) slot_seq_.resize(pool_.size());
    slot_seq_[idx] = seq;
    if (slot.src != slot.dst)
      order = schedule_->tie_priority(seq) &
              ((std::uint64_t{1} << (64 - kSlotBits)) - 1);
  }
  const Handle handle{time, (order << kSlotBits) | idx};
  if (earlier(handle, horizon_))
    heap_push(handle);
  else
    overflow_.push_back(handle);
  return seq;
}

void Engine::refill_heap() {
  PSI_ASSERT(heap_.empty() && overflow_begin_ < overflow_.size());
  const auto live = overflow_.begin() +
                    static_cast<std::ptrdiff_t>(overflow_begin_);
  const std::size_t n = overflow_.size() - overflow_begin_;
  // Chunk size balances heap residency (16k handles = 256 KiB) against how
  // often the buffer is rescanned (each event survives ~16 refill scans at
  // most before it is selected).
  std::size_t chunk = std::max<std::size_t>(16384, n / 16);
  if (chunk >= n) {
    chunk = n;
    horizon_ = *std::max_element(live, overflow_.end(), earlier);
  } else {
    // nth_element over the strict total (time, seq) order: the chunk's
    // membership — the `chunk` globally earliest events — is unique, so the
    // pop sequence is independent of the buffer's internal arrangement.
    // (Partitioning the chunk to the tail with a reversed comparator to
    // consume it by resize() was measured 2.3x SLOWER overall: the
    // descending-ordered survivors make every subsequent nth_element and
    // heap_push pathological, so the chunk goes to the front instead.)
    std::nth_element(live, live + static_cast<std::ptrdiff_t>(chunk - 1),
                     overflow_.end(), earlier);
    horizon_ = live[static_cast<std::ptrdiff_t>(chunk - 1)];
  }
  for (std::size_t i = 0; i < chunk; ++i)
    heap_push(live[static_cast<std::ptrdiff_t>(i)]);
  // Consume the chunk by cursor; compact the dead prefix only once it
  // crosses half the buffer, so consumption is amortized O(1) per event.
  overflow_begin_ += chunk;
  if (overflow_begin_ >= overflow_.size()) {
    overflow_.clear();
    overflow_begin_ = 0;
  } else if (overflow_begin_ > overflow_.size() / 2) {
    overflow_.erase(overflow_.begin(),
                    overflow_.begin() +
                        static_cast<std::ptrdiff_t>(overflow_begin_));
    overflow_begin_ = 0;
  }
}

std::int32_t Engine::register_payload(std::shared_ptr<const DenseMatrix> data) {
  if (!data) return kNoPayload;
  std::int32_t payload;
  if (!free_payloads_.empty()) {
    payload = free_payloads_.back();
    free_payloads_.pop_back();
    payloads_[static_cast<std::size_t>(payload)] = std::move(data);
  } else {
    payload = static_cast<std::int32_t>(payloads_.size());
    payloads_.push_back(std::move(data));
  }
  return payload;
}

void Engine::post_send(Context& ctx, int dst, std::int64_t tag, Count bytes,
                       int comm_class, std::shared_ptr<const DenseMatrix> data,
                       std::int64_t env) {
  PSI_CHECK_MSG(dst >= 0 && dst < rank_count(),
                "send to invalid rank " << dst << " (rank count "
                                        << rank_count() << ")");
  PSI_CHECK_MSG(bytes >= 0, "send with negative byte count " << bytes);
  PSI_CHECK_MSG(comm_class >= 0 && comm_class < comm_classes_,
                "send with invalid comm class " << comm_class << " (have "
                                                << comm_classes_ << ")");
  const int src = ctx.rank_;
  auto& src_state = states_[static_cast<std::size_t>(src)];

  SimTime deliver_at;
  SimTime xfer_start;
  SimTime xfer_end;
  FaultDecision fault;
  if (dst == src) {
    // Local hand-off: delivered after the current handler instant, no NIC,
    // no overhead, not counted as network traffic, and never faulted.
    deliver_at = ctx.now_;
    xfer_start = xfer_end = ctx.now_;
  } else {
    if (injector_ != nullptr)
      fault = injector_->on_send(src, dst, tag, bytes, comm_class, ctx.now_);
    auto& counters =
        src_state.stats.per_class[static_cast<std::size_t>(comm_class)];
    counters.bytes_sent += bytes;
    counters.messages_sent += 1;
    // Sender CPU overhead.
    ctx.now_ += machine_->config().msg_overhead;
    src_state.stats.overhead_seconds += machine_->config().msg_overhead;
    // Sender NIC serialization. Even a dropped message pays full sender
    // cost: the loss happens on the wire.
    const SimTime occupancy = transfer_occupancy(src, dst, bytes, ctx.now_);
    xfer_start = std::max(ctx.now_, src_state.nic_send_free);
    xfer_end = xfer_start + occupancy;
    src_state.nic_send_free = xfer_end;
    deliver_at = xfer_end + machine_->latency(src, dst) + fault.delay;
    if (schedule_ != nullptr) {
      // Adversarial wire jitter, on top of any injected fault delay.
      const SimTime extra = schedule_->network_delay(src, dst, tag, bytes,
                                                     comm_class, ctx.now_);
      PSI_CHECK_MSG(extra >= 0.0,
                    "schedule policy returned negative delay " << extra);
      deliver_at += extra;
    }
  }

  // Deliver the original (unless dropped) plus any duplicated copies. Each
  // queued copy owns its own payload-pool entry so slot recycling on
  // dispatch stays one-owner.
  const int copies = (fault.drop ? 0 : 1) + fault.duplicates;
  for (int copy = 0; copy < copies; ++copy) {
    const SimTime at =
        deliver_at + static_cast<double>(copy + (fault.drop ? 1 : 0)) *
                         fault.duplicate_delay;
    const std::int32_t payload =
        register_payload(copy + 1 == copies ? std::move(data) : data);
    const std::uint64_t seq = enqueue(
        at, EventSlot{tag, env, bytes, src, dst, comm_class, payload});
    if (sink_ != nullptr) {
      obs::MsgSend ev;
      ev.seq = seq;
      ev.emitter = dispatching_seq_;
      ev.src = src;
      ev.dst = dst;
      ev.tag = tag;
      ev.bytes = bytes;
      ev.comm_class = comm_class;
      ev.post = ctx.now_;
      ev.xfer_start = xfer_start;
      ev.xfer_end = xfer_end;
      ev.arrival = at;
      sink_->on_send(ev);
    }
  }
  if (sink_ != nullptr && fault.any()) {
    obs::MarkEvent mark;
    mark.rank = src;
    mark.id = tag;
    mark.time = ctx.now_;
    if (fault.drop) {
      mark.name = "fault-drop";
      sink_->on_mark(mark);
    }
    if (fault.duplicates > 0) {
      mark.name = "fault-dup";
      sink_->on_mark(mark);
    }
    if (fault.delay > 0.0) {
      mark.name = "fault-delay";
      sink_->on_mark(mark);
    }
  }
}

std::uint64_t Engine::post_timer(Context& ctx, SimTime delay,
                                 std::int64_t tag) {
  PSI_CHECK_MSG(delay >= 0.0, "set_timer with negative delay " << delay);
  const SimTime fire = ctx.now_ + delay;
  const std::uint64_t seq = enqueue(
      fire, EventSlot{tag, 0, 0, kTimerSrc, ctx.rank_, 0, kNoPayload});
  if (sink_ != nullptr) {
    // Synthetic send record so the causal graph links the timer handler
    // back to the handler that armed it; the [post, arrival) gap is the
    // timer wait, not network time.
    obs::MsgSend ev;
    ev.seq = seq;
    ev.emitter = dispatching_seq_;
    ev.src = kTimerSrc;
    ev.dst = ctx.rank_;
    ev.tag = tag;
    ev.bytes = 0;
    ev.comm_class = 0;
    ev.post = ctx.now_;
    ev.xfer_start = ctx.now_;
    ev.xfer_end = ctx.now_;
    ev.arrival = fire;
    sink_->on_send(ev);
  }
  return seq;
}

void Engine::dispatch(SimTime time, std::uint64_t seq, const EventSlot& slot,
                      std::shared_ptr<const DenseMatrix> payload) {
  auto& state = states_[static_cast<std::size_t>(slot.dst)];

  SimTime ready = time;
  if (slot.dst != slot.src && slot.src >= 0) {
    // Receiver NIC serialization: the payload occupies the receiving NIC for
    // its occupancy time as well, so a rank bombarded by many concurrent
    // senders (e.g. a flat-tree reduce root) drains them one at a time.
    const SimTime occupancy =
        transfer_occupancy(slot.src, slot.dst, slot.bytes, time);
    ready = std::max(ready, state.nic_recv_free + occupancy);
    state.nic_recv_free = ready;
    auto& counters =
        state.stats.per_class[static_cast<std::size_t>(slot.comm_class)];
    counters.bytes_received += slot.bytes;
    counters.messages_received += 1;
    if (tracing_ && trace_.size() < trace_limit_)
      trace_.push_back(TraceEvent{ready, slot.src, slot.dst, slot.comm_class,
                                  slot.bytes, slot.tag});
  }
  const SimTime start = std::max(ready, state.busy_until);

  Context ctx(*this, slot.dst, start);
  if (slot.src >= 0 && slot.dst != slot.src) {
    // Receiver CPU overhead.
    ctx.now_ += machine_->config().msg_overhead;
    state.stats.overhead_seconds += machine_->config().msg_overhead;
  }
  Rank* program = programs_[static_cast<std::size_t>(slot.dst)].get();
  PSI_CHECK_MSG(program != nullptr,
                "no program installed for rank " << slot.dst);
  const double compute_before = state.stats.compute_seconds;
  dispatching_seq_ = seq;
  if (slot.src == kTimerSrc) {
    program->on_timer(ctx, slot.tag);
  } else if (slot.src < 0) {
    program->on_start(ctx);
  } else {
    Message msg;
    msg.src = slot.src;
    msg.dst = slot.dst;
    msg.tag = slot.tag;
    msg.env = slot.env;
    msg.bytes = slot.bytes;
    msg.comm_class = slot.comm_class;
    msg.data = std::move(payload);
    program->on_message(ctx, msg);
  }
  dispatching_seq_ = ~std::uint64_t{0};

  state.busy_until = ctx.now_;
  state.stats.finish_time = std::max(state.stats.finish_time, ctx.now_);
  state.stats.events_handled += 1;
  makespan_ = std::max(makespan_, ctx.now_);
  ++events_processed_;
  if (sink_ != nullptr) {
    obs::HandlerRun ev;
    ev.seq = seq;
    ev.rank = slot.dst;
    ev.src = slot.src;
    ev.tag = slot.tag;
    ev.bytes = slot.bytes;
    ev.comm_class = slot.comm_class;
    ev.arrival = time;
    ev.ready = ready;
    ev.start = start;
    ev.end = ctx.now_;
    ev.compute = state.stats.compute_seconds - compute_before;
    sink_->on_handler(ev);
  }
}

SimTime Engine::run() {
  PSI_CHECK_MSG(!ran_, "Engine::run() may only be called once");
  ran_ = true;
  const WallTimer timer;
  // Seed a start event for every rank at t = 0 (src = kStartSrc marks it).
  for (int r = 0; r < rank_count(); ++r)
    enqueue(0.0, EventSlot{0, 0, 0, kStartSrc, r, 0, kNoPayload});
  for (;;) {
    if (heap_.empty()) {
      if (overflow_begin_ >= overflow_.size()) break;
      refill_heap();
    }
    const Handle handle = heap_pop();
    const std::uint32_t idx = static_cast<std::uint32_t>(handle.key & kSlotMask);
    // Copy the slot out and recycle it before dispatch: the handler's sends
    // may grow or reuse the arena.
    const EventSlot slot = pool_[idx];
    free_slots_.push_back(idx);
    // Under a schedule policy the key's high bits are the adversarial
    // priority, not the seq — recover the real seq from the side table.
    const std::uint64_t seq =
        schedule_ != nullptr ? slot_seq_[idx] : (handle.key >> kSlotBits);
    if (slot.src == kTimerSrc && !cancelled_timers_.empty()) {
      const auto cancelled = cancelled_timers_.find(seq);
      if (cancelled != cancelled_timers_.end()) {
        // Cancelled timer: discard without running a handler, so it neither
        // occupies the rank nor extends the makespan.
        cancelled_timers_.erase(cancelled);
        continue;
      }
    }
    std::shared_ptr<const DenseMatrix> payload;
    if (slot.payload != kNoPayload) {
      payload = std::move(payloads_[static_cast<std::size_t>(slot.payload)]);
      free_payloads_.push_back(slot.payload);
    }
    dispatch(handle.time, seq, slot, std::move(payload));
  }
  wall_seconds_ = timer.seconds();
  return makespan_;
}

const RankStats& Engine::stats(int rank) const {
  PSI_CHECK(rank >= 0 && rank < rank_count());
  return states_[static_cast<std::size_t>(rank)].stats;
}

}  // namespace psi::sim
