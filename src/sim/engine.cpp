#include "sim/engine.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace psi::sim {

void Context::compute(SimTime seconds) {
  PSI_CHECK(seconds >= 0.0);
  now_ += seconds;
  // Attribution happens in Engine::dispatch via the time delta; record the
  // compute share directly here.
  engine_->states_[static_cast<std::size_t>(rank_)].stats.compute_seconds += seconds;
}

void Context::compute_flops(Count flops) {
  PSI_CHECK(flops >= 0);
  compute(static_cast<double>(flops) / engine_->machine().config().flop_rate);
}

void Context::send(int dst, std::int64_t tag, Count bytes, int comm_class,
                   std::shared_ptr<const DenseMatrix> data) {
  Message msg;
  msg.src = rank_;
  msg.dst = dst;
  msg.tag = tag;
  msg.bytes = bytes;
  msg.comm_class = comm_class;
  msg.data = std::move(data);
  engine_->post_send(*this, std::move(msg));
}

Engine::Engine(const Machine& machine, int rank_count, int comm_classes)
    : machine_(&machine), comm_classes_(comm_classes) {
  PSI_CHECK(rank_count > 0);
  PSI_CHECK(comm_classes > 0);
  programs_.resize(static_cast<std::size_t>(rank_count));
  states_.resize(static_cast<std::size_t>(rank_count));
  for (auto& state : states_)
    state.stats.per_class.resize(static_cast<std::size_t>(comm_classes));
}

void Engine::enable_trace(std::size_t max_events) {
  PSI_CHECK(!ran_);
  tracing_ = true;
  trace_limit_ = max_events;
  trace_.reserve(std::min<std::size_t>(max_events, 1 << 16));
}

void Engine::set_rank(int rank, std::unique_ptr<Rank> program) {
  PSI_CHECK(rank >= 0 && rank < rank_count());
  PSI_CHECK(!ran_);
  programs_[static_cast<std::size_t>(rank)] = std::move(program);
}

void Engine::post_send(Context& ctx, Message msg) {
  PSI_CHECK_MSG(msg.dst >= 0 && msg.dst < rank_count(),
                "send to invalid rank " << msg.dst);
  PSI_CHECK(msg.bytes >= 0);
  PSI_CHECK(msg.comm_class >= 0 && msg.comm_class < comm_classes_);
  auto& src_state = states_[static_cast<std::size_t>(msg.src)];
  auto& counters =
      src_state.stats.per_class[static_cast<std::size_t>(msg.comm_class)];

  SimTime deliver_at;
  if (msg.dst == msg.src) {
    // Local hand-off: delivered after the current handler instant, no NIC,
    // no overhead, and not counted as network traffic.
    deliver_at = ctx.now_;
  } else {
    counters.bytes_sent += msg.bytes;
    counters.messages_sent += 1;
    // Sender CPU overhead.
    ctx.now_ += machine_->config().msg_overhead;
    src_state.stats.overhead_seconds += machine_->config().msg_overhead;
    // Sender NIC serialization.
    const SimTime occupancy = machine_->occupancy(msg.src, msg.dst, msg.bytes);
    const SimTime xfer_start = std::max(ctx.now_, src_state.nic_send_free);
    src_state.nic_send_free = xfer_start + occupancy;
    deliver_at = xfer_start + occupancy + machine_->latency(msg.src, msg.dst);
  }
  queue_.push(Event{deliver_at, next_seq_++, std::move(msg)});
}

void Engine::dispatch(const Event& event) {
  const Message& msg = event.msg;
  auto& state = states_[static_cast<std::size_t>(msg.dst)];

  SimTime start = event.time;
  if (msg.dst != msg.src && msg.src >= 0) {
    // Receiver NIC serialization: the payload occupies the receiving NIC for
    // its occupancy time as well, so a rank bombarded by many concurrent
    // senders (e.g. a flat-tree reduce root) drains them one at a time.
    const SimTime occupancy = machine_->occupancy(msg.src, msg.dst, msg.bytes);
    start = std::max(start, state.nic_recv_free + occupancy);
    state.nic_recv_free = start;
    auto& counters =
        state.stats.per_class[static_cast<std::size_t>(msg.comm_class)];
    counters.bytes_received += msg.bytes;
    counters.messages_received += 1;
    if (tracing_ && trace_.size() < trace_limit_)
      trace_.push_back(TraceEvent{start, msg.src, msg.dst, msg.comm_class,
                                  msg.bytes, msg.tag});
  }
  start = std::max(start, state.busy_until);

  Context ctx(*this, msg.dst, start);
  if (msg.src >= 0 && msg.dst != msg.src) {
    // Receiver CPU overhead.
    ctx.now_ += machine_->config().msg_overhead;
    state.stats.overhead_seconds += machine_->config().msg_overhead;
  }
  Rank* program = programs_[static_cast<std::size_t>(msg.dst)].get();
  PSI_CHECK_MSG(program != nullptr, "no program installed for rank " << msg.dst);
  if (msg.src < 0)
    program->on_start(ctx);
  else
    program->on_message(ctx, msg);

  state.busy_until = ctx.now_;
  state.stats.finish_time = std::max(state.stats.finish_time, ctx.now_);
  makespan_ = std::max(makespan_, ctx.now_);
  ++events_processed_;
}

SimTime Engine::run() {
  PSI_CHECK_MSG(!ran_, "Engine::run() may only be called once");
  ran_ = true;
  // Seed a start event for every rank at t = 0 (src = -1 marks it).
  for (int r = 0; r < rank_count(); ++r) {
    Message start;
    start.src = -1;
    start.dst = r;
    queue_.push(Event{0.0, next_seq_++, std::move(start)});
  }
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    dispatch(event);
  }
  return makespan_;
}

const RankStats& Engine::stats(int rank) const {
  PSI_CHECK(rank >= 0 && rank < rank_count());
  return states_[static_cast<std::size_t>(rank)].stats;
}

}  // namespace psi::sim
