#include "sim/engine.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"

namespace psi::sim {

namespace {
constexpr SimTime kInfTime = std::numeric_limits<SimTime>::infinity();
}  // namespace

void Context::compute(SimTime seconds) {
  PSI_CHECK(seconds >= 0.0);
  // A perturbed (straggling) rank takes longer for the same work; the
  // inflated duration is what the rank is actually busy for, so it is what
  // gets recorded.
  seconds *= engine_->compute_factor(rank_, now_);
  now_ += seconds;
  // Attribution happens in Engine::dispatch via the time delta; record the
  // compute share directly here.
  engine_->states_[static_cast<std::size_t>(rank_)].stats.compute_seconds += seconds;
}

void Context::compute_flops(Count flops) {
  PSI_CHECK(flops >= 0);
  compute(static_cast<double>(flops) / engine_->machine().config().flop_rate);
}

void Context::send(int dst, std::int64_t tag, Count bytes, int comm_class,
                   std::shared_ptr<const DenseMatrix> data, std::int64_t env) {
  engine_->post_send(*this, dst, tag, bytes, comm_class, std::move(data), env);
}

std::uint64_t Context::set_timer(SimTime delay, std::int64_t tag) {
  return engine_->post_timer(*this, delay, tag);
}

void Context::cancel_timer(std::uint64_t id) {
  // Timer ids are the timer event's stable key: the low bits name the rank
  // that set it (timers always fire on their setter), the high bits its
  // per-rank counter. Validate both so a garbage id fails loudly instead of
  // silently never matching.
  const int owner = static_cast<int>(id & Engine::kRankMask);
  PSI_CHECK_MSG(
      owner == rank_ &&
          (id >> Engine::kRankBits) <
              engine_->rank_keys_[static_cast<std::size_t>(rank_)],
      "cancel_timer: unknown timer id " << id << " on rank " << rank_);
  engine_->part_of(*this).cancelled.insert(id);
}

void Context::span(const char* name, std::int64_t id, SimTime begin,
                   SimTime end) {
  engine_->post_span(*this, name, id, begin, end);
}

void Context::mark(const char* name, std::int64_t id, SimTime time) {
  engine_->post_mark(*this, name, id, time);
}

void Rank::on_timer(Context& ctx, std::int64_t tag) {
  (void)tag;
  PSI_CHECK_MSG(false, "rank " << ctx.rank()
                               << " received a timer but does not override "
                                  "Rank::on_timer");
}

Engine::Engine(const Machine& machine, int rank_count, int comm_classes)
    : machine_(&machine), comm_classes_(comm_classes) {
  PSI_CHECK(rank_count > 0);
  PSI_CHECK(comm_classes > 0);
  PSI_CHECK_MSG(rank_count < (1 << kRankBits),
                "rank count " << rank_count
                              << " exceeds the stable-key rank field");
  programs_.resize(static_cast<std::size_t>(rank_count));
  states_.resize(static_cast<std::size_t>(rank_count));
  for (auto& state : states_)
    state.stats.per_class.resize(static_cast<std::size_t>(comm_classes));
  rank_keys_.assign(static_cast<std::size_t>(rank_count), 0);
  rank_draws_.assign(static_cast<std::size_t>(rank_count), 0);
  parts_.resize(1);
  parts_[0].end_rank = rank_count;
  parts_[0].outbox.resize(1);
  part_of_rank_.assign(static_cast<std::size_t>(rank_count), 0);
}

void Engine::enable_trace(std::size_t max_events) {
  PSI_CHECK(!ran_);
  tracing_ = true;
  trace_limit_ = max_events;
  trace_.reserve(std::min<std::size_t>(max_events, 1 << 16));
}

void Engine::set_sink(obs::Sink* sink) {
  PSI_CHECK(!ran_);
  sink_ = sink;
}

void Engine::set_fault_injector(FaultInjector* injector) {
  PSI_CHECK(!ran_);
  injector_ = injector;
}

void Engine::set_perturbation(const Perturbation* perturbation) {
  PSI_CHECK(!ran_);
  perturbation_ = perturbation;
}

void Engine::set_schedule_policy(SchedulePolicy* policy) {
  PSI_CHECK(!ran_);
  schedule_ = policy;
}

void Engine::set_partitions(int partitions) {
  PSI_CHECK(!ran_);
  PSI_CHECK_MSG(partitions >= 1 && partitions <= kMaxPartitions,
                "partition count " << partitions << " out of range [1, "
                                   << kMaxPartitions << "]");
  requested_partitions_ = partitions;
}

void Engine::set_rank(int rank, std::unique_ptr<Rank> program) {
  PSI_CHECK(rank >= 0 && rank < rank_count());
  PSI_CHECK(!ran_);
  programs_[static_cast<std::size_t>(rank)] = std::move(program);
}

void Engine::heap_push(Partition& p, Handle handle) {
  std::size_t i = p.heap.size();
  p.heap.push_back(handle);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(p, handle, p.heap[parent])) break;
    p.heap[i] = p.heap[parent];
    i = parent;
  }
  p.heap[i] = handle;
}

Engine::Handle Engine::heap_pop(Partition& p) {
  const Handle top = p.heap.front();
  const Handle last = p.heap.back();
  p.heap.pop_back();
  const std::size_t n = p.heap.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c)
        if (earlier(p, p.heap[c], p.heap[best])) best = c;
      if (!earlier(p, p.heap[best], last)) break;
      p.heap[i] = p.heap[best];
      i = best;
    }
    p.heap[i] = last;
  }
  return top;
}

std::uint64_t Engine::next_key(int rank) {
  std::uint64_t& counter = rank_keys_[static_cast<std::size_t>(rank)];
  PSI_CHECK_MSG(counter < (std::uint64_t{1} << (64 - kRankBits)),
                "per-rank event counter overflow on rank " << rank);
  return (counter++ << kRankBits) | static_cast<std::uint64_t>(rank);
}

void Engine::enqueue(Partition& p, SimTime time, const EventSlot& slot,
                     std::uint64_t pri, std::uint64_t key64,
                     std::uint64_t id) {
  std::uint32_t idx;
  if (!p.free_slots.empty()) {
    idx = p.free_slots.back();
    p.free_slots.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(p.pool.size());
    PSI_CHECK_MSG(idx <= kSlotMask,
                  "event arena exhausted: more than 2^"
                      << kSlotBits
                      << " live events; rebuild with a larger "
                         "PSI_SIM_SLOT_BITS or drain sends faster");
    p.pool.push_back(EventSlot{});
    p.meta.push_back(SlotMeta{});
  }
  p.pool[idx] = slot;
  p.meta[idx] = SlotMeta{pri, key64, id};
  const Handle handle{time, ((pri & kOrderMask) << kSlotBits) | idx};
  if (key_earlier(OrderKey{time, pri, key64}, p.horizon))
    heap_push(p, handle);
  else
    p.overflow.push_back(handle);
}

void Engine::refill_heap(Partition& p) {
  PSI_ASSERT(p.heap.empty() && p.overflow_begin < p.overflow.size());
  const auto cmp = [this, &p](const Handle& a, const Handle& b) {
    return earlier(p, a, b);
  };
  const auto live = p.overflow.begin() +
                    static_cast<std::ptrdiff_t>(p.overflow_begin);
  const std::size_t n = p.overflow.size() - p.overflow_begin;
  // Chunk size balances heap residency (16k handles = 256 KiB) against how
  // often the buffer is rescanned (each event survives ~16 refill scans at
  // most before it is selected).
  std::size_t chunk = std::max<std::size_t>(16384, n / 16);
  Handle boundary;
  if (chunk >= n) {
    chunk = n;
    boundary = *std::max_element(live, p.overflow.end(), cmp);
  } else {
    // nth_element over the strict total event order: the chunk's membership
    // — the `chunk` earliest pending events — is unique, so the pop
    // sequence is independent of the buffer's internal arrangement.
    // (Partitioning the chunk to the tail with a reversed comparator to
    // consume it by resize() was measured 2.3x SLOWER overall: the
    // descending-ordered survivors make every subsequent nth_element and
    // heap_push pathological, so the chunk goes to the front instead.)
    std::nth_element(live, live + static_cast<std::ptrdiff_t>(chunk - 1),
                     p.overflow.end(), cmp);
    boundary = live[static_cast<std::ptrdiff_t>(chunk - 1)];
  }
  // Materialize the horizon from the boundary's live metadata: the slot
  // itself recycles once the boundary event pops, so a Handle copy would
  // dangle exactly when a later enqueue ties with it on the packed key.
  const SlotMeta& bm = p.meta[boundary.key & kSlotMask];
  p.horizon = OrderKey{boundary.time, bm.pri, bm.key64};
  for (std::size_t i = 0; i < chunk; ++i)
    heap_push(p, live[static_cast<std::ptrdiff_t>(i)]);
  // Consume the chunk by cursor; compact the dead prefix only once it
  // crosses half the buffer, so consumption is amortized O(1) per event.
  p.overflow_begin += chunk;
  if (p.overflow_begin >= p.overflow.size()) {
    p.overflow.clear();
    p.overflow_begin = 0;
  } else if (p.overflow_begin > p.overflow.size() / 2) {
    p.overflow.erase(p.overflow.begin(),
                     p.overflow.begin() +
                         static_cast<std::ptrdiff_t>(p.overflow_begin));
    p.overflow_begin = 0;
  }
}

std::int32_t Engine::register_payload(
    Partition& p, std::shared_ptr<const DenseMatrix> data) {
  if (!data) return kNoPayload;
  std::int32_t payload;
  if (!p.free_payloads.empty()) {
    payload = p.free_payloads.back();
    p.free_payloads.pop_back();
    p.payloads[static_cast<std::size_t>(payload)] = std::move(data);
  } else {
    payload = static_cast<std::int32_t>(p.payloads.size());
    p.payloads.push_back(std::move(data));
  }
  return payload;
}

void Engine::post_send(Context& ctx, int dst, std::int64_t tag, Count bytes,
                       int comm_class, std::shared_ptr<const DenseMatrix> data,
                       std::int64_t env) {
  PSI_CHECK_MSG(dst >= 0 && dst < rank_count(),
                "send to invalid rank " << dst << " (rank count "
                                        << rank_count() << ")");
  PSI_CHECK_MSG(bytes >= 0, "send with negative byte count " << bytes);
  PSI_CHECK_MSG(comm_class >= 0 && comm_class < comm_classes_,
                "send with invalid comm class " << comm_class << " (have "
                                                << comm_classes_ << ")");
  const int src = ctx.rank_;
  Partition& p = part_of(ctx);
  auto& src_state = states_[static_cast<std::size_t>(src)];

  SimTime deliver_at;
  SimTime xfer_start;
  SimTime xfer_end;
  FaultDecision fault;
  if (dst == src) {
    // Local hand-off: delivered after the current handler instant, no NIC,
    // no overhead, not counted as network traffic, and never faulted.
    deliver_at = ctx.now_;
    xfer_start = xfer_end = ctx.now_;
  } else {
    // One counter-stable draw per posted network message: the id depends
    // only on the sender's causal history, so injector and schedule draws
    // are identical for any partitioning (and any arrival interleaving).
    const std::uint64_t draw_id =
        (rank_draws_[static_cast<std::size_t>(src)]++ << kRankBits) |
        static_cast<std::uint64_t>(src);
    if (injector_ != nullptr) {
      fault = injector_->on_send(src, dst, tag, bytes, comm_class, ctx.now_,
                                 draw_id);
      // The conservative lookahead bound (DESIGN.md §14) requires that no
      // injected fault shortens a wire: a negative delay could deliver a
      // cross-partition message inside the current window.
      if (partitioned_)
        PSI_CHECK_MSG(fault.delay >= 0.0 && fault.duplicate_delay >= 0.0,
                      "fault injector returned a negative delay in a "
                      "partitioned run");
    }
    auto& counters =
        src_state.stats.per_class[static_cast<std::size_t>(comm_class)];
    counters.bytes_sent += bytes;
    counters.messages_sent += 1;
    // Sender CPU overhead.
    ctx.now_ += machine_->config().msg_overhead;
    src_state.stats.overhead_seconds += machine_->config().msg_overhead;
    // Sender NIC serialization. Even a dropped message pays full sender
    // cost: the loss happens on the wire.
    const SimTime occupancy = transfer_occupancy(src, dst, bytes, ctx.now_);
    xfer_start = std::max(ctx.now_, src_state.nic_send_free);
    xfer_end = xfer_start + occupancy;
    src_state.nic_send_free = xfer_end;
    deliver_at = xfer_end + machine_->latency(src, dst) + fault.delay;
    if (schedule_ != nullptr) {
      // Adversarial wire jitter, on top of any injected fault delay.
      const SimTime extra = schedule_->network_delay(src, dst, tag, bytes,
                                                     comm_class, ctx.now_,
                                                     draw_id);
      PSI_CHECK_MSG(extra >= 0.0,
                    "schedule policy returned negative delay " << extra);
      deliver_at += extra;
    }
  }

  const bool cross =
      partitioned_ &&
      part_of_rank_[static_cast<std::size_t>(dst)] != p.index;
  // Deliver the original (unless dropped) plus any duplicated copies. Each
  // queued copy owns its own payload-pool entry so slot recycling on
  // dispatch stays one-owner.
  const int copies = (fault.drop ? 0 : 1) + fault.duplicates;
  for (int copy = 0; copy < copies; ++copy) {
    const SimTime at =
        deliver_at + static_cast<double>(copy + (fault.drop ? 1 : 0)) *
                         fault.duplicate_delay;
    const std::uint64_t key = next_key(src);
    const std::uint64_t pri = (schedule_ != nullptr && src != dst)
                                  ? schedule_->tie_priority(key)
                                  : key;
    const std::uint64_t id =
        partitioned_ ? (static_cast<std::uint64_t>(p.index) << 48) |
                           p.next_eid++
                     : next_seq_++;
    if (cross) {
      // Queued at the destination partition between windows; the lookahead
      // bound guarantees `at` lands at or beyond the current window's end.
      const EventSlot slot{tag, env, bytes, src, dst, comm_class, kNoPayload};
      p.outbox[static_cast<std::size_t>(
                   part_of_rank_[static_cast<std::size_t>(dst)])]
          .push_back(MailboxEntry{at, slot, pri, key, id,
                                  copy + 1 == copies ? std::move(data)
                                                     : data});
    } else {
      const std::int32_t payload =
          register_payload(p, copy + 1 == copies ? std::move(data) : data);
      enqueue(p, at, EventSlot{tag, env, bytes, src, dst, comm_class, payload},
              pri, key, id);
    }
    if (sink_ != nullptr) {
      obs::MsgSend ev;
      ev.seq = id;  // partitioned: the eid; relabelled densely at the merge
      ev.emitter = partitioned_ ? obs::kNoEvent : dispatching_seq_;
      ev.src = src;
      ev.dst = dst;
      ev.tag = tag;
      ev.bytes = bytes;
      ev.comm_class = comm_class;
      ev.post = ctx.now_;
      ev.xfer_start = xfer_start;
      ev.xfer_end = xfer_end;
      ev.arrival = at;
      if (partitioned_) {
        p.rec_order.push_back(
            {RecordRef::kSend, static_cast<std::uint32_t>(p.rec_sends.size())});
        p.rec_sends.push_back(ev);
      } else {
        sink_->on_send(ev);
      }
    }
  }
  if (sink_ != nullptr && fault.any()) {
    obs::MarkEvent mark;
    mark.rank = src;
    mark.id = tag;
    mark.time = ctx.now_;
    const auto emit = [&](const char* name) {
      mark.name = name;
      if (partitioned_) {
        p.rec_order.push_back(
            {RecordRef::kMark, static_cast<std::uint32_t>(p.rec_marks.size())});
        p.rec_marks.push_back(mark);
      } else {
        sink_->on_mark(mark);
      }
    };
    if (fault.drop) emit("fault-drop");
    if (fault.duplicates > 0) emit("fault-dup");
    if (fault.delay > 0.0) emit("fault-delay");
  }
}

std::uint64_t Engine::post_timer(Context& ctx, SimTime delay,
                                 std::int64_t tag) {
  PSI_CHECK_MSG(delay >= 0.0, "set_timer with negative delay " << delay);
  Partition& p = part_of(ctx);
  const SimTime fire = ctx.now_ + delay;
  const std::uint64_t key = next_key(ctx.rank_);
  const std::uint64_t pri =
      schedule_ != nullptr ? schedule_->tie_priority(key) : key;
  const std::uint64_t id =
      partitioned_
          ? (static_cast<std::uint64_t>(p.index) << 48) | p.next_eid++
          : next_seq_++;
  enqueue(p, fire, EventSlot{tag, 0, 0, kTimerSrc, ctx.rank_, 0, kNoPayload},
          pri, key, id);
  if (sink_ != nullptr) {
    // Synthetic send record so the causal graph links the timer handler
    // back to the handler that armed it; the [post, arrival) gap is the
    // timer wait, not network time.
    obs::MsgSend ev;
    ev.seq = id;
    ev.emitter = partitioned_ ? obs::kNoEvent : dispatching_seq_;
    ev.src = kTimerSrc;
    ev.dst = ctx.rank_;
    ev.tag = tag;
    ev.bytes = 0;
    ev.comm_class = 0;
    ev.post = ctx.now_;
    ev.xfer_start = ctx.now_;
    ev.xfer_end = ctx.now_;
    ev.arrival = fire;
    if (partitioned_) {
      p.rec_order.push_back(
          {RecordRef::kSend, static_cast<std::uint32_t>(p.rec_sends.size())});
      p.rec_sends.push_back(ev);
    } else {
      sink_->on_send(ev);
    }
  }
  return key;
}

void Engine::post_span(Context& ctx, const char* name, std::int64_t id,
                       SimTime begin, SimTime end) {
  if (sink_ == nullptr) return;
  obs::SpanEvent ev;
  ev.rank = ctx.rank_;
  ev.name = name;
  ev.id = id;
  ev.begin = begin;
  ev.end = end;
  if (partitioned_) {
    Partition& p = part_of(ctx);
    p.rec_order.push_back(
        {RecordRef::kSpan, static_cast<std::uint32_t>(p.rec_spans.size())});
    p.rec_spans.push_back(ev);
  } else {
    sink_->on_span(ev);
  }
}

void Engine::post_mark(Context& ctx, const char* name, std::int64_t id,
                       SimTime time) {
  if (sink_ == nullptr) return;
  obs::MarkEvent ev;
  ev.rank = ctx.rank_;
  ev.name = name;
  ev.id = id;
  ev.time = time;
  if (partitioned_) {
    Partition& p = part_of(ctx);
    p.rec_order.push_back(
        {RecordRef::kMark, static_cast<std::uint32_t>(p.rec_marks.size())});
    p.rec_marks.push_back(ev);
  } else {
    sink_->on_mark(ev);
  }
}

void Engine::dispatch(Partition& p, SimTime time, const EventSlot& slot,
                      const SlotMeta& meta,
                      std::shared_ptr<const DenseMatrix> payload) {
  auto& state = states_[static_cast<std::size_t>(slot.dst)];
  const bool network = slot.dst != slot.src && slot.src >= 0;
  const bool buffering = partitioned_ && (sink_ != nullptr || tracing_);
  std::size_t bundle_index = 0;
  if (buffering) {
    bundle_index = p.bundles.size();
    p.bundles.push_back(Bundle{time, meta.pri, meta.key64, meta.id,
                               static_cast<std::uint32_t>(p.rec_order.size()),
                               0, false, TraceEvent{}});
  }

  SimTime ready = time;
  if (network) {
    // Receiver NIC serialization: the payload occupies the receiving NIC for
    // its occupancy time as well, so a rank bombarded by many concurrent
    // senders (e.g. a flat-tree reduce root) drains them one at a time.
    const SimTime occupancy =
        transfer_occupancy(slot.src, slot.dst, slot.bytes, time);
    ready = std::max(ready, state.nic_recv_free + occupancy);
    state.nic_recv_free = ready;
    auto& counters =
        state.stats.per_class[static_cast<std::size_t>(slot.comm_class)];
    counters.bytes_received += slot.bytes;
    counters.messages_received += 1;
    if (tracing_) {
      const TraceEvent te{ready,      slot.src,   slot.dst,
                          slot.comm_class, slot.bytes, slot.tag};
      if (buffering) {
        p.bundles[bundle_index].has_trace = true;
        p.bundles[bundle_index].trace = te;
      } else if (trace_.size() < trace_limit_) {
        trace_.push_back(te);
      }
    }
  }
  const SimTime start = std::max(ready, state.busy_until);

  Context ctx(*this, slot.dst, start);
  ctx.part_ = &p;
  if (network) {
    // Receiver CPU overhead.
    ctx.now_ += machine_->config().msg_overhead;
    state.stats.overhead_seconds += machine_->config().msg_overhead;
  }
  Rank* program = programs_[static_cast<std::size_t>(slot.dst)].get();
  PSI_CHECK_MSG(program != nullptr,
                "no program installed for rank " << slot.dst);
  const double compute_before = state.stats.compute_seconds;
  if (!partitioned_) dispatching_seq_ = meta.id;
  if (slot.src == kTimerSrc) {
    program->on_timer(ctx, slot.tag);
  } else if (slot.src < 0) {
    program->on_start(ctx);
  } else {
    Message msg;
    msg.src = slot.src;
    msg.dst = slot.dst;
    msg.tag = slot.tag;
    msg.env = slot.env;
    msg.bytes = slot.bytes;
    msg.comm_class = slot.comm_class;
    msg.data = std::move(payload);
    program->on_message(ctx, msg);
  }
  if (!partitioned_) dispatching_seq_ = ~std::uint64_t{0};

  state.busy_until = ctx.now_;
  state.stats.finish_time = std::max(state.stats.finish_time, ctx.now_);
  state.stats.events_handled += 1;
  p.makespan = std::max(p.makespan, ctx.now_);
  ++p.events;
  if (sink_ != nullptr) {
    obs::HandlerRun ev;
    ev.seq = partitioned_ ? obs::kNoEvent : meta.id;
    ev.rank = slot.dst;
    ev.src = slot.src;
    ev.tag = slot.tag;
    ev.bytes = slot.bytes;
    ev.comm_class = slot.comm_class;
    ev.arrival = time;
    ev.ready = ready;
    ev.start = start;
    ev.end = ctx.now_;
    ev.compute = state.stats.compute_seconds - compute_before;
    if (partitioned_) {
      p.rec_order.push_back({RecordRef::kHandler,
                             static_cast<std::uint32_t>(p.rec_handlers.size())});
      p.rec_handlers.push_back(ev);
    } else {
      sink_->on_handler(ev);
    }
  }
  if (buffering)
    p.bundles[bundle_index].rec_end =
        static_cast<std::uint32_t>(p.rec_order.size());
}

void Engine::setup_partitions() {
  const int ranks = rank_count();
  int count = std::min(requested_partitions_, ranks);
  lookahead_ = 0.0;
  // Balanced contiguous rank blocks: partition p owns [begins[p], begins[p+1]).
  std::vector<int> begins(static_cast<std::size_t>(count) + 1, 0);
  for (int p = 0; p <= count; ++p)
    begins[static_cast<std::size_t>(p)] =
        p * (ranks / count) + std::min(p, ranks % count);
  if (count > 1) {
    // Conservative lookahead: node and group membership are monotone in the
    // rank index and partitions are contiguous, so the closest possible
    // cross-partition pair sits at a block boundary. Wire latency carries
    // no jitter (only occupancy does), so this bound is exact.
    SimTime lookahead = kInfTime;
    for (int p = 1; p < count; ++p) {
      const int boundary = begins[static_cast<std::size_t>(p)];
      lookahead = std::min(lookahead, machine_->latency(boundary - 1, boundary));
    }
    if (lookahead > 0.0) {
      lookahead_ = lookahead;
    } else {
      // A zero-latency machine admits no conservative window: fall back to
      // the (always correct, bitwise-identical) sequential engine.
      count = 1;
    }
  }
  partitioned_ = count > 1;
  parts_.assign(static_cast<std::size_t>(count), Partition{});
  for (int p = 0; p < count; ++p) {
    Partition& part = parts_[static_cast<std::size_t>(p)];
    part.index = p;
    part.begin_rank = partitioned_ ? begins[static_cast<std::size_t>(p)] : 0;
    part.end_rank =
        partitioned_ ? begins[static_cast<std::size_t>(p) + 1] : ranks;
    part.outbox.resize(static_cast<std::size_t>(count));
    for (int r = part.begin_rank; r < part.end_rank; ++r)
      part_of_rank_[static_cast<std::size_t>(r)] = p;
  }
}

void Engine::seed_starts() {
  // Seed a start event for every rank at t = 0 (src = kStartSrc marks it),
  // in rank order so rank r's start is event r in both execution modes.
  for (Partition& p : parts_) {
    for (int r = p.begin_rank; r < p.end_rank; ++r) {
      const std::uint64_t key = next_key(r);
      const std::uint64_t pri =
          schedule_ != nullptr ? schedule_->tie_priority(key) : key;
      const std::uint64_t id =
          partitioned_
              ? (static_cast<std::uint64_t>(p.index) << 48) | p.next_eid++
              : next_seq_++;
      enqueue(p, 0.0, EventSlot{0, 0, 0, kStartSrc, r, 0, kNoPayload}, pri,
              key, id);
    }
  }
}

SimTime Engine::run_window(Partition& p, SimTime w_end) {
  for (;;) {
    if (p.heap.empty()) {
      if (p.overflow_begin >= p.overflow.size()) return kInfTime;
      refill_heap(p);
    }
    // The heap front is the partition's earliest pending event (the heap
    // holds everything ordered before the horizon, the overflow everything
    // after). The window boundary is a pure time: every event strictly
    // before w_end runs now, everything else waits for the next window.
    if (!(p.heap.front().time < w_end)) return p.heap.front().time;
    const Handle handle = heap_pop(p);
    const std::uint32_t idx =
        static_cast<std::uint32_t>(handle.key & kSlotMask);
    // Copy the slot and metadata out and recycle the slot before dispatch:
    // the handler's sends may grow or reuse the arena.
    const EventSlot slot = p.pool[idx];
    const SlotMeta meta = p.meta[idx];
    p.free_slots.push_back(idx);
    if (slot.src == kTimerSrc && !p.cancelled.empty()) {
      const auto cancelled = p.cancelled.find(meta.key64);
      if (cancelled != p.cancelled.end()) {
        // Cancelled timer: discard without running a handler, so it neither
        // occupies the rank nor extends the makespan.
        p.cancelled.erase(cancelled);
        continue;
      }
    }
    std::shared_ptr<const DenseMatrix> payload;
    if (slot.payload != kNoPayload) {
      payload = std::move(p.payloads[static_cast<std::size_t>(slot.payload)]);
      p.free_payloads.push_back(slot.payload);
    }
    dispatch(p, handle.time, slot, meta, std::move(payload));
  }
}

void Engine::merge_window() {
  // P-way merge of the per-partition bundle streams. Each stream is already
  // in canonical order (a partition pops by the same strict total order the
  // sequential engine uses, and all events of one rank live in one
  // partition), and every bundle of this window precedes every event of any
  // later window, so emitting window by window reproduces the sequential
  // emission order exactly.
  std::vector<std::size_t> pos(parts_.size(), 0);
  for (;;) {
    int best = -1;
    for (int q = 0; q < static_cast<int>(parts_.size()); ++q) {
      const auto& bundles = parts_[static_cast<std::size_t>(q)].bundles;
      const std::size_t i = pos[static_cast<std::size_t>(q)];
      if (i >= bundles.size()) continue;
      if (best < 0) {
        best = q;
        continue;
      }
      const Bundle& a = bundles[i];
      const Bundle& b = parts_[static_cast<std::size_t>(best)]
                            .bundles[pos[static_cast<std::size_t>(best)]];
      if (key_earlier(OrderKey{a.time, a.pri, a.key64},
                      OrderKey{b.time, b.pri, b.key64}))
        best = q;
    }
    if (best < 0) break;
    Partition& p = parts_[static_cast<std::size_t>(best)];
    const Bundle& b = p.bundles[pos[static_cast<std::size_t>(best)]++];

    // Dense seq reconstruction: the bundle's event id was registered when
    // its MsgSend record was replayed (starts are pre-registered), and each
    // send replayed below claims the next seq — exactly the sequential
    // engine's assignment, because sequential seqs are handed out at
    // enqueue time, i.e. in this same emission order.
    std::uint64_t seq = obs::kNoEvent;
    if (sink_ != nullptr) {
      const auto it = eid_seq_.find(b.eid);
      PSI_ASSERT(it != eid_seq_.end());
      seq = it->second;
      eid_seq_.erase(it);
    }
    if (b.has_trace && trace_.size() < trace_limit_) trace_.push_back(b.trace);
    for (std::uint32_t i = b.rec_begin; i < b.rec_end; ++i) {
      const RecordRef ref = p.rec_order[i];
      switch (ref.kind) {
        case RecordRef::kSend: {
          obs::MsgSend ev = p.rec_sends[ref.index];
          eid_seq_.emplace(ev.seq, next_seq_);  // ev.seq held the child eid
          ev.seq = next_seq_++;
          ev.emitter = seq;
          sink_->on_send(ev);
          break;
        }
        case RecordRef::kHandler: {
          obs::HandlerRun ev = p.rec_handlers[ref.index];
          ev.seq = seq;
          sink_->on_handler(ev);
          break;
        }
        case RecordRef::kSpan:
          sink_->on_span(p.rec_spans[ref.index]);
          break;
        case RecordRef::kMark:
          sink_->on_mark(p.rec_marks[ref.index]);
          break;
      }
    }
  }
  for (Partition& p : parts_) {
    p.bundles.clear();
    p.rec_order.clear();
    p.rec_sends.clear();
    p.rec_handlers.clear();
    p.rec_spans.clear();
    p.rec_marks.clear();
  }
}

void Engine::drain_mailboxes() {
  for (Partition& src : parts_) {
    for (std::size_t d = 0; d < parts_.size(); ++d) {
      auto& box = src.outbox[d];
      if (box.empty()) continue;
      Partition& dst = parts_[d];
      for (MailboxEntry& entry : box) {
        EventSlot slot = entry.slot;
        slot.payload = register_payload(dst, std::move(entry.payload));
        enqueue(dst, entry.time, slot, entry.pri, entry.key64, entry.eid);
        dst.next_time = std::min(dst.next_time, entry.time);
      }
      box.clear();
    }
  }
}

SimTime Engine::run() {
  PSI_CHECK_MSG(!ran_, "Engine::run() may only be called once");
  ran_ = true;
  const WallTimer timer;
  setup_partitions();
  if (!partitioned_) {
    seed_starts();
    run_window(parts_.front(), kInfTime);
  } else {
    if (sink_ != nullptr) {
      // Pre-register the dense seqs of the start events (the only events
      // enqueued outside any handler): rank r's start is event r, exactly
      // as in the sequential engine.
      for (const Partition& p : parts_)
        for (int r = p.begin_rank; r < p.end_rank; ++r)
          eid_seq_.emplace((static_cast<std::uint64_t>(p.index) << 48) |
                               static_cast<std::uint64_t>(r - p.begin_rank),
                           static_cast<std::uint64_t>(r));
      next_seq_ = static_cast<std::uint64_t>(rank_count());
    }
    seed_starts();
    parallel::ThreadPool pool(static_cast<int>(parts_.size()));
    for (;;) {
      SimTime window = kInfTime;
      for (const Partition& p : parts_)
        window = std::min(window, p.next_time);
      if (window == kInfTime) break;
      const SimTime w_end = window + lookahead_;
      // At astronomically large simulated times the lookahead could round
      // away entirely (w + L == w in floating point); the window would then
      // make no progress, so fail loudly instead of spinning.
      PSI_CHECK_MSG(w_end > window,
                    "lookahead " << lookahead_
                                 << " rounds to zero at t=" << window);
      for (Partition& p : parts_) {
        Partition* part = &p;
        pool.submit([this, part, w_end] {
          part->next_time = run_window(*part, w_end);
        });
      }
      pool.wait();
      if (sink_ != nullptr || tracing_) merge_window();
      drain_mailboxes();
    }
    eid_seq_.clear();
  }
  for (const Partition& p : parts_) {
    events_processed_ += p.events;
    makespan_ = std::max(makespan_, p.makespan);
  }
  wall_seconds_ = timer.seconds();
  return makespan_;
}

const RankStats& Engine::stats(int rank) const {
  PSI_CHECK(rank >= 0 && rank < rank_count());
  return states_[static_cast<std::size_t>(rank)].stats;
}

std::size_t Engine::leaked_timers() const {
  std::size_t total = 0;
  for (const Partition& p : parts_) total += p.cancelled.size();
  return total;
}

std::size_t Engine::leaked_timers(int partition) const {
  PSI_CHECK(partition >= 0 && partition < static_cast<int>(parts_.size()));
  return parts_[static_cast<std::size_t>(partition)].cancelled.size();
}

std::size_t Engine::arena_high_water() const {
  std::size_t total = 0;
  for (const Partition& p : parts_) total += p.pool.size();
  return total;
}

}  // namespace psi::sim
