/// \file block_matrix.hpp
/// \brief Supernodal block-column storage shared by the factor and the
/// selected inverse (sequential reference implementation).
///
/// For each supernode K the store holds:
///  * diag   — the dense width(K) x width(K) diagonal block,
///  * lpanel — the stacked dense blocks (I, K) for I in struct(K) (lower),
///  * upanel — the dense blocks (K, I) side by side (upper).
/// Blocks are dense over full supernode extents (see supernodes.hpp).
#pragma once

#include <vector>

#include "sparse/dense.hpp"
#include "sparse/sparse_matrix.hpp"
#include "symbolic/supernodes.hpp"

namespace psi {

class BlockMatrix {
 public:
  /// Allocates zeroed storage shaped by `structure` (kept by reference; the
  /// caller guarantees it outlives the BlockMatrix).
  explicit BlockMatrix(const BlockStructure& structure);

  const BlockStructure& structure() const { return *structure_; }
  Int supernode_count() const { return structure_->supernode_count(); }

  DenseMatrix& diag(Int k) { return cols_[static_cast<std::size_t>(k)].diag; }
  const DenseMatrix& diag(Int k) const { return cols_[static_cast<std::size_t>(k)].diag; }
  DenseMatrix& lpanel(Int k) { return cols_[static_cast<std::size_t>(k)].lpanel; }
  const DenseMatrix& lpanel(Int k) const { return cols_[static_cast<std::size_t>(k)].lpanel; }
  DenseMatrix& upanel(Int k) { return cols_[static_cast<std::size_t>(k)].upanel; }
  const DenseMatrix& upanel(Int k) const { return cols_[static_cast<std::size_t>(k)].upanel; }

  /// Row offset of block (i, k) inside lpanel(k) (also the column offset of
  /// (k, i) inside upanel(k)). `i` must be in struct(k).
  Int block_offset(Int k, Int i) const;
  /// Index of supernode i within struct(k); -1 when absent. Sits under
  /// every block(), set_block() and add_block() call, which makes it the
  /// hottest lookup of the numeric phase — the same membership-position
  /// problem CommTree solves for simulated tree hops, and solved the same
  /// way: supernode struct lists are overwhelmingly arithmetic
  /// progressions (consecutive ancestor supernodes), detected once at
  /// construction so the position is pure arithmetic; non-AP lists fall
  /// back to binary search.
  Int struct_position(Int k, Int i) const {
    const PositionIndex& idx = pos_index_[static_cast<std::size_t>(k)];
    if (idx.stride > 0) {
      if (i < idx.first || i > idx.last) return -1;
      const Int off = i - idx.first;
      if (off % idx.stride != 0) return -1;
      return off / idx.stride;
    }
    return struct_position_reference(k, i);
  }
  /// Search-based reference implementation of struct_position(): the non-AP
  /// fallback, and the oracle the micro-assert test compares the fast path
  /// against on every generator structure.
  Int struct_position_reference(Int k, Int i) const;
  /// Total stacked rows of lpanel(k).
  Int panel_rows(Int k) const;

  /// Copy of the dense block (i, k): i == k -> diagonal, i > k -> from
  /// lpanel(k), i < k -> from upanel(i).
  DenseMatrix block(Int i, Int k) const;
  /// Writes `value` into block (i, k) (same addressing as block()).
  void set_block(Int i, Int k, const DenseMatrix& value);
  /// Accumulates `value` into block (i, k).
  void add_block(Int i, Int k, const DenseMatrix& value, double scale = 1.0);

  /// Loads the values of `a` (the analyzed, permuted matrix) into the block
  /// storage; positions absent from `a` stay zero (full-block padding).
  void load(const SparseMatrix& a);

  /// Dense expansion (tests; small problems only).
  DenseMatrix to_dense() const;

 private:
  struct BlockColumn {
    DenseMatrix diag;
    DenseMatrix lpanel;
    DenseMatrix upanel;
  };

  /// Membership-position index of one supernode's struct list: stride > 0
  /// means the list is the arithmetic progression first, first + stride,
  /// ..., last (an empty list is the empty progression with last < first);
  /// stride == 0 falls back to binary search over the list itself.
  struct PositionIndex {
    Int first = 0;
    Int last = -1;
    Int stride = 1;
  };

  const BlockStructure* structure_;
  std::vector<BlockColumn> cols_;
  std::vector<std::vector<Int>> offsets_;  ///< per supernode, per struct entry
  std::vector<PositionIndex> pos_index_;   ///< per supernode
};

}  // namespace psi
