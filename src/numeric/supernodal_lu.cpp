#include "numeric/supernodal_lu.hpp"

#include <memory>
#include <mutex>
#include <utility>

#include "common/check.hpp"

namespace psi {

std::vector<std::vector<Int>> block_row_structure(const BlockStructure& bs) {
  std::vector<std::vector<Int>> rows(
      static_cast<std::size_t>(bs.supernode_count()));
  for (Int s = 0; s < bs.supernode_count(); ++s)
    for (Int c : bs.struct_of[static_cast<std::size_t>(s)])
      rows[static_cast<std::size_t>(c)].push_back(s);
  return rows;  // ascending s per column, by construction
}

SupernodalLU SupernodalLU::factor(const SymbolicAnalysis& analysis) {
  return factor(analysis.blocks, analysis.matrix);
}

SupernodalLU SupernodalLU::factor(const BlockStructure& bs,
                                  const SparseMatrix& permuted) {
  PSI_CHECK_MSG(permuted.n() == bs.part.n(),
                "factor: matrix dimension " << permuted.n()
                    << " does not match block structure " << bs.part.n());
  return factor(bs, [&](BlockMatrix& m) { m.load(permuted); });
}

SupernodalLU SupernodalLU::factor(
    const BlockStructure& bs, const std::function<void(BlockMatrix&)>& load) {
  SupernodalLU lu(bs);
  BlockMatrix& m = lu.storage_;
  load(m);
  const Int nsup = bs.supernode_count();

  DenseMatrix lik, ukj, update;
  for (Int k = 0; k < nsup; ++k) {
    // 1. Factor the diagonal block: diag(k) <- packed L_KK \ U_KK.
    getrf_nopivot(m.diag(k));

    // 2. Panel solves.
    //    lpanel: L_{I,K} = A_{I,K} U_KK^{-1}  (right solve with upper).
    if (m.lpanel(k).rows() > 0)
      trsm(Side::kRight, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0,
           m.diag(k), m.lpanel(k));
    //    upanel: U_{K,I} = L_KK^{-1} A_{K,I}  (left solve with unit lower).
    if (m.upanel(k).cols() > 0)
      trsm(Side::kLeft, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0,
           m.diag(k), m.upanel(k));

    // 3. Right-looking trailing update: for I, J in struct(K),
    //    A_{I,J} -= L_{I,K} U_{K,J}.
    const auto& str = bs.struct_of[static_cast<std::size_t>(k)];
    for (Int jt = 0; jt < static_cast<Int>(str.size()); ++jt) {
      const Int j = str[static_cast<std::size_t>(jt)];
      ukj = m.block(k, j);  // U_{K,J} slice of upanel(k)
      for (Int it = 0; it < static_cast<Int>(str.size()); ++it) {
        const Int i = str[static_cast<std::size_t>(it)];
        lik = m.block(i, k);  // L_{I,K} slice of lpanel(k)
        update.resize(bs.part.size(i), bs.part.size(j));
        update.set_zero();
        gemm(Trans::kNo, Trans::kNo, 1.0, lik, ukj, 0.0, update);
        m.add_block(i, j, update, -1.0);
      }
    }
  }
  return lu;
}

namespace {

/// The Schur contributions of one (source supernode, target column) pair:
/// the dense update blocks L_{I,S} U_{S,C} (rows, i >= c) and
/// L_{C,S} U_{S,J} (cols, j > c), computed task-locally and applied to the
/// shared storage only under the target column's canonical-order gate.
struct UpdateBundle {
  std::vector<Int> rows;  ///< i of block (i, c), i >= c (lower + diagonal)
  std::vector<DenseMatrix> row_updates;
  std::vector<Int> cols;  ///< j of block (c, j), j > c (upper)
  std::vector<DenseMatrix> col_updates;
};

/// Canonical-order reduction gate of one target column: updates may be
/// *computed* in any schedule order, but they are *applied* strictly in
/// ascending source order — the cursor names the next source ordinal the
/// column expects, and early arrivals wait in the stash. This pins every
/// floating-point accumulation into the column to the sequential
/// right-looking order, which is what makes the parallel factorization
/// bitwise schedule-independent (PR 3's ReduceState discipline, applied to
/// shared-memory Schur updates).
struct ColumnGate {
  std::mutex mutex;
  std::size_t cursor = 0;
  std::vector<std::unique_ptr<UpdateBundle>> stash;
};

void apply_bundle(BlockMatrix& m, Int c, const UpdateBundle& bundle) {
  for (std::size_t t = 0; t < bundle.rows.size(); ++t)
    m.add_block(bundle.rows[t], c, bundle.row_updates[t], -1.0);
  for (std::size_t t = 0; t < bundle.cols.size(); ++t)
    m.add_block(c, bundle.cols[t], bundle.col_updates[t], -1.0);
}

}  // namespace

SupernodalLU SupernodalLU::factor_parallel(
    const SymbolicAnalysis& analysis, const numeric::ParallelOptions& options) {
  return factor_parallel(analysis.blocks, analysis.matrix, options);
}

SupernodalLU SupernodalLU::factor_parallel(
    const BlockStructure& bs, const SparseMatrix& permuted,
    const numeric::ParallelOptions& options) {
  PSI_CHECK_MSG(permuted.n() == bs.part.n(),
                "factor_parallel: matrix dimension "
                    << permuted.n() << " does not match block structure "
                    << bs.part.n());
  return factor_parallel(bs, [&](BlockMatrix& m) { m.load(permuted); },
                         options);
}

SupernodalLU SupernodalLU::factor_parallel(
    const BlockStructure& bs, const std::function<void(BlockMatrix&)>& load,
    const numeric::ParallelOptions& options) {
  SupernodalLU lu(bs);
  BlockMatrix& m = lu.storage_;
  load(m);
  const Int nsup = bs.supernode_count();
  if (nsup == 0) return lu;
  const auto& part = bs.part;

  const std::vector<std::vector<Int>> row_struct = block_row_structure(bs);
  std::vector<ColumnGate> gates(static_cast<std::size_t>(nsup));
  for (Int c = 0; c < nsup; ++c)
    gates[static_cast<std::size_t>(c)].stash.resize(
        row_struct[static_cast<std::size_t>(c)].size());

  numeric::TaskGraph graph;
  // Diag-factor + panel-solve task per supernode. Keys follow the
  // (postordered) supernode index, with a column's update tasks slotted
  // right after its factor task, so deterministic tie-breaks walk the
  // sequential elimination order.
  std::vector<numeric::TaskGraph::TaskId> factor_task(
      static_cast<std::size_t>(nsup));
  for (Int c = 0; c < nsup; ++c) {
    factor_task[static_cast<std::size_t>(c)] = graph.add(
        static_cast<std::uint64_t>(c) << 32, [&m, &bs, c] {
          // Identical kernel calls, in the identical order, as factor():
          // by the time this task runs, every Schur update into column c
          // has been applied in ascending source order.
          getrf_nopivot(m.diag(c));
          if (m.lpanel(c).rows() > 0)
            trsm(Side::kRight, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0,
                 m.diag(c), m.lpanel(c));
          if (m.upanel(c).cols() > 0)
            trsm(Side::kLeft, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0,
                 m.diag(c), m.upanel(c));
        });
  }

  // Outer-product update task per (source s, target column c in struct(s)).
  // next_ordinal[c] counts column c's contributors as sources are visited
  // in ascending s, assigning each update task its canonical drain ordinal.
  std::vector<std::size_t> next_ordinal(static_cast<std::size_t>(nsup), 0);
  for (Int s = 0; s < nsup; ++s) {
    const auto& str = bs.struct_of[static_cast<std::size_t>(s)];
    for (std::size_t ti = 0; ti < str.size(); ++ti) {
      const Int c = str[ti];
      const std::size_t ordinal = next_ordinal[static_cast<std::size_t>(c)]++;
      const numeric::TaskGraph::TaskId id = graph.add(
          (static_cast<std::uint64_t>(s) << 32) + 1 + ti,
          [&m, &bs, &part, &gates, s, c, ordinal] {
            const auto& src = bs.struct_of[static_cast<std::size_t>(s)];
            auto bundle = std::make_unique<UpdateBundle>();
            // Lower + diagonal targets: blocks (i, c), i in struct(s), i >= c.
            const DenseMatrix u_sc = m.block(s, c);
            for (const Int i : src) {
              if (i < c) continue;
              const DenseMatrix l_is = m.block(i, s);
              DenseMatrix update(part.size(i), part.size(c));
              gemm(Trans::kNo, Trans::kNo, 1.0, l_is, u_sc, 0.0, update);
              bundle->rows.push_back(i);
              bundle->row_updates.push_back(std::move(update));
            }
            // Upper targets: blocks (c, j), j in struct(s), j > c.
            const DenseMatrix l_cs = m.block(c, s);
            for (const Int j : src) {
              if (j <= c) continue;
              const DenseMatrix u_sj = m.block(s, j);
              DenseMatrix update(part.size(c), part.size(j));
              gemm(Trans::kNo, Trans::kNo, 1.0, l_cs, u_sj, 0.0, update);
              bundle->cols.push_back(j);
              bundle->col_updates.push_back(std::move(update));
            }
            // Canonical-order drain: apply in ascending source order, or
            // stash until every earlier contribution has been applied.
            ColumnGate& gate = gates[static_cast<std::size_t>(c)];
            const std::lock_guard<std::mutex> lock(gate.mutex);
            if (gate.cursor == ordinal) {
              apply_bundle(m, c, *bundle);
              bundle.reset();
              ++gate.cursor;
              while (gate.cursor < gate.stash.size() &&
                     gate.stash[gate.cursor] != nullptr) {
                apply_bundle(m, c, *gate.stash[gate.cursor]);
                gate.stash[gate.cursor].reset();
                ++gate.cursor;
              }
            } else {
              gate.stash[ordinal] = std::move(bundle);
            }
          });
      graph.add_edge(factor_task[static_cast<std::size_t>(s)], id);
      graph.add_edge(id, factor_task[static_cast<std::size_t>(c)]);
    }
  }

  graph.run(options);
  return lu;
}

std::vector<double> SupernodalLU::solve(const std::vector<double>& b) const {
  PSI_CHECK(!normalized_);
  const BlockStructure& bs = storage_.structure();
  const auto& part = bs.part;
  const Int n = part.n();
  PSI_CHECK(static_cast<Int>(b.size()) == n);
  std::vector<double> x = b;

  // Forward solve L y = b (global unit-lower L).
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    const Int col0 = part.first_col(k);
    const Int width = part.size(k);
    const DenseMatrix& d = storage_.diag(k);
    // Unit-lower triangle of the packed diagonal block.
    for (Int c = 0; c < width; ++c)
      for (Int r = c + 1; r < width; ++r)
        x[static_cast<std::size_t>(col0 + r)] -=
            d(r, c) * x[static_cast<std::size_t>(col0 + c)];
    // Panel.
    const auto& str = bs.struct_of[static_cast<std::size_t>(k)];
    const DenseMatrix& panel = storage_.lpanel(k);
    Int off = 0;
    for (Int i : str) {
      const Int row0 = part.first_col(i);
      for (Int c = 0; c < width; ++c)
        for (Int r = 0; r < part.size(i); ++r)
          x[static_cast<std::size_t>(row0 + r)] -=
              panel(off + r, c) * x[static_cast<std::size_t>(col0 + c)];
      off += part.size(i);
    }
  }

  // Backward solve U x = y.
  for (Int k = bs.supernode_count() - 1; k >= 0; --k) {
    const Int col0 = part.first_col(k);
    const Int width = part.size(k);
    // Upper panel contributions: x_K -= U_{K,I} x_I.
    const auto& str = bs.struct_of[static_cast<std::size_t>(k)];
    const DenseMatrix& panel = storage_.upanel(k);
    Int off = 0;
    for (Int i : str) {
      const Int row0 = part.first_col(i);
      for (Int cc = 0; cc < part.size(i); ++cc)
        for (Int r = 0; r < width; ++r)
          x[static_cast<std::size_t>(col0 + r)] -=
              panel(r, off + cc) * x[static_cast<std::size_t>(row0 + cc)];
      off += part.size(i);
    }
    // Diagonal block upper solve.
    const DenseMatrix& d = storage_.diag(k);
    for (Int c = width - 1; c >= 0; --c) {
      x[static_cast<std::size_t>(col0 + c)] /= d(c, c);
      for (Int r = 0; r < c; ++r)
        x[static_cast<std::size_t>(col0 + r)] -=
            d(r, c) * x[static_cast<std::size_t>(col0 + c)];
    }
  }
  return x;
}

void SupernodalLU::normalize_panels() {
  PSI_CHECK_MSG(!normalized_, "normalize_panels() called twice");
  const BlockStructure& bs = storage_.structure();
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    if (storage_.lpanel(k).rows() > 0)
      trsm(Side::kRight, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0,
           storage_.diag(k), storage_.lpanel(k));
    if (storage_.upanel(k).cols() > 0)
      trsm(Side::kLeft, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0,
           storage_.diag(k), storage_.upanel(k));
  }
  normalized_ = true;
}

Count factorization_flops(const BlockStructure& structure) {
  Count total = 0;
  const auto& part = structure.part;
  for (Int k = 0; k < structure.supernode_count(); ++k) {
    const Int width = part.size(k);
    total += getrf_flops(width);
    Int rows = 0;
    for (Int i : structure.struct_of[static_cast<std::size_t>(k)])
      rows += part.size(i);
    total += 2 * trsm_flops(width, rows);  // both panels
    // Trailing update GEMMs.
    for (Int j : structure.struct_of[static_cast<std::size_t>(k)])
      for (Int i : structure.struct_of[static_cast<std::size_t>(k)])
        total += gemm_flops(part.size(i), part.size(j), width);
  }
  return total;
}

}  // namespace psi
