#include "numeric/supernodal_lu.hpp"

#include "common/check.hpp"

namespace psi {

SupernodalLU SupernodalLU::factor(const SymbolicAnalysis& analysis) {
  return factor(analysis.blocks, analysis.matrix);
}

SupernodalLU SupernodalLU::factor(const BlockStructure& bs,
                                  const SparseMatrix& permuted) {
  PSI_CHECK_MSG(permuted.n() == bs.part.n(),
                "factor: matrix dimension " << permuted.n()
                    << " does not match block structure " << bs.part.n());
  return factor(bs, [&](BlockMatrix& m) { m.load(permuted); });
}

SupernodalLU SupernodalLU::factor(
    const BlockStructure& bs, const std::function<void(BlockMatrix&)>& load) {
  SupernodalLU lu(bs);
  BlockMatrix& m = lu.storage_;
  load(m);
  const Int nsup = bs.supernode_count();

  DenseMatrix lik, ukj, update;
  for (Int k = 0; k < nsup; ++k) {
    // 1. Factor the diagonal block: diag(k) <- packed L_KK \ U_KK.
    getrf_nopivot(m.diag(k));

    // 2. Panel solves.
    //    lpanel: L_{I,K} = A_{I,K} U_KK^{-1}  (right solve with upper).
    if (m.lpanel(k).rows() > 0)
      trsm(Side::kRight, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0,
           m.diag(k), m.lpanel(k));
    //    upanel: U_{K,I} = L_KK^{-1} A_{K,I}  (left solve with unit lower).
    if (m.upanel(k).cols() > 0)
      trsm(Side::kLeft, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0,
           m.diag(k), m.upanel(k));

    // 3. Right-looking trailing update: for I, J in struct(K),
    //    A_{I,J} -= L_{I,K} U_{K,J}.
    const auto& str = bs.struct_of[static_cast<std::size_t>(k)];
    for (Int jt = 0; jt < static_cast<Int>(str.size()); ++jt) {
      const Int j = str[static_cast<std::size_t>(jt)];
      ukj = m.block(k, j);  // U_{K,J} slice of upanel(k)
      for (Int it = 0; it < static_cast<Int>(str.size()); ++it) {
        const Int i = str[static_cast<std::size_t>(it)];
        lik = m.block(i, k);  // L_{I,K} slice of lpanel(k)
        update.resize(bs.part.size(i), bs.part.size(j));
        update.set_zero();
        gemm(Trans::kNo, Trans::kNo, 1.0, lik, ukj, 0.0, update);
        m.add_block(i, j, update, -1.0);
      }
    }
  }
  return lu;
}

std::vector<double> SupernodalLU::solve(const std::vector<double>& b) const {
  PSI_CHECK(!normalized_);
  const BlockStructure& bs = storage_.structure();
  const auto& part = bs.part;
  const Int n = part.n();
  PSI_CHECK(static_cast<Int>(b.size()) == n);
  std::vector<double> x = b;

  // Forward solve L y = b (global unit-lower L).
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    const Int col0 = part.first_col(k);
    const Int width = part.size(k);
    const DenseMatrix& d = storage_.diag(k);
    // Unit-lower triangle of the packed diagonal block.
    for (Int c = 0; c < width; ++c)
      for (Int r = c + 1; r < width; ++r)
        x[static_cast<std::size_t>(col0 + r)] -=
            d(r, c) * x[static_cast<std::size_t>(col0 + c)];
    // Panel.
    const auto& str = bs.struct_of[static_cast<std::size_t>(k)];
    const DenseMatrix& panel = storage_.lpanel(k);
    Int off = 0;
    for (Int i : str) {
      const Int row0 = part.first_col(i);
      for (Int c = 0; c < width; ++c)
        for (Int r = 0; r < part.size(i); ++r)
          x[static_cast<std::size_t>(row0 + r)] -=
              panel(off + r, c) * x[static_cast<std::size_t>(col0 + c)];
      off += part.size(i);
    }
  }

  // Backward solve U x = y.
  for (Int k = bs.supernode_count() - 1; k >= 0; --k) {
    const Int col0 = part.first_col(k);
    const Int width = part.size(k);
    // Upper panel contributions: x_K -= U_{K,I} x_I.
    const auto& str = bs.struct_of[static_cast<std::size_t>(k)];
    const DenseMatrix& panel = storage_.upanel(k);
    Int off = 0;
    for (Int i : str) {
      const Int row0 = part.first_col(i);
      for (Int cc = 0; cc < part.size(i); ++cc)
        for (Int r = 0; r < width; ++r)
          x[static_cast<std::size_t>(col0 + r)] -=
              panel(r, off + cc) * x[static_cast<std::size_t>(row0 + cc)];
      off += part.size(i);
    }
    // Diagonal block upper solve.
    const DenseMatrix& d = storage_.diag(k);
    for (Int c = width - 1; c >= 0; --c) {
      x[static_cast<std::size_t>(col0 + c)] /= d(c, c);
      for (Int r = 0; r < c; ++r)
        x[static_cast<std::size_t>(col0 + r)] -=
            d(r, c) * x[static_cast<std::size_t>(col0 + c)];
    }
  }
  return x;
}

void SupernodalLU::normalize_panels() {
  PSI_CHECK_MSG(!normalized_, "normalize_panels() called twice");
  const BlockStructure& bs = storage_.structure();
  for (Int k = 0; k < bs.supernode_count(); ++k) {
    if (storage_.lpanel(k).rows() > 0)
      trsm(Side::kRight, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0,
           storage_.diag(k), storage_.lpanel(k));
    if (storage_.upanel(k).cols() > 0)
      trsm(Side::kLeft, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0,
           storage_.diag(k), storage_.upanel(k));
  }
  normalized_ = true;
}

Count factorization_flops(const BlockStructure& structure) {
  Count total = 0;
  const auto& part = structure.part;
  for (Int k = 0; k < structure.supernode_count(); ++k) {
    const Int width = part.size(k);
    total += getrf_flops(width);
    Int rows = 0;
    for (Int i : structure.struct_of[static_cast<std::size_t>(k)])
      rows += part.size(i);
    total += 2 * trsm_flops(width, rows);  // both panels
    // Trailing update GEMMs.
    for (Int j : structure.struct_of[static_cast<std::size_t>(k)])
      for (Int i : structure.struct_of[static_cast<std::size_t>(k)])
        total += gemm_flops(part.size(i), part.size(j), width);
  }
  return total;
}

}  // namespace psi
