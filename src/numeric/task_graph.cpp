#include "numeric/task_graph.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace psi::numeric {

void TaskGraphStats::accumulate(const TaskGraphStats& other) {
  tasks += other.tasks;
  edges += other.edges;
  threads = std::max(threads, other.threads);
  ready_high_water = std::max(ready_high_water, other.ready_high_water);
  run_seconds += other.run_seconds;
}

TaskGraph::TaskId TaskGraph::add(std::uint64_t key, std::function<void()> fn) {
  PSI_CHECK(fn != nullptr);
  Node node;
  node.key = key;
  node.priority = key;
  node.fn = std::move(fn);
  nodes_.push_back(std::move(node));
  return static_cast<TaskId>(nodes_.size()) - 1;
}

void TaskGraph::add_edge(TaskId before, TaskId after) {
  PSI_CHECK_MSG(before >= 0 && after >= 0 &&
                    before < static_cast<TaskId>(nodes_.size()) &&
                    after < static_cast<TaskId>(nodes_.size()) &&
                    before != after,
                "TaskGraph::add_edge(" << before << ", " << after
                                       << ") out of range");
  nodes_[static_cast<std::size_t>(before)].dependents.push_back(after);
  nodes_[static_cast<std::size_t>(after)].indegree += 1;
  ++edges_;
}

void TaskGraph::push_ready_locked(TaskId id) {
  ready_.push_back(id);
  std::push_heap(ready_.begin(), ready_.end(), [this](TaskId a, TaskId b) {
    const Node& na = nodes_[static_cast<std::size_t>(a)];
    const Node& nb = nodes_[static_cast<std::size_t>(b)];
    // std::push_heap builds a max-heap; invert for a min-heap on
    // (priority, id). The id tie-break keeps the order total.
    return na.priority != nb.priority ? na.priority > nb.priority : a > b;
  });
  ready_high_water_ = std::max(ready_high_water_, ready_.size());
}

TaskGraph::TaskId TaskGraph::pop_ready_locked() {
  std::pop_heap(ready_.begin(), ready_.end(), [this](TaskId a, TaskId b) {
    const Node& na = nodes_[static_cast<std::size_t>(a)];
    const Node& nb = nodes_[static_cast<std::size_t>(b)];
    return na.priority != nb.priority ? na.priority > nb.priority : a > b;
  });
  const TaskId id = ready_.back();
  ready_.pop_back();
  return id;
}

void TaskGraph::run(const ParallelOptions& options) {
  const std::size_t n = nodes_.size();
  WallTimer timer;
  if (options.tie_break_seed != 0) {
    // Adversarial priority permutation: a seeded hash of (seed, key, id)
    // replaces every priority, scrambling which ready task runs next.
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t state = hash_combine(
          hash_combine(options.tie_break_seed, nodes_[i].key),
          static_cast<std::uint64_t>(i));
      nodes_[i].priority = splitmix64(state);
    }
  }

  int threads = std::max(1, options.threads);
  if (options.pool != nullptr)
    threads = std::min(threads, options.pool->thread_count() + 1);
  else
    threads = 1;

  remaining_ = n;
  in_flight_ = 0;
  ready_.clear();
  ready_.reserve(n);
  cancelled_ = false;
  stalled_ = false;
  first_error_ = nullptr;
  {
    // Per-node atomic in-degree counters (decremented lock-free by
    // completing tasks; the mutex only guards the ready heap).
    std::vector<std::atomic<int>> deps(n);
    remaining_deps_.swap(deps);
  }
  for (std::size_t i = 0; i < n; ++i) {
    remaining_deps_[i].store(nodes_[i].indegree, std::memory_order_relaxed);
    if (nodes_[i].indegree == 0) push_ready_locked(static_cast<TaskId>(i));
  }
  PSI_CHECK_MSG(n == 0 || !ready_.empty(),
                "TaskGraph::run: no root tasks (dependency cycle?)");

  if (threads == 1) {
    run_inline();
  } else {
    for (int t = 1; t < threads; ++t)
      options.pool->submit([this] { drain(); });
    drain();
    // Wait for the borrowed workers; drain() never throws, so wait() only
    // rethrows foreign pool-task errors (none on a dedicated compute pool).
    options.pool->wait();
  }

  PSI_CHECK_MSG(!stalled_ && (cancelled_ || remaining_ == 0),
                "TaskGraph::run: " << remaining_
                                   << " tasks unreachable (dependency cycle)");
  if (options.stats != nullptr) {
    TaskGraphStats s;
    s.tasks = static_cast<Count>(n);
    s.edges = edges_;
    s.threads = threads;
    s.ready_high_water = ready_high_water_;
    s.run_seconds = timer.seconds();
    options.stats->accumulate(s);
  }
  if (first_error_) std::rethrow_exception(first_error_);
}

void TaskGraph::run_inline() {
  // Single-threaded drain: same heap, no locking. With canonical keys this
  // executes tasks in exactly the deterministic priority order.
  while (!ready_.empty()) {
    const TaskId id = pop_ready_locked();
    Node& node = nodes_[static_cast<std::size_t>(id)];
    try {
      node.fn();
    } catch (...) {
      first_error_ = std::current_exception();
      cancelled_ = true;
      return;
    }
    --remaining_;
    for (const TaskId dep : node.dependents)
      if (remaining_deps_[static_cast<std::size_t>(dep)].fetch_sub(
              1, std::memory_order_acq_rel) == 1)
        push_ready_locked(dep);
  }
}

void TaskGraph::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [this] {
      return cancelled_ || remaining_ == 0 || !ready_.empty();
    });
    if (cancelled_ || remaining_ == 0) return;
    const TaskId id = pop_ready_locked();
    ++in_flight_;
    Node& node = nodes_[static_cast<std::size_t>(id)];
    lock.unlock();

    std::exception_ptr error;
    try {
      node.fn();
    } catch (...) {
      error = std::current_exception();
    }

    std::vector<TaskId> newly_ready;
    if (!error) {
      for (const TaskId dep : node.dependents)
        if (remaining_deps_[static_cast<std::size_t>(dep)].fetch_sub(
                1, std::memory_order_acq_rel) == 1)
          newly_ready.push_back(dep);
    }

    lock.lock();
    --in_flight_;
    if (error) {
      if (!first_error_) first_error_ = error;
      cancelled_ = true;
      wake_.notify_all();
      return;
    }
    --remaining_;
    for (const TaskId dep : newly_ready) push_ready_locked(dep);
    if (ready_.empty() && in_flight_ == 0 && remaining_ != 0) {
      // Nothing ready, nothing running, tasks left: a dependency cycle.
      // Cancel instead of letting every worker block on the cv forever;
      // run() turns stalled_ into the unreachable-tasks error.
      stalled_ = true;
      cancelled_ = true;
      wake_.notify_all();
      return;
    }
    if (remaining_ == 0 || cancelled_)
      wake_.notify_all();
    else
      for (std::size_t i = 0; i < newly_ready.size(); ++i) wake_.notify_one();
  }
}

}  // namespace psi::numeric
