#include "numeric/selinv.hpp"

#include "common/check.hpp"

namespace psi {

BlockMatrix selected_inversion(SupernodalLU& lu) {
  if (!lu.normalized()) lu.normalize_panels();
  const BlockStructure& bs = lu.structure();
  const auto& part = bs.part;
  const BlockMatrix& f = lu.blocks();
  BlockMatrix ainv(bs);

  DenseMatrix lhat, uhat, contrib, acc;
  for (Int k = bs.supernode_count() - 1; k >= 0; --k) {
    const Int width = part.size(k);
    // Seed the diagonal: U_KK^{-1} L_KK^{-1}.
    DenseMatrix diag_inv(width, width);
    for (Int i = 0; i < width; ++i) diag_inv(i, i) = 1.0;
    trsm(Side::kLeft, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0, f.diag(k), diag_inv);
    trsm(Side::kLeft, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0, f.diag(k), diag_inv);

    const auto& str = bs.struct_of[static_cast<std::size_t>(k)];
    // A^{-1}_{J,K} = - sum_{I in C} A^{-1}_{J,I} L̂_{I,K}   (lower panel)
    // A^{-1}_{K,J} = - sum_{I in C} Û_{K,I} A^{-1}_{I,J}   (upper panel)
    for (Int j : str) {
      acc.resize(part.size(j), width);
      acc.set_zero();
      for (Int i : str) {
        lhat = f.block(i, k);                    // L̂_{I,K}
        contrib = ainv.block(j, i);              // A^{-1}_{J,I}
        gemm(Trans::kNo, Trans::kNo, -1.0, contrib, lhat, 1.0, acc);
      }
      ainv.set_block(j, k, acc);

      acc.resize(width, part.size(j));
      acc.set_zero();
      for (Int i : str) {
        uhat = f.block(k, i);                    // Û_{K,I}
        contrib = ainv.block(i, j);              // A^{-1}_{I,J}
        gemm(Trans::kNo, Trans::kNo, -1.0, uhat, contrib, 1.0, acc);
      }
      ainv.set_block(k, j, acc);
    }

    // A^{-1}_{K,K} = U_KK^{-1} L_KK^{-1} - Û_{K,C} A^{-1}_{C,K}.
    for (Int j : str) {
      uhat = f.block(k, j);
      contrib = ainv.block(j, k);  // freshly computed above
      gemm(Trans::kNo, Trans::kNo, -1.0, uhat, contrib, 1.0, diag_inv);
    }
    ainv.set_block(k, k, diag_inv);
  }
  return ainv;
}

BlockMatrix selinv_parallel(SupernodalLU& lu,
                            const numeric::ParallelOptions& options) {
  const BlockStructure& bs = lu.structure();
  const auto& part = bs.part;
  BlockMatrix& f = lu.storage_;
  BlockMatrix ainv(bs);
  const Int nsup = bs.supernode_count();
  if (nsup == 0) {
    lu.normalized_ = true;
    return ainv;
  }

  numeric::TaskGraph graph;
  const bool normalize = !lu.normalized();

  // Keys descend the supernode order (high supernodes — the elimination
  // tree roots the sweep starts from — first), with each column's
  // normalization slotted just before its sweep step.
  std::vector<numeric::TaskGraph::TaskId> sweep_task(
      static_cast<std::size_t>(nsup));
  for (Int k = 0; k < nsup; ++k) {
    sweep_task[static_cast<std::size_t>(k)] = graph.add(
        (static_cast<std::uint64_t>(nsup - 1 - k) << 32) + 1,
        [&f, &ainv, &bs, &part, k] {
          // Verbatim per-supernode body of selected_inversion(): all sums
          // are evaluated task-locally in the sequential order, and every
          // ainv block this task reads was finalized by a sweep task this
          // one depends on.
          const Int width = part.size(k);
          DenseMatrix diag_inv(width, width);
          for (Int i = 0; i < width; ++i) diag_inv(i, i) = 1.0;
          trsm(Side::kLeft, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0,
               f.diag(k), diag_inv);
          trsm(Side::kLeft, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0,
               f.diag(k), diag_inv);

          DenseMatrix lhat, uhat, contrib, acc;
          const auto& str = bs.struct_of[static_cast<std::size_t>(k)];
          for (Int j : str) {
            acc.resize(part.size(j), width);
            acc.set_zero();
            for (Int i : str) {
              lhat = f.block(i, k);        // L̂_{I,K}
              contrib = ainv.block(j, i);  // A^{-1}_{J,I}
              gemm(Trans::kNo, Trans::kNo, -1.0, contrib, lhat, 1.0, acc);
            }
            ainv.set_block(j, k, acc);

            acc.resize(width, part.size(j));
            acc.set_zero();
            for (Int i : str) {
              uhat = f.block(k, i);        // Û_{K,I}
              contrib = ainv.block(i, j);  // A^{-1}_{I,J}
              gemm(Trans::kNo, Trans::kNo, -1.0, uhat, contrib, 1.0, acc);
            }
            ainv.set_block(k, j, acc);
          }

          for (Int j : str) {
            uhat = f.block(k, j);
            contrib = ainv.block(j, k);  // freshly computed above
            gemm(Trans::kNo, Trans::kNo, -1.0, uhat, contrib, 1.0, diag_inv);
          }
          ainv.set_block(k, k, diag_inv);
        });
  }
  for (Int k = 0; k < nsup; ++k) {
    if (normalize) {
      // First loop of Algorithm 1, per column: identical trsm calls as
      // normalize_panels(), fused into the graph so deep columns normalize
      // while the sweep is already descending elsewhere.
      const numeric::TaskGraph::TaskId norm = graph.add(
          static_cast<std::uint64_t>(nsup - 1 - k) << 32, [&f, k] {
            if (f.lpanel(k).rows() > 0)
              trsm(Side::kRight, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0,
                   f.diag(k), f.lpanel(k));
            if (f.upanel(k).cols() > 0)
              trsm(Side::kLeft, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0,
                   f.diag(k), f.upanel(k));
          });
      graph.add_edge(norm, sweep_task[static_cast<std::size_t>(k)]);
    }
    // Supernode K reads A^{-1} blocks finalized by every supernode in its
    // ancestor index set C(K).
    for (Int m : bs.struct_of[static_cast<std::size_t>(k)])
      graph.add_edge(sweep_task[static_cast<std::size_t>(m)],
                     sweep_task[static_cast<std::size_t>(k)]);
  }

  graph.run(options);
  lu.normalized_ = true;
  return ainv;
}

Count selinv_flops(const BlockStructure& structure) {
  const auto& part = structure.part;
  Count total = 0;
  for (Int k = 0; k < structure.supernode_count(); ++k) {
    const Int width = part.size(k);
    total += 2 * trsm_flops(width, width);  // diagonal seed
    const auto& str = structure.struct_of[static_cast<std::size_t>(k)];
    for (Int j : str) {
      for (Int i : str) {
        total += gemm_flops(part.size(j), width, part.size(i));  // lower
        total += gemm_flops(width, part.size(j), part.size(i));  // upper
      }
      total += gemm_flops(width, width, part.size(j));  // diagonal update
    }
  }
  return total;
}

}  // namespace psi
