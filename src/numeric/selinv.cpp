#include "numeric/selinv.hpp"

#include "common/check.hpp"

namespace psi {

BlockMatrix selected_inversion(SupernodalLU& lu) {
  if (!lu.normalized()) lu.normalize_panels();
  const BlockStructure& bs = lu.structure();
  const auto& part = bs.part;
  const BlockMatrix& f = lu.blocks();
  BlockMatrix ainv(bs);

  DenseMatrix lhat, uhat, contrib, acc;
  for (Int k = bs.supernode_count() - 1; k >= 0; --k) {
    const Int width = part.size(k);
    // Seed the diagonal: U_KK^{-1} L_KK^{-1}.
    DenseMatrix diag_inv(width, width);
    for (Int i = 0; i < width; ++i) diag_inv(i, i) = 1.0;
    trsm(Side::kLeft, UpLo::kLower, Trans::kNo, Diag::kUnit, 1.0, f.diag(k), diag_inv);
    trsm(Side::kLeft, UpLo::kUpper, Trans::kNo, Diag::kNonUnit, 1.0, f.diag(k), diag_inv);

    const auto& str = bs.struct_of[static_cast<std::size_t>(k)];
    // A^{-1}_{J,K} = - sum_{I in C} A^{-1}_{J,I} L̂_{I,K}   (lower panel)
    // A^{-1}_{K,J} = - sum_{I in C} Û_{K,I} A^{-1}_{I,J}   (upper panel)
    for (Int j : str) {
      acc.resize(part.size(j), width);
      acc.set_zero();
      for (Int i : str) {
        lhat = f.block(i, k);                    // L̂_{I,K}
        contrib = ainv.block(j, i);              // A^{-1}_{J,I}
        gemm(Trans::kNo, Trans::kNo, -1.0, contrib, lhat, 1.0, acc);
      }
      ainv.set_block(j, k, acc);

      acc.resize(width, part.size(j));
      acc.set_zero();
      for (Int i : str) {
        uhat = f.block(k, i);                    // Û_{K,I}
        contrib = ainv.block(i, j);              // A^{-1}_{I,J}
        gemm(Trans::kNo, Trans::kNo, -1.0, uhat, contrib, 1.0, acc);
      }
      ainv.set_block(k, j, acc);
    }

    // A^{-1}_{K,K} = U_KK^{-1} L_KK^{-1} - Û_{K,C} A^{-1}_{C,K}.
    for (Int j : str) {
      uhat = f.block(k, j);
      contrib = ainv.block(j, k);  // freshly computed above
      gemm(Trans::kNo, Trans::kNo, -1.0, uhat, contrib, 1.0, diag_inv);
    }
    ainv.set_block(k, k, diag_inv);
  }
  return ainv;
}

Count selinv_flops(const BlockStructure& structure) {
  const auto& part = structure.part;
  Count total = 0;
  for (Int k = 0; k < structure.supernode_count(); ++k) {
    const Int width = part.size(k);
    total += 2 * trsm_flops(width, width);  // diagonal seed
    const auto& str = structure.struct_of[static_cast<std::size_t>(k)];
    for (Int j : str) {
      for (Int i : str) {
        total += gemm_flops(part.size(j), width, part.size(i));  // lower
        total += gemm_flops(width, part.size(j), part.size(i));  // upper
      }
      total += gemm_flops(width, width, part.size(j));  // diagonal update
    }
  }
  return total;
}

}  // namespace psi
