#include "numeric/block_matrix.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace psi {

BlockMatrix::BlockMatrix(const BlockStructure& structure) : structure_(&structure) {
  const Int nsup = structure.supernode_count();
  cols_.resize(static_cast<std::size_t>(nsup));
  offsets_.resize(static_cast<std::size_t>(nsup));
  pos_index_.resize(static_cast<std::size_t>(nsup));
  for (Int k = 0; k < nsup; ++k) {
    const Int width = structure.part.size(k);
    auto& offs = offsets_[static_cast<std::size_t>(k)];
    const auto& str = structure.struct_of[static_cast<std::size_t>(k)];
    offs.resize(str.size() + 1);
    offs[0] = 0;
    for (std::size_t t = 0; t < str.size(); ++t)
      offs[t + 1] = offs[t] + structure.part.size(str[t]);
    auto& col = cols_[static_cast<std::size_t>(k)];
    col.diag.resize(width, width);
    col.lpanel.resize(offs.back(), width);
    col.upanel.resize(width, offs.back());

    // Arithmetic-progression detection (struct lists are ascending): a
    // single stride shared by every gap turns struct_position into pure
    // arithmetic; mixed gaps keep stride == 0 -> binary-search fallback.
    auto& idx = pos_index_[static_cast<std::size_t>(k)];
    if (str.empty()) {
      idx = PositionIndex{0, -1, 1};  // empty progression: always absent
    } else if (str.size() == 1) {
      idx = PositionIndex{str[0], str[0], 1};
    } else {
      const Int stride = str[1] - str[0];
      bool is_ap = true;
      for (std::size_t t = 2; t < str.size() && is_ap; ++t)
        is_ap = str[t] - str[t - 1] == stride;
      idx = is_ap ? PositionIndex{str.front(), str.back(), stride}
                  : PositionIndex{0, -1, 0};
    }
  }
}

Int BlockMatrix::struct_position_reference(Int k, Int i) const {
  const auto& str = structure_->struct_of[static_cast<std::size_t>(k)];
  const auto it = std::lower_bound(str.begin(), str.end(), i);
  if (it == str.end() || *it != i) return -1;
  return static_cast<Int>(it - str.begin());
}

Int BlockMatrix::block_offset(Int k, Int i) const {
  const Int pos = struct_position(k, i);
  PSI_CHECK_MSG(pos >= 0, "block (" << i << "," << k << ") not in structure");
  return offsets_[static_cast<std::size_t>(k)][static_cast<std::size_t>(pos)];
}

Int BlockMatrix::panel_rows(Int k) const {
  return offsets_[static_cast<std::size_t>(k)].back();
}

DenseMatrix BlockMatrix::block(Int i, Int k) const {
  const auto& part = structure_->part;
  if (i == k) return diag(k);
  if (i > k) {
    const Int off = block_offset(k, i);
    DenseMatrix out(part.size(i), part.size(k));
    const DenseMatrix& panel = lpanel(k);
    for (Int c = 0; c < out.cols(); ++c)
      for (Int r = 0; r < out.rows(); ++r) out(r, c) = panel(off + r, c);
    return out;
  }
  // i < k: upper block, stored in upanel(i) at column offset of k.
  const Int off = block_offset(i, k);
  DenseMatrix out(part.size(i), part.size(k));
  const DenseMatrix& panel = upanel(i);
  for (Int c = 0; c < out.cols(); ++c)
    for (Int r = 0; r < out.rows(); ++r) out(r, c) = panel(r, off + c);
  return out;
}

void BlockMatrix::set_block(Int i, Int k, const DenseMatrix& value) {
  const auto& part = structure_->part;
  if (i == k) {
    PSI_CHECK(value.rows() == part.size(k) && value.cols() == part.size(k));
    diag(k) = value;
    return;
  }
  if (i > k) {
    PSI_CHECK(value.rows() == part.size(i) && value.cols() == part.size(k));
    const Int off = block_offset(k, i);
    DenseMatrix& panel = lpanel(k);
    for (Int c = 0; c < value.cols(); ++c)
      for (Int r = 0; r < value.rows(); ++r) panel(off + r, c) = value(r, c);
    return;
  }
  PSI_CHECK(value.rows() == part.size(i) && value.cols() == part.size(k));
  const Int off = block_offset(i, k);
  DenseMatrix& panel = upanel(i);
  for (Int c = 0; c < value.cols(); ++c)
    for (Int r = 0; r < value.rows(); ++r) panel(r, off + c) = value(r, c);
}

void BlockMatrix::add_block(Int i, Int k, const DenseMatrix& value, double scale) {
  const auto& part = structure_->part;
  if (i == k) {
    PSI_CHECK(value.rows() == part.size(k) && value.cols() == part.size(k));
    DenseMatrix& d = diag(k);
    for (Int c = 0; c < value.cols(); ++c)
      for (Int r = 0; r < value.rows(); ++r) d(r, c) += scale * value(r, c);
    return;
  }
  if (i > k) {
    const Int off = block_offset(k, i);
    DenseMatrix& panel = lpanel(k);
    for (Int c = 0; c < value.cols(); ++c)
      for (Int r = 0; r < value.rows(); ++r) panel(off + r, c) += scale * value(r, c);
    return;
  }
  const Int off = block_offset(i, k);
  DenseMatrix& panel = upanel(i);
  for (Int c = 0; c < value.cols(); ++c)
    for (Int r = 0; r < value.rows(); ++r) panel(r, off + c) += scale * value(r, c);
}

void BlockMatrix::load(const SparseMatrix& a) {
  const auto& part = structure_->part;
  PSI_CHECK(a.n() == part.n());
  for (Int j = 0; j < a.n(); ++j) {
    const Int k = part.sup_of_col[static_cast<std::size_t>(j)];
    const Int jc = j - part.first_col(k);
    for (Int p = a.pattern.col_ptr[j]; p < a.pattern.col_ptr[j + 1]; ++p) {
      const Int row = a.pattern.row_idx[p];
      const double v = a.values[static_cast<std::size_t>(p)];
      const Int bi = part.sup_of_col[static_cast<std::size_t>(row)];
      const Int ir = row - part.first_col(bi);
      if (bi == k) {
        diag(k)(ir, jc) = v;
      } else if (bi > k) {
        lpanel(k)(block_offset(k, bi) + ir, jc) = v;
      } else {
        upanel(bi)(ir, block_offset(bi, k) + jc) = v;
      }
    }
  }
}

DenseMatrix BlockMatrix::to_dense() const {
  const auto& part = structure_->part;
  const Int n = part.n();
  DenseMatrix out(n, n);
  for (Int k = 0; k < supernode_count(); ++k) {
    const Int col0 = part.first_col(k);
    const Int width = part.size(k);
    for (Int c = 0; c < width; ++c)
      for (Int r = 0; r < width; ++r) out(col0 + r, col0 + c) = diag(k)(r, c);
    const auto& str = structure_->struct_of[static_cast<std::size_t>(k)];
    for (std::size_t t = 0; t < str.size(); ++t) {
      const Int i = str[t];
      const Int row0 = part.first_col(i);
      const Int off = offsets_[static_cast<std::size_t>(k)][t];
      for (Int c = 0; c < width; ++c)
        for (Int r = 0; r < part.size(i); ++r) {
          out(row0 + r, col0 + c) = lpanel(k)(off + r, c);
          out(col0 + c, row0 + r) = upanel(k)(c, off + r);
        }
    }
  }
  return out;
}

}  // namespace psi
