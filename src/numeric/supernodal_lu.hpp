/// \file supernodal_lu.hpp
/// \brief Sequential supernodal LU factorization (the SuperLU_DIST
/// pre-processing step of the paper, re-implemented from scratch) and the
/// derived normalized factors consumed by selected inversion.
#pragma once

#include <functional>

#include "numeric/block_matrix.hpp"
#include "symbolic/analysis.hpp"

namespace psi {

/// Supernodal right-looking LU over the full-block structure.
///
/// After factor():
///  * diag(K) packs the unit-lower L_KK (below diagonal) and U_KK
///    (on/above);
///  * lpanel(K) holds L_{I,K} for I in struct(K);
///  * upanel(K) holds U_{K,I}.
/// A = L U exactly (up to roundoff) on the full-block pattern.
class SupernodalLU {
 public:
  /// Factorizes analysis.matrix; throws psi::Error on a zero pivot (the
  /// generators produce diagonally dominant values precisely to avoid this).
  static SupernodalLU factor(const SymbolicAnalysis& analysis);

  /// Numeric-refresh overload: factorizes `permuted` — a matrix already in
  /// the analyzed (P A P^T, postordered) order — over a previously computed
  /// block structure. This is the path a plan cache takes when only the
  /// values of a matrix changed: re-permute the new values with the cached
  /// permutation and skip ordering/symbolic analysis entirely.
  /// `factor(analysis)` is exactly `factor(analysis.blocks, analysis.matrix)`,
  /// so the two paths are bitwise identical. `blocks` must outlive the
  /// returned factor.
  static SupernodalLU factor(const BlockStructure& blocks,
                             const SparseMatrix& permuted);

  /// Loader-callback overload: `load` receives the freshly allocated,
  /// zeroed block storage and writes the matrix entries into it (e.g. a
  /// serving layer scattering request values through a precomputed slot
  /// map); elimination then proceeds exactly as the other overloads, so the
  /// result is bitwise identical whenever the loaded values are.
  static SupernodalLU factor(const BlockStructure& blocks,
                             const std::function<void(BlockMatrix&)>& load);

  const BlockStructure& structure() const { return storage_.structure(); }
  const BlockMatrix& blocks() const { return storage_; }
  BlockMatrix& blocks() { return storage_; }

  /// Solve A x = b with the factors (forward + back substitution over
  /// supernodes); used by tests to validate the factorization.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// The paper's normalized factors (Algorithm 1, first loop):
  ///   L̂_{I,K} = L_{I,K} (L_KK)^{-1},   Û_{K,I} = (U_KK)^{-1} U_{K,I}.
  /// Overwrites the panels in place (diag is kept packed, as both triangles
  /// are still needed to seed A^{-1}_{K,K}).
  void normalize_panels();
  bool normalized() const { return normalized_; }

 private:
  explicit SupernodalLU(const BlockStructure& structure) : storage_(structure) {}

  BlockMatrix storage_;
  bool normalized_ = false;
};

/// Flop count of the factorization over this structure (used by the
/// simulator's distributed-LU reference model).
Count factorization_flops(const BlockStructure& structure);

}  // namespace psi
