/// \file supernodal_lu.hpp
/// \brief Sequential supernodal LU factorization (the SuperLU_DIST
/// pre-processing step of the paper, re-implemented from scratch) and the
/// derived normalized factors consumed by selected inversion.
#pragma once

#include <functional>

#include "numeric/block_matrix.hpp"
#include "numeric/task_graph.hpp"
#include "symbolic/analysis.hpp"

namespace psi {

/// Supernodal right-looking LU over the full-block structure.
///
/// After factor():
///  * diag(K) packs the unit-lower L_KK (below diagonal) and U_KK
///    (on/above);
///  * lpanel(K) holds L_{I,K} for I in struct(K);
///  * upanel(K) holds U_{K,I}.
/// A = L U exactly (up to roundoff) on the full-block pattern.
class SupernodalLU {
 public:
  /// Factorizes analysis.matrix; throws psi::Error on a zero pivot (the
  /// generators produce diagonally dominant values precisely to avoid this).
  static SupernodalLU factor(const SymbolicAnalysis& analysis);

  /// Numeric-refresh overload: factorizes `permuted` — a matrix already in
  /// the analyzed (P A P^T, postordered) order — over a previously computed
  /// block structure. This is the path a plan cache takes when only the
  /// values of a matrix changed: re-permute the new values with the cached
  /// permutation and skip ordering/symbolic analysis entirely.
  /// `factor(analysis)` is exactly `factor(analysis.blocks, analysis.matrix)`,
  /// so the two paths are bitwise identical. `blocks` must outlive the
  /// returned factor.
  static SupernodalLU factor(const BlockStructure& blocks,
                             const SparseMatrix& permuted);

  /// Loader-callback overload: `load` receives the freshly allocated,
  /// zeroed block storage and writes the matrix entries into it (e.g. a
  /// serving layer scattering request values through a precomputed slot
  /// map); elimination then proceeds exactly as the other overloads, so the
  /// result is bitwise identical whenever the loaded values are.
  static SupernodalLU factor(const BlockStructure& blocks,
                             const std::function<void(BlockMatrix&)>& load);

  /// Task-parallel right-looking factorization over a numeric::TaskGraph:
  /// one diag-factor/panel-solve task per supernode plus one outer-product
  /// update task per (source supernode, target column) pair. Schur updates
  /// are accumulated into each target column strictly in ascending source
  /// order (a per-column ordinal cursor buffers out-of-order arrivals), so
  /// every floating-point sum is evaluated in exactly the sequential
  /// right-looking order: the result is BITWISE identical to factor() for
  /// any thread count, pool, or tie_break_seed (test-enforced by digest).
  static SupernodalLU factor_parallel(const BlockStructure& blocks,
                                      const std::function<void(BlockMatrix&)>& load,
                                      const numeric::ParallelOptions& options);
  static SupernodalLU factor_parallel(const BlockStructure& blocks,
                                      const SparseMatrix& permuted,
                                      const numeric::ParallelOptions& options);
  static SupernodalLU factor_parallel(const SymbolicAnalysis& analysis,
                                      const numeric::ParallelOptions& options);

  const BlockStructure& structure() const { return storage_.structure(); }
  const BlockMatrix& blocks() const { return storage_; }
  BlockMatrix& blocks() { return storage_; }

  /// Solve A x = b with the factors (forward + back substitution over
  /// supernodes); used by tests to validate the factorization.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// The paper's normalized factors (Algorithm 1, first loop):
  ///   L̂_{I,K} = L_{I,K} (L_KK)^{-1},   Û_{K,I} = (U_KK)^{-1} U_{K,I}.
  /// Overwrites the panels in place (diag is kept packed, as both triangles
  /// are still needed to seed A^{-1}_{K,K}).
  void normalize_panels();
  bool normalized() const { return normalized_; }

 private:
  explicit SupernodalLU(const BlockStructure& structure) : storage_(structure) {}

  /// selinv_parallel fuses the per-column normalization into its task graph
  /// and flips normalized_ itself.
  friend BlockMatrix selinv_parallel(SupernodalLU& lu,
                                     const numeric::ParallelOptions& options);

  BlockMatrix storage_;
  bool normalized_ = false;
};

/// Ascending list, per supernode column c, of the source supernodes s < c
/// with c in struct(s) — the transpose of BlockStructure::struct_of. These
/// are exactly the columns whose Schur updates (factorization) or selected
/// blocks (inversion sweep) column c depends on; both parallel drivers key
/// their dependency edges off it.
std::vector<std::vector<Int>> block_row_structure(const BlockStructure& structure);

/// Flop count of the factorization over this structure (used by the
/// simulator's distributed-LU reference model).
Count factorization_flops(const BlockStructure& structure);

}  // namespace psi
