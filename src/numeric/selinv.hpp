/// \file selinv.hpp
/// \brief Sequential selected inversion (Algorithm 1 of the paper).
///
/// Reference implementation used to validate the distributed PSelInv engine:
/// given the supernodal LU factors, computes every block of A^{-1} on the
/// factor's block pattern (both triangles), processing supernodes from last
/// to first.
#pragma once

#include "numeric/supernodal_lu.hpp"

namespace psi {

/// Runs Algorithm 1. Normalizes the factor panels in place if the caller has
/// not done so already (first loop of the algorithm), then executes the
/// second loop sequentially. Returns the selected inverse in the same block
/// layout as the factor.
BlockMatrix selected_inversion(SupernodalLU& lu);

/// Flops of the selected-inversion sweep over this structure (excludes the
/// factorization; used by the simulator's compute model).
Count selinv_flops(const BlockStructure& structure);

}  // namespace psi
