/// \file selinv.hpp
/// \brief Sequential selected inversion (Algorithm 1 of the paper).
///
/// Reference implementation used to validate the distributed PSelInv engine:
/// given the supernodal LU factors, computes every block of A^{-1} on the
/// factor's block pattern (both triangles), processing supernodes from last
/// to first.
#pragma once

#include "numeric/supernodal_lu.hpp"

namespace psi {

/// Runs Algorithm 1. Normalizes the factor panels in place if the caller has
/// not done so already (first loop of the algorithm), then executes the
/// second loop sequentially. Returns the selected inverse in the same block
/// layout as the factor.
BlockMatrix selected_inversion(SupernodalLU& lu);

/// Task-parallel Algorithm 1 over a numeric::TaskGraph: per-supernode
/// normalization tasks (the first loop) feeding per-supernode sweep tasks
/// that descend the elimination tree (supernode K waits on every supernode
/// in its ancestor index set C(K), whose selected blocks it reads). Each
/// sweep task runs the exact sequential per-supernode kernel sequence and
/// writes only its own block column, so there is no cross-task accumulation
/// at all: the result is BITWISE identical to selected_inversion() for any
/// thread count, pool, or tie_break_seed (test-enforced by digest).
BlockMatrix selinv_parallel(SupernodalLU& lu,
                            const numeric::ParallelOptions& options);

/// Flops of the selected-inversion sweep over this structure (excludes the
/// factorization; used by the simulator's compute model).
Count selinv_flops(const BlockStructure& structure);

}  // namespace psi
