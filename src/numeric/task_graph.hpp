/// \file task_graph.hpp
/// \brief Static dependency-graph task scheduler for the shared-memory
/// numeric phase (task-parallel factorization and selected inversion).
///
/// The graph is built up front — one node per supernode task (diag-factor /
/// panel-solve, outer-product update bundle, inversion sweep step), one edge
/// per data dependency — and then drained by the calling thread plus
/// `threads - 1` workers borrowed from a parallel::ThreadPool. Readiness is
/// tracked with atomic in-degree counters; ready tasks sit in one shared
/// min-heap ordered by a caller-chosen 64-bit key (the drivers key tasks by
/// elimination-tree postorder, so ties between ready tasks break
/// deterministically toward the sequential elimination order). There is no
/// per-thread work stealing: at the supernode granularity the heap is
/// popped a few hundred times per run, so one mutex-protected deque is both
/// simpler and cheap, and it gives every worker the same global priority
/// view.
///
/// Determinism contract: the scheduler never promises a deterministic
/// *interleaving* — only the drivers' canonical-order reduction discipline
/// makes results bitwise reproducible. To let tests attack exactly that
/// discipline, `tie_break_seed` replaces the priority of every task with a
/// seeded hash (check::AdversarialSchedule-style), scrambling ready-queue
/// order arbitrarily; results must stay bitwise identical under any seed,
/// and tests/test_numeric_parallel.cpp enforces that by digest.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/parallel.hpp"
#include "sparse/types.hpp"

namespace psi::numeric {

/// Per-run scheduler instrumentation, folded into psi::obs metrics by the
/// serving layer and exported as bench rows by bench_numeric.
struct TaskGraphStats {
  Count tasks = 0;        ///< nodes executed
  Count edges = 0;        ///< dependency edges
  int threads = 1;        ///< effective worker count (caller included)
  std::size_t ready_high_water = 0;  ///< max simultaneously ready tasks
  double run_seconds = 0.0;          ///< wall time of run()

  /// Accumulates another run's numbers (a serve request runs two graphs:
  /// factorization + inversion sweep).
  void accumulate(const TaskGraphStats& other);
};

/// Options shared by the parallel numeric drivers (factor_parallel,
/// selinv_parallel).
struct ParallelOptions {
  /// Total workers draining the graph, caller included. 1 (or a null
  /// `pool`) runs the graph inline on the caller with no locking.
  int threads = 1;
  /// Pool supplying the `threads - 1` extra workers. The pool may be shared
  /// across requests but must have idle capacity; submission happens from
  /// the calling thread (which may itself be a worker of a *different*
  /// pool — see parallel::ThreadPool's self-nesting guard).
  parallel::ThreadPool* pool = nullptr;
  /// Non-zero: adversarially permute ready-queue priorities with this seed
  /// (testing hook; results must be bitwise seed-independent).
  std::uint64_t tie_break_seed = 0;
  /// Optional instrumentation out-param (accumulated, not overwritten).
  TaskGraphStats* stats = nullptr;
};

/// A static task DAG executed once. Not reusable after run().
class TaskGraph {
 public:
  using TaskId = Int;

  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a node. `key` orders ready tasks (smaller first); the drivers use
  /// elimination-tree postorder-derived keys so tie-breaks are
  /// deterministic and follow the sequential elimination order.
  TaskId add(std::uint64_t key, std::function<void()> fn);

  /// Declares that `before` must complete before `after` may start.
  void add_edge(TaskId before, TaskId after);

  Count task_count() const { return static_cast<Count>(nodes_.size()); }
  Count edge_count() const { return edges_; }

  /// Executes every task. The caller drains too, so `options.threads == n`
  /// uses the caller plus `n - 1` pool workers. If any task throws, the
  /// run cancels (already-running tasks finish, nothing new starts) and the
  /// first exception is rethrown here after all workers quiesce. Tasks
  /// still pending at cancellation are simply never run — the drivers treat
  /// a throwing numeric kernel (zero pivot) as fatal for the whole result.
  void run(const ParallelOptions& options);

 private:
  struct Node {
    std::uint64_t key = 0;
    std::uint64_t priority = 0;  ///< key, or seeded hash of it
    std::function<void()> fn;
    int indegree = 0;            ///< static, from add_edge
    std::vector<TaskId> dependents;
  };

  void run_inline();
  void drain();
  void push_ready_locked(TaskId id);
  TaskId pop_ready_locked();

  std::vector<Node> nodes_;
  Count edges_ = 0;

  // run() state.
  std::vector<std::atomic<int>> remaining_deps_;
  std::mutex mutex_;
  std::condition_variable wake_;
  /// Binary min-heap of ready TaskIds ordered by (priority, id).
  std::vector<TaskId> ready_;
  std::size_t remaining_ = 0;  ///< tasks not yet finished
  std::size_t in_flight_ = 0;  ///< tasks popped but not yet completed
  std::size_t ready_high_water_ = 0;
  bool cancelled_ = false;
  bool stalled_ = false;  ///< drained dry with tasks unreachable (cycle)
  std::exception_ptr first_error_;
};

}  // namespace psi::numeric
