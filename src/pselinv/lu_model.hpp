/// \file lu_model.hpp
/// \brief Simulated distributed right-looking supernodal LU factorization —
/// the reference curve of the paper's Figure 8.
///
/// The paper plots the wallclock time of the SuperLU_DIST factorization
/// (PSelInv's pre-processing step) alongside PSelInv as a scaling
/// reference. SuperLU_DIST itself is closed to this environment, so we
/// simulate a faithful stand-in with the same 2-D block-cyclic layout:
/// per supernode K, the diagonal owner factors the diagonal block and
/// broadcasts it along its processor column (for the L panel solves) and
/// row (for the U panel solves); solved panel blocks L_{I,K} broadcast along
/// processor row pr(I) and U_{K,J} down processor column pc(J); rank
/// (pr(I), pc(J)) applies the Schur update GEMM. A block becomes ready when
/// every update targeting it has been applied — the only synchronization,
/// matching the asynchronous task execution of modern sparse LU codes.
///
/// Trace-only (structure + flops; no values): the numeric factorization is
/// validated separately by psi::SupernodalLU, and this model only has to
/// produce a time.
#pragma once

#include "dist/process_grid.hpp"
#include "sim/engine.hpp"
#include "symbolic/supernodes.hpp"
#include "trees/comm_tree.hpp"

namespace psi::pselinv {

struct LuRunResult {
  sim::SimTime makespan = 0.0;
  Count events = 0;
  Count blocks_completed = 0;  ///< diag factors + panel solves performed
  Count expected_blocks = 0;

  bool complete() const { return blocks_completed == expected_blocks; }
};

/// Simulates the distributed factorization on `machine` over `grid`.
/// `tree_options` selects the broadcast tree scheme (SuperLU_DIST-style
/// binary trees by default from the caller).
LuRunResult run_distributed_lu(const BlockStructure& structure,
                               const dist::ProcessGrid& grid,
                               const trees::TreeOptions& tree_options,
                               const sim::Machine& machine);

}  // namespace psi::pselinv
