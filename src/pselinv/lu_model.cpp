#include "pselinv/lu_model.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "sparse/dense.hpp"
#include "trees/protocol.hpp"

namespace psi::pselinv {

namespace {

enum LuClass : int {
  kLuDiagColBcast = 0,
  kLuDiagRowBcast,
  kLuLRowBcast,
  kLuUColBcast,
  kLuClassCount
};

enum LuMsgKind : int {
  kMsgDiagCol = 0,
  kMsgDiagRow = 1,
  kMsgLRow = 2,
  kMsgUCol = 3,
  // Self-send kinds: locally-produced events are deferred through the
  // engine's event queue instead of nested calls, so no handler ever mutates
  // state another stack frame is iterating over.
  kMsgLLocal = 4,   ///< this rank's own solved L block is ready to consume
  kMsgULocal = 5,   ///< this rank's own solved U block is ready to consume
  kMsgSolveL = 6,   ///< block (str[t], k) of supernode k became update-free
  kMsgSolveU = 7,   ///< block (k, str[t]) became update-free
  kMsgFactor = 8,   ///< diagonal block of supernode k became update-free
  kMsgUpdate = 9,   ///< one Schur update GEMM task (k, tl, tu)
};

std::int64_t make_update_tag(Int k, Int tl, Int tu) {
  return (static_cast<std::int64_t>(kMsgUpdate) << 48) |
         (static_cast<std::int64_t>(k) << 24) |
         (static_cast<std::int64_t>(tl) << 12) | static_cast<std::int64_t>(tu);
}

std::int64_t make_tag(int kind, Int k, Int t) {
  return (static_cast<std::int64_t>(kind) << 48) |
         (static_cast<std::int64_t>(k) << 24) | static_cast<std::int64_t>(t);
}
int tag_kind(std::int64_t tag) { return static_cast<int>(tag >> 48); }
Int tag_supernode(std::int64_t tag) {
  return static_cast<Int>((tag >> 24) & 0xffffff);
}
Int tag_index(std::int64_t tag) { return static_cast<Int>(tag & 0xffffff); }

std::uint64_t block_key(Int row, Int col) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << 32) |
         static_cast<std::uint32_t>(col);
}

/// Host-side plan for the factorization.
struct LuPlan {
  const BlockStructure* bs;
  dist::BlockCyclicMap map;
  struct Supernode {
    std::vector<int> prows, pcols;
    trees::CommTree diag_col;                 // diag to L-panel owners
    trees::CommTree diag_row;                 // diag to U-panel owners
    std::vector<trees::CommTree> l_row;       // L_{I,K} along row pr(I)
    std::vector<trees::CommTree> u_col;       // U_{K,J} down column pc(J)
  };
  std::vector<Supernode> sup;
  /// Remaining Schur updates per block (diag + L-lower + U-upper); a block
  /// may be solved/factored once its count reaches zero. Only the owning
  /// rank's handlers touch an entry.
  std::unordered_map<std::uint64_t, int> updates_remaining;
  Count expected_blocks = 0;
};

LuPlan build_lu_plan(const BlockStructure& bs, const dist::ProcessGrid& grid,
                     const trees::TreeOptions& tree_options) {
  LuPlan plan{&bs, dist::BlockCyclicMap(grid), {}, {}, 0};
  const Int nsup = bs.supernode_count();
  plan.sup.resize(static_cast<std::size_t>(nsup));

  auto receivers_without = [](std::vector<int> ranks, int root) {
    std::sort(ranks.begin(), ranks.end());
    ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
    ranks.erase(std::remove(ranks.begin(), ranks.end(), root), ranks.end());
    return ranks;
  };

  for (Int k = 0; k < nsup; ++k) {
    auto& sp = plan.sup[static_cast<std::size_t>(k)];
    const auto& str = bs.struct_of[static_cast<std::size_t>(k)];
    for (Int j : str) sp.prows.push_back(plan.map.prow_of(j));
    for (Int i : str) sp.pcols.push_back(plan.map.pcol_of(i));
    std::sort(sp.prows.begin(), sp.prows.end());
    sp.prows.erase(std::unique(sp.prows.begin(), sp.prows.end()), sp.prows.end());
    std::sort(sp.pcols.begin(), sp.pcols.end());
    sp.pcols.erase(std::unique(sp.pcols.begin(), sp.pcols.end()), sp.pcols.end());

    const int diag_owner = plan.map.owner(k, k);
    std::vector<int> lpanel_ranks, upanel_ranks;
    for (int pr : sp.prows)
      lpanel_ranks.push_back(grid.rank_of(pr, plan.map.pcol_of(k)));
    for (int pc : sp.pcols)
      upanel_ranks.push_back(grid.rank_of(plan.map.prow_of(k), pc));
    sp.diag_col = trees::CommTree::build(
        tree_options, diag_owner, receivers_without(lpanel_ranks, diag_owner),
        make_tag(kMsgDiagCol, k, 0));
    sp.diag_row = trees::CommTree::build(
        tree_options, diag_owner, receivers_without(upanel_ranks, diag_owner),
        make_tag(kMsgDiagRow, k, 0));

    for (Int t = 0; t < static_cast<Int>(str.size()); ++t) {
      const Int b = str[static_cast<std::size_t>(t)];
      // L_{b,K} from (pr(b), pc(K)) to the update columns of row pr(b).
      std::vector<int> lrecv;
      for (int pc : sp.pcols) lrecv.push_back(grid.rank_of(plan.map.prow_of(b), pc));
      const int lroot = plan.map.owner(b, k);
      sp.l_row.push_back(trees::CommTree::build(
          tree_options, lroot, receivers_without(lrecv, lroot),
          make_tag(kMsgLRow, k, t)));
      // U_{K,b} from (pr(K), pc(b)) to the update rows of column pc(b).
      std::vector<int> urecv;
      for (int pr : sp.prows) urecv.push_back(grid.rank_of(pr, plan.map.pcol_of(b)));
      const int uroot = plan.map.owner(k, b);
      sp.u_col.push_back(trees::CommTree::build(
          tree_options, uroot, receivers_without(urecv, uroot),
          make_tag(kMsgUCol, k, t)));
    }

    // Schur update counters.
    for (Int i : str)
      for (Int j : str) {
        const Int row = std::max(i, j), col = std::min(i, j);
        // Target block: (i, j) — diag when i == j, L-lower when i > j (block
        // (i, j) of supernode j), U-upper when i < j (block (i, j) in the U
        // structure, keyed by its actual (row=i, col=j) position).
        (void)row;
        (void)col;
        ++plan.updates_remaining[block_key(i, j)];
      }
  }
  // Expected completions: one diag factor per supernode plus one solve per
  // L and per U panel block.
  plan.expected_blocks = nsup;
  for (Int k = 0; k < nsup; ++k)
    plan.expected_blocks +=
        2 * static_cast<Count>(bs.struct_of[static_cast<std::size_t>(k)].size());
  return plan;
}

struct LuShared {
  LuPlan plan;
  Count blocks_completed = 0;
};

class LuRank : public sim::Rank {
 public:
  LuRank(LuShared& shared, int rank)
      : sh_(&shared),
        me_(rank),
        my_prow_(shared.plan.map.grid().row_of(rank)),
        my_pcol_(shared.plan.map.grid().col_of(rank)) {}

  void on_start(sim::Context& ctx) override {
    const BlockStructure& bs = *sh_->plan.bs;
    for (Int k = 0; k < bs.supernode_count(); ++k) {
      if (sh_->plan.map.owner(k, k) != me_) continue;
      if (updates_left(k, k) == 0) factor_diag(ctx, k);
    }
  }

  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    const Int k = tag_supernode(msg.tag);
    const Int t = tag_index(msg.tag);
    const auto& sp = sh_->plan.sup[static_cast<std::size_t>(k)];
    switch (tag_kind(msg.tag)) {
      case kMsgDiagCol:
        trees::bcast_forward(ctx, sp.diag_col, msg.tag, msg.bytes,
                             kLuDiagColBcast, nullptr);
        on_diag_col(ctx, k);
        break;
      case kMsgDiagRow:
        trees::bcast_forward(ctx, sp.diag_row, msg.tag, msg.bytes,
                             kLuDiagRowBcast, nullptr);
        on_diag_row(ctx, k);
        break;
      case kMsgLRow:
        trees::bcast_forward(ctx, sp.l_row[static_cast<std::size_t>(t)], msg.tag,
                             msg.bytes, kLuLRowBcast, nullptr);
        on_l_arrival(ctx, k, t);
        break;
      case kMsgUCol:
        trees::bcast_forward(ctx, sp.u_col[static_cast<std::size_t>(t)], msg.tag,
                             msg.bytes, kLuUColBcast, nullptr);
        on_u_arrival(ctx, k, t);
        break;
      case kMsgLLocal:
        on_l_arrival(ctx, k, t);
        break;
      case kMsgULocal:
        on_u_arrival(ctx, k, t);
        break;
      case kMsgSolveL:
        maybe_solve_l(ctx, k, t);
        break;
      case kMsgSolveU:
        maybe_solve_u(ctx, k, t);
        break;
      case kMsgFactor:
        factor_diag(ctx, k);
        break;
      case kMsgUpdate:
        do_update(ctx, k, (static_cast<Int>(msg.tag >> 12) & 0xfff),
                  static_cast<Int>(msg.tag & 0xfff));
        break;
      default:
        PSI_CHECK_MSG(false, "unknown LU message kind");
    }
  }

 private:
  int& updates_left(Int row, Int col) {
    return sh_->plan.updates_remaining[block_key(row, col)];
  }

  Count bytes_of(Int i, Int k) const {
    return dense_bytes(sh_->plan.bs->part.size(i), sh_->plan.bs->part.size(k));
  }

  // ----- diagonal factorization --------------------------------------------
  void factor_diag(sim::Context& ctx, Int k) {
    if (!diag_factored_.insert(k).second) return;
    const BlockStructure& bs = *sh_->plan.bs;
    const auto& sp = sh_->plan.sup[static_cast<std::size_t>(k)];
    ctx.compute_flops(getrf_flops(bs.part.size(k)));
    ++sh_->blocks_completed;
    trees::bcast_forward(ctx, sp.diag_col, make_tag(kMsgDiagCol, k, 0),
                         bytes_of(k, k), kLuDiagColBcast, nullptr);
    trees::bcast_forward(ctx, sp.diag_row, make_tag(kMsgDiagRow, k, 0),
                         bytes_of(k, k), kLuDiagRowBcast, nullptr);
    on_diag_col(ctx, k);  // the owner may itself hold panel blocks
    on_diag_row(ctx, k);
  }

  // ----- panel solves --------------------------------------------------------
  void on_diag_col(sim::Context& ctx, Int k) {
    diag_col_seen_.insert(k);
    try_panel_solves(ctx, k, /*l_side=*/true);
  }
  void on_diag_row(sim::Context& ctx, Int k) {
    diag_row_seen_.insert(k);
    try_panel_solves(ctx, k, /*l_side=*/false);
  }

  void try_panel_solves(sim::Context& ctx, Int k, bool l_side) {
    const BlockStructure& bs = *sh_->plan.bs;
    const auto& str = bs.struct_of[static_cast<std::size_t>(k)];
    for (Int t = 0; t < static_cast<Int>(str.size()); ++t) {
      const Int b = str[static_cast<std::size_t>(t)];
      if (l_side) {
        if (sh_->plan.map.owner(b, k) != me_) continue;
        maybe_solve_l(ctx, k, t);
      } else {
        if (sh_->plan.map.owner(k, b) != me_) continue;
        maybe_solve_u(ctx, k, t);
      }
    }
  }

  void maybe_solve_l(sim::Context& ctx, Int k, Int t) {
    const Int b = sh_->plan.bs->struct_of[static_cast<std::size_t>(k)]
                                         [static_cast<std::size_t>(t)];
    if (l_solved_.count(block_key(b, k))) return;
    if (!diag_col_seen_.count(k)) return;
    if (updates_left(b, k) != 0) return;
    l_solved_.insert(block_key(b, k));
    const BlockStructure& bs = *sh_->plan.bs;
    ctx.compute_flops(trsm_flops(bs.part.size(k), bs.part.size(b)));
    ++sh_->blocks_completed;
    trees::bcast_forward(ctx,
                         sh_->plan.sup[static_cast<std::size_t>(k)]
                             .l_row[static_cast<std::size_t>(t)],
                         make_tag(kMsgLRow, k, t), bytes_of(b, k), kLuLRowBcast,
                         nullptr);
    // Local consumption is deferred through a self-send (see LuMsgKind).
    ctx.send(me_, make_tag(kMsgLLocal, k, t), 0, kLuLRowBcast);
  }

  void maybe_solve_u(sim::Context& ctx, Int k, Int t) {
    const Int b = sh_->plan.bs->struct_of[static_cast<std::size_t>(k)]
                                         [static_cast<std::size_t>(t)];
    if (u_solved_.count(block_key(k, b))) return;
    if (!diag_row_seen_.count(k)) return;
    if (updates_left(k, b) != 0) return;
    u_solved_.insert(block_key(k, b));
    const BlockStructure& bs = *sh_->plan.bs;
    ctx.compute_flops(trsm_flops(bs.part.size(k), bs.part.size(b)));
    ++sh_->blocks_completed;
    trees::bcast_forward(ctx,
                         sh_->plan.sup[static_cast<std::size_t>(k)]
                             .u_col[static_cast<std::size_t>(t)],
                         make_tag(kMsgUCol, k, t), bytes_of(k, b), kLuUColBcast,
                         nullptr);
    ctx.send(me_, make_tag(kMsgULocal, k, t), 0, kLuUColBcast);
  }

  // ----- Schur updates --------------------------------------------------------
  void on_l_arrival(sim::Context& ctx, Int k, Int t) {
    const Int i = sh_->plan.bs->struct_of[static_cast<std::size_t>(k)]
                                         [static_cast<std::size_t>(t)];
    if (sh_->plan.map.prow_of(i) != my_prow_) return;  // pure forwarder
    auto& arr = arrivals_[k];
    arr.l.push_back(t);
    // One self-send per GEMM so the rank can interleave forwarding with its
    // update work (see kMsgUpdate).
    for (Int tu : arr.u) ctx.send(me_, make_update_tag(k, t, tu), 0, 0);
  }

  void on_u_arrival(sim::Context& ctx, Int k, Int t) {
    const Int j = sh_->plan.bs->struct_of[static_cast<std::size_t>(k)]
                                         [static_cast<std::size_t>(t)];
    if (sh_->plan.map.pcol_of(j) != my_pcol_) return;
    auto& arr = arrivals_[k];
    arr.u.push_back(t);
    for (Int tl : arr.l) ctx.send(me_, make_update_tag(k, tl, t), 0, 0);
  }

  /// GEMM A_{I,J} -= L_{I,K} U_{K,J} at this rank (it owns block (I, J)).
  void do_update(sim::Context& ctx, Int k, Int tl, Int tu) {
    const BlockStructure& bs = *sh_->plan.bs;
    const auto& str = bs.struct_of[static_cast<std::size_t>(k)];
    const Int i = str[static_cast<std::size_t>(tl)];
    const Int j = str[static_cast<std::size_t>(tu)];
    PSI_ASSERT(sh_->plan.map.owner(i, j) == me_);
    ctx.compute_flops(gemm_flops(bs.part.size(i), bs.part.size(j), bs.part.size(k)));
    int& left = updates_left(i, j);
    PSI_ASSERT(left > 0);
    if (--left != 0) return;
    // Block (i, j) is fully updated: it can now be factored/solved. Deferred
    // through a self-send so this handler's caller (which may be iterating
    // the arrival lists) is never re-entered.
    if (i == j) {
      if (sh_->plan.map.owner(i, i) == me_)
        ctx.send(me_, make_tag(kMsgFactor, i, 0), 0, kLuDiagColBcast);
    } else if (i > j) {
      // L block (i, j) of supernode j.
      const Int t = find_struct_pos(j, i);
      ctx.send(me_, make_tag(kMsgSolveL, j, t), 0, kLuDiagColBcast);
    } else {
      const Int t = find_struct_pos(i, j);
      ctx.send(me_, make_tag(kMsgSolveU, i, t), 0, kLuDiagColBcast);
    }
  }

  Int find_struct_pos(Int k, Int b) const {
    const auto& str = sh_->plan.bs->struct_of[static_cast<std::size_t>(k)];
    const auto it = std::lower_bound(str.begin(), str.end(), b);
    PSI_ASSERT(it != str.end() && *it == b);
    return static_cast<Int>(it - str.begin());
  }

  struct Arrivals {
    std::vector<Int> l, u;
  };

  LuShared* sh_;
  int me_;
  int my_prow_;
  int my_pcol_;
  std::set<Int> diag_col_seen_, diag_row_seen_, diag_factored_;
  std::set<std::uint64_t> l_solved_, u_solved_;
  std::unordered_map<Int, Arrivals> arrivals_;
};

}  // namespace

LuRunResult run_distributed_lu(const BlockStructure& structure,
                               const dist::ProcessGrid& grid,
                               const trees::TreeOptions& tree_options,
                               const sim::Machine& machine) {
  // Blocks of A that receive no Schur update need no explicit map entry:
  // updates_left() default-inserts a zero.
  LuShared shared{build_lu_plan(structure, grid, tree_options), 0};

  sim::Engine engine(machine, grid.size(), kLuClassCount);
  for (int r = 0; r < grid.size(); ++r)
    engine.set_rank(r, std::make_unique<LuRank>(shared, r));
  const sim::SimTime makespan = engine.run();

  LuRunResult result;
  result.makespan = makespan;
  result.events = engine.events_processed();
  result.blocks_completed = shared.blocks_completed;
  result.expected_blocks = shared.plan.expected_blocks;
  PSI_CHECK_MSG(result.complete(),
                "distributed LU did not complete: " << result.blocks_completed
                                                    << " of "
                                                    << result.expected_blocks);
  return result;
}

}  // namespace psi::pselinv
