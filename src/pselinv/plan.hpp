/// \file plan.hpp
/// \brief PSelInv communication plan: the preprocessing step that fixes, for
/// every supernode, the participant lists and tree topologies of all
/// restricted collectives (paper §III: "the list of participating processors
/// can be determined in a preprocessing step... the random seed ... can be
/// communicated at this stage").
///
/// Collectives per supernode K with ancestor set C(K) (block structure):
///  * DiagBcast  — L_KK from the diagonal owner down processor column pc(K)
///                 to the L-panel owners (loop 1 of Algorithm 1).
///  * CrossSend  — L̂_{I,K}^T point-to-point from (pr(I),pc(K)) to the U-side
///                 owner (pr(K),pc(I)) (symmetric matrices: Û_{K,I}=L̂^T).
///  * ColBcast   — Û_{K,I} from (pr(K),pc(I)) down processor column pc(I) to
///                 the owners of A^{-1}_{*,I} blocks (the paper's Col-Bcast,
///                 its most expensive broadcast).
///  * RowReduce  — contributions A^{-1}_{J,I} L̂_{I,K} summed along processor
///                 row pr(J) onto (pr(J),pc(K)) (the paper's Row-Reduce).
///  * ColReduce  — diagonal-update contributions L̂^T A^{-1} L̂ summed along
///                 column pc(K) onto the diagonal owner.
///  * CrossBack  — A^{-1}_{J,K}^T point-to-point to the upper-triangle owner
///                 (pr(K),pc(J)).
///
/// For matrices with UNSYMMETRIC VALUES over the symmetric pattern — the
/// extension the paper lists as work in progress — Û != L̂^T, so the upper
/// triangle of A^{-1} must be computed rather than transposed. The plan then
/// adds the mirrored phases:
///  * DiagRowBcast — U_KK along processor row pr(K) to the U-panel owners
///                   (loop 1 for the U factor).
///  * CrossSendU   — Û_{K,I} point-to-point from (pr(K),pc(I)) to
///                   (pr(I),pc(K)) (which is also the Row-Reduce root that
///                   needs Û_{K,I} for the diagonal update).
///  * RowBcast     — Û_{K,I} along processor row pr(I) to the owners of
///                   A^{-1}_{I,*} blocks.
///  * ColReduceUp  — contributions Û_{K,I} A^{-1}_{I,J} summed down
///                   processor column pc(J) onto (pr(K),pc(J)), yielding
///                   A^{-1}_{K,J} directly (CrossBack is not used).
#pragma once

#include <vector>

#include "dist/process_grid.hpp"
#include "symbolic/supernodes.hpp"
#include "trees/comm_tree.hpp"

namespace psi::pselinv {

/// Traffic accounting classes (also the sim::Engine comm_class ids).
enum CommClass : int {
  kDiagBcast = 0,
  kCrossSend,
  kColBcast,
  kRowReduce,
  kColReduce,
  kCrossBack,
  // unsymmetric-values extension (mirrored U-side phases):
  kDiagRowBcast,
  kCrossSendU,
  kRowBcast,
  kColReduceUp,
  /// Resilient-protocol acks (RunOptions::resilience).
  kProtoAck,
  kCommClassCount
};

/// Value symmetry of the matrix the plan will run on. Symmetric values use
/// the paper's transpose shortcuts; unsymmetric values add the mirrored
/// U-side phases above.
enum class ValueSymmetry { kSymmetric, kUnsymmetric };

const char* comm_class_name(int comm_class);

struct SupernodePlan {
  /// Unique processor-grid rows hosting blocks of C(K) (ascending).
  std::vector<int> prows;
  /// Unique processor-grid columns hosting blocks of C(K) (ascending).
  std::vector<int> pcols;

  /// Dense-state index support (see Plan's "local state indexing" block):
  /// number of C(K) entries in each grid row/column, aligned with
  /// prows/pcols.
  std::vector<std::int32_t> prow_counts;
  std::vector<std::int32_t> pcol_counts;
  /// pcols ∪ {pc(K)} ascending: the grid columns hosting L-side (row-reduce
  /// family) state for supernode K — contributors plus the reduce roots.
  std::vector<int> pcols_a;
  /// prows ∪ {pr(K)} ascending: the grid rows hosting U-side (col-bcast
  /// family) state — consumers plus the broadcast roots.
  std::vector<int> prows_b;

  trees::CommTree diag_bcast;              ///< root: diag owner
  trees::CommTree col_reduce;              ///< root: diag owner
  std::vector<trees::CommTree> col_bcast;  ///< aligned with struct_of[K]
  std::vector<trees::CommTree> row_reduce; ///< aligned with struct_of[K]
  std::vector<int> cross_dst;              ///< owner(K, I) per struct entry
  std::vector<int> cross_src;              ///< owner(I, K) per struct entry

  // --- unsymmetric-values extension only (empty otherwise) ---
  trees::CommTree diag_row_bcast;               ///< U_KK along row pr(K)
  std::vector<trees::CommTree> row_bcast;       ///< Û_{K,I} along row pr(I)
  std::vector<trees::CommTree> col_reduce_up;   ///< onto owner(K, J)
};

class Plan {
 public:
  /// Builds the full plan. `structure` must outlive the plan.
  Plan(const BlockStructure& structure, const dist::ProcessGrid& grid,
       const trees::TreeOptions& tree_options,
       ValueSymmetry symmetry = ValueSymmetry::kSymmetric);

  /// Serialized image of a plan's owned state (everything except the
  /// referenced BlockStructure and the grid, which the caller re-supplies).
  /// psi::store round-trips plans through this instead of re-running the
  /// per-supernode tree construction on load.
  struct RawParts {
    trees::TreeOptions tree_options;
    ValueSymmetry symmetry = ValueSymmetry::kSymmetric;
    std::vector<SupernodePlan> sup;
    std::vector<std::int64_t> kt_offset;
    std::vector<std::int32_t> ord_row;
    std::vector<std::int32_t> ord_col;
  };
  /// Reassembles a plan from previously serialized parts without rebuilding
  /// any trees. Validates the image's shape against `structure` (throws
  /// psi::Error on mismatch); content integrity is the serializer's job
  /// (checksummed sections in the store format).
  Plan(const BlockStructure& structure, const dist::ProcessGrid& grid,
       RawParts parts);

  ValueSymmetry symmetry() const { return symmetry_; }

  const BlockStructure& structure() const { return *structure_; }
  const dist::ProcessGrid& grid() const { return grid_; }
  const dist::BlockCyclicMap& map() const { return map_; }
  const trees::TreeOptions& tree_options() const { return tree_options_; }

  const SupernodePlan& supernode(Int k) const {
    return sup_[static_cast<std::size_t>(k)];
  }
  Int supernode_count() const { return static_cast<Int>(sup_.size()); }

  /// Payload bytes of block (I, K) messages.
  Count block_bytes(Int i, Int k) const;

  // --- local state indexing -------------------------------------------------
  // The engine keys its per-(supernode, block) state by dense indices instead
  // of hashing: every struct entry t of supernode K gets a global id
  // kt_id(K, t), and its ordinal among same-grid-row (same-grid-column)
  // entries of struct_of[K] is row_ordinal (col_ordinal). A rank combines the
  // ordinal with a per-rank, per-supernode base offset (computed once from
  // prow_counts/pcol_counts) to obtain a dense slot in a per-rank state
  // arena — the per-message unordered_map probes become vector indexing.

  /// Global dense id of the t-th struct entry of supernode K.
  std::int64_t kt_id(Int k, Int t) const {
    return kt_offset_[static_cast<std::size_t>(k)] + t;
  }
  /// Total struct entries over all supernodes (= off-diagonal block count).
  std::int64_t kt_count() const { return kt_offset_.back(); }
  /// Ordinal of struct entry `kt` among entries of the same supernode whose
  /// block row lives in the same processor-grid row.
  std::int32_t row_ordinal(std::int64_t kt) const {
    return ord_row_[static_cast<std::size_t>(kt)];
  }
  /// Same, for processor-grid columns.
  std::int32_t col_ordinal(std::int64_t kt) const {
    return ord_col_[static_cast<std::size_t>(kt)];
  }

  /// Global dense block ids over the full selected-inversion pattern:
  /// diagonals first, then lower blocks, then upper blocks.
  std::int64_t block_id_count() const {
    return supernode_count() + 2 * kt_count();
  }
  std::int64_t diag_block_id(Int k) const { return k; }
  std::int64_t lower_block_id(Int k, Int t) const {
    return supernode_count() + kt_id(k, t);
  }
  std::int64_t upper_block_id(Int k, Int t) const {
    return supernode_count() + kt_count() + kt_id(k, t);
  }
  /// Id of an arbitrary structure block (row, col) — O(log |struct|) binary
  /// search; (row, col) must be a block of the pattern.
  std::int64_t block_id(Int row, Int col) const;

  /// Number of distinct row/column communicators MPI_Comm_create would need
  /// to express every restricted collective of this plan — the audit behind
  /// the paper's "20,061 distinct communicators for audikw_1 on 24x24"
  /// infeasibility argument.
  Count distinct_communicators() const;

  /// Total messages a flat scheme would send (for reporting).
  Count total_collectives() const;

  /// Heap bytes retained by the plan (per-supernode participant lists, all
  /// communication trees, dense-index tables). Used by the serve plan
  /// cache's byte-budget accounting; the referenced BlockStructure is
  /// counted separately by its owner.
  std::size_t memory_bytes() const;

 private:
  const BlockStructure* structure_;
  dist::ProcessGrid grid_;
  dist::BlockCyclicMap map_;
  trees::TreeOptions tree_options_;
  ValueSymmetry symmetry_;
  std::vector<SupernodePlan> sup_;
  std::vector<std::int64_t> kt_offset_;  ///< size nsup + 1; prefix struct sizes
  std::vector<std::int32_t> ord_row_;    ///< size kt_count()
  std::vector<std::int32_t> ord_col_;    ///< size kt_count()
};

}  // namespace psi::pselinv
