#include "pselinv/plan.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"
#include "sparse/dense.hpp"

namespace psi::pselinv {

const char* comm_class_name(int comm_class) {
  switch (comm_class) {
    case kDiagBcast: return "Diag-Bcast";
    case kCrossSend: return "Cross-Send";
    case kColBcast: return "Col-Bcast";
    case kRowReduce: return "Row-Reduce";
    case kColReduce: return "Col-Reduce";
    case kCrossBack: return "Cross-Back";
    case kDiagRowBcast: return "Diag-Row-Bcast";
    case kCrossSendU: return "Cross-Send-U";
    case kRowBcast: return "Row-Bcast";
    case kColReduceUp: return "Col-Reduce-Up";
    case kProtoAck: return "Proto-Ack";
  }
  return "unknown";
}

namespace {

/// Deterministic collective id for the shifted scheme's per-tree seed.
std::uint64_t collective_id(int kind, Int k, Int idx) {
  return (static_cast<std::uint64_t>(kind) << 56) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k)) << 24) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(idx));
}

std::vector<int> receivers_without_root(std::vector<int> ranks, int root) {
  ranks.erase(std::remove(ranks.begin(), ranks.end(), root), ranks.end());
  return ranks;
}

}  // namespace

Plan::Plan(const BlockStructure& structure, const dist::ProcessGrid& grid,
           const trees::TreeOptions& tree_options, ValueSymmetry symmetry)
    : structure_(&structure),
      grid_(grid),
      map_(grid_),
      tree_options_(tree_options),
      symmetry_(symmetry) {
  const Int nsup = structure.supernode_count();
  sup_.resize(static_cast<std::size_t>(nsup));

  kt_offset_.resize(static_cast<std::size_t>(nsup) + 1, 0);
  for (Int k = 0; k < nsup; ++k)
    kt_offset_[static_cast<std::size_t>(k) + 1] =
        kt_offset_[static_cast<std::size_t>(k)] +
        static_cast<std::int64_t>(
            structure.struct_of[static_cast<std::size_t>(k)].size());
  ord_row_.resize(static_cast<std::size_t>(kt_count()));
  ord_col_.resize(static_cast<std::size_t>(kt_count()));
  // Scratch counters per grid row/column, reused across supernodes.
  std::vector<std::int32_t> row_seen(static_cast<std::size_t>(grid_.prows()), 0);
  std::vector<std::int32_t> col_seen(static_cast<std::size_t>(grid_.pcols()), 0);

  for (Int k = 0; k < nsup; ++k) {
    SupernodePlan& plan = sup_[static_cast<std::size_t>(k)];
    const auto& str = structure.struct_of[static_cast<std::size_t>(k)];
    const int diag_owner = map_.owner(k, k);
    const int my_pcol = map_.pcol_of(k);

    // Unique processor rows/columns covering C(K).
    plan.prows.reserve(str.size());
    plan.pcols.reserve(str.size());
    for (Int j : str) plan.prows.push_back(map_.prow_of(j));
    for (Int i : str) plan.pcols.push_back(map_.pcol_of(i));
    std::sort(plan.prows.begin(), plan.prows.end());
    plan.prows.erase(std::unique(plan.prows.begin(), plan.prows.end()),
                     plan.prows.end());
    std::sort(plan.pcols.begin(), plan.pcols.end());
    plan.pcols.erase(std::unique(plan.pcols.begin(), plan.pcols.end()),
                     plan.pcols.end());

    // Dense-state index tables: per-entry ordinals within the supernode's
    // grid row/column, and per-row/column entry counts.
    for (Int t = 0; t < static_cast<Int>(str.size()); ++t) {
      const Int b = str[static_cast<std::size_t>(t)];
      const auto g = static_cast<std::size_t>(kt_id(k, t));
      ord_row_[g] = row_seen[static_cast<std::size_t>(map_.prow_of(b))]++;
      ord_col_[g] = col_seen[static_cast<std::size_t>(map_.pcol_of(b))]++;
    }
    plan.prow_counts.reserve(plan.prows.size());
    for (int pr : plan.prows) {
      plan.prow_counts.push_back(row_seen[static_cast<std::size_t>(pr)]);
      row_seen[static_cast<std::size_t>(pr)] = 0;
    }
    plan.pcol_counts.reserve(plan.pcols.size());
    for (int pc : plan.pcols) {
      plan.pcol_counts.push_back(col_seen[static_cast<std::size_t>(pc)]);
      col_seen[static_cast<std::size_t>(pc)] = 0;
    }
    plan.pcols_a = plan.pcols;
    if (!std::binary_search(plan.pcols_a.begin(), plan.pcols_a.end(), my_pcol))
      plan.pcols_a.insert(
          std::lower_bound(plan.pcols_a.begin(), plan.pcols_a.end(), my_pcol),
          my_pcol);
    plan.prows_b = plan.prows;
    const int diag_prow = map_.prow_of(k);
    if (!std::binary_search(plan.prows_b.begin(), plan.prows_b.end(), diag_prow))
      plan.prows_b.insert(
          std::lower_bound(plan.prows_b.begin(), plan.prows_b.end(), diag_prow),
          diag_prow);

    // L-panel owner ranks in column pc(K).
    std::vector<int> panel_ranks;
    panel_ranks.reserve(plan.prows.size());
    for (int pr : plan.prows) panel_ranks.push_back(grid_.rank_of(pr, my_pcol));

    plan.diag_bcast =
        trees::CommTree::build(tree_options_, diag_owner,
                               receivers_without_root(panel_ranks, diag_owner),
                               collective_id(kDiagBcast, k, 0));
    plan.col_reduce =
        trees::CommTree::build(tree_options_, diag_owner,
                               receivers_without_root(panel_ranks, diag_owner),
                               collective_id(kColReduce, k, 0));

    plan.col_bcast.reserve(str.size());
    plan.row_reduce.reserve(str.size());
    plan.cross_src.reserve(str.size());
    plan.cross_dst.reserve(str.size());
    for (Int t = 0; t < static_cast<Int>(str.size()); ++t) {
      const Int i = str[static_cast<std::size_t>(t)];
      plan.cross_src.push_back(map_.owner(i, k));
      plan.cross_dst.push_back(map_.owner(k, i));

      // Col-Bcast of Û_{K,I} within processor column pc(I).
      const int bcast_root = map_.owner(k, i);
      std::vector<int> consumers;
      consumers.reserve(plan.prows.size());
      for (int pr : plan.prows)
        consumers.push_back(grid_.rank_of(pr, map_.pcol_of(i)));
      plan.col_bcast.push_back(trees::CommTree::build(
          tree_options_, bcast_root,
          receivers_without_root(consumers, bcast_root),
          collective_id(kColBcast, k, t)));

      // Row-Reduce of A^{-1}_{J,K} contributions within processor row pr(J)
      // (here the struct entry plays the role of J).
      const int reduce_root = map_.owner(i, k);
      std::vector<int> contributors;
      contributors.reserve(plan.pcols.size());
      for (int pc : plan.pcols)
        contributors.push_back(grid_.rank_of(map_.prow_of(i), pc));
      std::sort(contributors.begin(), contributors.end());
      plan.row_reduce.push_back(trees::CommTree::build(
          tree_options_, reduce_root,
          receivers_without_root(contributors, reduce_root),
          collective_id(kRowReduce, k, t)));
    }

    if (symmetry_ == ValueSymmetry::kUnsymmetric) {
      // Mirrored U-side phases (see the header). U-panel owner ranks sit in
      // processor row pr(K).
      std::vector<int> upanel_ranks;
      upanel_ranks.reserve(plan.pcols.size());
      const int my_prow = map_.prow_of(k);
      for (int pc : plan.pcols) upanel_ranks.push_back(grid_.rank_of(my_prow, pc));
      plan.diag_row_bcast = trees::CommTree::build(
          tree_options_, diag_owner,
          receivers_without_root(upanel_ranks, diag_owner),
          collective_id(kDiagRowBcast, k, 0));

      plan.row_bcast.reserve(str.size());
      plan.col_reduce_up.reserve(str.size());
      for (Int t = 0; t < static_cast<Int>(str.size()); ++t) {
        const Int b = str[static_cast<std::size_t>(t)];
        // Row-Bcast of Û_{K,I} along processor row pr(I), rooted at the
        // L-side owner (which received Û via the U-cross send).
        const int bcast_root = map_.owner(b, k);
        std::vector<int> consumers;
        consumers.reserve(plan.pcols.size());
        for (int pc : plan.pcols)
          consumers.push_back(grid_.rank_of(map_.prow_of(b), pc));
        std::sort(consumers.begin(), consumers.end());
        plan.row_bcast.push_back(trees::CommTree::build(
            tree_options_, bcast_root,
            receivers_without_root(consumers, bcast_root),
            collective_id(kRowBcast, k, t)));

        // Col-Reduce of A^{-1}_{K,J} contributions down column pc(J) onto
        // the upper-block owner.
        const int reduce_root = map_.owner(k, b);
        std::vector<int> contributors;
        contributors.reserve(plan.prows.size());
        for (int pr : plan.prows)
          contributors.push_back(grid_.rank_of(pr, map_.pcol_of(b)));
        std::sort(contributors.begin(), contributors.end());
        plan.col_reduce_up.push_back(trees::CommTree::build(
            tree_options_, reduce_root,
            receivers_without_root(contributors, reduce_root),
            collective_id(kColReduceUp, k, t)));
      }
    }
  }
}

Plan::Plan(const BlockStructure& structure, const dist::ProcessGrid& grid,
           RawParts parts)
    : structure_(&structure),
      grid_(grid),
      map_(grid_),
      tree_options_(parts.tree_options),
      symmetry_(parts.symmetry),
      sup_(std::move(parts.sup)),
      kt_offset_(std::move(parts.kt_offset)),
      ord_row_(std::move(parts.ord_row)),
      ord_col_(std::move(parts.ord_col)) {
  const auto nsup = static_cast<std::size_t>(structure.supernode_count());
  PSI_CHECK_MSG(sup_.size() == nsup,
                "plan image has " << sup_.size() << " supernode plans for a "
                                  << nsup << "-supernode structure");
  PSI_CHECK_MSG(kt_offset_.size() == nsup + 1,
                "plan image kt_offset has " << kt_offset_.size()
                                            << " entries, expected "
                                            << nsup + 1);
  for (std::size_t k = 0; k < nsup; ++k) {
    const auto str_size =
        static_cast<std::int64_t>(structure.struct_of[k].size());
    PSI_CHECK_MSG(kt_offset_[k + 1] - kt_offset_[k] == str_size,
                  "plan image kt_offset disagrees with the block structure at "
                  "supernode " << k);
    PSI_CHECK_MSG(
        sup_[k].col_bcast.size() == structure.struct_of[k].size() &&
            sup_[k].row_reduce.size() == structure.struct_of[k].size(),
        "plan image supernode " << k << " has "
                                << sup_[k].col_bcast.size() << " col-bcast / "
                                << sup_[k].row_reduce.size()
                                << " row-reduce trees, expected " << str_size);
  }
  PSI_CHECK_MSG(ord_row_.size() == static_cast<std::size_t>(kt_count()) &&
                    ord_col_.size() == static_cast<std::size_t>(kt_count()),
                "plan image ordinal tables have "
                    << ord_row_.size() << "/" << ord_col_.size()
                    << " entries, expected " << kt_count());
}

Count Plan::block_bytes(Int i, Int k) const {
  return dense_bytes(structure_->part.size(i), structure_->part.size(k));
}

std::int64_t Plan::block_id(Int row, Int col) const {
  if (row == col) return diag_block_id(row);
  const Int c = std::min(row, col);
  const Int r = std::max(row, col);
  const auto& str = structure_->struct_of[static_cast<std::size_t>(c)];
  const auto it = std::lower_bound(str.begin(), str.end(), r);
  PSI_ASSERT(it != str.end() && *it == r);
  const Int t = static_cast<Int>(it - str.begin());
  return row > col ? lower_block_id(c, t) : upper_block_id(c, t);
}

Count Plan::distinct_communicators() const {
  // Hash the sorted participant list of every collective; count unique sets
  // of size >= 2 (a single-rank collective needs no communicator).
  std::unordered_set<std::uint64_t> seen;
  auto note = [&](const trees::CommTree& tree) {
    if (tree.participant_count() < 2) return;
    std::vector<int> ranks = tree.participants();
    std::sort(ranks.begin(), ranks.end());
    std::uint64_t h = 0x811c9dc5ULL;
    for (int r : ranks) h = (h ^ static_cast<std::uint64_t>(r)) * 0x100000001b3ULL;
    seen.insert(h);
  };
  for (const SupernodePlan& plan : sup_) {
    note(plan.diag_bcast);
    note(plan.col_reduce);
    for (const auto& tree : plan.col_bcast) note(tree);
    for (const auto& tree : plan.row_reduce) note(tree);
    if (symmetry_ == ValueSymmetry::kUnsymmetric) {
      note(plan.diag_row_bcast);
      for (const auto& tree : plan.row_bcast) note(tree);
      for (const auto& tree : plan.col_reduce_up) note(tree);
    }
  }
  return static_cast<Count>(seen.size());
}

Count Plan::total_collectives() const {
  Count total = 0;
  for (const SupernodePlan& plan : sup_)
    total += 2 + static_cast<Count>(plan.col_bcast.size()) +
             static_cast<Count>(plan.row_reduce.size());
  return total;
}

std::size_t Plan::memory_bytes() const {
  const auto tree_bytes = [](const trees::CommTree& tree) {
    return sizeof(trees::CommTree) + tree.memory_bytes();
  };
  std::size_t bytes = sup_.capacity() * sizeof(SupernodePlan) +
                      kt_offset_.capacity() * sizeof(std::int64_t) +
                      (ord_row_.capacity() + ord_col_.capacity()) *
                          sizeof(std::int32_t);
  for (const SupernodePlan& plan : sup_) {
    bytes += (plan.prows.size() + plan.pcols.size() + plan.pcols_a.size() +
              plan.prows_b.size() + plan.cross_dst.size() +
              plan.cross_src.size()) *
                 sizeof(int) +
             (plan.prow_counts.size() + plan.pcol_counts.size()) *
                 sizeof(std::int32_t);
    bytes += tree_bytes(plan.diag_bcast) + tree_bytes(plan.col_reduce);
    for (const auto& tree : plan.col_bcast) bytes += tree_bytes(tree);
    for (const auto& tree : plan.row_reduce) bytes += tree_bytes(tree);
    bytes += tree_bytes(plan.diag_row_bcast);
    for (const auto& tree : plan.row_bcast) bytes += tree_bytes(tree);
    for (const auto& tree : plan.col_reduce_up) bytes += tree_bytes(tree);
  }
  return bytes;
}

}  // namespace psi::pselinv
