/// \file volume_analysis.hpp
/// \brief Analytic per-rank communication volumes of a PSelInv plan.
///
/// Reproduces the measured quantities of the paper's §IV-A without running
/// the simulator: bytes *sent* per rank during Col-Bcast (Table I, Figures
/// 4-6) and bytes *received* per rank during Row-Reduce (Table II, Figure
/// 7), plus the totals of the remaining classes.
#pragma once

#include <vector>

#include "common/stats.hpp"
#include "pselinv/plan.hpp"
#include "trees/volume.hpp"

namespace psi::pselinv {

struct VolumeReport {
  /// Per class: per-rank bytes sent / received.
  std::vector<trees::VolumeAccumulator> per_class;

  const trees::VolumeAccumulator& of(int comm_class) const {
    return per_class[static_cast<std::size_t>(comm_class)];
  }

  /// Per-rank MB sent during Col-Bcast (the paper's Table I metric).
  std::vector<double> col_bcast_sent_mb() const;
  /// Per-rank MB received during Row-Reduce (the paper's Table II metric).
  std::vector<double> row_reduce_received_mb() const;

  /// min/max/median/stddev summary over ranks of a per-rank MB vector.
  static SampleStats summarize(const std::vector<double>& mb);
};

/// Walks every collective of the plan and accumulates exact traffic.
VolumeReport analyze_volume(const Plan& plan);

}  // namespace psi::pselinv
