/// \file engine.hpp
/// \brief The distributed PSelInv engine: Algorithm 1's second loop executed
/// by asynchronous per-rank state machines over the simulator, with every
/// restricted collective routed through the plan's communication trees.
///
/// Synchronization follows the paper (§II-B): no barriers — only data
/// dependencies. Supernodes are processed in a fully pipelined fashion:
/// every diagonal owner launches its Diag-Bcast at t=0, and the chain
/// trsm -> cross-send -> Col-Bcast -> local GEMMs -> Row-Reduce ->
/// Col-Reduce -> Cross-Back advances for each supernode as its inputs
/// arrive. A GEMM whose A^{-1} operand is not yet final parks in a per-block
/// waiting list and is flushed when the block finalizes.
///
/// Two execution modes share all control flow:
///  * kNumeric — blocks carry real values; the result is gathered into a
///    BlockMatrix and must match the sequential selected inversion exactly
///    (tests enforce this).
///  * kTrace — no values; identical messages/flop counts, used to simulate
///    large processor grids cheaply (Figures 8-9).
///
/// Both value symmetries are supported: ValueSymmetry::kSymmetric runs the
/// paper's algorithm (transpose shortcuts, CrossBack upper fill);
/// kUnsymmetric runs the mirrored U-side phases — the extension the paper
/// lists as work in progress (§V). The plan's symmetry selects the mode.
#pragma once

#include <memory>
#include <vector>

#include "numeric/selinv.hpp"
#include "numeric/supernodal_lu.hpp"
#include "pselinv/plan.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "trees/resilient.hpp"

namespace psi::pselinv {

enum class ExecutionMode { kNumeric, kTrace };

/// Fault-injection and resilience options for a run.
///
/// With `resilience.enabled` every network message of the protocol travels
/// through a trees::ResilientChannel per rank (acks on kProtoAck,
/// timer-driven retry, duplicate suppression, subtree re-parenting around
/// stalled forwarders), and the rank programs execute their floating-point
/// accumulations in a canonical data-independent order — so the numeric
/// result is bitwise identical no matter what the injector does to message
/// timing, ordering, loss, or duplication. Without it the engine keeps the
/// historical bit-exact arrival-order behavior (and any injected drop
/// deadlocks the run — there is no retry).
struct RunOptions {
  /// Message fault injector (e.g. fault::DeterministicInjector); must
  /// outlive the run. Null: no injected message faults.
  sim::FaultInjector* injector = nullptr;
  /// Dynamic machine perturbation (stragglers, degraded links); must
  /// outlive the run. Null: none.
  const sim::Perturbation* perturbation = nullptr;
  /// Adversarial schedule policy (seeded same-timestamp reordering plus
  /// bounded network jitter — see sim/schedule.hpp and psi::check); must
  /// outlive the run. Null: the engine's FIFO tie-break.
  sim::SchedulePolicy* schedule = nullptr;
  /// Resilient-protocol configuration. `ack_comm_class` is overridden to
  /// kProtoAck by the engine.
  trees::ResilienceConfig resilience;
  /// Partition-parallel simulation (sim::Engine::set_partitions): contiguous
  /// rank blocks executed on a thread pool under conservative lookahead
  /// windows. Every output — makespan, trace, obs stream, numeric Ainv — is
  /// bitwise identical to the sequential engine for any value.
  int partitions = 1;
};

struct RunResult {
  sim::SimTime makespan = 0.0;           ///< simulated selected-inversion time
  Count events = 0;                      ///< DES events processed
  double events_per_second = 0.0;        ///< host-side engine throughput
  Count blocks_finalized = 0;            ///< must equal expected_blocks
  Count expected_blocks = 0;
  std::vector<sim::RankStats> rank_stats;

  /// Gathered selected inverse (numeric mode only).
  std::unique_ptr<BlockMatrix> ainv;

  /// Resilient-protocol activity summed over all ranks (zeros when the
  /// resilient mode is off).
  trees::ChannelStats channel_stats;
  /// Protocol-exhaustion invariants, summed/read after the queue drained.
  /// A healthy run has channel_inflight == 0 (every tracked send acked) and
  /// leaked_timers == 0 (no cancel-after-fire bookkeeping left behind); the
  /// check oracle asserts both on every trial.
  std::size_t channel_inflight = 0;
  std::size_t leaked_timers = 0;
  /// Engine event-arena peak (live-event high water, in slots).
  std::size_t arena_high_water = 0;

  /// Mean over ranks of time spent in dense kernels.
  double mean_compute_seconds() const;
  /// makespan - mean compute: the paper's "communication" share (Figure 9).
  double mean_comm_seconds() const { return makespan - mean_compute_seconds(); }

  bool complete() const { return blocks_finalized == expected_blocks; }
};

/// Runs distributed selected inversion on the simulated machine.
/// `factor` must be the *unnormalized* sequential factorization of the same
/// analysis the plan was built from (numeric mode; may be null for kTrace) —
/// the engine performs the paper's loop-1 normalization itself, including
/// its Diag-Bcast communication. When `trace_out` is non-null, every
/// delivered network message is recorded into it (time, endpoints, class,
/// bytes) for timeline analysis. When `obs_sink` is non-null it is attached
/// to the simulator (every send/handler with full timing decomposition) and
/// additionally receives one "supernode" span per supernode — Diag-Bcast
/// launch to diagonal finalization on the diagonal owner — and a
/// "diag-final" mark per finalized diagonal block. `options` adds fault
/// injection, machine perturbation, and the resilient protocol (see
/// RunOptions).
RunResult run_pselinv(const Plan& plan, const sim::Machine& machine,
                      ExecutionMode mode, const SupernodalLU* factor = nullptr,
                      std::vector<sim::TraceEvent>* trace_out = nullptr,
                      obs::Sink* obs_sink = nullptr,
                      const RunOptions& options = {});

}  // namespace psi::pselinv
