#include "pselinv/volume_analysis.hpp"

namespace psi::pselinv {

namespace {

std::vector<double> to_mb(const std::vector<Count>& bytes) {
  std::vector<double> mb(bytes.size());
  for (std::size_t r = 0; r < bytes.size(); ++r)
    mb[r] = static_cast<double>(bytes[r]) / (1024.0 * 1024.0);
  return mb;
}

}  // namespace

std::vector<double> VolumeReport::col_bcast_sent_mb() const {
  return to_mb(of(kColBcast).bytes_sent());
}

std::vector<double> VolumeReport::row_reduce_received_mb() const {
  return to_mb(of(kRowReduce).bytes_received());
}

SampleStats VolumeReport::summarize(const std::vector<double>& mb) {
  return SampleStats(mb);
}

VolumeReport analyze_volume(const Plan& plan) {
  VolumeReport report;
  report.per_class.assign(kCommClassCount,
                          trees::VolumeAccumulator(plan.grid().size()));

  const BlockStructure& bs = plan.structure();
  for (Int k = 0; k < plan.supernode_count(); ++k) {
    const SupernodePlan& sp = plan.supernode(k);
    const auto& str = bs.struct_of[static_cast<std::size_t>(k)];
    const Count diag_bytes = plan.block_bytes(k, k);

    report.per_class[kDiagBcast].add_bcast(sp.diag_bcast, diag_bytes);
    report.per_class[kColReduce].add_reduce(sp.col_reduce, diag_bytes);

    for (Int t = 0; t < static_cast<Int>(str.size()); ++t) {
      const Int i = str[static_cast<std::size_t>(t)];
      const Count bytes = plan.block_bytes(i, k);
      report.per_class[kCrossSend].add_p2p(sp.cross_src[static_cast<std::size_t>(t)],
                                           sp.cross_dst[static_cast<std::size_t>(t)],
                                           bytes);
      report.per_class[kColBcast].add_bcast(
          sp.col_bcast[static_cast<std::size_t>(t)], bytes);
      report.per_class[kRowReduce].add_reduce(
          sp.row_reduce[static_cast<std::size_t>(t)], bytes);
      if (plan.symmetry() == ValueSymmetry::kSymmetric) {
        report.per_class[kCrossBack].add_p2p(
            sp.cross_src[static_cast<std::size_t>(t)],
            sp.cross_dst[static_cast<std::size_t>(t)], bytes);
      } else {
        // Mirrored U-side phases replace the cross-back.
        report.per_class[kCrossSendU].add_p2p(
            sp.cross_dst[static_cast<std::size_t>(t)],
            sp.cross_src[static_cast<std::size_t>(t)], bytes);
        report.per_class[kRowBcast].add_bcast(
            sp.row_bcast[static_cast<std::size_t>(t)], bytes);
        report.per_class[kColReduceUp].add_reduce(
            sp.col_reduce_up[static_cast<std::size_t>(t)], bytes);
      }
    }
    if (plan.symmetry() == ValueSymmetry::kUnsymmetric)
      report.per_class[kDiagRowBcast].add_bcast(sp.diag_row_bcast, diag_bytes);
  }
  return report;
}

}  // namespace psi::pselinv
