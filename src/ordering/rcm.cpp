/// \file rcm.cpp
/// \brief Reverse Cuthill-McKee ordering.
#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "ordering/ordering.hpp"

namespace psi {

Permutation rcm_ordering(const Graph& graph) {
  const Int n = graph.n();
  std::vector<Int> new_to_old;
  new_to_old.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<Int> no_mask;  // empty mask = whole graph

  for (Int seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    // Skip seeds already absorbed into a previous component.
    const Int root = pseudo_peripheral_vertex(graph, seed, no_mask, 0);
    if (visited[static_cast<std::size_t>(root)]) continue;

    // Cuthill-McKee BFS: visit neighbors in ascending degree order.
    std::vector<Int> queue;
    queue.push_back(root);
    visited[static_cast<std::size_t>(root)] = 1;
    std::size_t head = 0;
    std::vector<Int> nbrs;
    while (head < queue.size()) {
      const Int v = queue[head++];
      new_to_old.push_back(v);
      nbrs.assign(graph.neighbors_begin(v), graph.neighbors_end(v));
      std::sort(nbrs.begin(), nbrs.end(), [&](Int a, Int b) {
        const Int da = graph.degree(a), db = graph.degree(b);
        return da != db ? da < db : a < b;
      });
      for (Int u : nbrs) {
        if (!visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = 1;
          queue.push_back(u);
        }
      }
    }
  }
  PSI_CHECK(static_cast<Int>(new_to_old.size()) == n);
  std::reverse(new_to_old.begin(), new_to_old.end());

  std::vector<Int> old_to_new(static_cast<std::size_t>(n));
  for (Int k = 0; k < n; ++k)
    old_to_new[static_cast<std::size_t>(new_to_old[static_cast<std::size_t>(k)])] = k;
  return Permutation(std::move(old_to_new));
}

}  // namespace psi
