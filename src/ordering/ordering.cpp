#include "ordering/ordering.hpp"

#include "common/check.hpp"

namespace psi {

const char* ordering_method_name(OrderingMethod method) {
  switch (method) {
    case OrderingMethod::kNatural: return "natural";
    case OrderingMethod::kRcm: return "rcm";
    case OrderingMethod::kMinDegree: return "min-degree";
    case OrderingMethod::kNestedDissection: return "nested-dissection";
    case OrderingMethod::kGeometricDissection: return "geometric-dissection";
  }
  return "unknown";
}

Permutation compute_ordering(const SparsityPattern& pattern,
                             const OrderingOptions& options,
                             const std::vector<std::array<double, 3>>& coords) {
  PSI_CHECK_MSG(pattern.is_structurally_symmetric(),
                "ordering requires a structurally symmetric pattern; "
                "symmetrize first");
  const Graph graph(pattern);
  switch (options.method) {
    case OrderingMethod::kNatural:
      return Permutation::identity(pattern.n);
    case OrderingMethod::kRcm:
      return rcm_ordering(graph);
    case OrderingMethod::kMinDegree:
      return min_degree_ordering(graph);
    case OrderingMethod::kNestedDissection:
      return nested_dissection_ordering(graph, options.dissection_leaf_size);
    case OrderingMethod::kGeometricDissection:
      return geometric_dissection_ordering(graph, coords,
                                           options.dissection_leaf_size);
  }
  throw Error("unknown ordering method");
}

Permutation compute_ordering(const GeneratedMatrix& gen,
                             const OrderingOptions& options) {
  return compute_ordering(gen.matrix.pattern, options, gen.coords);
}

}  // namespace psi
