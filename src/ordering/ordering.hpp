/// \file ordering.hpp
/// \brief Fill-reducing ordering front-end.
///
/// The paper's pipeline relies on SuperLU_DIST's pre-processing (typically
/// (Par)METIS nested dissection). We implement from scratch:
///  * nested dissection with BFS level-set separators (general graphs),
///  * geometric nested dissection using mesh coordinates (generated meshes —
///    same spirit as the spatial partitions METIS finds on these meshes),
///  * minimum degree (used on dissection leaves and standalone),
///  * reverse Cuthill-McKee (bandwidth reduction; mostly for comparison),
///  * natural ordering.
#pragma once

#include <array>
#include <vector>

#include "ordering/permutation.hpp"
#include "sparse/generators.hpp"
#include "sparse/graph.hpp"

namespace psi {

enum class OrderingMethod {
  kNatural,
  kRcm,
  kMinDegree,
  kNestedDissection,   ///< BFS level-set separators
  kGeometricDissection ///< coordinate-median separators (needs coords)
};

const char* ordering_method_name(OrderingMethod method);

struct OrderingOptions {
  OrderingMethod method = OrderingMethod::kNestedDissection;
  /// Subgraphs at or below this size are ordered with minimum degree.
  Int dissection_leaf_size = 64;
};

/// Orders the graph of a structurally symmetric pattern. `coords` may be
/// empty unless method == kGeometricDissection (one coordinate per vertex).
Permutation compute_ordering(const SparsityPattern& pattern,
                             const OrderingOptions& options,
                             const std::vector<std::array<double, 3>>& coords = {});

/// Convenience: orders a generated matrix with its mesh coordinates.
Permutation compute_ordering(const GeneratedMatrix& gen,
                             const OrderingOptions& options);

/// Reverse Cuthill-McKee over all components.
Permutation rcm_ordering(const Graph& graph);

/// Minimum-degree (quotient-clique variant) over all components.
Permutation min_degree_ordering(const Graph& graph);

/// Nested dissection; separator vertices are ordered last (post-order of the
/// dissection tree), leaves ordered by minimum degree.
Permutation nested_dissection_ordering(const Graph& graph, Int leaf_size);

/// Geometric nested dissection using vertex coordinates: split the widest
/// axis at the median; vertices with edges crossing the split form the
/// separator.
Permutation geometric_dissection_ordering(
    const Graph& graph, const std::vector<std::array<double, 3>>& coords,
    Int leaf_size);

}  // namespace psi
