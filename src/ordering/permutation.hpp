/// \file permutation.hpp
/// \brief Fill-reducing permutations: representation and validation.
#pragma once

#include <vector>

#include "sparse/types.hpp"

namespace psi {

/// A permutation of {0..n-1}. `perm[old] = new` (scatter convention), with
/// the inverse available as `inv[new] = old`.
class Permutation {
 public:
  Permutation() = default;
  /// Builds from the scatter map old->new; validates bijectivity.
  explicit Permutation(std::vector<Int> old_to_new);

  static Permutation identity(Int n);

  Int size() const { return static_cast<Int>(old_to_new_.size()); }

  Int new_of(Int old_index) const { return old_to_new_[static_cast<std::size_t>(old_index)]; }
  Int old_of(Int new_index) const { return new_to_old_[static_cast<std::size_t>(new_index)]; }

  const std::vector<Int>& old_to_new() const { return old_to_new_; }
  const std::vector<Int>& new_to_old() const { return new_to_old_; }

  /// this ∘ other: applies `other` first, then this.
  Permutation compose_after(const Permutation& other) const;

  Permutation inverse() const;

 private:
  std::vector<Int> old_to_new_;
  std::vector<Int> new_to_old_;
};

}  // namespace psi
