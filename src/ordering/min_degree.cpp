/// \file min_degree.cpp
/// \brief Minimum-degree ordering via explicit clique merging.
///
/// A straightforward (non-approximate) minimum-degree: eliminating a vertex
/// turns its neighborhood into a clique. Memory is proportional to fill,
/// which is acceptable at the sizes where psi uses MD (dissection leaves and
/// moderate standalone problems); large problems go through nested
/// dissection.
#include <algorithm>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "ordering/ordering.hpp"

namespace psi {

Permutation min_degree_ordering(const Graph& graph) {
  const Int n = graph.n();
  std::vector<std::vector<Int>> adj(static_cast<std::size_t>(n));
  for (Int v = 0; v < n; ++v) {
    auto& av = adj[static_cast<std::size_t>(v)];
    av.assign(graph.neighbors_begin(v), graph.neighbors_end(v));
    // The clique merge below relies on sorted lists; Graph guarantees this,
    // but sorting here keeps the algorithm correct for any input.
    std::sort(av.begin(), av.end());
  }

  std::vector<char> eliminated(static_cast<std::size_t>(n), 0);
  using Entry = std::pair<Int, Int>;  // (degree, vertex), lazy heap
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (Int v = 0; v < n; ++v)
    heap.emplace(static_cast<Int>(adj[static_cast<std::size_t>(v)].size()), v);

  std::vector<Int> old_to_new(static_cast<std::size_t>(n), -1);
  std::vector<Int> nbrs, merged;
  Int next = 0;
  while (next < n) {
    PSI_CHECK(!heap.empty());
    const auto [deg, v] = heap.top();
    heap.pop();
    if (eliminated[static_cast<std::size_t>(v)]) continue;
    if (deg != static_cast<Int>(adj[static_cast<std::size_t>(v)].size()))
      continue;  // stale heap entry

    eliminated[static_cast<std::size_t>(v)] = 1;
    old_to_new[static_cast<std::size_t>(v)] = next++;

    // Live neighborhood of v becomes a clique.
    nbrs.clear();
    for (Int u : adj[static_cast<std::size_t>(v)])
      if (!eliminated[static_cast<std::size_t>(u)]) nbrs.push_back(u);

    for (Int u : nbrs) {
      auto& au = adj[static_cast<std::size_t>(u)];
      // au <- (au ∪ nbrs) minus v and eliminated vertices.
      merged.clear();
      merged.reserve(au.size() + nbrs.size());
      std::merge(au.begin(), au.end(), nbrs.begin(), nbrs.end(),
                 std::back_inserter(merged));
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      au.clear();
      for (Int w : merged)
        if (w != u && !eliminated[static_cast<std::size_t>(w)]) au.push_back(w);
      heap.emplace(static_cast<Int>(au.size()), u);
    }
    adj[static_cast<std::size_t>(v)].clear();
    adj[static_cast<std::size_t>(v)].shrink_to_fit();
  }
  return Permutation(std::move(old_to_new));
}

}  // namespace psi
