/// \file dissection.cpp
/// \brief Nested dissection orderings (BFS level-set and geometric variants).
///
/// Recursive scheme: split the current vertex set into parts A, B and a
/// vertex separator S with no A-B edges; order A, then B recursively, then S
/// last. Separators ordered last produce the wide, shallow elimination trees
/// whose top supernodes drive PSelInv's restricted collectives.
#include <algorithm>
#include <array>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "ordering/ordering.hpp"

namespace psi {

namespace {

/// Recursion context shared by both separator strategies.
struct Dissector {
  const Graph& graph;  // global graph
  const std::vector<std::array<double, 3>>* coords;  // geometric only
  Int leaf_size;
  std::vector<Int> new_to_old;  // output order, appended to

  /// Orders `vertices` (global ids) with minimum degree on the induced
  /// subgraph and appends to the output.
  void order_leaf(const std::vector<Int>& vertices) {
    if (vertices.empty()) return;
    std::vector<Int> local_of;
    const Graph sub = graph.induced_subgraph(vertices, local_of);
    const Permutation p = min_degree_ordering(sub);
    std::vector<Int> slot(vertices.size());
    for (std::size_t k = 0; k < vertices.size(); ++k)
      slot[static_cast<std::size_t>(p.new_of(static_cast<Int>(k)))] =
          vertices[k];
    new_to_old.insert(new_to_old.end(), slot.begin(), slot.end());
  }

  /// Splits `vertices` into connected components of the induced subgraph.
  /// Returns true (and fills `parts`) when there is more than one.
  bool split_components(const std::vector<Int>& vertices,
                        std::vector<std::vector<Int>>& parts) {
    std::vector<Int> local_of;
    const Graph sub = graph.induced_subgraph(vertices, local_of);
    Int count = 0;
    const std::vector<Int> comp = connected_components(sub, count);
    if (count <= 1) return false;
    parts.assign(static_cast<std::size_t>(count), {});
    for (std::size_t k = 0; k < vertices.size(); ++k)
      parts[static_cast<std::size_t>(comp[k])].push_back(vertices[k]);
    return true;
  }

  /// BFS level-set separator on the induced subgraph. Returns false when the
  /// subgraph is too shallow to split usefully.
  bool levelset_separator(const std::vector<Int>& vertices,
                          std::vector<Int>& a, std::vector<Int>& b,
                          std::vector<Int>& sep) {
    std::vector<Int> local_of;
    const Graph sub = graph.induced_subgraph(vertices, local_of);
    std::vector<Int> no_mask;
    const Int root = pseudo_peripheral_vertex(sub, 0, no_mask, 0);
    const LevelStructure ls = bfs_levels(sub, root, no_mask, 0);
    if (ls.depth < 3) return false;

    // Pick the level whose cut best balances the two sides.
    std::vector<Int> level_count(static_cast<std::size_t>(ls.depth), 0);
    for (Int v = 0; v < sub.n(); ++v)
      ++level_count[static_cast<std::size_t>(ls.level[static_cast<std::size_t>(v)])];
    Int best_level = 1;
    Int best_imbalance = std::numeric_limits<Int>::max();
    Int below = 0;
    for (Int cut = 1; cut + 1 < ls.depth; ++cut) {
      below += level_count[static_cast<std::size_t>(cut - 1)];
      const Int above = sub.n() - below - level_count[static_cast<std::size_t>(cut)];
      const Int imbalance = std::abs(below - above);
      if (imbalance < best_imbalance) {
        best_imbalance = imbalance;
        best_level = cut;
      }
    }

    a.clear();
    b.clear();
    sep.clear();
    for (Int v = 0; v < sub.n(); ++v) {
      const Int lv = ls.level[static_cast<std::size_t>(v)];
      const Int global = vertices[static_cast<std::size_t>(v)];
      if (lv < best_level)
        a.push_back(global);
      else if (lv == best_level)
        sep.push_back(global);
      else
        b.push_back(global);
    }
    return !a.empty() && !b.empty();
  }

  /// Geometric separator: median split of the widest coordinate axis;
  /// B-side vertices adjacent to A become the separator.
  bool geometric_separator(const std::vector<Int>& vertices,
                           std::vector<Int>& a, std::vector<Int>& b,
                           std::vector<Int>& sep) {
    PSI_CHECK(coords != nullptr);
    // Pick the axis with the widest extent.
    std::array<double, 3> lo{}, hi{};
    lo.fill(std::numeric_limits<double>::infinity());
    hi.fill(-std::numeric_limits<double>::infinity());
    for (Int v : vertices)
      for (int ax = 0; ax < 3; ++ax) {
        const double c = (*coords)[static_cast<std::size_t>(v)][static_cast<std::size_t>(ax)];
        lo[static_cast<std::size_t>(ax)] = std::min(lo[static_cast<std::size_t>(ax)], c);
        hi[static_cast<std::size_t>(ax)] = std::max(hi[static_cast<std::size_t>(ax)], c);
      }
    int axis = 0;
    double width = -1.0;
    for (int ax = 0; ax < 3; ++ax) {
      const double w = hi[static_cast<std::size_t>(ax)] - lo[static_cast<std::size_t>(ax)];
      if (w > width) {
        width = w;
        axis = ax;
      }
    }
    if (width <= 0.0) return false;  // all vertices coincide

    std::vector<Int> sorted = vertices;
    std::stable_sort(sorted.begin(), sorted.end(), [&](Int x, Int y) {
      return (*coords)[static_cast<std::size_t>(x)][static_cast<std::size_t>(axis)] <
             (*coords)[static_cast<std::size_t>(y)][static_cast<std::size_t>(axis)];
    });
    const std::size_t half = sorted.size() / 2;

    // side: 0 = A (low half), 1 = B (high half), only for this subset.
    std::vector<char> side(static_cast<std::size_t>(graph.n()), -1);
    for (std::size_t k = 0; k < sorted.size(); ++k)
      side[static_cast<std::size_t>(sorted[k])] = (k < half) ? 0 : 1;

    a.clear();
    b.clear();
    sep.clear();
    for (std::size_t k = 0; k < sorted.size(); ++k) {
      const Int v = sorted[k];
      if (k < half) {
        a.push_back(v);
        continue;
      }
      bool touches_a = false;
      for (const Int* u = graph.neighbors_begin(v); u != graph.neighbors_end(v); ++u)
        if (side[static_cast<std::size_t>(*u)] == 0) {
          touches_a = true;
          break;
        }
      (touches_a ? sep : b).push_back(v);
    }
    return !a.empty() && !b.empty();
  }

  void dissect(std::vector<Int> vertices, bool geometric) {
    if (static_cast<Int>(vertices.size()) <= leaf_size) {
      order_leaf(vertices);
      return;
    }
    std::vector<std::vector<Int>> parts;
    if (split_components(vertices, parts)) {
      for (auto& part : parts) dissect(std::move(part), geometric);
      return;
    }
    std::vector<Int> a, b, sep;
    const bool ok = geometric ? geometric_separator(vertices, a, b, sep)
                              : levelset_separator(vertices, a, b, sep);
    if (!ok) {
      order_leaf(vertices);
      return;
    }
    dissect(std::move(a), geometric);
    dissect(std::move(b), geometric);
    order_leaf(sep);  // separator last
  }
};

Permutation run_dissection(const Graph& graph,
                           const std::vector<std::array<double, 3>>* coords,
                           Int leaf_size, bool geometric) {
  PSI_CHECK(leaf_size >= 1);
  Dissector d{graph, coords, leaf_size, {}};
  d.new_to_old.reserve(static_cast<std::size_t>(graph.n()));
  std::vector<Int> all(static_cast<std::size_t>(graph.n()));
  std::iota(all.begin(), all.end(), 0);
  d.dissect(std::move(all), geometric);
  PSI_CHECK(static_cast<Int>(d.new_to_old.size()) == graph.n());

  std::vector<Int> old_to_new(static_cast<std::size_t>(graph.n()));
  for (Int k = 0; k < graph.n(); ++k)
    old_to_new[static_cast<std::size_t>(d.new_to_old[static_cast<std::size_t>(k)])] = k;
  return Permutation(std::move(old_to_new));
}

}  // namespace

Permutation nested_dissection_ordering(const Graph& graph, Int leaf_size) {
  return run_dissection(graph, nullptr, leaf_size, /*geometric=*/false);
}

Permutation geometric_dissection_ordering(
    const Graph& graph, const std::vector<std::array<double, 3>>& coords,
    Int leaf_size) {
  PSI_CHECK_MSG(static_cast<Int>(coords.size()) == graph.n(),
                "geometric dissection needs one coordinate per vertex");
  return run_dissection(graph, &coords, leaf_size, /*geometric=*/true);
}

}  // namespace psi
