#include "ordering/permutation.hpp"

#include <numeric>

#include "common/check.hpp"

namespace psi {

Permutation::Permutation(std::vector<Int> old_to_new)
    : old_to_new_(std::move(old_to_new)) {
  const auto n = static_cast<Int>(old_to_new_.size());
  new_to_old_.assign(static_cast<std::size_t>(n), -1);
  for (Int old_index = 0; old_index < n; ++old_index) {
    const Int nw = old_to_new_[static_cast<std::size_t>(old_index)];
    PSI_CHECK_MSG(nw >= 0 && nw < n, "permutation image out of range: " << nw);
    PSI_CHECK_MSG(new_to_old_[static_cast<std::size_t>(nw)] < 0,
                  "permutation not injective at image " << nw);
    new_to_old_[static_cast<std::size_t>(nw)] = old_index;
  }
}

Permutation Permutation::identity(Int n) {
  std::vector<Int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  return Permutation(std::move(p));
}

Permutation Permutation::compose_after(const Permutation& other) const {
  PSI_CHECK(size() == other.size());
  std::vector<Int> p(static_cast<std::size_t>(size()));
  for (Int old_index = 0; old_index < size(); ++old_index)
    p[static_cast<std::size_t>(old_index)] = new_of(other.new_of(old_index));
  return Permutation(std::move(p));
}

Permutation Permutation::inverse() const { return Permutation(new_to_old_); }

}  // namespace psi
