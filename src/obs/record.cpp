#include "obs/record.hpp"

#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "obs/metrics.hpp"

namespace psi::obs {

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer a shorter form when it round-trips identically.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

Record& Record::add(const std::string& key, const std::string& value) {
  fields_.push_back({key, value, /*quoted=*/true});
  return *this;
}

Record& Record::add(const std::string& key, double value) {
  fields_.push_back({key, format_double(value), /*quoted=*/false});
  return *this;
}

Record& Record::add(const std::string& key, bool value) {
  fields_.push_back({key, value ? "true" : "false", /*quoted=*/false});
  return *this;
}

Record& Record::add(const std::string& key, long long value) {
  fields_.push_back({key, std::to_string(value), /*quoted=*/false});
  return *this;
}

Record& Record::add(const std::string& key, unsigned long long value) {
  fields_.push_back({key, std::to_string(value), /*quoted=*/false});
  return *this;
}

std::string Record::to_json() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += json_escape(fields_[i].key);
    out += "\":";
    if (fields_[i].quoted) {
      out += '"';
      out += json_escape(fields_[i].value);
      out += '"';
    } else {
      out += fields_[i].value;
    }
  }
  out += '}';
  return out;
}

std::vector<std::string> Record::keys() const {
  std::vector<std::string> out;
  out.reserve(fields_.size());
  for (const Field& f : fields_) out.push_back(f.key);
  return out;
}

std::vector<std::string> Record::values() const {
  std::vector<std::string> out;
  out.reserve(fields_.size());
  for (const Field& f : fields_) out.push_back(f.value);
  return out;
}

void RecordWriter::open_csv(const std::string& path) {
  csv_ = std::make_unique<std::ofstream>(path, std::ios::trunc);
  PSI_CHECK_MSG(csv_->good(), "cannot open '" << path << "' for writing");
}

void RecordWriter::open_ndjson(const std::string& path) {
  ndjson_owned_ = std::make_unique<std::ofstream>(path, std::ios::trunc);
  PSI_CHECK_MSG(ndjson_owned_->good(),
                "cannot open '" << path << "' for writing");
  ndjson_ = ndjson_owned_.get();
}

void RecordWriter::attach_ndjson(std::ostream& out) { ndjson_ = &out; }

void RecordWriter::write(const Record& record) {
  if (!header_written_) {
    header_ = record.keys();
    if (csv_) {
      for (std::size_t i = 0; i < header_.size(); ++i)
        *csv_ << (i ? "," : "") << csv_escape(header_[i]);
      *csv_ << '\n';
    }
    header_written_ = true;
  } else {
    PSI_CHECK_MSG(record.keys() == header_,
                  "RecordWriter: record fields differ from the first record");
  }
  if (csv_) {
    const std::vector<std::string> values = record.values();
    for (std::size_t i = 0; i < values.size(); ++i)
      *csv_ << (i ? "," : "") << csv_escape(values[i]);
    *csv_ << '\n';
  }
  if (ndjson_ != nullptr) *ndjson_ << record.to_json() << '\n';
}

void RecordWriter::flush() {
  if (csv_) csv_->flush();
  if (ndjson_ != nullptr) ndjson_->flush();
}

}  // namespace psi::obs
