#include "obs/analysis.hpp"

#include <algorithm>
#include <deque>

#include "common/check.hpp"

namespace psi::obs {

const char* path_category_name(PathCategory category) {
  switch (category) {
    case PathCategory::kExec: return "exec";
    case PathCategory::kSendQueue: return "send-queue";
    case PathCategory::kTransfer: return "transfer";
    case PathCategory::kLatency: return "latency";
    case PathCategory::kRecvQueue: return "recv-queue";
    case PathCategory::kTimerWait: return "timer-wait";
  }
  return "unknown";
}

const char* tier_name(int tier) {
  switch (tier) {
    case 0: return "intra-node";
    case 1: return "intra-group";
    case 2: return "inter-group";
  }
  return "unknown";
}

CriticalPath extract_critical_path(const Recorder& recorder, int comm_classes) {
  CriticalPath path;
  path.class_comm_seconds.assign(
      static_cast<std::size_t>(std::max(comm_classes, 0)), 0.0);
  path.class_hops.assign(static_cast<std::size_t>(std::max(comm_classes, 0)),
                         0);
  const std::vector<EventRecord>& events = recorder.events();
  std::uint64_t cur = recorder.final_event();
  if (cur == kNoEvent) return path;
  path.makespan = events[static_cast<std::size_t>(cur)].end;

  const auto ensure_class = [&path](int c) {
    if (static_cast<std::size_t>(c) >= path.class_comm_seconds.size()) {
      path.class_comm_seconds.resize(static_cast<std::size_t>(c) + 1, 0.0);
      path.class_hops.resize(static_cast<std::size_t>(c) + 1, 0);
    }
  };
  const auto push = [&path, &ensure_class](
                        const EventRecord& rec, std::uint64_t seq, int rank,
                        PathCategory category, double begin, double end) {
    PSI_ASSERT(end >= begin);
    if (category != PathCategory::kExec && end == begin)
      return;  // keep the path free of zero-length wait segments
    path.segments.push_back(PathSegment{seq, rank, rec.src, rec.dst,
                                        rec.comm_class, rec.tag, category,
                                        begin, end});
    path.category_seconds[static_cast<int>(category)] += end - begin;
    // Timer waits are not communication; keep them out of the per-class split.
    if (category != PathCategory::kExec &&
        category != PathCategory::kTimerWait) {
      ensure_class(rec.comm_class);
      path.class_comm_seconds[static_cast<std::size_t>(rec.comm_class)] +=
          end - begin;
    }
  };

  // Backward walk: `upto` is the instant up to which time is accounted.
  double upto = path.makespan;
  for (;;) {
    const EventRecord& rec = events[static_cast<std::size_t>(cur)];
    PSI_CHECK_MSG(rec.handled, "critical path reached an undelivered event");
    // Handler execution [start, upto]; when entered through a send posted at
    // `upto` < end, only the prefix that produced the send is binding.
    push(rec, cur, rec.dst, PathCategory::kExec, rec.start, upto);
    ++path.handler_count;

    if (rec.start > rec.ready) {
      // Busy-bound: the rank executed straight through — the previous
      // handler on this rank ended exactly at rec.start.
      PSI_CHECK_MSG(rec.prev_on_rank != kNoEvent,
                    "busy-bound handler without a predecessor on its rank");
      cur = rec.prev_on_rank;
      upto = rec.start;
      continue;
    }
    // Message-bound: start == ready.
    if (rec.emitter == kNoEvent) break;  // t = 0 start seed
    if (rec.network()) {
      ++path.network_hops;
      ensure_class(rec.comm_class);
      ++path.class_hops[static_cast<std::size_t>(rec.comm_class)];
      push(rec, cur, rec.dst, PathCategory::kRecvQueue, rec.arrival, rec.ready);
      push(rec, cur, rec.src, PathCategory::kLatency, rec.xfer_end, rec.arrival);
      push(rec, cur, rec.src, PathCategory::kTransfer, rec.xfer_start,
           rec.xfer_end);
      push(rec, cur, rec.src, PathCategory::kSendQueue, rec.post,
           rec.xfer_start);
    } else if (rec.timer()) {
      // The whole [arm, ready] gap is the armed delay (plus any dispatch
      // serialization) — one segment keeps the makespan coverage exact.
      ++path.timer_hops;
      push(rec, cur, rec.dst, PathCategory::kTimerWait, rec.post, rec.ready);
    } else {
      ++path.local_hops;  // self-send: ready == post, no wait segments
    }
    cur = rec.emitter;
    upto = rec.post;
  }
  std::reverse(path.segments.begin(), path.segments.end());
  return path;
}

int ContentionReport::busiest_send_rank() const {
  int best = -1;
  double best_residency = 0.0;
  for (std::size_t r = 0; r < per_rank.size(); ++r)
    if (per_rank[r].send_residency > best_residency) {
      best_residency = per_rank[r].send_residency;
      best = static_cast<int>(r);
    }
  return best;
}

double ContentionReport::max_send_residency() const {
  const int rank = busiest_send_rank();
  return rank < 0 ? 0.0 : per_rank[static_cast<std::size_t>(rank)].send_residency;
}

double ContentionReport::total_send_queue_wait() const {
  double total = 0.0;
  for (const NicStats& nic : per_rank) total += nic.send_queue_wait;
  return total;
}

ContentionReport analyze_contention(const Recorder& recorder,
                                    int cores_per_node, int nodes_per_group) {
  PSI_CHECK(cores_per_node > 0 && nodes_per_group > 0);
  ContentionReport report;
  const auto node_of = [cores_per_node](int rank) {
    return rank / cores_per_node;
  };
  const auto tier_of = [&node_of, nodes_per_group](int src, int dst) {
    const int src_node = node_of(src), dst_node = node_of(dst);
    if (src_node == dst_node) return 0;
    return src_node / nodes_per_group == dst_node / nodes_per_group ? 1 : 2;
  };

  const auto ensure_rank = [&report](int rank) -> NicStats& {
    if (static_cast<std::size_t>(rank) >= report.per_rank.size())
      report.per_rank.resize(static_cast<std::size_t>(rank) + 1);
    return report.per_rank[static_cast<std::size_t>(rank)];
  };

  // Per-rank send NICs are FIFO (grants in post order), and the recorder's
  // seq order is global post order — one forward pass with a deque of
  // in-flight xfer_end times per rank yields the max queue depth.
  std::vector<std::deque<double>> in_flight;
  for (const EventRecord& rec : recorder.events()) {
    if (!rec.network()) continue;
    const double occupancy = rec.occupancy();
    const double send_wait = rec.xfer_start - rec.post;
    const double recv_wait = rec.ready - rec.arrival;
    const double latency = rec.arrival - rec.xfer_end;

    NicStats& src = ensure_rank(rec.src);
    src.send_residency += occupancy;
    src.send_queue_wait += send_wait;
    src.messages_out += 1;
    src.bytes_out += rec.bytes;
    NicStats& dst = ensure_rank(rec.dst);
    dst.recv_residency += occupancy;
    dst.recv_queue_wait += recv_wait;
    dst.messages_in += 1;
    dst.bytes_in += rec.bytes;

    if (static_cast<std::size_t>(rec.src) >= in_flight.size())
      in_flight.resize(static_cast<std::size_t>(rec.src) + 1);
    std::deque<double>& queue = in_flight[static_cast<std::size_t>(rec.src)];
    while (!queue.empty() && queue.front() <= rec.post) queue.pop_front();
    queue.push_back(rec.xfer_end);
    src.max_send_queue_depth = std::max(src.max_send_queue_depth,
                                        static_cast<int>(queue.size()));

    TierStats& tier =
        report.tiers[static_cast<std::size_t>(tier_of(rec.src, rec.dst))];
    tier.transfer_seconds += occupancy;
    tier.latency_seconds += latency;
    tier.send_queue_wait += send_wait;
    tier.recv_queue_wait += recv_wait;
    tier.messages += 1;
    tier.bytes += rec.bytes;
  }
  return report;
}

}  // namespace psi::obs
