#include "obs/recorder.hpp"

#include "common/check.hpp"

namespace psi::obs {

EventRecord& Recorder::slot(std::uint64_t seq) {
  PSI_CHECK_MSG(seq != kNoEvent, "event with unassigned sequence number");
  if (seq >= events_.size()) events_.resize(static_cast<std::size_t>(seq) + 1);
  return events_[static_cast<std::size_t>(seq)];
}

void Recorder::on_send(const MsgSend& send) {
  EventRecord& rec = slot(send.seq);
  rec.post = send.post;
  rec.xfer_start = send.xfer_start;
  rec.xfer_end = send.xfer_end;
  rec.arrival = send.arrival;
  rec.emitter = send.emitter;
  rec.tag = send.tag;
  rec.bytes = send.bytes;
  rec.src = send.src;
  rec.dst = send.dst;
  rec.comm_class = send.comm_class;
}

void Recorder::on_handler(const HandlerRun& run) {
  EventRecord& rec = slot(run.seq);
  if (run.src < 0 && run.src != kTimerSrcRank) {
    // Start seed: no MsgSend was observed; synthesize the sender-side view.
    // (Timer events also have src < 0 but DID record a MsgSend whose `post`
    // is the arming instant — overwriting it here would collapse the
    // timer-wait gap to zero.)
    rec.post = rec.xfer_start = rec.xfer_end = run.arrival;
    rec.src = run.src;
    rec.dst = run.rank;
    rec.tag = run.tag;
    rec.bytes = run.bytes;
    rec.comm_class = run.comm_class;
  }
  PSI_CHECK_MSG(rec.dst == run.rank, "handler rank does not match message dst");
  rec.arrival = run.arrival;
  rec.ready = run.ready;
  rec.start = run.start;
  rec.end = run.end;
  rec.compute = run.compute;
  rec.handled = true;

  const auto rank = static_cast<std::size_t>(run.rank);
  if (rank >= last_on_rank_.size()) last_on_rank_.resize(rank + 1, kNoEvent);
  rec.prev_on_rank = last_on_rank_[rank];
  last_on_rank_[rank] = run.seq;
}

std::uint64_t Recorder::final_event() const {
  std::uint64_t best = kNoEvent;
  double best_end = -1.0;
  for (std::size_t seq = 0; seq < events_.size(); ++seq) {
    const EventRecord& rec = events_[seq];
    if (rec.handled && rec.end > best_end) {
      best_end = rec.end;
      best = seq;
    }
  }
  return best;
}

double Recorder::makespan() const {
  const std::uint64_t seq = final_event();
  return seq == kNoEvent ? 0.0 : events_[static_cast<std::size_t>(seq)].end;
}

void Recorder::clear() {
  events_.clear();
  spans_.clear();
  marks_.clear();
  last_on_rank_.clear();
}

}  // namespace psi::obs
