/// \file chrome_trace.hpp
/// \brief Chrome trace_event JSON export of a recorded run, loadable in
/// chrome://tracing and Perfetto (ui.perfetto.dev).
///
/// Layout: one trace "process" per simulated rank with four threads —
///   tid 0 "handlers"   complete (X) slices per handler execution,
///   tid 1 "nic-send"   X slices per outbound transfer occupancy,
///   tid 2 "nic-recv"   X slices per inbound transfer occupancy,
///   tid 3 "spans"      X slices for emitted SpanEvents (e.g. supernodes),
/// plus flow arrows (s/f) from each network send to the handler it triggers
/// and instant (i) events for MarkEvents. Timestamps are simulated
/// microseconds.
#pragma once

#include <cstddef>
#include <string>

#include "obs/recorder.hpp"

namespace psi::obs {

struct ChromeTraceOptions {
  /// Cap on exported handler slices (earliest sequence numbers first); NIC
  /// slices and flows follow their handler. 0 = unlimited. A full 46x46
  /// replay has ~5.5M events (~2 GB of JSON) — the default keeps files
  /// loadable in the Perfetto UI.
  std::size_t max_events = 400000;
  /// Label for a message's communication class (defaults to "class N").
  const char* (*class_name)(int) = nullptr;
  /// Emit flow arrows between sends and the handlers they trigger.
  bool flows = true;
};

/// Writes the trace to `path`; throws psi::Error on I/O failure.
void write_chrome_trace(const Recorder& recorder, const std::string& path,
                        const ChromeTraceOptions& options = {});

}  // namespace psi::obs
