/// \file analysis.hpp
/// \brief Post-run analyzers over a Recorder: exact simulated-time critical
/// path extraction and per-link contention attribution.
///
/// CRITICAL PATH. The makespan is realized by one causal chain of handler
/// executions and message hops. Walking backward from the handler with the
/// latest completion, each handler's start is bound either by its rank being
/// busy (the previous handler on that rank — contiguous execution, no idle
/// time) or by its triggering message becoming ready; a ready time
/// decomposes exactly into the emitter's hand-off, sender-NIC queueing,
/// transfer occupancy, wire latency, and receiver-NIC queueing. The walk
/// therefore partitions the whole makespan into disjoint segments — their
/// lengths sum to the makespan EXACTLY (same doubles the engine computed
/// with) — each labelled with a category, a rank/link, and the message's
/// communication class. This is the attribution the paper's argument needs:
/// which chains, links and phases bound the run, and how many communication
/// hops the binding chain has under each tree scheme.
///
/// CONTENTION. Independently of the single binding chain, every recorded
/// message contributes its NIC residency (occupancy) and queueing delays to
/// per-rank NIC statistics and per-tier (intra-node / intra-group /
/// inter-group) aggregates — the "queueing delay vs transfer time" split
/// per link, including the maximum instantaneous send-queue depth.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "obs/recorder.hpp"

namespace psi::obs {

enum class PathCategory : int {
  kExec = 0,    ///< handler execution on a rank (compute + overheads)
  kSendQueue,   ///< waiting for the sender NIC (link contention at src)
  kTransfer,    ///< NIC occupancy of the payload
  kLatency,     ///< wire latency of the hop
  kRecvQueue,   ///< waiting for the receiver NIC (link contention at dst)
  kTimerWait,   ///< armed timer delay (e.g. a retry backoff on the path)
};
inline constexpr int kPathCategoryCount = 6;
const char* path_category_name(PathCategory category);

/// One disjoint interval of the makespan, attributed to a category.
struct PathSegment {
  std::uint64_t seq = kNoEvent;  ///< event whose record produced the segment
  int rank = -1;       ///< rank where the time accrues (src NIC for
                       ///< send-queue/transfer, dst for exec/recv-queue)
  int src = -1;        ///< message endpoints (src < 0: start seed)
  int dst = -1;
  int comm_class = 0;
  std::int64_t tag = 0;
  PathCategory category = PathCategory::kExec;
  double begin = 0.0;
  double end = 0.0;
  double seconds() const { return end - begin; }
};

struct CriticalPath {
  /// Disjoint, contiguous segments in forward time order covering
  /// [0, makespan].
  std::vector<PathSegment> segments;
  double makespan = 0.0;
  int handler_count = 0;  ///< handler executions on the path
  int network_hops = 0;   ///< network message edges traversed
  int local_hops = 0;     ///< self-send (local task) edges traversed
  int timer_hops = 0;     ///< timer-firing edges traversed
  std::array<double, kPathCategoryCount> category_seconds{};
  /// Communication (non-exec) seconds and hop counts per comm class.
  std::vector<double> class_comm_seconds;
  std::vector<Count> class_hops;

  double exec_seconds() const {
    return category_seconds[static_cast<int>(PathCategory::kExec)];
  }
  /// Sum of all non-exec categories (== makespan - exec_seconds()).
  double comm_seconds() const { return makespan - exec_seconds(); }
};

/// Extracts the binding chain from a completed run's recording.
/// `comm_classes` sizes the per-class vectors (pass the engine's class
/// count; classes observed beyond it grow the vectors as needed).
CriticalPath extract_critical_path(const Recorder& recorder,
                                   int comm_classes = 0);

/// Per-rank NIC statistics over ALL recorded network messages.
struct NicStats {
  double send_residency = 0.0;   ///< total seconds the send NIC was occupied
  double send_queue_wait = 0.0;  ///< total seconds messages waited for it
  double recv_residency = 0.0;
  double recv_queue_wait = 0.0;
  Count messages_out = 0;
  Count messages_in = 0;
  Count bytes_out = 0;
  Count bytes_in = 0;
  int max_send_queue_depth = 0;  ///< max messages simultaneously queued/being
                                 ///< sent on this rank's NIC
};

/// Per-tier aggregates (the machine's three link tiers).
struct TierStats {
  double transfer_seconds = 0.0;
  double latency_seconds = 0.0;
  double send_queue_wait = 0.0;
  double recv_queue_wait = 0.0;
  Count messages = 0;
  Count bytes = 0;
};
inline constexpr int kTierCount = 3;  ///< intra-node, intra-group, inter-group
const char* tier_name(int tier);

struct ContentionReport {
  std::vector<NicStats> per_rank;
  std::array<TierStats, kTierCount> tiers{};

  /// Rank whose send NIC was occupied longest (-1 when no traffic), and the
  /// residency itself — the "hot link" a flat tree concentrates.
  int busiest_send_rank() const;
  double max_send_residency() const;
  double total_send_queue_wait() const;
};

/// Aggregates NIC/tier statistics from every recorded message.
/// `cores_per_node` / `nodes_per_group` replicate the machine's topology
/// mapping (obs does not depend on sim).
ContentionReport analyze_contention(const Recorder& recorder,
                                    int cores_per_node, int nodes_per_group);

}  // namespace psi::obs
