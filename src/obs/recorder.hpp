/// \file recorder.hpp
/// \brief Causal-graph recorder: a Sink that stores every simulator event
/// with its full timing decomposition and causal links, enabling exact
/// post-run analysis (critical path, per-link contention, Chrome traces).
///
/// Storage is one flat record per engine event, indexed by the engine's
/// global sequence number (dense, assigned in enqueue order). Each record
/// unifies the message view (sender-side NIC timing) and the handler view
/// (receiver-side queueing and run interval) of the same event, plus two
/// causal links:
///  * emitter       — the handler during which this message was posted;
///  * prev_on_rank  — the handler that ran immediately before this one on
///                    the same rank (the busy-until chain).
/// A full audikw-analog 46x46 replay (~5.5M events) records in ~600 MB.
#pragma once

#include <vector>

#include "obs/sink.hpp"

namespace psi::obs {

/// Source-rank sentinel of timer-generated events (== sim::kTimerSrc).
inline constexpr int kTimerSrcRank = -2;

/// One engine event: the message (if any) and the handler it triggered.
struct EventRecord {
  // Sender side (MsgSend); for start seeds these all equal `arrival`.
  double post = 0.0;
  double xfer_start = 0.0;
  double xfer_end = 0.0;
  // Receiver side (HandlerRun).
  double arrival = 0.0;
  double ready = 0.0;
  double start = 0.0;
  double end = 0.0;
  double compute = 0.0;
  std::uint64_t emitter = kNoEvent;       ///< posting handler (kNoEvent: seed)
  std::uint64_t prev_on_rank = kNoEvent;  ///< previous handler on `dst`
  std::int64_t tag = 0;
  Count bytes = 0;
  int src = -1;
  int dst = -1;
  int comm_class = 0;
  bool handled = false;  ///< on_handler observed (false: undelivered)

  /// True for a real network transfer (not a self-send or start seed).
  bool network() const { return src >= 0 && src != dst; }
  /// True for a timer firing (mirrors sim::kTimerSrc; obs stays
  /// sim-independent). post..xfer_end record the arming instant, arrival
  /// the fire time — the gap is armed delay, not network time.
  bool timer() const { return src == kTimerSrcRank; }
  /// Sender NIC occupancy (== receiver NIC occupancy in the machine model).
  double occupancy() const { return xfer_end - xfer_start; }
};

class Recorder final : public Sink {
 public:
  Recorder() = default;

  void on_send(const MsgSend& send) override;
  void on_handler(const HandlerRun& run) override;
  void on_span(const SpanEvent& span) override { spans_.push_back(span); }
  void on_mark(const MarkEvent& mark) override { marks_.push_back(mark); }

  /// Records indexed by engine sequence number. Unhandled slots (never
  /// delivered — impossible after a completed run) have handled == false.
  const std::vector<EventRecord>& events() const { return events_; }
  const std::vector<SpanEvent>& spans() const { return spans_; }
  const std::vector<MarkEvent>& marks() const { return marks_; }

  /// Sequence number of the handler realizing the makespan (the latest
  /// `end`; earliest seq on ties), or kNoEvent when empty.
  std::uint64_t final_event() const;
  /// max end over all handlers (0.0 when empty).
  double makespan() const;

  void clear();

 private:
  EventRecord& slot(std::uint64_t seq);

  std::vector<EventRecord> events_;
  std::vector<SpanEvent> spans_;
  std::vector<MarkEvent> marks_;
  /// Last handler seq per rank, for the prev_on_rank (busy-chain) link.
  std::vector<std::uint64_t> last_on_rank_;
};

}  // namespace psi::obs
