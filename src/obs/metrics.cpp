#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "obs/record.hpp"

namespace psi::obs {

Labels& Labels::set(const std::string& key, const std::string& value) {
  PSI_CHECK_MSG(!key.empty(), "label key must be non-empty");
  for (auto& pair : pairs_)
    if (pair.first == key) {
      pair.second = value;
      return *this;
    }
  pairs_.emplace_back(key, value);
  return *this;
}

Labels& Labels::set(const std::string& key, long long value) {
  return set(key, std::to_string(value));
}

std::string Labels::fingerprint() const {
  std::vector<std::pair<std::string, std::string>> sorted = pairs_;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [key, value] : sorted) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

std::string Labels::get(const std::string& key) const {
  for (const auto& [k, v] : pairs_)
    if (k == key) return v;
  return {};
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  PSI_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bucket bounds must be sorted ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  PSI_CHECK_MSG(!counts_.empty(), "histogram used before construction");
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  // Cumulative storage: bump this bucket and every wider one.
  for (std::size_t i = static_cast<std::size_t>(it - bounds_.begin());
       i < counts_.size(); ++i)
    ++counts_[i];
  sum_ += value;
  max_ = std::max(max_, value);
}

double Histogram::quantile(double q) const {
  PSI_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1], got " << q);
  const Count total = total_count();
  if (total == 0) return 0.0;
  // Nearest-rank target: the ceil(q * n)-th observation (1-based), clamped
  // so q = 0 means the first and q = 1 the last.
  const Count rank = std::max<Count>(
      1, static_cast<Count>(std::ceil(q * static_cast<double>(total))));
  std::size_t bucket = 0;
  while (bucket < counts_.size() && counts_[bucket] < rank) ++bucket;
  if (bucket >= bounds_.size()) return max_;  // +inf bucket: best bound is max
  const double hi = bounds_[bucket];
  const Count below = bucket == 0 ? 0 : counts_[bucket - 1];
  const Count in_bucket = counts_[bucket] - below;
  if (in_bucket <= 0) return hi;
  // Lower edge: previous bound, or 0 for the first bucket of the
  // nonnegative series this registry records (latencies, byte counts).
  const double lo = bucket == 0 ? std::min(0.0, hi) : bounds_[bucket - 1];
  const double frac = static_cast<double>(rank - below) /
                      static_cast<double>(in_bucket);
  return lo + (hi - lo) * frac;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, const Labels& labels, Kind kind,
    const std::vector<double>* bounds) {
  const std::string key = name + '|' + labels.fingerprint();
  const auto it = index_.find(key);
  if (it != index_.end()) {
    PSI_CHECK_MSG(it->second->kind == kind,
                  "metric '" << name << "' re-registered with a different type");
    return *it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->kind = kind;
  if (kind == Kind::kHistogram) {
    PSI_CHECK(bounds != nullptr);
    entry->histogram = Histogram(*bounds);
  }
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  index_.emplace(key, raw);
  return *raw;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
  return find_or_create(name, labels, Kind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return find_or_create(name, labels, Kind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      const std::vector<double>& bounds) {
  return find_or_create(name, labels, Kind::kHistogram, &bounds).histogram;
}

std::string MetricsRegistry::to_csv() const {
  std::ostringstream os;
  os << "name,type,labels,value,sum,count,max\n";
  for (const auto& entry : entries_) {
    const std::string labels = entry->labels.fingerprint();
    switch (entry->kind) {
      case Kind::kCounter:
        os << entry->name << ",counter,\"" << labels << "\","
           << entry->counter.value << ",,,\n";
        break;
      case Kind::kGauge:
        os << entry->name << ",gauge,\"" << labels << "\","
           << format_double(entry->gauge.value) << ",,,\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = entry->histogram;
        for (std::size_t b = 0; b < h.bounds().size(); ++b)
          os << entry->name << ",histogram_bucket,\"" << labels
             << ",le=" << format_double(h.bounds()[b]) << "\","
             << h.counts()[b] << ",,,\n";
        os << entry->name << ",histogram,\"" << labels << "\",,"
           << format_double(h.sum()) << ',' << h.total_count() << ','
           << format_double(h.max()) << '\n';
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::to_ndjson() const {
  std::ostringstream os;
  for (const auto& entry : entries_) {
    os << "{\"name\":\"" << json_escape(entry->name) << "\",\"labels\":{";
    bool first = true;
    for (const auto& [key, value] : entry->labels.pairs()) {
      if (!first) os << ',';
      first = false;
      os << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
    }
    os << '}';
    switch (entry->kind) {
      case Kind::kCounter:
        os << ",\"type\":\"counter\",\"value\":" << entry->counter.value;
        break;
      case Kind::kGauge:
        os << ",\"type\":\"gauge\",\"value\":"
           << format_double(entry->gauge.value);
        break;
      case Kind::kHistogram: {
        const Histogram& h = entry->histogram;
        os << ",\"type\":\"histogram\",\"bounds\":[";
        for (std::size_t b = 0; b < h.bounds().size(); ++b)
          os << (b ? "," : "") << format_double(h.bounds()[b]);
        os << "],\"cumulative_counts\":[";
        for (std::size_t b = 0; b < h.counts().size(); ++b)
          os << (b ? "," : "") << h.counts()[b];
        os << "],\"sum\":" << format_double(h.sum())
           << ",\"count\":" << h.total_count()
           << ",\"max\":" << format_double(h.max())
           << ",\"p50\":" << format_double(h.p50())
           << ",\"p99\":" << format_double(h.p99())
           << ",\"p999\":" << format_double(h.p999());
        break;
      }
    }
    os << "}\n";
  }
  return os.str();
}

namespace {
void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  PSI_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << content;
  PSI_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}
}  // namespace

void MetricsRegistry::write_csv(const std::string& path) const {
  write_file(path, to_csv());
}

void MetricsRegistry::write_ndjson(const std::string& path) const {
  write_file(path, to_ndjson());
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace psi::obs
