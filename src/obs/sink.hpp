/// \file sink.hpp
/// \brief Instrumentation sink API of the observability layer (psi::obs).
///
/// The simulator and the rank programs emit structured events into a Sink:
/// message sends (with the full sender-side NIC timing decomposition),
/// handler executions (delivery, queueing, busy-wait, run interval), spans
/// (e.g. a supernode's lifetime on its diagonal owner), and instant marks
/// (e.g. a block finalization). A null sink costs one predictable branch
/// per event on the hot path — observability is strictly opt-in and the
/// default engine behaviour is unchanged.
///
/// obs sits BELOW sim in the layering: it depends only on common/sparse
/// types, so every layer (sim, trees, pselinv, driver, benches) can emit
/// into it without cycles. Times are simulated seconds (double), identical
/// to sim::SimTime.
#pragma once

#include <cstdint>

#include "sparse/types.hpp"

namespace psi::obs {

/// Sentinel for "no causal predecessor" (start seeds).
inline constexpr std::uint64_t kNoEvent = ~std::uint64_t{0};

/// A posted message, observed at send time with the sender-side timing
/// decomposition. Every queued simulator event (network send, self-send)
/// carries a unique `seq`; the event id doubles as the id of the handler
/// its delivery triggers.
struct MsgSend {
  std::uint64_t seq = kNoEvent;      ///< unique event id of this message
  std::uint64_t emitter = kNoEvent;  ///< handler event that posted it
  int src = -1;
  int dst = -1;
  std::int64_t tag = 0;
  Count bytes = 0;
  int comm_class = 0;
  double post = 0.0;        ///< sender clock at NIC hand-off (after overhead)
  double xfer_start = 0.0;  ///< sender NIC grant (== post when it was idle)
  double xfer_end = 0.0;    ///< xfer_start + occupancy
  double arrival = 0.0;     ///< xfer_end + wire latency (== post for local)
};

/// One handler execution: the delivery of event `seq` on `rank`, including
/// the receiver-side NIC queueing (arrival -> ready) and the busy-wait
/// (ready -> start) that preceded the run interval [start, end].
struct HandlerRun {
  std::uint64_t seq = kNoEvent;  ///< event id (matches the MsgSend, if any)
  int rank = -1;
  int src = -1;            ///< message source; -1 for the t=0 start seed
  std::int64_t tag = 0;
  Count bytes = 0;
  int comm_class = 0;
  double arrival = 0.0;    ///< wire arrival (== ready for local/self/start)
  double ready = 0.0;      ///< after receiver-NIC serialization
  double start = 0.0;      ///< max(ready, rank busy-until)
  double end = 0.0;        ///< handler completion (rank clock)
  double compute = 0.0;    ///< compute() seconds spent inside this handler
};

/// A named interval on a rank's simulated timeline (e.g. a supernode's
/// lifetime on its diagonal owner: Diag-Bcast launch -> diagonal final).
struct SpanEvent {
  int rank = -1;
  const char* name = "";   ///< static string (not owned)
  std::int64_t id = 0;     ///< user id (e.g. supernode index)
  double begin = 0.0;
  double end = 0.0;
};

/// An instant marker on a rank's simulated timeline.
struct MarkEvent {
  int rank = -1;
  const char* name = "";   ///< static string (not owned)
  std::int64_t id = 0;     ///< user id (e.g. global block id)
  double time = 0.0;
};

/// Receiver of instrumentation events. All callbacks default to no-ops so
/// sinks override only what they need. Emission order follows simulation
/// order: a message's on_send precedes its on_handler, and an emitting
/// handler's sends are observed before that handler's own on_handler.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_send(const MsgSend&) {}
  virtual void on_handler(const HandlerRun&) {}
  virtual void on_span(const SpanEvent&) {}
  virtual void on_mark(const MarkEvent&) {}
};

}  // namespace psi::obs
