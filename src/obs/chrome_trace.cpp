#include "obs/chrome_trace.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace psi::obs {

namespace {

constexpr double kMicros = 1e6;  ///< simulated seconds -> trace microseconds

class TraceWriter {
 public:
  TraceWriter(std::ofstream& out) : out_(&out) { *out_ << "{\"traceEvents\":[" ; }

  /// Emits one event object; `body` is the JSON fields after the opening
  /// brace, without the trailing brace.
  void event(const std::string& body) {
    *out_ << (first_ ? "\n{" : ",\n{") << body << '}';
    first_ = false;
  }

  void finish() { *out_ << "\n],\"displayTimeUnit\":\"ms\"}\n"; }

 private:
  std::ofstream* out_;
  bool first_ = true;
};

std::string fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

}  // namespace

void write_chrome_trace(const Recorder& recorder, const std::string& path,
                        const ChromeTraceOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  PSI_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  TraceWriter writer(out);

  const auto class_label = [&options](int c) -> std::string {
    if (options.class_name != nullptr) return options.class_name(c);
    return "class " + std::to_string(c);
  };

  const std::vector<EventRecord>& events = recorder.events();
  const std::size_t limit =
      options.max_events > 0 && options.max_events < events.size()
          ? options.max_events
          : events.size();

  std::set<int> ranks_seen;
  for (std::size_t seq = 0; seq < limit; ++seq) {
    const EventRecord& rec = events[seq];
    if (!rec.handled) continue;
    ranks_seen.insert(rec.dst);
    const std::string name = rec.timer()  ? std::string("timer")
                             : rec.src < 0 ? std::string("start")
                                           : class_label(rec.comm_class);
    writer.event(fmt(
        "\"name\":\"%s\",\"cat\":\"handler\",\"ph\":\"X\",\"ts\":%.6f,"
        "\"dur\":%.6f,\"pid\":%d,\"tid\":0,\"args\":{\"seq\":%" PRIu64
        ",\"src\":%d,\"tag\":%lld,\"bytes\":%lld,\"compute_us\":%.6f}",
        json_escape(name).c_str(), rec.start * kMicros,
        (rec.end - rec.start) * kMicros, rec.dst,
        static_cast<std::uint64_t>(seq), rec.src,
        static_cast<long long>(rec.tag), static_cast<long long>(rec.bytes),
        rec.compute * kMicros));
    if (!rec.network()) continue;
    ranks_seen.insert(rec.src);
    // Transfer occupancy on both NICs. The receive side occupies
    // [ready - occupancy, ready] (the engine's serialization window).
    writer.event(fmt(
        "\"name\":\"%s\",\"cat\":\"nic\",\"ph\":\"X\",\"ts\":%.6f,"
        "\"dur\":%.6f,\"pid\":%d,\"tid\":1,\"args\":{\"dst\":%d,"
        "\"bytes\":%lld,\"queue_us\":%.6f}",
        json_escape(class_label(rec.comm_class)).c_str(),
        rec.xfer_start * kMicros, rec.occupancy() * kMicros, rec.src, rec.dst,
        static_cast<long long>(rec.bytes),
        (rec.xfer_start - rec.post) * kMicros));
    writer.event(fmt(
        "\"name\":\"%s\",\"cat\":\"nic\",\"ph\":\"X\",\"ts\":%.6f,"
        "\"dur\":%.6f,\"pid\":%d,\"tid\":2,\"args\":{\"src\":%d,"
        "\"queue_us\":%.6f}",
        json_escape(class_label(rec.comm_class)).c_str(),
        (rec.ready - rec.occupancy()) * kMicros, rec.occupancy() * kMicros,
        rec.dst, rec.src, (rec.ready - rec.arrival) * kMicros));
    if (options.flows) {
      writer.event(fmt(
          "\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":%" PRIu64
          ",\"ts\":%.6f,\"pid\":%d,\"tid\":1",
          static_cast<std::uint64_t>(seq), rec.xfer_start * kMicros, rec.src));
      writer.event(fmt(
          "\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
          "\"id\":%" PRIu64 ",\"ts\":%.6f,\"pid\":%d,\"tid\":0",
          static_cast<std::uint64_t>(seq), rec.start * kMicros, rec.dst));
    }
  }

  for (const SpanEvent& span : recorder.spans()) {
    ranks_seen.insert(span.rank);
    writer.event(fmt(
        "\"name\":\"%s %lld\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":%.6f,"
        "\"dur\":%.6f,\"pid\":%d,\"tid\":3",
        json_escape(span.name).c_str(), static_cast<long long>(span.id),
        span.begin * kMicros, (span.end - span.begin) * kMicros, span.rank));
  }
  for (const MarkEvent& mark : recorder.marks()) {
    ranks_seen.insert(mark.rank);
    writer.event(fmt(
        "\"name\":\"%s %lld\",\"cat\":\"mark\",\"ph\":\"i\",\"s\":\"t\","
        "\"ts\":%.6f,\"pid\":%d,\"tid\":0",
        json_escape(mark.name).c_str(), static_cast<long long>(mark.id),
        mark.time * kMicros, mark.rank));
  }

  for (const int rank : ranks_seen) {
    writer.event(fmt(
        "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
        "\"args\":{\"name\":\"rank %d\"}",
        rank, rank));
    static const char* const kThreadNames[4] = {"handlers", "nic-send",
                                                "nic-recv", "spans"};
    for (int tid = 0; tid < 4; ++tid)
      writer.event(fmt(
          "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
          "\"args\":{\"name\":\"%s\"}",
          rank, tid, kThreadNames[tid]));
  }

  writer.finish();
  PSI_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

}  // namespace psi::obs
