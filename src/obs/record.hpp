/// \file record.hpp
/// \brief Shared flat-record emission: one Record is an ordered list of
/// (key, typed value) pairs, rendered identically as an NDJSON object line
/// or a CSV row.
///
/// Every harness that exports per-row data (the fig8/fig9/robustness
/// benches, the psi_check campaign, the psi_serve access log) previously
/// hand-rolled its own stream formatting — %.17g helpers, JSON escaping,
/// header/row column bookkeeping — drifting in small ways (precision,
/// quoting). RecordWriter centralizes that: build a Record per row, write it
/// once, and the CSV header / JSON field set is derived from the first
/// record and enforced on every subsequent one.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace psi::obs {

/// Shortest rendering of a double that parses back bit-identically
/// (tries %.1g..%.16g, falls back to %.17g). Shared by the metrics
/// exporters and every RecordWriter consumer.
std::string format_double(double v);

/// One flat export row: ordered (key, rendered value) pairs plus a
/// per-field "quote in JSON" flag (strings are quoted/escaped; numbers and
/// booleans are emitted raw).
class Record {
 public:
  Record& add(const std::string& key, const std::string& value);
  Record& add(const std::string& key, const char* value) {
    return add(key, std::string(value));
  }
  Record& add(const std::string& key, double value);
  Record& add(const std::string& key, bool value);
  Record& add(const std::string& key, long long value);
  Record& add(const std::string& key, unsigned long long value);
  Record& add(const std::string& key, int value) {
    return add(key, static_cast<long long>(value));
  }
  Record& add(const std::string& key, long value) {
    return add(key, static_cast<long long>(value));
  }
  Record& add(const std::string& key, unsigned long value) {
    return add(key, static_cast<unsigned long long>(value));
  }
  Record& add(const std::string& key, unsigned value) {
    return add(key, static_cast<unsigned long long>(value));
  }

  std::size_t size() const { return fields_.size(); }

  /// `{"k":v,...}` (no trailing newline).
  std::string to_json() const;
  /// Keys in insertion order (the CSV header).
  std::vector<std::string> keys() const;
  /// Rendered values in insertion order (the CSV row).
  std::vector<std::string> values() const;

 private:
  struct Field {
    std::string key;
    std::string value;  ///< rendered
    bool quoted;        ///< JSON: quote + escape
  };
  std::vector<Field> fields_;
};

/// Emits Records to an optional CSV file and/or an optional NDJSON stream.
/// The first written record fixes the column set; later records must carry
/// the same keys in the same order (throws psi::Error otherwise), so a CSV
/// and its NDJSON twin can never disagree. Not thread-safe — wrap with a
/// mutex for concurrent writers (see serve::AccessLog).
class RecordWriter {
 public:
  RecordWriter() = default;

  /// Opens (truncates) a CSV file; the header is written with the first
  /// record. Throws psi::Error when the file cannot be opened.
  void open_csv(const std::string& path);
  /// Opens (truncates) an NDJSON file.
  void open_ndjson(const std::string& path);
  /// Attaches a caller-owned NDJSON stream (e.g. std::cout, a test
  /// ostringstream); the caller keeps ownership.
  void attach_ndjson(std::ostream& out);

  bool active() const { return csv_ || ndjson_ != nullptr; }

  void write(const Record& record);

  /// Flushes both sinks (NDJSON lines are otherwise buffered).
  void flush();

 private:
  std::unique_ptr<std::ofstream> csv_;
  std::unique_ptr<std::ofstream> ndjson_owned_;
  std::ostream* ndjson_ = nullptr;  ///< owned file or attached stream
  std::vector<std::string> header_;
  bool header_written_ = false;
};

}  // namespace psi::obs
